// Pluggable request routers for cluster-scale serving.
//
// A Router is the dispatcher of the cluster layer (the ERT-command-
// scheduler shape: one dispatcher feeding queues across many compute
// units). It sees each arriving request once, in arrival order, together
// with the router-side state of every replica — an estimated backlog and
// static capability scores — and picks the replica the request is
// dispatched to. Routing is a serial pre-pass over the arrival stream, so
// every policy is deterministic for a fixed (workload, seed) regardless
// of how many threads later run the replicas.
//
// The backlog estimate is a single-server queueing model maintained by
// the cluster (Cluster::Partition): routing a request extends the chosen
// replica's virtual drain time by an estimated service time derived from
// its roofline throughput. Policies never see real engine state — they
// are admission-time decisions, exactly like a production front-end that
// only knows what it has dispatched and how fast each backend drains.
#ifndef ADASERVE_SRC_CLUSTER_ROUTER_H_
#define ADASERVE_SRC_CLUSTER_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/request.h"

namespace adaserve {

// The four routing policies of the cluster bench (Fig. 9 cluster sweep).
enum class RouterPolicy {
  kRoundRobin,
  kJoinShortestQueue,
  kPowerOfTwoChoices,
  kSloAware,
};

std::string_view RouterPolicyName(RouterPolicy policy);

// All policies, bench/table iteration order.
std::vector<RouterPolicy> AllRouterPolicies();

// Router-visible state of one replica.
struct ReplicaRouterState {
  // Virtual time at which previously dispatched work drains (the
  // single-server backlog model). BacklogSeconds(now) is what queue-aware
  // policies compare.
  double backlog_until = 0.0;
  // Requests dispatched to this replica so far.
  long routed = 0;
  // Static capability: decode tokens/s proxy from the replica's roofline
  // (used to convert a request into estimated service seconds).
  double service_tps = 1.0;
  // Static capability: speculative-decoding strength — draft-to-target
  // speed ratio weighted by draft fidelity. The SLO-aware policy steers
  // tight-TPOT requests toward high values.
  double spec_strength = 0.0;

  double BacklogSeconds(double now) const {
    return backlog_until > now ? backlog_until - now : 0.0;
  }
};

class Router {
 public:
  virtual ~Router() = default;

  virtual std::string_view name() const = 0;

  // Picks the replica `req` (arriving at req.arrival) is dispatched to.
  // Called once per request in arrival order; must return an index in
  // [0, replicas.size()). Implementations must be deterministic given
  // their construction parameters and the call sequence.
  virtual size_t Route(const Request& req, const std::vector<ReplicaRouterState>& replicas) = 0;
};

struct RouterConfig {
  // Seed of the power-of-two-choices sampling stream.
  uint64_t seed = 0x5eedc1u;
  // SLO-aware policy: requests with tpot_slo at or below this (seconds)
  // are "tight" and steered to spec-decode-strong replicas. The default
  // covers Cat 1 (1.2x baseline decode latency, tens of ms) and Cat 2
  // (50 ms) but not Cat 3 (150 ms).
  double urgent_tpot_slo = 0.10;
};

std::unique_ptr<Router> MakeRouter(RouterPolicy policy, const RouterConfig& config = {});

}  // namespace adaserve

#endif  // ADASERVE_SRC_CLUSTER_ROUTER_H_
