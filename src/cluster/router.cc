#include "src/cluster/router.h"

#include "src/common/logging.h"

namespace adaserve {
namespace {

// Least-backlog replica among indices satisfying `eligible`; falls back
// to all replicas when no index satisfies it. Ties break toward the
// lowest index, so selection is deterministic.
template <typename Eligible>
size_t LeastBacklog(const Request& req, const std::vector<ReplicaRouterState>& replicas,
                    const Eligible& eligible) {
  size_t best = replicas.size();
  for (int pass = 0; pass < 2 && best == replicas.size(); ++pass) {
    const bool fallback = pass == 1;  // Second pass ignores eligibility.
    for (size_t i = 0; i < replicas.size(); ++i) {
      if (!fallback && !eligible(i)) {
        continue;
      }
      if (best == replicas.size() ||
          replicas[i].BacklogSeconds(req.arrival) < replicas[best].BacklogSeconds(req.arrival)) {
        best = i;
      }
    }
  }
  return best;
}

class RoundRobinRouter final : public Router {
 public:
  std::string_view name() const override { return "round-robin"; }

  size_t Route(const Request&, const std::vector<ReplicaRouterState>& replicas) override {
    ADASERVE_CHECK(!replicas.empty()) << "routing with no replicas";
    return next_++ % replicas.size();
  }

 private:
  size_t next_ = 0;
};

class JoinShortestQueueRouter final : public Router {
 public:
  std::string_view name() const override { return "join-shortest-queue"; }

  size_t Route(const Request& req, const std::vector<ReplicaRouterState>& replicas) override {
    ADASERVE_CHECK(!replicas.empty()) << "routing with no replicas";
    return LeastBacklog(req, replicas, [](size_t) { return true; });
  }
};

class PowerOfTwoChoicesRouter final : public Router {
 public:
  explicit PowerOfTwoChoicesRouter(uint64_t seed) : rng_(seed) {}

  std::string_view name() const override { return "power-of-two"; }

  size_t Route(const Request& req, const std::vector<ReplicaRouterState>& replicas) override {
    ADASERVE_CHECK(!replicas.empty()) << "routing with no replicas";
    const size_t n = replicas.size();
    if (n == 1) {
      return 0;
    }
    // Two draws without replacement; the seeded stream makes the whole
    // assignment sequence a pure function of (seed, request order).
    const size_t a = static_cast<size_t>(rng_.UniformInt(n));
    size_t b = static_cast<size_t>(rng_.UniformInt(n - 1));
    if (b >= a) {
      ++b;
    }
    const double backlog_a = replicas[a].BacklogSeconds(req.arrival);
    const double backlog_b = replicas[b].BacklogSeconds(req.arrival);
    if (backlog_a != backlog_b) {
      return backlog_a < backlog_b ? a : b;
    }
    return a < b ? a : b;
  }

 private:
  Rng rng_;
};

// SLO-aware steering: tight-TPOT requests go to the least-loaded replica
// among the spec-decode-strong ones (strength above the fleet mean);
// relaxed requests go to the least-loaded replica among the rest, keeping
// the strong replicas' capacity for work that actually needs their
// acceptance rate. Either class falls back to the whole fleet when its
// preferred subset is empty (homogeneous clusters degrade to JSQ).
class SloAwareRouter final : public Router {
 public:
  explicit SloAwareRouter(double urgent_tpot_slo) : urgent_tpot_slo_(urgent_tpot_slo) {}

  std::string_view name() const override { return "slo-aware"; }

  size_t Route(const Request& req, const std::vector<ReplicaRouterState>& replicas) override {
    ADASERVE_CHECK(!replicas.empty()) << "routing with no replicas";
    double mean_strength = 0.0;
    for (const ReplicaRouterState& r : replicas) {
      mean_strength += r.spec_strength;
    }
    mean_strength /= static_cast<double>(replicas.size());
    const bool urgent = req.tpot_slo > 0.0 && req.tpot_slo <= urgent_tpot_slo_;
    return LeastBacklog(req, replicas, [&](size_t i) {
      return urgent ? replicas[i].spec_strength > mean_strength
                    : replicas[i].spec_strength <= mean_strength;
    });
  }

 private:
  double urgent_tpot_slo_;
};

}  // namespace

std::string_view RouterPolicyName(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin:
      return "round-robin";
    case RouterPolicy::kJoinShortestQueue:
      return "join-shortest-queue";
    case RouterPolicy::kPowerOfTwoChoices:
      return "power-of-two";
    case RouterPolicy::kSloAware:
      return "slo-aware";
  }
  return "unknown";
}

std::vector<RouterPolicy> AllRouterPolicies() {
  return {RouterPolicy::kRoundRobin, RouterPolicy::kJoinShortestQueue,
          RouterPolicy::kPowerOfTwoChoices, RouterPolicy::kSloAware};
}

std::unique_ptr<Router> MakeRouter(RouterPolicy policy, const RouterConfig& config) {
  switch (policy) {
    case RouterPolicy::kRoundRobin:
      return std::make_unique<RoundRobinRouter>();
    case RouterPolicy::kJoinShortestQueue:
      return std::make_unique<JoinShortestQueueRouter>();
    case RouterPolicy::kPowerOfTwoChoices:
      return std::make_unique<PowerOfTwoChoicesRouter>(config.seed);
    case RouterPolicy::kSloAware:
      return std::make_unique<SloAwareRouter>(config.urgent_tpot_slo);
  }
  ADASERVE_CHECK(false) << "unknown router policy";
  return nullptr;
}

}  // namespace adaserve
