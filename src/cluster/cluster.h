// Cluster-scale serving: N engine replicas behind a pluggable router.
//
// A Cluster owns a fleet of replica specifications — each a full Setup
// (models, parallelism, GPU; heterogeneous mixes allowed) plus the
// EngineConfig that replica serves under — and dispatches one arrival
// stream across them with a Router policy (router.h). The shape follows
// the XRT ERT command scheduler: one dispatcher feeding per-compute-unit
// queues, with the dispatch decision made once per command at submission.
//
// Execution is a deterministic three-phase pipeline:
//   1. Partition (serial pre-pass): the router assigns every request, in
//      arrival order, to a replica. Per-replica partitions inherit the
//      stream's arrival order, so the engine's nondecreasing-arrival
//      invariant holds by construction; ids are renumbered densely per
//      replica (the request pool requires dense ids; request content is
//      keyed by stream_seed, which travels untouched).
//   2. Replica runs: each replica serves its partition as an independent
//      SweepRunner task with its own Experiment, scheduler, and engine —
//      nothing shared, so any thread count yields byte-identical metrics.
//   3. Merge: per-replica Metrics fold into a ClusterMetrics aggregate in
//      replica order (cluster_metrics.h).
// Same-seed cluster runs are therefore byte-identical at any thread
// count — pinned by tests/cluster_test.cc through the same canonical-
// text machinery as the golden corpus.
#ifndef ADASERVE_SRC_CLUSTER_CLUSTER_H_
#define ADASERVE_SRC_CLUSTER_CLUSTER_H_

#include <string>
#include <vector>

#include "src/cluster/cluster_metrics.h"
#include "src/cluster/router.h"
#include "src/harness/comparisons.h"
#include "src/harness/sweep_runner.h"

namespace adaserve {

// One replica of the fleet: a Table-1-style setup and the engine config
// it serves under.
struct ReplicaSpec {
  Setup setup;
  EngineConfig engine;
};

struct ClusterConfig {
  std::vector<ReplicaSpec> replicas;
  RouterPolicy router = RouterPolicy::kRoundRobin;
  RouterConfig router_config;
  // Replica-level parallelism: 0 resolves to hardware_concurrency, 1 runs
  // replicas serially. Metrics are identical either way.
  int threads = 1;
  // Router backlog model: cost of one prompt token relative to one decode
  // token in the service-time estimate (prefill is compute-bound and
  // batched, so a prompt token is much cheaper than a decode token).
  double prefill_token_weight = 0.15;
};

struct ReplicaRunResult {
  std::string label;
  // Requests the router dispatched to this replica.
  size_t routed = 0;
  EngineResult result;
  // The replica task's own compute seconds.
  double wall_clock_s = 0.0;
};

struct ClusterResult {
  // Replica order (== ClusterConfig::replicas order).
  std::vector<ReplicaRunResult> replicas;
  ClusterMetrics metrics;
  // Fleet-wide end of run: max replica end time.
  SimTime end_time = 0.0;
  // Wall-clock seconds of the whole cluster run (partition + replicas).
  double wall_clock_s = 0.0;

  // Canonical text (merged + per-replica blocks) for golden/determinism
  // comparisons.
  std::string Text() const;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  size_t num_replicas() const { return config_.replicas.size(); }
  const ClusterConfig& config() const { return config_; }

  // Router-side seed states: zero backlog, capability scores derived from
  // each replica's roofline (service_tps) and draft deployment
  // (spec_strength). Exposed so router unit tests see exactly what
  // Partition starts from.
  std::vector<ReplicaRouterState> SeedRouterStates() const;

  // Phase 1 — the routing pre-pass. Consumes `stream` (single-pass) and
  // returns one arrival-ordered, densely re-id'd request vector per
  // replica. Deterministic for a fixed (stream, policy, router seed).
  std::vector<std::vector<Request>> Partition(ArrivalStream& stream) const;

  // Phases 1-3: partition `stream`, run every replica under a fresh
  // `system` scheduler, merge. Replicas run as independent tasks on a
  // SweepRunner with config().threads workers.
  ClusterResult Run(SystemKind system, ArrivalStream& stream) const;

  // As above for a pre-partitioned workload (replica i serves
  // partitions[i]); Run(system, stream) is Partition + this.
  ClusterResult RunPartitioned(SystemKind system,
                               std::vector<std::vector<Request>> partitions) const;

 private:
  ClusterConfig config_;
  // Static capability scores, replica order (derived once at construction
  // from the replicas' latency models).
  std::vector<double> service_tps_;
  std::vector<double> spec_strength_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_CLUSTER_CLUSTER_H_
