// Cluster-level metrics: deterministic merging of per-replica Metrics.
//
// Every replica finishes with its own Metrics; the cluster aggregate is
// their merge — counters and time sums add, per-category sample sets
// concatenate in replica order (so float-order-sensitive statistics are
// identical at any thread count), makespan is the fleet-wide wall clock
// (max over replicas: replicas run concurrently), and mean_accepted
// re-averages weighted by each replica's spec_requests. GoodputTps /
// ThroughputTps on the merged Metrics therefore read as fleet tokens/s
// over the cluster run.
#ifndef ADASERVE_SRC_CLUSTER_CLUSTER_METRICS_H_
#define ADASERVE_SRC_CLUSTER_CLUSTER_METRICS_H_

#include <span>
#include <string>
#include <vector>

#include "src/serve/metrics.h"

namespace adaserve {

// Merges per-replica end-of-run metrics into one cluster aggregate.
// Deterministic: a pure fold over `parts` in order. Empty parts (a
// replica the router never fed) merge as zeros — and because empty
// Samples contribute nothing, they cannot poison extrema or percentiles.
Metrics MergeMetrics(std::span<const Metrics> parts);

// Per-replica + merged view of one cluster run.
struct ClusterMetrics {
  std::vector<Metrics> per_replica;
  Metrics merged;
};

ClusterMetrics MakeClusterMetrics(std::vector<Metrics> per_replica);

// Canonical text of a cluster run for the golden/determinism machinery:
// the merged block first, then one block per replica (replica order),
// each serialized with the same fixed-precision formatting
// GoldenMetricsText uses — byte-equal text means byte-equal runs.
// `labels` must parallel `metrics.per_replica`.
std::string ClusterMetricsText(const ClusterMetrics& metrics,
                               const std::vector<std::string>& labels);

}  // namespace adaserve

#endif  // ADASERVE_SRC_CLUSTER_CLUSTER_METRICS_H_
