#include "src/cluster/cluster.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/hw/budget.h"

namespace adaserve {
namespace {

// Spec-decode strength: how many draft tokens fit in one target decode
// interval, discounted by draft fidelity — a faster or better-placed
// draft (own GPU, H100) and a higher-fidelity one both raise it.
double DeriveSpecStrength(const Setup& setup, const LatencyModel& target,
                          const LatencyModel& draft) {
  const double draft_latency = draft.BaselineDecodeLatency();
  if (draft_latency <= 0.0) {
    return 0.0;
  }
  return setup.draft_config.fidelity * target.BaselineDecodeLatency() / draft_latency;
}

}  // namespace

std::string ClusterResult::Text() const {
  std::vector<std::string> labels;
  labels.reserve(replicas.size());
  for (const ReplicaRunResult& r : replicas) {
    labels.push_back(r.label);
  }
  return ClusterMetricsText(metrics, labels);
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  ADASERVE_CHECK(!config_.replicas.empty()) << "cluster needs at least one replica";
  service_tps_.reserve(config_.replicas.size());
  spec_strength_.reserve(config_.replicas.size());
  for (const ReplicaSpec& spec : config_.replicas) {
    // Latency models alone (no synthetic LM) are cheap enough to build at
    // construction; the replica tasks rebuild their full Experiment.
    const LatencyModel target(spec.setup.target_profile, spec.setup.gpu,
                              spec.setup.tensor_parallel);
    const LatencyModel draft(spec.setup.draft_profile,
                             spec.setup.draft_gpu.value_or(spec.setup.gpu),
                             spec.setup.draft_tensor_parallel);
    service_tps_.push_back(DeriveServiceTps(target));
    spec_strength_.push_back(DeriveSpecStrength(spec.setup, target, draft));
  }
}

std::vector<ReplicaRouterState> Cluster::SeedRouterStates() const {
  std::vector<ReplicaRouterState> states(config_.replicas.size());
  for (size_t i = 0; i < states.size(); ++i) {
    states[i].service_tps = service_tps_[i];
    states[i].spec_strength = spec_strength_[i];
  }
  return states;
}

std::vector<std::vector<Request>> Cluster::Partition(ArrivalStream& stream) const {
  std::unique_ptr<Router> router = MakeRouter(config_.router, config_.router_config);
  std::vector<ReplicaRouterState> states = SeedRouterStates();
  std::vector<std::vector<Request>> partitions(config_.replicas.size());
  SimTime last_arrival = 0.0;
  while (!stream.Exhausted()) {
    Request req = stream.Next();
    ADASERVE_CHECK(req.arrival >= last_arrival)
        << "stream arrivals must be nondecreasing; got " << req.arrival << " after "
        << last_arrival;
    last_arrival = req.arrival;
    const size_t idx = router->Route(req, states);
    ADASERVE_CHECK(idx < partitions.size())
        << router->name() << " routed to replica " << idx << " of " << partitions.size();
    // Extend the chosen replica's virtual backlog by the request's
    // estimated service time (single-server drain model).
    ReplicaRouterState& state = states[idx];
    const double est_service =
        (static_cast<double>(req.prompt_len) * config_.prefill_token_weight +
         static_cast<double>(req.target_output_len)) /
        state.service_tps;
    state.backlog_until = std::max(state.backlog_until, static_cast<double>(req.arrival)) +
                          est_service;
    ++state.routed;
    // Dense per-replica ids: the request pool requires them, and request
    // content is keyed by stream_seed, which travels with the request.
    req.id = static_cast<RequestId>(partitions[idx].size());
    partitions[idx].push_back(std::move(req));
  }
  return partitions;
}

ClusterResult Cluster::RunPartitioned(SystemKind system,
                                      std::vector<std::vector<Request>> partitions) const {
  ADASERVE_CHECK(partitions.size() == config_.replicas.size())
      << "partition count " << partitions.size() << " != replica count "
      << config_.replicas.size();
  std::vector<size_t> routed_counts;
  routed_counts.reserve(partitions.size());
  for (const std::vector<Request>& p : partitions) {
    routed_counts.push_back(p.size());
  }
  SweepRunner runner(config_.threads);
  std::vector<std::function<EngineResult()>> tasks;
  tasks.reserve(partitions.size());
  for (size_t i = 0; i < partitions.size(); ++i) {
    const ReplicaSpec& spec = config_.replicas[i];
    std::vector<Request>& partition = partitions[i];
    // Everything the replica simulation touches is task-local: a fresh
    // Experiment, scheduler, and engine per task (the SweepRunner cell
    // contract), so replicas parallelize without sharing state.
    tasks.push_back([&spec, &partition, system] {
      const Experiment exp(spec.setup);
      auto scheduler = MakeScheduler(system);
      return exp.Run(*scheduler, std::move(partition), spec.engine);
    });
  }
  std::vector<Timed<EngineResult>> timed = runner.Map(tasks);

  ClusterResult result;
  result.replicas.reserve(timed.size());
  std::vector<Metrics> per_replica;
  per_replica.reserve(timed.size());
  for (size_t i = 0; i < timed.size(); ++i) {
    ReplicaRunResult replica;
    replica.label = config_.replicas[i].setup.label;
    replica.routed = routed_counts[i];
    replica.wall_clock_s = timed[i].wall_clock_s;
    replica.result = std::move(timed[i].value);
    result.end_time = std::max(result.end_time, replica.result.end_time);
    per_replica.push_back(replica.result.metrics);
    result.replicas.push_back(std::move(replica));
  }
  result.metrics = MakeClusterMetrics(std::move(per_replica));
  result.wall_clock_s = runner.total_wall_clock_s();
  return result;
}

ClusterResult Cluster::Run(SystemKind system, ArrivalStream& stream) const {
  return RunPartitioned(system, Partition(stream));
}

}  // namespace adaserve
