#include "src/cluster/cluster_metrics.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "src/common/logging.h"

namespace adaserve {
namespace {

// Fixed-precision formatting, same shape as the golden harness: the
// simulation is deterministic, so equal runs produce byte-equal text.
std::string FmtFixed(double v, int digits = 6) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

void AppendMetricsBlock(std::ostringstream& os, const Metrics& m) {
  os << "finished: " << m.finished << "\n";
  os << "attained: " << m.attained << "\n";
  os << "output_tokens: " << m.output_tokens() << "\n";
  os << "throughput_tps: " << FmtFixed(m.ThroughputTps()) << "\n";
  os << "slo_attainment_pct: " << FmtFixed(m.AttainmentPct()) << "\n";
  os << "goodput_tps: " << FmtFixed(m.GoodputTps()) << "\n";
  os << "mean_accepted: " << FmtFixed(m.mean_accepted) << "\n";
  os << "makespan_s: " << FmtFixed(m.makespan) << "\n";
  // Admission-control counters, emitted only when nonzero so text of
  // systems without a controller stays byte-identical.
  if (m.rejections != 0) {
    os << "rejections: " << m.rejections << "\n";
  }
  if (m.degraded != 0) {
    os << "degraded: " << m.degraded << "\n";
  }
  for (int c = 0; c < kNumCategories; ++c) {
    const CategoryMetrics& cat = m.per_category[static_cast<size_t>(c)];
    os << "cat" << (c + 1) << ".finished: " << cat.finished << "\n";
    os << "cat" << (c + 1) << ".attainment_pct: " << FmtFixed(cat.AttainmentPct()) << "\n";
    os << "cat" << (c + 1) << ".mean_tpot_ms: " << FmtFixed(cat.tpot_ms.Mean()) << "\n";
    os << "cat" << (c + 1) << ".p99_tpot_ms: " << FmtFixed(cat.tpot_ms.Percentile(99)) << "\n";
  }
}

}  // namespace

Metrics MergeMetrics(std::span<const Metrics> parts) {
  Metrics merged;
  double accepted_weighted = 0.0;
  for (const Metrics& part : parts) {
    merged.finished += part.finished;
    merged.attained += part.attained;
    merged.makespan = std::max(merged.makespan, part.makespan);
    merged.spec_time += part.spec_time;
    merged.select_time += part.select_time;
    merged.verify_time += part.verify_time;
    merged.prefill_time += part.prefill_time;
    merged.total_time += part.total_time;
    merged.admissions += part.admissions;
    merged.evictions += part.evictions;
    merged.pauses += part.pauses;
    merged.rejections += part.rejections;
    merged.degraded += part.degraded;
    merged.spec_requests += part.spec_requests;
    accepted_weighted += part.mean_accepted * part.spec_requests;
    for (int c = 0; c < kNumCategories; ++c) {
      const CategoryMetrics& from = part.per_category[static_cast<size_t>(c)];
      CategoryMetrics& to = merged.per_category[static_cast<size_t>(c)];
      to.finished += from.finished;
      to.attained += from.attained;
      to.output_tokens += from.output_tokens;
      to.attained_tokens += from.attained_tokens;
      to.tpot_ms.Append(from.tpot_ms);
      to.ttft_ms.Append(from.ttft_ms);
    }
  }
  if (merged.spec_requests > 0) {
    merged.mean_accepted = accepted_weighted / merged.spec_requests;
  }
  // Match MetricsAccumulator::Finalize: the merged snapshot is final, so
  // pre-sort its sample sets for shared-cache percentile queries.
  for (CategoryMetrics& cat : merged.per_category) {
    cat.tpot_ms.MaterializeSorted();
    cat.ttft_ms.MaterializeSorted();
  }
  return merged;
}

ClusterMetrics MakeClusterMetrics(std::vector<Metrics> per_replica) {
  ClusterMetrics metrics;
  metrics.merged = MergeMetrics(per_replica);
  metrics.per_replica = std::move(per_replica);
  return metrics;
}

std::string ClusterMetricsText(const ClusterMetrics& metrics,
                               const std::vector<std::string>& labels) {
  ADASERVE_CHECK(labels.size() == metrics.per_replica.size())
      << "labels/replicas mismatch: " << labels.size() << " vs " << metrics.per_replica.size();
  std::ostringstream os;
  os << "cluster: merged (" << metrics.per_replica.size() << " replicas)\n";
  AppendMetricsBlock(os, metrics.merged);
  for (size_t i = 0; i < metrics.per_replica.size(); ++i) {
    os << "replica[" << i << "]: " << labels[i] << "\n";
    AppendMetricsBlock(os, metrics.per_replica[i]);
  }
  return os.str();
}

}  // namespace adaserve
