// Model execution profiles (Table 1 of the paper).
//
// A profile captures what the roofline needs: weight bytes, FLOPs per token,
// and KV-cache bytes per cached token. Architecture parameters follow the
// published model cards (GQA head counts, layer counts).
#ifndef ADASERVE_SRC_HW_PROFILES_H_
#define ADASERVE_SRC_HW_PROFILES_H_

#include <cstdint>
#include <string>

namespace adaserve {

struct ModelProfile {
  std::string name;
  // Total parameter count.
  double params = 0.0;
  int num_layers = 0;
  int hidden_dim = 0;
  // Grouped-query attention: number of KV heads and per-head dim.
  int kv_heads = 0;
  int head_dim = 0;
  // Bytes per weight (2 for fp16/bf16).
  double bytes_per_param = 2.0;

  // Total bytes of weights.
  double WeightBytes() const { return params * bytes_per_param; }
  // Dense FLOPs for one token's forward pass (2 * params approximation).
  double FlopsPerToken() const { return 2.0 * params; }
  // KV-cache bytes stored per token of context (K and V, fp16).
  double KvBytesPerToken() const {
    return 2.0 * num_layers * kv_heads * head_dim * bytes_per_param;
  }
};

// Table 1 targets.
ModelProfile Llama31_70B();
ModelProfile Qwen25_32B();

// Draft models (smallest members of the same families).
ModelProfile Llama32_1B();
ModelProfile Qwen25_05B();

// Mid-size family members used as *strong* drafts by the cluster layer's
// heterogeneous replicas (H100 / TP=8 / draft-on-separate-GPU setups): a
// bigger draft tracks the target distribution more faithfully, and the
// draft-on-separate-GPU deployment shape is what makes its extra cost
// affordable.
ModelProfile Llama31_8B();
ModelProfile Qwen25_7B();

}  // namespace adaserve

#endif  // ADASERVE_SRC_HW_PROFILES_H_
