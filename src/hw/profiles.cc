#include "src/hw/profiles.h"

namespace adaserve {

ModelProfile Llama31_70B() {
  return ModelProfile{
      .name = "Llama-3.1-70B-Instruct",
      .params = 70.6e9,
      .num_layers = 80,
      .hidden_dim = 8192,
      .kv_heads = 8,
      .head_dim = 128,
  };
}

ModelProfile Qwen25_32B() {
  return ModelProfile{
      .name = "Qwen2.5-32B-Instruct",
      .params = 32.8e9,
      .num_layers = 64,
      .hidden_dim = 5120,
      .kv_heads = 8,
      .head_dim = 128,
  };
}

ModelProfile Llama32_1B() {
  return ModelProfile{
      .name = "Llama-3.2-1B-Instruct",
      .params = 1.24e9,
      .num_layers = 16,
      .hidden_dim = 2048,
      .kv_heads = 8,
      .head_dim = 64,
  };
}

ModelProfile Qwen25_05B() {
  return ModelProfile{
      .name = "Qwen2.5-0.5B-Instruct",
      .params = 0.49e9,
      .num_layers = 24,
      .hidden_dim = 896,
      .kv_heads = 2,
      .head_dim = 64,
  };
}

ModelProfile Llama31_8B() {
  return ModelProfile{
      .name = "Llama-3.1-8B-Instruct",
      .params = 8.03e9,
      .num_layers = 32,
      .hidden_dim = 4096,
      .kv_heads = 8,
      .head_dim = 128,
  };
}

ModelProfile Qwen25_7B() {
  return ModelProfile{
      .name = "Qwen2.5-7B-Instruct",
      .params = 7.62e9,
      .num_layers = 28,
      .hidden_dim = 3584,
      .kv_heads = 4,
      .head_dim = 128,
  };
}

}  // namespace adaserve
