#include "src/hw/profiles.h"

namespace adaserve {

ModelProfile Llama31_70B() {
  return ModelProfile{
      .name = "Llama-3.1-70B-Instruct",
      .params = 70.6e9,
      .num_layers = 80,
      .hidden_dim = 8192,
      .kv_heads = 8,
      .head_dim = 128,
  };
}

ModelProfile Qwen25_32B() {
  return ModelProfile{
      .name = "Qwen2.5-32B-Instruct",
      .params = 32.8e9,
      .num_layers = 64,
      .hidden_dim = 5120,
      .kv_heads = 8,
      .head_dim = 128,
  };
}

ModelProfile Llama32_1B() {
  return ModelProfile{
      .name = "Llama-3.2-1B-Instruct",
      .params = 1.24e9,
      .num_layers = 16,
      .hidden_dim = 2048,
      .kv_heads = 8,
      .head_dim = 64,
  };
}

ModelProfile Qwen25_05B() {
  return ModelProfile{
      .name = "Qwen2.5-0.5B-Instruct",
      .params = 0.49e9,
      .num_layers = 24,
      .hidden_dim = 896,
      .kv_heads = 2,
      .head_dim = 64,
  };
}

}  // namespace adaserve
