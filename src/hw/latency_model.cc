#include "src/hw/latency_model.h"

#include <algorithm>

#include "src/common/logging.h"

namespace adaserve {

LatencyModel::LatencyModel(const ModelProfile& model, const GpuSpec& gpu, int tensor_parallel,
                           const LatencyModelConfig& config)
    : model_(model), gpu_(gpu), tp_(tensor_parallel), config_(config) {
  ADASERVE_CHECK(tp_ >= 1) << "tensor parallel degree must be >= 1";
  ADASERVE_CHECK(model_.WeightBytes() / tp_ < gpu_.mem_bytes)
      << model_.name << " does not fit on " << gpu_.name << " with TP=" << tp_;
}

SimTime LatencyModel::WeightLoadTime() const {
  const double effective_bw = gpu_.mem_bw_bytes_per_s * config_.mem_efficiency * tp_;
  return model_.WeightBytes() / effective_bw;
}

SimTime LatencyModel::ComputeTimePerToken() const {
  const double effective_flops = gpu_.fp16_flops_per_s * config_.compute_efficiency * tp_;
  return model_.FlopsPerToken() / effective_flops;
}

SimTime LatencyModel::ForwardLatency(int batch_tokens, long sum_context_tokens,
                                     bool use_cuda_graph) const {
  ADASERVE_CHECK(batch_tokens >= 0) << "negative batch";
  ADASERVE_CHECK(sum_context_tokens >= 0) << "negative context";
  if (batch_tokens == 0) {
    return 0.0;
  }
  const double effective_bw = gpu_.mem_bw_bytes_per_s * config_.mem_efficiency * tp_;
  const SimTime roofline = std::max(WeightLoadTime(), batch_tokens * ComputeTimePerToken());
  const SimTime kv_read =
      static_cast<double>(sum_context_tokens) * model_.KvBytesPerToken() / effective_bw;
  SimTime launch = config_.launch_overhead_per_layer * model_.num_layers;
  if (use_cuda_graph) {
    launch *= config_.cuda_graph_discount;
  }
  return roofline + kv_read + launch;
}

SimTime LatencyModel::PrefillLatency(int prompt_tokens, long sum_context_tokens) const {
  // Prefill shares the roofline; for long prompts it sits on the compute
  // side. No CUDA-graph replay: prompt shapes are irregular.
  return ForwardLatency(prompt_tokens, sum_context_tokens, /*use_cuda_graph=*/false);
}

SimTime LatencyModel::BaselineDecodeLatency() const {
  // One request, one token, short context.
  return ForwardLatency(/*batch_tokens=*/1, /*sum_context_tokens=*/512, /*use_cuda_graph=*/true);
}

double LatencyModel::RooflineKnee() const { return WeightLoadTime() / ComputeTimePerToken(); }

double LatencyModel::KvCacheBytes() const {
  const double weights_per_gpu = model_.WeightBytes() / tp_;
  // Reserve 15% of device memory for activations/workspace, as serving
  // systems commonly do (vLLM's gpu_memory_utilization default).
  const double usable = gpu_.mem_bytes * 0.85 - weights_per_gpu;
  return std::max(usable, 0.0) * tp_;
}

}  // namespace adaserve
