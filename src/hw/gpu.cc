#include "src/hw/gpu.h"

namespace adaserve {

GpuSpec A100_80G() {
  return GpuSpec{
      .name = "A100-80G",
      .mem_bw_bytes_per_s = 2039e9,
      .fp16_flops_per_s = 312e12,
      .mem_bytes = 80e9,
  };
}

GpuSpec H100_80G() {
  return GpuSpec{
      .name = "H100-80G",
      .mem_bw_bytes_per_s = 3350e9,
      .fp16_flops_per_s = 989e12,
      .mem_bytes = 80e9,
  };
}

GpuSpec L4_24G() {
  return GpuSpec{
      .name = "L4-24G",
      .mem_bw_bytes_per_s = 300e9,
      .fp16_flops_per_s = 121e12,
      .mem_bytes = 24e9,
  };
}

}  // namespace adaserve
