// Hardware-aware token budget derivation (§1, §3 footnote 1, §5).
//
// AdaServe "chooses an optimal budget that balances decoding throughput and
// latency" from a profiling-based roofline. We derive the verification token
// budget B as the batch size at which per-iteration latency reaches a slack
// multiple of the memory-bound floor: below the knee extra tokens are nearly
// free; past `latency_slack` x floor they cost linearly and hurt TPOT.
#ifndef ADASERVE_SRC_HW_BUDGET_H_
#define ADASERVE_SRC_HW_BUDGET_H_

#include "src/hw/latency_model.h"

namespace adaserve {

struct BudgetConfig {
  // Target iteration latency as a multiple of the memory-bound floor.
  double latency_slack = 1.5;
  // Typical per-request context length assumed when profiling KV reads.
  long typical_context = 1024;
  // Typical number of concurrent requests assumed when profiling.
  int typical_batch = 16;
  // Hard bounds on the derived budget.
  int min_budget = 16;
  int max_budget = 2048;
};

// Verification-side token budget (the paper's B / B1).
int DeriveTokenBudget(const LatencyModel& verifier, const BudgetConfig& config = {});

// Speculator-side per-step token budget (the paper's B2): how many draft
// tokens can be decoded per step while staying within `fraction` of the
// verifier's memory-bound floor.
int DeriveDraftBudget(const LatencyModel& verifier, const LatencyModel& draft, double fraction = 0.25,
                      const BudgetConfig& config = {});

// Decode-throughput proxy of one replica: tokens per second of a
// budget-sized verification batch under the profiling assumptions the
// budget derivation itself uses (BudgetConfig typical batch/context).
// Shared by the cluster router's service-rate seeding and the
// utilization-bound admission controller — both must score capacity
// identically.
double DeriveServiceTps(const LatencyModel& target, const BudgetConfig& config = {});

}  // namespace adaserve

#endif  // ADASERVE_SRC_HW_BUDGET_H_
