// Profiling-style roofline latency model.
//
// This stands in for running real kernels on A100s. A forward pass is
// modelled as:
//
//   latency = max(weight_load_time, compute_time(batch_tokens))   (roofline)
//           + kv_read_time(sum of context lengths)                (attention)
//           + launch_overhead                                     (kernels)
//
// Weight load time is the memory-bound floor of auto-regressive decoding;
// compute time grows linearly with the number of tokens in the batch, so the
// model exhibits the memory-/compute-bound knee the paper's token-budget
// selection exploits. CUDA-graph capture is modelled as a discount on the
// launch overhead when iteration shapes repeat (§5.2).
#ifndef ADASERVE_SRC_HW_LATENCY_MODEL_H_
#define ADASERVE_SRC_HW_LATENCY_MODEL_H_

#include "src/common/types.h"
#include "src/hw/gpu.h"
#include "src/hw/profiles.h"

namespace adaserve {

struct LatencyModelConfig {
  // Fraction of peak memory bandwidth achieved by weight/KV streaming.
  double mem_efficiency = 0.70;
  // Fraction of peak FLOPs achieved at serving batch sizes. Deliberately
  // below large-GEMM MFU: decode/verification batches are short and tree
  // attention is mask-irregular, so sustained FLOPs sit near 30% of peak.
  double compute_efficiency = 0.30;
  // Kernel launch overhead per layer without CUDA graphs, seconds.
  double launch_overhead_per_layer = 4e-6;
  // Multiplier on launch overhead when a captured CUDA graph is replayed.
  double cuda_graph_discount = 0.25;
};

class LatencyModel {
 public:
  LatencyModel(const ModelProfile& model, const GpuSpec& gpu, int tensor_parallel,
               const LatencyModelConfig& config = {});

  const ModelProfile& model() const { return model_; }
  const GpuSpec& gpu() const { return gpu_; }
  int tensor_parallel() const { return tp_; }

  // Memory-bound floor: time to stream the weights once, seconds.
  SimTime WeightLoadTime() const;

  // Marginal compute time per batched token, seconds.
  SimTime ComputeTimePerToken() const;

  // Latency of one forward pass that processes `batch_tokens` tokens whose
  // attention reads `sum_context_tokens` cached tokens in total.
  // `use_cuda_graph` applies the launch-overhead discount.
  SimTime ForwardLatency(int batch_tokens, long sum_context_tokens, bool use_cuda_graph) const;

  // Latency of prefilling `prompt_tokens` in one pass (compute-bound path of
  // the same roofline; chunked prefill calls this per chunk).
  SimTime PrefillLatency(int prompt_tokens, long sum_context_tokens) const;

  // Per-token latency of an unloaded single-request decode. This is the
  // "baseline latency" Table 2's Cat-1 SLO is defined against.
  SimTime BaselineDecodeLatency() const;

  // Batch token count at which compute time equals the memory-bound floor —
  // the roofline knee.
  double RooflineKnee() const;

  // Bytes of device memory left for KV cache after weights, across the TP
  // group (model weights are sharded; KV is too).
  double KvCacheBytes() const;

 private:
  ModelProfile model_;
  GpuSpec gpu_;
  int tp_;
  LatencyModelConfig config_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_HW_LATENCY_MODEL_H_
