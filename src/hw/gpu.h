// GPU hardware specifications used by the roofline latency model.
#ifndef ADASERVE_SRC_HW_GPU_H_
#define ADASERVE_SRC_HW_GPU_H_

#include <string>

namespace adaserve {

// Static per-device specification. Numbers are vendor datasheet peaks; the
// latency model applies efficiency factors on top.
struct GpuSpec {
  std::string name;
  // HBM bandwidth per device, bytes/second.
  double mem_bw_bytes_per_s = 0.0;
  // Dense fp16/bf16 throughput per device, FLOP/second.
  double fp16_flops_per_s = 0.0;
  // Device memory, bytes.
  double mem_bytes = 0.0;
};

// NVIDIA A100-SXM 80GB: 2039 GB/s HBM2e, 312 TFLOPS fp16 tensor.
GpuSpec A100_80G();

// NVIDIA H100-SXM 80GB (for budget-sensitivity ablations): 3350 GB/s,
// 989 TFLOPS fp16 tensor.
GpuSpec H100_80G();

// NVIDIA L4 24GB (small-deployment ablation): 300 GB/s, 121 TFLOPS fp16.
GpuSpec L4_24G();

}  // namespace adaserve

#endif  // ADASERVE_SRC_HW_GPU_H_
