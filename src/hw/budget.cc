#include "src/hw/budget.h"

#include <algorithm>

#include "src/common/logging.h"

namespace adaserve {

int DeriveTokenBudget(const LatencyModel& verifier, const BudgetConfig& config) {
  ADASERVE_CHECK(config.latency_slack >= 1.0) << "slack below the floor is infeasible";
  const SimTime floor = verifier.WeightLoadTime();
  const SimTime target = floor * config.latency_slack;
  const long context = config.typical_context * config.typical_batch;
  // ForwardLatency is monotone in batch_tokens; binary search the largest
  // batch that stays at or below the target.
  int lo = 1;
  int hi = config.max_budget;
  if (verifier.ForwardLatency(hi, context, true) <= target) {
    return hi;
  }
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    if (verifier.ForwardLatency(mid, context, true) <= target) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return std::clamp(lo, config.min_budget, config.max_budget);
}

int DeriveDraftBudget(const LatencyModel& verifier, const LatencyModel& draft, double fraction,
                      const BudgetConfig& config) {
  ADASERVE_CHECK(fraction > 0.0 && fraction <= 1.0) << "fraction out of range";
  const SimTime allowance = verifier.WeightLoadTime() * fraction;
  // One draft decoding step over `b` tokens must fit in the allowance.
  int lo = 1;
  int hi = config.max_budget;
  if (draft.ForwardLatency(hi, config.typical_context, true) <= allowance) {
    return hi;
  }
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    if (draft.ForwardLatency(mid, config.typical_context, true) <= allowance) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return std::clamp(lo, config.min_budget, config.max_budget);
}

double DeriveServiceTps(const LatencyModel& target, const BudgetConfig& config) {
  const int budget = DeriveTokenBudget(target, config);
  const SimTime iteration = target.ForwardLatency(
      budget, static_cast<long>(config.typical_batch) * config.typical_context,
      /*use_cuda_graph=*/true);
  return iteration > 0.0 ? static_cast<double>(budget) / iteration : 1.0;
}

}  // namespace adaserve
