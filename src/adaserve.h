// Umbrella header for the AdaServe library.
//
// Pulls in the full public API: the AdaServe scheduler and its substrates
// (synthetic models, roofline hardware model, speculative-decoding
// machinery, serving engine, baselines, and the experiment harness).
#ifndef ADASERVE_SRC_ADASERVE_H_
#define ADASERVE_SRC_ADASERVE_H_

#include "src/baselines/fastserve.h"
#include "src/baselines/priority.h"
#include "src/baselines/sarathi.h"
#include "src/baselines/static_tree_spec.h"
#include "src/baselines/vllm.h"
#include "src/baselines/vllm_spec.h"
#include "src/baselines/vtc.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/core/adaptive.h"
#include "src/core/adaserve_scheduler.h"
#include "src/core/optimal.h"
#include "src/core/selection.h"
#include "src/core/slo_accounting.h"
#include "src/harness/comparisons.h"
#include "src/harness/experiment.h"
#include "src/harness/golden.h"
#include "src/harness/report.h"
#include "src/harness/table_printer.h"
#include "src/hw/budget.h"
#include "src/hw/gpu.h"
#include "src/hw/latency_model.h"
#include "src/hw/profiles.h"
#include "src/model/distribution.h"
#include "src/model/draft_lm.h"
#include "src/model/sampler.h"
#include "src/model/synthetic_lm.h"
#include "src/serve/engine.h"
#include "src/serve/kv_cache.h"
#include "src/serve/metrics.h"
#include "src/serve/request_pool.h"
#include "src/serve/scheduler.h"
#include "src/spec/beam_search.h"
#include "src/spec/sequence_spec.h"
#include "src/spec/token_tree.h"
#include "src/spec/verifier.h"
#include "src/workload/arrival_stream.h"
#include "src/workload/categories.h"
#include "src/workload/generator.h"
#include "src/workload/request.h"
#include "src/workload/trace.h"

#endif  // ADASERVE_SRC_ADASERVE_H_
