#include "src/baselines/admission_control.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"
#include "src/hw/budget.h"

namespace adaserve {

void AdmissionControlScheduler::Reclaim(const RequestPool& pool) {
  for (auto it = accepted_util_.begin(); it != accepted_util_.end();) {
    const RequestId id = it->first;
    const bool retired = id < static_cast<RequestId>(pool.retired_count());
    if (retired || pool.Get(id).state == RequestState::kFinished) {
      utilization_ -= it->second;
      it = accepted_util_.erase(it);
    } else {
      ++it;
    }
  }
  if (accepted_util_.empty()) {
    utilization_ = 0.0;  // Clear floating-point residue at idle.
  }
}

void AdmissionControlScheduler::ControlPass(SimTime now, RequestPool& pool, int* rejected,
                                            int* degraded) {
  // Fresh candidates: queued requests the controller has not scored yet.
  // AddArrival appends, so they sit in ascending id order already;
  // re-queued evicted/paused requests are below the watermark and skip.
  std::vector<RequestId> fresh;
  for (RequestId id : pool.queued()) {
    if (id >= next_fresh_id_) {
      fresh.push_back(id);
    }
  }
  if (fresh.empty()) {
    return;
  }
  std::sort(fresh.begin(), fresh.end());
  for (RequestId id : fresh) {
    Request& req = pool.Get(id);
    ADASERVE_CHECK(req.tpot_slo > 0.0) << "request " << id << " with non-positive SLO";
    const double demand = 1.0 / (req.tpot_slo * service_tps_);
    if (utilization_ + demand <= config_.utilization_bound) {
      accepted_util_[id] = demand;
      utilization_ += demand;
      continue;
    }
    // Over the bound. Degrade if the remaining headroom can serve the
    // request at some bounded-looser SLO; otherwise reject.
    const double headroom = config_.utilization_bound - utilization_;
    bool accepted = false;
    if (config_.allow_degrade && headroom > 0.0) {
      // The tightest SLO the headroom can serve; by construction looser
      // than the original (its demand exceeded the headroom).
      const double needed_slo = 1.0 / (headroom * service_tps_);
      if (needed_slo <= config_.max_degrade_factor * req.tpot_slo) {
        req.tpot_slo = needed_slo;
        accepted_util_[id] = headroom;
        utilization_ += headroom;
        ++*degraded;
        accepted = true;
      }
    }
    if (!accepted) {
      pool.Reject(id, now);
      ++*rejected;
    }
  }
  next_fresh_id_ = std::max(next_fresh_id_, fresh.back() + 1);
}

TickResult AdmissionControlScheduler::Tick(SimTime now, RequestPool& pool, ServingContext& ctx) {
  if (!ctx.tick.continuous) {
    // Boundary mode is defined as the legacy drain loop; the controller
    // is a tick-native system, so boundary runs are plain EDF.
    return EdfScheduler::Tick(now, pool, ctx);
  }
  if (service_tps_ <= 0.0) {
    service_tps_ = DeriveServiceTps(*ctx.target_latency);
  }
  Reclaim(pool);
  int rejected = 0;
  int degraded = 0;
  // Score to fixpoint: rejections shrink the queue below the engine's
  // pull target, which can surface further due arrivals — keep pulling
  // and scoring until the pull comes back empty, so every request visible
  // this tick has been evaluated before any admission runs.
  while (true) {
    ControlPass(now, pool, &rejected, &degraded);
    if (!ctx.pull_arrivals || ctx.pull_arrivals(now) == 0) {
      break;
    }
  }
  // Gate arrival pulls for the rest of the tick: a mid-tick arrival must
  // not reach admission before the next boundary control pass scores it.
  // Everything already queued has been scored, so mid-tick admission
  // still runs — over evaluated candidates only.
  ServingContext gated = ctx;
  gated.pull_arrivals = nullptr;
  TickResult tick = EdfScheduler::Tick(now, pool, gated);
  tick.record.rejected += rejected;
  tick.record.degraded += degraded;
  return tick;
}

}  // namespace adaserve
