#include "src/baselines/sarathi.h"

#include <algorithm>

#include "src/spec/verifier.h"

namespace adaserve {

IterationRecord SarathiScheduler::DecodePhase(SimTime now, RequestPool& pool,
                                              ServingContext& ctx) {
  std::vector<RequestId> running = RunningRequests(pool);
  if (static_cast<int>(running.size()) > config_.chunk_budget) {
    running.resize(static_cast<size_t>(config_.chunk_budget));
  }
  return RunDecodeIteration(now, pool, ctx, running);
}

IterationRecord SarathiScheduler::DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) {
  IterationRecord record;
  const std::vector<RequestId> running = RunningRequests(pool);
  const std::vector<RequestId> prefilling = PrefillingRequests(pool);

  // Decode tokens first (Sarathi admits decodes before prefill chunks so
  // ongoing requests never starve).
  const int decode_tokens =
      std::min<int>(static_cast<int>(running.size()), config_.chunk_budget);
  std::vector<RequestId> decode_batch(running.begin(), running.begin() + decode_tokens);

  // Fill the remaining budget with prompt chunks, FIFO.
  int budget = config_.chunk_budget - decode_tokens;
  struct Chunk {
    RequestId id;
    int tokens;
  };
  std::vector<Chunk> chunks;
  for (RequestId id : prefilling) {
    if (budget <= 0) {
      break;
    }
    const Request& req = pool.Get(id);
    const int remaining = req.prompt_len - req.prefill_progress;
    const int take = std::min(remaining, budget);
    chunks.push_back({id, take});
    budget -= take;
  }
  // Guarantee progress even if the budget is consumed by decodes alone and
  // there is nothing to decode (possible only when budget < batch size).
  if (decode_batch.empty() && chunks.empty() && !prefilling.empty()) {
    chunks.push_back({prefilling.front(), std::min(config_.chunk_budget,
                                                   pool.Get(prefilling.front()).prompt_len)});
  }

  int batch_tokens = decode_tokens;
  for (const Chunk& c : chunks) {
    batch_tokens += c.tokens;
  }
  if (batch_tokens == 0) {
    return record;
  }

  std::vector<RequestId> all_ids = decode_batch;
  for (const Chunk& c : chunks) {
    all_ids.push_back(c.id);
  }
  const long context = pool.SumContextTokens(all_ids);
  const SimTime latency = ctx.target_latency->ForwardLatency(batch_tokens, context,
                                                             /*use_cuda_graph=*/false);
  const SimTime end = now + latency;

  for (RequestId id : decode_batch) {
    Request& req = pool.Get(id);
    if (req.decode_start_time < 0.0) {
      req.decode_start_time = now;
    }
    const Token token =
        DecodeOneToken(*ctx.target, req.stream_seed, req.output, ctx.mode, *ctx.rng);
    pool.CommitToken(id, token, end);
    ++record.committed_tokens;
  }
  for (const Chunk& c : chunks) {
    pool.AdvancePrefill(c.id, c.tokens);
    record.prefill_tokens += c.tokens;
    Request& req = pool.Get(c.id);
    if (req.PrefillDone()) {
      const Token first =
          DecodeOneToken(*ctx.target, req.stream_seed, req.output, ctx.mode, *ctx.rng);
      pool.CommitToken(c.id, first, end);
      ++record.committed_tokens;
    }
  }

  record.duration = latency;
  // Attribute time proportionally between decode and prefill work.
  const double prefill_share =
      batch_tokens == 0 ? 0.0 : static_cast<double>(record.prefill_tokens) / batch_tokens;
  record.prefill_time = latency * prefill_share;
  record.verify_time = latency - record.prefill_time;
  record.decode_requests = static_cast<int>(decode_batch.size());
  return record;
}

}  // namespace adaserve
