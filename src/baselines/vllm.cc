#include "src/baselines/vllm.h"

namespace adaserve {

IterationRecord VllmScheduler::DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) {
  IterationRecord record;
  if (RunFullPrefillIteration(now, pool, ctx, config_.max_prefill_tokens, record)) {
    return record;
  }
  return DecodePhase(now, pool, ctx);
}

IterationRecord VllmScheduler::DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) {
  return RunDecodeIteration(now, pool, ctx, RunningRequests(pool));
}

}  // namespace adaserve
