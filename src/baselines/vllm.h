// vLLM-style continuous batching (§2, §6.1 baselines).
//
// Prefill-priority: whenever an admitted request still needs prefill, run a
// full-prompt prefill iteration (vLLM v0.8.x default scheduling); otherwise
// run one decode iteration over every running request, committing exactly
// one token each. Per-token latency is therefore uniform across the batch —
// the limitation AdaServe targets.
#ifndef ADASERVE_SRC_BASELINES_VLLM_H_
#define ADASERVE_SRC_BASELINES_VLLM_H_

#include "src/serve/scheduler.h"

namespace adaserve {

struct VllmConfig {
  // Cap on tokens batched into one prefill iteration (max_num_batched_tokens).
  int max_prefill_tokens = 4096;
};

class VllmScheduler : public Scheduler {
 public:
  explicit VllmScheduler(const VllmConfig& config = {}) : config_(config) {}

  std::string_view name() const override { return "vLLM"; }

  // vLLM admits strictly FIFO; SLO-blindness at admission is part of the
  // baseline the paper compares against.
  PriorityPolicy AdmissionPriority() const override { return PriorityPolicy::kFifo; }

 protected:
  IterationRecord DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) override;
  IterationRecord DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) override;

 private:
  VllmConfig config_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_BASELINES_VLLM_H_
