// FastServe: preemptive MLFQ scheduling (Fig. 1 baseline).
//
// Skip-join multi-level feedback queue at token granularity: requests enter
// a priority level, are demoted after exhausting the level's token quantum,
// and each decode iteration serves only the highest-priority non-empty
// level. Short requests finish fast; long ones sink. SLO-blind by design.
#ifndef ADASERVE_SRC_BASELINES_FASTSERVE_H_
#define ADASERVE_SRC_BASELINES_FASTSERVE_H_

#include <unordered_map>

#include "src/serve/scheduler.h"

namespace adaserve {

struct FastServeConfig {
  // Token quantum of the highest-priority level; level i gets base << i.
  int base_quantum = 16;
  int num_levels = 5;
  // Decode batch cap. Higher-priority levels fill the batch first; lower
  // levels back-fill so demoted requests are not starved while the GPU has
  // spare batch slots (FastServe batches across queues).
  int max_batch = 16;
  int max_prefill_tokens = 4096;
};

class FastServeScheduler : public Scheduler {
 public:
  explicit FastServeScheduler(const FastServeConfig& config = {}) : config_(config) {}

  std::string_view name() const override { return "FastServe"; }

  // MLFQ prioritizes by service received, not SLO; admission stays FIFO
  // (the skip-join queue assignment happens after admission).
  PriorityPolicy AdmissionPriority() const override { return PriorityPolicy::kFifo; }

 protected:
  IterationRecord DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) override;
  // Tick-native decode phase: the MLFQ-prioritized decode batch.
  IterationRecord DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) override;

 private:
  struct MlfqState {
    int level = 0;
    int served_in_level = 0;
  };

  int QuantumOf(int level) const { return config_.base_quantum << level; }

  FastServeConfig config_;
  std::unordered_map<RequestId, MlfqState> mlfq_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_BASELINES_FASTSERVE_H_
