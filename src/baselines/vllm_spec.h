// vLLM with sequence-based speculative decoding, vLLM-Spec(k) (§6.1).
//
// A static speculation strategy: every decode iteration drafts a k-token
// greedy chain per request and verifies all chains in one batched target
// pass. k is fixed regardless of load — the rigidity AdaServe's adaptive
// control removes.
#ifndef ADASERVE_SRC_BASELINES_VLLM_SPEC_H_
#define ADASERVE_SRC_BASELINES_VLLM_SPEC_H_

#include <string>

#include "src/serve/scheduler.h"

namespace adaserve {

struct VllmSpecConfig {
  // Fixed speculation length (the paper evaluates 4, 6, 8).
  int spec_len = 4;
  int max_prefill_tokens = 4096;
};

class VllmSpecScheduler : public Scheduler {
 public:
  explicit VllmSpecScheduler(const VllmSpecConfig& config = {});

  std::string_view name() const override { return name_; }

  // Speculation changes decode, not admission: FIFO like base vLLM.
  PriorityPolicy AdmissionPriority() const override { return PriorityPolicy::kFifo; }

 protected:
  IterationRecord DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) override;
  // Tick-native decode phase: the k-token chain speculate-verify pass.
  IterationRecord DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) override;

 private:
  VllmSpecConfig config_;
  std::string name_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_BASELINES_VLLM_SPEC_H_
