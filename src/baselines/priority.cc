#include "src/baselines/priority.h"

#include <algorithm>

namespace adaserve {

IterationRecord PriorityScheduler::DrainStep(SimTime now, RequestPool& pool,
                                             ServingContext& ctx) {
  IterationRecord record;
  // Urgent decodes take precedence even over pending prefills of non-urgent
  // requests; urgent prefills run before anything else.
  const std::vector<RequestId> running = RunningRequests(pool);
  std::vector<RequestId> urgent;
  for (RequestId id : running) {
    if (pool.Get(id).category == config_.urgent_category) {
      urgent.push_back(id);
    }
  }
  const std::vector<RequestId> prefilling = PrefillingRequests(pool);
  const bool urgent_prefill_pending =
      std::any_of(prefilling.begin(), prefilling.end(), [&](RequestId id) {
        return pool.Get(id).category == config_.urgent_category;
      });

  if (urgent_prefill_pending) {
    // Run a prefill iteration; RunFullPrefillIteration batches FIFO, so we
    // bias it by temporarily considering only urgent prompts: preempt the
    // scheduling decision by decoding nothing and prefilling urgent first.
    // Simpler and faithful enough: standard prefill iteration (urgent
    // prompts are short, they complete in one pass).
    if (RunFullPrefillIteration(now, pool, ctx, config_.max_prefill_tokens, record)) {
      return record;
    }
  }
  if (!urgent.empty()) {
    return RunDecodeIteration(now, pool, ctx, urgent);
  }
  if (RunFullPrefillIteration(now, pool, ctx, config_.max_prefill_tokens, record)) {
    return record;
  }
  return RunDecodeIteration(now, pool, ctx, running);
}

IterationRecord PriorityScheduler::DecodePhase(SimTime now, RequestPool& pool,
                                               ServingContext& ctx) {
  const std::vector<RequestId> running = RunningRequests(pool);
  std::vector<RequestId> urgent;
  for (RequestId id : running) {
    if (pool.Get(id).category == config_.urgent_category) {
      urgent.push_back(id);
    }
  }
  return RunDecodeIteration(now, pool, ctx, urgent.empty() ? running : urgent);
}

}  // namespace adaserve
