// vLLM + Priority (Fig. 1 baseline).
//
// Urgent requests (tightest-SLO category) preempt non-urgent ones during
// decoding: whenever any urgent request is running, the decode batch
// contains only urgent requests. Urgent prompts also jump the prefill
// queue. This attains tight SLOs for the urgent class but shrinks effective
// batch sizes, congesting everything else — the failure mode Fig. 1 shows.
#ifndef ADASERVE_SRC_BASELINES_PRIORITY_H_
#define ADASERVE_SRC_BASELINES_PRIORITY_H_

#include "src/serve/scheduler.h"

namespace adaserve {

struct PriorityConfig {
  // Category treated as urgent (Cat 1 by default).
  int urgent_category = 0;
  int max_prefill_tokens = 4096;
};

class PriorityScheduler : public Scheduler {
 public:
  explicit PriorityScheduler(const PriorityConfig& config = {}) : config_(config) {}

  std::string_view name() const override { return "vLLM+Priority"; }

  // Priority extends to tick-native admission: urgent arrivals jump the
  // queue, consistent with the urgent-only decode batches below.
  PriorityPolicy AdmissionPriority() const override { return PriorityPolicy::kSloUrgentFirst; }

 protected:
  IterationRecord DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) override;
  // Tick-native decode phase: urgent-only decode whenever any urgent
  // request is running, otherwise the full running batch.
  IterationRecord DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) override;

 private:
  PriorityConfig config_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_BASELINES_PRIORITY_H_
