#include "src/baselines/static_tree_spec.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/spec/verifier.h"

namespace adaserve {

TokenTree BuildStaticTree(const DraftLm& draft, uint64_t stream, std::span<const Token> committed,
                          const std::vector<int>& branching) {
  ADASERVE_CHECK(!branching.empty()) << "static tree needs at least one level";
  const Token root_token = committed.empty() ? kInvalidToken : committed.back();
  TokenTree tree(root_token);
  std::vector<NodeId> frontier = {kRootNode};
  const std::vector<Token> base(committed.begin(), committed.end());
  for (int k : branching) {
    ADASERVE_CHECK(k >= 1) << "branching factors must be positive";
    std::vector<NodeId> next;
    for (NodeId node : frontier) {
      std::vector<Token> ctx = base;
      const std::vector<Token> path = tree.PathTokens(node);
      ctx.insert(ctx.end(), path.begin(), path.end());
      const SparseDist dist = draft.NextDist(stream, ctx);
      const int take = std::min<int>(k, static_cast<int>(dist.size()));
      for (int i = 0; i < take; ++i) {
        next.push_back(tree.AddNode(node, dist.entry(i).token, dist.entry(i).prob));
      }
    }
    frontier = std::move(next);
  }
  return tree;
}

StaticTreeSpecScheduler::StaticTreeSpecScheduler(const StaticTreeConfig& config)
    : config_(config) {
  tokens_per_tree_ = 0;
  int level_width = 1;
  std::string shape;
  for (int k : config_.branching) {
    level_width *= k;
    tokens_per_tree_ += level_width;
    if (!shape.empty()) shape += 'x';
    shape += std::to_string(k);
  }
  name_ = "StaticTree(" + shape + ")";
}

IterationRecord StaticTreeSpecScheduler::DrainStep(SimTime now, RequestPool& pool,
                                                   ServingContext& ctx) {
  IterationRecord record;
  if (RunFullPrefillIteration(now, pool, ctx, config_.max_prefill_tokens, record)) {
    return record;
  }
  return DecodePhase(now, pool, ctx);
}

IterationRecord StaticTreeSpecScheduler::DecodePhase(SimTime now, RequestPool& pool,
                                                     ServingContext& ctx) {
  IterationRecord record;
  const std::vector<RequestId> running = RunningRequests(pool);
  if (running.empty()) {
    return record;
  }
  const int n = static_cast<int>(running.size());
  const int depth = static_cast<int>(config_.branching.size());

  // Draft phase: one step per level; the batch width grows with the level.
  const long draft_context = pool.SumContextTokens(running);
  SimTime spec_time = 0.0;
  int level_width = 1;
  for (int level = 0; level < depth; ++level) {
    spec_time += ctx.draft_latency->ForwardLatency(n * level_width, draft_context,
                                                   /*use_cuda_graph=*/true);
    level_width *= config_.branching[static_cast<size_t>(level)];
  }

  const SimTime verify_time = ctx.target_latency->ForwardLatency(
      n * (tokens_per_tree_ + 1), pool.SumContextTokens(running), /*use_cuda_graph=*/true);
  const SimTime latency = spec_time + verify_time;
  const SimTime end = now + latency;

  for (RequestId id : running) {
    Request& req = pool.Get(id);
    if (req.decode_start_time < 0.0) {
      req.decode_start_time = now;
    }
    const TokenTree tree =
        BuildStaticTree(*ctx.draft, req.stream_seed, req.output, config_.branching);
    const VerifyResult verdict = VerifyTree(*ctx.target, req.stream_seed, req.output, tree,
                                            /*selected=*/{}, ctx.mode, *ctx.rng);
    req.verifications += 1;
    req.accepted_tokens += static_cast<long>(verdict.accepted.size());
    req.verified_tokens += verdict.tokens_verified;
    record.verified_tokens += verdict.tokens_verified;
    for (Token t : verdict.accepted) {
      if (pool.Get(id).state != RequestState::kRunning) {
        break;
      }
      pool.CommitToken(id, t, end);
      ++record.committed_tokens;
    }
    if (pool.Get(id).state == RequestState::kRunning) {
      pool.CommitToken(id, verdict.bonus, end);
      ++record.committed_tokens;
    }
  }

  record.duration = latency;
  record.spec_time = spec_time;
  record.verify_time = verify_time;
  record.decode_requests = n;
  return record;
}

}  // namespace adaserve
