// Static-topology tree speculation (SpecInfer/Medusa-style, §7).
//
// Early tree-based speculative decoding fixes the tree *shape* per
// iteration — e.g. expand the top-k1 draft tokens at depth 1, top-k2 under
// each at depth 2, and so on — independent of request SLOs or load. This
// baseline rounds out the design space between vLLM-Spec's chains and
// AdaServe's SLO-customized trees, and feeds the tree-topology ablation.
#ifndef ADASERVE_SRC_BASELINES_STATIC_TREE_SPEC_H_
#define ADASERVE_SRC_BASELINES_STATIC_TREE_SPEC_H_

#include <string>
#include <vector>

#include "src/serve/scheduler.h"
#include "src/spec/token_tree.h"

namespace adaserve {

struct StaticTreeConfig {
  // Branching factor per level; the tree has branching.size() levels.
  // Default (3, 2, 2, 1): 3 + 6 + 12 + 12 = 33 nodes... kept modest:
  std::vector<int> branching = {3, 2, 1};
  int max_prefill_tokens = 4096;
};

// Builds the fixed-topology draft tree for one request: at each level,
// every frontier node expands its top-k draft children, k given by the
// level's branching factor.
TokenTree BuildStaticTree(const DraftLm& draft, uint64_t stream, std::span<const Token> committed,
                          const std::vector<int>& branching);

class StaticTreeSpecScheduler : public Scheduler {
 public:
  explicit StaticTreeSpecScheduler(const StaticTreeConfig& config = {});

  std::string_view name() const override { return name_; }

 protected:
  IterationRecord DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) override;
  // Tick-native decode phase: the fixed-topology tree speculate-verify pass.
  IterationRecord DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) override;

 private:
  StaticTreeConfig config_;
  std::string name_;
  int tokens_per_tree_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_BASELINES_STATIC_TREE_SPEC_H_
