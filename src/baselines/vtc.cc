#include "src/baselines/vtc.h"

#include <algorithm>

namespace adaserve {

IterationRecord VtcScheduler::DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) {
  IterationRecord record;
  if (RunFullPrefillIteration(now, pool, ctx, config_.max_prefill_tokens, record)) {
    return record;
  }
  return DecodePhase(now, pool, ctx);
}

IterationRecord VtcScheduler::DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) {
  IterationRecord record;
  std::vector<RequestId> running = RunningRequests(pool);
  if (running.empty()) {
    return record;
  }
  // Least-served categories first; FIFO within a category.
  std::stable_sort(running.begin(), running.end(), [&](RequestId a, RequestId b) {
    return counters_[static_cast<size_t>(pool.Get(a).category)] <
           counters_[static_cast<size_t>(pool.Get(b).category)];
  });
  if (static_cast<int>(running.size()) > config_.max_batch) {
    running.resize(static_cast<size_t>(config_.max_batch));
  }
  record = RunDecodeIteration(now, pool, ctx, running);
  for (RequestId id : running) {
    const auto cat = static_cast<size_t>(pool.Get(id).category);
    counters_[cat] += 1.0 / config_.weights[cat];
  }
  return record;
}

}  // namespace adaserve
