#include "src/baselines/fastserve.h"

#include <algorithm>

namespace adaserve {

IterationRecord FastServeScheduler::DrainStep(SimTime now, RequestPool& pool,
                                              ServingContext& ctx) {
  IterationRecord record;
  if (RunFullPrefillIteration(now, pool, ctx, config_.max_prefill_tokens, record)) {
    return record;
  }
  return DecodePhase(now, pool, ctx);
}

IterationRecord FastServeScheduler::DecodePhase(SimTime now, RequestPool& pool,
                                                ServingContext& ctx) {
  IterationRecord record;
  const std::vector<RequestId> running = RunningRequests(pool);
  if (running.empty()) {
    return record;
  }
  // Skip-join: new requests enter at a level whose quantum covers their
  // prompt (longer prompts imply longer jobs, FastServe §4.2).
  for (RequestId id : running) {
    if (!mlfq_.contains(id)) {
      MlfqState state;
      while (state.level < config_.num_levels - 1 &&
             QuantumOf(state.level) < pool.Get(id).prompt_len / 8) {
        ++state.level;
      }
      mlfq_[id] = state;
    }
  }
  // Fill the decode batch in priority order: highest-priority levels first,
  // lower levels back-fill remaining batch slots.
  std::vector<RequestId> batch = running;
  std::stable_sort(batch.begin(), batch.end(),
                   [this](RequestId a, RequestId b) { return mlfq_[a].level < mlfq_[b].level; });
  if (static_cast<int>(batch.size()) > config_.max_batch) {
    batch.resize(static_cast<size_t>(config_.max_batch));
  }
  record = RunDecodeIteration(now, pool, ctx, batch);
  // Demote requests that exhausted their quantum.
  for (RequestId id : batch) {
    MlfqState& state = mlfq_[id];
    ++state.served_in_level;
    if (state.served_in_level >= QuantumOf(state.level) &&
        state.level < config_.num_levels - 1) {
      ++state.level;
      state.served_in_level = 0;
    }
  }
  return record;
}

}  // namespace adaserve
