// VTC: virtual token counter fair scheduling (Fig. 1 baseline).
//
// Each service (request category) accrues a virtual counter of served
// tokens; decode iterations batch requests from the least-served categories
// first, bounded by a fairness batch cap. Fair across services, but blind
// to SLO heterogeneity.
#ifndef ADASERVE_SRC_BASELINES_VTC_H_
#define ADASERVE_SRC_BASELINES_VTC_H_

#include <array>

#include "src/serve/scheduler.h"
#include "src/workload/categories.h"

namespace adaserve {

struct VtcConfig {
  // Fair-sharing batch cap per decode iteration. Small enough to bind under
  // load, so the virtual counters actually time-slice the categories.
  int max_batch = 16;
  // Per-category service weights (tokens are charged as tokens / weight).
  std::array<double, kNumCategories> weights = {1.0, 1.0, 1.0};
  int max_prefill_tokens = 4096;
};

class VtcScheduler : public Scheduler {
 public:
  explicit VtcScheduler(const VtcConfig& config = {}) : config_(config) { counters_.fill(0.0); }

  std::string_view name() const override { return "VTC"; }

  // Fairness across services is the point: admission must not favor a
  // category, so VTC keeps FIFO admission.
  PriorityPolicy AdmissionPriority() const override { return PriorityPolicy::kFifo; }

 protected:
  IterationRecord DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) override;
  // Tick-native decode phase: the counter-ordered fair decode batch.
  IterationRecord DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) override;

 private:
  VtcConfig config_;
  std::array<double, kNumCategories> counters_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_BASELINES_VTC_H_
