#include "src/baselines/edf.h"

#include <algorithm>

namespace adaserve {

std::vector<RequestId> EdfDecodeBatch(SimTime now, const RequestPool& pool,
                                      const ServingContext& ctx) {
  std::vector<RequestId> running = RunningRequests(pool);
  if (running.empty()) {
    return running;
  }
  // Deadline order; ids (arrival order) break ties so the order is total
  // and deterministic.
  std::sort(running.begin(), running.end(), [&pool](RequestId a, RequestId b) {
    const SimTime da = NextTokenDeadline(pool.Get(a));
    const SimTime db = NextTokenDeadline(pool.Get(b));
    return da != db ? da < db : a < b;
  });
  // Largest feasible prefix: growing the batch raises everyone's iteration
  // latency, so EDF sheds the latest-deadline requests first when the full
  // batch would miss the earliest live deadline. The binding constraint of
  // a sorted prefix is its first not-yet-overdue deadline (overdue ones
  // are sunk tardiness and constrain nothing), which never changes once
  // seen — so feasibility is monotone and one forward scan finds the cut.
  size_t k = 1;
  long context = 0;
  SimTime binding_deadline = 0.0;
  bool have_binding = false;
  for (size_t i = 0; i < running.size(); ++i) {
    context += pool.Get(running[i]).KvTokens();
    if (!have_binding) {
      const SimTime deadline = NextTokenDeadline(pool.Get(running[i]));
      if (deadline > now) {
        binding_deadline = deadline;
        have_binding = true;
      }
    }
    if (have_binding) {
      const SimTime latency = ctx.target_latency->ForwardLatency(
          static_cast<int>(i + 1), context, /*use_cuda_graph=*/true);
      if (i + 1 > 1 && now + latency > binding_deadline) {
        break;  // This and every larger prefix misses the binding deadline.
      }
    }
    k = i + 1;
  }
  running.resize(k);
  return running;
}

IterationRecord EdfScheduler::DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) {
  IterationRecord record;
  if (RunFullPrefillIteration(now, pool, ctx, config_.max_prefill_tokens, record)) {
    return record;
  }
  return DecodePhase(now, pool, ctx);
}

IterationRecord EdfScheduler::DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) {
  return RunDecodeIteration(now, pool, ctx, EdfDecodeBatch(now, pool, ctx));
}

}  // namespace adaserve
