// Earliest-deadline-first on TPOT deadlines (deadline-theoretic baseline).
//
// The classic real-time answer to the problem AdaServe attacks with
// SLO-customized speculation: every request carries a *next token
// deadline* (NextTokenDeadline — first_token_time + committed_len *
// tpot_slo once decoding started), and the scheduler orders every
// decision by it. Admission ranks earliest-deadline-first
// (PriorityPolicy::kEdf, so the TickPolicy pause/evict machinery composes
// unchanged), the prefill budget is spent tightest-deadline-first, and
// the decode phase runs the largest deadline-sorted prefix of the running
// batch that can still meet its earliest live deadline — EDF's "serve the
// most urgent job, shed what provably cannot be helped by serving
// everyone" discipline, adapted to batched decoding.
#ifndef ADASERVE_SRC_BASELINES_EDF_H_
#define ADASERVE_SRC_BASELINES_EDF_H_

#include "src/serve/scheduler.h"

namespace adaserve {

struct EdfConfig {
  // Cap on tokens batched into one boundary-mode prefill iteration.
  int max_prefill_tokens = 4096;
};

// Picks the EDF decode batch at `now`: the running requests sorted by
// (NextTokenDeadline, id), truncated to the largest prefix whose batched
// forward latency still meets the prefix's earliest not-yet-overdue
// deadline. Overdue deadlines impose no constraint (the tardiness is
// already sunk; EDF keeps serving them by order), and the prefix never
// shrinks below one request, so progress is guaranteed. Exposed for the
// EDF law tests.
std::vector<RequestId> EdfDecodeBatch(SimTime now, const RequestPool& pool,
                                      const ServingContext& ctx);

class EdfScheduler : public Scheduler {
 public:
  explicit EdfScheduler(const EdfConfig& config = {}) : config_(config) {}

  std::string_view name() const override { return "EDF"; }

  // Deadline order extends to tick-native admission and the pause/evict
  // machinery: the queue head is the earliest deadline, and victims are
  // latest-deadline prefilling requests.
  PriorityPolicy AdmissionPriority() const override { return PriorityPolicy::kEdf; }

 protected:
  IterationRecord DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) override;
  IterationRecord DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) override;

 private:
  EdfConfig config_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_BASELINES_EDF_H_
