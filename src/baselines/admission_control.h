// Utilization-bound admission control over EDF (deadline-theoretic
// baseline, second half).
//
// Classic real-time admission: a request demanding one token every
// `tpot_slo` seconds consumes u = (1 / tpot_slo) / service_tps of the
// replica's decode capacity, where service_tps is the same roofline-derived
// service rate the cluster router seeds its state with
// (DeriveServiceTps, src/hw/budget.h). The controller evaluates every
// request once, when it first becomes visible in the admission queue, and
// keeps the live accepted utilization at or below `utilization_bound`:
// a candidate that fits is accepted; one that does not is either
// SLO-degraded — its tpot_slo loosened to exactly the rate the remaining
// headroom can serve, capped at `max_degrade_factor` times the original —
// or rejected outright (RequestPool::Reject, no service, counted in
// Metrics::rejections). Accepted requests release their utilization when
// they finish.
//
// The controller runs only in tick-native (continuous) mode: boundary mode
// is defined as the legacy drain loop and stays plain EDF. Like VTC, the
// scheduler is stateful — use one instance per run.
#ifndef ADASERVE_SRC_BASELINES_ADMISSION_CONTROL_H_
#define ADASERVE_SRC_BASELINES_ADMISSION_CONTROL_H_

#include <map>

#include "src/baselines/edf.h"

namespace adaserve {

struct AdmissionControlConfig {
  // Fraction of the replica's service rate the accepted set may demand.
  double utilization_bound = 1.0;
  // Allow loosening an unservable candidate's TPOT SLO instead of
  // rejecting it (counted in Metrics::degraded).
  bool allow_degrade = true;
  // A degraded SLO may grow to at most this multiple of the original;
  // candidates needing more are rejected.
  double max_degrade_factor = 4.0;
  // Boundary-mode prefill cap (passes through to the EDF base).
  int max_prefill_tokens = 4096;
};

class AdmissionControlScheduler : public EdfScheduler {
 public:
  explicit AdmissionControlScheduler(const AdmissionControlConfig& config = {})
      : EdfScheduler(EdfConfig{.max_prefill_tokens = config.max_prefill_tokens}),
        config_(config) {}

  std::string_view name() const override { return "EDF+AC"; }

  TickResult Tick(SimTime now, RequestPool& pool, ServingContext& ctx) override;

  // Live accepted utilization (law tests assert it never exceeds the
  // bound). Valid after any tick.
  double utilization() const { return utilization_; }
  // The roofline service rate the controller scores demand against;
  // derived from the serving context's target latency model on first use.
  double service_tps() const { return service_tps_; }
  const AdmissionControlConfig& config() const { return config_; }

 private:
  // Reclaims utilization of accepted requests that have finished, in id
  // order (deterministic floating-point accumulation).
  void Reclaim(const RequestPool& pool);
  // Evaluates every not-yet-seen queued request in id order, accepting,
  // degrading, or rejecting each; advances the seen-watermark.
  void ControlPass(SimTime now, RequestPool& pool, int* rejected, int* degraded);

  AdmissionControlConfig config_;
  double service_tps_ = 0.0;
  // Utilization charged per live accepted request, keyed by id (ordered:
  // reclaim order must be deterministic).
  std::map<RequestId, double> accepted_util_;
  double utilization_ = 0.0;
  // Requests with id below this have been evaluated (accepted, degraded,
  // or rejected); re-queued evicted/paused requests stay accepted and are
  // not re-scored.
  RequestId next_fresh_id_ = 0;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_BASELINES_ADMISSION_CONTROL_H_
