#include "src/baselines/vllm_spec.h"

#include "src/common/logging.h"
#include "src/spec/sequence_spec.h"
#include "src/spec/verifier.h"

namespace adaserve {

VllmSpecScheduler::VllmSpecScheduler(const VllmSpecConfig& config)
    : config_(config), name_("vLLM-Spec(" + std::to_string(config.spec_len) + ")") {
  ADASERVE_CHECK(config_.spec_len >= 1) << "speculation length must be >= 1";
}

IterationRecord VllmSpecScheduler::DrainStep(SimTime now, RequestPool& pool,
                                             ServingContext& ctx) {
  IterationRecord record;
  if (RunFullPrefillIteration(now, pool, ctx, config_.max_prefill_tokens, record)) {
    return record;
  }
  return DecodePhase(now, pool, ctx);
}

IterationRecord VllmSpecScheduler::DecodePhase(SimTime now, RequestPool& pool,
                                               ServingContext& ctx) {
  IterationRecord record;
  const std::vector<RequestId> running = RunningRequests(pool);
  if (running.empty()) {
    return record;
  }
  const int n = static_cast<int>(running.size());
  const int k = config_.spec_len;

  // Draft phase: k sequential draft-model steps over the whole batch.
  const long draft_context = pool.SumContextTokens(running);
  SimTime spec_time = 0.0;
  for (int step = 0; step < k; ++step) {
    spec_time += ctx.draft_latency->ForwardLatency(n, draft_context + n * step,
                                                   /*use_cuda_graph=*/true);
  }

  // Verification: each request contributes its root + k chain tokens.
  const long verify_context = pool.SumContextTokens(running);
  const SimTime verify_time = ctx.target_latency->ForwardLatency(n * (k + 1), verify_context,
                                                                 /*use_cuda_graph=*/true);
  const SimTime latency = spec_time + verify_time;
  const SimTime end = now + latency;

  for (RequestId id : running) {
    Request& req = pool.Get(id);
    if (req.decode_start_time < 0.0) {
      req.decode_start_time = now;
    }
    const TokenTree chain = BuildChainTree(*ctx.draft, req.stream_seed, req.output, k);
    const VerifyResult verdict = VerifyTree(*ctx.target, req.stream_seed, req.output, chain,
                                            /*selected=*/{}, ctx.mode, *ctx.rng);
    req.verifications += 1;
    req.accepted_tokens += static_cast<long>(verdict.accepted.size());
    req.verified_tokens += verdict.tokens_verified;
    record.verified_tokens += verdict.tokens_verified;
    for (Token t : verdict.accepted) {
      if (pool.Get(id).state != RequestState::kRunning) {
        break;  // Finished mid-path; drop surplus speculated tokens.
      }
      pool.CommitToken(id, t, end);
      ++record.committed_tokens;
    }
    if (pool.Get(id).state == RequestState::kRunning) {
      pool.CommitToken(id, verdict.bonus, end);
      ++record.committed_tokens;
    }
  }

  record.duration = latency;
  record.spec_time = spec_time;
  record.verify_time = verify_time;
  record.decode_requests = n;
  return record;
}

}  // namespace adaserve
