// Sarathi-Serve: chunked prefill co-batched with decode (§2, §7).
//
// Each iteration fills a fixed token budget: first one decode token per
// running request, then prompt chunks from prefilling requests. Long
// prompts no longer stall decodes, at the cost of slightly longer
// iterations — the throughput/latency trade Sarathi targets.
#ifndef ADASERVE_SRC_BASELINES_SARATHI_H_
#define ADASERVE_SRC_BASELINES_SARATHI_H_

#include "src/serve/scheduler.h"

namespace adaserve {

struct SarathiConfig {
  // Per-iteration token budget shared by decode tokens and prefill chunks.
  int chunk_budget = 512;
};

class SarathiScheduler : public Scheduler {
 public:
  explicit SarathiScheduler(const SarathiConfig& config = {}) : config_(config) {}

  std::string_view name() const override { return "Sarathi-Serve"; }

  // Chunked prefill changes iteration shape, not admission order: FIFO.
  PriorityPolicy AdmissionPriority() const override { return PriorityPolicy::kFifo; }

 protected:
  IterationRecord DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) override;
  // Tick-native decode phase: the decode half of the chunk budget. Prompt
  // chunks move to the shared burst-capped prefill phase of the tick.
  IterationRecord DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) override;

 private:
  SarathiConfig config_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_BASELINES_SARATHI_H_
