#include "src/workload/arrival_stream.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace adaserve {

MaterializedStream::MaterializedStream(std::vector<Request> requests)
    : requests_(std::move(requests)) {
  ADASERVE_CHECK(std::is_sorted(
      requests_.begin(), requests_.end(),
      [](const Request& a, const Request& b) { return a.arrival < b.arrival; }))
      << "requests must be sorted by arrival";
}

const Request* MaterializedStream::Peek() {
  return pos_ < requests_.size() ? &requests_[pos_] : nullptr;
}

Request MaterializedStream::Next() {
  ADASERVE_CHECK(pos_ < requests_.size()) << "Next() on exhausted stream";
  return requests_[pos_++];
}

std::vector<Request> Materialize(ArrivalStream& stream, size_t max_requests) {
  std::vector<Request> requests;
  while (!stream.Exhausted() && requests.size() < max_requests) {
    requests.push_back(stream.Next());
  }
  return requests;
}

}  // namespace adaserve
