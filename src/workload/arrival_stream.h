// Pull-based arrival streams: the lazy interface between workload
// generation and the serving engine.
//
// A stream yields requests one at a time in nondecreasing arrival order
// with dense sequential ids. The engine consumes streams incrementally
// (peek the next arrival time, pull when due), so a generator-backed
// stream never materializes its trace: a million-request run holds only
// the active requests plus a small admission horizon in memory.
// MaterializedStream adapts the classic pre-built vector so the legacy
// path and every golden baseline run unchanged.
#ifndef ADASERVE_SRC_WORKLOAD_ARRIVAL_STREAM_H_
#define ADASERVE_SRC_WORKLOAD_ARRIVAL_STREAM_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "src/workload/request.h"

namespace adaserve {

class ArrivalStream {
 public:
  virtual ~ArrivalStream() = default;

  // True when no requests remain.
  virtual bool Exhausted() = 0;

  // The next request without consuming it; nullptr when exhausted. The
  // pointer is invalidated by the next call to Next().
  virtual const Request* Peek() = 0;

  // Consumes and returns the next request. Undefined when exhausted.
  virtual Request Next() = 0;

  // Requests consumed via Next() so far.
  virtual size_t emitted() const = 0;
};

// Adapts a pre-built, arrival-sorted request vector (BuildWorkload output)
// to the stream interface.
class MaterializedStream final : public ArrivalStream {
 public:
  // `requests` must be sorted by arrival time.
  explicit MaterializedStream(std::vector<Request> requests);

  bool Exhausted() override { return pos_ >= requests_.size(); }
  const Request* Peek() override;
  Request Next() override;
  size_t emitted() const override { return pos_; }

  size_t size() const { return requests_.size(); }

 private:
  std::vector<Request> requests_;
  size_t pos_ = 0;
};

// A workload handed to an engine/experiment Run: either a borrowed live
// ArrivalStream (lazy, streaming) or an owned request vector adapted via
// MaterializedStream (the classic pre-built trace). The implicit
// conversions unify what used to be two separate Run overloads — every
// historical call site compiles against the one WorkloadSource signature.
class WorkloadSource {
 public:
  // Owned trace: `requests` must be sorted by arrival time.
  WorkloadSource(std::vector<Request> requests)  // NOLINT(google-explicit-constructor)
      : owned_(std::make_unique<MaterializedStream>(std::move(requests))),
        stream_(owned_.get()) {}

  // Borrowed live stream; must outlive the Run call.
  WorkloadSource(ArrivalStream& stream)  // NOLINT(google-explicit-constructor)
      : stream_(&stream) {}

  ArrivalStream& stream() const { return *stream_; }

 private:
  std::unique_ptr<MaterializedStream> owned_;
  ArrivalStream* stream_;
};

// Drains up to `max_requests` requests into a vector. Useful for tests
// that compare a lazy stream against the legacy vector path, and for
// feeding stream-only generators to vector-based APIs.
std::vector<Request> Materialize(ArrivalStream& stream,
                                 size_t max_requests = static_cast<size_t>(-1));

}  // namespace adaserve

#endif  // ADASERVE_SRC_WORKLOAD_ARRIVAL_STREAM_H_
