#include "src/workload/trace_file.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <climits>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace adaserve {
namespace {

// Splits one CSV line on commas; no quoting (token counts and numbers
// never contain commas in this format).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) {
    cells.push_back(cell);
  }
  if (!line.empty() && line.back() == ',') {
    cells.emplace_back();
  }
  return cells;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

// std::from_chars, not std::stod: stod honors the global C locale, so a
// host set to a comma-decimal locale (de_DE et al.) would misparse "0.5"
// as 0 — from_chars always reads the "C"-locale format the writer emits.
bool ParseDouble(const std::string& cell, double* out) {
  const std::string t = Trim(cell);
  if (t.empty()) {
    return false;
  }
  const char* end = t.data() + t.size();
  const auto [ptr, ec] = std::from_chars(t.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseInt(const std::string& cell, int* out) {
  const std::string t = Trim(cell);
  if (t.empty()) {
    return false;
  }
  long value = 0;
  const char* end = t.data() + t.size();
  const auto [ptr, ec] = std::from_chars(t.data(), end, value);
  if (ec != std::errc() || ptr != end || value < INT_MIN || value > INT_MAX) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

void SetError(std::string* error, size_t line_no, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + message;
  }
}

}  // namespace

std::unique_ptr<TraceFileArrivalStream> TraceFileArrivalStream::FromString(
    const std::vector<CategorySpec>& categories, const std::string& csv, std::string* error) {
  ADASERVE_CHECK(categories.size() == kNumCategories) << "expected a full category table";
  if (error != nullptr) {
    error->clear();
  }

  std::vector<TraceFileRow> rows;
  std::stringstream ss(csv);
  std::string line;
  size_t line_no = 0;
  bool saw_content = false;
  while (std::getline(ss, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    const std::vector<std::string> cells = SplitCsvLine(trimmed);
    // An optional header ("timestamp,prompt_tokens,..."): recognized only
    // when NO cell is numeric, so a data row with one bad field still
    // reports its error instead of being skipped as a header.
    if (!saw_content) {
      saw_content = true;
      bool any_numeric = false;
      for (const std::string& cell : cells) {
        double probe = 0.0;
        if (ParseDouble(cell, &probe)) {
          any_numeric = true;
          break;
        }
      }
      if (!any_numeric) {
        continue;
      }
    }

    if (cells.size() < 4 || cells.size() > 5) {
      SetError(error, line_no,
               "expected 4-5 columns (timestamp,prompt_tokens,output_tokens,category[,tpot_slo]), "
               "got " +
                   std::to_string(cells.size()));
      return nullptr;
    }

    TraceFileRow row;
    if (!ParseDouble(cells[0], &row.timestamp)) {
      SetError(error, line_no, "bad timestamp '" + Trim(cells[0]) + "'");
      return nullptr;
    }
    if (row.timestamp < 0.0) {
      SetError(error, line_no, "negative timestamp");
      return nullptr;
    }
    if (!rows.empty() && row.timestamp < rows.back().timestamp) {
      SetError(error, line_no, "out-of-order timestamp (arrivals must be nondecreasing)");
      return nullptr;
    }
    if (!ParseInt(cells[1], &row.prompt_tokens) || row.prompt_tokens < 1) {
      SetError(error, line_no, "bad prompt_tokens '" + Trim(cells[1]) + "'");
      return nullptr;
    }
    if (!ParseInt(cells[2], &row.output_tokens) || row.output_tokens < 1) {
      SetError(error, line_no, "bad output_tokens '" + Trim(cells[2]) + "'");
      return nullptr;
    }
    // Minimum 2 output tokens so the TPOT denominator is well defined
    // (the generators clamp identically).
    row.output_tokens = std::max(2, row.output_tokens);
    if (!ParseInt(cells[3], &row.category) || row.category < 0 ||
        row.category >= kNumCategories) {
      SetError(error, line_no, "bad category '" + Trim(cells[3]) + "'");
      return nullptr;
    }
    if (cells.size() == 5 && !Trim(cells[4]).empty()) {
      if (!ParseDouble(cells[4], &row.tpot_slo) || row.tpot_slo <= 0.0) {
        SetError(error, line_no, "bad tpot_slo '" + Trim(cells[4]) + "'");
        return nullptr;
      }
    }
    rows.push_back(row);
  }

  if (rows.empty()) {
    if (error != nullptr) {
      *error = "trace holds no data rows";
    }
    return nullptr;
  }
  return std::unique_ptr<TraceFileArrivalStream>(
      new TraceFileArrivalStream(categories, std::move(rows)));
}

std::unique_ptr<TraceFileArrivalStream> TraceFileArrivalStream::Open(
    const std::vector<CategorySpec>& categories, const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open trace file '" + path + "'";
    }
    return nullptr;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return FromString(categories, buffer.str(), error);
}

Request TraceFileArrivalStream::BuildRequest(size_t index) const {
  const TraceFileRow& row = rows_[index];
  const CategorySpec& spec = categories_[static_cast<size_t>(row.category)];
  Request req;
  req.id = static_cast<RequestId>(index);
  req.category = row.category;
  req.tpot_slo = row.tpot_slo > 0.0 ? row.tpot_slo : spec.tpot_slo;
  req.arrival = row.timestamp;
  req.prompt_len = row.prompt_tokens;
  req.target_output_len = row.output_tokens;
  // Same stream-seed convention as the generators, so trace-driven runs
  // key token streams identically to a synthetic run with the same ids.
  req.stream_seed = HashCombine(Mix64(0xadaceedeULL), static_cast<uint64_t>(index));
  return req;
}

const Request* TraceFileArrivalStream::Peek() {
  if (Exhausted()) {
    return nullptr;
  }
  peeked_ = BuildRequest(next_);
  return &peeked_;
}

Request TraceFileArrivalStream::Next() {
  ADASERVE_CHECK(!Exhausted()) << "Next() on exhausted trace stream";
  return BuildRequest(next_++);
}

namespace {

// Locale-independent %.17g: snprintf writes the global locale's decimal
// point, which would break the CSV round trip on comma-decimal hosts;
// to_chars is specified to emit the C-locale format with the same
// precision semantics, so pre-existing traces stay byte-identical.
void AppendDouble(std::string* out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 17);
  ADASERVE_CHECK(res.ec == std::errc()) << "to_chars failed";
  out->append(buf, res.ptr);
}

}  // namespace

std::string TraceCsvFromRequests(std::span<const Request> requests) {
  std::string csv = "timestamp,prompt_tokens,output_tokens,category,tpot_slo\n";
  for (const Request& req : requests) {
    AppendDouble(&csv, req.arrival);
    csv += ',';
    csv += std::to_string(req.prompt_len);
    csv += ',';
    csv += std::to_string(req.target_output_len);
    csv += ',';
    csv += std::to_string(req.category);
    csv += ',';
    AppendDouble(&csv, req.tpot_slo);
    csv += '\n';
  }
  return csv;
}

bool WriteTraceCsv(const std::string& path, std::span<const Request> requests,
                   std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "' for writing";
    }
    return false;
  }
  out << TraceCsvFromRequests(requests);
  out.flush();
  if (!out) {
    if (error != nullptr) {
      *error = "write to '" + path + "' failed";
    }
    return false;
  }
  return true;
}

}  // namespace adaserve
