#include "src/workload/request.h"

#include "src/common/logging.h"

namespace adaserve {

double Request::AvgTpot() const {
  ADASERVE_CHECK(state == RequestState::kFinished) << "AvgTpot on unfinished request " << id;
  const int decode_tokens = output_len() - 1;
  ADASERVE_CHECK(decode_tokens >= 1) << "request " << id << " produced too few tokens";
  return (finish_time - first_token_time) / decode_tokens;
}

bool Request::Attained() const {
  // A hair of tolerance absorbs floating-point accumulation over thousands
  // of iterations; it never flips a materially violating request.
  return AvgTpot() <= tpot_slo * (1.0 + 1e-9);
}

void Request::ReleasePayload() {
  ADASERVE_CHECK(state == RequestState::kFinished) << "payload release on live request " << id;
  std::vector<Token>().swap(output);
  std::vector<SimTime>().swap(token_times);
}

double Request::MeanAccepted() const {
  if (verifications == 0) {
    return 0.0;
  }
  return static_cast<double>(accepted_tokens) / static_cast<double>(verifications);
}

}  // namespace adaserve
