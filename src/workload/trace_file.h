// External trace replay: drive the engine from recorded arrival traces
// (Azure-LLM-inference style CSV) instead of synthetic generators.
//
// Format — one request per line, comma-separated:
//
//   timestamp,prompt_tokens,output_tokens,category[,tpot_slo]
//
//   - timestamp: arrival time in seconds (nondecreasing down the file)
//   - prompt_tokens / output_tokens: positive token counts (output is
//     clamped to >= 2 so the TPOT denominator stays well defined)
//   - category: index into the workload's category table (Table 2)
//   - tpot_slo: optional per-request SLO override in seconds; omitted or
//     empty falls back to the category's SLO
//
// An optional header line (no numeric cell), blank lines, and
// '#'-comment lines are skipped. Parsing is a strict validation pass up
// front — any malformed line fails the whole load with a line-numbered
// error — and emission through the ArrivalStream contract is lazy, so
// the stream composes with PrefetchingArrivalStream and the cluster
// router pre-pass like every generator-backed stream.
#ifndef ADASERVE_SRC_WORKLOAD_TRACE_FILE_H_
#define ADASERVE_SRC_WORKLOAD_TRACE_FILE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/workload/arrival_stream.h"
#include "src/workload/categories.h"

namespace adaserve {

// One validated trace row; requests are built from these on demand.
struct TraceFileRow {
  double timestamp = 0.0;
  int prompt_tokens = 0;
  int output_tokens = 0;
  int category = 0;
  // Negative: use the category default.
  double tpot_slo = -1.0;
};

class TraceFileArrivalStream final : public ArrivalStream {
 public:
  // Parses CSV text. Returns nullptr and sets *error (line-numbered) on
  // any malformed, out-of-order, or out-of-range row, or when the trace
  // holds no data rows.
  static std::unique_ptr<TraceFileArrivalStream> FromString(
      const std::vector<CategorySpec>& categories, const std::string& csv, std::string* error);

  // As FromString, reading `path` from disk.
  static std::unique_ptr<TraceFileArrivalStream> Open(const std::vector<CategorySpec>& categories,
                                                      const std::string& path, std::string* error);

  bool Exhausted() override { return next_ >= rows_.size(); }
  const Request* Peek() override;
  Request Next() override;
  size_t emitted() const override { return next_; }

  size_t size() const { return rows_.size(); }

 private:
  TraceFileArrivalStream(std::vector<CategorySpec> categories, std::vector<TraceFileRow> rows)
      : categories_(std::move(categories)), rows_(std::move(rows)) {}

  Request BuildRequest(size_t index) const;

  std::vector<CategorySpec> categories_;
  std::vector<TraceFileRow> rows_;
  size_t next_ = 0;
  Request peeked_;
};

// Serializes requests to the trace CSV format (header + one row per
// request, %.17g timestamps so a round trip is exact). The per-request
// tpot_slo column is always written.
std::string TraceCsvFromRequests(std::span<const Request> requests);

// Writes TraceCsvFromRequests(requests) to `path`; false + *error on I/O
// failure.
bool WriteTraceCsv(const std::string& path, std::span<const Request> requests,
                   std::string* error);

}  // namespace adaserve

#endif  // ADASERVE_SRC_WORKLOAD_TRACE_FILE_H_
