// Request object: the unit of work flowing through every serving system.
#ifndef ADASERVE_SRC_WORKLOAD_REQUEST_H_
#define ADASERVE_SRC_WORKLOAD_REQUEST_H_

#include <vector>

#include "src/common/types.h"

namespace adaserve {

enum class RequestState {
  // Arrived, not yet admitted to the GPU (no KV allocation).
  kQueued,
  // Admitted; prompt prefill in progress (possibly chunked).
  kPrefilling,
  // Decoding output tokens.
  kRunning,
  // Paused mid-prefill by a preemptive eviction (KV swapped out, prefill
  // progress preserved); waits in the admission queue and resumes where
  // it left off on re-admission.
  kPaused,
  // All output tokens committed.
  kFinished,
  // Refused by an admission controller before any service (no KV, no
  // tokens). Terminal like kFinished, but excluded from attainment /
  // throughput accounting; Metrics counts it under `rejections`.
  kRejected,
};

struct Request {
  // --- immutable description ---
  RequestId id = kInvalidRequestId;
  // Category index into the workload's category table (Table 2).
  int category = 0;
  // TPOT SLO in seconds.
  double tpot_slo = 0.0;
  SimTime arrival = 0.0;
  int prompt_len = 0;
  int target_output_len = 0;
  // Seed keying this request's token streams in the synthetic LM.
  uint64_t stream_seed = 0;

  // --- mutable serving state ---
  RequestState state = RequestState::kQueued;
  // Prompt tokens prefilled so far (== prompt_len once prefill completes).
  int prefill_progress = 0;
  // Committed output token count. Tracks output.size() while serving; stays
  // valid after ReleasePayload() frees the token vectors in streaming runs.
  int committed_len = 0;
  // Committed output tokens and their commit timestamps.
  std::vector<Token> output;
  std::vector<SimTime> token_times;
  SimTime first_token_time = -1.0;
  SimTime finish_time = -1.0;
  // Start of the first decode iteration that included this request; the
  // paper's l_i is measured from here.
  SimTime decode_start_time = -1.0;

  // --- speculation bookkeeping (SD systems only) ---
  long verifications = 0;
  long accepted_tokens = 0;
  long verified_tokens = 0;

  int output_len() const { return committed_len; }
  bool PrefillDone() const { return prefill_progress >= prompt_len; }
  bool DecodeDone() const { return output_len() >= target_output_len; }
  // Tokens of KV cache this request occupies.
  long KvTokens() const { return prefill_progress + output_len(); }

  // Frees the per-token payload (output tokens, commit timestamps) of a
  // finished request, keeping every metrics-relevant scalar. Streaming runs
  // call this at finish so resident memory stays O(active requests).
  void ReleasePayload();

  // Average time-per-output-token over the decode phase: the span from the
  // first token (produced by prefill) to completion, divided by the number
  // of decode-produced tokens. Requires the request to be finished with at
  // least two output tokens.
  double AvgTpot() const;

  // True if the finished request met its TPOT SLO.
  bool Attained() const;

  // Mean accepted speculated tokens per verification step.
  double MeanAccepted() const;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_WORKLOAD_REQUEST_H_
