#include "src/workload/prefetch_stream.h"

#include <utility>

#include "src/common/logging.h"

namespace adaserve {

PrefetchingArrivalStream::PrefetchingArrivalStream(std::unique_ptr<ArrivalStream> inner,
                                                   size_t depth)
    : inner_(std::move(inner)), queue_(depth) {
  ADASERVE_CHECK(inner_ != nullptr) << "prefetch needs an inner stream";
  producer_ = std::thread([this] {
    while (!inner_->Exhausted()) {
      if (queue_.Push(inner_->Next()).has_value()) {
        // Consumer closed the queue mid-stream (early teardown). The
        // rejected request comes back as the residue; a single-consumer
        // prefetcher has nowhere to re-route it, so drop and stop.
        return;
      }
    }
    queue_.Close();
  });
}

PrefetchingArrivalStream::~PrefetchingArrivalStream() {
  queue_.Close();  // Unblocks a producer stuck on a full queue.
  if (producer_.joinable()) {
    producer_.join();
  }
}

void PrefetchingArrivalStream::FillSlot() {
  if (slot_.has_value()) {
    return;
  }
  slot_ = queue_.Pop();
  if (slot_.has_value()) {
    ADASERVE_CHECK(slot_->arrival >= last_arrival_)
        << "prefetched arrivals must be nondecreasing; got " << slot_->arrival << " after "
        << last_arrival_;
    last_arrival_ = slot_->arrival;
  }
}

bool PrefetchingArrivalStream::Exhausted() {
  FillSlot();
  return !slot_.has_value();
}

const Request* PrefetchingArrivalStream::Peek() {
  FillSlot();
  return slot_.has_value() ? &*slot_ : nullptr;
}

Request PrefetchingArrivalStream::Next() {
  FillSlot();
  ADASERVE_CHECK(slot_.has_value()) << "Next() on exhausted prefetch stream";
  Request req = std::move(*slot_);
  slot_.reset();
  ++emitted_;
  return req;
}

}  // namespace adaserve
