// Request categories and SLOs (Table 2).
//
//   Cat 1  Coding copilot   SLO = 1.2 x baseline decode latency  (HumanEval)
//   Cat 2  Chatbot          SLO = 50 ms                          (Alpaca)
//   Cat 3  Summarization    SLO = 150 ms                         (CNN/DailyMail)
//
// Prompt/output lengths are lognormal fits to the public datasets' summary
// statistics (the datasets themselves are not shipped; only lengths matter
// to scheduling — see DESIGN.md §1).
#ifndef ADASERVE_SRC_WORKLOAD_CATEGORIES_H_
#define ADASERVE_SRC_WORKLOAD_CATEGORIES_H_

#include <string>
#include <vector>

#include "src/common/rng.h"

namespace adaserve {

inline constexpr int kNumCategories = 3;
inline constexpr int kCatCoding = 0;
inline constexpr int kCatChat = 1;
inline constexpr int kCatSummarization = 2;

struct LengthDist {
  // Lognormal parameters of the underlying normal.
  double log_mean = 0.0;
  double log_stddev = 0.0;
  int min_len = 1;
  int max_len = 1 << 14;

  int Sample(Rng& rng) const;
};

struct CategorySpec {
  std::string name;
  std::string application;
  std::string dataset;
  // Resolved TPOT SLO in seconds.
  double tpot_slo = 0.0;
  LengthDist prompt_len;
  LengthDist output_len;
};

struct CategoryConfig {
  // Cat-1 SLO = slo_scale x baseline decode latency (paper default 1.2; the
  // Fig. 11 experiment sweeps this).
  double cat1_slo_scale = 1.2;
  // Fixed SLOs for Cat 2/3, seconds.
  double cat2_slo = 0.050;
  double cat3_slo = 0.150;
};

// Builds Table 2 with Cat-1's SLO resolved against the model's measured
// baseline decode latency (seconds).
std::vector<CategorySpec> DefaultCategories(double baseline_decode_latency,
                                            const CategoryConfig& config = {});

}  // namespace adaserve

#endif  // ADASERVE_SRC_WORKLOAD_CATEGORIES_H_
