#include "src/workload/trace.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/logging.h"

namespace adaserve {
namespace {

// Integration resolution for envelope normalisation. Shared by every
// thinned process so the realised mean rate is normalised identically
// whether a trace is drained eagerly or generated lazily.
constexpr int kEnvelopeSteps = 4096;

constexpr double kPi = 3.14159265358979323846;

struct EnvelopeStats {
  double mean = 0.0;
  double max = 0.0;
};

// Numerically integrates an envelope over [0, 1) for thinning
// normalisation. Every process construction funnels through this so the
// resolution and silent-envelope threshold stay in one place.
EnvelopeStats IntegrateEnvelope(const std::function<double(double)>& envelope) {
  EnvelopeStats stats;
  for (int i = 0; i < kEnvelopeSteps; ++i) {
    const double v = envelope((i + 0.5) / kEnvelopeSteps);
    stats.mean += v;
    stats.max = std::max(stats.max, v);
  }
  stats.mean /= kEnvelopeSteps;
  return stats;
}

bool IsSilent(const EnvelopeStats& stats) { return stats.mean <= 1e-12; }

}  // namespace

// --- thinned (inhomogeneous Poisson) processes ------------------------------

ThinnedProcess::ThinnedProcess(double duration, double mean_rps, uint64_t seed,
                               std::function<double(double)> envelope, double envelope_max,
                               double envelope_mean)
    : duration_(duration),
      envelope_(std::move(envelope)),
      scale_(mean_rps / envelope_mean),
      lambda_max_(envelope_max * scale_),
      rng_(seed) {
  ADASERVE_CHECK(duration > 0.0) << "duration must be positive";
  ADASERVE_CHECK(mean_rps > 0.0) << "rate must be positive";
  ADASERVE_CHECK(envelope_mean > 0.0) << "envelope mean must be positive";
}

SimTime ThinnedProcess::Next() {
  if (done_) {
    return kNoMoreArrivals;
  }
  while (true) {
    t_ += rng_.Exponential(lambda_max_);
    if (t_ >= duration_) {
      done_ = true;
      return kNoMoreArrivals;
    }
    const double lambda_t = envelope_(t_ / duration_) * scale_;
    if (rng_.Uniform() * lambda_max_ <= lambda_t) {
      return t_;
    }
  }
}

std::unique_ptr<ThinnedProcess> MakeThinnedProcess(double duration, double mean_rps,
                                                   uint64_t seed,
                                                   std::function<double(double)> envelope) {
  const EnvelopeStats stats = IntegrateEnvelope(envelope);
  if (IsSilent(stats)) {
    return nullptr;  // A silent envelope produces no traffic.
  }
  return std::make_unique<ThinnedProcess>(duration, mean_rps, seed, std::move(envelope),
                                          stats.max, stats.mean);
}

std::unique_ptr<ThinnedProcess> MakeAbsoluteRateProcess(double duration, uint64_t seed,
                                                        std::function<double(double)> envelope) {
  const EnvelopeStats stats = IntegrateEnvelope(envelope);
  if (IsSilent(stats)) {
    return nullptr;
  }
  // mean_rps == envelope mean makes the thinning scale exactly 1, so the
  // envelope's absolute rates pass through unrescaled.
  return std::make_unique<ThinnedProcess>(duration, stats.mean, seed, std::move(envelope),
                                          stats.max, stats.mean);
}

std::vector<SimTime> DrainArrivals(ArrivalProcess& process) {
  std::vector<SimTime> arrivals;
  for (SimTime t = process.Next(); t != kNoMoreArrivals; t = process.Next()) {
    arrivals.push_back(t);
  }
  return arrivals;
}

// --- envelopes and vector builders ------------------------------------------

double RealTraceEnvelope(double phase) {
  // Baseline plus three bursts of different widths/heights, echoing the
  // spiky 20-minute production trace in Fig. 7. Normalised to mean ~1.
  auto bump = [](double x, double centre, double width, double height) {
    const double z = (x - centre) / width;
    return height * std::exp(-0.5 * z * z);
  };
  const double base = 0.55;
  const double value = base + bump(phase, 0.15, 0.05, 1.8) + bump(phase, 0.45, 0.10, 1.1) +
                       bump(phase, 0.78, 0.04, 2.4);
  return value;
}

std::unique_ptr<ThinnedProcess> MakeRealShapedProcess(const TraceConfig& config) {
  return MakeThinnedProcess(config.duration, config.mean_rps, config.seed, RealTraceEnvelope);
}

std::vector<SimTime> RealShapedArrivals(const TraceConfig& config) {
  auto process = MakeRealShapedProcess(config);
  return DrainArrivals(*process);
}

std::unique_ptr<ThinnedProcess> MakePoissonProcess(double duration, double mean_rps,
                                                   uint64_t seed) {
  return MakeThinnedProcess(duration, mean_rps, seed, [](double) { return 1.0; });
}

std::vector<SimTime> PoissonArrivals(const TraceConfig& config) {
  auto process = MakePoissonProcess(config.duration, config.mean_rps, config.seed);
  return DrainArrivals(*process);
}

std::vector<SimTime> BurstyArrivals(const BurstSpec& burst, double duration, uint64_t seed) {
  ADASERVE_CHECK(burst.peak_width > 0.0) << "burst width must be positive";
  auto envelope = [burst](double phase) {
    const double z = (phase - burst.peak_phase) / burst.peak_width;
    return burst.base_rps + (burst.peak_rps - burst.base_rps) * std::exp(-0.5 * z * z);
  };
  auto process = MakeAbsoluteRateProcess(duration, seed, envelope);
  if (process == nullptr) {
    return {};  // A silent category (base == peak == 0) produces no traffic.
  }
  return DrainArrivals(*process);
}

// --- MMPP -------------------------------------------------------------------

double MmppSpec::MeanRate() const {
  double weighted = 0.0;
  double total = 0.0;
  for (size_t s = 0; s < state_rps.size(); ++s) {
    weighted += state_rps[s] * mean_sojourn_s[s];
    total += mean_sojourn_s[s];
  }
  return total > 0.0 ? weighted / total : 0.0;
}

MmppProcess::MmppProcess(const MmppSpec& spec, double duration, uint64_t seed)
    : spec_(spec), duration_(duration), rng_(seed), state_(spec.initial_state) {
  ADASERVE_CHECK(!spec_.state_rps.empty()) << "MMPP needs at least one state";
  ADASERVE_CHECK(spec_.state_rps.size() == spec_.mean_sojourn_s.size())
      << "MMPP state tables must be parallel";
  ADASERVE_CHECK(state_ >= 0 && static_cast<size_t>(state_) < spec_.state_rps.size())
      << "bad initial state " << state_;
  ADASERVE_CHECK(duration_ > 0.0) << "duration must be positive";
  for (size_t s = 0; s < spec_.state_rps.size(); ++s) {
    ADASERVE_CHECK(spec_.state_rps[s] >= 0.0) << "negative MMPP rate";
    ADASERVE_CHECK(spec_.mean_sojourn_s[s] > 0.0) << "MMPP sojourn must be positive";
  }
  next_switch_ = rng_.Exponential(1.0 / spec_.mean_sojourn_s[static_cast<size_t>(state_)]);
}

SimTime MmppProcess::Next() {
  if (done_) {
    return kNoMoreArrivals;
  }
  while (true) {
    const double rate = spec_.state_rps[static_cast<size_t>(state_)];
    // Candidate arrival within the current state; infinite for a silent
    // (OFF) state, which always defers to the next state switch.
    const double candidate = rate > 0.0 ? t_ + rng_.Exponential(rate) : duration_;
    if (candidate < next_switch_) {
      t_ = candidate;
      if (t_ >= duration_) {
        done_ = true;
        return kNoMoreArrivals;
      }
      return t_;
    }
    // Advance to the switch point and move to the next state (cyclic
    // modulation; the exponential sojourns make it Markov).
    t_ = next_switch_;
    if (t_ >= duration_) {
      done_ = true;
      return kNoMoreArrivals;
    }
    state_ = (state_ + 1) % static_cast<int>(spec_.state_rps.size());
    next_switch_ = t_ + rng_.Exponential(1.0 / spec_.mean_sojourn_s[static_cast<size_t>(state_)]);
  }
}

// --- diurnal ----------------------------------------------------------------

double DiurnalEnvelope(const DiurnalSpec& spec, double t) {
  const double phase = t / spec.period_s - spec.peak_phase;
  return 1.0 + spec.amplitude * std::cos(2.0 * kPi * phase);
}

std::unique_ptr<ThinnedProcess> MakeDiurnalProcess(const DiurnalSpec& spec, double duration,
                                                   double mean_rps, uint64_t seed) {
  ADASERVE_CHECK(spec.period_s > 0.0) << "diurnal period must be positive";
  ADASERVE_CHECK(spec.amplitude >= 0.0 && spec.amplitude <= 1.0)
      << "diurnal amplitude must be in [0, 1], got " << spec.amplitude;
  return MakeThinnedProcess(duration, mean_rps, seed, [spec, duration](double phase) {
    return DiurnalEnvelope(spec, phase * duration);
  });
}

}  // namespace adaserve
