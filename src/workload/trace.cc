#include "src/workload/trace.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace adaserve {
namespace {

// Samples an inhomogeneous Poisson process on [0, duration) by thinning.
// `envelope` must be bounded above by `envelope_max` and have time-average
// `envelope_mean` over the window so that the realised mean rate matches
// `mean_rps`.
template <typename Envelope>
std::vector<SimTime> Thinning(double duration, double mean_rps, uint64_t seed, Envelope envelope,
                              double envelope_max, double envelope_mean) {
  ADASERVE_CHECK(duration > 0.0) << "duration must be positive";
  ADASERVE_CHECK(mean_rps > 0.0) << "rate must be positive";
  Rng rng(seed);
  const double scale = mean_rps / envelope_mean;
  const double lambda_max = envelope_max * scale;
  std::vector<SimTime> arrivals;
  arrivals.reserve(static_cast<size_t>(duration * mean_rps * 1.2) + 8);
  double t = 0.0;
  while (true) {
    t += rng.Exponential(lambda_max);
    if (t >= duration) {
      break;
    }
    const double lambda_t = envelope(t / duration) * scale;
    if (rng.Uniform() * lambda_max <= lambda_t) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

}  // namespace

double RealTraceEnvelope(double phase) {
  // Baseline plus three bursts of different widths/heights, echoing the
  // spiky 20-minute production trace in Fig. 7. Normalised to mean ~1.
  auto bump = [](double x, double centre, double width, double height) {
    const double z = (x - centre) / width;
    return height * std::exp(-0.5 * z * z);
  };
  const double base = 0.55;
  const double value = base + bump(phase, 0.15, 0.05, 1.8) + bump(phase, 0.45, 0.10, 1.1) +
                       bump(phase, 0.78, 0.04, 2.4);
  return value;
}

std::vector<SimTime> RealShapedArrivals(const TraceConfig& config) {
  // Numerically integrate the envelope once to get its mean and max.
  constexpr int kSteps = 4096;
  double mean = 0.0;
  double max = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    const double v = RealTraceEnvelope((i + 0.5) / kSteps);
    mean += v;
    max = std::max(max, v);
  }
  mean /= kSteps;
  return Thinning(config.duration, config.mean_rps, config.seed, RealTraceEnvelope, max, mean);
}

std::vector<SimTime> PoissonArrivals(const TraceConfig& config) {
  return Thinning(
      config.duration, config.mean_rps, config.seed, [](double) { return 1.0; }, 1.0, 1.0);
}

std::vector<SimTime> BurstyArrivals(const BurstSpec& burst, double duration, uint64_t seed) {
  ADASERVE_CHECK(burst.peak_width > 0.0) << "burst width must be positive";
  auto envelope = [&burst](double phase) {
    const double z = (phase - burst.peak_phase) / burst.peak_width;
    return burst.base_rps + (burst.peak_rps - burst.base_rps) * std::exp(-0.5 * z * z);
  };
  // Mean of the envelope over [0,1): base + (peak-base)*width*sqrt(2*pi)
  // truncated to the window; integrate numerically for exactness.
  constexpr int kSteps = 4096;
  double mean = 0.0;
  double max = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    const double v = envelope((i + 0.5) / kSteps);
    mean += v;
    max = std::max(max, v);
  }
  mean /= kSteps;
  if (mean <= 1e-12) {
    return {};  // A silent category (base == peak == 0) produces no traffic.
  }
  return Thinning(duration, mean, seed, envelope, max, mean);
}

}  // namespace adaserve
