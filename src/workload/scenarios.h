// Stress-scenario library: workload shapes that deliberately push the
// serving stack past its comfort zone, beyond the bursty/diurnal/churn
// generators (generator.h).
//
// Four scenarios, each expressed through the existing lazy ArrivalStream
// machinery (absolute-rate thinned processes + time-varying mixes), so
// they compose with PrefetchingArrivalStream, the cluster router
// pre-pass, and the streaming engine unchanged:
//
//   - Flash crowd: a step overload (magnitude x the base rate) that
//     switches on and off mid-run, with a recovery-time-to-SLO metric
//     measuring how long after the step ends the system keeps missing
//     SLOs on its backlog.
//   - Adversarial tenant flood: one tenant (category) floods the queue at
//     a sustained high rate while benign traffic keeps its usual mix —
//     the workload that actually stresses fair-queuing baselines (VTC).
//   - Long-prompt head-of-line poisoning: rare arrivals with prompts
//     many times the category norm threaten to monopolise prefill and
//     starve the TTFT of everything queued behind them.
//   - Correlated category bursts: every category surges at the same
//     instants (shared Gaussian bursts), unlike Fig. 13 where each
//     category peaks at its own time — the worst case for capacity
//     planning that assumes uncorrelated tenants.
//
// Every scenario is pinned by a golden baseline (harness/golden.h) and
// swept by bench_scenarios, so future scheduler work lands against a
// reproducible stress corpus.
#ifndef ADASERVE_SRC_WORKLOAD_SCENARIOS_H_
#define ADASERVE_SRC_WORKLOAD_SCENARIOS_H_

#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/workload/generator.h"

namespace adaserve {

// The scenario set, iterable for goldens/benches/tests.
enum class StressScenario {
  kFlashCrowd,
  kTenantFlood,
  kLongPromptPoison,
  kCorrelatedBursts,
};

std::vector<StressScenario> AllStressScenarios();

// Human-readable name, e.g. "flash-crowd".
std::string StressScenarioName(StressScenario scenario);
// Filesystem-safe slug, e.g. "flash_crowd".
std::string StressScenarioSlug(StressScenario scenario);

// --- flash crowd -------------------------------------------------------------

struct FlashCrowdSpec {
  double duration = 60.0;
  // Steady-state arrival rate outside the overload window.
  double base_rps = 2.0;
  // Overload window [overload_start, overload_start + overload_duration):
  // the rate steps to magnitude * base_rps, then back.
  double overload_start = 15.0;
  double overload_duration = 10.0;
  // Step factor; the ISSUE's 10-100x overload knob.
  double magnitude = 10.0;
  std::array<double, kNumCategories> mix = {0.6, 0.2, 0.2};
  uint64_t trace_seed = 42;
  uint64_t sampling_seed = 7;
  size_t max_requests = static_cast<size_t>(-1);

  double OverloadEnd() const { return overload_start + overload_duration; }
};

std::unique_ptr<ArrivalStream> MakeFlashCrowdStream(const std::vector<CategorySpec>& categories,
                                                    const FlashCrowdSpec& spec);

// Recovery time to SLO: how long past the end of the overload window the
// system keeps violating SLOs. Defined as
//   max(0, latest violation time - spec.OverloadEnd())
// where a finished non-attained request violates at its finish_time, and
// an SLO-relevant request that never finished (evicted, still paused or
// queued at run end) counts as unrecovered at `makespan` — the run never
// brought it back within SLO, so scoring only finished requests would
// *reward* a scheduler for abandoning its backlog. A system that clears
// the flash-crowd backlog without further violations scores 0 and slower
// drains score monotonically worse. `requests` are a run's requests
// (EngineResult::requests with retire_finished off) and `makespan` the
// run's end time (EngineResult::end_time).
double RecoveryTimeToSlo(std::span<const Request> requests, const FlashCrowdSpec& spec,
                         SimTime makespan);

// --- adversarial tenant flood ------------------------------------------------

struct TenantFloodSpec {
  double duration = 60.0;
  // Benign traffic: a constant rate spread over benign_mix.
  double benign_rps = 2.0;
  std::array<double, kNumCategories> benign_mix = {0.6, 0.2, 0.2};
  // The adversarial tenant floods its category at flood_rps during
  // [flood_start, flood_start + flood_duration).
  int adversary_category = kCatChat;
  double flood_rps = 16.0;
  double flood_start = 10.0;
  double flood_duration = 30.0;
  uint64_t trace_seed = 42;
  uint64_t sampling_seed = 7;
  size_t max_requests = static_cast<size_t>(-1);
};

std::unique_ptr<ArrivalStream> MakeTenantFloodStream(const std::vector<CategorySpec>& categories,
                                                     const TenantFloodSpec& spec);

// --- long-prompt head-of-line poisoning --------------------------------------

struct LongPromptPoisonSpec {
  double duration = 60.0;
  // Normal traffic rate and mix.
  double base_rps = 3.0;
  std::array<double, kNumCategories> mix = {0.6, 0.2, 0.2};
  // Poison arrivals: a slow trickle of requests from poison_category whose
  // prompt lengths are scaled by prompt_scale (log-domain shift), so a
  // single arrival can carry thousands of prompt tokens.
  double poison_rps = 0.25;
  int poison_category = kCatSummarization;
  double prompt_scale = 8.0;
  uint64_t trace_seed = 42;
  uint64_t sampling_seed = 7;
  size_t max_requests = static_cast<size_t>(-1);
};

std::unique_ptr<ArrivalStream> MakeLongPromptPoisonStream(
    const std::vector<CategorySpec>& categories, const LongPromptPoisonSpec& spec);

// --- correlated category bursts ----------------------------------------------

struct CorrelatedBurstSpec {
  double duration = 60.0;
  // Quiet-time arrival rate (all categories combined).
  double base_rps = 1.5;
  // Rate at a burst peak. Every category surges together: the burst
  // envelope multiplies the total rate while the mix stays fixed.
  double burst_rps = 12.0;
  // Burst centres as fractions of the duration, and their common width
  // (standard deviation) as a fraction of the duration.
  std::vector<double> burst_centers = {0.3, 0.7};
  double burst_width = 0.05;
  std::array<double, kNumCategories> mix = {0.34, 0.33, 0.33};
  uint64_t trace_seed = 42;
  uint64_t sampling_seed = 7;
  size_t max_requests = static_cast<size_t>(-1);
};

std::unique_ptr<ArrivalStream> MakeCorrelatedBurstStream(
    const std::vector<CategorySpec>& categories, const CorrelatedBurstSpec& spec);

// --- duration-scaled defaults ------------------------------------------------
//
// The canonical spec of each scenario for a given run length: window
// positions scale with the duration, rates stay absolute. Goldens, the
// bench sweep, and the property suite all build their streams through
// these, so "the flash-crowd scenario" means the same thing everywhere.

FlashCrowdSpec DefaultFlashCrowd(double duration, uint64_t trace_seed);
TenantFloodSpec DefaultTenantFlood(double duration, uint64_t trace_seed);
LongPromptPoisonSpec DefaultLongPromptPoison(double duration, uint64_t trace_seed);
CorrelatedBurstSpec DefaultCorrelatedBursts(double duration, uint64_t trace_seed);

// Builds the canonical stream of `scenario` sized to `duration`.
std::unique_ptr<ArrivalStream> MakeStressStream(const std::vector<CategorySpec>& categories,
                                                StressScenario scenario, double duration,
                                                uint64_t trace_seed);

// --- stream combinator -------------------------------------------------------

// Merges several arrival-ordered streams into one: emits the earliest
// pending arrival across sources (ties break by source index), re-ids
// densely in emission order, and re-keys stream_seed from the new id with
// the generator's convention — so a merged stream is indistinguishable
// from a single generator to the engine. Deterministic for fixed sources.
std::unique_ptr<ArrivalStream> MergeArrivalStreams(
    std::vector<std::unique_ptr<ArrivalStream>> sources);

}  // namespace adaserve

#endif  // ADASERVE_SRC_WORKLOAD_SCENARIOS_H_
