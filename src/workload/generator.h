// Workload assembly: arrival times x category mix x length sampling.
//
// Two forms are provided. The vector builders (BuildWorkload,
// BuildBurstyWorkload) materialize a whole trace up front — the classic
// path used by the paper-figure benches and the golden baselines. The
// stream factories (MakeRealTraceStream, MakeMmppStream, MakeDiurnalStream,
// MakeChurnStream) wrap the same sampling in a lazy ArrivalStream, so the
// engine can serve million-request workloads holding only the active set
// in memory.
#ifndef ADASERVE_SRC_WORKLOAD_GENERATOR_H_
#define ADASERVE_SRC_WORKLOAD_GENERATOR_H_

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "src/workload/arrival_stream.h"
#include "src/workload/categories.h"
#include "src/workload/request.h"
#include "src/workload/trace.h"

namespace adaserve {

struct WorkloadConfig {
  // Probability of each category for an arriving request. Must sum to ~1.
  std::array<double, kNumCategories> mix = {0.6, 0.2, 0.2};
  uint64_t seed = 7;
};

// Builds requests for the given arrival times: each arrival draws a category
// from the mix, then prompt/output lengths from that category. Requests are
// returned sorted by arrival time with sequential ids.
std::vector<Request> BuildWorkload(const std::vector<CategorySpec>& categories,
                                   const std::vector<SimTime>& arrivals,
                                   const WorkloadConfig& config);

// Builds the Fig. 13 workload: one independent bursty arrival process per
// category, merged into a single request stream.
std::vector<Request> BuildBurstyWorkload(const std::vector<CategorySpec>& categories,
                                         const std::array<BurstSpec, kNumCategories>& bursts,
                                         double duration, uint64_t seed);

// --- streaming workload generation ------------------------------------------

// Category mix as a function of arrival time; lets the mix drift over a run
// (category churn).
using MixFunction = std::function<std::array<double, kNumCategories>(SimTime)>;

// Lazy request generator: pulls arrival times from an ArrivalProcess and
// samples category + lengths per request on demand, assigning dense
// sequential ids in arrival order. For a fixed (process seed, mix, sampling
// seed) the emitted request sequence is deterministic and identical to
// draining the stream into a vector up front.
class WorkloadStream final : public ArrivalStream {
 public:
  // `max_requests` caps the emitted count; the stream ends at the earlier
  // of process exhaustion and the cap.
  WorkloadStream(std::vector<CategorySpec> categories, std::unique_ptr<ArrivalProcess> arrivals,
                 MixFunction mix, uint64_t sampling_seed,
                 size_t max_requests = static_cast<size_t>(-1));

  bool Exhausted() override;
  const Request* Peek() override;
  Request Next() override;
  size_t emitted() const override { return emitted_; }

 private:
  // Pulls the next arrival into buffer_; sets done_ when the process ends.
  void Refill();

  std::vector<CategorySpec> categories_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  MixFunction mix_;
  Rng rng_;
  size_t max_requests_;
  size_t emitted_ = 0;
  Request buffer_;
  bool have_buffer_ = false;
  bool done_ = false;
};

// A fixed mix, constant over time.
MixFunction ConstantMix(const std::array<double, kNumCategories>& mix);

// Linear drift from `start` at t=0 to `end` at t=duration (clamped after).
// Both mixes must be normalised; every interpolant then is too.
MixFunction DriftingMix(const std::array<double, kNumCategories>& start,
                        const std::array<double, kNumCategories>& end, double duration);

// Lazy counterpart of RealTraceWorkload/BuildWorkload over the Fig. 7
// envelope: draining this stream reproduces the vector path bit-for-bit.
struct RealTraceStreamConfig {
  TraceConfig trace;
  WorkloadConfig workload;
  size_t max_requests = static_cast<size_t>(-1);
};
std::unique_ptr<ArrivalStream> MakeRealTraceStream(const std::vector<CategorySpec>& categories,
                                                   const RealTraceStreamConfig& config);

// Bursty stream driven by a Markov-modulated Poisson process.
struct MmppStreamConfig {
  MmppSpec mmpp;
  double duration = 120.0;
  uint64_t trace_seed = 42;
  std::array<double, kNumCategories> mix = {0.6, 0.2, 0.2};
  uint64_t sampling_seed = 7;
  size_t max_requests = static_cast<size_t>(-1);
};
std::unique_ptr<ArrivalStream> MakeMmppStream(const std::vector<CategorySpec>& categories,
                                              const MmppStreamConfig& config);

// Diurnal stream: time-of-day rate modulation with a fixed category mix.
struct DiurnalStreamConfig {
  DiurnalSpec diurnal;
  double duration = 120.0;
  double mean_rps = 4.0;
  uint64_t trace_seed = 42;
  std::array<double, kNumCategories> mix = {0.6, 0.2, 0.2};
  uint64_t sampling_seed = 7;
  size_t max_requests = static_cast<size_t>(-1);
};
std::unique_ptr<ArrivalStream> MakeDiurnalStream(const std::vector<CategorySpec>& categories,
                                                 const DiurnalStreamConfig& config);

// Category-churn stream: Poisson arrivals whose category mix drifts
// linearly from `start_mix` to `end_mix` over the run.
struct ChurnStreamConfig {
  double duration = 120.0;
  double mean_rps = 4.0;
  uint64_t trace_seed = 42;
  std::array<double, kNumCategories> start_mix = {0.8, 0.1, 0.1};
  std::array<double, kNumCategories> end_mix = {0.1, 0.1, 0.8};
  uint64_t sampling_seed = 7;
  size_t max_requests = static_cast<size_t>(-1);
};
std::unique_ptr<ArrivalStream> MakeChurnStream(const std::vector<CategorySpec>& categories,
                                               const ChurnStreamConfig& config);

}  // namespace adaserve

#endif  // ADASERVE_SRC_WORKLOAD_GENERATOR_H_
