// Workload assembly: arrival times x category mix x length sampling.
#ifndef ADASERVE_SRC_WORKLOAD_GENERATOR_H_
#define ADASERVE_SRC_WORKLOAD_GENERATOR_H_

#include <array>
#include <vector>

#include "src/workload/categories.h"
#include "src/workload/request.h"
#include "src/workload/trace.h"

namespace adaserve {

struct WorkloadConfig {
  // Probability of each category for an arriving request. Must sum to ~1.
  std::array<double, kNumCategories> mix = {0.6, 0.2, 0.2};
  uint64_t seed = 7;
};

// Builds requests for the given arrival times: each arrival draws a category
// from the mix, then prompt/output lengths from that category. Requests are
// returned sorted by arrival time with sequential ids.
std::vector<Request> BuildWorkload(const std::vector<CategorySpec>& categories,
                                   const std::vector<SimTime>& arrivals,
                                   const WorkloadConfig& config);

// Builds the Fig. 13 workload: one independent bursty arrival process per
// category, merged into a single request stream.
std::vector<Request> BuildBurstyWorkload(const std::vector<CategorySpec>& categories,
                                         const std::array<BurstSpec, kNumCategories>& bursts,
                                         double duration, uint64_t seed);

}  // namespace adaserve

#endif  // ADASERVE_SRC_WORKLOAD_GENERATOR_H_
