// Prefetching arrival-stream adapter: overlaps workload generation with
// serving.
//
// Wraps any ArrivalStream and runs it on a dedicated producer thread,
// handing requests to the consumer through a bounded queue. The serving
// loop then pays queue-pop cost instead of generation cost (distribution
// sampling, trace parsing), and the bound keeps resident memory at
// O(prefetch depth) rather than O(trace).
//
// The adapter preserves the full ArrivalStream contract observable by
// the engine: requests come out in the inner stream's order (checked
// nondecreasing), Peek returns a pointer valid until the next Next, and
// emitted() counts consumer-side pops. streaming_equivalence_test and
// the prefetch tests pin that a wrapped stream is byte-identical to the
// bare one. After construction the inner stream is touched only by the
// producer thread; the destructor closes the queue and joins.
#ifndef ADASERVE_SRC_WORKLOAD_PREFETCH_STREAM_H_
#define ADASERVE_SRC_WORKLOAD_PREFETCH_STREAM_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <thread>

#include "src/common/bounded_queue.h"
#include "src/workload/arrival_stream.h"

namespace adaserve {

inline constexpr size_t kDefaultPrefetchDepth = 64;

class PrefetchingArrivalStream final : public ArrivalStream {
 public:
  // Takes ownership of `inner` and immediately starts prefetching up to
  // `depth` requests ahead of the consumer.
  explicit PrefetchingArrivalStream(std::unique_ptr<ArrivalStream> inner,
                                    size_t depth = kDefaultPrefetchDepth);
  ~PrefetchingArrivalStream() override;

  PrefetchingArrivalStream(const PrefetchingArrivalStream&) = delete;
  PrefetchingArrivalStream& operator=(const PrefetchingArrivalStream&) = delete;

  bool Exhausted() override;
  const Request* Peek() override;
  Request Next() override;
  size_t emitted() const override { return emitted_; }

 private:
  // Ensures slot_ holds the next request if one exists; blocks on the
  // producer when the queue is momentarily empty.
  void FillSlot();

  std::unique_ptr<ArrivalStream> inner_;  // Producer-thread-owned after start.
  BoundedQueue<Request> queue_;
  // Consumer-side staging: the request Peek exposes and Next consumes.
  std::optional<Request> slot_;
  size_t emitted_ = 0;
  SimTime last_arrival_ = 0.0;  // Guards the nondecreasing invariant.
  std::thread producer_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_WORKLOAD_PREFETCH_STREAM_H_
