#include "src/workload/scenarios.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/logging.h"

namespace adaserve {
namespace {

// One entry in a stream merge: the source and its position in the input
// vector (the tie-break key).
struct MergeHead {
  ArrivalStream* stream = nullptr;
  size_t index = 0;
};

// Merges arrival-ordered sources into one dense-id stream. Each pull scans
// the live sources for the earliest Peek(); with the handful of sources a
// scenario composes this beats a heap on simplicity and is equally
// deterministic.
class MergedArrivalStream final : public ArrivalStream {
 public:
  explicit MergedArrivalStream(std::vector<std::unique_ptr<ArrivalStream>> sources)
      : sources_(std::move(sources)) {
    ADASERVE_CHECK(!sources_.empty()) << "merge of zero streams";
    for (const auto& source : sources_) {
      ADASERVE_CHECK(source != nullptr) << "null stream in merge";
    }
  }

  bool Exhausted() override { return PickSource() == nullptr; }

  const Request* Peek() override {
    ArrivalStream* source = PickSource();
    if (source == nullptr) {
      return nullptr;
    }
    // Re-id the peeked view so callers (the engine's admission horizon)
    // see the merged identity, not the source-local one.
    peeked_ = *source->Peek();
    Rekey(peeked_);
    return &peeked_;
  }

  Request Next() override {
    ArrivalStream* source = PickSource();
    ADASERVE_CHECK(source != nullptr) << "Next() on exhausted merged stream";
    Request req = source->Next();
    Rekey(req);
    ++emitted_;
    return req;
  }

  size_t emitted() const override { return emitted_; }

 private:
  // The source whose pending request arrives earliest; ties break by
  // source index so the merge order is deterministic. nullptr when all
  // sources are exhausted.
  ArrivalStream* PickSource() {
    ArrivalStream* best = nullptr;
    SimTime best_arrival = 0.0;
    for (const auto& source : sources_) {
      const Request* head = source->Peek();
      if (head == nullptr) {
        continue;
      }
      if (best == nullptr || head->arrival < best_arrival) {
        best = source.get();
        best_arrival = head->arrival;
      }
    }
    return best;
  }

  // Dense merged id + the generator's stream_seed convention, so a merged
  // stream is indistinguishable from a single WorkloadStream downstream.
  void Rekey(Request& req) const {
    req.id = static_cast<RequestId>(emitted_);
    req.stream_seed = HashCombine(Mix64(0xadaceedeULL), static_cast<uint64_t>(emitted_));
  }

  std::vector<std::unique_ptr<ArrivalStream>> sources_;
  Request peeked_;
  size_t emitted_ = 0;
};

}  // namespace

std::vector<StressScenario> AllStressScenarios() {
  return {StressScenario::kFlashCrowd, StressScenario::kTenantFlood,
          StressScenario::kLongPromptPoison, StressScenario::kCorrelatedBursts};
}

std::string StressScenarioName(StressScenario scenario) {
  switch (scenario) {
    case StressScenario::kFlashCrowd:
      return "flash-crowd";
    case StressScenario::kTenantFlood:
      return "tenant-flood";
    case StressScenario::kLongPromptPoison:
      return "long-prompt-poison";
    case StressScenario::kCorrelatedBursts:
      return "correlated-bursts";
  }
  return "unknown";
}

std::string StressScenarioSlug(StressScenario scenario) {
  std::string slug = StressScenarioName(scenario);
  std::replace(slug.begin(), slug.end(), '-', '_');
  return slug;
}

// --- flash crowd -------------------------------------------------------------

std::unique_ptr<ArrivalStream> MakeFlashCrowdStream(const std::vector<CategorySpec>& categories,
                                                    const FlashCrowdSpec& spec) {
  ADASERVE_CHECK(spec.base_rps > 0.0) << "flash crowd needs a positive base rate";
  ADASERVE_CHECK(spec.magnitude >= 1.0) << "overload magnitude must be >= 1";
  ADASERVE_CHECK(spec.overload_start >= 0.0 && spec.OverloadEnd() <= spec.duration)
      << "overload window must sit inside the run";
  const double duration = spec.duration;
  const double base = spec.base_rps;
  const double peak = spec.base_rps * spec.magnitude;
  const double start = spec.overload_start;
  const double end = spec.OverloadEnd();
  auto process = MakeAbsoluteRateProcess(duration, spec.trace_seed,
                                         [duration, base, peak, start, end](double phase) {
                                           const double t = phase * duration;
                                           return (t >= start && t < end) ? peak : base;
                                         });
  ADASERVE_CHECK(process != nullptr) << "flash crowd envelope is silent";
  return std::make_unique<WorkloadStream>(categories, std::move(process), ConstantMix(spec.mix),
                                          spec.sampling_seed, spec.max_requests);
}

double RecoveryTimeToSlo(std::span<const Request> requests, const FlashCrowdSpec& spec,
                         SimTime makespan) {
  double latest_violation = -1.0;
  for (const Request& req : requests) {
    if (req.state != RequestState::kFinished) {
      // Never brought back within SLO — the run ended (or gave up on the
      // request) with it still outstanding, so it stays in violation
      // through the whole run: clamp to the makespan rather than ignore
      // it, which would score an abandoning scheduler as "recovered".
      latest_violation = std::max(latest_violation, makespan);
      continue;
    }
    if (!req.Attained()) {
      latest_violation = std::max(latest_violation, req.finish_time);
    }
  }
  if (latest_violation < 0.0) {
    return 0.0;
  }
  return std::max(0.0, latest_violation - spec.OverloadEnd());
}

// --- adversarial tenant flood ------------------------------------------------

std::unique_ptr<ArrivalStream> MakeTenantFloodStream(const std::vector<CategorySpec>& categories,
                                                     const TenantFloodSpec& spec) {
  ADASERVE_CHECK(spec.benign_rps > 0.0) << "tenant flood needs positive benign traffic";
  ADASERVE_CHECK(spec.flood_rps > 0.0) << "tenant flood needs a positive flood rate";
  ADASERVE_CHECK(spec.adversary_category >= 0 && spec.adversary_category < kNumCategories)
      << "adversary category out of range";
  const double duration = spec.duration;
  const double benign = spec.benign_rps;
  const double flood = spec.flood_rps;
  const double start = spec.flood_start;
  const double end = spec.flood_start + spec.flood_duration;
  ADASERVE_CHECK(start >= 0.0 && end <= duration) << "flood window must sit inside the run";

  // Total arrival rate: benign everywhere, plus the flood inside its window.
  auto process = MakeAbsoluteRateProcess(duration, spec.trace_seed,
                                         [duration, benign, flood, start, end](double phase) {
                                           const double t = phase * duration;
                                           return benign + ((t >= start && t < end) ? flood : 0.0);
                                         });
  ADASERVE_CHECK(process != nullptr) << "tenant flood envelope is silent";

  // The mix at time t re-weights the benign mix against the flood share, so
  // the adversary's absolute benign traffic is unchanged while its flood
  // rides on top — the exact shape VTC-style fair queuing must absorb.
  const std::array<double, kNumCategories> benign_mix = spec.benign_mix;
  const int adversary = spec.adversary_category;
  MixFunction mix = [duration, benign, flood, start, end, benign_mix, adversary](SimTime t) {
    const double flood_rate = (t >= start && t < end) ? flood : 0.0;
    const double total = benign + flood_rate;
    std::array<double, kNumCategories> mix;
    for (size_t c = 0; c < static_cast<size_t>(kNumCategories); ++c) {
      mix[c] = benign * benign_mix[c] / total;
    }
    mix[static_cast<size_t>(adversary)] += flood_rate / total;
    return mix;
  };
  return std::make_unique<WorkloadStream>(categories, std::move(process), std::move(mix),
                                          spec.sampling_seed, spec.max_requests);
}

// --- long-prompt head-of-line poisoning --------------------------------------

std::unique_ptr<ArrivalStream> MakeLongPromptPoisonStream(
    const std::vector<CategorySpec>& categories, const LongPromptPoisonSpec& spec) {
  ADASERVE_CHECK(spec.base_rps > 0.0) << "poison scenario needs positive base traffic";
  ADASERVE_CHECK(spec.poison_rps > 0.0) << "poison scenario needs a positive poison rate";
  ADASERVE_CHECK(spec.prompt_scale >= 1.0) << "prompt scale must be >= 1";
  ADASERVE_CHECK(spec.poison_category >= 0 && spec.poison_category < kNumCategories)
      << "poison category out of range";

  // Normal traffic: plain Poisson over the configured mix.
  auto normal = std::make_unique<WorkloadStream>(
      categories, MakePoissonProcess(spec.duration, spec.base_rps, spec.trace_seed),
      ConstantMix(spec.mix), spec.sampling_seed, spec.max_requests);

  // Poison trickle: same category table except the poison category's prompt
  // distribution shifted by ln(prompt_scale) in the log domain — every
  // poison arrival lands prompt_scale x the category's typical prompt.
  std::vector<CategorySpec> poisoned = categories;
  CategorySpec& target = poisoned[static_cast<size_t>(spec.poison_category)];
  target.prompt_len.log_mean += std::log(spec.prompt_scale);
  target.prompt_len.max_len = static_cast<int>(
      std::min<double>(1 << 20, static_cast<double>(target.prompt_len.max_len) * spec.prompt_scale));
  std::array<double, kNumCategories> poison_mix{};
  poison_mix[static_cast<size_t>(spec.poison_category)] = 1.0;
  auto poison = std::make_unique<WorkloadStream>(
      std::move(poisoned),
      MakePoissonProcess(spec.duration, spec.poison_rps, HashCombine(spec.trace_seed, 1)),
      ConstantMix(poison_mix), HashCombine(spec.sampling_seed, 1), spec.max_requests);

  std::vector<std::unique_ptr<ArrivalStream>> sources;
  sources.push_back(std::move(normal));
  sources.push_back(std::move(poison));
  return MergeArrivalStreams(std::move(sources));
}

// --- correlated category bursts ----------------------------------------------

std::unique_ptr<ArrivalStream> MakeCorrelatedBurstStream(
    const std::vector<CategorySpec>& categories, const CorrelatedBurstSpec& spec) {
  ADASERVE_CHECK(spec.base_rps > 0.0) << "correlated bursts need a positive base rate";
  ADASERVE_CHECK(spec.burst_rps >= spec.base_rps) << "burst rate must be >= base rate";
  ADASERVE_CHECK(!spec.burst_centers.empty()) << "need at least one burst";
  ADASERVE_CHECK(spec.burst_width > 0.0) << "burst width must be positive";
  const double base = spec.base_rps;
  const double lift = spec.burst_rps - spec.base_rps;
  const std::vector<double> centers = spec.burst_centers;
  const double width = spec.burst_width;
  auto process = MakeAbsoluteRateProcess(spec.duration, spec.trace_seed,
                                         [base, lift, centers, width](double phase) {
                                           double bumps = 0.0;
                                           for (double center : centers) {
                                             const double z = (phase - center) / width;
                                             bumps += std::exp(-0.5 * z * z);
                                           }
                                           return base + lift * bumps;
                                         });
  ADASERVE_CHECK(process != nullptr) << "correlated burst envelope is silent";
  return std::make_unique<WorkloadStream>(categories, std::move(process), ConstantMix(spec.mix),
                                          spec.sampling_seed, spec.max_requests);
}

// --- duration-scaled defaults ------------------------------------------------

FlashCrowdSpec DefaultFlashCrowd(double duration, uint64_t trace_seed) {
  FlashCrowdSpec spec;
  spec.duration = duration;
  spec.base_rps = 1.5;
  spec.overload_start = 0.25 * duration;
  spec.overload_duration = 0.20 * duration;
  spec.magnitude = 10.0;
  spec.trace_seed = trace_seed;
  return spec;
}

TenantFloodSpec DefaultTenantFlood(double duration, uint64_t trace_seed) {
  TenantFloodSpec spec;
  spec.duration = duration;
  spec.benign_rps = 2.0;
  spec.flood_rps = 12.0;
  spec.flood_start = 0.2 * duration;
  spec.flood_duration = 0.5 * duration;
  spec.trace_seed = trace_seed;
  return spec;
}

LongPromptPoisonSpec DefaultLongPromptPoison(double duration, uint64_t trace_seed) {
  LongPromptPoisonSpec spec;
  spec.duration = duration;
  spec.base_rps = 2.5;
  spec.poison_rps = 0.4;
  spec.prompt_scale = 6.0;
  spec.trace_seed = trace_seed;
  return spec;
}

CorrelatedBurstSpec DefaultCorrelatedBursts(double duration, uint64_t trace_seed) {
  CorrelatedBurstSpec spec;
  spec.duration = duration;
  spec.base_rps = 1.0;
  spec.burst_rps = 10.0;
  spec.burst_centers = {0.3, 0.7};
  spec.burst_width = 0.05;
  spec.trace_seed = trace_seed;
  return spec;
}

std::unique_ptr<ArrivalStream> MakeStressStream(const std::vector<CategorySpec>& categories,
                                                StressScenario scenario, double duration,
                                                uint64_t trace_seed) {
  switch (scenario) {
    case StressScenario::kFlashCrowd:
      return MakeFlashCrowdStream(categories, DefaultFlashCrowd(duration, trace_seed));
    case StressScenario::kTenantFlood:
      return MakeTenantFloodStream(categories, DefaultTenantFlood(duration, trace_seed));
    case StressScenario::kLongPromptPoison:
      return MakeLongPromptPoisonStream(categories, DefaultLongPromptPoison(duration, trace_seed));
    case StressScenario::kCorrelatedBursts:
      return MakeCorrelatedBurstStream(categories, DefaultCorrelatedBursts(duration, trace_seed));
  }
  ADASERVE_CHECK(false) << "unknown stress scenario";
  return nullptr;
}

// --- stream combinator -------------------------------------------------------

std::unique_ptr<ArrivalStream> MergeArrivalStreams(
    std::vector<std::unique_ptr<ArrivalStream>> sources) {
  return std::make_unique<MergedArrivalStream>(std::move(sources));
}

}  // namespace adaserve
