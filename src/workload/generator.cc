#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace adaserve {
namespace {

Request MakeRequest(RequestId id, SimTime arrival, int category,
                    const std::vector<CategorySpec>& categories, Rng& rng) {
  const CategorySpec& spec = categories[static_cast<size_t>(category)];
  Request req;
  req.id = id;
  req.category = category;
  req.tpot_slo = spec.tpot_slo;
  req.arrival = arrival;
  req.prompt_len = spec.prompt_len.Sample(rng);
  // Minimum 2 output tokens so the TPOT denominator is well defined.
  req.target_output_len = std::max(2, spec.output_len.Sample(rng));
  req.stream_seed = HashCombine(Mix64(0xadaceedeULL), static_cast<uint64_t>(id));
  return req;
}

}  // namespace

std::vector<Request> BuildWorkload(const std::vector<CategorySpec>& categories,
                                   const std::vector<SimTime>& arrivals,
                                   const WorkloadConfig& config) {
  ADASERVE_CHECK(categories.size() == kNumCategories) << "expected a full category table";
  double mix_sum = 0.0;
  for (double m : config.mix) {
    ADASERVE_CHECK(m >= 0.0) << "negative mix weight";
    mix_sum += m;
  }
  ADASERVE_CHECK(std::abs(mix_sum - 1.0) < 1e-6) << "category mix must sum to 1, got " << mix_sum;

  Rng rng(config.seed);
  std::vector<Request> requests;
  requests.reserve(arrivals.size());
  RequestId next_id = 0;
  for (SimTime arrival : arrivals) {
    const double u = rng.Uniform();
    int category = 0;
    double cum = 0.0;
    for (int c = 0; c < kNumCategories; ++c) {
      cum += config.mix[static_cast<size_t>(c)];
      if (u < cum) {
        category = c;
        break;
      }
      category = c;  // Fall through to the last category on rounding.
    }
    requests.push_back(MakeRequest(next_id++, arrival, category, categories, rng));
  }
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) { return a.arrival < b.arrival; });
  return requests;
}

std::vector<Request> BuildBurstyWorkload(const std::vector<CategorySpec>& categories,
                                         const std::array<BurstSpec, kNumCategories>& bursts,
                                         double duration, uint64_t seed) {
  ADASERVE_CHECK(categories.size() == kNumCategories) << "expected a full category table";
  Rng rng(seed);
  std::vector<Request> requests;
  for (int c = 0; c < kNumCategories; ++c) {
    const std::vector<SimTime> arrivals = BurstyArrivals(
        bursts[static_cast<size_t>(c)], duration, HashCombine(seed, static_cast<uint64_t>(c)));
    for (SimTime arrival : arrivals) {
      requests.push_back(MakeRequest(/*id=*/0, arrival, c, categories, rng));
    }
  }
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) { return a.arrival < b.arrival; });
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = static_cast<RequestId>(i);
    requests[i].stream_seed = HashCombine(Mix64(0xadaceedeULL), static_cast<uint64_t>(i));
  }
  return requests;
}

}  // namespace adaserve
