#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/logging.h"

namespace adaserve {
namespace {

void CheckMix(const std::array<double, kNumCategories>& mix) {
  double mix_sum = 0.0;
  for (double m : mix) {
    ADASERVE_CHECK(m >= 0.0) << "negative mix weight";
    mix_sum += m;
  }
  ADASERVE_CHECK(std::abs(mix_sum - 1.0) < 1e-6) << "category mix must sum to 1, got " << mix_sum;
}

// Draws a category index for uniform sample `u`; falls through to the last
// category on rounding.
int SampleCategory(const std::array<double, kNumCategories>& mix, double u) {
  int category = 0;
  double cum = 0.0;
  for (int c = 0; c < kNumCategories; ++c) {
    cum += mix[static_cast<size_t>(c)];
    if (u < cum) {
      return c;
    }
    category = c;
  }
  return category;
}

Request MakeRequest(RequestId id, SimTime arrival, int category,
                    const std::vector<CategorySpec>& categories, Rng& rng) {
  const CategorySpec& spec = categories[static_cast<size_t>(category)];
  Request req;
  req.id = id;
  req.category = category;
  req.tpot_slo = spec.tpot_slo;
  req.arrival = arrival;
  req.prompt_len = spec.prompt_len.Sample(rng);
  // Minimum 2 output tokens so the TPOT denominator is well defined.
  req.target_output_len = std::max(2, spec.output_len.Sample(rng));
  req.stream_seed = HashCombine(Mix64(0xadaceedeULL), static_cast<uint64_t>(id));
  return req;
}

}  // namespace

std::vector<Request> BuildWorkload(const std::vector<CategorySpec>& categories,
                                   const std::vector<SimTime>& arrivals,
                                   const WorkloadConfig& config) {
  ADASERVE_CHECK(categories.size() == kNumCategories) << "expected a full category table";
  CheckMix(config.mix);

  Rng rng(config.seed);
  std::vector<Request> requests;
  requests.reserve(arrivals.size());
  RequestId next_id = 0;
  for (SimTime arrival : arrivals) {
    const int category = SampleCategory(config.mix, rng.Uniform());
    requests.push_back(MakeRequest(next_id++, arrival, category, categories, rng));
  }
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) { return a.arrival < b.arrival; });
  return requests;
}

std::vector<Request> BuildBurstyWorkload(const std::vector<CategorySpec>& categories,
                                         const std::array<BurstSpec, kNumCategories>& bursts,
                                         double duration, uint64_t seed) {
  ADASERVE_CHECK(categories.size() == kNumCategories) << "expected a full category table";
  Rng rng(seed);
  std::vector<Request> requests;
  for (int c = 0; c < kNumCategories; ++c) {
    const std::vector<SimTime> arrivals = BurstyArrivals(
        bursts[static_cast<size_t>(c)], duration, HashCombine(seed, static_cast<uint64_t>(c)));
    for (SimTime arrival : arrivals) {
      requests.push_back(MakeRequest(/*id=*/0, arrival, c, categories, rng));
    }
  }
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) { return a.arrival < b.arrival; });
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = static_cast<RequestId>(i);
    requests[i].stream_seed = HashCombine(Mix64(0xadaceedeULL), static_cast<uint64_t>(i));
  }
  return requests;
}

// --- streaming workload generation ------------------------------------------

WorkloadStream::WorkloadStream(std::vector<CategorySpec> categories,
                               std::unique_ptr<ArrivalProcess> arrivals, MixFunction mix,
                               uint64_t sampling_seed, size_t max_requests)
    : categories_(std::move(categories)),
      arrivals_(std::move(arrivals)),
      mix_(std::move(mix)),
      rng_(sampling_seed),
      max_requests_(max_requests) {
  ADASERVE_CHECK(categories_.size() == kNumCategories) << "expected a full category table";
  ADASERVE_CHECK(arrivals_ != nullptr) << "null arrival process";
  ADASERVE_CHECK(mix_ != nullptr) << "null mix function";
}

void WorkloadStream::Refill() {
  if (have_buffer_ || done_) {
    return;
  }
  if (emitted_ >= max_requests_) {
    done_ = true;
    return;
  }
  const SimTime arrival = arrivals_->Next();
  if (arrival == kNoMoreArrivals) {
    done_ = true;
    return;
  }
  const std::array<double, kNumCategories> mix = mix_(arrival);
  CheckMix(mix);
  const int category = SampleCategory(mix, rng_.Uniform());
  buffer_ = MakeRequest(static_cast<RequestId>(emitted_), arrival, category, categories_, rng_);
  have_buffer_ = true;
}

bool WorkloadStream::Exhausted() {
  Refill();
  return !have_buffer_;
}

const Request* WorkloadStream::Peek() {
  Refill();
  return have_buffer_ ? &buffer_ : nullptr;
}

Request WorkloadStream::Next() {
  Refill();
  ADASERVE_CHECK(have_buffer_) << "Next() on exhausted stream";
  have_buffer_ = false;
  ++emitted_;
  return buffer_;
}

MixFunction ConstantMix(const std::array<double, kNumCategories>& mix) {
  return [mix](SimTime) { return mix; };
}

MixFunction DriftingMix(const std::array<double, kNumCategories>& start,
                        const std::array<double, kNumCategories>& end, double duration) {
  ADASERVE_CHECK(duration > 0.0) << "drift duration must be positive";
  CheckMix(start);
  CheckMix(end);
  return [start, end, duration](SimTime t) {
    const double w = std::clamp(t / duration, 0.0, 1.0);
    std::array<double, kNumCategories> mix;
    for (size_t c = 0; c < static_cast<size_t>(kNumCategories); ++c) {
      mix[c] = (1.0 - w) * start[c] + w * end[c];
    }
    return mix;
  };
}

std::unique_ptr<ArrivalStream> MakeRealTraceStream(const std::vector<CategorySpec>& categories,
                                                   const RealTraceStreamConfig& config) {
  return std::make_unique<WorkloadStream>(categories, MakeRealShapedProcess(config.trace),
                                          ConstantMix(config.workload.mix),
                                          config.workload.seed, config.max_requests);
}

std::unique_ptr<ArrivalStream> MakeMmppStream(const std::vector<CategorySpec>& categories,
                                              const MmppStreamConfig& config) {
  auto process = std::make_unique<MmppProcess>(config.mmpp, config.duration, config.trace_seed);
  return std::make_unique<WorkloadStream>(categories, std::move(process),
                                          ConstantMix(config.mix), config.sampling_seed,
                                          config.max_requests);
}

std::unique_ptr<ArrivalStream> MakeDiurnalStream(const std::vector<CategorySpec>& categories,
                                                 const DiurnalStreamConfig& config) {
  auto process =
      MakeDiurnalProcess(config.diurnal, config.duration, config.mean_rps, config.trace_seed);
  ADASERVE_CHECK(process != nullptr) << "diurnal envelope is silent";
  return std::make_unique<WorkloadStream>(categories, std::move(process),
                                          ConstantMix(config.mix), config.sampling_seed,
                                          config.max_requests);
}

std::unique_ptr<ArrivalStream> MakeChurnStream(const std::vector<CategorySpec>& categories,
                                               const ChurnStreamConfig& config) {
  auto process = MakePoissonProcess(config.duration, config.mean_rps, config.trace_seed);
  return std::make_unique<WorkloadStream>(
      categories, std::move(process),
      DriftingMix(config.start_mix, config.end_mix, config.duration), config.sampling_seed,
      config.max_requests);
}

}  // namespace adaserve
