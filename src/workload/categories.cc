#include "src/workload/categories.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace adaserve {

int LengthDist::Sample(Rng& rng) const {
  const double x = rng.LogNormal(log_mean, log_stddev);
  const int len = static_cast<int>(std::lround(x));
  return std::clamp(len, min_len, max_len);
}

std::vector<CategorySpec> DefaultCategories(double baseline_decode_latency,
                                            const CategoryConfig& config) {
  ADASERVE_CHECK(baseline_decode_latency > 0.0) << "baseline latency must be positive";
  std::vector<CategorySpec> cats(kNumCategories);

  // Cat 1: coding copilot on HumanEval-like prompts (~130-token prompts,
  // ~130-token completions).
  cats[kCatCoding] = CategorySpec{
      .name = "Cat1",
      .application = "Coding copilot",
      .dataset = "HumanEval-like",
      .tpot_slo = config.cat1_slo_scale * baseline_decode_latency,
      .prompt_len = {.log_mean = std::log(130.0), .log_stddev = 0.45, .min_len = 16, .max_len = 1024},
      .output_len = {.log_mean = std::log(130.0), .log_stddev = 0.5, .min_len = 8, .max_len = 512},
  };

  // Cat 2: chatbot on Alpaca-like instructions (~60-token prompts,
  // ~220-token responses).
  cats[kCatChat] = CategorySpec{
      .name = "Cat2",
      .application = "Chatbot",
      .dataset = "Alpaca-like",
      .tpot_slo = config.cat2_slo,
      .prompt_len = {.log_mean = std::log(60.0), .log_stddev = 0.6, .min_len = 8, .max_len = 1024},
      .output_len = {.log_mean = std::log(220.0), .log_stddev = 0.55, .min_len = 8, .max_len = 1024},
  };

  // Cat 3: summarization on CNN/DailyMail-like articles (~900-token
  // articles, ~110-token summaries). Long prompts drive prefill pressure.
  cats[kCatSummarization] = CategorySpec{
      .name = "Cat3",
      .application = "Summarization",
      .dataset = "CNN/DailyMail-like",
      .tpot_slo = config.cat3_slo,
      .prompt_len = {.log_mean = std::log(900.0), .log_stddev = 0.4, .min_len = 128, .max_len = 4096},
      .output_len = {.log_mean = std::log(110.0), .log_stddev = 0.4, .min_len = 8, .max_len = 512},
  };
  return cats;
}

}  // namespace adaserve
