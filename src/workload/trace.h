// Arrival trace generation.
//
// The paper drives its end-to-end experiments with a rescaled real-world
// trace (Fig. 7: a bursty, time-varying request frequency) and its
// sensitivity study with a synthetic trace where each category peaks at a
// different time (Fig. 13). Both are reproduced here as inhomogeneous
// Poisson processes with deterministic intensity envelopes.
#ifndef ADASERVE_SRC_WORKLOAD_TRACE_H_
#define ADASERVE_SRC_WORKLOAD_TRACE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace adaserve {

struct TraceConfig {
  // Trace duration in seconds.
  double duration = 120.0;
  // Time-averaged request rate (requests/second) after rescaling.
  double mean_rps = 4.0;
  uint64_t seed = 42;
};

// Intensity envelope of the real-world trace, normalised to mean 1 over
// [0, 1). Mimics Fig. 7: a baseline load with several bursts of differing
// magnitude. Exposed so tests and the Fig. 7 bench can inspect the shape.
double RealTraceEnvelope(double phase);

// Arrival times (sorted, within [0, duration)) from the rescaled real-world
// trace shape.
std::vector<SimTime> RealShapedArrivals(const TraceConfig& config);

// Homogeneous Poisson arrivals (used by unit tests and ablations).
std::vector<SimTime> PoissonArrivals(const TraceConfig& config);

// Synthetic per-category bursty trace (Fig. 13): each category has a base
// rate plus a Gaussian burst centred at a category-specific time.
struct BurstSpec {
  double base_rps = 0.5;
  double peak_rps = 4.0;
  // Burst centre as a fraction of the duration.
  double peak_phase = 0.5;
  // Burst width (standard deviation) as a fraction of the duration.
  double peak_width = 0.08;
};

std::vector<SimTime> BurstyArrivals(const BurstSpec& burst, double duration, uint64_t seed);

}  // namespace adaserve

#endif  // ADASERVE_SRC_WORKLOAD_TRACE_H_
