// Arrival trace generation.
//
// The paper drives its end-to-end experiments with a rescaled real-world
// trace (Fig. 7: a bursty, time-varying request frequency) and its
// sensitivity study with a synthetic trace where each category peaks at a
// different time (Fig. 13). Both are reproduced here as inhomogeneous
// Poisson processes with deterministic intensity envelopes.
#ifndef ADASERVE_SRC_WORKLOAD_TRACE_H_
#define ADASERVE_SRC_WORKLOAD_TRACE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace adaserve {

struct TraceConfig {
  // Trace duration in seconds.
  double duration = 120.0;
  // Time-averaged request rate (requests/second) after rescaling.
  double mean_rps = 4.0;
  uint64_t seed = 42;
};

// Intensity envelope of the real-world trace, normalised to mean 1 over
// [0, 1). Mimics Fig. 7: a baseline load with several bursts of differing
// magnitude. Exposed so tests and the Fig. 7 bench can inspect the shape.
double RealTraceEnvelope(double phase);

// Arrival times (sorted, within [0, duration)) from the rescaled real-world
// trace shape.
std::vector<SimTime> RealShapedArrivals(const TraceConfig& config);

// Homogeneous Poisson arrivals (used by unit tests and ablations).
std::vector<SimTime> PoissonArrivals(const TraceConfig& config);

// Synthetic per-category bursty trace (Fig. 13): each category has a base
// rate plus a Gaussian burst centred at a category-specific time.
struct BurstSpec {
  double base_rps = 0.5;
  double peak_rps = 4.0;
  // Burst centre as a fraction of the duration.
  double peak_phase = 0.5;
  // Burst width (standard deviation) as a fraction of the duration.
  double peak_width = 0.08;
};

std::vector<SimTime> BurstyArrivals(const BurstSpec& burst, double duration, uint64_t seed);

// --- lazy arrival processes -------------------------------------------------
//
// Incremental counterparts of the vector builders above: each Next() call
// produces one arrival time, so million-event traces are generated on
// demand instead of being materialized. The vector builders are thin
// drains over these processes, which keeps the RNG draw sequence (and
// therefore every golden baseline) identical between the two forms.

// Sentinel returned by ArrivalProcess::Next when the process is exhausted.
inline constexpr SimTime kNoMoreArrivals = -1.0;

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  // Next arrival time, nondecreasing across calls; kNoMoreArrivals once the
  // process window is exhausted (and on every call thereafter).
  virtual SimTime Next() = 0;
};

// Inhomogeneous Poisson process on [0, duration) sampled by thinning.
// `envelope` is evaluated at phase t/duration, must be bounded above by
// `envelope_max`, and have time-average `envelope_mean` over the window so
// the realised mean rate matches `mean_rps`.
class ThinnedProcess final : public ArrivalProcess {
 public:
  ThinnedProcess(double duration, double mean_rps, uint64_t seed,
                 std::function<double(double)> envelope, double envelope_max,
                 double envelope_mean);

  SimTime Next() override;

 private:
  double duration_;
  std::function<double(double)> envelope_;
  double scale_;
  double lambda_max_;
  Rng rng_;
  double t_ = 0.0;
  bool done_ = false;
};

// Numerically integrates `envelope` over [0, 1) and builds a ThinnedProcess
// normalised to `mean_rps`. All vector builders and streams funnel through
// this so normalisation is computed exactly one way.
std::unique_ptr<ThinnedProcess> MakeThinnedProcess(double duration, double mean_rps,
                                                   uint64_t seed,
                                                   std::function<double(double)> envelope);

// As MakeThinnedProcess, but the envelope carries absolute rates
// (requests/second) instead of a shape to be rescaled. Returns nullptr for
// an everywhere-zero envelope (a silent process).
std::unique_ptr<ThinnedProcess> MakeAbsoluteRateProcess(double duration, uint64_t seed,
                                                        std::function<double(double)> envelope);

// Markov-modulated Poisson process: the arrival rate is governed by a
// background state chain that cycles through `state_rps` with
// exponentially distributed sojourn times. Two states with a low/high rate
// give the classic ON/OFF bursty process; more states give richer bursts.
struct MmppSpec {
  // Per-state arrival rates (requests/second). At least one state.
  std::vector<double> state_rps = {0.5, 12.0};
  // Per-state mean sojourn times (seconds), parallel to state_rps.
  std::vector<double> mean_sojourn_s = {30.0, 5.0};
  int initial_state = 0;

  // Time-averaged rate implied by the spec (sojourn-weighted mean).
  double MeanRate() const;
};

class MmppProcess final : public ArrivalProcess {
 public:
  MmppProcess(const MmppSpec& spec, double duration, uint64_t seed);

  SimTime Next() override;

  int state() const { return state_; }

 private:
  MmppSpec spec_;
  double duration_;
  Rng rng_;
  int state_;
  double t_ = 0.0;
  double next_switch_ = 0.0;
  bool done_ = false;
};

// Diurnal (time-of-day) rate envelope: a raised cosine with one peak per
// `period_s`, floored at (1 - amplitude) of the mean. With period_s equal
// to the trace duration a run spans one compressed "day".
struct DiurnalSpec {
  // Length of one day in trace seconds.
  double period_s = 120.0;
  // Peak position as a fraction of the period (0.55 ~ mid-afternoon).
  double peak_phase = 0.55;
  // Peak-to-trough swing; in [0, 1]. 0 degenerates to homogeneous Poisson.
  double amplitude = 0.8;
};

// Rate multiplier (mean ~1 over a whole period) at absolute time `t`.
double DiurnalEnvelope(const DiurnalSpec& spec, double t);

// Lazy diurnal arrivals with time-average `mean_rps` over [0, duration).
std::unique_ptr<ThinnedProcess> MakeDiurnalProcess(const DiurnalSpec& spec, double duration,
                                                   double mean_rps, uint64_t seed);

// Lazy homogeneous Poisson arrivals (rate `mean_rps` on [0, duration)).
std::unique_ptr<ThinnedProcess> MakePoissonProcess(double duration, double mean_rps,
                                                   uint64_t seed);

// Lazy arrivals from the rescaled real-world trace shape (Fig. 7). Drains
// to exactly RealShapedArrivals(config).
std::unique_ptr<ThinnedProcess> MakeRealShapedProcess(const TraceConfig& config);

// Drains a process to completion (helper for the vector builders/tests).
std::vector<SimTime> DrainArrivals(ArrivalProcess& process);

}  // namespace adaserve

#endif  // ADASERVE_SRC_WORKLOAD_TRACE_H_
