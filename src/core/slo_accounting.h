// TPOT SLO accounting (§3).
//
// A(r) = (l + t_spec) / t_TPOT - o is the minimum number of tokens request r
// must commit in the coming iteration to remain on track for its TPOT SLO,
// where l is the latency accrued since the first decoding step, o the tokens
// decoded so far, and t_spec the expected duration of the iteration being
// planned. A_cap clamps it to the d+1 tokens one verification can commit.
#ifndef ADASERVE_SRC_CORE_SLO_ACCOUNTING_H_
#define ADASERVE_SRC_CORE_SLO_ACCOUNTING_H_

#include "src/workload/request.h"

namespace adaserve {

// Minimum expected accepted tokens for `req` in an iteration of estimated
// duration `t_spec` starting at `now` (the paper's A(r)). Can be <= 1 when
// the request is ahead of its SLO (the always-committed bonus token then
// suffices) and grows beyond d+1 when it has fallen behind.
double MinAcceptedForSlo(const Request& req, SimTime now, SimTime t_spec);

// A_cap(r) = min(A(r), d + 1): the attainable portion of A(r) given
// speculation depth d (§4.3 Step 2).
double CapRequirement(double a, int depth);

}  // namespace adaserve

#endif  // ADASERVE_SRC_CORE_SLO_ACCOUNTING_H_
