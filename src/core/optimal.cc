#include "src/core/optimal.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "src/common/logging.h"

namespace adaserve {
namespace {

// A not-yet-added node of the lazily materialised T_inf.
struct Frontier {
  double path_prob;
  NodeId parent;  // Node id in the request's constructed tree.
  Token token;
  double cond_prob;
  int depth;

  bool operator<(const Frontier& other) const {
    // std::priority_queue is a max-heap on operator<.
    return path_prob < other.path_prob;
  }
};

class LazyInfiniteTree {
 public:
  LazyInfiniteTree(const SyntheticLm& oracle, const OracleRequest& request,
                   const OptimalConfig& config)
      : oracle_(oracle),
        request_(request),
        config_(config),
        tree_(request.committed.empty() ? kInvalidToken : request.committed.back()) {
    Expand(kRootNode);
  }

  // Highest path probability available; -1 when exhausted.
  double TopProb() const { return frontier_.empty() ? -1.0 : frontier_.top().path_prob; }

  // Pops the best frontier node, adds it to the tree, expands its children.
  // Returns its path probability.
  double TakeTop() {
    ADASERVE_CHECK(!frontier_.empty()) << "TakeTop on exhausted frontier";
    const Frontier top = frontier_.top();
    frontier_.pop();
    const NodeId id = tree_.AddNode(top.parent, top.token, top.cond_prob);
    if (top.depth < config_.max_depth) {
      Expand(id);
    }
    return top.path_prob;
  }

  TokenTree&& TakeTree() { return std::move(tree_); }

 private:
  void Expand(NodeId id) {
    std::vector<Token> context(request_.committed.begin(), request_.committed.end());
    const std::vector<Token> path = tree_.PathTokens(id);
    context.insert(context.end(), path.begin(), path.end());
    const SparseDist dist = oracle_.NextDist(request_.stream, context);
    const double parent_prob = tree_.node(id).path_prob;
    const int depth = tree_.node(id).depth;
    for (const auto& e : dist.entries()) {
      frontier_.push({parent_prob * e.prob, id, e.token, e.prob, depth + 1});
    }
  }

  const SyntheticLm& oracle_;
  const OracleRequest& request_;
  const OptimalConfig& config_;
  TokenTree tree_;
  std::priority_queue<Frontier> frontier_;
};

}  // namespace

double OptimalOutput::TotalExpected() const {
  return std::accumulate(expected.begin(), expected.end(), 0.0);
}

OptimalOutput OptimalConstruct(const SyntheticLm& oracle, std::span<const OracleRequest> requests,
                               int budget, const OptimalConfig& config) {
  OptimalOutput out;
  const size_t n = requests.size();
  std::vector<LazyInfiniteTree> lazy;
  lazy.reserve(n);
  for (const OracleRequest& req : requests) {
    lazy.emplace_back(oracle, req, config);
  }
  out.expected.assign(n, 1.0);

  int remaining = budget;
  // Step 1: satisfy SLO requirements, hardest (largest A) first so partial
  // budgets favour the requests that need them, per Algorithm 2's ordering.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return requests[a].a_req > requests[b].a_req; });
  for (size_t idx : order) {
    while (out.expected[idx] < requests[idx].a_req) {
      if (remaining <= 0 || lazy[idx].TopProb() < 0.0) {
        // INVALID: the greedy prefix is token-minimal (Lemma C.1), so no
        // allocation within the budget can satisfy every A(r).
        out.valid = false;
        return out;
      }
      out.expected[idx] += lazy[idx].TakeTop();
      ++out.tokens_used;
      --remaining;
    }
  }

  // Step 2: spend the remaining budget on the globally best nodes (Eq. 6).
  while (remaining > 0) {
    double best = -1.0;
    size_t best_idx = 0;
    for (size_t i = 0; i < n; ++i) {
      if (lazy[i].TopProb() > best) {
        best = lazy[i].TopProb();
        best_idx = i;
      }
    }
    if (best < 0.0) {
      break;
    }
    out.expected[best_idx] += lazy[best_idx].TakeTop();
    ++out.tokens_used;
    --remaining;
  }

  out.valid = true;
  out.trees.reserve(n);
  for (LazyInfiniteTree& t : lazy) {
    out.trees.push_back(t.TakeTree());
  }
  return out;
}

}  // namespace adaserve
