#include "src/core/slo_accounting.h"

#include <algorithm>

#include "src/common/logging.h"

namespace adaserve {

double MinAcceptedForSlo(const Request& req, SimTime now, SimTime t_spec) {
  ADASERVE_CHECK(req.tpot_slo > 0.0) << "request " << req.id << " has no SLO";
  ADASERVE_CHECK(req.first_token_time >= 0.0)
      << "A(r) undefined before the first token of request " << req.id;
  // Decode-phase latency so far. The first token is produced by prefill, so
  // decode accounting starts at first_token_time with o = output_len - 1
  // decode-produced tokens (matching Request::AvgTpot's denominator).
  const double l = std::max(0.0, now - req.first_token_time);
  const double o = req.output_len() - 1;
  return (l + t_spec) / req.tpot_slo - o;
}

double CapRequirement(double a, int depth) {
  ADASERVE_CHECK(depth >= 1) << "depth must be >= 1";
  return std::min(a, static_cast<double>(depth + 1));
}

}  // namespace adaserve
