// The AdaServe scheduler: SLO-customized speculative decoding (§4.3, §5).
//
// Each decode iteration runs the speculate-select-verify pipeline:
//   1. Speculation   — adaptive-depth/width beam search builds a candidate
//                      token tree per running request (draft model, GPU).
//   2. Selection     — SLO-customized phase satisfies each request's
//                      A_cap(r), then chunked prefill is co-batched, then
//                      the throughput-optimized phase spends what remains
//                      (CPU; its cost is modelled and shows up in Fig. 15).
//   3. Verification  — one batched target forward pass verifies all draft
//                      trees and prefill chunks; accepted + bonus tokens
//                      commit.
#ifndef ADASERVE_SRC_CORE_ADASERVE_SCHEDULER_H_
#define ADASERVE_SRC_CORE_ADASERVE_SCHEDULER_H_

#include "src/core/adaptive.h"
#include "src/core/selection.h"
#include "src/serve/scheduler.h"
#include "src/spec/beam_search.h"

namespace adaserve {

struct AdaServeConfig {
  SelectionConfig selection;
  AdaptiveConfig adaptive;
  // Ablation switches.
  bool adaptive_control = true;  // false => use fixed_beam
  BeamConfig fixed_beam = {.depth = 4, .width = 2};
  bool slo_phase_enabled = true;  // false => throughput-only selection
  // Guaranteed prefill share of the budget, reserved ahead of the SLO phase
  // so queued prompts keep flowing into decode even under load (otherwise
  // speculation would starve admission and hide overload as queueing).
  double prefill_reserve = 0.3;
  // Fraction of post-SLO-phase leftover budget additionally offered to
  // chunked prefill (ahead of the throughput-optimized phase).
  double prefill_share = 0.7;
  // When the prompt backlog exceeds backlog_threshold_factor x B tokens,
  // run a dedicated prefill pass of dedicated_prefill_factor x B tokens
  // instead of a decode iteration. Co-batched chunks alone cannot keep
  // admission ahead of bursty arrivals; the dedicated pass stalls decoding
  // (raising A(r) for running requests), which is the prefill pressure the
  // paper observes at high RPS.
  double backlog_threshold_factor = 60.0;
  double dedicated_prefill_factor = 8.0;
  // CPU cost model of the selection phase: base + per-candidate-token cost.
  double select_cost_base = 20e-6;
  double select_cost_per_token = 150e-9;
};

class AdaServeScheduler : public Scheduler {
 public:
  explicit AdaServeScheduler(const AdaServeConfig& config = {}) : config_(config) {}

  std::string_view name() const override { return "AdaServe"; }

  // SLO-customized serving extends to admission: urgent-category arrivals
  // jump the queue and may recompute-evict non-urgent prefills.
  PriorityPolicy AdmissionPriority() const override { return PriorityPolicy::kSloUrgentFirst; }

  // Last iteration's (d, w) — exposed for the adaptive-control tests.
  const BeamConfig& last_beam() const { return last_beam_; }

 protected:
  IterationRecord DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) override;
  // Tick-native decode phase: the speculate-select-verify pipeline over
  // running requests with the full budget; chunked prefill moves to the
  // shared burst-capped prefill phase of the tick.
  IterationRecord DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) override;

 private:
  IterationRecord PrefillOnlyStep(SimTime now, RequestPool& pool, ServingContext& ctx);
  // One speculate-select-verify iteration over `running`; prompts in
  // `prefilling` are co-batched as chunked prefill (pass an empty list to
  // run decode-only, as the tick-native decode phase does).
  IterationRecord SpecIteration(SimTime now, RequestPool& pool, ServingContext& ctx,
                                const std::vector<RequestId>& running,
                                const std::vector<RequestId>& prefilling);

  AdaServeConfig config_;
  // Previous iteration duration, used as the t_spec estimate in A(r).
  SimTime last_duration_ = -1.0;
  BeamConfig last_beam_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_CORE_ADASERVE_SCHEDULER_H_
