// Adaptive control of speculation depth and width (§5.2, Eqs. 8-9).
//
//   d = clip(D_max, D_min, floor(B1 / (n + c1)) - 1)
//   w = clip(W_max, 1,     floor(B2 / n) + c2)
//
// B1 is the verifier's per-iteration token budget and B2 the speculator's:
// when many requests are active, the per-request share of the verification
// budget shrinks, so deep/wide candidate trees would mostly be discarded;
// when load is light, deeper and wider trees buy more speedup.
#ifndef ADASERVE_SRC_CORE_ADAPTIVE_H_
#define ADASERVE_SRC_CORE_ADAPTIVE_H_

#include "src/spec/beam_search.h"

namespace adaserve {

struct AdaptiveConfig {
  int d_min = 1;
  int d_max = 8;
  int w_max = 4;
  // Tunable constants of Eqs. 8-9 (the paper selects them by grid search).
  double c1 = 8.0;
  double c2 = 0.0;
};

// Computes (d, w) for a batch of `active_requests` given the two budgets.
BeamConfig AdaptSpecParams(int active_requests, int verify_budget, int draft_budget,
                           const AdaptiveConfig& config = {});

}  // namespace adaserve

#endif  // ADASERVE_SRC_CORE_ADAPTIVE_H_
