// Token selection phases of SLO-customized speculative decoding
// (Algorithm 2, §4.3 Steps 2-3).
//
// Given each request's candidate token tree (from beam search) and its
// capped SLO requirement A_cap(r), selection builds the draft token trees:
//   - SLO-customized phase: requests in descending A_cap order each take
//     their highest-path-probability candidates until the cumulative
//     expected accepted tokens reach A_cap, bounded by the per-request
//     token limit n_max and the remaining budget.
//   - Throughput-optimized phase: remaining budget goes to the globally
//     highest-path-probability candidates across all requests.
// Because candidates are consumed in per-tree descending-path-probability
// order, every selection is a connected subtree (Appendix B).
#ifndef ADASERVE_SRC_CORE_SELECTION_H_
#define ADASERVE_SRC_CORE_SELECTION_H_

#include <span>
#include <vector>

#include "src/spec/token_tree.h"

namespace adaserve {

struct SelectionConfig {
  // Per-request cap on tokens taken during the SLO-customized phase
  // (prevents low-probability candidates from monopolising the budget).
  int n_max = 16;
};

struct SelectionRequest {
  const TokenTree* tree = nullptr;
  // Capped SLO requirement A_cap(r); expected accepted tokens start at 1.0
  // (the always-committed bonus/correction token).
  double a_cap = 1.0;
};

struct SelectionResult {
  // Per request: node mask over its candidate tree (root always selected).
  std::vector<std::vector<char>> selected;
  // Per request: cumulative expected accepted tokens n_acc (>= 1.0).
  std::vector<double> expected;
  // Per request: number of non-root tokens selected.
  std::vector<int> taken;
  int total_taken = 0;
  // True if every request's n_acc reached its A_cap.
  bool all_slo_met = true;
};

// Stateful selector so the two phases can compose with other budget
// consumers (AdaServe interleaves chunked prefill between them).
class TokenSelector {
 public:
  TokenSelector(std::span<const SelectionRequest> requests, const SelectionConfig& config);

  // Runs the SLO-customized phase with a budget of `budget` speculated
  // tokens; returns the number consumed.
  int SloPhase(int budget);

  // Runs the throughput-optimized phase; returns the number consumed.
  int ThroughputPhase(int budget);

  const SelectionResult& result() const { return result_; }

 private:
  struct Cursor {
    // Candidate node ids in descending path-probability order.
    std::vector<NodeId> order;
    size_t next = 0;
  };

  bool TakeNext(size_t req_idx);
  double NextProb(size_t req_idx) const;

  std::vector<SelectionRequest> requests_;
  SelectionConfig config_;
  std::vector<Cursor> cursors_;
  SelectionResult result_;
};

// Convenience wrapper: both phases back to back over one budget.
SelectionResult SelectTokens(std::span<const SelectionRequest> requests, int budget,
                             const SelectionConfig& config = {});

}  // namespace adaserve

#endif  // ADASERVE_SRC_CORE_SELECTION_H_
