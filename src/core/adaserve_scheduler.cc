#include "src/core/adaserve_scheduler.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/core/slo_accounting.h"
#include "src/spec/verifier.h"

namespace adaserve {
namespace {

struct PrefillChunk {
  RequestId id;
  int tokens;
};

// Plans prefill chunks FIFO within `budget` tokens.
std::vector<PrefillChunk> PlanPrefillChunks(const RequestPool& pool,
                                            const std::vector<RequestId>& prefilling, int budget) {
  std::vector<PrefillChunk> chunks;
  for (RequestId id : prefilling) {
    if (budget <= 0) {
      break;
    }
    const Request& req = pool.Get(id);
    const int remaining = req.prompt_len - req.prefill_progress;
    const int take = std::min(remaining, budget);
    if (take > 0) {
      chunks.push_back({id, take});
      budget -= take;
    }
  }
  return chunks;
}

void ApplyPrefillChunks(RequestPool& pool, ServingContext& ctx,
                        const std::vector<PrefillChunk>& chunks, SimTime end,
                        IterationRecord& record) {
  for (const PrefillChunk& c : chunks) {
    pool.AdvancePrefill(c.id, c.tokens);
    record.prefill_tokens += c.tokens;
    Request& req = pool.Get(c.id);
    if (req.PrefillDone()) {
      const Token first =
          DecodeOneToken(*ctx.target, req.stream_seed, req.output, ctx.mode, *ctx.rng);
      pool.CommitToken(c.id, first, end);
      ++record.committed_tokens;
    }
  }
}

}  // namespace

IterationRecord AdaServeScheduler::PrefillOnlyStep(SimTime now, RequestPool& pool,
                                                   ServingContext& ctx) {
  IterationRecord record;
  const std::vector<RequestId> prefilling = PrefillingRequests(pool);
  ADASERVE_CHECK(!prefilling.empty()) << "prefill-only step without prefill work";
  // Dedicated prefill pass: drain a backlog_factor-sized slice of the
  // prompt backlog in one compute-bound forward pass.
  const int budget =
      std::max(static_cast<int>(ctx.verify_budget * config_.dedicated_prefill_factor), 1);
  const std::vector<PrefillChunk> chunks = PlanPrefillChunks(pool, prefilling, budget);
  int batch_tokens = 0;
  std::vector<RequestId> ids;
  for (const PrefillChunk& c : chunks) {
    batch_tokens += c.tokens;
    ids.push_back(c.id);
  }
  const SimTime latency = ctx.target_latency->PrefillLatency(batch_tokens,
                                                             pool.SumContextTokens(ids));
  const SimTime end = now + latency;
  ApplyPrefillChunks(pool, ctx, chunks, end, record);
  record.duration = latency;
  record.prefill_time = latency;
  last_duration_ = latency;
  return record;
}

IterationRecord AdaServeScheduler::DrainStep(SimTime now, RequestPool& pool,
                                             ServingContext& ctx) {
  const std::vector<RequestId> running = RunningRequests(pool);
  const std::vector<RequestId> prefilling = PrefillingRequests(pool);
  long backlog = 0;
  for (RequestId id : prefilling) {
    const Request& req = pool.Get(id);
    backlog += req.prompt_len - req.prefill_progress;
  }
  if (running.empty() ||
      backlog > static_cast<long>(ctx.verify_budget * config_.backlog_threshold_factor)) {
    return PrefillOnlyStep(now, pool, ctx);
  }
  return SpecIteration(now, pool, ctx, running, prefilling);
}

IterationRecord AdaServeScheduler::DecodePhase(SimTime now, RequestPool& pool,
                                               ServingContext& ctx) {
  const std::vector<RequestId> running = RunningRequests(pool);
  if (running.empty()) {
    return IterationRecord{};
  }
  return SpecIteration(now, pool, ctx, running, /*prefilling=*/{});
}

IterationRecord AdaServeScheduler::SpecIteration(SimTime now, RequestPool& pool,
                                                 ServingContext& ctx,
                                                 const std::vector<RequestId>& running,
                                                 const std::vector<RequestId>& prefilling) {
  const int n = static_cast<int>(running.size());

  IterationRecord record;
  record.decode_requests = n;

  // --- adaptive control (Eqs. 8-9) ---
  const BeamConfig beam = config_.adaptive_control
                              ? AdaptSpecParams(n, ctx.verify_budget, ctx.draft_budget,
                                                config_.adaptive)
                              : config_.fixed_beam;
  last_beam_ = beam;

  // --- Step 1: speculation (candidate trees via beam search) ---
  // Draft cost: step 1 processes the n roots; steps 2..d process n*w
  // beam tokens each, shapes that repeat and replay from CUDA graphs.
  const long draft_context = pool.SumContextTokens(running);
  SimTime spec_time =
      ctx.draft_latency->ForwardLatency(n, draft_context, /*use_cuda_graph=*/true);
  for (int step = 1; step < beam.depth; ++step) {
    spec_time += ctx.draft_latency->ForwardLatency(n * beam.width,
                                                   draft_context + n * step,
                                                   /*use_cuda_graph=*/true);
  }
  std::vector<TokenTree> candidates;
  candidates.reserve(running.size());
  long candidate_tokens = 0;
  for (RequestId id : running) {
    const Request& req = pool.Get(id);
    candidates.push_back(BuildCandidateTree(*ctx.draft, req.stream_seed, req.output, beam));
    candidate_tokens += candidates.back().size() - 1;
  }

  // --- Step 2: selection ---
  // t_spec estimate for A(r): the previous iteration's duration (warm
  // start: twice the verifier's memory-bound floor).
  const SimTime t_spec_estimate =
      last_duration_ > 0.0 ? last_duration_ : 2.0 * ctx.target_latency->WeightLoadTime();
  std::vector<SelectionRequest> sel_requests(running.size());
  for (size_t i = 0; i < running.size(); ++i) {
    const Request& req = pool.Get(running[i]);
    const double a = MinAcceptedForSlo(req, now, t_spec_estimate);
    sel_requests[i].tree = &candidates[i];
    sel_requests[i].a_cap = config_.slo_phase_enabled ? CapRequirement(a, beam.depth) : 0.0;
  }
  // Budget: B counts every verified token, roots included (Algorithm 2
  // decrements B once per root at initialisation).
  const int budget_total = std::max(0, ctx.verify_budget - n);
  long prefill_remaining = 0;
  for (RequestId id : prefilling) {
    const Request& req = pool.Get(id);
    prefill_remaining += req.prompt_len - req.prefill_progress;
  }
  // Prefill-priority within a cap: queued prompts take budget off the top
  // (bounded by prefill_reserve x B so bursts cannot starve decoding), the
  // SLO-customized phase runs on what remains, then leftovers go to extra
  // prefill chunks and finally to throughput-optimized speculation.
  const int prefill_cap = static_cast<int>(std::min<long>(
      {static_cast<long>(ctx.verify_budget * config_.prefill_reserve), prefill_remaining,
       static_cast<long>(budget_total)}));
  int budget = budget_total - prefill_cap;
  TokenSelector selector(sel_requests, config_.selection);
  budget -= selector.SloPhase(budget);
  const int prefill_budget = prefill_cap + static_cast<int>(budget * config_.prefill_share);
  const std::vector<PrefillChunk> chunks = PlanPrefillChunks(pool, prefilling, prefill_budget);
  int chunk_tokens = 0;
  for (const PrefillChunk& c : chunks) {
    chunk_tokens += c.tokens;
  }
  budget = budget_total - selector.result().total_taken - chunk_tokens;
  selector.ThroughputPhase(budget);
  const SelectionResult& sel = selector.result();
  const SimTime select_time =
      config_.select_cost_base + config_.select_cost_per_token * candidate_tokens;

  // --- Step 4: verification (one batched target pass) ---
  const int verify_tokens = n + sel.total_taken + chunk_tokens;
  std::vector<RequestId> all_ids = running;
  for (const PrefillChunk& c : chunks) {
    all_ids.push_back(c.id);
  }
  const SimTime verify_time = ctx.target_latency->ForwardLatency(
      verify_tokens, pool.SumContextTokens(all_ids), /*use_cuda_graph=*/true);

  const SimTime latency = spec_time + select_time + verify_time;
  const SimTime end = now + latency;

  // Commit: verify each draft tree, commit accepted + bonus tokens.
  for (size_t i = 0; i < running.size(); ++i) {
    const RequestId id = running[i];
    Request& req = pool.Get(id);
    if (req.decode_start_time < 0.0) {
      req.decode_start_time = now;
    }
    const VerifyResult verdict = VerifyTree(*ctx.target, req.stream_seed, req.output,
                                            candidates[i], sel.selected[i], ctx.mode, *ctx.rng);
    req.verifications += 1;
    req.accepted_tokens += static_cast<long>(verdict.accepted.size());
    req.verified_tokens += verdict.tokens_verified;
    record.verified_tokens += verdict.tokens_verified;
    for (Token t : verdict.accepted) {
      if (pool.Get(id).state != RequestState::kRunning) {
        break;  // Reached target length mid-path.
      }
      pool.CommitToken(id, t, end);
      ++record.committed_tokens;
    }
    if (pool.Get(id).state == RequestState::kRunning) {
      pool.CommitToken(id, verdict.bonus, end);
      ++record.committed_tokens;
    }
  }
  ApplyPrefillChunks(pool, ctx, chunks, end, record);

  record.duration = latency;
  record.spec_time = spec_time;
  record.select_time = select_time;
  record.verify_time = verify_time;
  last_duration_ = latency;
  return record;
}

}  // namespace adaserve
