// Algorithm 1: optimal token-tree construction with oracle path
// probabilities (§4.1, Appendix C).
//
// The optimal algorithm assumes f(v) is known for every node of the
// infinite token tree T_inf(r). In this reproduction the oracle is the
// target model itself: f(v) is the product of target conditionals along the
// path, which (see verifier.h) is exactly the acceptance probability of v.
// T_inf is materialised lazily: a per-request best-first frontier expands a
// node's children only when the node is added to the tree, so the algorithm
// touches O(budget * support) nodes despite T_inf being infinite.
//
// This module exists for two purposes: (1) the optimality/INVALID property
// tests mandated by Appendix C, and (2) the selection-ablation bench that
// compares practical SLO-customized selection against the oracle.
#ifndef ADASERVE_SRC_CORE_OPTIMAL_H_
#define ADASERVE_SRC_CORE_OPTIMAL_H_

#include <span>
#include <vector>

#include "src/model/synthetic_lm.h"
#include "src/spec/token_tree.h"

namespace adaserve {

struct OracleRequest {
  uint64_t stream = 0;
  // Committed token sequence (context for the oracle).
  std::span<const Token> committed;
  // SLO requirement A(r) in expected accepted tokens (>= includes the
  // implicit 1.0 from the bonus token).
  double a_req = 1.0;
};

struct OptimalConfig {
  // Safety bound on tree depth during lazy expansion.
  int max_depth = 64;
};

struct OptimalOutput {
  // False iff Algorithm 1 returned INVALID: the budget cannot satisfy all
  // A(r) simultaneously (Appendix C, Part 1: then no feasible solution
  // exists).
  bool valid = false;
  // Per-request constructed draft token trees (root + selected nodes).
  std::vector<TokenTree> trees;
  // Per-request expected accepted tokens n_acc (>= 1.0, counting the bonus).
  std::vector<double> expected;
  // Speculated tokens used across all trees (roots excluded).
  int tokens_used = 0;

  // Objective value: total expected accepted tokens (Eq. 6) including the
  // n bonus tokens.
  double TotalExpected() const;
};

// Runs Algorithm 1 with `budget` speculated tokens (roots are free, matching
// Algorithm 1's accounting where only added nodes decrement B).
OptimalOutput OptimalConstruct(const SyntheticLm& oracle, std::span<const OracleRequest> requests,
                               int budget, const OptimalConfig& config = {});

}  // namespace adaserve

#endif  // ADASERVE_SRC_CORE_OPTIMAL_H_
