#include "src/core/adaptive.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace adaserve {

BeamConfig AdaptSpecParams(int active_requests, int verify_budget, int draft_budget,
                           const AdaptiveConfig& config) {
  ADASERVE_CHECK(active_requests >= 1) << "need at least one active request";
  ADASERVE_CHECK(verify_budget >= 1 && draft_budget >= 1) << "budgets must be positive";
  ADASERVE_CHECK(config.d_min >= 1 && config.d_max >= config.d_min) << "bad depth bounds";
  ADASERVE_CHECK(config.w_max >= 1) << "bad width bound";

  const double n = active_requests;
  const int d_raw =
      static_cast<int>(std::floor(static_cast<double>(verify_budget) / (n + config.c1))) - 1;
  const int w_raw =
      static_cast<int>(std::floor(static_cast<double>(draft_budget) / n) + config.c2);

  BeamConfig beam;
  beam.depth = std::clamp(d_raw, config.d_min, config.d_max);
  beam.width = std::clamp(w_raw, 1, config.w_max);
  return beam;
}

}  // namespace adaserve
