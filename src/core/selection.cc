#include "src/core/selection.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"

namespace adaserve {

TokenSelector::TokenSelector(std::span<const SelectionRequest> requests,
                             const SelectionConfig& config)
    : requests_(requests.begin(), requests.end()), config_(config) {
  ADASERVE_CHECK(config_.n_max >= 0) << "negative n_max";
  const size_t n = requests_.size();
  cursors_.resize(n);
  result_.selected.resize(n);
  result_.expected.assign(n, 1.0);
  result_.taken.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const TokenTree* tree = requests_[i].tree;
    ADASERVE_CHECK(tree != nullptr) << "null candidate tree";
    cursors_[i].order = tree->NodesByPathProb();
    result_.selected[i].assign(static_cast<size_t>(tree->size()), 0);
    result_.selected[i][kRootNode] = 1;
  }
}

double TokenSelector::NextProb(size_t req_idx) const {
  const Cursor& cur = cursors_[req_idx];
  if (cur.next >= cur.order.size()) {
    return -1.0;
  }
  return requests_[req_idx].tree->node(cur.order[cur.next]).path_prob;
}

bool TokenSelector::TakeNext(size_t req_idx) {
  Cursor& cur = cursors_[req_idx];
  if (cur.next >= cur.order.size()) {
    return false;
  }
  const NodeId id = cur.order[cur.next++];
  result_.selected[req_idx][static_cast<size_t>(id)] = 1;
  result_.expected[req_idx] += requests_[req_idx].tree->node(id).path_prob;
  ++result_.taken[req_idx];
  ++result_.total_taken;
  return true;
}

int TokenSelector::SloPhase(int budget) {
  // Requests in descending A_cap order: slower requests (larger unmet
  // requirement) get budget first when it is scarce (§4.3 Step 2).
  std::vector<size_t> order(requests_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return requests_[a].a_cap > requests_[b].a_cap;
  });
  int used = 0;
  for (size_t idx : order) {
    while (result_.expected[idx] < requests_[idx].a_cap &&
           result_.taken[idx] < config_.n_max && used < budget) {
      if (!TakeNext(idx)) {
        break;  // Candidate tree exhausted below the requirement.
      }
      ++used;
    }
    if (result_.expected[idx] < requests_[idx].a_cap) {
      result_.all_slo_met = false;
    }
  }
  return used;
}

int TokenSelector::ThroughputPhase(int budget) {
  int used = 0;
  while (used < budget) {
    // Globally best next candidate across all requests. Linear scan: the
    // number of concurrent requests is modest and this keeps the hot path
    // allocation-free.
    double best_prob = -1.0;
    size_t best_idx = 0;
    for (size_t i = 0; i < requests_.size(); ++i) {
      const double p = NextProb(i);
      if (p > best_prob) {
        best_prob = p;
        best_idx = i;
      }
    }
    if (best_prob < 0.0) {
      break;  // All candidate trees exhausted.
    }
    TakeNext(best_idx);
    ++used;
  }
  return used;
}

SelectionResult SelectTokens(std::span<const SelectionRequest> requests, int budget,
                             const SelectionConfig& config) {
  TokenSelector selector(requests, config);
  const int used = selector.SloPhase(budget);
  selector.ThroughputPhase(budget - used);
  return selector.result();
}

}  // namespace adaserve
