#include "src/common/rng.h"

#include <cmath>
#include <numbers>

namespace adaserve {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

uint64_t HashTokens(uint64_t seed, std::span<const Token> tokens) {
  uint64_t h = Mix64(seed ^ 0xadaceede5e4e5e4eULL);
  for (Token t : tokens) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(t)));
  }
  return h;
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53-bit mantissa conversion; result in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  // Lemire's multiply-shift rejection method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::Exponential(double rate) {
  double u = Uniform();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -std::log(1.0 - u) / rate;
}

double Rng::Normal() {
  double u1 = Uniform();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::LogNormal(double log_mean, double log_stddev) {
  return std::exp(Normal(log_mean, log_stddev));
}

Rng Rng::Split(uint64_t salt) const {
  uint64_t h = Mix64(salt);
  for (uint64_t s : s_) {
    h = HashCombine(h, s);
  }
  return Rng(h);
}

}  // namespace adaserve
