// Fixed-size thread pool for the experiment harness.
//
// Deliberately small: a mutex-guarded FIFO queue drained by a fixed set of
// worker threads, no work stealing, futures for results. Exceptions thrown
// by a task are captured in its future (std::packaged_task semantics) and
// rethrow at future.get() in the caller, so a crashing sweep cell fails the
// bench instead of tearing down a worker. The harness fans out independent
// deterministic simulations, so this is all the machinery parallel sweeps
// need.
#ifndef ADASERVE_SRC_COMMON_THREAD_POOL_H_
#define ADASERVE_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace adaserve {

class ThreadPool {
 public:
  // num_threads == 0 builds an inline pool: Submit runs the task on the
  // calling thread before returning (the future is already ready). Useful
  // as the exact-serial mode of parallel harnesses and in tests.
  explicit ThreadPool(int num_threads);

  // Joins after draining the queue: every task submitted before
  // destruction runs. Submitting from outside the pool while the
  // destructor runs is a caller bug.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues `fn` and returns a future for its result. Tasks start in FIFO
  // order. Nested submission (a task submitting to its own pool) is safe;
  // blocking on a nested future from inside a worker can deadlock when
  // every worker does it, so harness code always waits from the caller.
  template <typename F>
  auto Submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return future;
    }
    Enqueue([task] { (*task)(); });
    return future;
  }

 private:
  void Enqueue(std::function<void()> fn);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_COMMON_THREAD_POOL_H_
