#include "src/common/thread_pool.h"

namespace adaserve {

ThreadPool::ThreadPool(int num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads > 0 ? num_threads : 0));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // The packaged_task wrapper captures any exception into the future.
    task();
  }
}

}  // namespace adaserve
