// Minimal leveled logging and check macros.
//
// The simulator is a library first; logging defaults to warnings-and-above so
// that benches print clean tables. CHECK failures abort with a message — they
// guard internal invariants, not user input.
#ifndef ADASERVE_SRC_COMMON_LOGGING_H_
#define ADASERVE_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace adaserve {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Sets the minimum level that will be emitted. Thread-compatible: call once
// at startup.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one log line to stderr if `level` is at or above the threshold.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

// Aborts the process after printing the message. Used by ADASERVE_CHECK.
[[noreturn]] void CheckFailure(const char* file, int line, const char* expr,
                               const std::string& message);

namespace internal {

// Stream collector backing the macros below.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

class CheckStream {
 public:
  CheckStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckStream() { CheckFailure(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace adaserve

#define ADASERVE_LOG(level) \
  ::adaserve::internal::LogStream(::adaserve::LogLevel::k##level, __FILE__, __LINE__)

#define ADASERVE_CHECK(expr)                                          \
  if (expr) {                                                         \
  } else                                                              \
    ::adaserve::internal::CheckStream(__FILE__, __LINE__, #expr)

#endif  // ADASERVE_SRC_COMMON_LOGGING_H_
