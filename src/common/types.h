// Core scalar types shared by every AdaServe module.
#ifndef ADASERVE_SRC_COMMON_TYPES_H_
#define ADASERVE_SRC_COMMON_TYPES_H_

#include <cstdint>

namespace adaserve {

// Vocabulary token id. Negative values are reserved for sentinels.
using Token = int32_t;

// Sentinel used where "no token" must be representable.
inline constexpr Token kInvalidToken = -1;

// Monotonically increasing request identifier assigned at arrival.
using RequestId = int64_t;

inline constexpr RequestId kInvalidRequestId = -1;

// Simulated wall-clock time in seconds. All latency math is done in seconds;
// reporting layers convert to milliseconds.
using SimTime = double;

// Converts seconds to milliseconds for reporting.
inline constexpr double ToMs(SimTime seconds) { return seconds * 1e3; }

// Converts milliseconds to the internal seconds representation.
inline constexpr SimTime FromMs(double ms) { return ms * 1e-3; }

}  // namespace adaserve

#endif  // ADASERVE_SRC_COMMON_TYPES_H_
