// Allocation-recycling primitives for the serving hot path.
//
// Steady-state serving should not touch the heap. Three tools enforce
// that, in increasing order of scope:
//   - SmallVector<T, N>: bounded scratch (distribution supports,
//     token-tree children, per-phase id lists) lives in inline storage
//     and only spills to the heap past N elements.
//   - VectorPool<T>: recycles the capacity of per-request payload
//     vectors (output tokens, commit timestamps) from retired requests
//     to newly admitted ones, so a long streaming run reaches a fixed
//     point where no request ever allocates.
//   - Arena: a chunked bump allocator for records whose lifetime is one
//     run (iteration logs, per-cell scratch); freed wholesale on Reset.
#ifndef ADASERVE_SRC_COMMON_ARENA_H_
#define ADASERVE_SRC_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace adaserve {

// Fixed-inline-capacity vector for trivially copyable scratch data. The
// first N elements live inside the object; element N+1 moves the whole
// contents to a heap vector whose capacity is retained across clear().
// Iterators/pointers are invalidated by push_back, exactly like
// std::vector. Deliberately minimal: the hot paths need append, indexed
// read, and span-style access, nothing else.
template <typename T, size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is scratch storage for trivially copyable types");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  SmallVector() = default;
  SmallVector(SmallVector&& other) noexcept { *this = std::move(other); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      size_ = other.size_;
      if (size_ > 0 && size_ <= N) {
        std::copy(other.inline_, other.inline_ + size_, inline_);
      }
      spill_ = std::move(other.spill_);
      other.size_ = 0;
      other.spill_.clear();
    }
    return *this;
  }
  SmallVector(const SmallVector& other) { *this = other; }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      size_ = other.size_;
      if (size_ > 0 && size_ <= N) {
        std::copy(other.inline_, other.inline_ + size_, inline_);
      }
      spill_ = other.spill_;
    }
    return *this;
  }

  void push_back(const T& v) {
    if (size_ < N) {
      inline_[size_++] = v;
      return;
    }
    if (size_ == N) {
      spill_.assign(inline_, inline_ + N);  // One-time copy at the spill point.
    }
    spill_.push_back(v);
    ++size_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }
  T& back() { return data()[size_ - 1]; }

  T* data() { return size_ <= N ? inline_ : spill_.data(); }
  const T* data() const { return size_ <= N ? inline_ : spill_.data(); }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  // Drops the elements; spill capacity (if any) is kept for reuse.
  void clear() {
    size_ = 0;
    spill_.clear();
  }

 private:
  T inline_[N];
  size_t size_ = 0;
  std::vector<T> spill_;
};

// LIFO free list recycling heap vectors with their capacity. Acquire
// returns an empty vector (reusing the most recently released buffer's
// capacity when one is pooled); Release parks a no-longer-needed vector.
// Single-threaded by design — each RequestPool/engine run owns its own
// pool, mirroring the one-cell-one-task sweep contract.
template <typename T>
class VectorPool {
 public:
  std::vector<T> Acquire() {
    if (free_.empty()) {
      return {};
    }
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    ++reuses_;
    return v;
  }

  void Release(std::vector<T>&& v) {
    if (v.capacity() == 0) {
      return;  // Nothing worth recycling.
    }
    free_.push_back(std::move(v));
  }

  // Buffers currently parked.
  size_t pooled() const { return free_.size(); }
  // Acquire calls that reused pooled capacity instead of allocating.
  size_t reuses() const { return reuses_; }

 private:
  std::vector<std::vector<T>> free_;
  size_t reuses_ = 0;
};

// Chunked bump allocator: allocations are O(1) pointer bumps, and the
// whole arena is reclaimed at once by Reset (retaining chunk capacity)
// or destruction. For trivially destructible record types only — nothing
// is destroyed individually.
class Arena {
 public:
  explicit Arena(size_t chunk_bytes = 64 * 1024) : chunk_bytes_(chunk_bytes) {}

  template <typename T>
  T* Allocate(size_t count = 1) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    const size_t bytes = sizeof(T) * count;
    // Element-wise placement-new: placement array-new may prepend an
    // array cookie, which would misalign the returned pointer.
    T* p = static_cast<T*>(AllocateBytes(bytes, alignof(T)));
    for (size_t i = 0; i < count; ++i) {
      new (p + i) T();
    }
    return p;
  }

  // Reclaims every allocation; the first chunk's capacity is retained so
  // a steady-state reuse cycle stops touching the heap.
  void Reset() {
    if (chunks_.size() > 1) {
      chunks_.resize(1);
    }
    used_ = 0;
    total_used_ = 0;
  }

  size_t bytes_allocated() const { return total_used_; }

 private:
  void* AllocateBytes(size_t bytes, size_t align) {
    used_ = (used_ + align - 1) & ~(align - 1);
    if (chunks_.empty() || used_ + bytes > chunks_.back().size) {
      const size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
      chunks_.push_back({std::make_unique<unsigned char[]>(size), size});
      used_ = 0;
    }
    void* p = chunks_.back().data.get() + used_;
    used_ += bytes;
    total_used_ += bytes;
    return p;
  }

  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t used_ = 0;        // Bump offset within the last chunk.
  size_t total_used_ = 0;  // Sum of live allocation bytes since Reset.
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_COMMON_ARENA_H_
