// Deterministic, seedable random number generation and stable hashing.
//
// Every stochastic component in the simulator (synthetic language model,
// arrival traces, speculative-sampling verification) draws from explicitly
// seeded streams so that an entire experiment is reproducible bit-for-bit.
// The generator is xoshiro256**, seeded through SplitMix64; hashing uses a
// SplitMix64-based mix so that context hashes are stable across platforms
// (std::hash makes no such guarantee).
#ifndef ADASERVE_SRC_COMMON_RNG_H_
#define ADASERVE_SRC_COMMON_RNG_H_

#include <cstdint>
#include <span>

#include "src/common/types.h"

namespace adaserve {

// SplitMix64 step; also the core of our stable hash mixing.
uint64_t SplitMix64(uint64_t& state);

// Mixes a single 64-bit value (Stafford variant 13 finalizer).
uint64_t Mix64(uint64_t x);

// Combines a hash with a new value, order-sensitive.
uint64_t HashCombine(uint64_t seed, uint64_t value);

// Stable hash of a token span with a stream seed. Used to key the synthetic
// language model's next-token distribution on (stream, context window).
uint64_t HashTokens(uint64_t seed, std::span<const Token> tokens);

// xoshiro256** 1.0 generator. Small, fast, and with well-understood
// statistical quality; good enough for simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform integer in [0, bound). Requires bound > 0.
  uint64_t UniformInt(uint64_t bound);

  // Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  // Standard normal via Box-Muller (no cached spare; keeps state minimal).
  double Normal();

  // Normal with mean/stddev.
  double Normal(double mean, double stddev);

  // Lognormal parameterised by the mean/stddev of the underlying normal.
  double LogNormal(double log_mean, double log_stddev);

  // Splits off an independent generator. The child stream is a pure function
  // of the parent state and `salt`, so splitting is reproducible.
  Rng Split(uint64_t salt) const;

 private:
  uint64_t s_[4];
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_COMMON_RNG_H_
