#include "src/common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace adaserve {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line, message.c_str());
}

void CheckFailure(const char* file, int line, const char* expr, const std::string& message) {
  std::fprintf(stderr, "[CHECK %s:%d] %s failed. %s\n", file, line, expr, message.c_str());
  std::abort();
}

}  // namespace adaserve
