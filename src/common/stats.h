// Lightweight statistics helpers used by the metrics layer and tests.
#ifndef ADASERVE_SRC_COMMON_STATS_H_
#define ADASERVE_SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace adaserve {

// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Extrema of the samples seen so far. NaN for an empty accumulator: a
  // fabricated 0.0 silently poisons merged aggregates (a cluster
  // min-latency of 0.0 from a replica that served nothing looks like a
  // miracle, not a hole), while NaN survives min/max folds as a visible
  // sentinel and trips any comparison-based assertion.
  double min() const;
  double max() const;

  // Population variance (divides by N); 0 for fewer than two samples.
  double Variance() const;
  double Stddev() const;

  // Sample (Bessel-corrected, divides by N-1) variance; 0 for fewer than
  // two samples. This is the right estimator when the samples are a
  // handful of seed shards standing in for the seed population — the
  // cross-seed error bars RunSeedShardedSweep aggregates use it.
  double SampleVariance() const;
  double SampleStddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores all samples and answers percentile queries. Intended for
// per-request latency summaries where sample counts are modest.
class Samples {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_valid_ = false;
  }
  void Reserve(size_t n) { values_.reserve(n); }

  // Appends every sample of `other` (in its insertion order). Cluster
  // metrics merging concatenates per-replica sample sets with this;
  // appending in replica order keeps the merge deterministic.
  void Append(const Samples& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
    sorted_valid_ = false;
  }

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double Mean() const;
  double Sum() const;
  double Min() const;
  double Max() const;

  // Pre-computes the sorted view backing Percentile. Call once after the
  // last Add (MetricsAccumulator::Finalize does) so later Percentile
  // queries share the cached sort instead of each paying O(n log n).
  // Mutation is confined to this non-const call: const Percentile never
  // writes, so any number of threads may query one shared finalized
  // Samples concurrently (stats_test pins this under TSan).
  void MaterializeSorted();

  // Linear-interpolated percentile, p in [0, 100]. Returns 0 when empty.
  // Uses the MaterializeSorted cache when valid; otherwise sorts a local
  // copy per call — correct but O(n log n) each time, so materialize
  // before repeated queries.
  double Percentile(double p) const;

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  // Sorted copy backing Percentile; valid iff sorted_valid_. Written only
  // by MaterializeSorted (invalidated by Add), never by const queries.
  std::vector<double> sorted_;
  bool sorted_valid_ = false;
};

// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
// first/last bin. Used by trace visualisation benches. Degenerate shapes
// are guarded rather than UB: bins == 0 is clamped to one bin, a
// zero-width range puts every sample in the first bin, and NaN samples
// are dropped (counted by dropped(), not total()).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);

  size_t bins() const { return counts_.size(); }
  size_t count(size_t bin) const { return counts_[bin]; }
  double BinCenter(size_t bin) const;
  size_t total() const { return total_; }
  // NaN samples rejected by Add.
  size_t dropped() const { return dropped_; }

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
  size_t dropped_ = 0;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_COMMON_STATS_H_
