#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace adaserve {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double RunningStat::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double RunningStat::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStat::Stddev() const { return std::sqrt(Variance()); }

double RunningStat::SampleVariance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::SampleStddev() const { return std::sqrt(SampleVariance()); }

double Samples::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  return Sum() / static_cast<double>(values_.size());
}

double Samples::Sum() const { return std::accumulate(values_.begin(), values_.end(), 0.0); }

double Samples::Min() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::Max() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::max_element(values_.begin(), values_.end());
}

void Samples::MaterializeSorted() {
  if (sorted_valid_) {
    return;
  }
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

namespace {

double InterpolatedPercentile(const std::vector<double>& sorted, double p) {
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double Samples::Percentile(double p) const {
  if (values_.empty()) {
    return 0.0;
  }
  if (sorted_valid_) {
    return InterpolatedPercentile(sorted_, p);
  }
  // Unmaterialized: sort a local copy rather than mutating shared state —
  // two threads querying one const Samples must not race on a cache.
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  return InterpolatedPercentile(sorted, p);
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::Add(double x) {
  if (std::isnan(x)) {
    // Casting NaN to an integer is UB; reject the sample instead.
    ++dropped_;
    return;
  }
  const double span = hi_ - lo_;
  long bin = 0;
  if (span > 0.0) {
    // The quotient can still overflow a long for huge outliers (that cast
    // is UB too), so clamp in floating point before converting.
    const double scaled = (x - lo_) / span * static_cast<double>(counts_.size());
    const double max_bin = static_cast<double>(counts_.size() - 1);
    bin = static_cast<long>(std::clamp(scaled, 0.0, max_bin));
  }
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

double Histogram::BinCenter(size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

}  // namespace adaserve
