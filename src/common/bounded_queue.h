// Bounded blocking queue for single-producer/single-consumer handoff.
//
// Backs PrefetchingArrivalStream: the producer thread pushes generated
// requests, the serving loop pops them, and the bound gives backpressure
// so prefetch depth — not trace length — caps resident memory. Close()
// unblocks both sides: a closed queue rejects pushes (producer shutdown
// on consumer abort) and drains remaining items before Pop reports
// end-of-stream (consumer sees every request of a finished producer).
#ifndef ADASERVE_SRC_COMMON_BOUNDED_QUEUE_H_
#define ADASERVE_SRC_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "src/common/logging.h"

namespace adaserve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    ADASERVE_CHECK(capacity_ > 0) << "bounded queue needs positive capacity";
  }

  // Blocks while the queue is full. Returns false (dropping `v`) if the
  // queue was closed — the producer's signal to stop generating.
  bool Push(T v) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(v));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty and open. Returns nullopt only when
  // the queue is closed AND drained, so no pushed item is ever lost.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T v = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

  // Idempotent. Wakes blocked producers (Push fails) and consumers (Pop
  // drains the backlog, then reports end-of-stream).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_COMMON_BOUNDED_QUEUE_H_
