// Bounded blocking queue for producer/consumer handoff.
//
// Backs PrefetchingArrivalStream: the producer thread pushes generated
// requests, the serving loop pops them, and the bound gives backpressure
// so prefetch depth — not trace length — caps resident memory. Close()
// unblocks both sides: a closed queue rejects pushes (producer shutdown
// on consumer abort), handing the rejected item back so the caller can
// re-route it, and drains remaining items before Pop reports
// end-of-stream (consumer sees every request of a finished producer).
//
// Safe for any number of producers and consumers, not just SPSC: the two
// condition variables each guard a single uniform predicate (not-full /
// not-empty), and every successful Push/Pop performs exactly one state
// transition and one notify_one of the complementary side, so a wakeup
// can be absorbed by a faster peer but never lost — the absorbing peer's
// own completed operation re-notifies. bounded_queue_test races multiple
// producers through one queue under the TSan CI job.
#ifndef ADASERVE_SRC_COMMON_BOUNDED_QUEUE_H_
#define ADASERVE_SRC_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "src/common/logging.h"

namespace adaserve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    ADASERVE_CHECK(capacity_ > 0) << "bounded queue needs positive capacity";
  }

  // Blocks while the queue is full. Returns nullopt once `v` is enqueued.
  // If the queue was closed — the producer's signal to stop generating —
  // `v` is NOT enqueued and is handed back as the residue, so the caller
  // can re-route the item (a cluster-side fan-in producer re-offers a
  // rejected request to another replica) instead of losing it.
  [[nodiscard]] std::optional<T> Push(T v) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) {
      return std::optional<T>(std::move(v));
    }
    items_.push_back(std::move(v));
    lock.unlock();
    not_empty_.notify_one();
    return std::nullopt;
  }

  // Blocks while the queue is empty and open. Returns nullopt only when
  // the queue is closed AND drained, so no pushed item is ever lost.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T v = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

  // Idempotent. Wakes blocked producers (Push fails) and consumers (Pop
  // drains the backlog, then reports end-of-stream).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_COMMON_BOUNDED_QUEUE_H_
