// Decoding modes and token sampling helpers.
#ifndef ADASERVE_SRC_MODEL_SAMPLER_H_
#define ADASERVE_SRC_MODEL_SAMPLER_H_

#include "src/model/distribution.h"

namespace adaserve {

// Decoding policy used both for plain auto-regressive generation and for
// speculative verification.
enum class DecodeMode {
  // Deterministic: commit the argmax token; a speculated token is accepted
  // iff it equals the target argmax.
  kGreedy,
  // Sampling: commit a sampled token; speculated tokens go through lossless
  // speculative-sampling acceptance.
  kStochastic,
};

// Draws one token from `dist` under `mode`.
Token SampleToken(const SparseDist& dist, DecodeMode mode, Rng& rng);

}  // namespace adaserve

#endif  // ADASERVE_SRC_MODEL_SAMPLER_H_
