#include "src/model/draft_lm.h"

#include "src/common/logging.h"

namespace adaserve {
namespace {

LmConfig NoiseConfig(const SyntheticLm& target, const DraftConfig& config) {
  LmConfig noise = target.config();
  noise.seed = config.noise_seed;
  noise.support = config.noise_support;
  return noise;
}

}  // namespace

DraftLm::DraftLm(const SyntheticLm* target, const DraftConfig& config)
    : target_(target), config_(config), noise_(NoiseConfig(*target, config)) {
  ADASERVE_CHECK(target_ != nullptr) << "draft model requires a target";
  ADASERVE_CHECK(config_.fidelity >= 0.0 && config_.fidelity <= 1.0)
      << "fidelity out of range: " << config_.fidelity;
}

SparseDist DraftLm::NextDist(uint64_t stream, std::span<const Token> context) const {
  const SparseDist target_dist = target_->NextDist(stream, context);
  if (config_.fidelity >= 1.0) {
    return target_dist;
  }
  const SparseDist noise_dist = noise_.NextDist(stream, context);
  return Mix(target_dist, noise_dist, config_.fidelity);
}

}  // namespace adaserve
