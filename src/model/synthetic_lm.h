// Deterministic synthetic target language model.
//
// Substitutes for the paper's Llama-3.1-70B / Qwen2.5-32B targets. The model
// maps (stream seed, sliding context window) to a sparse next-token
// distribution: the support is chosen by hashing the context, and weights
// follow a perturbed Zipf law whose exponent controls entropy. Because the
// distribution is a pure function of the hash, the "model" is consistent —
// re-querying the same context yields the same distribution — which is all
// speculative decoding requires of a target model.
#ifndef ADASERVE_SRC_MODEL_SYNTHETIC_LM_H_
#define ADASERVE_SRC_MODEL_SYNTHETIC_LM_H_

#include <cstdint>
#include <span>

#include "src/model/distribution.h"

namespace adaserve {

struct LmConfig {
  // Vocabulary size; token ids are in [0, vocab_size).
  int vocab_size = 32000;
  // Number of trailing context tokens the next-token distribution depends on.
  int context_order = 3;
  // Support size of each next-token distribution.
  int support = 24;
  // Zipf exponent for the support weights. Larger values concentrate mass on
  // the head (lower entropy => easier speculation).
  double zipf_exponent = 1.3;
  // Multiplicative jitter applied to each weight, in [1 - jitter, 1 + jitter].
  double weight_jitter = 0.4;
  // Model identity; two LMs with different seeds are unrelated.
  uint64_t seed = 1;
};

class SyntheticLm {
 public:
  explicit SyntheticLm(const LmConfig& config);

  const LmConfig& config() const { return config_; }

  // Next-token distribution for request stream `stream` given the committed
  // token sequence `context`. Only the last `context_order` tokens matter;
  // shorter contexts are implicitly left-padded with the stream hash.
  SparseDist NextDist(uint64_t stream, std::span<const Token> context) const;

 private:
  LmConfig config_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_MODEL_SYNTHETIC_LM_H_
