#include "src/model/distribution.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/logging.h"

namespace adaserve {
namespace {

constexpr double kMinMass = 1e-12;

void SortEntries(std::vector<SparseDist::Entry>& entries) {
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.prob != b.prob) {
      return a.prob > b.prob;
    }
    return a.token < b.token;
  });
}

}  // namespace

SparseDist SparseDist::FromWeights(std::span<const Token> tokens, std::span<const double> weights) {
  ADASERVE_CHECK(tokens.size() == weights.size()) << "token/weight size mismatch";
  std::map<Token, double> merged;
  double total = 0.0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    ADASERVE_CHECK(weights[i] >= 0.0) << "negative weight for token " << tokens[i];
    if (weights[i] > 0.0) {
      merged[tokens[i]] += weights[i];
      total += weights[i];
    }
  }
  ADASERVE_CHECK(total > 0.0) << "distribution has no mass";
  SparseDist dist;
  dist.entries_.reserve(merged.size());
  for (const auto& [token, weight] : merged) {
    dist.entries_.push_back({token, weight / total});
  }
  SortEntries(dist.entries_);
  return dist;
}

SparseDist SparseDist::PointMass(Token token) {
  SparseDist dist;
  dist.entries_.push_back({token, 1.0});
  return dist;
}

double SparseDist::ProbOf(Token token) const {
  for (const Entry& e : entries_) {
    if (e.token == token) {
      return e.prob;
    }
  }
  return 0.0;
}

Token SparseDist::ArgMax() const {
  ADASERVE_CHECK(!entries_.empty()) << "ArgMax of empty distribution";
  return entries_.front().token;
}

Token SparseDist::Sample(Rng& rng) const {
  ADASERVE_CHECK(!entries_.empty()) << "Sample from empty distribution";
  const double u = rng.Uniform() * TotalMass();
  double cum = 0.0;
  for (const Entry& e : entries_) {
    cum += e.prob;
    if (u < cum) {
      return e.token;
    }
  }
  return entries_.back().token;
}

double SparseDist::Entropy() const {
  double h = 0.0;
  for (const Entry& e : entries_) {
    if (e.prob > 0.0) {
      h -= e.prob * std::log(e.prob);
    }
  }
  return h;
}

SparseDist SparseDist::Residual(const SparseDist& q) const {
  std::vector<Token> tokens;
  std::vector<double> weights;
  tokens.reserve(entries_.size());
  weights.reserve(entries_.size());
  double total = 0.0;
  for (const Entry& e : entries_) {
    const double w = std::max(e.prob - q.ProbOf(e.token), 0.0);
    tokens.push_back(e.token);
    weights.push_back(w);
    total += w;
  }
  if (total <= kMinMass) {
    return *this;
  }
  return FromWeights(tokens, weights);
}

SparseDist SparseDist::WithTemperature(double t) const {
  ADASERVE_CHECK(t > 0.0) << "temperature must be positive";
  std::vector<Token> tokens;
  std::vector<double> weights;
  tokens.reserve(entries_.size());
  weights.reserve(entries_.size());
  for (const Entry& e : entries_) {
    tokens.push_back(e.token);
    weights.push_back(std::pow(e.prob, 1.0 / t));
  }
  return FromWeights(tokens, weights);
}

double SparseDist::TotalMass() const {
  double total = 0.0;
  for (const Entry& e : entries_) {
    total += e.prob;
  }
  return total;
}

SparseDist Mix(const SparseDist& a, const SparseDist& b, double weight) {
  ADASERVE_CHECK(weight >= 0.0 && weight <= 1.0) << "mix weight out of range: " << weight;
  std::vector<Token> tokens;
  std::vector<double> weights;
  tokens.reserve(a.size() + b.size());
  weights.reserve(a.size() + b.size());
  for (const auto& e : a.entries()) {
    tokens.push_back(e.token);
    weights.push_back(weight * e.prob);
  }
  for (const auto& e : b.entries()) {
    tokens.push_back(e.token);
    weights.push_back((1.0 - weight) * e.prob);
  }
  return SparseDist::FromWeights(tokens, weights);
}

}  // namespace adaserve
