#include "src/model/distribution.h"

#include <algorithm>
#include <cmath>

#include "src/common/arena.h"
#include "src/common/logging.h"

namespace adaserve {
namespace {

constexpr double kMinMass = 1e-12;

// Inline capacity covering every configured support size (default 24,
// draft mixes see the union of two supports). Larger supports spill to
// the heap transparently.
constexpr size_t kInlineSupport = 64;

void SortEntries(std::vector<SparseDist::Entry>& entries) {
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.prob != b.prob) {
      return a.prob > b.prob;
    }
    return a.token < b.token;
  });
}

}  // namespace

SparseDist SparseDist::FromWeights(std::span<const Token> tokens, std::span<const double> weights) {
  ADASERVE_CHECK(tokens.size() == weights.size()) << "token/weight size mismatch";
  // Coalesce duplicates by linear probing into the output buffer itself:
  // supports are tens of tokens, so a scan beats the former std::map (and
  // its node allocation per entry) by a wide margin. Per-token weight sums
  // and the total accumulate in input order, exactly as the map-based
  // version did, so every double — and therefore the final sorted entry
  // array — is bit-identical to the historical output.
  SparseDist dist;
  std::vector<Entry>& entries = dist.entries_;
  entries.reserve(tokens.size());
  double total = 0.0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    ADASERVE_CHECK(weights[i] >= 0.0) << "negative weight for token " << tokens[i];
    if (weights[i] <= 0.0) {
      continue;
    }
    total += weights[i];
    bool merged = false;
    for (Entry& e : entries) {
      if (e.token == tokens[i]) {
        e.prob += weights[i];
        merged = true;
        break;
      }
    }
    if (!merged) {
      entries.push_back({tokens[i], weights[i]});
    }
  }
  ADASERVE_CHECK(total > 0.0) << "distribution has no mass";
  for (Entry& e : entries) {
    e.prob /= total;
  }
  SortEntries(entries);
  return dist;
}

SparseDist SparseDist::PointMass(Token token) {
  SparseDist dist;
  dist.entries_.push_back({token, 1.0});
  return dist;
}

double SparseDist::ProbOf(Token token) const {
  for (const Entry& e : entries_) {
    if (e.token == token) {
      return e.prob;
    }
  }
  return 0.0;
}

Token SparseDist::ArgMax() const {
  ADASERVE_CHECK(!entries_.empty()) << "ArgMax of empty distribution";
  return entries_.front().token;
}

Token SparseDist::Sample(Rng& rng) const {
  ADASERVE_CHECK(!entries_.empty()) << "Sample from empty distribution";
  const double u = rng.Uniform() * TotalMass();
  double cum = 0.0;
  for (const Entry& e : entries_) {
    cum += e.prob;
    if (u < cum) {
      return e.token;
    }
  }
  return entries_.back().token;
}

double SparseDist::Entropy() const {
  double h = 0.0;
  for (const Entry& e : entries_) {
    if (e.prob > 0.0) {
      h -= e.prob * std::log(e.prob);
    }
  }
  return h;
}

SparseDist SparseDist::Residual(const SparseDist& q) const {
  SmallVector<Token, kInlineSupport> tokens;
  SmallVector<double, kInlineSupport> weights;
  double total = 0.0;
  for (const Entry& e : entries_) {
    const double w = std::max(e.prob - q.ProbOf(e.token), 0.0);
    tokens.push_back(e.token);
    weights.push_back(w);
    total += w;
  }
  if (total <= kMinMass) {
    return *this;
  }
  return FromWeights({tokens.data(), tokens.size()}, {weights.data(), weights.size()});
}

SparseDist SparseDist::WithTemperature(double t) const {
  ADASERVE_CHECK(t > 0.0) << "temperature must be positive";
  SmallVector<Token, kInlineSupport> tokens;
  SmallVector<double, kInlineSupport> weights;
  for (const Entry& e : entries_) {
    tokens.push_back(e.token);
    weights.push_back(std::pow(e.prob, 1.0 / t));
  }
  return FromWeights({tokens.data(), tokens.size()}, {weights.data(), weights.size()});
}

double SparseDist::TotalMass() const {
  double total = 0.0;
  for (const Entry& e : entries_) {
    total += e.prob;
  }
  return total;
}

SparseDist Mix(const SparseDist& a, const SparseDist& b, double weight) {
  ADASERVE_CHECK(weight >= 0.0 && weight <= 1.0) << "mix weight out of range: " << weight;
  SmallVector<Token, kInlineSupport> tokens;
  SmallVector<double, kInlineSupport> weights;
  for (const auto& e : a.entries()) {
    tokens.push_back(e.token);
    weights.push_back(weight * e.prob);
  }
  for (const auto& e : b.entries()) {
    tokens.push_back(e.token);
    weights.push_back((1.0 - weight) * e.prob);
  }
  return SparseDist::FromWeights({tokens.data(), tokens.size()}, {weights.data(), weights.size()});
}

}  // namespace adaserve
