// Synthetic draft (speculator) model.
//
// Substitutes for Llama-3.2-1B / Qwen2.5-0.5B. The paper's key assumption
// (§4.2, Challenge 1) is that the draft model's logits approximate the
// target's acceptance probabilities; we make that approximation explicit:
// the draft distribution is a fidelity-weighted mixture of the target
// distribution and an independent noise distribution. fidelity = 1 gives a
// perfectly distilled draft; fidelity = 0 gives an uninformed one.
#ifndef ADASERVE_SRC_MODEL_DRAFT_LM_H_
#define ADASERVE_SRC_MODEL_DRAFT_LM_H_

#include <cstdint>
#include <span>

#include "src/model/synthetic_lm.h"

namespace adaserve {

struct DraftConfig {
  // Mixture weight on the target distribution, in [0, 1].
  double fidelity = 0.8;
  // Seed of the noise component (independent of the target's seed).
  uint64_t noise_seed = 0x5eedbeef;
  // Support size of the noise component.
  int noise_support = 24;
};

class DraftLm {
 public:
  // `target` must outlive the draft model.
  DraftLm(const SyntheticLm* target, const DraftConfig& config);

  const DraftConfig& config() const { return config_; }

  // Draft next-token distribution for the same (stream, context) keying as
  // the target model.
  SparseDist NextDist(uint64_t stream, std::span<const Token> context) const;

 private:
  const SyntheticLm* target_;
  DraftConfig config_;
  SyntheticLm noise_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_MODEL_DRAFT_LM_H_
