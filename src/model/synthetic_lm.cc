#include "src/model/synthetic_lm.h"

#include <cmath>

#include "src/common/arena.h"
#include "src/common/logging.h"

namespace adaserve {

SyntheticLm::SyntheticLm(const LmConfig& config) : config_(config) {
  ADASERVE_CHECK(config_.vocab_size > 1) << "vocab too small";
  ADASERVE_CHECK(config_.support > 0 && config_.support <= config_.vocab_size)
      << "bad support size";
  ADASERVE_CHECK(config_.context_order >= 1) << "context order must be >= 1";
  ADASERVE_CHECK(config_.weight_jitter >= 0.0 && config_.weight_jitter < 1.0)
      << "jitter must be in [0, 1)";
}

SparseDist SyntheticLm::NextDist(uint64_t stream, std::span<const Token> context) const {
  // Key the distribution on the trailing window only; this bounds hashing
  // cost and mimics the short effective memory of n-gram statistics.
  const size_t order = static_cast<size_t>(config_.context_order);
  const size_t start = context.size() > order ? context.size() - order : 0;
  uint64_t h = HashCombine(Mix64(config_.seed), stream);
  h = HashCombine(h, HashTokens(config_.seed, context.subspan(start)));

  // Inline scratch: the support is a few dozen tokens, so building the
  // weight list must not hit the heap on this per-token hot path.
  SmallVector<Token, 64> tokens;
  SmallVector<double, 64> weights;
  uint64_t pick_state = h;
  for (int i = 0; i < config_.support; ++i) {
    // Derive the i-th support token and its jitter from the hash stream.
    const uint64_t r1 = SplitMix64(pick_state);
    const uint64_t r2 = SplitMix64(pick_state);
    const auto token = static_cast<Token>(r1 % static_cast<uint64_t>(config_.vocab_size));
    const double jitter_u = static_cast<double>(r2 >> 11) * 0x1.0p-53;
    const double jitter = 1.0 + config_.weight_jitter * (2.0 * jitter_u - 1.0);
    const double zipf = std::pow(static_cast<double>(i + 1), -config_.zipf_exponent);
    tokens.push_back(token);
    weights.push_back(zipf * jitter);
  }
  return SparseDist::FromWeights({tokens.data(), tokens.size()},
                                 {weights.data(), weights.size()});
}

}  // namespace adaserve
