// Sparse categorical next-token distributions.
//
// The synthetic language models emit distributions with small support
// (top-k tokens); speculative-sampling verification needs pointwise
// probability lookups, residual arithmetic (max(p - q, 0) renormalised) and
// exact sampling. All of that lives here.
#ifndef ADASERVE_SRC_MODEL_DISTRIBUTION_H_
#define ADASERVE_SRC_MODEL_DISTRIBUTION_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace adaserve {

// A probability distribution over a small token support. Entries are kept
// sorted by descending probability; probabilities sum to 1 (within
// floating-point error) over the support.
class SparseDist {
 public:
  struct Entry {
    Token token;
    double prob;
  };

  SparseDist() = default;

  // Builds a normalised distribution from (token, weight) pairs. Weights must
  // be non-negative with a positive sum; duplicate tokens are coalesced.
  static SparseDist FromWeights(std::span<const Token> tokens, std::span<const double> weights);

  // Convenience: a point mass on a single token.
  static SparseDist PointMass(Token token);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const Entry& entry(size_t i) const { return entries_[i]; }
  const std::vector<Entry>& entries() const { return entries_; }

  // Probability of `token`; 0 if outside the support.
  double ProbOf(Token token) const;

  // Highest-probability token. Ties break toward the smaller token id so
  // greedy decoding is deterministic. Requires a non-empty distribution.
  Token ArgMax() const;

  // Samples a token using inverse-CDF over the sorted support.
  Token Sample(Rng& rng) const;

  // Shannon entropy in nats (diagnostics).
  double Entropy() const;

  // Speculative-sampling residual: normalise(max(p - q, 0)) where p = *this.
  // Only tokens in p's support can carry residual mass. If the residual mass
  // underflows (q dominates p pointwise), returns p unchanged — that can only
  // happen within numerical noise of acceptance probability 1.
  SparseDist Residual(const SparseDist& q) const;

  // Applies temperature t (p_i^(1/t), renormalised). t = 1 is identity;
  // t -> 0 sharpens toward the argmax. Requires t > 0.
  SparseDist WithTemperature(double t) const;

  // Sum of stored probabilities (should be ~1; exposed for tests).
  double TotalMass() const;

 private:
  // Sorted by descending prob, ties by ascending token id.
  std::vector<Entry> entries_;
};

// Mixes two distributions: result = weight * a + (1 - weight) * b over the
// union support, renormalised. Used to derive the draft model from the
// target plus noise.
SparseDist Mix(const SparseDist& a, const SparseDist& b, double weight);

}  // namespace adaserve

#endif  // ADASERVE_SRC_MODEL_DISTRIBUTION_H_
