#include "src/model/sampler.h"

namespace adaserve {

Token SampleToken(const SparseDist& dist, DecodeMode mode, Rng& rng) {
  if (mode == DecodeMode::kGreedy) {
    return dist.ArgMax();
  }
  return dist.Sample(rng);
}

}  // namespace adaserve
