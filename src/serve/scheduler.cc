#include "src/serve/scheduler.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"
#include "src/serve/tick_pipeline.h"
#include "src/spec/verifier.h"

namespace adaserve {

TickPolicy TickPolicy::ResolvedFor(const Scheduler& scheduler) const {
  TickPolicy resolved = *this;
  if (resolved.continuous) {
    // Tick-native mode: an explicit policy wins, otherwise the
    // scheduler's own default (e.g. AdaServe admits urgent-first, vLLM
    // stays FIFO).
    if (!resolved.admission_priority.has_value()) {
      resolved.admission_priority = scheduler.AdmissionPriority();
    }
  } else {
    // Boundary mode is the legacy drain loop, byte-for-byte: it admits
    // FIFO, never evicts, and never plans ahead, regardless of the
    // tick-native knobs — `continuous = false` alone must still mean
    // "the historical engine".
    resolved.admission_priority = PriorityPolicy::kFifo;
    resolved.max_evictions = 0;
    resolved.async_planner = false;
  }
  return resolved;
}

std::vector<RequestId> RunningRequests(const RequestPool& pool) {
  std::vector<RequestId> ids;
  ids.reserve(pool.active().size());
  for (RequestId id : pool.active()) {
    if (pool.Get(id).state == RequestState::kRunning) {
      ids.push_back(id);
    }
  }
  return ids;
}

std::vector<RequestId> PrefillingRequests(const RequestPool& pool) {
  std::vector<RequestId> ids;
  ids.reserve(pool.active().size());
  for (RequestId id : pool.active()) {
    if (pool.Get(id).state == RequestState::kPrefilling) {
      ids.push_back(id);
    }
  }
  return ids;
}

bool RunFullPrefillIteration(SimTime now, RequestPool& pool, ServingContext& ctx,
                             int max_prefill_tokens, IterationRecord& record) {
  const std::vector<RequestId> prefilling = PrefillingRequests(pool);
  if (prefilling.empty()) {
    return false;
  }
  // Batch whole prompts FIFO until the token cap; always take at least one
  // prompt so oversized prompts still make progress.
  std::vector<RequestId> batch;
  int batch_tokens = 0;
  for (RequestId id : prefilling) {
    const Request& req = pool.Get(id);
    const int remaining = req.prompt_len - req.prefill_progress;
    if (!batch.empty() && batch_tokens + remaining > max_prefill_tokens) {
      break;
    }
    batch.push_back(id);
    batch_tokens += remaining;
  }
  const long context = pool.SumContextTokens(batch);
  const SimTime latency = ctx.target_latency->PrefillLatency(batch_tokens, context);
  const SimTime end = now + latency;
  for (RequestId id : batch) {
    Request& req = pool.Get(id);
    pool.AdvancePrefill(id, req.prompt_len - req.prefill_progress);
    // Prefill's last forward pass produces the first output token.
    const Token first =
        DecodeOneToken(*ctx.target, req.stream_seed, req.output, ctx.mode, *ctx.rng);
    pool.CommitToken(id, first, end);
  }
  record.duration = latency;
  record.prefill_time = latency;
  record.prefill_tokens = batch_tokens;
  record.committed_tokens = static_cast<int>(batch.size());
  return true;
}

IterationRecord RunDecodeIteration(SimTime now, RequestPool& pool, ServingContext& ctx,
                                   const std::vector<RequestId>& ids) {
  IterationRecord record;
  if (ids.empty()) {
    return record;
  }
  const long context = pool.SumContextTokens(ids);
  const SimTime latency =
      ctx.target_latency->ForwardLatency(static_cast<int>(ids.size()), context,
                                         /*use_cuda_graph=*/true);
  const SimTime end = now + latency;
  for (RequestId id : ids) {
    Request& req = pool.Get(id);
    ADASERVE_CHECK(req.state == RequestState::kRunning) << "decode on non-running " << id;
    if (req.decode_start_time < 0.0) {
      req.decode_start_time = now;
    }
    const Token token =
        DecodeOneToken(*ctx.target, req.stream_seed, req.output, ctx.mode, *ctx.rng);
    pool.CommitToken(id, token, end);
  }
  record.duration = latency;
  record.verify_time = latency;
  record.decode_requests = static_cast<int>(ids.size());
  record.committed_tokens = static_cast<int>(ids.size());
  return record;
}

SimTime NextTokenDeadline(const Request& req) {
  if (req.first_token_time >= 0.0) {
    return req.first_token_time + req.committed_len * req.tpot_slo;
  }
  return req.arrival + req.tpot_slo;
}

RequestPool::AdmissionRanker PriorityRanker(PriorityPolicy policy) {
  if (policy == PriorityPolicy::kFifo) {
    return nullptr;  // The pool's null-ranker path is exact arrival order.
  }
  if (policy == PriorityPolicy::kEdf) {
    return [](const Request& a, const Request& b) {
      return NextTokenDeadline(a) < NextTokenDeadline(b);
    };
  }
  return [](const Request& a, const Request& b) { return a.tpot_slo < b.tpot_slo; };
}

EvictionStyle PriorityEvictionStyle(PriorityPolicy policy) {
  return policy == PriorityPolicy::kSloUrgentPause ? EvictionStyle::kPause
                                                   : EvictionStyle::kRecompute;
}

RequestPool::VictimSelector PriorityVictimSelector(PriorityPolicy policy) {
  if (policy == PriorityPolicy::kFifo) {
    return nullptr;  // Pool default: newest-admitted zero-output request.
  }
  if (policy == PriorityPolicy::kEdf) {
    // The EDF analogue of the SLO-aware selector: the head may only
    // displace a prefilling zero-output request whose next-token deadline
    // is strictly *later* than its own; latest-deadline victims first,
    // the newest among equals (least prefill progress to redo).
    return [](const Request& head, const RequestPool& pool) {
      const SimTime head_deadline = NextTokenDeadline(head);
      RequestId victim = kInvalidRequestId;
      SimTime victim_deadline = 0.0;
      for (auto it = pool.active().rbegin(); it != pool.active().rend(); ++it) {
        const Request& req = pool.Get(*it);
        if (req.state != RequestState::kPrefilling || req.committed_len != 0) {
          continue;
        }
        const SimTime deadline = NextTokenDeadline(req);
        if (deadline <= head_deadline) {
          continue;
        }
        if (victim == kInvalidRequestId || deadline > victim_deadline) {
          victim = *it;
          victim_deadline = deadline;
        }
      }
      return victim;
    };
  }
  return [](const Request& head, const RequestPool& pool) {
    RequestId victim = kInvalidRequestId;
    // Newest-first scan, keeping the loosest-SLO candidate: the least
    // urgent prefilling request is recomputed first, and among equals the
    // newest loses (it has the least prefill progress to redo).
    for (auto it = pool.active().rbegin(); it != pool.active().rend(); ++it) {
      const Request& req = pool.Get(*it);
      if (req.state != RequestState::kPrefilling || req.committed_len != 0 ||
          req.tpot_slo <= head.tpot_slo) {
        continue;
      }
      if (victim == kInvalidRequestId || req.tpot_slo > pool.Get(victim).tpot_slo) {
        victim = *it;
      }
    }
    return victim;
  };
}

int TickAdmitPhase(SimTime now, RequestPool& pool, ServingContext& ctx, int* evicted,
                   int* paused) {
  if (ctx.pull_arrivals) {
    // Idempotent after the engine's boundary pull (same clock, unchanged
    // queue); makes the phase self-contained for drivers that skip it.
    ctx.pull_arrivals(now);
  }
  const TickPolicy& opts = ctx.tick;
  const PriorityPolicy policy = opts.priority();
  const RequestPool::AdmissionRanker rank = PriorityRanker(policy);
  int admitted = pool.AdmitUpTo(opts.max_active, rank);
  if (opts.max_evictions > 0) {
    const RequestPool::VictimSelector select_victim = PriorityVictimSelector(policy);
    const EvictionStyle style = PriorityEvictionStyle(policy);
    int* displaced = style == EvictionStyle::kPause ? paused : evicted;
    int evictions_left = opts.max_evictions;
    while (evictions_left > 0 && !pool.queued().empty()) {
      int displaced_now = 0;
      const RequestId id = pool.AdmitWithEviction(opts.max_active, evictions_left, &displaced_now,
                                                  rank, select_victim, style);
      evictions_left -= displaced_now;
      if (displaced != nullptr) {
        *displaced += displaced_now;
      }
      if (id == kInvalidRequestId) {
        break;
      }
      ++admitted;
      // The freed headroom may unblock plain admission too.
      admitted += pool.AdmitUpTo(opts.max_active, rank);
    }
  }
  return admitted;
}

int MidTickAdmitPhase(SimTime now, RequestPool& pool, ServingContext& ctx) {
  if (ctx.pull_arrivals) {
    ctx.pull_arrivals(now);
  }
  return pool.AdmitUpTo(ctx.tick.max_active, PriorityRanker(ctx.tick.priority()));
}

int PrefillPhaseBudget(const ServingContext& ctx, int decode_requests, int verified_tokens) {
  // Phase A's target-forward consumption is its batch roots plus every
  // token submitted to the verifier (committed tokens are drawn from the
  // verified ones, so they must not be double-counted). A floor of one
  // burst guarantees queued prompts keep making TTFT progress even when
  // decoding consumed the whole budget.
  const int leftover = ctx.verify_budget - decode_requests - verified_tokens;
  const int floor = ctx.tick.prefill_burst > 0 ? ctx.tick.prefill_burst : kBurst;
  return std::max(leftover, floor);
}

IterationRecord RunBudgetedPrefillPhase(SimTime now, RequestPool& pool, ServingContext& ctx,
                                        int budget, int burst) {
  IterationRecord record;
  if (budget <= 0) {
    return record;
  }
  std::vector<RequestId> prefilling = PrefillingRequests(pool);
  if (prefilling.empty()) {
    return record;
  }
  if (ctx.tick.priority() == PriorityPolicy::kEdf) {
    // EDF spends its prefill budget tightest-deadline-first instead of in
    // admission order; ids break deadline ties (ids are arrival order).
    std::sort(prefilling.begin(), prefilling.end(), [&pool](RequestId a, RequestId b) {
      const SimTime da = NextTokenDeadline(pool.Get(a));
      const SimTime db = NextTokenDeadline(pool.Get(b));
      return da != db ? da < db : a < b;
    });
  }
  const int per_request_cap = burst > 0 ? burst : std::numeric_limits<int>::max();
  struct Chunk {
    RequestId id;
    int tokens;
  };
  std::vector<Chunk> chunks;
  std::vector<RequestId> ids;
  int batch_tokens = 0;
  for (RequestId id : prefilling) {
    if (batch_tokens >= budget) {
      break;
    }
    const Request& req = pool.Get(id);
    const int remaining = req.prompt_len - req.prefill_progress;
    const int take = std::min({remaining, per_request_cap, budget - batch_tokens});
    if (take > 0) {
      chunks.push_back({id, take});
      ids.push_back(id);
      batch_tokens += take;
    }
  }
  if (chunks.empty()) {
    return record;
  }
  const SimTime latency =
      ctx.target_latency->PrefillLatency(batch_tokens, pool.SumContextTokens(ids));
  const SimTime end = now + latency;
  for (const Chunk& c : chunks) {
    pool.AdvancePrefill(c.id, c.tokens);
    record.prefill_tokens += c.tokens;
    Request& req = pool.Get(c.id);
    if (req.PrefillDone()) {
      const Token first =
          DecodeOneToken(*ctx.target, req.stream_seed, req.output, ctx.mode, *ctx.rng);
      pool.CommitToken(c.id, first, end);
      ++record.committed_tokens;
    }
  }
  record.duration = latency;
  record.prefill_time = latency;
  return record;
}

TickResult RunContinuousTick(SimTime now, RequestPool& pool, ServingContext& ctx,
                             const TickPhaseFn& decode_phase) {
  int evicted = 0;
  int paused = 0;
  const int admitted = TickAdmitPhase(now, pool, ctx, &evicted, &paused);

  // Async pipeline: kick the planner off against the phase-A-start
  // snapshot so the mid-tick admission ranking and the prefill chunk
  // packing happen on the CPU while the decode phase "occupies the GPU".
  TickPlanner* planner = ctx.tick.async_planner ? ctx.planner : nullptr;
  if (planner != nullptr) {
    planner->BeginPlan(PredictPlanInput(pool, ctx));
  }

  // Phase A: decode — every running request advances this tick.
  TickResult tick;
  tick.record = decode_phase(now, pool, ctx);
  IterationRecord& rec = tick.record;
  rec.admitted += admitted;
  rec.evicted += evicted;
  rec.paused += paused;
  const SimTime phase_a_end = now + rec.duration;

  // Phases B and C — mid-tick admission (arrivals that landed while
  // phase A occupied the GPU join this very tick's prefill pass) and the
  // burst-capped prefill on the leftover token budget. With the planner
  // on, the precomputed plan is applied when reconciliation proves the
  // phase-A-start prediction still describes the pool (byte-identity by
  // construction); any drift — an unpredicted finish, a mid-tick
  // arrival, a speculative decode — falls back to the serial phases.
  const int budget = PrefillPhaseBudget(ctx, rec.decode_requests, rec.verified_tokens);
  IterationRecord prefill;
  bool plan_applied = false;
  if (planner != nullptr) {
    plan_applied = planner->Reconcile(phase_a_end, pool, ctx, budget, rec.admitted, prefill);
  }
  if (!plan_applied) {
    rec.admitted += MidTickAdmitPhase(phase_a_end, pool, ctx);
    prefill = RunBudgetedPrefillPhase(phase_a_end, pool, ctx, budget, ctx.tick.prefill_burst);
  }
  rec.duration += prefill.duration;
  rec.prefill_time += prefill.prefill_time;
  rec.prefill_tokens += prefill.prefill_tokens;
  rec.committed_tokens += prefill.committed_tokens;
  return tick;
}

TickResult Scheduler::Tick(SimTime now, RequestPool& pool, ServingContext& ctx) {
  if (ctx.tick.continuous) {
    return RunContinuousTick(now, pool, ctx,
                             [this](SimTime t, RequestPool& p, ServingContext& c) {
                               return DecodePhase(t, p, c);
                             });
  }
  // Boundary mode: admission at tick start, then one drain-style
  // iteration — the exact sequence of the historical engine loop.
  TickResult tick;
  tick.record.admitted = TickAdmitPhase(now, pool, ctx, &tick.record.evicted);
  if (!pool.active().empty()) {
    const int admitted = tick.record.admitted;
    const int evicted = tick.record.evicted;
    tick.record = DrainStep(now, pool, ctx);
    tick.record.admitted += admitted;
    tick.record.evicted += evicted;
  }
  return tick;
}

}  // namespace adaserve
