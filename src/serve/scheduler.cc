#include "src/serve/scheduler.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/spec/verifier.h"

namespace adaserve {

std::vector<RequestId> RunningRequests(const RequestPool& pool) {
  std::vector<RequestId> ids;
  ids.reserve(pool.active().size());
  for (RequestId id : pool.active()) {
    if (pool.Get(id).state == RequestState::kRunning) {
      ids.push_back(id);
    }
  }
  return ids;
}

std::vector<RequestId> PrefillingRequests(const RequestPool& pool) {
  std::vector<RequestId> ids;
  ids.reserve(pool.active().size());
  for (RequestId id : pool.active()) {
    if (pool.Get(id).state == RequestState::kPrefilling) {
      ids.push_back(id);
    }
  }
  return ids;
}

bool RunFullPrefillIteration(SimTime now, RequestPool& pool, ServingContext& ctx,
                             int max_prefill_tokens, IterationRecord& record) {
  const std::vector<RequestId> prefilling = PrefillingRequests(pool);
  if (prefilling.empty()) {
    return false;
  }
  // Batch whole prompts FIFO until the token cap; always take at least one
  // prompt so oversized prompts still make progress.
  std::vector<RequestId> batch;
  int batch_tokens = 0;
  for (RequestId id : prefilling) {
    const Request& req = pool.Get(id);
    const int remaining = req.prompt_len - req.prefill_progress;
    if (!batch.empty() && batch_tokens + remaining > max_prefill_tokens) {
      break;
    }
    batch.push_back(id);
    batch_tokens += remaining;
  }
  const long context = pool.SumContextTokens(batch);
  const SimTime latency = ctx.target_latency->PrefillLatency(batch_tokens, context);
  const SimTime end = now + latency;
  for (RequestId id : batch) {
    Request& req = pool.Get(id);
    pool.AdvancePrefill(id, req.prompt_len - req.prefill_progress);
    // Prefill's last forward pass produces the first output token.
    const Token first =
        DecodeOneToken(*ctx.target, req.stream_seed, req.output, ctx.mode, *ctx.rng);
    pool.CommitToken(id, first, end);
  }
  record.duration = latency;
  record.prefill_time = latency;
  record.prefill_tokens = batch_tokens;
  record.committed_tokens = static_cast<int>(batch.size());
  return true;
}

IterationRecord RunDecodeIteration(SimTime now, RequestPool& pool, ServingContext& ctx,
                                   const std::vector<RequestId>& ids) {
  IterationRecord record;
  if (ids.empty()) {
    return record;
  }
  const long context = pool.SumContextTokens(ids);
  const SimTime latency =
      ctx.target_latency->ForwardLatency(static_cast<int>(ids.size()), context,
                                         /*use_cuda_graph=*/true);
  const SimTime end = now + latency;
  for (RequestId id : ids) {
    Request& req = pool.Get(id);
    ADASERVE_CHECK(req.state == RequestState::kRunning) << "decode on non-running " << id;
    if (req.decode_start_time < 0.0) {
      req.decode_start_time = now;
    }
    const Token token =
        DecodeOneToken(*ctx.target, req.stream_seed, req.output, ctx.mode, *ctx.rng);
    pool.CommitToken(id, token, end);
  }
  record.duration = latency;
  record.verify_time = latency;
  record.decode_requests = static_cast<int>(ids.size());
  record.committed_tokens = static_cast<int>(ids.size());
  return record;
}

}  // namespace adaserve
