#include "src/serve/tick_pipeline.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/spec/verifier.h"

namespace adaserve {

namespace {

PlanCandidate MakeCandidate(const Request& req, long kv_held) {
  PlanCandidate cand;
  cand.id = req.id;
  cand.tpot_slo = req.tpot_slo;
  cand.prompt_len = req.prompt_len;
  cand.target_output_len = req.target_output_len;
  cand.prefill_progress = req.prefill_progress;
  cand.committed_len = req.committed_len;
  cand.kv_held = kv_held;
  cand.arrival = req.arrival;
  cand.first_token_time = req.first_token_time;
  return cand;
}

// Pool/policy scalars shared by the forecast and the actual snapshot;
// kv_free / active_count / budget are caller-adjusted afterwards.
TickPlanInput SnapshotBase(const RequestPool& pool, const ServingContext& ctx) {
  TickPlanInput input;
  input.active_count = static_cast<int>(pool.active().size());
  input.kv_free = pool.kv().free_tokens();
  input.kv_block = pool.kv().block_tokens();
  input.max_active = ctx.tick.max_active;
  input.priority = ctx.tick.priority();
  input.burst = ctx.tick.prefill_burst;
  input.queued.reserve(pool.queued().size());
  for (RequestId id : pool.queued()) {
    input.queued.push_back(MakeCandidate(pool.Get(id), pool.kv().HeldBy(id)));
  }
  for (RequestId id : pool.active()) {
    const Request& req = pool.Get(id);
    if (req.state == RequestState::kPrefilling) {
      input.prefilling.push_back(MakeCandidate(req, pool.kv().HeldBy(id)));
    }
  }
  return input;
}

}  // namespace

TickPlanInput SnapshotPlanInput(const RequestPool& pool, const ServingContext& ctx, int budget) {
  TickPlanInput input = SnapshotBase(pool, ctx);
  input.budget = budget;
  return input;
}

TickPlanInput PredictPlanInput(const RequestPool& pool, const ServingContext& ctx) {
  TickPlanInput input = SnapshotBase(pool, ctx);
  // Advance the snapshot by one plain-CB decode iteration: each running
  // request commits one token; the ones reaching their target finish,
  // freeing their slot and their whole KV reservation.
  int running = 0;
  for (RequestId id : pool.active()) {
    const Request& req = pool.Get(id);
    if (req.state != RequestState::kRunning) {
      continue;
    }
    ++running;
    if (req.committed_len + 1 >= req.target_output_len) {
      input.kv_free += pool.kv().HeldBy(id);
      --input.active_count;
    }
  }
  input.budget = PrefillPhaseBudget(ctx, running, /*verified_tokens=*/0);
  return input;
}

TickPlan ComputePlan(const TickPlanInput& input) {
  TickPlan plan;
  // --- mid-tick admission (mirrors RequestPool::AdmitUpTo) ---
  std::vector<PlanCandidate> queued = input.queued;
  std::vector<PlanCandidate> prefill_order = input.prefilling;
  long kv_free = input.kv_free;
  int active = input.active_count;
  const bool fifo = input.priority == PriorityPolicy::kFifo;
  const bool edf = input.priority == PriorityPolicy::kEdf;
  while (!queued.empty() && active < input.max_active) {
    // Stable min under the policy's ranker: only a strictly tighter key
    // (SLO, or next-token deadline under kEdf) displaces the head, so
    // ties keep queue order — same scan as RequestPool::RankedHead under
    // PriorityRanker.
    size_t head = 0;
    if (edf) {
      for (size_t i = 1; i < queued.size(); ++i) {
        if (CandidateDeadline(queued[i]) < CandidateDeadline(queued[head])) {
          head = i;
        }
      }
    } else if (!fifo) {
      for (size_t i = 1; i < queued.size(); ++i) {
        if (queued[i].tpot_slo < queued[head].tpot_slo) {
          head = i;
        }
      }
    }
    const PlanCandidate cand = queued[head];
    // Worst-case footprint, block-rounded, charged as the delta over any
    // reservation the request already holds — KvCache::Reserve semantics.
    const long footprint = cand.prompt_len + cand.target_output_len;
    const long rounded = (footprint + input.kv_block - 1) / input.kv_block * input.kv_block;
    const long delta = rounded - cand.kv_held;
    if (delta > 0) {
      if (delta > kv_free) {
        break;  // Head-of-line KV block: admission stops, no skipping.
      }
      kv_free -= delta;
    }
    queued.erase(queued.begin() + static_cast<long>(head));
    ++active;
    plan.admit.push_back(cand.id);
    if (cand.prefill_progress < cand.prompt_len) {
      prefill_order.push_back(cand);  // active_.push_back order.
    }
  }
  // --- budgeted prefill chunking (mirrors RunBudgetedPrefillPhase) ---
  if (edf) {
    // Mirror the kEdf prefill ordering: tightest deadline first, ids
    // (arrival order) break ties.
    std::sort(prefill_order.begin(), prefill_order.end(),
              [](const PlanCandidate& a, const PlanCandidate& b) {
                const SimTime da = CandidateDeadline(a);
                const SimTime db = CandidateDeadline(b);
                return da != db ? da < db : a.id < b.id;
              });
  }
  const int cap = input.burst > 0 ? input.burst : std::numeric_limits<int>::max();
  for (const PlanCandidate& cand : prefill_order) {
    if (plan.batch_tokens >= input.budget) {
      break;
    }
    const int remaining = cand.prompt_len - cand.prefill_progress;
    const int take = std::min({remaining, cap, input.budget - plan.batch_tokens});
    if (take > 0) {
      plan.chunks.push_back({cand.id, take, cand.prefill_progress + take >= cand.prompt_len});
      plan.batch_tokens += take;
    }
  }
  return plan;
}

IterationRecord ExecutePlannedPrefill(SimTime now, RequestPool& pool, ServingContext& ctx,
                                      const TickPlan& plan) {
  IterationRecord record;
  if (plan.chunks.empty()) {
    return record;
  }
  std::vector<RequestId> ids;
  ids.reserve(plan.chunks.size());
  for (const PlannedChunk& chunk : plan.chunks) {
    ids.push_back(chunk.id);
  }
  const SimTime latency =
      ctx.target_latency->PrefillLatency(plan.batch_tokens, pool.SumContextTokens(ids));
  const SimTime end = now + latency;
  for (const PlannedChunk& chunk : plan.chunks) {
    pool.AdvancePrefill(chunk.id, chunk.tokens);
    record.prefill_tokens += chunk.tokens;
    Request& req = pool.Get(chunk.id);
    if (req.PrefillDone()) {
      const Token first =
          DecodeOneToken(*ctx.target, req.stream_seed, req.output, ctx.mode, *ctx.rng);
      pool.CommitToken(chunk.id, first, end);
      ++record.committed_tokens;
    }
  }
  record.duration = latency;
  record.prefill_time = latency;
  return record;
}

void TickPlanner::BeginPlan(TickPlanInput input) {
  ADASERVE_CHECK(!inflight_.has_value()) << "planner already has a plan in flight";
  predicted_ = std::move(input);
  ++planned_;
  // The worker gets its own copy of the snapshot; the tick thread keeps
  // predicted_ for the reconcile compare. No shared mutable state — the
  // future's result hand-off is the only synchronization.
  inflight_ = workers_.Submit([snapshot = predicted_] { return ComputePlan(snapshot); });
}

bool TickPlanner::Reconcile(SimTime now, RequestPool& pool, ServingContext& ctx, int budget,
                            int& admitted, IterationRecord& prefill) {
  if (!inflight_.has_value()) {
    return false;
  }
  TickPlan plan = inflight_->get();
  inflight_.reset();
  // Pull arrivals exactly as the serial mid-tick admission would; a pull
  // that surfaces anything lands in the actual snapshot's queue and
  // invalidates the plan (and the fallback's re-pull is a no-op).
  if (ctx.pull_arrivals) {
    ctx.pull_arrivals(now);
  }
  const TickPlanInput actual = SnapshotPlanInput(pool, ctx, budget);
  if (!(actual == predicted_)) {
    ++misses_;
    return false;
  }
  ++hits_;
  for (RequestId id : plan.admit) {
    // Targeted admission in plan order: the validated snapshot guarantees
    // the slot and the (delta-charged) reservation both fit.
    const RequestId got = pool.TryAdmitId(id);
    ADASERVE_CHECK(got == id) << "validated plan admission failed for " << id;
  }
  admitted += static_cast<int>(plan.admit.size());
  prefill = ExecutePlannedPrefill(now, pool, ctx, plan);
  return true;
}

}  // namespace adaserve
