// Scheduler interface and shared serving machinery.
//
// Every serving system — AdaServe and all six baselines — implements
// Scheduler::Step: given the current time and the request pool, perform one
// scheduling iteration (admit, prefill, decode/speculate/verify), mutate
// request state through the pool, and report how long the iteration took and
// where the time went. The engine (engine.h) is policy-free: it only injects
// arrivals and advances the clock.
#ifndef ADASERVE_SRC_SERVE_SCHEDULER_H_
#define ADASERVE_SRC_SERVE_SCHEDULER_H_

#include <string_view>
#include <vector>

#include "src/hw/latency_model.h"
#include "src/model/draft_lm.h"
#include "src/model/sampler.h"
#include "src/model/synthetic_lm.h"
#include "src/serve/request_pool.h"

namespace adaserve {

// Shared services handed to schedulers each step. Non-owning.
struct ServingContext {
  const SyntheticLm* target = nullptr;
  const DraftLm* draft = nullptr;
  const LatencyModel* target_latency = nullptr;
  const LatencyModel* draft_latency = nullptr;
  DecodeMode mode = DecodeMode::kStochastic;
  // Verification-side token budget per iteration (the paper's B).
  int verify_budget = 256;
  // Speculator-side per-step token budget (the paper's B2).
  int draft_budget = 256;
  // RNG stream for target sampling / verification.
  Rng* rng = nullptr;
};

// Where one iteration's time went. Speculation/selection/verification map to
// Fig. 15's breakdown; continuous-batching systems only use decode/prefill.
struct IterationRecord {
  SimTime duration = 0.0;
  SimTime spec_time = 0.0;     // draft model decoding (GPU)
  SimTime select_time = 0.0;   // token selection (CPU)
  SimTime verify_time = 0.0;   // target forward: verification or CB decode
  SimTime prefill_time = 0.0;  // portion attributable to standalone prefill
  int prefill_tokens = 0;
  int decode_requests = 0;   // requests that received decode service
  int verified_tokens = 0;   // speculated tokens submitted to the verifier
  int committed_tokens = 0;  // output tokens committed
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string_view name() const = 0;

  // Runs one iteration starting at `now`. Must make progress (positive
  // duration) whenever the pool has admissible or active work.
  virtual IterationRecord Step(SimTime now, RequestPool& pool, ServingContext& ctx) = 0;
};

// --- shared building blocks used by multiple schedulers ---

// Runs a vLLM-style prefill-priority iteration if any admitted request still
// needs prefill: full prompts are batched up to `max_prefill_tokens` and
// processed in one pass; completing requests commit their first output
// token. Returns true (and fills `record`) if a prefill iteration ran.
bool RunFullPrefillIteration(SimTime now, RequestPool& pool, ServingContext& ctx,
                             int max_prefill_tokens, IterationRecord& record);

// Runs one continuous-batching decode iteration over `ids` (all must be in
// kRunning): each request commits exactly one target-sampled token.
IterationRecord RunDecodeIteration(SimTime now, RequestPool& pool, ServingContext& ctx,
                                   const std::vector<RequestId>& ids);

// Ids of active requests in kRunning state.
std::vector<RequestId> RunningRequests(const RequestPool& pool);

// Ids of active requests in kPrefilling state.
std::vector<RequestId> PrefillingRequests(const RequestPool& pool);

}  // namespace adaserve

#endif  // ADASERVE_SRC_SERVE_SCHEDULER_H_
