// Scheduler interface and shared serving machinery.
//
// Every serving system — AdaServe and all six baselines — speaks the
// tick-based continuous-batching protocol: the engine calls
// Scheduler::Tick once per event-loop iteration, and the tick itself
// performs admission, the scheduler's decode/speculate/verify phase, and
// (in tick-native mode) mid-tick admission plus a burst-capped prefill
// phase. Requests therefore join and leave batches mid-flight instead of
// only at drain boundaries; the engine (engine.h) stays policy-free and
// only feeds arrivals and advances the clock.
//
// Schedulers implement two phase hooks rather than a monolithic step:
//   - DrainStep:   the legacy drain-style iteration (boundary mode). The
//                  default-config engine runs exactly this after boundary
//                  admission, byte-identical to the historical loop.
//   - DecodePhase: phase A of a tick-native tick — advance running
//                  requests only; the shared tick machinery then handles
//                  mid-tick admission and budgeted prefill (phase B/C).
#ifndef ADASERVE_SRC_SERVE_SCHEDULER_H_
#define ADASERVE_SRC_SERVE_SCHEDULER_H_

#include <functional>
#include <string_view>
#include <vector>

#include "src/hw/latency_model.h"
#include "src/model/draft_lm.h"
#include "src/model/sampler.h"
#include "src/model/synthetic_lm.h"
#include "src/serve/request_pool.h"

namespace adaserve {

// Default per-request prefill token cap of one tick-native prefill phase
// (the UMA-Serve kBurst limit): one very long prompt cannot consume an
// entire prefill pass, so TTFT of the prompts queued behind it stays
// bounded by ~budget/kBurst peers per tick.
inline constexpr int kBurst = 512;

// Admission-ordering policy of the tick's admission phases (boundary and
// mid-tick). kFifo admits in arrival order — the historical behavior and
// the only order the drain-style boundary mode can express. kSloUrgentFirst
// is the paper's SLO-customized admission: requests from tighter-TPOT-SLO
// categories jump the queue at both admission points, and the
// evict-for-admission phase may recompute-evict a strictly less urgent
// *prefilling* request to make room for an urgent head.
enum class PriorityPolicy {
  kFifo,
  kSloUrgentFirst,
};

// Per-tick policy knobs the engine hands to the scheduler. In boundary
// mode (continuous == false) only max_active matters and ticks reproduce
// the legacy admit-then-drain loop exactly.
struct TickOptions {
  // Upper bound on concurrently admitted requests (vLLM max_num_seqs).
  int max_active = 256;
  // Tick-native continuous batching: admission moves inside the tick
  // (including mid-tick, after the decode phase) and prefill runs as a
  // shared burst-capped phase.
  bool continuous = false;
  // kBurst-style per-request prefill cap of the tick's prefill phase.
  int prefill_burst = kBurst;
  // Continuous mode: max recompute-style evictions per boundary admission
  // phase (0 disables evict-for-admission).
  int max_evictions = 0;
  // Admission ordering of both admission phases, and the victim policy of
  // evict-for-admission. The engine resolves this from EngineConfig /
  // the scheduler's AdmissionPriority() in tick-native mode and forces
  // kFifo in boundary mode (drain-loop byte-identity).
  PriorityPolicy priority = PriorityPolicy::kFifo;
};

// Shared services handed to schedulers each tick. Non-owning.
struct ServingContext {
  const SyntheticLm* target = nullptr;
  const DraftLm* draft = nullptr;
  const LatencyModel* target_latency = nullptr;
  const LatencyModel* draft_latency = nullptr;
  DecodeMode mode = DecodeMode::kStochastic;
  // Verification-side token budget per iteration (the paper's B).
  int verify_budget = 256;
  // Speculator-side per-step token budget (the paper's B2).
  int draft_budget = 256;
  // RNG stream for target sampling / verification.
  Rng* rng = nullptr;
  // Tick policy (engine config projected onto the scheduler).
  TickOptions tick;
  // Engine-provided: makes stream arrivals due by the given time visible
  // in the pool's admission queue and returns how many were pulled. Null
  // when the driver injects arrivals itself; mid-tick admission then only
  // sees what is already queued.
  std::function<int(SimTime)> pull_arrivals;
};

// Where one iteration's time went. Speculation/selection/verification map to
// Fig. 15's breakdown; continuous-batching systems only use decode/prefill.
struct IterationRecord {
  SimTime duration = 0.0;
  SimTime spec_time = 0.0;     // draft model decoding (GPU)
  SimTime select_time = 0.0;   // token selection (CPU)
  SimTime verify_time = 0.0;   // target forward: verification or CB decode
  SimTime prefill_time = 0.0;  // portion attributable to standalone prefill
  int prefill_tokens = 0;
  int decode_requests = 0;   // requests that received decode service
  int verified_tokens = 0;   // speculated tokens submitted to the verifier
  int committed_tokens = 0;  // output tokens committed
  int admitted = 0;          // requests admitted during this tick
  int evicted = 0;           // requests evicted (recompute-style) this tick
};

// Result of one scheduler tick.
struct TickResult {
  IterationRecord record;
  // A tick makes progress iff it consumed simulated time. A no-progress
  // tick tells the engine nothing was admissible: idle until next arrival.
  bool MadeProgress() const { return record.duration > 0.0; }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string_view name() const = 0;

  // Runs one tick starting at `now`: boundary admission, then either the
  // drain-style iteration (boundary mode) or the shared continuous-tick
  // phases around DecodePhase (tick-native mode). Must make progress
  // whenever the pool has admissible or active work. Overridable for
  // schedulers that want to own the whole tick.
  virtual TickResult Tick(SimTime now, RequestPool& pool, ServingContext& ctx);

  // Legacy drain-loop entry point: one drain-style iteration with
  // admission handled by the caller. Kept public for reference drivers
  // (tick_equivalence_test pins Engine ticks against it); the engine
  // itself only calls Tick().
  IterationRecord Step(SimTime now, RequestPool& pool, ServingContext& ctx) {
    return DrainStep(now, pool, ctx);
  }

  // The scheduler's default admission-priority policy for tick-native
  // serving; EngineConfig::admission_priority overrides it and boundary
  // mode ignores it (admission there is always FIFO). Base default: FIFO.
  virtual PriorityPolicy AdmissionPriority() const { return PriorityPolicy::kFifo; }

 protected:
  // Drain-style iteration (admit/prefill/decode in one scheduler-owned
  // pass). Assumes admission already ran and the pool has active work.
  virtual IterationRecord DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) = 0;

  // Phase A of a tick-native tick: advance running requests only (decode /
  // speculate-verify); prefill and admission belong to the shared phases.
  // Must return an empty record when nothing is running.
  virtual IterationRecord DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) = 0;
};

// --- shared building blocks used by multiple schedulers ---

// Runs a vLLM-style prefill-priority iteration if any admitted request still
// needs prefill: full prompts are batched up to `max_prefill_tokens` and
// processed in one pass; completing requests commit their first output
// token. Returns true (and fills `record`) if a prefill iteration ran.
bool RunFullPrefillIteration(SimTime now, RequestPool& pool, ServingContext& ctx,
                             int max_prefill_tokens, IterationRecord& record);

// Runs one continuous-batching decode iteration over `ids` (all must be in
// kRunning): each request commits exactly one target-sampled token.
IterationRecord RunDecodeIteration(SimTime now, RequestPool& pool, ServingContext& ctx,
                                   const std::vector<RequestId>& ids);

// Ids of active requests in kRunning state.
std::vector<RequestId> RunningRequests(const RequestPool& pool);

// Ids of active requests in kPrefilling state.
std::vector<RequestId> PrefillingRequests(const RequestPool& pool);

// --- tick-phase variants of the shared building blocks ---

// Admission ranker of a priority policy: null for kFifo (arrival order),
// tighter-TPOT-SLO-first for kSloUrgentFirst (ties keep arrival order).
RequestPool::AdmissionRanker PriorityRanker(PriorityPolicy policy);

// Evict-for-admission victim selector of a priority policy: null for
// kFifo (newest-admitted zero-output request, any category), SLO-aware
// for kSloUrgentFirst — the head may only evict a *prefilling* request
// whose TPOT SLO is strictly looser than its own, least urgent victims
// first (newest-admitted breaks ties), so urgent work is never recomputed
// to admit more urgent work it cannot beat.
RequestPool::VictimSelector PriorityVictimSelector(PriorityPolicy policy);

// Boundary admission phase: admission in opts.priority order up to the
// slot cap. With opts.max_evictions > 0, a queue head blocked on KV may
// evict victims chosen by the policy (recompute-style) to make room; the
// eviction count is accumulated into *evicted when non-null.
int TickAdmitPhase(RequestPool& pool, const TickOptions& opts, int* evicted = nullptr);

// Mid-tick admission phase: pulls arrivals due by `t` (via
// ctx.pull_arrivals, when set) and admits in ctx.tick.priority order.
// Requests arriving while the decode phase occupied the GPU join this
// tick's prefill phase instead of waiting for the next boundary — the
// admission latency the drain loop could not avoid; under
// kSloUrgentFirst an urgent arrival additionally jumps every queued
// non-urgent request.
int MidTickAdmitPhase(SimTime t, RequestPool& pool, ServingContext& ctx);

// Budgeted prefill phase: one chunked-prefill pass over prefilling
// requests, FIFO by id, spending at most `budget` prompt tokens with at
// most `burst` per request (kBurst cap; <= 0 means uncapped). Prompts that
// complete commit their first output token at the pass's end time. Returns
// an empty record when there is nothing to prefill or no budget.
IterationRecord RunBudgetedPrefillPhase(SimTime now, RequestPool& pool, ServingContext& ctx,
                                        int budget, int burst);

// Scheduler-specific phase-A body used by RunContinuousTick.
using TickPhaseFn = std::function<IterationRecord(SimTime, RequestPool&, ServingContext&)>;

// The shared tick-native tick:
//   boundary admission -> decode phase (every running request advances) ->
//   mid-tick admission at the decode phase's end time -> burst-capped
//   prefill phase on the leftover token budget.
// The phases' times and token counts merge into one IterationRecord.
TickResult RunContinuousTick(SimTime now, RequestPool& pool, ServingContext& ctx,
                             const TickPhaseFn& decode_phase);

}  // namespace adaserve

#endif  // ADASERVE_SRC_SERVE_SCHEDULER_H_
