// Scheduler interface and shared serving machinery.
//
// Every serving system — AdaServe and all six baselines — speaks the
// tick-based continuous-batching protocol: the engine calls
// Scheduler::Tick once per event-loop iteration, and the tick itself
// performs admission, the scheduler's decode/speculate/verify phase, and
// (in tick-native mode) mid-tick admission plus a burst-capped prefill
// phase. Requests therefore join and leave batches mid-flight instead of
// only at drain boundaries; the engine (engine.h) stays policy-free and
// only feeds arrivals and advances the clock.
//
// Schedulers implement two phase hooks rather than a monolithic step:
//   - DrainStep:   the legacy drain-style iteration (boundary mode). The
//                  default-config engine runs exactly this after boundary
//                  admission, byte-identical to the historical loop.
//   - DecodePhase: phase A of a tick-native tick — advance running
//                  requests only; the shared tick machinery then handles
//                  mid-tick admission and budgeted prefill (phase B/C).
#ifndef ADASERVE_SRC_SERVE_SCHEDULER_H_
#define ADASERVE_SRC_SERVE_SCHEDULER_H_

#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "src/hw/latency_model.h"
#include "src/model/draft_lm.h"
#include "src/model/sampler.h"
#include "src/model/synthetic_lm.h"
#include "src/serve/request_pool.h"

namespace adaserve {

class Scheduler;
class TickPlanner;

// Default per-request prefill token cap of one tick-native prefill phase
// (the UMA-Serve kBurst limit): one very long prompt cannot consume an
// entire prefill pass, so TTFT of the prompts queued behind it stays
// bounded by ~budget/kBurst peers per tick.
inline constexpr int kBurst = 512;

// Admission-ordering policy of the tick's admission phases (boundary and
// mid-tick). kFifo admits in arrival order — the historical behavior and
// the only order the drain-style boundary mode can express. kSloUrgentFirst
// is the paper's SLO-customized admission: requests from tighter-TPOT-SLO
// categories jump the queue at both admission points, and the
// evict-for-admission phase may recompute-evict a strictly less urgent
// *prefilling* request to make room for an urgent head. kSloUrgentPause
// ranks identically but resolves KV pressure preemptively: the urgent head
// *pauses* its victim (prefill progress preserved, resume-where-left-off)
// instead of recompute-evicting it — modeling KV swap-out rather than
// recomputation.
enum class PriorityPolicy {
  kFifo,
  kSloUrgentFirst,
  kSloUrgentPause,
  // Earliest-deadline-first: ranks by each request's *next token deadline*
  // (NextTokenDeadline) instead of the static SLO category, so a relaxed
  // request that has fallen behind can outrank a fresh urgent one — the
  // classic real-time answer to the same problem the SLO-aware policies
  // attack with category heuristics.
  kEdf,
};

// The unified tick policy: every tick-shaped serving knob in one struct,
// owned by EngineConfig and handed to the scheduler through ServingContext
// unchanged (Engine::Run resolves it with ResolvedFor instead of
// projecting field by field). Defaults describe the serving default —
// tick-native continuous batching with bounded evict-for-admission.
struct TickPolicy {
  // Upper bound on concurrently admitted requests (vLLM max_num_seqs).
  int max_active = 256;
  // Tick-native continuous batching: admission moves inside the tick
  // (including mid-tick, after the decode phase) and prefill runs as a
  // shared burst-capped phase. false = boundary admission + drain-style
  // iterations, byte-identical to the historical loop.
  bool continuous = true;
  // kBurst-style per-request prefill cap of the tick's prefill phase.
  int prefill_burst = kBurst;
  // Continuous mode: max evictions (recompute- or pause-style, per the
  // priority policy) per boundary admission phase (0 disables
  // evict-for-admission).
  int max_evictions = 4;
  // Admission ordering of both admission phases, and the victim policy of
  // evict-for-admission. Unset defers to the scheduler's own
  // AdmissionPriority() default (ResolvedFor fills it in); boundary mode
  // always resolves to kFifo (drain-loop byte-identity).
  std::optional<PriorityPolicy> admission_priority;
  // Next-event scheduling: when the pool is provably inert, the engine
  // advances the clock straight to the next arrival instead of probing
  // every gap. Byte-identical either way; see engine.h.
  bool event_driven = true;
  // Async tick pipeline: while phase A (decode) occupies the GPU, a
  // planner thread speculatively ranks this tick's mid-tick admission and
  // chunks its prefill budget against the phase-A-start pool snapshot; the
  // tick reconciles at phase-A end and falls back to the serial phases on
  // any drift, so metrics stay byte-identical to async_planner = false.
  bool async_planner = false;

  // The policy both admission phases actually rank by (kFifo until
  // resolved or explicitly set).
  PriorityPolicy priority() const {
    return admission_priority.value_or(PriorityPolicy::kFifo);
  }

  // The policy the engine serves: tick-native mode fills an unset
  // admission_priority from the scheduler's default; boundary mode
  // neutralizes every tick-native knob (FIFO, no eviction, no planner) so
  // `continuous = false` alone still means "the historical engine".
  TickPolicy ResolvedFor(const Scheduler& scheduler) const;

  // Named presets, mirrored by the EngineConfig-level
  // ContinuousTickConfig()/BoundaryTickConfig()/AsyncTickConfig().
  static TickPolicy Continuous() { return TickPolicy{}; }
  static TickPolicy Boundary() {
    TickPolicy policy;
    policy.continuous = false;
    policy.max_evictions = 0;
    policy.admission_priority = PriorityPolicy::kFifo;
    return policy;
  }
  static TickPolicy Async() {
    TickPolicy policy;
    policy.async_planner = true;
    return policy;
  }
};

// Shared services handed to schedulers each tick. Non-owning.
struct ServingContext {
  const SyntheticLm* target = nullptr;
  const DraftLm* draft = nullptr;
  const LatencyModel* target_latency = nullptr;
  const LatencyModel* draft_latency = nullptr;
  DecodeMode mode = DecodeMode::kStochastic;
  // Verification-side token budget per iteration (the paper's B).
  int verify_budget = 256;
  // Speculator-side per-step token budget (the paper's B2).
  int draft_budget = 256;
  // RNG stream for target sampling / verification.
  Rng* rng = nullptr;
  // Tick policy (EngineConfig::tick, resolved via TickPolicy::ResolvedFor).
  TickPolicy tick;
  // Engine-provided: makes stream arrivals due by the given time visible
  // in the pool's admission queue and returns how many were pulled. Null
  // when the driver injects arrivals itself; mid-tick admission then only
  // sees what is already queued.
  std::function<int(SimTime)> pull_arrivals;
  // Async tick pipeline stage (tick_pipeline.h); null runs the serial
  // phases. Owned by the engine, one per run.
  TickPlanner* planner = nullptr;
};

// Where one iteration's time went. Speculation/selection/verification map to
// Fig. 15's breakdown; continuous-batching systems only use decode/prefill.
struct IterationRecord {
  SimTime duration = 0.0;
  SimTime spec_time = 0.0;     // draft model decoding (GPU)
  SimTime select_time = 0.0;   // token selection (CPU)
  SimTime verify_time = 0.0;   // target forward: verification or CB decode
  SimTime prefill_time = 0.0;  // portion attributable to standalone prefill
  int prefill_tokens = 0;
  int decode_requests = 0;   // requests that received decode service
  int verified_tokens = 0;   // speculated tokens submitted to the verifier
  int committed_tokens = 0;  // output tokens committed
  int admitted = 0;          // requests admitted during this tick
  int evicted = 0;           // requests evicted (recompute-style) this tick
  int paused = 0;            // requests paused (progress-preserving) this tick
  int rejected = 0;          // requests rejected by admission control this tick
  int degraded = 0;          // requests SLO-degraded by admission control this tick
};

// Result of one scheduler tick.
struct TickResult {
  IterationRecord record;
  // A tick makes progress iff it consumed simulated time. A no-progress
  // tick tells the engine nothing was admissible: idle until next arrival.
  bool MadeProgress() const { return record.duration > 0.0; }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string_view name() const = 0;

  // Runs one tick starting at `now`: boundary admission, then either the
  // drain-style iteration (boundary mode) or the shared continuous-tick
  // phases around DecodePhase (tick-native mode). Must make progress
  // whenever the pool has admissible or active work. Overridable for
  // schedulers that want to own the whole tick.
  virtual TickResult Tick(SimTime now, RequestPool& pool, ServingContext& ctx);

  // Legacy drain-loop entry point: one drain-style iteration with
  // admission handled by the caller. Kept public for reference drivers
  // (tick_equivalence_test pins Engine ticks against it); the engine
  // itself only calls Tick().
  IterationRecord Step(SimTime now, RequestPool& pool, ServingContext& ctx) {
    return DrainStep(now, pool, ctx);
  }

  // The scheduler's default admission-priority policy for tick-native
  // serving; TickPolicy::admission_priority overrides it and boundary
  // mode ignores it (admission there is always FIFO). Base default: FIFO.
  virtual PriorityPolicy AdmissionPriority() const { return PriorityPolicy::kFifo; }

 protected:
  // Drain-style iteration (admit/prefill/decode in one scheduler-owned
  // pass). Assumes admission already ran and the pool has active work.
  virtual IterationRecord DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) = 0;

  // Phase A of a tick-native tick: advance running requests only (decode /
  // speculate-verify); prefill and admission belong to the shared phases.
  // Must return an empty record when nothing is running.
  virtual IterationRecord DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) = 0;
};

// --- shared building blocks used by multiple schedulers ---

// The deadline by which a request's next output token must commit to keep
// its TPOT SLO: first_token_time + committed_len * tpot_slo once decoding
// has started, arrival + tpot_slo before the first token exists (the first
// token's deadline proxy — TTFT is not the gated metric, but a request
// that has not even produced token one is at least this urgent). This is
// the key every kEdf ranking, victim selection, and ordering decision uses.
SimTime NextTokenDeadline(const Request& req);

// Runs a vLLM-style prefill-priority iteration if any admitted request still
// needs prefill: full prompts are batched up to `max_prefill_tokens` and
// processed in one pass; completing requests commit their first output
// token. Returns true (and fills `record`) if a prefill iteration ran.
bool RunFullPrefillIteration(SimTime now, RequestPool& pool, ServingContext& ctx,
                             int max_prefill_tokens, IterationRecord& record);

// Runs one continuous-batching decode iteration over `ids` (all must be in
// kRunning): each request commits exactly one target-sampled token.
IterationRecord RunDecodeIteration(SimTime now, RequestPool& pool, ServingContext& ctx,
                                   const std::vector<RequestId>& ids);

// Ids of active requests in kRunning state.
std::vector<RequestId> RunningRequests(const RequestPool& pool);

// Ids of active requests in kPrefilling state.
std::vector<RequestId> PrefillingRequests(const RequestPool& pool);

// --- tick-phase variants of the shared building blocks ---

// Admission ranker of a priority policy: null for kFifo (arrival order),
// tighter-TPOT-SLO-first for the SLO-aware policies (ties keep arrival
// order).
RequestPool::AdmissionRanker PriorityRanker(PriorityPolicy policy);

// Evict-for-admission victim selector of a priority policy: null for
// kFifo (newest-admitted zero-output request, any category), SLO-aware
// for kSloUrgentFirst/kSloUrgentPause — the head may only displace a
// *prefilling* request whose TPOT SLO is strictly looser than its own,
// least urgent victims first (newest-admitted breaks ties), so urgent
// work is never displaced to admit more urgent work it cannot beat.
RequestPool::VictimSelector PriorityVictimSelector(PriorityPolicy policy);

// How an SLO-aware priority policy resolves KV pressure: kSloUrgentPause
// pauses its victims (progress preserved), everything else recomputes.
EvictionStyle PriorityEvictionStyle(PriorityPolicy policy);

// Boundary admission phase: pulls arrivals due by `now` (via
// ctx.pull_arrivals, when set — idempotent after the engine's own pull)
// and admits in ctx.tick.priority() order up to the slot cap. With
// ctx.tick.max_evictions > 0, a queue head blocked on KV may displace
// victims chosen by the policy — recompute-evicting under
// kSloUrgentFirst/kFifo, pausing under kSloUrgentPause; the counts are
// accumulated into *evicted / *paused when non-null.
int TickAdmitPhase(SimTime now, RequestPool& pool, ServingContext& ctx, int* evicted = nullptr,
                   int* paused = nullptr);

// Mid-tick admission phase: pulls arrivals due by `now` (via
// ctx.pull_arrivals, when set) and admits in ctx.tick.priority() order.
// Requests arriving while the decode phase occupied the GPU join this
// tick's prefill phase instead of waiting for the next boundary — the
// admission latency the drain loop could not avoid; under the SLO-aware
// policies an urgent arrival additionally jumps every queued non-urgent
// request. Same (now, pool, ctx) shape as TickAdmitPhase so the planner
// stage can call either uniformly.
int MidTickAdmitPhase(SimTime now, RequestPool& pool, ServingContext& ctx);

// Token budget of the tick's prefill phase, given what phase A consumed:
// the leftover verification budget, floored at one prefill burst so
// queued prompts keep making TTFT progress even when decode consumed the
// whole budget. Shared by the serial tick and the async planner's budget
// prediction.
int PrefillPhaseBudget(const ServingContext& ctx, int decode_requests, int verified_tokens);

// Budgeted prefill phase: one chunked-prefill pass over prefilling
// requests, FIFO by id, spending at most `budget` prompt tokens with at
// most `burst` per request (kBurst cap; <= 0 means uncapped). Prompts that
// complete commit their first output token at the pass's end time. Returns
// an empty record when there is nothing to prefill or no budget.
IterationRecord RunBudgetedPrefillPhase(SimTime now, RequestPool& pool, ServingContext& ctx,
                                        int budget, int burst);

// Scheduler-specific phase-A body used by RunContinuousTick.
using TickPhaseFn = std::function<IterationRecord(SimTime, RequestPool&, ServingContext&)>;

// The shared tick-native tick:
//   boundary admission -> decode phase (every running request advances) ->
//   mid-tick admission at the decode phase's end time -> burst-capped
//   prefill phase on the leftover token budget.
// The phases' times and token counts merge into one IterationRecord.
TickResult RunContinuousTick(SimTime now, RequestPool& pool, ServingContext& ctx,
                             const TickPhaseFn& decode_phase);

}  // namespace adaserve

#endif  // ADASERVE_SRC_SERVE_SCHEDULER_H_
