// End-of-run metrics: SLO attainment, goodput, TPOT distributions,
// speculation acceptance, and the latency breakdown (§6.1 Metrics).
#ifndef ADASERVE_SRC_SERVE_METRICS_H_
#define ADASERVE_SRC_SERVE_METRICS_H_

#include <array>
#include <deque>
#include <span>

#include "src/common/stats.h"
#include "src/serve/scheduler.h"
#include "src/workload/categories.h"
#include "src/workload/request.h"

namespace adaserve {

struct CategoryMetrics {
  int finished = 0;
  int attained = 0;
  long output_tokens = 0;
  long attained_tokens = 0;
  // Per-request average TPOT, milliseconds.
  Samples tpot_ms;
  // Per-request time-to-first-token (arrival to first output token), ms.
  // Not part of the paper's SLO definition, but the right lens on queueing
  // delay under overload.
  Samples ttft_ms;

  double AttainmentPct() const {
    return finished == 0 ? 100.0 : 100.0 * attained / static_cast<double>(finished);
  }
};

struct Metrics {
  std::array<CategoryMetrics, kNumCategories> per_category;
  int finished = 0;
  int attained = 0;
  // End-to-end wall time of the run (first arrival to last completion).
  SimTime makespan = 0.0;
  // Mean accepted speculated tokens per verification per request, averaged
  // over requests that underwent speculative decoding (Fig. 12).
  double mean_accepted = 0.0;
  // Requests that underwent speculative decoding — the weight of
  // mean_accepted, kept so multi-replica merges can re-average it.
  int spec_requests = 0;

  // Latency breakdown sums across all iterations (Fig. 15).
  SimTime spec_time = 0.0;
  SimTime select_time = 0.0;
  SimTime verify_time = 0.0;
  SimTime prefill_time = 0.0;
  SimTime total_time = 0.0;

  // Tick-protocol counters: admissions, recompute-style evictions, and
  // progress-preserving pauses (kSloUrgentPause preemptive eviction)
  // summed over all ticks. In boundary mode evictions and pauses are
  // always 0.
  long admissions = 0;
  long evictions = 0;
  long pauses = 0;
  // Admission-control counters: requests refused outright (kRejected, no
  // service) and requests accepted with a loosened TPOT SLO. Zero for
  // every system without an admission controller.
  long rejections = 0;
  long degraded = 0;

  double AttainmentPct() const {
    return finished == 0 ? 100.0 : 100.0 * attained / static_cast<double>(finished);
  }
  double ViolationPct() const { return 100.0 - AttainmentPct(); }
  // Output tokens of SLO-attaining requests per second (goodput).
  double GoodputTps() const;
  // All output tokens per second.
  double ThroughputTps() const;

  long attained_tokens() const;
  long output_tokens() const;
};

// Incremental metrics accumulation. The streaming engine feeds finished
// requests as they retire and iteration records as they complete, so
// metrics for a million-request run never need the full trace in memory.
// Feeding the same requests/iterations in the same order as the batch
// ComputeMetrics (requests in id order, iterations in execution order)
// produces bit-identical results — both paths share this accumulator.
class MetricsAccumulator {
 public:
  // `req` must be finished or rejected. Call in a deterministic order (the
  // engine uses id order) — floating-point accumulation is order-sensitive.
  // Rejected requests are ignored (they received no service; the tick
  // counters carry them into Metrics::rejections).
  void AddRequest(const Request& req);

  void AddIteration(const IterationRecord& rec);

  // Snapshot of the accumulated metrics with `makespan` applied. Callable
  // once at end of run (or repeatedly; the accumulator is not consumed).
  Metrics Finalize(SimTime makespan) const;

 private:
  Metrics m_;
  double accepted_sum_ = 0.0;
  int spec_requests_ = 0;
};

// Computes metrics over finished requests and the iteration log.
Metrics ComputeMetrics(std::span<const Request> requests,
                       std::span<const IterationRecord> iterations, SimTime makespan);

// Deque overload (the request pool's resident storage).
Metrics ComputeMetrics(const std::deque<Request>& requests,
                       std::span<const IterationRecord> iterations, SimTime makespan);

}  // namespace adaserve

#endif  // ADASERVE_SRC_SERVE_METRICS_H_
