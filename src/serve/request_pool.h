// Request pool: the request manager's view of in-flight work (Fig. 6).
//
// Requests move kQueued -> kPrefilling -> kRunning -> kFinished. The pool
// owns request state; schedulers mutate it through the pool so that state
// transitions stay consistent with KV accounting.
#ifndef ADASERVE_SRC_SERVE_REQUEST_POOL_H_
#define ADASERVE_SRC_SERVE_REQUEST_POOL_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "src/serve/kv_cache.h"
#include "src/workload/request.h"

namespace adaserve {

class RequestPool {
 public:
  explicit RequestPool(KvCache* kv);

  // Adds an arriving request to the back of the admission queue.
  void AddArrival(const Request& request);

  // Ids awaiting admission, FIFO order.
  const std::deque<RequestId>& queued() const { return queued_; }
  // Ids admitted and not finished (prefilling or running).
  const std::vector<RequestId>& active() const { return active_; }

  bool HasWork() const { return !queued_.empty() || !active_.empty(); }
  size_t finished_count() const { return finished_count_; }

  Request& Get(RequestId id);
  const Request& Get(RequestId id) const;

  // Admits the front queued request if its worst-case KV footprint fits and
  // the active count is below `max_active`. Returns the admitted id or
  // kInvalidRequestId.
  RequestId TryAdmit(int max_active);

  // Admits FIFO until blocked; returns number admitted.
  int AdmitUpTo(int max_active);

  // Records `chunk` prompt tokens prefilled at time `now`. When the prompt
  // completes, the request transitions to kRunning; the caller then commits
  // the first output token.
  void AdvancePrefill(RequestId id, int chunk);

  // Commits one output token at `now`. Handles first-token bookkeeping and,
  // when the output reaches its target length, finishes the request and
  // releases its KV.
  void CommitToken(RequestId id, Token token, SimTime now);

  // Deactivates a running/prefilling request (FastServe/priority
  // preemption). KV stays resident; the request returns to the front of the
  // admission queue and resumes without re-prefilling.
  void Preempt(RequestId id);

  // Sum of context (KV) tokens across the given requests — the attention
  // read volume of one iteration.
  long SumContextTokens(const std::vector<RequestId>& ids) const;

  // All requests (for metrics after the run).
  const std::vector<Request>& requests() const { return requests_; }

 private:
  void Finish(RequestId id, SimTime now);

  KvCache* kv_;
  std::vector<Request> requests_;
  std::deque<RequestId> queued_;
  std::vector<RequestId> active_;
  size_t finished_count_ = 0;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_SERVE_REQUEST_POOL_H_
