// Request pool: the request manager's view of in-flight work (Fig. 6).
//
// Requests move kQueued -> kPrefilling -> kRunning -> kFinished. The pool
// owns request state; schedulers mutate it through the pool so that state
// transitions stay consistent with KV accounting.
//
// Storage is a deque indexed by (id - retired prefix): streaming runs
// retire finished requests from the front in id order, so resident memory
// tracks the in-flight window instead of the whole trace.
#ifndef ADASERVE_SRC_SERVE_REQUEST_POOL_H_
#define ADASERVE_SRC_SERVE_REQUEST_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/arena.h"
#include "src/serve/kv_cache.h"
#include "src/workload/request.h"

namespace adaserve {

// How an eviction-for-admission victim is displaced. kRecompute releases
// its KV and resets prefill progress (the historical style: prompt work is
// redone from scratch). kPause releases the KV but keeps the prefill
// progress — modeling swap-out to host memory — so the victim resumes
// where it left off when re-admitted.
enum class EvictionStyle {
  kRecompute,
  kPause,
};

class RequestPool {
 public:
  // Admission-order ranker: returns true when `a` should be admitted
  // before `b`. Selection is stable — ties keep queue (arrival) order —
  // and a null ranker means plain FIFO, the historical behavior.
  using AdmissionRanker = std::function<bool(const Request&, const Request&)>;

  // Picks the next eviction victim to make room for `head` from the
  // pool's active requests, or kInvalidRequestId when nothing (more)
  // should be evicted. Implementations must only return requests with no
  // committed output (Evict checks); a null selector falls back to the
  // newest-admitted zero-output request.
  using VictimSelector = std::function<RequestId(const Request& head, const RequestPool&)>;

  explicit RequestPool(KvCache* kv);

  // Adds an arriving request to the back of the admission queue. Ids must
  // be dense and sequential across the run (including retired requests).
  void AddArrival(const Request& request);

  // Ids awaiting admission, FIFO order.
  const std::deque<RequestId>& queued() const { return queued_; }
  // Ids admitted and not finished (prefilling or running).
  const std::vector<RequestId>& active() const { return active_; }

  bool HasWork() const { return !queued_.empty() || !active_.empty(); }
  size_t finished_count() const { return finished_count_; }

  Request& Get(RequestId id);
  const Request& Get(RequestId id) const;

  // Admits the head queued request — the queue front, or the best-ranked
  // queued request under `rank` — if its worst-case KV footprint fits and
  // the active count is below `max_active`. Head-of-line semantics are
  // preserved under ranking: when the ranked head is blocked on KV,
  // admission stops rather than skipping to a worse-ranked request.
  // Returns the admitted id or kInvalidRequestId.
  RequestId TryAdmit(int max_active, const AdmissionRanker& rank = nullptr);

  // Admits (FIFO or ranked) until blocked; returns number admitted.
  int AdmitUpTo(int max_active, const AdmissionRanker& rank = nullptr);

  // Admission under KV pressure (the boundary admission phase of a
  // tick-native tick uses this): tries to admit the head (queue front or
  // ranked-best), and when it is blocked on KV alone, evicts victims
  // chosen by `select_victim` — newest-admitted zero-output requests when
  // null — recompute-style (KV released, prefill progress reset) until
  // the head fits, at most `max_evictions` of them. Evicted requests
  // re-enter the queue immediately behind the head in reverse eviction
  // order, so they are retried before older queued work: with the null
  // (newest-first) selector that is their original arrival order, and
  // with the SLO-aware selector (loosest-SLO-first eviction)
  // tighter-SLO victims queue first; equal-rank victims always keep
  // arrival order. `*evicted` (when non-null) is incremented per
  // eviction. Returns the admitted id or kInvalidRequestId (evictions
  // already performed are kept either way). `style` picks how victims are
  // displaced: kRecompute (Evict) or kPause (Pause, progress-preserving);
  // the one counter covers both since a call uses one style throughout.
  RequestId AdmitWithEviction(int max_active, int max_evictions, int* evicted = nullptr,
                              const AdmissionRanker& rank = nullptr,
                              const VictimSelector& select_victim = nullptr,
                              EvictionStyle style = EvictionStyle::kRecompute);

  // Eviction hook (recompute-style): releases the request's KV, resets
  // its prefill progress, and returns it to the front of the admission
  // queue, so a scheduler can drop a request from the batch mid-flight.
  // Only requests with no committed output are evictable — their
  // recompute cost is prompt work alone, so no generated tokens are ever
  // discarded.
  void Evict(RequestId id);

  // Preemptive (pause-style) eviction: releases the request's KV like
  // Evict but keeps its prefill progress and marks it kPaused — swap-out
  // semantics. The request waits at the front of the admission queue and,
  // on re-admission, re-reserves its worst-case footprint and resumes
  // prefill where it stopped, so no prompt (or output) work is ever
  // redone. Only zero-output requests are pausable, same as Evict.
  void Pause(RequestId id);

  // Records `chunk` prompt tokens prefilled at time `now`. When the prompt
  // completes, the request transitions to kRunning; the caller then commits
  // the first output token.
  void AdvancePrefill(RequestId id, int chunk);

  // Commits one output token at `now`. Handles first-token bookkeeping and,
  // when the output reaches its target length, finishes the request and
  // releases its KV.
  void CommitToken(RequestId id, Token token, SimTime now);

  // Deactivates a running/prefilling request (FastServe/priority
  // preemption). KV stays resident; the request returns to the front of the
  // admission queue and resumes without re-prefilling.
  void Preempt(RequestId id);

  // Admission-control rejection: removes a *queued* request from the
  // admission queue and marks it kRejected (terminal, finish_time = now,
  // no KV, no service). Rejected requests retire like finished ones but
  // are excluded from attainment/throughput accounting.
  void Reject(RequestId id, SimTime now);

  // Targeted admission: admits the specific queued request `id` (wherever
  // it sits in the queue) if its worst-case footprint fits — no slot
  // check; callers guarantee a free slot. The async tick planner applies
  // a validated admission plan through this, preserving the plan's
  // ranked order without re-running the ranker scan. Returns `id` on
  // success, kInvalidRequestId if it is not queued or does not fit.
  RequestId TryAdmitId(RequestId id);

  // KV ledger backing this pool (read-only: the async planner snapshots
  // free space and block size from it).
  const KvCache& kv() const { return *kv_; }

  // Sum of context (KV) tokens across the given requests — the attention
  // read volume of one iteration.
  long SumContextTokens(const std::vector<RequestId>& ids) const;

  // All resident requests in id order (for metrics after the run). In
  // streaming runs retired requests are no longer present.
  const std::deque<Request>& requests() const { return requests_; }

  // Requests currently held in memory (queued + active + finished-but-not-
  // yet-retired). The engine tracks the peak of this to prove O(active)
  // residency for streaming runs.
  size_t resident_count() const { return requests_.size(); }
  // Requests retired from the front so far.
  size_t retired_count() const { return static_cast<size_t>(base_id_); }

  // When enabled, a finished request's token payload (output, token_times)
  // is released immediately at finish; only metrics-relevant scalars
  // remain. The payload buffers are not freed but parked in a VectorPool
  // and handed to later arrivals, so steady-state streaming serving
  // commits tokens into recycled capacity with zero heap allocation.
  void set_release_payload_on_finish(bool on) { release_payload_on_finish_ = on; }

  // Arrivals whose payload vectors reused capacity recycled from a
  // finished request (diagnostics; proves the zero-allocation fixed
  // point in tests and benches).
  size_t payload_reuses() const { return token_pool_.reuses(); }

  // Pops the finished prefix of the id window, invoking `sink` on each
  // popped request in id order. Call between scheduler iterations (never
  // mid-step: schedulers may still inspect requests finished this step).
  // Returns the number retired.
  size_t RetireFinishedPrefix(const std::function<void(const Request&)>& sink);

 private:
  // Queue position of the next request to admit: the front, or the stable
  // minimum under `rank`. Requires a non-empty queue.
  std::deque<RequestId>::iterator RankedHead(const AdmissionRanker& rank);

  // Admits the queued request at `head` if its worst-case KV footprint
  // fits (no slot check — callers guarantee a free slot). On KV failure
  // the queue is left untouched.
  RequestId TryAdmitAt(std::deque<RequestId>::iterator head);

  void Finish(RequestId id, SimTime now);

  KvCache* kv_;
  std::deque<Request> requests_;
  // Id of requests_.front(); ids below it have been retired.
  RequestId base_id_ = 0;
  std::deque<RequestId> queued_;
  std::vector<RequestId> active_;
  size_t finished_count_ = 0;
  bool release_payload_on_finish_ = false;
  // Recycled payload capacity: finished requests' token/timestamp buffers
  // are parked here and reused by later arrivals.
  VectorPool<Token> token_pool_;
  VectorPool<SimTime> time_pool_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_SERVE_REQUEST_POOL_H_
