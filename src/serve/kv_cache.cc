#include "src/serve/kv_cache.h"

#include "src/common/logging.h"

namespace adaserve {

KvCache::KvCache(double capacity_bytes, double bytes_per_token, int block_tokens)
    : block_tokens_(block_tokens) {
  ADASERVE_CHECK(capacity_bytes > 0.0) << "no KV capacity";
  ADASERVE_CHECK(bytes_per_token > 0.0) << "bad KV bytes per token";
  ADASERVE_CHECK(block_tokens_ > 0) << "bad block size";
  capacity_tokens_ = static_cast<long>(capacity_bytes / bytes_per_token);
  ADASERVE_CHECK(capacity_tokens_ >= block_tokens_) << "KV cache smaller than one block";
}

long KvCache::RoundToBlocks(long tokens) const {
  return (tokens + block_tokens_ - 1) / block_tokens_ * block_tokens_;
}

bool KvCache::CanReserve(long tokens) const { return RoundToBlocks(tokens) <= free_tokens(); }

bool KvCache::Reserve(RequestId id, long tokens) {
  const long rounded = RoundToBlocks(tokens);
  auto it = held_.find(id);
  const long current = it == held_.end() ? 0 : it->second;
  const long delta = rounded - current;
  if (delta <= 0) {
    return true;  // Already holding at least this much.
  }
  if (delta > free_tokens()) {
    return false;
  }
  used_tokens_ += delta;
  held_[id] = rounded;
  return true;
}

void KvCache::Release(RequestId id) {
  auto it = held_.find(id);
  if (it == held_.end()) {
    return;
  }
  used_tokens_ -= it->second;
  ADASERVE_CHECK(used_tokens_ >= 0) << "KV accounting underflow";
  held_.erase(it);
}

long KvCache::HeldBy(RequestId id) const {
  auto it = held_.find(id);
  return it == held_.end() ? 0 : it->second;
}

}  // namespace adaserve
