#include "src/serve/metrics.h"

#include "src/common/logging.h"
#include "src/common/types.h"

namespace adaserve {

double Metrics::GoodputTps() const {
  if (makespan <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(attained_tokens()) / makespan;
}

double Metrics::ThroughputTps() const {
  if (makespan <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(output_tokens()) / makespan;
}

long Metrics::attained_tokens() const {
  long sum = 0;
  for (const auto& cat : per_category) {
    sum += cat.attained_tokens;
  }
  return sum;
}

long Metrics::output_tokens() const {
  long sum = 0;
  for (const auto& cat : per_category) {
    sum += cat.output_tokens;
  }
  return sum;
}

void MetricsAccumulator::AddRequest(const Request& req) {
  if (req.state == RequestState::kRejected) {
    return;  // No service rendered; counted via IterationRecord::rejected.
  }
  ADASERVE_CHECK(req.state == RequestState::kFinished)
      << "metrics over unfinished request " << req.id;
  ADASERVE_CHECK(req.category >= 0 && req.category < kNumCategories)
      << "bad category " << req.category;
  CategoryMetrics& cat = m_.per_category[static_cast<size_t>(req.category)];
  ++cat.finished;
  ++m_.finished;
  cat.output_tokens += req.output_len();
  cat.tpot_ms.Add(ToMs(req.AvgTpot()));
  cat.ttft_ms.Add(ToMs(req.first_token_time - req.arrival));
  if (req.Attained()) {
    ++cat.attained;
    ++m_.attained;
    cat.attained_tokens += req.output_len();
  }
  if (req.verifications > 0) {
    accepted_sum_ += req.MeanAccepted();
    ++spec_requests_;
  }
}

void MetricsAccumulator::AddIteration(const IterationRecord& rec) {
  m_.spec_time += rec.spec_time;
  m_.select_time += rec.select_time;
  m_.verify_time += rec.verify_time;
  m_.prefill_time += rec.prefill_time;
  m_.total_time += rec.duration;
  m_.admissions += rec.admitted;
  m_.evictions += rec.evicted;
  m_.pauses += rec.paused;
  m_.rejections += rec.rejected;
  m_.degraded += rec.degraded;
}

Metrics MetricsAccumulator::Finalize(SimTime makespan) const {
  Metrics m = m_;
  m.makespan = makespan;
  m.spec_requests = spec_requests_;
  if (spec_requests_ > 0) {
    m.mean_accepted = accepted_sum_ / spec_requests_;
  }
  // Pre-sort the per-category sample sets on the finalized snapshot:
  // percentile queries on the returned Metrics then share one cached sort
  // and — because const Percentile never writes — are safe from any
  // number of threads at once.
  for (CategoryMetrics& cat : m.per_category) {
    cat.tpot_ms.MaterializeSorted();
    cat.ttft_ms.MaterializeSorted();
  }
  return m;
}

namespace {

template <typename RequestContainer>
Metrics ComputeMetricsImpl(const RequestContainer& requests,
                           std::span<const IterationRecord> iterations, SimTime makespan) {
  MetricsAccumulator acc;
  for (const Request& req : requests) {
    acc.AddRequest(req);
  }
  for (const IterationRecord& rec : iterations) {
    acc.AddIteration(rec);
  }
  return acc.Finalize(makespan);
}

}  // namespace

Metrics ComputeMetrics(std::span<const Request> requests,
                       std::span<const IterationRecord> iterations, SimTime makespan) {
  return ComputeMetricsImpl(requests, iterations, makespan);
}

Metrics ComputeMetrics(const std::deque<Request>& requests,
                       std::span<const IterationRecord> iterations, SimTime makespan) {
  return ComputeMetricsImpl(requests, iterations, makespan);
}

}  // namespace adaserve
