#include "src/serve/metrics.h"

#include "src/common/logging.h"
#include "src/common/types.h"

namespace adaserve {

double Metrics::GoodputTps() const {
  if (makespan <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(attained_tokens()) / makespan;
}

double Metrics::ThroughputTps() const {
  if (makespan <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(output_tokens()) / makespan;
}

long Metrics::attained_tokens() const {
  long sum = 0;
  for (const auto& cat : per_category) {
    sum += cat.attained_tokens;
  }
  return sum;
}

long Metrics::output_tokens() const {
  long sum = 0;
  for (const auto& cat : per_category) {
    sum += cat.output_tokens;
  }
  return sum;
}

Metrics ComputeMetrics(std::span<const Request> requests,
                       std::span<const IterationRecord> iterations, SimTime makespan) {
  Metrics m;
  m.makespan = makespan;
  double accepted_sum = 0.0;
  int spec_requests = 0;
  for (const Request& req : requests) {
    ADASERVE_CHECK(req.state == RequestState::kFinished)
        << "metrics over unfinished request " << req.id;
    ADASERVE_CHECK(req.category >= 0 && req.category < kNumCategories)
        << "bad category " << req.category;
    CategoryMetrics& cat = m.per_category[static_cast<size_t>(req.category)];
    ++cat.finished;
    ++m.finished;
    cat.output_tokens += req.output_len();
    cat.tpot_ms.Add(ToMs(req.AvgTpot()));
    cat.ttft_ms.Add(ToMs(req.first_token_time - req.arrival));
    if (req.Attained()) {
      ++cat.attained;
      ++m.attained;
      cat.attained_tokens += req.output_len();
    }
    if (req.verifications > 0) {
      accepted_sum += req.MeanAccepted();
      ++spec_requests;
    }
  }
  if (spec_requests > 0) {
    m.mean_accepted = accepted_sum / spec_requests;
  }
  for (const IterationRecord& rec : iterations) {
    m.spec_time += rec.spec_time;
    m.select_time += rec.select_time;
    m.verify_time += rec.verify_time;
    m.prefill_time += rec.prefill_time;
    m.total_time += rec.duration;
  }
  return m;
}

}  // namespace adaserve
