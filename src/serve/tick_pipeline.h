// Async tick pipeline: the planner stage of a tick-native tick.
//
// While phase A (decode) "occupies the GPU" per the latency model, the
// tick's remaining CPU work — ranking mid-tick admission candidates and
// packing the prefill phase's chunk budget — is computed on a planner
// thread against a snapshot of the pool taken at phase-A start. At
// phase-A end the tick *reconciles*: it re-snapshots the actual pool and
// applies the precomputed plan only when the prediction still describes
// reality exactly; any drift (an unpredicted finish, a mid-tick arrival,
// a speculative decode committing more than one token) falls back to the
// serial MidTickAdmitPhase + RunBudgetedPrefillPhase. Either way the
// resulting pool state, RNG draw order, and IterationRecord are
// byte-identical to the serial tick — the pipeline moves work off the
// critical path without changing what the tick computes.
//
// ComputePlan is a pure function of TickPlanInput (a value snapshot), so
// the worker thread never touches the pool; the only synchronization is
// the future joining the plan back into the tick.
#ifndef ADASERVE_SRC_SERVE_TICK_PIPELINE_H_
#define ADASERVE_SRC_SERVE_TICK_PIPELINE_H_

#include <future>
#include <optional>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/serve/scheduler.h"

namespace adaserve {

// One admission/prefill candidate as the planner sees it: the scalars
// that determine admissibility (worst-case KV footprint, slot use),
// ranking (tpot_slo), and chunking (prefill progress). Defaulted equality
// is what reconciliation compares.
struct PlanCandidate {
  RequestId id = kInvalidRequestId;
  double tpot_slo = 0.0;
  int prompt_len = 0;
  int target_output_len = 0;
  int prefill_progress = 0;
  int committed_len = 0;
  // KV already reserved by this request (preempted requests re-admit by
  // growing an existing reservation; Reserve charges only the delta).
  long kv_held = 0;
  // Deadline inputs (NextTokenDeadline) for the kEdf ranking.
  double arrival = 0.0;
  double first_token_time = -1.0;

  bool operator==(const PlanCandidate&) const = default;
};

// NextTokenDeadline computed from a candidate's snapshot fields — must
// stay decision-identical to the Request-based helper.
inline SimTime CandidateDeadline(const PlanCandidate& cand) {
  if (cand.first_token_time >= 0.0) {
    return cand.first_token_time + cand.committed_len * cand.tpot_slo;
  }
  return cand.arrival + cand.tpot_slo;
}

// Everything the mid-tick admission + prefill phases read, as one value.
// PredictPlanInput builds the phase-A-start *forecast* of this;
// SnapshotPlanInput builds the phase-A-end *actual*; operator== deciding
// plan validity is exactly "did the forecast come true".
struct TickPlanInput {
  std::vector<PlanCandidate> queued;      // admission queue, queue order
  std::vector<PlanCandidate> prefilling;  // kPrefilling requests, active order
  int active_count = 0;
  long kv_free = 0;
  int kv_block = 1;
  int max_active = 0;
  PriorityPolicy priority = PriorityPolicy::kFifo;
  int burst = 0;   // per-request prefill cap (<= 0: uncapped)
  int budget = 0;  // prefill phase token budget (PrefillPhaseBudget)

  bool operator==(const TickPlanInput&) const = default;
};

// One precomputed prefill chunk.
struct PlannedChunk {
  RequestId id = kInvalidRequestId;
  int tokens = 0;
  // Whether this chunk finishes the prompt (the request then commits its
  // first output token at the phase's end time).
  bool completes = false;
};

// The planner's product: which queued requests mid-tick admission takes
// (in admission order) and how the prefill budget is chunked.
struct TickPlan {
  std::vector<RequestId> admit;
  std::vector<PlannedChunk> chunks;
  int batch_tokens = 0;
};

// Snapshot of the actual pool + tick policy, used at reconcile time.
// `budget` is the actual prefill budget derived from phase A's record.
TickPlanInput SnapshotPlanInput(const RequestPool& pool, const ServingContext& ctx, int budget);

// Phase-A-start forecast: the snapshot advanced by one continuous-batching
// decode iteration — every running request commits exactly one token, the
// ones reaching their target release their KV and free their slot — with
// the prefill budget predicted from the running count (verified_tokens 0:
// plain CB submits no speculated tokens). Exact for CB decode phases;
// speculative or capped decode phases make it miss and the tick falls
// back, preserving byte-identity.
TickPlanInput PredictPlanInput(const RequestPool& pool, const ServingContext& ctx);

// Pure planning function: simulates mid-tick admission (stable ranked-head
// selection, head-of-line KV blocking, block-rounded worst-case
// reservations, slot cap) and the budgeted-prefill chunk loop against the
// input snapshot. Mirrors RequestPool::AdmitUpTo + RunBudgetedPrefillPhase
// decision-for-decision.
TickPlan ComputePlan(const TickPlanInput& input);

// Applies a validated plan's prefill chunks: one PrefillLatency pass over
// the chunked requests, advancing prefill and committing first tokens in
// chunk order — the same operations, RNG draws, and record the serial
// RunBudgetedPrefillPhase would have produced. Admissions must already be
// applied.
IterationRecord ExecutePlannedPrefill(SimTime now, RequestPool& pool, ServingContext& ctx,
                                      const TickPlan& plan);

// The engine-owned pipeline stage: one planner worker, one in-flight plan.
class TickPlanner {
 public:
  TickPlanner() : workers_(1) {}

  // Launches planning for the tick whose phase A starts now. `input`
  // should be PredictPlanInput's forecast. One plan may be in flight at a
  // time (the tick always reconciles before the next BeginPlan).
  void BeginPlan(TickPlanInput input);

  // Phase-A-end reconciliation. Pulls arrivals due by `now` (exactly as
  // the serial mid-tick admission would), joins the in-flight plan, and
  // compares the actual pool snapshot (with `budget`, the actual prefill
  // budget) against the forecast. On a hit the plan is applied — targeted
  // admissions in plan order, then the precomputed prefill pass —
  // `admitted` is bumped by the plan's admissions, `prefill` receives the
  // prefill record, and true is returned. On a miss nothing is applied
  // and false is returned; the caller runs the serial phases (the
  // arrivals pull is idempotent). Returns false if no plan is in flight.
  bool Reconcile(SimTime now, RequestPool& pool, ServingContext& ctx, int budget, int& admitted,
                 IterationRecord& prefill);

  // Pipeline effectiveness counters (EngineResult surfaces these).
  long planned() const { return planned_; }
  long hits() const { return hits_; }
  long misses() const { return misses_; }

 private:
  ThreadPool workers_;
  TickPlanInput predicted_;
  std::optional<std::future<TickPlan>> inflight_;
  long planned_ = 0;
  long hits_ = 0;
  long misses_ = 0;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_SERVE_TICK_PIPELINE_H_
