#include "src/serve/engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/common/logging.h"
#include "src/serve/tick_pipeline.h"

namespace adaserve {

Engine::Engine(const SyntheticLm* target, const DraftLm* draft, const LatencyModel* target_latency,
               const LatencyModel* draft_latency, const EngineConfig& config)
    : target_(target),
      draft_(draft),
      target_latency_(target_latency),
      draft_latency_(draft_latency),
      config_(config) {
  ADASERVE_CHECK(target_ != nullptr && draft_ != nullptr) << "engine needs both models";
  ADASERVE_CHECK(target_latency_ != nullptr && draft_latency_ != nullptr)
      << "engine needs both latency models";
  ADASERVE_CHECK(config_.arrival_horizon >= 0) << "negative arrival horizon";
}

EngineResult Engine::Run(Scheduler& scheduler, WorkloadSource source, int verify_budget,
                         int draft_budget) {
  ArrivalStream& stream = source.stream();
  KvCache kv(target_latency_->KvCacheBytes(), target_latency_->model().KvBytesPerToken());
  RequestPool pool(&kv);
  pool.set_release_payload_on_finish(config_.retire_finished);
  Rng rng(config_.sampling_seed);

  ServingContext ctx;
  ctx.target = target_;
  ctx.draft = draft_;
  ctx.target_latency = target_latency_;
  ctx.draft_latency = draft_latency_;
  ctx.mode = config_.mode;
  ctx.verify_budget = verify_budget > 0 ? verify_budget : DeriveTokenBudget(*target_latency_);
  ctx.draft_budget =
      draft_budget > 0 ? draft_budget : DeriveDraftBudget(*target_latency_, *draft_latency_);
  ctx.rng = &rng;
  // The whole tick policy crosses the engine boundary as one value:
  // ResolvedFor fills an unset admission priority from the scheduler's
  // default and neutralizes tick-native knobs in boundary mode (the drain
  // loop's byte-identity to the legacy engine depends on it).
  ctx.tick = config_.tick.ResolvedFor(scheduler);
  // Async pipeline stage: one planner worker per run, engine-owned.
  std::optional<TickPlanner> planner;
  if (ctx.tick.async_planner) {
    planner.emplace();
    ctx.planner = &*planner;
  }

  // Pull until this many requests sit in the admission queue: admission can
  // consume at most tick.max_active per tick, so holding that many plus
  // the horizon makes lazy injection indistinguishable from the old
  // inject-everything-due loop.
  const size_t pull_target = static_cast<size_t>(ctx.tick.max_active) +
                             static_cast<size_t>(config_.arrival_horizon);
  SimTime last_arrival = 0.0;
  // Makes arrivals due by `t` visible in the admission queue, bounded by
  // the horizon. Shared between the engine's boundary pull and the
  // scheduler's mid-tick admission phase (tick-native mode).
  // Arrivals pulled since the last traced tick; charged to the next
  // progressing tick by the trace sink (boundary + mid-tick pulls alike).
  int pulls_since_tick = 0;
  auto pull_arrivals = [&](SimTime t) {
    int pulled = 0;
    while (!stream.Exhausted() && stream.Peek()->arrival <= t &&
           pool.queued().size() < pull_target) {
      Request req = stream.Next();
      ADASERVE_CHECK(req.arrival >= last_arrival)
          << "stream arrivals must be nondecreasing; got " << req.arrival << " after "
          << last_arrival;
      last_arrival = req.arrival;
      if (config_.trace_sink != nullptr) {
        config_.trace_sink->OnArrival(req);
      }
      pool.AddArrival(req);
      ++pulled;
    }
    pulls_since_tick += pulled;
    return pulled;
  };
  ctx.pull_arrivals = pull_arrivals;

  MetricsAccumulator acc;
  auto retire_sink = [&acc](const Request& req) { acc.AddRequest(req); };

  EngineResult result;
  SimTime now = 0.0;
  long iterations = 0;
  long traced_ticks = 0;
  while (!stream.Exhausted() || pool.HasWork()) {
    ADASERVE_CHECK(++iterations <= config_.max_iterations) << "iteration budget exhausted";
    pull_arrivals(now);
    if (ctx.tick.event_driven && !pool.HasWork()) {
      // Next-event skip: with nothing queued and nothing active a tick
      // cannot change state, so the earliest event is the next arrival —
      // jump the clock there in one step. The loop condition plus the
      // empty pool guarantee the stream still has requests, and the pull
      // loop above guarantees that arrival is strictly in the future.
      now = stream.Peek()->arrival;
      continue;
    }
    const long hits_before = planner.has_value() ? planner->hits() : 0;
    const long misses_before = planner.has_value() ? planner->misses() : 0;
    const TickResult tick = scheduler.Tick(now, pool, ctx);
    result.peak_resident_requests = std::max(result.peak_resident_requests, pool.resident_count());
    if (!tick.MadeProgress()) {
      // A no-progress tick may still have *rejected* work (admission
      // control refusing an entire backlog consumes no simulated time);
      // keep its counters so Metrics::rejections stays exact.
      if (tick.record.rejected > 0 || tick.record.degraded > 0) {
        acc.AddIteration(tick.record);
        if (config_.record_iterations) {
          result.iterations.push_back(tick.record);
        }
      }
      // Nothing was admissible and nothing ran. Either the queue is empty
      // (idle until the next arrival) or admission is blocked, which
      // cannot happen with an empty active set given worst-case
      // reservations.
      ADASERVE_CHECK(pool.active().empty()) << scheduler.name() << " made no progress";
      ADASERVE_CHECK(pool.queued().empty()) << "admission deadlock";
      if (stream.Exhausted()) {
        // Legal only when this tick rejected the final backlog; the loop
        // condition then ends the run.
        ADASERVE_CHECK(tick.record.rejected > 0) << "engine stalled with no work";
        continue;
      }
      now = stream.Peek()->arrival;
      continue;
    }
    if (config_.trace_sink != nullptr) {
      TickTraceEvent event;
      event.index = traced_ticks++;
      event.start = now;
      event.record = tick.record;
      event.arrivals_pulled = pulls_since_tick;
      if (planner.has_value()) {
        if (planner->hits() != hits_before) {
          event.plan_hit = 1;
        } else if (planner->misses() != misses_before) {
          event.plan_hit = 0;
        }
      }
      config_.trace_sink->OnTick(event);
      pulls_since_tick = 0;
    }
    now += tick.record.duration;
    acc.AddIteration(tick.record);
    if (config_.record_iterations) {
      result.iterations.push_back(tick.record);
    }
    if (config_.retire_finished) {
      pool.RetireFinishedPrefix(retire_sink);
    }
  }
  result.end_time = now;
  result.total_iterations = iterations;
  if (config_.retire_finished) {
    pool.RetireFinishedPrefix(retire_sink);
    ADASERVE_CHECK(pool.resident_count() == 0) << "undrained pool at end of run";
  } else {
    for (const Request& req : pool.requests()) {
      acc.AddRequest(req);
    }
    result.requests.assign(pool.requests().begin(), pool.requests().end());
  }
  result.metrics = acc.Finalize(now);
  if (planner.has_value()) {
    result.planned_ticks = planner->planned();
    result.plan_hits = planner->hits();
    result.plan_misses = planner->misses();
  }
  return result;
}

}  // namespace adaserve
