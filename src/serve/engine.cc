#include "src/serve/engine.h"

#include <algorithm>

#include "src/common/logging.h"

namespace adaserve {

Engine::Engine(const SyntheticLm* target, const DraftLm* draft, const LatencyModel* target_latency,
               const LatencyModel* draft_latency, const EngineConfig& config)
    : target_(target),
      draft_(draft),
      target_latency_(target_latency),
      draft_latency_(draft_latency),
      config_(config) {
  ADASERVE_CHECK(target_ != nullptr && draft_ != nullptr) << "engine needs both models";
  ADASERVE_CHECK(target_latency_ != nullptr && draft_latency_ != nullptr)
      << "engine needs both latency models";
}

EngineResult Engine::Run(Scheduler& scheduler, std::vector<Request> requests, int verify_budget,
                         int draft_budget) {
  ADASERVE_CHECK(std::is_sorted(requests.begin(), requests.end(),
                                [](const Request& a, const Request& b) {
                                  return a.arrival < b.arrival;
                                }))
      << "requests must be sorted by arrival";

  KvCache kv(target_latency_->KvCacheBytes(), target_latency_->model().KvBytesPerToken());
  RequestPool pool(&kv);
  Rng rng(config_.sampling_seed);

  ServingContext ctx;
  ctx.target = target_;
  ctx.draft = draft_;
  ctx.target_latency = target_latency_;
  ctx.draft_latency = draft_latency_;
  ctx.mode = config_.mode;
  ctx.verify_budget = verify_budget > 0 ? verify_budget : DeriveTokenBudget(*target_latency_);
  ctx.draft_budget =
      draft_budget > 0 ? draft_budget : DeriveDraftBudget(*target_latency_, *draft_latency_);
  ctx.rng = &rng;

  EngineResult result;
  SimTime now = 0.0;
  size_t next_arrival = 0;
  long iterations = 0;
  while (pool.finished_count() < requests.size()) {
    ADASERVE_CHECK(++iterations <= config_.max_iterations) << "iteration budget exhausted";
    // Inject all arrivals at or before `now`.
    while (next_arrival < requests.size() && requests[next_arrival].arrival <= now) {
      pool.AddArrival(requests[next_arrival]);
      ++next_arrival;
    }
    // Admission is uniform across systems: FIFO while KV and slots allow.
    pool.AdmitUpTo(config_.max_active_requests);
    if (pool.active().empty()) {
      // Nothing admitted. Either the queue is empty (idle until the next
      // arrival) or admission is blocked, which cannot happen with an empty
      // active set given worst-case reservations.
      ADASERVE_CHECK(pool.queued().empty()) << "admission deadlock";
      ADASERVE_CHECK(next_arrival < requests.size()) << "engine stalled with no work";
      now = requests[next_arrival].arrival;
      continue;
    }
    const IterationRecord record = scheduler.Step(now, pool, ctx);
    ADASERVE_CHECK(record.duration > 0.0) << scheduler.name() << " made no progress";
    now += record.duration;
    result.iterations.push_back(record);
  }
  result.end_time = now;
  result.metrics = ComputeMetrics(pool.requests(), result.iterations, now);
  result.requests = pool.requests();
  return result;
}

}  // namespace adaserve
