#include "src/serve/request_pool.h"

#include <algorithm>

#include "src/common/logging.h"

namespace adaserve {

RequestPool::RequestPool(KvCache* kv) : kv_(kv) { ADASERVE_CHECK(kv_ != nullptr) << "null KV"; }

void RequestPool::AddArrival(const Request& request) {
  ADASERVE_CHECK(request.id == base_id_ + static_cast<RequestId>(requests_.size()))
      << "requests must arrive with dense sequential ids; got " << request.id;
  requests_.push_back(request);
  Request& stored = requests_.back();
  stored.state = RequestState::kQueued;
  // Arrivals come with empty payload vectors; hand them capacity recycled
  // from finished requests so steady-state token commits never allocate.
  if (stored.output.capacity() == 0) {
    stored.output = token_pool_.Acquire();
  }
  if (stored.token_times.capacity() == 0) {
    stored.token_times = time_pool_.Acquire();
  }
  queued_.push_back(request.id);
}

Request& RequestPool::Get(RequestId id) {
  ADASERVE_CHECK(id >= base_id_ &&
                 static_cast<size_t>(id - base_id_) < requests_.size())
      << "bad or retired id " << id;
  return requests_[static_cast<size_t>(id - base_id_)];
}

const Request& RequestPool::Get(RequestId id) const {
  ADASERVE_CHECK(id >= base_id_ &&
                 static_cast<size_t>(id - base_id_) < requests_.size())
      << "bad or retired id " << id;
  return requests_[static_cast<size_t>(id - base_id_)];
}

std::deque<RequestId>::iterator RequestPool::RankedHead(const AdmissionRanker& rank) {
  auto head = queued_.begin();
  if (!rank) {
    return head;
  }
  // Stable min under the ranker: only a strictly better-ranked request
  // displaces the current head, so ties keep queue (arrival) order.
  for (auto it = std::next(head); it != queued_.end(); ++it) {
    if (rank(Get(*it), Get(*head))) {
      head = it;
    }
  }
  return head;
}

RequestId RequestPool::TryAdmitAt(std::deque<RequestId>::iterator head) {
  const RequestId id = *head;
  Request& req = Get(id);
  // Worst-case footprint: full prompt + full output. Reserving up front
  // guarantees no mid-decode OOM.
  const long footprint = req.prompt_len + req.target_output_len;
  if (!kv_->Reserve(id, footprint)) {
    return kInvalidRequestId;
  }
  queued_.erase(head);
  active_.push_back(id);
  if (!req.PrefillDone()) {
    req.state = RequestState::kPrefilling;
  } else {
    req.state = RequestState::kRunning;  // Re-admission after preemption.
  }
  return id;
}

RequestId RequestPool::TryAdmit(int max_active, const AdmissionRanker& rank) {
  if (queued_.empty() || static_cast<int>(active_.size()) >= max_active) {
    return kInvalidRequestId;
  }
  return TryAdmitAt(RankedHead(rank));
}

int RequestPool::AdmitUpTo(int max_active, const AdmissionRanker& rank) {
  int admitted = 0;
  while (TryAdmit(max_active, rank) != kInvalidRequestId) {
    ++admitted;
  }
  return admitted;
}

RequestId RequestPool::AdmitWithEviction(int max_active, int max_evictions, int* evicted,
                                         const AdmissionRanker& rank,
                                         const VictimSelector& select_victim,
                                         EvictionStyle style) {
  if (queued_.empty() || static_cast<int>(active_.size()) >= max_active) {
    return kInvalidRequestId;  // Blocked on slots, not KV.
  }
  // One ranked-head scan serves both the plain attempt and the eviction
  // path (the ranker rescan would be O(queue) on the per-tick hot path).
  const auto head_it = RankedHead(rank);
  const RequestId admitted = TryAdmitAt(head_it);
  if (admitted != kInvalidRequestId) {
    return admitted;
  }
  // The head is blocked on KV. Set it aside so evicted requests queue
  // behind it, then evict victims until its worst-case footprint fits.
  const RequestId head = *head_it;
  queued_.erase(head_it);
  const long footprint = Get(head).prompt_len + Get(head).target_output_len;
  int evictions = 0;
  while (evictions < max_evictions && !kv_->CanReserve(footprint)) {
    RequestId victim = kInvalidRequestId;
    if (select_victim) {
      victim = select_victim(Get(head), *this);
    } else {
      for (auto it = active_.rbegin(); it != active_.rend(); ++it) {
        if (Get(*it).committed_len == 0) {
          victim = *it;
          break;
        }
      }
    }
    if (victim == kInvalidRequestId) {
      break;  // Nothing (more) the policy is willing to evict.
    }
    // Each push_front reverses eviction order: the default newest-first
    // selector leaves victims queued in ascending (arrival) order, the
    // SLO-aware loosest-first selector leaves tighter-SLO victims first.
    if (style == EvictionStyle::kPause) {
      Pause(victim);
    } else {
      Evict(victim);
    }
    ++evictions;
  }
  queued_.push_front(head);
  if (evicted != nullptr) {
    *evicted += evictions;
  }
  // Admit the head we evicted for, not a ranker rescan: the room was
  // made for this specific request (victims rank no better than it
  // under the paired policies), and the front slot is where it sits.
  return TryAdmitAt(queued_.begin());
}

void RequestPool::Evict(RequestId id) {
  Request& req = Get(id);
  ADASERVE_CHECK(req.state == RequestState::kPrefilling || req.state == RequestState::kRunning)
      << "evict on inactive " << id;
  ADASERVE_CHECK(req.committed_len == 0) << "evict would discard committed output of " << id;
  auto it = std::find(active_.begin(), active_.end(), id);
  ADASERVE_CHECK(it != active_.end()) << "evicted request not active " << id;
  active_.erase(it);
  kv_->Release(id);
  req.prefill_progress = 0;  // Recompute-style: prompt work is redone.
  req.state = RequestState::kQueued;
  queued_.push_front(id);
}

void RequestPool::Pause(RequestId id) {
  Request& req = Get(id);
  ADASERVE_CHECK(req.state == RequestState::kPrefilling || req.state == RequestState::kRunning)
      << "pause on inactive " << id;
  ADASERVE_CHECK(req.committed_len == 0) << "pause would strand committed output of " << id;
  auto it = std::find(active_.begin(), active_.end(), id);
  ADASERVE_CHECK(it != active_.end()) << "paused request not active " << id;
  active_.erase(it);
  kv_->Release(id);  // Swap-out: the KV leaves the device...
  // ...but the prefill progress survives, so re-admission resumes the
  // prompt where it stopped instead of recomputing it.
  req.state = RequestState::kPaused;
  queued_.push_front(id);
}

RequestId RequestPool::TryAdmitId(RequestId id) {
  auto it = std::find(queued_.begin(), queued_.end(), id);
  if (it == queued_.end()) {
    return kInvalidRequestId;
  }
  return TryAdmitAt(it);
}

void RequestPool::AdvancePrefill(RequestId id, int chunk) {
  Request& req = Get(id);
  ADASERVE_CHECK(req.state == RequestState::kPrefilling) << "prefill on non-prefilling " << id;
  ADASERVE_CHECK(chunk > 0) << "empty prefill chunk";
  req.prefill_progress = std::min(req.prompt_len, req.prefill_progress + chunk);
  if (req.PrefillDone()) {
    req.state = RequestState::kRunning;
  }
}

void RequestPool::CommitToken(RequestId id, Token token, SimTime now) {
  Request& req = Get(id);
  ADASERVE_CHECK(req.state == RequestState::kRunning) << "commit on non-running " << id;
  req.output.push_back(token);
  req.token_times.push_back(now);
  ++req.committed_len;
  if (req.first_token_time < 0.0) {
    req.first_token_time = now;
  }
  if (req.DecodeDone()) {
    Finish(id, now);
  }
}

void RequestPool::Preempt(RequestId id) {
  Request& req = Get(id);
  ADASERVE_CHECK(req.state == RequestState::kPrefilling || req.state == RequestState::kRunning)
      << "preempt on inactive " << id;
  auto it = std::find(active_.begin(), active_.end(), id);
  ADASERVE_CHECK(it != active_.end()) << "preempted request not active " << id;
  active_.erase(it);
  // KV stays resident (swap-free preemption); the request resumes where it
  // stopped, jumping the admission queue.
  req.state = RequestState::kQueued;
  queued_.push_front(id);
}

void RequestPool::Reject(RequestId id, SimTime now) {
  Request& req = Get(id);
  ADASERVE_CHECK(req.state == RequestState::kQueued || req.state == RequestState::kPaused)
      << "reject on non-queued " << id;
  auto it = std::find(queued_.begin(), queued_.end(), id);
  ADASERVE_CHECK(it != queued_.end()) << "rejected request not queued " << id;
  queued_.erase(it);
  kv_->Release(id);  // No-op unless a paused reservation lingers.
  req.state = RequestState::kRejected;
  req.finish_time = now;
  if (release_payload_on_finish_) {
    token_pool_.Release(std::move(req.output));
    time_pool_.Release(std::move(req.token_times));
    req.ReleasePayload();
  }
}

long RequestPool::SumContextTokens(const std::vector<RequestId>& ids) const {
  long sum = 0;
  for (RequestId id : ids) {
    sum += Get(id).KvTokens();
  }
  return sum;
}

size_t RequestPool::RetireFinishedPrefix(const std::function<void(const Request&)>& sink) {
  size_t retired = 0;
  while (!requests_.empty() && (requests_.front().state == RequestState::kFinished ||
                                requests_.front().state == RequestState::kRejected)) {
    sink(requests_.front());
    requests_.pop_front();
    ++base_id_;
    ++retired;
  }
  return retired;
}

void RequestPool::Finish(RequestId id, SimTime now) {
  Request& req = Get(id);
  req.state = RequestState::kFinished;
  req.finish_time = now;
  ++finished_count_;
  kv_->Release(id);
  auto it = std::find(active_.begin(), active_.end(), id);
  ADASERVE_CHECK(it != active_.end()) << "finished request not active " << id;
  active_.erase(it);
  if (release_payload_on_finish_) {
    // Park the payload buffers for reuse by future arrivals, then clear
    // the (moved-from) vectors so the request keeps only scalars.
    token_pool_.Release(std::move(req.output));
    time_pool_.Release(std::move(req.token_times));
    req.ReleasePayload();
  }
}

}  // namespace adaserve
