// Paged KV-cache block manager (vLLM-style PagedAttention accounting).
//
// Capacity is expressed in tokens, allocated in fixed-size blocks. Serving
// systems reserve a request's worst-case footprint (prompt + max output) at
// admission, which sidesteps mid-decode OOM; the ledger tracks per-request
// reservations so preemption/finish can release them.
#ifndef ADASERVE_SRC_SERVE_KV_CACHE_H_
#define ADASERVE_SRC_SERVE_KV_CACHE_H_

#include <unordered_map>

#include "src/common/types.h"

namespace adaserve {

class KvCache {
 public:
  // `capacity_bytes` of device memory across the TP group, `bytes_per_token`
  // of KV per cached token, `block_tokens` tokens per page.
  KvCache(double capacity_bytes, double bytes_per_token, int block_tokens = 16);

  long capacity_tokens() const { return capacity_tokens_; }
  long used_tokens() const { return used_tokens_; }
  long free_tokens() const { return capacity_tokens_ - used_tokens_; }
  int block_tokens() const { return block_tokens_; }

  // Tokens actually consumed by a reservation of `tokens` (block rounding).
  long RoundToBlocks(long tokens) const;

  // True if a reservation of `tokens` would fit right now.
  bool CanReserve(long tokens) const;

  // Reserves `tokens` (rounded up to blocks) for `id`. Returns false and
  // changes nothing if it does not fit. A request may hold only one
  // reservation; reserving again grows it.
  bool Reserve(RequestId id, long tokens);

  // Releases everything held by `id`. No-op if `id` holds nothing.
  void Release(RequestId id);

  // Tokens currently reserved by `id` (post-rounding), 0 if none.
  long HeldBy(RequestId id) const;

 private:
  long capacity_tokens_;
  int block_tokens_;
  long used_tokens_ = 0;
  std::unordered_map<RequestId, long> held_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_SERVE_KV_CACHE_H_
