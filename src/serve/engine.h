// Discrete-event serving engine.
//
// The engine replays an arrival trace against a scheduler: it pulls
// arrivals whose time has come from an ArrivalStream, hands the scheduler
// one Tick (the tick itself admits, prefills, decodes, and — in
// tick-native mode — admits again mid-tick), advances the clock by the
// tick's duration, and repeats until the stream is exhausted and every
// request finishes. It is the execution-engine half of Fig. 6 with GPU
// time supplied by the roofline model; all policy lives in the tick.
//
// Arrivals are consumed lazily: at most max_active_requests +
// arrival_horizon requests are pulled ahead of admission, so a
// generator-backed stream serves million-request workloads with the
// resident request count proportional to the active set, not the trace.
// (End-of-run metrics still keep two scalar samples per finished request
// for percentile queries — ~16 bytes each, the only per-request remnant.)
// The classic vector overload wraps the trace in a MaterializedStream and
// behaves exactly as before.
#ifndef ADASERVE_SRC_SERVE_ENGINE_H_
#define ADASERVE_SRC_SERVE_ENGINE_H_

#include <optional>
#include <vector>

#include "src/hw/budget.h"
#include "src/serve/metrics.h"
#include "src/serve/scheduler.h"
#include "src/workload/arrival_stream.h"

namespace adaserve {

// One progressing tick as seen by a trace sink: the clock at tick start,
// the scheduler's full IterationRecord (admissions, evictions/pauses,
// prefill chunk budget actually spent, decode/verify activity), how many
// arrivals were pulled from the stream for this tick (boundary pull plus
// mid-tick pulls), and the async planner's verdict.
struct TickTraceEvent {
  // 0-based index over progressing ticks (non-progress probes and
  // event-driven skips do not consume an index).
  long index = 0;
  // Simulated clock at tick start.
  SimTime start = 0.0;
  IterationRecord record;
  // Arrivals pulled from the stream and charged to this tick.
  int arrivals_pulled = 0;
  // Async planner verdict: 1 = plan hit, 0 = reconciliation miss,
  // -1 = serial tick (planner off or not consulted).
  int plan_hit = -1;
};

// Streaming observer of one engine run. Enabled by EngineConfig::
// trace_sink; the engine reports every arrival it pulls (in pull order,
// the request still in its immutable arrival state) and every progressing
// tick. Callbacks run synchronously on the engine loop — implementations
// must not re-enter the engine. The record/replay harness
// (src/harness/replay.h) is the canonical consumer.
class TickTraceSink {
 public:
  virtual ~TickTraceSink() = default;

  virtual void OnArrival(const Request& request) = 0;
  virtual void OnTick(const TickTraceEvent& event) = 0;
};

struct EngineConfig {
  // Safety valve: abort if an experiment exceeds this many iterations.
  long max_iterations = 50'000'000;
  uint64_t sampling_seed = 1234;
  DecodeMode mode = DecodeMode::kStochastic;
  // Queued arrivals pulled from the stream beyond what admission can
  // consume this iteration. Under FIFO admission any value >= 0 yields
  // identical scheduling (admission can admit at most tick.max_active
  // per iteration) and the horizon only bounds how much of a due burst
  // is resident at once. Under a priority admission policy it
  // additionally bounds how deep into a due burst the ranker can see: an
  // urgent arrival beyond the horizon cannot jump the queue until the
  // backlog ahead of it is pulled.
  int arrival_horizon = 256;
  // Keep the per-iteration log in EngineResult::iterations. Turn off for
  // huge streaming runs; metrics aggregate the log either way.
  bool record_iterations = true;
  // Retire finished requests as the run progresses: their metrics are
  // accumulated incrementally, their token payloads are freed at finish,
  // and EngineResult::requests is left empty. Metrics are bit-identical
  // to a non-retiring run.
  bool retire_finished = false;
  // The unified tick policy (scheduler.h): every tick-shaped serving knob
  // — slot cap, continuous vs boundary ticks, prefill burst, eviction
  // budget, admission priority, event-driven clock, async planner — in
  // one struct. Engine::Run resolves it (TickPolicy::ResolvedFor) and
  // hands it to the scheduler through ServingContext unchanged.
  TickPolicy tick;
  // Optional run observer (record/replay): receives every pulled arrival
  // and every progressing tick. Non-owning; must outlive the run. Purely
  // observational — a run with a sink is byte-identical to one without.
  TickTraceSink* trace_sink = nullptr;

  // Convenience alias kept under its historical name (vLLM max_num_seqs).
  int& max_active_requests = tick.max_active;

  // --- deprecated aliases (one release): the pre-TickPolicy field names.
  // They alias the tick members exactly, so old code keeps its semantics;
  // new code (and everything in-tree) must use `tick.*` — builds with
  // -Werror treat any use as an error. The pragmas keep the shim's own
  // constructors (which implicitly touch the aliases) warning-clean.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  [[deprecated("use tick.continuous")]] bool& continuous_ticks = tick.continuous;
  [[deprecated("use tick.prefill_burst")]] int& prefill_burst = tick.prefill_burst;
  [[deprecated("use tick.max_evictions")]] int& max_evictions_per_tick = tick.max_evictions;
  [[deprecated("use tick.event_driven")]] bool& event_driven = tick.event_driven;
  [[deprecated("use tick.admission_priority")]] std::optional<PriorityPolicy>&
      admission_priority = tick.admission_priority;

  // The aliases are self-references, so copies must rebind them to the
  // copy's own tick (the default member initializers do) rather than
  // memberwise-copy the referents.
  EngineConfig() = default;
  EngineConfig(const EngineConfig& other)
      : max_iterations(other.max_iterations),
        sampling_seed(other.sampling_seed),
        mode(other.mode),
        arrival_horizon(other.arrival_horizon),
        record_iterations(other.record_iterations),
        retire_finished(other.retire_finished),
        tick(other.tick),
        trace_sink(other.trace_sink) {}
  EngineConfig& operator=(const EngineConfig& other) {
    max_iterations = other.max_iterations;
    sampling_seed = other.sampling_seed;
    mode = other.mode;
    arrival_horizon = other.arrival_horizon;
    record_iterations = other.record_iterations;
    retire_finished = other.retire_finished;
    tick = other.tick;  // References already bind to this->tick.
    trace_sink = other.trace_sink;
    return *this;
  }
#pragma GCC diagnostic pop
};

namespace internal {
// The deprecation shim is only sound while TickPolicy's defaults equal
// the documented legacy EngineConfig defaults — a drift would silently
// change the meaning of old code still using the aliases.
constexpr bool TickPolicyDefaultsMatchLegacy() {
  TickPolicy tick;
  return tick.max_active == 256 && tick.continuous && tick.prefill_burst == kBurst &&
         tick.max_evictions == 4 && !tick.admission_priority.has_value() && tick.event_driven &&
         !tick.async_planner;
}
}  // namespace internal
static_assert(internal::TickPolicyDefaultsMatchLegacy(),
              "TickPolicy defaults drifted from the legacy EngineConfig defaults; "
              "update the deprecated-alias shim (and its documentation) together");

struct EngineResult {
  Metrics metrics;
  // Per-iteration log; empty when EngineConfig::record_iterations is off.
  std::vector<IterationRecord> iterations;
  // Final per-request records (timestamps, outputs, speculation counters).
  // Empty when EngineConfig::retire_finished is on.
  std::vector<Request> requests;
  SimTime end_time = 0.0;
  // Iterations executed (valid even when the log is not recorded).
  long total_iterations = 0;
  // Peak number of requests resident in the pool at once — the O(active)
  // memory guarantee for streaming runs.
  size_t peak_resident_requests = 0;
  // Async tick pipeline effectiveness (tick.async_planner runs only):
  // ticks planned, and how many reconciled to a hit (plan applied) vs a
  // miss (serial fallback). Zero when the planner is off.
  long planned_ticks = 0;
  long plan_hits = 0;
  long plan_misses = 0;
};

class Engine {
 public:
  // Non-owning references; all must outlive the engine.
  Engine(const SyntheticLm* target, const DraftLm* draft, const LatencyModel* target_latency,
         const LatencyModel* draft_latency, const EngineConfig& config = {});

  // Serves `source` — a live ArrivalStream (pulled lazily) or an
  // arrival-sorted request vector (adapted via MaterializedStream), both
  // of which convert implicitly — with `scheduler` until the stream is
  // exhausted and the pool drains. `verify_budget`/`draft_budget`
  // parameterise the ServingContext; pass 0 to derive them from the
  // roofline (DeriveTokenBudget).
  EngineResult Run(Scheduler& scheduler, WorkloadSource source, int verify_budget = 0,
                   int draft_budget = 0);

 private:
  const SyntheticLm* target_;
  const DraftLm* draft_;
  const LatencyModel* target_latency_;
  const LatencyModel* draft_latency_;
  EngineConfig config_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_SERVE_ENGINE_H_
