// Discrete-event serving engine.
//
// The engine replays an arrival trace against a scheduler: it pulls
// arrivals whose time has come from an ArrivalStream, hands the scheduler
// one Tick (the tick itself admits, prefills, decodes, and — in
// tick-native mode — admits again mid-tick), advances the clock by the
// tick's duration, and repeats until the stream is exhausted and every
// request finishes. It is the execution-engine half of Fig. 6 with GPU
// time supplied by the roofline model; all policy lives in the tick.
//
// Arrivals are consumed lazily: at most max_active_requests +
// arrival_horizon requests are pulled ahead of admission, so a
// generator-backed stream serves million-request workloads with the
// resident request count proportional to the active set, not the trace.
// (End-of-run metrics still keep two scalar samples per finished request
// for percentile queries — ~16 bytes each, the only per-request remnant.)
// The classic vector overload wraps the trace in a MaterializedStream and
// behaves exactly as before.
#ifndef ADASERVE_SRC_SERVE_ENGINE_H_
#define ADASERVE_SRC_SERVE_ENGINE_H_

#include <optional>
#include <vector>

#include "src/hw/budget.h"
#include "src/serve/metrics.h"
#include "src/serve/scheduler.h"
#include "src/workload/arrival_stream.h"

namespace adaserve {

struct EngineConfig {
  // Upper bound on concurrently admitted requests (vLLM max_num_seqs).
  int max_active_requests = 256;
  // Safety valve: abort if an experiment exceeds this many iterations.
  long max_iterations = 50'000'000;
  uint64_t sampling_seed = 1234;
  DecodeMode mode = DecodeMode::kStochastic;
  // Queued arrivals pulled from the stream beyond what admission can
  // consume this iteration. Under FIFO admission any value >= 0 yields
  // identical scheduling (admission can admit at most
  // max_active_requests per iteration) and the horizon only bounds how
  // much of a due burst is resident at once. Under a priority admission
  // policy it additionally bounds how deep into a due burst the ranker
  // can see: an urgent arrival beyond the horizon cannot jump the queue
  // until the backlog ahead of it is pulled.
  int arrival_horizon = 256;
  // Keep the per-iteration log in EngineResult::iterations. Turn off for
  // huge streaming runs; metrics aggregate the log either way.
  bool record_iterations = true;
  // Retire finished requests as the run progresses: their metrics are
  // accumulated incrementally, their token payloads are freed at finish,
  // and EngineResult::requests is left empty. Metrics are bit-identical
  // to a non-retiring run.
  bool retire_finished = false;
  // Tick-native continuous batching (the serving default): admission
  // moves inside the tick (including mid-tick, after the decode phase)
  // and prefill runs as a shared burst-capped phase. Set false — or use
  // BoundaryTickConfig() — for boundary admission + drain-style
  // iterations, byte-identical to the historical loop and its goldens.
  bool continuous_ticks = true;
  // kBurst-style per-request prefill cap of a tick-native prefill phase.
  int prefill_burst = kBurst;
  // Tick-native mode: recompute-style evictions allowed per tick when the
  // admission-queue head is blocked on KV (0 disables eviction).
  int max_evictions_per_tick = 4;
  // Next-event scheduling: when the pool is provably inert — nothing
  // queued, nothing active — advance the clock straight to the next
  // arrival instead of running a tick that cannot change state. The
  // skipped tick was a no-op by construction, so results (including
  // total_iterations: an idle gap costs one loop iteration either way)
  // are byte-identical to the per-tick loop; engine_test pins that. Set
  // false to run the historical probe-every-gap loop.
  bool event_driven = true;
  // Tick-native admission-priority override. Unset defers to the
  // scheduler's AdmissionPriority() default (e.g. AdaServe admits
  // urgent-first, vLLM stays FIFO); set forces the policy for any
  // scheduler. Boundary mode always admits FIFO regardless — the drain
  // loop's byte-identity to the legacy engine depends on it.
  std::optional<PriorityPolicy> admission_priority;
};

struct EngineResult {
  Metrics metrics;
  // Per-iteration log; empty when EngineConfig::record_iterations is off.
  std::vector<IterationRecord> iterations;
  // Final per-request records (timestamps, outputs, speculation counters).
  // Empty when EngineConfig::retire_finished is on.
  std::vector<Request> requests;
  SimTime end_time = 0.0;
  // Iterations executed (valid even when the log is not recorded).
  long total_iterations = 0;
  // Peak number of requests resident in the pool at once — the O(active)
  // memory guarantee for streaming runs.
  size_t peak_resident_requests = 0;
};

class Engine {
 public:
  // Non-owning references; all must outlive the engine.
  Engine(const SyntheticLm* target, const DraftLm* draft, const LatencyModel* target_latency,
         const LatencyModel* draft_latency, const EngineConfig& config = {});

  // Serves requests pulled lazily from `stream` with `scheduler` until the
  // stream is exhausted and the pool drains. `verify_budget`/`draft_budget`
  // parameterise the ServingContext; pass 0 to derive them from the
  // roofline (DeriveTokenBudget).
  EngineResult Run(Scheduler& scheduler, ArrivalStream& stream, int verify_budget = 0,
                   int draft_budget = 0);

  // Serves `requests` (sorted by arrival) via a MaterializedStream.
  EngineResult Run(Scheduler& scheduler, std::vector<Request> requests, int verify_budget = 0,
                   int draft_budget = 0);

 private:
  const SyntheticLm* target_;
  const DraftLm* draft_;
  const LatencyModel* target_latency_;
  const LatencyModel* draft_latency_;
  EngineConfig config_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_SERVE_ENGINE_H_
