// Discrete-event serving engine.
//
// The engine replays an arrival trace against a scheduler: it injects
// arrivals whose time has come, asks the scheduler for one iteration,
// advances the clock by the iteration's latency, and repeats until every
// request finishes (the run drains). It is the execution-engine half of
// Fig. 6 with GPU time supplied by the roofline model.
#ifndef ADASERVE_SRC_SERVE_ENGINE_H_
#define ADASERVE_SRC_SERVE_ENGINE_H_

#include <vector>

#include "src/hw/budget.h"
#include "src/serve/metrics.h"
#include "src/serve/scheduler.h"

namespace adaserve {

struct EngineConfig {
  // Upper bound on concurrently admitted requests (vLLM max_num_seqs).
  int max_active_requests = 256;
  // Safety valve: abort if an experiment exceeds this many iterations.
  long max_iterations = 50'000'000;
  uint64_t sampling_seed = 1234;
  DecodeMode mode = DecodeMode::kStochastic;
};

struct EngineResult {
  Metrics metrics;
  std::vector<IterationRecord> iterations;
  // Final per-request records (timestamps, outputs, speculation counters).
  std::vector<Request> requests;
  SimTime end_time = 0.0;
};

class Engine {
 public:
  // Non-owning references; all must outlive the engine.
  Engine(const SyntheticLm* target, const DraftLm* draft, const LatencyModel* target_latency,
         const LatencyModel* draft_latency, const EngineConfig& config = {});

  // Serves `requests` (sorted by arrival) with `scheduler` until completion.
  // `verify_budget`/`draft_budget` parameterise the ServingContext; pass 0
  // to derive them from the roofline (DeriveTokenBudget).
  EngineResult Run(Scheduler& scheduler, std::vector<Request> requests, int verify_budget = 0,
                   int draft_budget = 0);

 private:
  const SyntheticLm* target_;
  const DraftLm* draft_;
  const LatencyModel* target_latency_;
  const LatencyModel* draft_latency_;
  EngineConfig config_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_SERVE_ENGINE_H_
