#include "src/spec/token_tree.h"

#include <algorithm>

#include "src/common/logging.h"

namespace adaserve {

TokenTree::TokenTree(Token root_token) {
  Node root;
  root.token = root_token;
  root.parent = kInvalidNode;
  root.cond_prob = 1.0;
  root.path_prob = 1.0;
  root.depth = 0;
  nodes_.push_back(root);
}

NodeId TokenTree::AddNode(NodeId parent, Token token, double cond_prob) {
  ADASERVE_CHECK(parent >= 0 && parent < size()) << "bad parent " << parent;
  ADASERVE_CHECK(cond_prob > 0.0 && cond_prob <= 1.0) << "bad cond_prob " << cond_prob;
  Node& p = nodes_[static_cast<size_t>(parent)];
  Node child;
  child.token = token;
  child.parent = parent;
  child.cond_prob = cond_prob;
  child.path_prob = p.path_prob * cond_prob;
  child.depth = p.depth + 1;
  const auto id = static_cast<NodeId>(nodes_.size());
  p.children.push_back(id);
  nodes_.push_back(child);
  return id;
}

int TokenTree::MaxDepth() const {
  int depth = 0;
  for (const Node& n : nodes_) {
    depth = std::max(depth, n.depth);
  }
  return depth;
}

std::vector<Token> TokenTree::PathTokens(NodeId id) const {
  ADASERVE_CHECK(id >= 0 && id < size()) << "bad node " << id;
  std::vector<Token> path;
  for (NodeId cur = id; cur != kRootNode; cur = nodes_[static_cast<size_t>(cur)].parent) {
    path.push_back(nodes_[static_cast<size_t>(cur)].token);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double TokenTree::SumPathProb(const std::vector<NodeId>& ids) const {
  double sum = 0.0;
  for (NodeId id : ids) {
    if (id != kRootNode) {
      sum += nodes_[static_cast<size_t>(id)].path_prob;
    }
  }
  return sum;
}

std::vector<NodeId> TokenTree::NodesByPathProb() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size() - 1);
  for (NodeId id = 1; id < size(); ++id) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end(), [this](NodeId a, NodeId b) {
    const Node& na = nodes_[static_cast<size_t>(a)];
    const Node& nb = nodes_[static_cast<size_t>(b)];
    if (na.path_prob != nb.path_prob) {
      return na.path_prob > nb.path_prob;
    }
    if (na.depth != nb.depth) {
      return na.depth < nb.depth;
    }
    return a < b;
  });
  return ids;
}

bool TokenTree::IsConnectedSelection(const std::vector<char>& selected) const {
  if (selected.size() != nodes_.size()) {
    return false;
  }
  for (NodeId id = 1; id < size(); ++id) {
    if (selected[static_cast<size_t>(id)]) {
      const NodeId parent = nodes_[static_cast<size_t>(id)].parent;
      if (parent != kRootNode && !selected[static_cast<size_t>(parent)]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace adaserve
