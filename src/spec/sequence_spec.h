// Sequence-based speculation, the strategy of vLLM-Spec(k) (§6.1).
//
// The draft model proposes a fixed-length greedy chain of k tokens; the
// chain is a degenerate (single-path) token tree, verified with the same
// lossless verifier as AdaServe's trees.
#ifndef ADASERVE_SRC_SPEC_SEQUENCE_SPEC_H_
#define ADASERVE_SRC_SPEC_SEQUENCE_SPEC_H_

#include <span>

#include "src/model/draft_lm.h"
#include "src/spec/token_tree.h"

namespace adaserve {

// Builds a k-token greedy draft chain for one request. The returned tree has
// k + 1 nodes (root + chain).
TokenTree BuildChainTree(const DraftLm& draft, uint64_t stream, std::span<const Token> committed,
                         int k);

}  // namespace adaserve

#endif  // ADASERVE_SRC_SPEC_SEQUENCE_SPEC_H_
