#include "src/spec/sequence_spec.h"

#include <vector>

#include "src/common/logging.h"

namespace adaserve {

TokenTree BuildChainTree(const DraftLm& draft, uint64_t stream, std::span<const Token> committed,
                         int k) {
  ADASERVE_CHECK(k >= 1) << "speculation length must be >= 1";
  const Token root_token = committed.empty() ? kInvalidToken : committed.back();
  TokenTree tree(root_token);
  std::vector<Token> context(committed.begin(), committed.end());
  NodeId cur = kRootNode;
  for (int i = 0; i < k; ++i) {
    const SparseDist dist = draft.NextDist(stream, context);
    const Token token = dist.ArgMax();
    cur = tree.AddNode(cur, token, dist.ProbOf(token));
    context.push_back(token);
  }
  return tree;
}

}  // namespace adaserve
