// Lossless tree verification (§4.3, Step 4).
//
// The verifier walks the selected subtree from the root: at each node it
// draws the target model's next token (sampled in stochastic mode, argmax in
// greedy mode) and follows the matching selected child if one exists;
// otherwise the drawn token becomes the correction/bonus token and the walk
// stops. Because every committed token is drawn directly from the target
// distribution conditioned on the accepted prefix, the committed stream is
// distributed exactly as target-model ancestral sampling — speculation only
// changes latency, never outputs. Under this scheme the acceptance
// probability of node v is the product of target conditionals along its
// path, which is precisely the path probability f(v) of Theorem 3.1 that
// the draft model approximates (Eq. 7).
#ifndef ADASERVE_SRC_SPEC_VERIFIER_H_
#define ADASERVE_SRC_SPEC_VERIFIER_H_

#include <span>
#include <vector>

#include "src/model/sampler.h"
#include "src/model/synthetic_lm.h"
#include "src/spec/token_tree.h"

namespace adaserve {

struct VerifyResult {
  // Accepted speculated tokens, in path order.
  std::vector<Token> accepted;
  // Target-drawn token committed after the accepted path (always present).
  Token bonus = kInvalidToken;
  // Number of speculated tokens submitted for verification (selected nodes,
  // root excluded).
  int tokens_verified = 0;

  // Tokens committed by this verification: accepted + bonus.
  int TokensCommitted() const { return static_cast<int>(accepted.size()) + 1; }
};

// Verifies the subtree of `tree` marked by `selected` (indexed by NodeId;
// the root is implicitly selected; pass an empty vector to select the whole
// tree). `committed` is the request's committed sequence.
VerifyResult VerifyTree(const SyntheticLm& target, uint64_t stream,
                        std::span<const Token> committed, const TokenTree& tree,
                        const std::vector<char>& selected, DecodeMode mode, Rng& rng);

// Plain auto-regressive decoding of one token (what continuous-batching
// baselines do each iteration).
Token DecodeOneToken(const SyntheticLm& target, uint64_t stream, std::span<const Token> committed,
                     DecodeMode mode, Rng& rng);

}  // namespace adaserve

#endif  // ADASERVE_SRC_SPEC_VERIFIER_H_
