// Candidate token-tree construction via beam search (§4.3, Step 1).
//
// The speculation phase runs d parallel draft-decoding steps; at each step
// the w extensions with the highest approximated path probabilities are kept
// (Theorem 4.1 guarantees that a depth-D_opt beam of width B covers the
// optimal tree). The resulting candidate tree has 1 + w*d nodes, depth <= d,
// and every layer after the root holds exactly w nodes.
#ifndef ADASERVE_SRC_SPEC_BEAM_SEARCH_H_
#define ADASERVE_SRC_SPEC_BEAM_SEARCH_H_

#include <span>

#include "src/model/draft_lm.h"
#include "src/spec/token_tree.h"

namespace adaserve {

struct BeamConfig {
  // Number of draft decoding steps (candidate tree depth d).
  int depth = 4;
  // Beam width w: nodes retained per step.
  int width = 2;
};

// Builds the candidate token tree for one request. `committed` is the
// request's committed token sequence (prompt surrogate + outputs); the tree
// root anchors on its last token.
TokenTree BuildCandidateTree(const DraftLm& draft, uint64_t stream,
                             std::span<const Token> committed, const BeamConfig& config);

}  // namespace adaserve

#endif  // ADASERVE_SRC_SPEC_BEAM_SEARCH_H_
