#include "src/spec/verifier.h"

#include "src/common/logging.h"

namespace adaserve {

VerifyResult VerifyTree(const SyntheticLm& target, uint64_t stream,
                        std::span<const Token> committed, const TokenTree& tree,
                        const std::vector<char>& selected, DecodeMode mode, Rng& rng) {
  const bool select_all = selected.empty();
  ADASERVE_CHECK(select_all || selected.size() == static_cast<size_t>(tree.size()))
      << "selection mask size mismatch";

  VerifyResult result;
  if (!select_all) {
    for (NodeId id = 1; id < tree.size(); ++id) {
      if (selected[static_cast<size_t>(id)]) {
        ++result.tokens_verified;
      }
    }
  } else {
    result.tokens_verified = tree.size() - 1;
  }

  std::vector<Token> context(committed.begin(), committed.end());
  NodeId cur = kRootNode;
  while (true) {
    const SparseDist dist = target.NextDist(stream, context);
    const Token drawn = SampleToken(dist, mode, rng);
    NodeId match = kInvalidNode;
    for (NodeId child : tree.node(cur).children) {
      const bool is_selected = select_all || selected[static_cast<size_t>(child)] != 0;
      if (is_selected && tree.node(child).token == drawn) {
        match = child;
        break;
      }
    }
    if (match == kInvalidNode) {
      result.bonus = drawn;
      break;
    }
    result.accepted.push_back(drawn);
    context.push_back(drawn);
    cur = match;
  }
  return result;
}

Token DecodeOneToken(const SyntheticLm& target, uint64_t stream, std::span<const Token> committed,
                     DecodeMode mode, Rng& rng) {
  const SparseDist dist = target.NextDist(stream, committed);
  return SampleToken(dist, mode, rng);
}

}  // namespace adaserve
