// Draft token trees (§2, Figure 4).
//
// A token tree is rooted at the request's last committed token; every other
// node is a speculated token, annotated with the draft model's conditional
// probability and the resulting approximated path probability
// f(v) = prod of conditionals along the root->v path (Eq. 7).
#ifndef ADASERVE_SRC_SPEC_TOKEN_TREE_H_
#define ADASERVE_SRC_SPEC_TOKEN_TREE_H_

#include <cstddef>
#include <vector>

#include "src/common/arena.h"
#include "src/common/types.h"

namespace adaserve {

using NodeId = int;
inline constexpr NodeId kRootNode = 0;
inline constexpr NodeId kInvalidNode = -1;

class TokenTree {
 public:
  struct Node {
    Token token = kInvalidToken;
    NodeId parent = kInvalidNode;
    // Draft conditional probability q(token | path to parent). 1.0 for root.
    double cond_prob = 1.0;
    // Approximated path probability f(v): product of conditionals. 1.0 for root.
    double path_prob = 1.0;
    int depth = 0;
    // Inline up to the typical beam width: building a tree allocates no
    // per-node child lists unless a node fans out unusually wide.
    SmallVector<NodeId, 4> children;
  };

  // Creates a tree containing only the root. `root_token` is the last
  // committed token (context anchor), not a speculated token.
  explicit TokenTree(Token root_token);

  // Adds a speculated token under `parent`. Requires parent to exist and
  // cond_prob in (0, 1]. Returns the new node's id.
  NodeId AddNode(NodeId parent, Token token, double cond_prob);

  int size() const { return static_cast<int>(nodes_.size()); }
  const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }

  // Maximum node depth (root = 0).
  int MaxDepth() const;

  // Tokens along the path from the root (exclusive) to `id` (inclusive).
  std::vector<Token> PathTokens(NodeId id) const;

  // Sum of path probabilities over a node subset; used by the TPOT
  // constraint (Eq. 5). Pass ids excluding the root.
  double SumPathProb(const std::vector<NodeId>& ids) const;

  // All non-root node ids ordered by descending path probability (ties by
  // shallower depth, then smaller id). A prefix of this order is always a
  // connected subtree (Appendix B): parents precede children because
  // conditionals are <= 1.
  std::vector<NodeId> NodesByPathProb() const;

  // True if `selected` (indexed by NodeId, root implicitly selected) forms a
  // connected subtree containing the root.
  bool IsConnectedSelection(const std::vector<char>& selected) const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_SPEC_TOKEN_TREE_H_
