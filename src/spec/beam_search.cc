#include "src/spec/beam_search.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"

namespace adaserve {
namespace {

struct Extension {
  NodeId parent;
  Token token;
  double cond_prob;
  double path_prob;
};

}  // namespace

TokenTree BuildCandidateTree(const DraftLm& draft, uint64_t stream,
                             std::span<const Token> committed, const BeamConfig& config) {
  ADASERVE_CHECK(config.depth >= 1) << "beam depth must be >= 1";
  ADASERVE_CHECK(config.width >= 1) << "beam width must be >= 1";
  const Token root_token = committed.empty() ? kInvalidToken : committed.back();
  TokenTree tree(root_token);

  std::vector<NodeId> frontier = {kRootNode};
  std::vector<Token> context(committed.begin(), committed.end());
  for (int step = 0; step < config.depth; ++step) {
    std::vector<Extension> extensions;
    extensions.reserve(frontier.size() * 8);
    for (NodeId node : frontier) {
      // Draft context = committed tokens + speculated path to this node.
      const std::vector<Token> path = tree.PathTokens(node);
      std::vector<Token> ctx = context;
      ctx.insert(ctx.end(), path.begin(), path.end());
      const SparseDist dist = draft.NextDist(stream, ctx);
      const double parent_path = tree.node(node).path_prob;
      for (const auto& e : dist.entries()) {
        extensions.push_back({node, e.token, e.prob, parent_path * e.prob});
      }
    }
    const size_t keep = std::min<size_t>(static_cast<size_t>(config.width), extensions.size());
    std::partial_sort(extensions.begin(), extensions.begin() + static_cast<long>(keep),
                      extensions.end(), [](const Extension& a, const Extension& b) {
                        if (a.path_prob != b.path_prob) {
                          return a.path_prob > b.path_prob;
                        }
                        if (a.parent != b.parent) {
                          return a.parent < b.parent;
                        }
                        return a.token < b.token;
                      });
    std::vector<NodeId> next_frontier;
    next_frontier.reserve(keep);
    for (size_t i = 0; i < keep; ++i) {
      const Extension& e = extensions[i];
      next_frontier.push_back(tree.AddNode(e.parent, e.token, e.cond_prob));
    }
    if (next_frontier.empty()) {
      break;
    }
    frontier = std::move(next_frontier);
  }
  return tree;
}

}  // namespace adaserve
