#include "src/harness/experiment.h"

namespace adaserve {
namespace {

LmConfig DefaultLmConfig(uint64_t seed) {
  LmConfig config;
  // Peaked next-token distributions: real instruction-tuned LLMs put ~80% of
  // the mass on the top token at serving temperatures, which is what makes
  // speculation pay off. zipf 3.0 over a 24-token support reproduces that.
  config.zipf_exponent = 3.0;
  config.support = 24;
  config.context_order = 3;
  config.seed = seed;
  return config;
}

}  // namespace

Setup LlamaSetup() {
  Setup setup;
  setup.label = "Llama-3.1-70B-Instruct";
  setup.target_profile = Llama31_70B();
  setup.draft_profile = Llama32_1B();
  setup.tensor_parallel = 4;
  setup.gpu = A100_80G();
  setup.lm_config = DefaultLmConfig(/*seed=*/71);
  setup.draft_config = DraftConfig{.fidelity = 0.85, .noise_seed = 0x5eed0071};
  return setup;
}

Setup QwenSetup() {
  Setup setup;
  setup.label = "Qwen2.5-32B-Instruct";
  setup.target_profile = Qwen25_32B();
  setup.draft_profile = Qwen25_05B();
  setup.tensor_parallel = 2;
  setup.gpu = A100_80G();
  setup.lm_config = DefaultLmConfig(/*seed=*/32);
  setup.draft_config = DraftConfig{.fidelity = 0.82, .noise_seed = 0x5eed0032};
  return setup;
}

Experiment::Experiment(const Setup& setup)
    : setup_(setup),
      target_(setup.lm_config),
      draft_(&target_, setup.draft_config),
      target_latency_(setup.target_profile, setup.gpu, setup.tensor_parallel),
      draft_latency_(setup.draft_profile, setup.gpu, /*tensor_parallel=*/1) {}

std::vector<CategorySpec> Experiment::Categories(const CategoryConfig& config) const {
  return DefaultCategories(BaselineLatency(), config);
}

std::vector<Request> Experiment::RealTraceWorkload(double duration, double mean_rps,
                                                   const WorkloadConfig& mix, uint64_t trace_seed,
                                                   const CategoryConfig& cat) const {
  TraceConfig trace;
  trace.duration = duration;
  trace.mean_rps = mean_rps;
  trace.seed = trace_seed;
  return BuildWorkload(Categories(cat), RealShapedArrivals(trace), mix);
}

std::unique_ptr<ArrivalStream> Experiment::RealTraceStream(double duration, double mean_rps,
                                                           const WorkloadConfig& mix,
                                                           uint64_t trace_seed,
                                                           const CategoryConfig& cat) const {
  RealTraceStreamConfig config;
  config.trace.duration = duration;
  config.trace.mean_rps = mean_rps;
  config.trace.seed = trace_seed;
  config.workload = mix;
  return MakeRealTraceStream(Categories(cat), config);
}

EngineResult Experiment::Run(Scheduler& scheduler, std::vector<Request> requests,
                             const EngineConfig& engine, int verify_budget,
                             int draft_budget) const {
  Engine e(&target_, &draft_, &target_latency_, &draft_latency_, engine);
  return e.Run(scheduler, std::move(requests), verify_budget, draft_budget);
}

EngineResult Experiment::Run(Scheduler& scheduler, ArrivalStream& stream,
                             const EngineConfig& engine, int verify_budget,
                             int draft_budget) const {
  Engine e(&target_, &draft_, &target_latency_, &draft_latency_, engine);
  return e.Run(scheduler, stream, verify_budget, draft_budget);
}

}  // namespace adaserve
