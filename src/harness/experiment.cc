#include "src/harness/experiment.h"

#include "src/common/logging.h"

namespace adaserve {
namespace {

LmConfig DefaultLmConfig(uint64_t seed) {
  LmConfig config;
  // Peaked next-token distributions: real instruction-tuned LLMs put ~80% of
  // the mass on the top token at serving temperatures, which is what makes
  // speculation pay off. zipf 3.0 over a 24-token support reproduces that.
  config.zipf_exponent = 3.0;
  config.support = 24;
  config.context_order = 3;
  config.seed = seed;
  return config;
}

}  // namespace

Setup LlamaSetup() {
  Setup setup;
  setup.label = "Llama-3.1-70B-Instruct";
  setup.target_profile = Llama31_70B();
  setup.draft_profile = Llama32_1B();
  setup.tensor_parallel = 4;
  setup.gpu = A100_80G();
  setup.lm_config = DefaultLmConfig(/*seed=*/71);
  setup.draft_config = DraftConfig{.fidelity = 0.85, .noise_seed = 0x5eed0071};
  return setup;
}

Setup QwenSetup() {
  Setup setup;
  setup.label = "Qwen2.5-32B-Instruct";
  setup.target_profile = Qwen25_32B();
  setup.draft_profile = Qwen25_05B();
  setup.tensor_parallel = 2;
  setup.gpu = A100_80G();
  setup.lm_config = DefaultLmConfig(/*seed=*/32);
  setup.draft_config = DraftConfig{.fidelity = 0.82, .noise_seed = 0x5eed0032};
  return setup;
}

Setup LlamaH100Tp8Setup() {
  Setup setup = LlamaSetup();
  setup.label = "Llama-3.1-70B-H100-TP8";
  setup.tensor_parallel = 8;
  setup.gpu = H100_80G();
  setup.draft_profile = Llama31_8B();
  // The 8B draft tracks the 70B target far better than the 1B one.
  setup.draft_config = DraftConfig{.fidelity = 0.93, .noise_seed = 0x5eed0071};
  return setup;
}

Setup LlamaTp8Setup() {
  Setup setup = LlamaSetup();
  setup.label = "Llama-3.1-70B-A100-TP8";
  setup.tensor_parallel = 8;
  return setup;
}

Setup LlamaDraftOffloadSetup() {
  Setup setup = LlamaSetup();
  setup.label = "Llama-3.1-70B-draft-offload";
  setup.draft_profile = Llama31_8B();
  setup.draft_gpu = H100_80G();
  setup.draft_config = DraftConfig{.fidelity = 0.93, .noise_seed = 0x5eed0071};
  return setup;
}

Experiment::Experiment(const Setup& setup)
    : setup_(setup),
      target_(setup.lm_config),
      draft_(&target_, setup.draft_config),
      target_latency_(setup.target_profile, setup.gpu, setup.tensor_parallel),
      draft_latency_(setup.draft_profile, setup.draft_gpu.value_or(setup.gpu),
                     setup.draft_tensor_parallel) {}

std::vector<CategorySpec> Experiment::Categories(const CategoryConfig& config) const {
  return DefaultCategories(BaselineLatency(), config);
}

std::vector<Request> Experiment::RealTraceWorkload(double duration, double mean_rps,
                                                   const WorkloadConfig& mix, uint64_t trace_seed,
                                                   const CategoryConfig& cat) const {
  TraceConfig trace;
  trace.duration = duration;
  trace.mean_rps = mean_rps;
  trace.seed = trace_seed;
  return BuildWorkload(Categories(cat), RealShapedArrivals(trace), mix);
}

std::unique_ptr<ArrivalStream> Experiment::RealTraceStream(double duration, double mean_rps,
                                                           const WorkloadConfig& mix,
                                                           uint64_t trace_seed,
                                                           const CategoryConfig& cat) const {
  RealTraceStreamConfig config;
  config.trace.duration = duration;
  config.trace.mean_rps = mean_rps;
  config.trace.seed = trace_seed;
  config.workload = mix;
  return MakeRealTraceStream(Categories(cat), config);
}

EngineResult Experiment::Run(Scheduler& scheduler, WorkloadSource workload,
                             const EngineConfig& engine, int verify_budget,
                             int draft_budget) const {
  Engine e(&target_, &draft_, &target_latency_, &draft_latency_, engine);
  return e.Run(scheduler, std::move(workload), verify_budget, draft_budget);
}

EngineResult Experiment::RunLegacyDrainLoop(Scheduler& scheduler, std::vector<Request> requests,
                                            const EngineConfig& engine, int verify_budget,
                                            int draft_budget) const {
  KvCache kv(target_latency_.KvCacheBytes(), target_latency_.model().KvBytesPerToken());
  RequestPool pool(&kv);
  Rng rng(engine.sampling_seed);

  ServingContext ctx;
  ctx.target = &target_;
  ctx.draft = &draft_;
  ctx.target_latency = &target_latency_;
  ctx.draft_latency = &draft_latency_;
  ctx.mode = engine.mode;
  ctx.verify_budget = verify_budget > 0 ? verify_budget : DeriveTokenBudget(target_latency_);
  ctx.draft_budget =
      draft_budget > 0 ? draft_budget : DeriveDraftBudget(target_latency_, draft_latency_);
  ctx.rng = &rng;

  EngineResult result;
  SimTime now = 0.0;
  size_t next = 0;
  long iterations = 0;
  while (next < requests.size() || pool.HasWork()) {
    ADASERVE_CHECK(++iterations <= engine.max_iterations) << "iteration budget exhausted";
    while (next < requests.size() && requests[next].arrival <= now) {
      pool.AddArrival(requests[next]);
      ++next;
    }
    pool.AdmitUpTo(engine.tick.max_active);
    result.peak_resident_requests = std::max(result.peak_resident_requests, pool.resident_count());
    if (pool.active().empty()) {
      ADASERVE_CHECK(pool.queued().empty()) << "admission deadlock";
      ADASERVE_CHECK(next < requests.size()) << "legacy loop stalled with no work";
      now = requests[next].arrival;
      continue;
    }
    const IterationRecord record = scheduler.Step(now, pool, ctx);
    ADASERVE_CHECK(record.duration > 0.0) << scheduler.name() << " made no progress";
    now += record.duration;
    result.iterations.push_back(record);
  }
  result.end_time = now;
  result.total_iterations = iterations;
  result.requests.assign(pool.requests().begin(), pool.requests().end());
  result.metrics = ComputeMetrics(std::span<const Request>(result.requests),
                                  std::span<const IterationRecord>(result.iterations), now);
  return result;
}

}  // namespace adaserve
