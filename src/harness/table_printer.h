// Fixed-width table formatting for bench output.
#ifndef ADASERVE_SRC_HARNESS_TABLE_PRINTER_H_
#define ADASERVE_SRC_HARNESS_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace adaserve {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double formatting ("12.34").
std::string Fmt(double value, int precision = 2);

// Percentage with one decimal ("83.6").
std::string FmtPct(double value);

}  // namespace adaserve

#endif  // ADASERVE_SRC_HARNESS_TABLE_PRINTER_H_
