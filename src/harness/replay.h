// Record/replay run artifacts: dump one engine run's every decision to a
// versioned artifact, then re-execute it byte-identically from the
// artifact alone — the NodeFz record/replay idea applied to serving.
//
// Recording attaches a RunRecorder (a TickTraceSink) to EngineConfig::
// trace_sink: the engine streams every arrival it pulls (the full
// immutable request, so the workload generator is not needed at replay
// time) and every progressing tick (the scheduler's IterationRecord plus
// per-tick arrival pulls and the async planner's verdict). The artifact
// additionally pins the engine configuration, system, setup id, and the
// run's canonical GoldenMetricsText fingerprint.
//
// Replaying rebuilds the experiment from the setup registry, feeds the
// recorded arrivals back through a MaterializedStream, re-runs under a
// fresh recorder, and diffs the new run against the artifact tick by
// tick: byte-identical metrics text on success, or a structured
// ReplayDivergence naming the first mismatching tick and field when the
// binary (or the artifact) has drifted.
//
// Artifact format: versioned line-oriented text ("adaserve_replay_schema:
// N" header; key: value configuration; one "a ..." line per arrival and
// one "t ..." line per tick with %.17g doubles so round trips are exact;
// the metrics block; an "end" sentinel). The schema version bumps on any
// field change — parsers reject unknown versions rather than guess.
#ifndef ADASERVE_SRC_HARNESS_REPLAY_H_
#define ADASERVE_SRC_HARNESS_REPLAY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/harness/golden.h"

namespace adaserve {

// Bumped on any artifact field change; parsers reject other versions.
// v2: tick lines carry the admission-control rejected/degraded counters.
inline constexpr int kReplaySchemaVersion = 2;

// A recorded run, self-contained up to the setup registry: everything
// needed to re-execute and everything needed to check the re-execution.
struct ReplayArtifact {
  int schema = kReplaySchemaVersion;
  // SystemName of the scheduler (SystemKindFromName resolves it back).
  std::string system;
  // Key into ReplaySetupById — full model/GPU setups are registry-resolved
  // rather than serialized.
  std::string setup_id;
  // Free-form provenance label ("golden/flash_crowd", a bench cell id...).
  std::string label;
  // The run's engine configuration (trace_sink excluded, of course).
  EngineConfig engine;
  int verify_budget = 0;
  int draft_budget = 0;
  // Every request the engine pulled, in pull order, immutable fields only.
  std::vector<Request> arrivals;
  // Every progressing tick, in order.
  std::vector<TickTraceEvent> ticks;
  // GoldenMetricsText of the recorded run — the byte-identity fingerprint.
  std::string metrics_text;
};

// The TickTraceSink that builds an artifact while a run executes. Attach
// to EngineConfig::trace_sink, run, then Finish with the run's result.
class RunRecorder final : public TickTraceSink {
 public:
  RunRecorder(SystemKind kind, std::string setup_id, std::string label,
              const EngineConfig& engine, int verify_budget = 0, int draft_budget = 0);

  void OnArrival(const Request& request) override;
  void OnTick(const TickTraceEvent& event) override;

  // Stamps the run's canonical metrics text and hands the artifact out.
  ReplayArtifact Finish(const EngineResult& result);

 private:
  SystemKind kind_;
  ReplayArtifact artifact_;
};

// --- serialization -----------------------------------------------------------

std::string SerializeReplayArtifact(const ReplayArtifact& artifact);
// Strict parse; false + line-numbered *error on malformed or
// version-mismatched input. Round trip is exact:
// Serialize(Parse(Serialize(a))) == Serialize(a).
bool ParseReplayArtifact(const std::string& text, ReplayArtifact* artifact, std::string* error);

bool WriteReplayArtifact(const std::string& path, const ReplayArtifact& artifact,
                         std::string* error);
bool ReadReplayArtifact(const std::string& path, ReplayArtifact* artifact, std::string* error);

// --- setup registry ----------------------------------------------------------

// Resolves a setup id recorded in an artifact: "golden", "llama", "qwen",
// "llama_h100_tp8", "llama_tp8", "llama_draft_offload". nullopt for an
// unknown id.
std::optional<Setup> ReplaySetupById(const std::string& setup_id);

// --- recording ---------------------------------------------------------------

struct RecordedRun {
  ReplayArtifact artifact;
  EngineResult result;
};

// Runs `kind` over `source` under `engine` with a recorder attached and
// returns artifact + result. `setup_id` must name `exp`'s setup in the
// registry (checked), or replay would silently run a different model.
RecordedRun RecordRun(const Experiment& exp, SystemKind kind, WorkloadSource source,
                      EngineConfig engine, const std::string& setup_id,
                      const std::string& label = "", int verify_budget = 0, int draft_budget = 0);

// Records the exact golden cell (scenario x mode) RunGoldenSystem runs:
// same workload, same engine config, same metrics — with the artifact on
// the side. Requires `exp` built from GoldenSetup() (setup id "golden").
RecordedRun RecordGoldenRun(const Experiment& exp, SystemKind kind,
                            const GoldenConfig& config = {},
                            GoldenScenario scenario = GoldenScenario::kRealTrace,
                            GoldenMode mode = GoldenMode::kTickNative);

struct RecordedClusterRun {
  // One artifact per replica, replica order; each replays standalone.
  std::vector<ReplayArtifact> replicas;
  ClusterResult result;
};

// Runs `system` over `stream` on the cluster described by `config` with a
// recorder attached to every replica engine. `setup_ids` parallels
// config.replicas and must name each replica's setup in the registry.
RecordedClusterRun RecordClusterRun(ClusterConfig config, SystemKind system,
                                    ArrivalStream& stream,
                                    const std::vector<std::string>& setup_ids,
                                    const std::string& label = "");

// --- replay ------------------------------------------------------------------

// First point where a replayed run departed from its artifact.
struct ReplayDivergence {
  // First mismatching tick index; -1 for run-level divergence (tick
  // count, metrics text, arrival mismatch).
  long tick = -1;
  // The field that differed, e.g. "record.committed_tokens".
  std::string field;
  std::string expected;
  std::string actual;

  // One-line human-readable description.
  std::string Summary() const;
};

struct ReplayOutcome {
  // True iff the replay matched the artifact byte-for-byte: every tick
  // field and the canonical metrics text.
  bool ok = false;
  // Set when !ok.
  std::optional<ReplayDivergence> divergence;
  // The replayed run's canonical metrics text.
  std::string metrics_text;
  EngineResult result;
};

// Re-executes `artifact` from its recorded arrivals alone and verifies
// the re-execution tick by tick. ADASERVE_CHECK-fails on an artifact
// naming an unknown system or setup (a parse-time concern, not a
// divergence).
ReplayOutcome ReplayRun(const ReplayArtifact& artifact);

}  // namespace adaserve

#endif  // ADASERVE_SRC_HARNESS_REPLAY_H_
