#include "src/harness/comparisons.h"

#include "src/baselines/admission_control.h"
#include "src/baselines/edf.h"
#include "src/baselines/fastserve.h"
#include "src/baselines/priority.h"
#include "src/baselines/sarathi.h"
#include "src/baselines/vllm.h"
#include "src/baselines/vllm_spec.h"
#include "src/baselines/vtc.h"
#include "src/common/logging.h"
#include "src/core/adaserve_scheduler.h"
#include "src/harness/sweep_runner.h"

namespace adaserve {

std::unique_ptr<Scheduler> MakeScheduler(SystemKind kind) {
  switch (kind) {
    case SystemKind::kAdaServe:
      return std::make_unique<AdaServeScheduler>();
    case SystemKind::kVllm:
      return std::make_unique<VllmScheduler>();
    case SystemKind::kSarathi:
      return std::make_unique<SarathiScheduler>();
    case SystemKind::kVllmSpec4:
      return std::make_unique<VllmSpecScheduler>(VllmSpecConfig{.spec_len = 4});
    case SystemKind::kVllmSpec6:
      return std::make_unique<VllmSpecScheduler>(VllmSpecConfig{.spec_len = 6});
    case SystemKind::kVllmSpec8:
      return std::make_unique<VllmSpecScheduler>(VllmSpecConfig{.spec_len = 8});
    case SystemKind::kVllmPriority:
      return std::make_unique<PriorityScheduler>();
    case SystemKind::kFastServe:
      return std::make_unique<FastServeScheduler>();
    case SystemKind::kVtc:
      return std::make_unique<VtcScheduler>();
    case SystemKind::kEdf:
      return std::make_unique<EdfScheduler>();
    case SystemKind::kEdfAdmission:
      return std::make_unique<AdmissionControlScheduler>();
  }
  ADASERVE_CHECK(false) << "unknown system kind";
  return nullptr;
}

std::string_view SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kAdaServe:
      return "AdaServe";
    case SystemKind::kVllm:
      return "vLLM";
    case SystemKind::kSarathi:
      return "Sarathi-Serve";
    case SystemKind::kVllmSpec4:
      return "vLLM-Spec(4)";
    case SystemKind::kVllmSpec6:
      return "vLLM-Spec(6)";
    case SystemKind::kVllmSpec8:
      return "vLLM-Spec(8)";
    case SystemKind::kVllmPriority:
      return "vLLM+Priority";
    case SystemKind::kFastServe:
      return "FastServe";
    case SystemKind::kVtc:
      return "VTC";
    case SystemKind::kEdf:
      return "EDF";
    case SystemKind::kEdfAdmission:
      return "EDF+AC";
  }
  return "?";
}

std::optional<SystemKind> SystemKindFromName(std::string_view name) {
  for (SystemKind kind :
       {SystemKind::kAdaServe, SystemKind::kVllm, SystemKind::kSarathi, SystemKind::kVllmSpec4,
        SystemKind::kVllmSpec6, SystemKind::kVllmSpec8, SystemKind::kVllmPriority,
        SystemKind::kFastServe, SystemKind::kVtc, SystemKind::kEdf,
        SystemKind::kEdfAdmission}) {
    if (SystemName(kind) == name) {
      return kind;
    }
  }
  return std::nullopt;
}

std::vector<SystemKind> MainComparisonSet() {
  return {SystemKind::kAdaServe,  SystemKind::kSarathi,   SystemKind::kVllm,
          SystemKind::kVllmSpec4, SystemKind::kVllmSpec6, SystemKind::kVllmSpec8,
          SystemKind::kEdf,       SystemKind::kEdfAdmission};
}

std::vector<SystemKind> MotivationSet() {
  return {SystemKind::kVllm, SystemKind::kSarathi, SystemKind::kVllmPriority,
          SystemKind::kFastServe, SystemKind::kVtc};
}

std::vector<ComparisonPoint> RunComparison(const Experiment& exp,
                                           const std::vector<SystemKind>& systems,
                                           const StreamFactory& make_stream,
                                           const EngineConfig& engine, int threads) {
  ADASERVE_CHECK(make_stream != nullptr) << "RunComparison needs a stream factory";
  // Each cell builds its own scheduler and stream; `exp` is shared but
  // immutable (the synthetic models and latency models are pure functions
  // of their configs).
  std::vector<std::function<EngineResult()>> tasks;
  tasks.reserve(systems.size());
  for (SystemKind kind : systems) {
    tasks.push_back([&exp, &make_stream, &engine, kind] {
      auto scheduler = MakeScheduler(kind);
      auto stream = make_stream();
      ADASERVE_CHECK(stream != nullptr) << "stream factory returned null";
      return exp.Run(*scheduler, *stream, engine);
    });
  }
  SweepRunner runner(threads);
  std::vector<Timed<EngineResult>> timed = runner.Map(tasks);

  std::vector<ComparisonPoint> points;
  points.reserve(systems.size());
  for (size_t i = 0; i < systems.size(); ++i) {
    points.push_back({systems[i], std::move(timed[i].value), timed[i].wall_clock_s});
  }
  return points;
}

EngineConfig ContinuousTickConfig() {
  return EngineConfig{};  // Tick-native is the default mode.
}

EngineConfig BoundaryTickConfig() {
  EngineConfig engine;
  engine.tick = TickPolicy::Boundary();
  return engine;
}

EngineConfig AsyncTickConfig() {
  EngineConfig engine;
  engine.tick = TickPolicy::Async();
  return engine;
}

}  // namespace adaserve
