// Experiment harness: bundles a Table-1 setup (models, parallelism, GPU)
// with the synthetic LM pair and latency models so benches and examples can
// run schedulers over workloads with one call.
#ifndef ADASERVE_SRC_HARNESS_EXPERIMENT_H_
#define ADASERVE_SRC_HARNESS_EXPERIMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/hw/budget.h"
#include "src/serve/engine.h"
#include "src/workload/generator.h"

namespace adaserve {

// One evaluation setup (a row of Table 1).
struct Setup {
  std::string label;
  ModelProfile target_profile;
  ModelProfile draft_profile;
  int tensor_parallel = 1;
  GpuSpec gpu;
  // Draft deployment. Unset draft_gpu: the draft is colocated on the
  // target's GPU type (the classic Table-1 shape). Set: the draft runs on
  // its own dedicated device — the cluster layer's draft-on-separate-GPU
  // replica shape, which makes a bigger (higher-fidelity) draft
  // affordable because its decode time never contends with verification.
  std::optional<GpuSpec> draft_gpu;
  int draft_tensor_parallel = 1;
  LmConfig lm_config;
  DraftConfig draft_config;
};

// Llama-3.1-70B-Instruct, 4-way TP on 4x A100-80G; Llama-3.2-1B draft.
Setup LlamaSetup();
// Qwen2.5-32B-Instruct, 2-way TP on 2x A100-80G; Qwen2.5-0.5B draft.
Setup QwenSetup();

// Heterogeneous cluster replica shapes (ROADMAP cluster item). All three
// serve the same Llama-3.1-70B target as LlamaSetup, so one workload can
// be routed across any mix of them:
//
// 8-way TP on 8x H100-80G with the 8B strong draft colocated — the
// fleet's spec-decode-strong fast replica.
Setup LlamaH100Tp8Setup();
// 8-way TP on 8x A100-80G, 1B draft (capacity via TP width alone).
Setup LlamaTp8Setup();
// 4-way TP on 4x A100-80G with the 8B strong draft offloaded to a
// dedicated H100 (draft-on-separate-GPU).
Setup LlamaDraftOffloadSetup();

// Instantiated setup: owns the models and latency models.
class Experiment {
 public:
  explicit Experiment(const Setup& setup);

  const Setup& setup() const { return setup_; }
  const SyntheticLm& target() const { return target_; }
  const DraftLm& draft() const { return draft_; }
  const LatencyModel& target_latency() const { return target_latency_; }
  const LatencyModel& draft_latency() const { return draft_latency_; }

  // Unloaded single-request decode latency (Table 2's baseline).
  double BaselineLatency() const { return target_latency_.BaselineDecodeLatency(); }

  // Table 2 resolved against this setup's baseline latency.
  std::vector<CategorySpec> Categories(const CategoryConfig& config = {}) const;

  // Convenience workload builders.
  std::vector<Request> RealTraceWorkload(double duration, double mean_rps,
                                         const WorkloadConfig& mix = {},
                                         uint64_t trace_seed = 42,
                                         const CategoryConfig& cat = {}) const;

  // Lazy counterpart of RealTraceWorkload: draining the stream reproduces
  // the vector exactly, but the engine can consume it without materializing.
  std::unique_ptr<ArrivalStream> RealTraceStream(double duration, double mean_rps,
                                                 const WorkloadConfig& mix = {},
                                                 uint64_t trace_seed = 42,
                                                 const CategoryConfig& cat = {}) const;

  // Runs one scheduler over a workload — an arrival-sorted request vector
  // or a live ArrivalStream (single-pass; build a fresh one per run), both
  // of which convert to WorkloadSource implicitly — and returns metrics +
  // iteration log. The engine behavior (tick protocol included) comes
  // entirely from `engine`; presets live in comparisons.h
  // (ContinuousTickConfig / BoundaryTickConfig / AsyncTickConfig).
  EngineResult Run(Scheduler& scheduler, WorkloadSource workload, const EngineConfig& engine = {},
                   int verify_budget = 0, int draft_budget = 0) const;

  // Reference drain loop — the pre-tick engine: inject due arrivals,
  // boundary admission (pool.AdmitUpTo), one Scheduler::Step per
  // iteration. Kept as the independent oracle for tick_equivalence_test;
  // Engine itself only speaks the Tick protocol (BoundaryTickConfig is
  // the TickPolicy preset reproducing this loop byte-for-byte). Honors
  // the admission-relevant EngineConfig fields (tick.max_active,
  // sampling_seed, mode, max_iterations); tick-native fields are ignored.
  EngineResult RunLegacyDrainLoop(Scheduler& scheduler, std::vector<Request> requests,
                                  const EngineConfig& engine = {}, int verify_budget = 0,
                                  int draft_budget = 0) const;

 private:
  Setup setup_;
  SyntheticLm target_;
  DraftLm draft_;
  LatencyModel target_latency_;
  LatencyModel draft_latency_;
};

}  // namespace adaserve

#endif  // ADASERVE_SRC_HARNESS_EXPERIMENT_H_
