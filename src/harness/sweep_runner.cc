#include "src/harness/sweep_runner.h"

#include <thread>

#include "src/common/logging.h"

namespace adaserve {

SweepRunner::SweepRunner(int threads) {
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw > 0 ? static_cast<int>(hw) : 1;
  } else {
    threads_ = threads;
  }
}

std::vector<SweepCellResult> RunSystemGrid(SweepRunner& runner,
                                           const std::vector<SystemKind>& systems,
                                           const std::vector<double>& xs,
                                           const SweepCellFn& run_cell) {
  ADASERVE_CHECK(run_cell != nullptr) << "RunSystemGrid needs a cell runner";
  std::vector<std::function<EngineResult()>> tasks;
  tasks.reserve(xs.size() * systems.size());
  for (double x : xs) {
    for (SystemKind system : systems) {
      tasks.push_back([&run_cell, system, x] { return run_cell(system, x); });
    }
  }
  std::vector<Timed<EngineResult>> timed = runner.Map(tasks);

  std::vector<SweepCellResult> cells;
  cells.reserve(timed.size());
  size_t i = 0;
  for (double x : xs) {
    for (SystemKind system : systems) {
      cells.push_back({system, x, std::move(timed[i].value), timed[i].wall_clock_s});
      ++i;
    }
  }
  return cells;
}

std::vector<SweepCellResult> RunSetupSweep(SweepRunner& runner, const Setup& setup,
                                           const std::vector<SystemKind>& systems,
                                           const std::vector<double>& xs,
                                           const SweepWorkloadFn& make_workload,
                                           const EngineConfig& engine) {
  ADASERVE_CHECK(make_workload != nullptr) << "RunSetupSweep needs a workload factory";
  return RunSystemGrid(runner, systems, xs,
                       [&setup, &make_workload, &engine](SystemKind system, double x) {
                         const Experiment exp(setup);
                         std::vector<Request> workload = make_workload(exp, x);
                         auto scheduler = MakeScheduler(system);
                         return exp.Run(*scheduler, std::move(workload), engine);
                       });
}

std::vector<SweepCellResult> RunSetupStreamSweep(SweepRunner& runner, const Setup& setup,
                                                 const std::vector<SystemKind>& systems,
                                                 const std::vector<double>& xs,
                                                 const SweepStreamFn& make_stream,
                                                 const EngineConfig& engine,
                                                 size_t prefetch_depth) {
  ADASERVE_CHECK(make_stream != nullptr) << "RunSetupStreamSweep needs a stream factory";
  return RunSystemGrid(
      runner, systems, xs,
      [&setup, &make_stream, &engine, prefetch_depth](SystemKind system, double x) {
        const Experiment exp(setup);
        std::unique_ptr<ArrivalStream> stream = make_stream(exp, x);
        if (prefetch_depth > 0) {
          stream = std::make_unique<PrefetchingArrivalStream>(std::move(stream), prefetch_depth);
        }
        auto scheduler = MakeScheduler(system);
        return exp.Run(*scheduler, *stream, engine);
      });
}

std::vector<SeedShardCell> RunSeedShardedSweep(SweepRunner& runner, const Setup& setup,
                                               const std::vector<SystemKind>& systems,
                                               const std::vector<double>& xs,
                                               const std::vector<uint64_t>& seeds,
                                               const SeedWorkloadFn& make_workload,
                                               const EngineConfig& engine) {
  ADASERVE_CHECK(make_workload != nullptr) << "RunSeedShardedSweep needs a workload factory";
  ADASERVE_CHECK(!seeds.empty()) << "RunSeedShardedSweep needs at least one seed";
  // One task per (x, system, seed) shard, x-major like RunSystemGrid so
  // sharded and unsharded sweeps submit cells in the same order.
  std::vector<std::function<Metrics()>> tasks;
  tasks.reserve(xs.size() * systems.size() * seeds.size());
  for (double x : xs) {
    for (SystemKind system : systems) {
      for (uint64_t seed : seeds) {
        tasks.push_back([&setup, &make_workload, &engine, system, x, seed] {
          const Experiment exp(setup);
          std::vector<Request> workload = make_workload(exp, x, seed);
          auto scheduler = MakeScheduler(system);
          return exp.Run(*scheduler, std::move(workload), engine).metrics;
        });
      }
    }
  }
  std::vector<Timed<Metrics>> timed = runner.Map(tasks);

  std::vector<SeedShardCell> cells;
  cells.reserve(xs.size() * systems.size());
  size_t i = 0;
  for (double x : xs) {
    for (SystemKind system : systems) {
      SeedShardCell cell;
      cell.system = system;
      cell.x = x;
      cell.seeds = seeds;
      cell.per_seed.reserve(seeds.size());
      // Aggregation runs here, in seed order, regardless of which worker
      // finished first — thread count cannot perturb the accumulators.
      for (size_t s = 0; s < seeds.size(); ++s, ++i) {
        const Metrics& m = timed[i].value;
        cell.goodput_tps.Add(m.GoodputTps());
        cell.attainment_pct.Add(m.AttainmentPct());
        cell.throughput_tps.Add(m.ThroughputTps());
        cell.wall_clock_s += timed[i].wall_clock_s;
        cell.per_seed.push_back(std::move(timed[i].value));
      }
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

}  // namespace adaserve
