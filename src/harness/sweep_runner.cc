#include "src/harness/sweep_runner.h"

#include <thread>

#include "src/common/logging.h"

namespace adaserve {

SweepRunner::SweepRunner(int threads) {
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw > 0 ? static_cast<int>(hw) : 1;
  } else {
    threads_ = threads;
  }
}

std::vector<SweepCellResult> RunSystemGrid(SweepRunner& runner,
                                           const std::vector<SystemKind>& systems,
                                           const std::vector<double>& xs,
                                           const SweepCellFn& run_cell) {
  ADASERVE_CHECK(run_cell != nullptr) << "RunSystemGrid needs a cell runner";
  std::vector<std::function<EngineResult()>> tasks;
  tasks.reserve(xs.size() * systems.size());
  for (double x : xs) {
    for (SystemKind system : systems) {
      tasks.push_back([&run_cell, system, x] { return run_cell(system, x); });
    }
  }
  std::vector<Timed<EngineResult>> timed = runner.Map(tasks);

  std::vector<SweepCellResult> cells;
  cells.reserve(timed.size());
  size_t i = 0;
  for (double x : xs) {
    for (SystemKind system : systems) {
      cells.push_back({system, x, std::move(timed[i].value), timed[i].wall_clock_s});
      ++i;
    }
  }
  return cells;
}

std::vector<SweepCellResult> RunSetupSweep(SweepRunner& runner, const Setup& setup,
                                           const std::vector<SystemKind>& systems,
                                           const std::vector<double>& xs,
                                           const SweepWorkloadFn& make_workload,
                                           const EngineConfig& engine) {
  ADASERVE_CHECK(make_workload != nullptr) << "RunSetupSweep needs a workload factory";
  return RunSystemGrid(runner, systems, xs,
                       [&setup, &make_workload, &engine](SystemKind system, double x) {
                         const Experiment exp(setup);
                         std::vector<Request> workload = make_workload(exp, x);
                         auto scheduler = MakeScheduler(system);
                         return exp.Run(*scheduler, std::move(workload), engine);
                       });
}

}  // namespace adaserve
