#include "src/harness/report.h"

#include "src/common/types.h"

namespace adaserve {

MetricsCsvWriter::MetricsCsvWriter(std::ostream& os, std::string_view x_name) : os_(os) {
  os_ << "system," << x_name
      << ",attainment_pct,goodput_tps,throughput_tps,mean_accepted,cat1_pct,cat2_pct,cat3_pct,"
         "makespan_s\n";
}

void MetricsCsvWriter::AddRow(std::string_view system, double x, const Metrics& metrics) {
  os_ << system << ',' << x << ',' << metrics.AttainmentPct() << ',' << metrics.GoodputTps()
      << ',' << metrics.ThroughputTps() << ',' << metrics.mean_accepted;
  for (const CategoryMetrics& cat : metrics.per_category) {
    os_ << ',' << cat.AttainmentPct();
  }
  os_ << ',' << metrics.makespan << '\n';
}

void WriteRequestCsv(std::ostream& os, std::span<const Request> requests) {
  os << "id,category,arrival_s,prompt_len,output_len,tpot_slo_ms,avg_tpot_ms,ttft_ms,attained,"
        "verifications,accepted_tokens,verified_tokens\n";
  for (const Request& req : requests) {
    os << req.id << ',' << req.category << ',' << req.arrival << ',' << req.prompt_len << ','
       << req.output_len() << ',' << ToMs(req.tpot_slo) << ',' << ToMs(req.AvgTpot()) << ','
       << ToMs(req.first_token_time - req.arrival) << ',' << (req.Attained() ? 1 : 0) << ','
       << req.verifications << ',' << req.accepted_tokens << ',' << req.verified_tokens << '\n';
  }
}

void WriteIterationCsv(std::ostream& os, std::span<const IterationRecord> iterations) {
  os << "duration_ms,spec_ms,select_ms,verify_ms,prefill_ms,prefill_tokens,decode_requests,"
        "verified_tokens,committed_tokens\n";
  for (const IterationRecord& rec : iterations) {
    os << ToMs(rec.duration) << ',' << ToMs(rec.spec_time) << ',' << ToMs(rec.select_time) << ','
       << ToMs(rec.verify_time) << ',' << ToMs(rec.prefill_time) << ',' << rec.prefill_tokens
       << ',' << rec.decode_requests << ',' << rec.verified_tokens << ','
       << rec.committed_tokens << '\n';
  }
}

}  // namespace adaserve
