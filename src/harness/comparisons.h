// Factory for the serving systems compared in the paper's evaluation.
#ifndef ADASERVE_SRC_HARNESS_COMPARISONS_H_
#define ADASERVE_SRC_HARNESS_COMPARISONS_H_

#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "src/harness/experiment.h"
#include "src/serve/scheduler.h"

namespace adaserve {

enum class SystemKind {
  kAdaServe,
  kVllm,
  kSarathi,
  kVllmSpec4,
  kVllmSpec6,
  kVllmSpec8,
  kVllmPriority,
  kFastServe,
  kVtc,
  kEdf,
  kEdfAdmission,
};

std::unique_ptr<Scheduler> MakeScheduler(SystemKind kind);
std::string_view SystemName(SystemKind kind);

// Inverse of SystemName (exact match); nullopt for an unknown name. The
// replay harness resolves recorded artifacts' system field through this.
std::optional<SystemKind> SystemKindFromName(std::string_view name);

// Systems of the end-to-end comparison (Figs. 8-12, 14):
// AdaServe, Sarathi-Serve, vLLM, vLLM-Spec(4/6/8), plus the
// deadline-theoretic baselines EDF and EDF+AC (utilization-bound
// admission control).
std::vector<SystemKind> MainComparisonSet();

// Systems of the motivation study (Fig. 1): vLLM, vLLM+chunked-prefill
// (Sarathi), vLLM+Priority, FastServe, VTC.
std::vector<SystemKind> MotivationSet();

// Builds a fresh arrival stream for one run. Streams are single-pass, so
// multi-system comparisons need one instance per system; a factory keeps
// every run fed from an identical (same-seed) stream.
using StreamFactory = std::function<std::unique_ptr<ArrivalStream>()>;

struct ComparisonPoint {
  SystemKind kind;
  EngineResult result;
  // Wall-clock seconds this system's run took (its task's own compute
  // time when the comparison ran parallel).
  double wall_clock_s = 0.0;
};

// Runs every system in `systems` over its own identical stream from
// `make_stream`, feeding the engine lazily. With threads > 1 the systems
// run concurrently across a SweepRunner — `make_stream` must then be
// callable from multiple threads at once (every provided factory is: it
// only builds a fresh seeded stream) — and results come back in `systems`
// order with identical metrics; threads == 1 is the exact historical
// serial path, threads == 0 resolves to hardware_concurrency.
std::vector<ComparisonPoint> RunComparison(const Experiment& exp,
                                           const std::vector<SystemKind>& systems,
                                           const StreamFactory& make_stream,
                                           const EngineConfig& engine = {}, int threads = 1);

// Engine config of the tick-native continuous-batching mode: mid-tick
// admission, kBurst prefill cap, bounded evict-for-admission, and the
// scheduler's own admission-priority default. Since tick-native became
// the serving default this is simply EngineConfig{}; it is kept as a
// named constructor for call sites that want the mode to be explicit.
EngineConfig ContinuousTickConfig();

// Engine config of the legacy drain-style boundary mode: admission only
// at tick boundaries, FIFO, no eviction — byte-identical to the
// historical engine loop and the legacy golden corpus (tests/golden/
// files without the tick_ prefix). tick_equivalence_test pins it against
// Experiment::RunLegacyDrainLoop.
EngineConfig BoundaryTickConfig();

// Engine config of the async tick pipeline: tick-native continuous
// batching with the planner stage on (TickPolicy::Async) — mid-tick
// admission and prefill chunking are precomputed on a planner thread
// during the decode phase and reconciled at phase-A end. Metrics are
// byte-identical to ContinuousTickConfig; async_tick_equivalence_test
// pins it against the golden corpus.
EngineConfig AsyncTickConfig();

}  // namespace adaserve

#endif  // ADASERVE_SRC_HARNESS_COMPARISONS_H_
