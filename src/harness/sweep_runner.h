// Parallel sweep execution engine for the bench/figure harness.
//
// A sweep is a grid of (system × sweep-point) cells, each an independent
// deterministic simulation. SweepRunner fans the cells out over a
// ThreadPool and reassembles results in grid order, so the output — and,
// because every cell builds its own Experiment, workload, and scheduler
// from scratch, every metric byte — is identical at any thread count.
// tests/sweep_parallel_equivalence_test.cc pins threads=1 ≡ threads=4
// with the same GoldenMetricsText machinery that pins the golden
// baselines.
//
// Thread-safety contract for cell callbacks: a cell must not touch
// mutable state shared with other cells. The helpers below enforce this
// by constructing all simulator state (Experiment, workload, scheduler)
// inside the cell task; custom cells passed to Map must do the same.
#ifndef ADASERVE_SRC_HARNESS_SWEEP_RUNNER_H_
#define ADASERVE_SRC_HARNESS_SWEEP_RUNNER_H_

#include <algorithm>
#include <chrono>
#include <functional>
#include <future>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/common/thread_pool.h"
#include "src/harness/comparisons.h"
#include "src/harness/experiment.h"
#include "src/workload/prefetch_stream.h"

namespace adaserve {

// A task result annotated with the wall-clock seconds the task itself
// consumed (its own compute time, roughly thread-count independent).
template <typename T>
struct Timed {
  T value;
  double wall_clock_s = 0.0;
};

class SweepRunner {
 public:
  // threads == 0 resolves to std::thread::hardware_concurrency().
  // threads == 1 runs every task inline on the calling thread in
  // submission order — exactly the historical serial path.
  explicit SweepRunner(int threads = 0);

  int threads() const { return threads_; }

  // Wall-clock seconds spent inside Map calls so far (the figure's total
  // harness time, what BenchJson records as the "harness / total" row).
  double total_wall_clock_s() const { return total_wall_clock_s_; }

  // Runs all tasks across the pool and returns their results in input
  // order regardless of completion order. If a task throws, the first
  // (input-order) exception is rethrown in the caller after every task
  // finished or was drained.
  template <typename T>
  std::vector<Timed<T>> Map(const std::vector<std::function<T()>>& tasks) {
    const auto sweep_start = std::chrono::steady_clock::now();
    std::vector<Timed<T>> results;
    results.reserve(tasks.size());
    {
      // Never spin up more workers than there are tasks.
      const int workers =
          threads_ <= 1 ? 0 : static_cast<int>(std::min<size_t>(
                                  static_cast<size_t>(threads_), tasks.size()));
      ThreadPool pool(workers);
      std::vector<std::future<Timed<T>>> futures;
      futures.reserve(tasks.size());
      for (const std::function<T()>& task : tasks) {
        futures.push_back(pool.Submit([&task] {
          const auto start = std::chrono::steady_clock::now();
          Timed<T> timed{task(), 0.0};
          timed.wall_clock_s = SecondsSince(start);
          return timed;
        }));
      }
      for (std::future<Timed<T>>& future : futures) {
        results.push_back(future.get());
      }
    }
    total_wall_clock_s_ += SecondsSince(sweep_start);
    return results;
  }

 private:
  static double SecondsSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }

  int threads_ = 1;
  double total_wall_clock_s_ = 0.0;
};

// One finished cell of a system × sweep-point grid.
struct SweepCellResult {
  SystemKind system;
  double x = 0.0;
  EngineResult result;
  double wall_clock_s = 0.0;
};

// Builds and runs one cell from scratch. Called concurrently from pool
// workers: everything the simulation touches must be task-local.
using SweepCellFn = std::function<EngineResult(SystemKind system, double x)>;

// Fans out the full xs × systems grid through `runner` and returns
// results x-major (for each x, every system) — the serial benches' print
// order.
std::vector<SweepCellResult> RunSystemGrid(SweepRunner& runner,
                                           const std::vector<SystemKind>& systems,
                                           const std::vector<double>& xs,
                                           const SweepCellFn& run_cell);

// Workload for one sweep point, built on the cell's own Experiment.
// Called concurrently; must only read `exp` and its captures.
using SweepWorkloadFn = std::function<std::vector<Request>(const Experiment& exp, double x)>;

// The standard bench cell: a fresh Experiment(setup), a fresh workload
// from `make_workload`, and a fresh MakeScheduler(system) per cell, so
// no simulator state crosses task boundaries.
std::vector<SweepCellResult> RunSetupSweep(SweepRunner& runner, const Setup& setup,
                                           const std::vector<SystemKind>& systems,
                                           const std::vector<double>& xs,
                                           const SweepWorkloadFn& make_workload,
                                           const EngineConfig& engine = {});

// Arrival stream of one sweep point, built on the cell's own Experiment.
// Called concurrently; must only read `exp` and its captures. Streams are
// single-pass, so the factory must build a fresh stream per call.
using SweepStreamFn =
    std::function<std::unique_ptr<ArrivalStream>(const Experiment& exp, double x)>;

// Stream-based bench cell: RunSetupSweep without the materialized trace.
// The cell's workload is generated lazily and — when prefetch_depth > 0 —
// on a per-cell producer thread overlapped with serving
// (PrefetchingArrivalStream), so generation cost leaves the serving
// loop's critical path. Metrics are byte-identical to the vector path
// (streaming_equivalence_test) and independent of prefetch_depth
// (prefetch_stream_test); depth 0 consumes the stream inline with no
// producer thread.
std::vector<SweepCellResult> RunSetupStreamSweep(
    SweepRunner& runner, const Setup& setup, const std::vector<SystemKind>& systems,
    const std::vector<double>& xs, const SweepStreamFn& make_stream,
    const EngineConfig& engine = {}, size_t prefetch_depth = kDefaultPrefetchDepth);

// --- per-seed sharding (variance studies) ---

// One (system × x) cell fanned over N trace seeds. Per-shard metrics stay
// in seed order; the headline metrics aggregate across shards with
// RunningStat (mean/stddev), accumulated in seed order so every value —
// including the float-order-sensitive stddev — is identical at any
// thread count.
struct SeedShardCell {
  SystemKind system;
  double x = 0.0;
  std::vector<uint64_t> seeds;
  // Full metrics of each shard, seed order (same indexing as `seeds`).
  std::vector<Metrics> per_seed;
  RunningStat goodput_tps;
  RunningStat attainment_pct;
  RunningStat throughput_tps;
  // Sum of the shard tasks' own compute seconds.
  double wall_clock_s = 0.0;

  // Cross-seed error bars: Bessel-corrected sample stddev of the headline
  // metrics. Seeds are a small sample of the trace-randomness population,
  // so the population Stddev() would understate the spread.
  double GoodputErrTps() const { return goodput_tps.SampleStddev(); }
  double AttainmentErrPct() const { return attainment_pct.SampleStddev(); }
  double ThroughputErrTps() const { return throughput_tps.SampleStddev(); }
};

// Workload of one (x, seed) shard, built on the shard's own Experiment.
// Called concurrently; must only read `exp` and its captures.
using SeedWorkloadFn =
    std::function<std::vector<Request>(const Experiment& exp, double x, uint64_t seed)>;

// Fans the full systems × xs × seeds grid out through `runner` — every
// shard an independent task with its own Experiment, workload, and
// scheduler, exactly like RunSetupSweep cells — and reassembles per-cell
// aggregates x-major (systems inner, seeds innermost). `seeds` must be
// non-empty; with a single seed each cell's lone shard is byte-identical
// to the corresponding RunSetupSweep cell for that seed (pinned by
// tests/sweep_parallel_equivalence_test.cc).
std::vector<SeedShardCell> RunSeedShardedSweep(SweepRunner& runner, const Setup& setup,
                                               const std::vector<SystemKind>& systems,
                                               const std::vector<double>& xs,
                                               const std::vector<uint64_t>& seeds,
                                               const SeedWorkloadFn& make_workload,
                                               const EngineConfig& engine = {});

}  // namespace adaserve

#endif  // ADASERVE_SRC_HARNESS_SWEEP_RUNNER_H_
