// Machine-readable experiment output: CSV writers for run metrics and
// per-request records, so sweeps can be post-processed/plotted outside the
// binaries.
#ifndef ADASERVE_SRC_HARNESS_REPORT_H_
#define ADASERVE_SRC_HARNESS_REPORT_H_

#include <ostream>
#include <span>
#include <string_view>

#include "src/serve/engine.h"

namespace adaserve {

// One row per (system, x) sweep point: attainment, goodput, acceptance and
// per-category attainment.
class MetricsCsvWriter {
 public:
  // Writes the header. `x_name` labels the swept knob (e.g. "rps").
  MetricsCsvWriter(std::ostream& os, std::string_view x_name);

  void AddRow(std::string_view system, double x, const Metrics& metrics);

 private:
  std::ostream& os_;
};

// One row per finished request: ids, category, lengths, timestamps, TPOT,
// attainment, speculation counters.
void WriteRequestCsv(std::ostream& os, std::span<const Request> requests);

// One row per iteration of the engine log: duration + breakdown.
void WriteIterationCsv(std::ostream& os, std::span<const IterationRecord> iterations);

}  // namespace adaserve

#endif  // ADASERVE_SRC_HARNESS_REPORT_H_
