#include "src/harness/golden.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/workload/categories.h"

namespace adaserve {
namespace {

// Fixed-precision float formatting so the canonical text is stable: the
// simulation is deterministic, so equal runs produce byte-equal text.
std::string FmtFixed(double v, int digits = 6) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace

Setup GoldenSetup() {
  Setup setup = QwenSetup();
  setup.lm_config.vocab_size = 2000;
  setup.lm_config.support = 8;
  return setup;
}

std::string GoldenModePrefix(GoldenMode mode) {
  return mode == GoldenMode::kTickNative ? "tick_" : "";
}

std::string GoldenScenarioPrefix(GoldenScenario scenario) {
  switch (scenario) {
    case GoldenScenario::kRealTrace:
      return "";
    case GoldenScenario::kBursty:
      return "bursty_";
    case GoldenScenario::kDiurnal:
      return "diurnal_";
    case GoldenScenario::kFlashCrowd:
      return "flash_";
    case GoldenScenario::kTenantFlood:
      return "flood_";
    case GoldenScenario::kLongPromptPoison:
      return "hol_";
    case GoldenScenario::kCorrelatedBursts:
      return "corr_";
  }
  return "";
}

std::string GoldenCell::Filename() const {
  return GoldenModePrefix(mode) + GoldenScenarioPrefix(scenario) + GoldenFileSlug(kind) + ".txt";
}

std::vector<GoldenCell> AllGoldenCells() {
  std::vector<GoldenCell> cells;
  const std::vector<SystemKind> systems = MainComparisonSet();
  // The boundary corpus is the frozen legacy reference: it pins the
  // historical drain loop for the systems that existed when it was
  // recorded. Later systems (the deadline-theoretic baselines) are
  // tick-native designs and join the tick_ corpus only.
  const std::vector<SystemKind> boundary_systems = {
      SystemKind::kAdaServe,  SystemKind::kSarathi,   SystemKind::kVllm,
      SystemKind::kVllmSpec4, SystemKind::kVllmSpec6, SystemKind::kVllmSpec8};
  // The historical corpus: both modes across the original scenarios.
  for (GoldenScenario scenario :
       {GoldenScenario::kRealTrace, GoldenScenario::kBursty, GoldenScenario::kDiurnal}) {
    for (SystemKind kind : systems) {
      cells.push_back({kind, scenario, GoldenMode::kTickNative});
    }
    for (SystemKind kind : boundary_systems) {
      cells.push_back({kind, scenario, GoldenMode::kBoundary});
    }
  }
  // The stress corpus: tick-native only (the boundary corpus is the
  // frozen legacy reference).
  for (GoldenScenario scenario :
       {GoldenScenario::kFlashCrowd, GoldenScenario::kTenantFlood,
        GoldenScenario::kLongPromptPoison, GoldenScenario::kCorrelatedBursts}) {
    for (SystemKind kind : systems) {
      cells.push_back({kind, scenario, GoldenMode::kTickNative});
    }
  }
  // VTC under the adversarial flood: the fair-queuing baseline the flood
  // scenario exists to stress.
  cells.push_back({SystemKind::kVtc, GoldenScenario::kTenantFlood, GoldenMode::kTickNative});
  return cells;
}

std::unique_ptr<ArrivalStream> MakeGoldenStream(const Experiment& exp, GoldenScenario scenario,
                                                const GoldenConfig& config) {
  switch (scenario) {
    case GoldenScenario::kBursty: {
      // ON/OFF MMPP: quiet 1 rps baseline with ~1 s bursts at 8 rps, mean
      // rate comparable to the real-trace golden so runtimes match.
      MmppStreamConfig bursty;
      bursty.mmpp.state_rps = {1.0, 8.0};
      bursty.mmpp.mean_sojourn_s = {2.0, 1.0};
      bursty.duration = config.duration_s;
      bursty.trace_seed = config.trace_seed;
      return MakeMmppStream(exp.Categories(), bursty);
    }
    case GoldenScenario::kDiurnal: {
      // One compressed "day" per run: the peak lands mid-trace and the
      // trough bottoms out at 20% of the mean rate.
      DiurnalStreamConfig diurnal;
      diurnal.diurnal.period_s = config.duration_s;
      diurnal.diurnal.peak_phase = 0.55;
      diurnal.diurnal.amplitude = 0.8;
      diurnal.duration = config.duration_s;
      diurnal.mean_rps = config.mean_rps;
      diurnal.trace_seed = config.trace_seed;
      return MakeDiurnalStream(exp.Categories(), diurnal);
    }
    case GoldenScenario::kFlashCrowd:
      return MakeStressStream(exp.Categories(), StressScenario::kFlashCrowd, config.duration_s,
                              config.trace_seed);
    case GoldenScenario::kTenantFlood:
      return MakeStressStream(exp.Categories(), StressScenario::kTenantFlood, config.duration_s,
                              config.trace_seed);
    case GoldenScenario::kLongPromptPoison:
      return MakeStressStream(exp.Categories(), StressScenario::kLongPromptPoison,
                              config.duration_s, config.trace_seed);
    case GoldenScenario::kCorrelatedBursts:
      return MakeStressStream(exp.Categories(), StressScenario::kCorrelatedBursts,
                              config.duration_s, config.trace_seed);
    case GoldenScenario::kRealTrace:
      break;
  }
  ADASERVE_CHECK(false) << "kRealTrace uses the vector path, not a stream";
  return nullptr;
}

std::vector<Request> GoldenWorkload(const Experiment& exp, const GoldenConfig& config) {
  return exp.RealTraceWorkload(config.duration_s, config.mean_rps, WorkloadConfig{},
                               config.trace_seed);
}

EngineConfig GoldenEngineConfig(const GoldenConfig& config, GoldenScenario scenario,
                                GoldenMode mode) {
  // kTickNative is EngineConfig{} — the serving default the tick_ corpus
  // pins; kBoundary reproduces the legacy drain loop and its corpus.
  EngineConfig engine = mode == GoldenMode::kBoundary ? BoundaryTickConfig() : EngineConfig{};
  engine.sampling_seed = config.sampling_seed;
  if (scenario != GoldenScenario::kRealTrace) {
    // Streaming scenarios exercise the full lazy path: bounded arrival
    // horizon, incremental metrics, finished-request retirement.
    engine.retire_finished = true;
  }
  return engine;
}

EngineResult RunGoldenSystem(const Experiment& exp, SystemKind kind, const GoldenConfig& config,
                             GoldenScenario scenario, GoldenMode mode) {
  auto scheduler = MakeScheduler(kind);
  const EngineConfig engine = GoldenEngineConfig(config, scenario, mode);
  if (scenario == GoldenScenario::kRealTrace) {
    return exp.Run(*scheduler, GoldenWorkload(exp, config), engine);
  }
  auto stream = MakeGoldenStream(exp, scenario, config);
  return exp.Run(*scheduler, *stream, engine);
}

std::string GoldenMetricsText(SystemKind kind, const Metrics& metrics) {
  std::ostringstream os;
  os << "system: " << SystemName(kind) << "\n";
  os << "finished: " << metrics.finished << "\n";
  os << "attained: " << metrics.attained << "\n";
  os << "output_tokens: " << metrics.output_tokens() << "\n";
  os << "throughput_tps: " << FmtFixed(metrics.ThroughputTps()) << "\n";
  os << "slo_attainment_pct: " << FmtFixed(metrics.AttainmentPct()) << "\n";
  os << "goodput_tps: " << FmtFixed(metrics.GoodputTps()) << "\n";
  os << "mean_accepted: " << FmtFixed(metrics.mean_accepted) << "\n";
  os << "makespan_s: " << FmtFixed(metrics.makespan) << "\n";
  // Admission-control counters, emitted only when nonzero so the corpus
  // of systems without a controller stays byte-identical.
  if (metrics.rejections != 0) {
    os << "rejections: " << metrics.rejections << "\n";
  }
  if (metrics.degraded != 0) {
    os << "degraded: " << metrics.degraded << "\n";
  }
  for (int c = 0; c < kNumCategories; ++c) {
    const CategoryMetrics& cat = metrics.per_category[static_cast<size_t>(c)];
    os << "cat" << (c + 1) << ".finished: " << cat.finished << "\n";
    os << "cat" << (c + 1) << ".attainment_pct: " << FmtFixed(cat.AttainmentPct()) << "\n";
    os << "cat" << (c + 1) << ".mean_tpot_ms: " << FmtFixed(cat.tpot_ms.Mean()) << "\n";
  }
  return os.str();
}

std::string GoldenFileSlug(SystemKind kind) {
  std::string slug;
  for (char ch : SystemName(kind)) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      slug.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

bool ReadGoldenFile(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  *contents = os.str();
  return true;
}

bool WriteGoldenFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << contents;
  return out.good();
}

}  // namespace adaserve
