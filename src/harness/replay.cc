#include "src/harness/replay.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/logging.h"

namespace adaserve {
namespace {

// %.17g semantics via std::to_chars: text that round-trips an IEEE double
// exactly, so Serialize(Parse(x)) == x and replay diffs compare true
// values. to_chars is locale-independent by definition (snprintf's %g
// honors the global locale's decimal point and would corrupt artifacts
// written under e.g. de_DE); its output is specified to match printf
// "%.17g" in the C locale, so pre-existing artifacts compare byte-equal.
std::string FmtDouble(double v) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 17);
  ADASERVE_CHECK(ec == std::errc()) << "double format failed";
  return std::string(buf, ptr);
}

struct LineReader {
  std::stringstream ss;
  size_t line_no = 0;

  explicit LineReader(const std::string& text) : ss(text) {}

  bool NextLine(std::string* line) {
    if (!std::getline(ss, *line)) {
      return false;
    }
    ++line_no;
    return true;
  }
};

void SetError(std::string* error, size_t line_no, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + message;
  }
}

// Reads one "key: value" line with the exact expected key; the format is
// fixed-order within a schema version, so strict keys catch truncation
// and reordering corruption immediately.
bool ReadKeyed(LineReader& in, const std::string& key, std::string* value, std::string* error) {
  std::string line;
  if (!in.NextLine(&line)) {
    SetError(error, in.line_no, "unexpected end of artifact (wanted '" + key + "')");
    return false;
  }
  const std::string prefix = key + ":";
  if (line.rfind(prefix, 0) != 0) {
    SetError(error, in.line_no, "expected '" + key + ": ...', got '" + line + "'");
    return false;
  }
  *value = line.substr(prefix.size());
  if (!value->empty() && value->front() == ' ') {
    value->erase(0, 1);
  }
  return true;
}

// std::from_chars throughout: locale-independent (std::stol/stod honor
// the global C locale — under de_DE "0.5" stops parsing at the period and
// the %.17g round trip breaks), non-throwing, and whole-string-strict via
// the end-pointer check.
bool ParseLong(const std::string& s, long* out) {
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseF64(const std::string& s, double* out) {
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

bool ReadKeyedLong(LineReader& in, const std::string& key, long* out, std::string* error) {
  std::string value;
  if (!ReadKeyed(in, key, &value, error)) {
    return false;
  }
  if (!ParseLong(value, out)) {
    SetError(error, in.line_no, "bad integer for '" + key + "': '" + value + "'");
    return false;
  }
  return true;
}

bool ReadKeyedInt(LineReader& in, const std::string& key, int* out, std::string* error) {
  long v = 0;
  if (!ReadKeyedLong(in, key, &v, error)) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ReadKeyedBool(LineReader& in, const std::string& key, bool* out, std::string* error) {
  long v = 0;
  if (!ReadKeyedLong(in, key, &v, error)) {
    return false;
  }
  *out = v != 0;
  return true;
}

// Splits a data line ("a ..."/"t ...") into whitespace-separated tokens.
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::stringstream ss(line);
  std::string field;
  while (ss >> field) {
    fields.push_back(field);
  }
  return fields;
}

}  // namespace

// --- recorder ----------------------------------------------------------------

RunRecorder::RunRecorder(SystemKind kind, std::string setup_id, std::string label,
                         const EngineConfig& engine, int verify_budget, int draft_budget)
    : kind_(kind) {
  artifact_.system = std::string(SystemName(kind));
  artifact_.setup_id = std::move(setup_id);
  artifact_.label = std::move(label);
  artifact_.engine = engine;
  artifact_.engine.trace_sink = nullptr;
  artifact_.verify_budget = verify_budget;
  artifact_.draft_budget = draft_budget;
}

void RunRecorder::OnArrival(const Request& request) {
  // Immutable fields only: the mutable serving state belongs to the run,
  // not the workload.
  Request arrival;
  arrival.id = request.id;
  arrival.category = request.category;
  arrival.tpot_slo = request.tpot_slo;
  arrival.arrival = request.arrival;
  arrival.prompt_len = request.prompt_len;
  arrival.target_output_len = request.target_output_len;
  arrival.stream_seed = request.stream_seed;
  artifact_.arrivals.push_back(arrival);
}

void RunRecorder::OnTick(const TickTraceEvent& event) { artifact_.ticks.push_back(event); }

ReplayArtifact RunRecorder::Finish(const EngineResult& result) {
  artifact_.metrics_text = GoldenMetricsText(kind_, result.metrics);
  return std::move(artifact_);
}

// --- serialization -----------------------------------------------------------

std::string SerializeReplayArtifact(const ReplayArtifact& artifact) {
  std::ostringstream os;
  os << "adaserve_replay_schema: " << artifact.schema << "\n";
  os << "system: " << artifact.system << "\n";
  os << "setup: " << artifact.setup_id << "\n";
  os << "label: " << artifact.label << "\n";
  const EngineConfig& e = artifact.engine;
  os << "engine.max_iterations: " << e.max_iterations << "\n";
  os << "engine.sampling_seed: " << e.sampling_seed << "\n";
  os << "engine.mode: " << static_cast<int>(e.mode) << "\n";
  os << "engine.arrival_horizon: " << e.arrival_horizon << "\n";
  os << "engine.record_iterations: " << (e.record_iterations ? 1 : 0) << "\n";
  os << "engine.retire_finished: " << (e.retire_finished ? 1 : 0) << "\n";
  os << "tick.max_active: " << e.tick.max_active << "\n";
  os << "tick.continuous: " << (e.tick.continuous ? 1 : 0) << "\n";
  os << "tick.prefill_burst: " << e.tick.prefill_burst << "\n";
  os << "tick.max_evictions: " << e.tick.max_evictions << "\n";
  // -1: unset (scheduler default resolves it at run time).
  os << "tick.priority: "
     << (e.tick.admission_priority.has_value()
             ? static_cast<int>(*e.tick.admission_priority)
             : -1)
     << "\n";
  os << "tick.event_driven: " << (e.tick.event_driven ? 1 : 0) << "\n";
  os << "tick.async_planner: " << (e.tick.async_planner ? 1 : 0) << "\n";
  os << "verify_budget: " << artifact.verify_budget << "\n";
  os << "draft_budget: " << artifact.draft_budget << "\n";

  os << "arrivals: " << artifact.arrivals.size() << "\n";
  for (const Request& a : artifact.arrivals) {
    os << "a " << a.id << " " << a.category << " " << FmtDouble(a.tpot_slo) << " "
       << FmtDouble(a.arrival) << " " << a.prompt_len << " " << a.target_output_len << " "
       << a.stream_seed << "\n";
  }

  os << "ticks: " << artifact.ticks.size() << "\n";
  for (const TickTraceEvent& t : artifact.ticks) {
    const IterationRecord& r = t.record;
    os << "t " << t.index << " " << FmtDouble(t.start) << " " << FmtDouble(r.duration) << " "
       << FmtDouble(r.spec_time) << " " << FmtDouble(r.select_time) << " "
       << FmtDouble(r.verify_time) << " " << FmtDouble(r.prefill_time) << " " << r.prefill_tokens
       << " " << r.decode_requests << " " << r.verified_tokens << " " << r.committed_tokens << " "
       << r.admitted << " " << r.evicted << " " << r.paused << " " << r.rejected << " "
       << r.degraded << " " << t.arrivals_pulled << " " << t.plan_hit << "\n";
  }

  // The metrics block is recorded verbatim (line count + raw lines), so
  // the fingerprint survives any future punctuation in metric names.
  std::vector<std::string> metric_lines;
  std::stringstream ms(artifact.metrics_text);
  std::string line;
  while (std::getline(ms, line)) {
    metric_lines.push_back(line);
  }
  os << "metrics: " << metric_lines.size() << "\n";
  for (const std::string& ml : metric_lines) {
    os << ml << "\n";
  }
  os << "end\n";
  return os.str();
}

bool ParseReplayArtifact(const std::string& text, ReplayArtifact* artifact, std::string* error) {
  LineReader in(text);
  ReplayArtifact out;

  long schema = 0;
  if (!ReadKeyedLong(in, "adaserve_replay_schema", &schema, error)) {
    return false;
  }
  if (schema != kReplaySchemaVersion) {
    SetError(error, in.line_no,
             "unsupported replay schema " + std::to_string(schema) + " (this binary speaks " +
                 std::to_string(kReplaySchemaVersion) + ")");
    return false;
  }
  out.schema = static_cast<int>(schema);

  if (!ReadKeyed(in, "system", &out.system, error) ||
      !ReadKeyed(in, "setup", &out.setup_id, error) ||
      !ReadKeyed(in, "label", &out.label, error)) {
    return false;
  }

  EngineConfig& e = out.engine;
  int mode = 0;
  int priority = -1;
  uint64_t sampling_seed = 0;
  std::string seed_text;
  if (!ReadKeyedLong(in, "engine.max_iterations", &e.max_iterations, error)) return false;
  if (!ReadKeyed(in, "engine.sampling_seed", &seed_text, error)) return false;
  if (!ParseU64(seed_text, &sampling_seed)) {
    SetError(error, in.line_no, "bad engine.sampling_seed '" + seed_text + "'");
    return false;
  }
  e.sampling_seed = sampling_seed;
  if (!ReadKeyedInt(in, "engine.mode", &mode, error)) return false;
  if (mode != static_cast<int>(DecodeMode::kGreedy) &&
      mode != static_cast<int>(DecodeMode::kStochastic)) {
    SetError(error, in.line_no, "bad engine.mode " + std::to_string(mode));
    return false;
  }
  e.mode = static_cast<DecodeMode>(mode);
  if (!ReadKeyedInt(in, "engine.arrival_horizon", &e.arrival_horizon, error)) return false;
  if (!ReadKeyedBool(in, "engine.record_iterations", &e.record_iterations, error)) return false;
  if (!ReadKeyedBool(in, "engine.retire_finished", &e.retire_finished, error)) return false;
  if (!ReadKeyedInt(in, "tick.max_active", &e.tick.max_active, error)) return false;
  if (!ReadKeyedBool(in, "tick.continuous", &e.tick.continuous, error)) return false;
  if (!ReadKeyedInt(in, "tick.prefill_burst", &e.tick.prefill_burst, error)) return false;
  if (!ReadKeyedInt(in, "tick.max_evictions", &e.tick.max_evictions, error)) return false;
  if (!ReadKeyedInt(in, "tick.priority", &priority, error)) return false;
  if (priority < -1 || priority > static_cast<int>(PriorityPolicy::kEdf)) {
    SetError(error, in.line_no, "bad tick.priority " + std::to_string(priority));
    return false;
  }
  e.tick.admission_priority =
      priority < 0 ? std::nullopt : std::optional<PriorityPolicy>(static_cast<PriorityPolicy>(priority));
  if (!ReadKeyedBool(in, "tick.event_driven", &e.tick.event_driven, error)) return false;
  if (!ReadKeyedBool(in, "tick.async_planner", &e.tick.async_planner, error)) return false;
  if (!ReadKeyedInt(in, "verify_budget", &out.verify_budget, error)) return false;
  if (!ReadKeyedInt(in, "draft_budget", &out.draft_budget, error)) return false;

  long arrival_count = 0;
  if (!ReadKeyedLong(in, "arrivals", &arrival_count, error)) return false;
  if (arrival_count < 0) {
    SetError(error, in.line_no, "negative arrival count");
    return false;
  }
  out.arrivals.reserve(static_cast<size_t>(arrival_count));
  std::string line;
  for (long i = 0; i < arrival_count; ++i) {
    if (!in.NextLine(&line)) {
      SetError(error, in.line_no, "truncated arrival section");
      return false;
    }
    const std::vector<std::string> f = SplitFields(line);
    if (f.size() != 8 || f[0] != "a") {
      SetError(error, in.line_no, "bad arrival line '" + line + "'");
      return false;
    }
    Request a;
    long id = 0;
    long prompt = 0;
    long target = 0;
    long category = 0;
    uint64_t seed = 0;
    if (!ParseLong(f[1], &id) || !ParseLong(f[2], &category) || !ParseF64(f[3], &a.tpot_slo) ||
        !ParseF64(f[4], &a.arrival) || !ParseLong(f[5], &prompt) || !ParseLong(f[6], &target) ||
        !ParseU64(f[7], &seed)) {
      SetError(error, in.line_no, "bad arrival field in '" + line + "'");
      return false;
    }
    a.id = static_cast<RequestId>(id);
    a.category = static_cast<int>(category);
    a.prompt_len = static_cast<int>(prompt);
    a.target_output_len = static_cast<int>(target);
    a.stream_seed = seed;
    out.arrivals.push_back(a);
  }

  long tick_count = 0;
  if (!ReadKeyedLong(in, "ticks", &tick_count, error)) return false;
  if (tick_count < 0) {
    SetError(error, in.line_no, "negative tick count");
    return false;
  }
  out.ticks.reserve(static_cast<size_t>(tick_count));
  for (long i = 0; i < tick_count; ++i) {
    if (!in.NextLine(&line)) {
      SetError(error, in.line_no, "truncated tick section");
      return false;
    }
    const std::vector<std::string> f = SplitFields(line);
    if (f.size() != 19 || f[0] != "t") {
      SetError(error, in.line_no, "bad tick line '" + line + "'");
      return false;
    }
    TickTraceEvent t;
    IterationRecord& r = t.record;
    long prefill_tokens = 0, decode_requests = 0, verified = 0, committed = 0;
    long admitted = 0, evicted = 0, paused = 0, rejected = 0, degraded = 0;
    long pulled = 0, plan_hit = 0;
    if (!ParseLong(f[1], &t.index) || !ParseF64(f[2], &t.start) || !ParseF64(f[3], &r.duration) ||
        !ParseF64(f[4], &r.spec_time) || !ParseF64(f[5], &r.select_time) ||
        !ParseF64(f[6], &r.verify_time) || !ParseF64(f[7], &r.prefill_time) ||
        !ParseLong(f[8], &prefill_tokens) || !ParseLong(f[9], &decode_requests) ||
        !ParseLong(f[10], &verified) || !ParseLong(f[11], &committed) ||
        !ParseLong(f[12], &admitted) || !ParseLong(f[13], &evicted) ||
        !ParseLong(f[14], &paused) || !ParseLong(f[15], &rejected) ||
        !ParseLong(f[16], &degraded) || !ParseLong(f[17], &pulled) ||
        !ParseLong(f[18], &plan_hit)) {
      SetError(error, in.line_no, "bad tick field in '" + line + "'");
      return false;
    }
    r.prefill_tokens = static_cast<int>(prefill_tokens);
    r.decode_requests = static_cast<int>(decode_requests);
    r.verified_tokens = static_cast<int>(verified);
    r.committed_tokens = static_cast<int>(committed);
    r.admitted = static_cast<int>(admitted);
    r.evicted = static_cast<int>(evicted);
    r.paused = static_cast<int>(paused);
    r.rejected = static_cast<int>(rejected);
    r.degraded = static_cast<int>(degraded);
    t.arrivals_pulled = static_cast<int>(pulled);
    t.plan_hit = static_cast<int>(plan_hit);
    out.ticks.push_back(t);
  }

  long metric_lines = 0;
  if (!ReadKeyedLong(in, "metrics", &metric_lines, error)) return false;
  if (metric_lines < 0) {
    SetError(error, in.line_no, "negative metrics line count");
    return false;
  }
  out.metrics_text.clear();
  for (long i = 0; i < metric_lines; ++i) {
    if (!in.NextLine(&line)) {
      SetError(error, in.line_no, "truncated metrics section");
      return false;
    }
    out.metrics_text += line;
    out.metrics_text += "\n";
  }

  if (!in.NextLine(&line) || line != "end") {
    SetError(error, in.line_no, "missing 'end' sentinel");
    return false;
  }

  *artifact = std::move(out);
  if (error != nullptr) {
    error->clear();
  }
  return true;
}

bool WriteReplayArtifact(const std::string& path, const ReplayArtifact& artifact,
                         std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "' for writing";
    }
    return false;
  }
  out << SerializeReplayArtifact(artifact);
  out.flush();
  if (!out) {
    if (error != nullptr) {
      *error = "write to '" + path + "' failed";
    }
    return false;
  }
  return true;
}

bool ReadReplayArtifact(const std::string& path, ReplayArtifact* artifact, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "'";
    }
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseReplayArtifact(buffer.str(), artifact, error);
}

// --- setup registry ----------------------------------------------------------

std::optional<Setup> ReplaySetupById(const std::string& setup_id) {
  if (setup_id == "golden") return GoldenSetup();
  if (setup_id == "llama") return LlamaSetup();
  if (setup_id == "qwen") return QwenSetup();
  if (setup_id == "llama_h100_tp8") return LlamaH100Tp8Setup();
  if (setup_id == "llama_tp8") return LlamaTp8Setup();
  if (setup_id == "llama_draft_offload") return LlamaDraftOffloadSetup();
  return std::nullopt;
}

// --- recording ---------------------------------------------------------------

RecordedRun RecordRun(const Experiment& exp, SystemKind kind, WorkloadSource source,
                      EngineConfig engine, const std::string& setup_id, const std::string& label,
                      int verify_budget, int draft_budget) {
  const std::optional<Setup> registered = ReplaySetupById(setup_id);
  ADASERVE_CHECK(registered.has_value()) << "setup id '" << setup_id << "' not in replay registry";
  ADASERVE_CHECK(registered->label == exp.setup().label)
      << "setup id '" << setup_id << "' names '" << registered->label
      << "' but the experiment runs '" << exp.setup().label << "'";

  RecordedRun run;
  RunRecorder recorder(kind, setup_id, label, engine, verify_budget, draft_budget);
  engine.trace_sink = &recorder;
  auto scheduler = MakeScheduler(kind);
  run.result = exp.Run(*scheduler, std::move(source), engine, verify_budget, draft_budget);
  run.artifact = recorder.Finish(run.result);
  return run;
}

RecordedRun RecordGoldenRun(const Experiment& exp, SystemKind kind, const GoldenConfig& config,
                            GoldenScenario scenario, GoldenMode mode) {
  const EngineConfig engine = GoldenEngineConfig(config, scenario, mode);
  const std::string label =
      "golden/" + GoldenModePrefix(mode) + GoldenScenarioPrefix(scenario) + GoldenFileSlug(kind);
  if (scenario == GoldenScenario::kRealTrace) {
    return RecordRun(exp, kind, GoldenWorkload(exp, config), engine, "golden", label);
  }
  auto stream = MakeGoldenStream(exp, scenario, config);
  return RecordRun(exp, kind, *stream, engine, "golden", label);
}

RecordedClusterRun RecordClusterRun(ClusterConfig config, SystemKind system,
                                    ArrivalStream& stream,
                                    const std::vector<std::string>& setup_ids,
                                    const std::string& label) {
  ADASERVE_CHECK(setup_ids.size() == config.replicas.size())
      << "need one setup id per replica, got " << setup_ids.size() << " for "
      << config.replicas.size();

  // One recorder per replica, stable addresses: each replica engine gets
  // its own sink (replicas may run on parallel SweepRunner tasks, but a
  // sink is only ever touched by its own replica's engine loop).
  std::vector<std::unique_ptr<RunRecorder>> recorders;
  recorders.reserve(config.replicas.size());
  for (size_t i = 0; i < config.replicas.size(); ++i) {
    const ReplicaSpec& spec = config.replicas[i];
    const std::optional<Setup> registered = ReplaySetupById(setup_ids[i]);
    ADASERVE_CHECK(registered.has_value())
        << "setup id '" << setup_ids[i] << "' not in replay registry";
    ADASERVE_CHECK(registered->label == spec.setup.label)
        << "replica " << i << " setup id '" << setup_ids[i] << "' names '" << registered->label
        << "' but the replica runs '" << spec.setup.label << "'";
    recorders.push_back(std::make_unique<RunRecorder>(
        system, setup_ids[i], label + "/replica" + std::to_string(i), spec.engine));
    config.replicas[i].engine.trace_sink = recorders.back().get();
  }

  Cluster cluster(std::move(config));
  RecordedClusterRun run;
  run.result = cluster.Run(system, stream);
  run.replicas.reserve(recorders.size());
  for (size_t i = 0; i < recorders.size(); ++i) {
    run.replicas.push_back(recorders[i]->Finish(run.result.replicas[i].result));
  }
  return run;
}

// --- replay ------------------------------------------------------------------

std::string ReplayDivergence::Summary() const {
  std::ostringstream os;
  if (tick >= 0) {
    os << "first divergence at tick " << tick;
  } else {
    os << "run-level divergence";
  }
  os << ": " << field << " expected " << expected << ", got " << actual;
  return os.str();
}

namespace {

ReplayDivergence Diverge(long tick, std::string field, std::string expected, std::string actual) {
  ReplayDivergence d;
  d.tick = tick;
  d.field = std::move(field);
  d.expected = std::move(expected);
  d.actual = std::move(actual);
  return d;
}

// Compares one recorded tick against its replayed counterpart, field by
// field; doubles compare exactly (the simulation is deterministic, and
// the artifact stores them round-trip exactly).
std::optional<ReplayDivergence> DiffTick(const TickTraceEvent& want, const TickTraceEvent& got) {
  const long i = want.index;
  auto check_long = [&](const char* field, long w, long g) -> std::optional<ReplayDivergence> {
    if (w != g) {
      return Diverge(i, field, std::to_string(w), std::to_string(g));
    }
    return std::nullopt;
  };
  auto check_f64 = [&](const char* field, double w, double g) -> std::optional<ReplayDivergence> {
    if (w != g) {
      return Diverge(i, field, FmtDouble(w), FmtDouble(g));
    }
    return std::nullopt;
  };
  if (auto d = check_long("index", want.index, got.index)) return d;
  if (auto d = check_f64("start", want.start, got.start)) return d;
  const IterationRecord& w = want.record;
  const IterationRecord& g = got.record;
  if (auto d = check_f64("record.duration", w.duration, g.duration)) return d;
  if (auto d = check_f64("record.spec_time", w.spec_time, g.spec_time)) return d;
  if (auto d = check_f64("record.select_time", w.select_time, g.select_time)) return d;
  if (auto d = check_f64("record.verify_time", w.verify_time, g.verify_time)) return d;
  if (auto d = check_f64("record.prefill_time", w.prefill_time, g.prefill_time)) return d;
  if (auto d = check_long("record.prefill_tokens", w.prefill_tokens, g.prefill_tokens)) return d;
  if (auto d = check_long("record.decode_requests", w.decode_requests, g.decode_requests)) {
    return d;
  }
  if (auto d = check_long("record.verified_tokens", w.verified_tokens, g.verified_tokens)) {
    return d;
  }
  if (auto d = check_long("record.committed_tokens", w.committed_tokens, g.committed_tokens)) {
    return d;
  }
  if (auto d = check_long("record.admitted", w.admitted, g.admitted)) return d;
  if (auto d = check_long("record.evicted", w.evicted, g.evicted)) return d;
  if (auto d = check_long("record.paused", w.paused, g.paused)) return d;
  if (auto d = check_long("record.rejected", w.rejected, g.rejected)) return d;
  if (auto d = check_long("record.degraded", w.degraded, g.degraded)) return d;
  if (auto d = check_long("arrivals_pulled", want.arrivals_pulled, got.arrivals_pulled)) return d;
  if (auto d = check_long("plan_hit", want.plan_hit, got.plan_hit)) return d;
  return std::nullopt;
}

// First differing line of two text blocks, for metrics-text divergence.
std::pair<std::string, std::string> FirstDifferingLine(const std::string& want,
                                                       const std::string& got) {
  std::stringstream ws(want);
  std::stringstream gs(got);
  std::string wl;
  std::string gl;
  while (true) {
    const bool have_w = static_cast<bool>(std::getline(ws, wl));
    const bool have_g = static_cast<bool>(std::getline(gs, gl));
    if (!have_w && !have_g) {
      return {"<equal>", "<equal>"};
    }
    if (!have_w) return {"<end of text>", gl};
    if (!have_g) return {wl, "<end of text>"};
    if (wl != gl) return {wl, gl};
  }
}

}  // namespace

ReplayOutcome ReplayRun(const ReplayArtifact& artifact) {
  const std::optional<SystemKind> kind = SystemKindFromName(artifact.system);
  ADASERVE_CHECK(kind.has_value()) << "artifact names unknown system '" << artifact.system << "'";
  const std::optional<Setup> setup = ReplaySetupById(artifact.setup_id);
  ADASERVE_CHECK(setup.has_value()) << "artifact names unknown setup '" << artifact.setup_id
                                    << "'";

  const Experiment exp(*setup);
  EngineConfig engine = artifact.engine;
  RunRecorder recorder(*kind, artifact.setup_id, artifact.label, engine, artifact.verify_budget,
                       artifact.draft_budget);
  engine.trace_sink = &recorder;
  auto scheduler = MakeScheduler(*kind);

  // The run re-executes from the recorded arrivals alone: the workload
  // generator (and its seeds) is not consulted.
  ReplayOutcome outcome;
  outcome.result = exp.Run(*scheduler, artifact.arrivals, engine, artifact.verify_budget,
                           artifact.draft_budget);
  const ReplayArtifact replayed = recorder.Finish(outcome.result);
  outcome.metrics_text = replayed.metrics_text;

  // Tick-by-tick diff: report the earliest mismatch.
  const size_t common = std::min(artifact.ticks.size(), replayed.ticks.size());
  for (size_t i = 0; i < common; ++i) {
    if (auto d = DiffTick(artifact.ticks[i], replayed.ticks[i])) {
      outcome.divergence = std::move(d);
      return outcome;
    }
  }
  if (artifact.ticks.size() != replayed.ticks.size()) {
    outcome.divergence =
        Diverge(static_cast<long>(common), "tick_count", std::to_string(artifact.ticks.size()),
                std::to_string(replayed.ticks.size()));
    return outcome;
  }
  if (artifact.metrics_text != replayed.metrics_text) {
    auto [want_line, got_line] = FirstDifferingLine(artifact.metrics_text, replayed.metrics_text);
    outcome.divergence = Diverge(-1, "metrics_text", want_line, got_line);
    return outcome;
  }
  outcome.ok = true;
  return outcome;
}

}  // namespace adaserve
