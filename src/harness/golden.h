// Golden-metrics regression harness.
//
// Pins down the end-of-run metrics of every system in MainComparisonSet()
// on a fixed-seed workload as canonical text, so scheduler/engine refactors
// can be proven regression-free by diffing against checked-in baselines
// (tests/golden/*.txt). Regenerate with `golden_test --update_golden`.
#ifndef ADASERVE_SRC_HARNESS_GOLDEN_H_
#define ADASERVE_SRC_HARNESS_GOLDEN_H_

#include <string>
#include <vector>

#include "src/harness/comparisons.h"
#include "src/harness/experiment.h"
#include "src/workload/scenarios.h"

namespace adaserve {

// The fixed-seed workload every golden run uses. Small enough that a full
// MainComparisonSet() sweep stays in unit-test time, large enough that all
// three categories and the speculation path are exercised.
struct GoldenConfig {
  double duration_s = 8.0;
  double mean_rps = 3.0;
  uint64_t trace_seed = 42;
  uint64_t sampling_seed = 1234;
};

// The compact Qwen-32B setup shared by the golden runs (mirrors
// tests/test_util.h TestSetup so goldens track the unit-test path).
Setup GoldenSetup();

// Workloads pinned by golden baselines. kRealTrace is the original Fig. 7
// vector path; kBursty (MMPP stream) and kDiurnal (time-of-day stream) run
// through the lazy streaming engine with finished-request retirement, so
// the baselines also pin the streaming admission/metrics path.
// The stress scenarios (workload/scenarios.h) are pinned too, tick-native
// only: the boundary corpus is the frozen legacy reference and does not
// grow.
enum class GoldenScenario {
  kRealTrace,
  kBursty,
  kDiurnal,
  kFlashCrowd,
  kTenantFlood,
  kLongPromptPoison,
  kCorrelatedBursts,
};

// Serving modes pinned by golden baselines. Every scenario exists in both
// corpora: kTickNative (files prefixed tick_) pins the default serving
// mode — continuous ticks with each scheduler's admission-priority
// default and evict-for-admission — while kBoundary (unprefixed files,
// the pre-tick corpus) pins the legacy drain loop via BoundaryTickConfig
// and must never drift (tick_equivalence_test additionally proves it
// byte-identical to Experiment::RunLegacyDrainLoop).
enum class GoldenMode {
  kTickNative,
  kBoundary,
};

// Baseline filename prefix: "", "bursty_", "diurnal_", "flash_",
// "flood_", "hol_", "corr_".
std::string GoldenScenarioPrefix(GoldenScenario scenario);

// One pinned baseline: (system, scenario, mode) -> tests/golden/<file>.
struct GoldenCell {
  SystemKind kind = SystemKind::kAdaServe;
  GoldenScenario scenario = GoldenScenario::kRealTrace;
  GoldenMode mode = GoldenMode::kTickNative;

  // Baseline filename, e.g. "tick_bursty_adaserve.txt".
  std::string Filename() const;
};

// The single source of truth for the golden corpus: every cell the
// regression test checks, `--update_golden` regenerates, and the orphan
// scan accepts. MainComparisonSet x {real-trace, bursty, diurnal} x
// {tick-native, boundary} (the historical corpus), plus MainComparisonSet
// x the four stress scenarios tick-native, plus VTC under the tenant
// flood (the fair-queuing baseline the flood exists to stress).
std::vector<GoldenCell> AllGoldenCells();

// Baseline filename mode prefix: "tick_" for kTickNative, "" for
// kBoundary. Composes in front of the scenario prefix, e.g.
// tick_bursty_adaserve.txt.
std::string GoldenModePrefix(GoldenMode mode);

// Builds the canonical fixed-seed stream for a streaming scenario
// (kBursty/kDiurnal only).
std::unique_ptr<ArrivalStream> MakeGoldenStream(const Experiment& exp, GoldenScenario scenario,
                                                const GoldenConfig& config = {});

// The canonical fixed-seed vector workload of the kRealTrace scenario —
// what RunGoldenSystem replays. Exposed so equivalence tests can drive
// alternative loops (legacy drain, tick-native) over the exact golden
// trace.
std::vector<Request> GoldenWorkload(const Experiment& exp, const GoldenConfig& config = {});

// Engine config RunGoldenSystem serves (scenario, mode) under — factored
// out so the record/replay harness can attach a trace sink to the exact
// golden engine settings.
EngineConfig GoldenEngineConfig(const GoldenConfig& config, GoldenScenario scenario,
                                GoldenMode mode);

// Runs `kind` on the canonical workload of `scenario` under `mode` and
// returns its result. The default is the serving default: tick-native.
EngineResult RunGoldenSystem(const Experiment& exp, SystemKind kind,
                             const GoldenConfig& config = {},
                             GoldenScenario scenario = GoldenScenario::kRealTrace,
                             GoldenMode mode = GoldenMode::kTickNative);

// Serializes the regression-relevant metrics (finished count, throughput,
// SLO attainment, goodput, acceptance rate, per-category breakdown) to a
// canonical `key: value` text block with fixed-precision formatting.
std::string GoldenMetricsText(SystemKind kind, const Metrics& metrics);

// Filesystem-safe slug for a system's baseline file, e.g.
// "vLLM-Spec(4)" -> "vllm_spec_4". The baseline lives at
// <golden_dir>/<slug>.txt.
std::string GoldenFileSlug(SystemKind kind);

// Whole-file read/write helpers for the baselines. Read returns false if
// the file does not exist or cannot be opened.
bool ReadGoldenFile(const std::string& path, std::string* contents);
bool WriteGoldenFile(const std::string& path, const std::string& contents);

}  // namespace adaserve

#endif  // ADASERVE_SRC_HARNESS_GOLDEN_H_
