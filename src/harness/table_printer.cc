#include "src/harness/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace adaserve {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtPct(double value) { return Fmt(value, 1); }

}  // namespace adaserve
