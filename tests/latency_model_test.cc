#include "src/hw/latency_model.h"

#include <gtest/gtest.h>

#include "src/hw/budget.h"
#include "src/hw/gpu.h"
#include "src/hw/profiles.h"

namespace adaserve {
namespace {

LatencyModel Llama70B() { return LatencyModel(Llama31_70B(), A100_80G(), 4); }
LatencyModel Qwen32B() { return LatencyModel(Qwen25_32B(), A100_80G(), 2); }
LatencyModel Draft1B() { return LatencyModel(Llama32_1B(), A100_80G(), 1); }

TEST(Profiles, KvBytesMatchArchitecture) {
  // 2 (K,V) * layers * kv_heads * head_dim * 2 bytes.
  EXPECT_DOUBLE_EQ(Llama31_70B().KvBytesPerToken(), 2.0 * 80 * 8 * 128 * 2);
  EXPECT_DOUBLE_EQ(Qwen25_05B().KvBytesPerToken(), 2.0 * 24 * 2 * 64 * 2);
}

TEST(Profiles, FlopsPerTokenIsTwiceParams) {
  EXPECT_DOUBLE_EQ(Llama32_1B().FlopsPerToken(), 2.0 * 1.24e9);
}

TEST(LatencyModel, WeightLoadTimeScalesInverselyWithTp) {
  const LatencyModel tp4 = Llama70B();
  const LatencyModel tp8(Llama31_70B(), A100_80G(), 8);
  EXPECT_NEAR(tp4.WeightLoadTime() / tp8.WeightLoadTime(), 2.0, 1e-9);
}

TEST(LatencyModel, SeventyBWeightFloorIsTensOfMs) {
  // 141 GB over 4 x 2039 GB/s x 0.7 ~ 24.7 ms: the well-known A100 decode
  // floor for 70B at TP4.
  const double floor_ms = ToMs(Llama70B().WeightLoadTime());
  EXPECT_GT(floor_ms, 15.0);
  EXPECT_LT(floor_ms, 40.0);
}

TEST(LatencyModel, ForwardLatencyMonotoneInBatchTokens) {
  const LatencyModel lat = Llama70B();
  SimTime prev = 0.0;
  for (int tokens : {1, 8, 64, 256, 1024}) {
    const SimTime t = lat.ForwardLatency(tokens, 0, true);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(LatencyModel, ForwardLatencyMonotoneInContext) {
  const LatencyModel lat = Llama70B();
  EXPECT_LT(lat.ForwardLatency(8, 1000, true), lat.ForwardLatency(8, 100000, true));
}

TEST(LatencyModel, MemoryBoundBelowKnee) {
  const LatencyModel lat = Llama70B();
  // Well below the knee, adding tokens is nearly free.
  const SimTime t1 = lat.ForwardLatency(1, 0, true);
  const SimTime t2 = lat.ForwardLatency(static_cast<int>(lat.RooflineKnee() / 2), 0, true);
  EXPECT_NEAR(t1, t2, 1e-9);
}

TEST(LatencyModel, ComputeBoundAboveKnee) {
  const LatencyModel lat = Llama70B();
  const int knee = static_cast<int>(lat.RooflineKnee());
  const SimTime at_knee = lat.ForwardLatency(knee, 0, true);
  const SimTime at_double = lat.ForwardLatency(2 * knee, 0, true);
  EXPECT_NEAR(at_double / at_knee, 2.0, 0.05);
}

TEST(LatencyModel, KneeEqualsFloorOverPerToken) {
  const LatencyModel lat = Qwen32B();
  EXPECT_NEAR(lat.RooflineKnee(), lat.WeightLoadTime() / lat.ComputeTimePerToken(), 1e-9);
}

TEST(LatencyModel, CudaGraphReducesLatency) {
  const LatencyModel lat = Llama70B();
  EXPECT_LT(lat.ForwardLatency(8, 1000, true), lat.ForwardLatency(8, 1000, false));
}

TEST(LatencyModel, ZeroTokensIsFree) {
  EXPECT_EQ(Llama70B().ForwardLatency(0, 0, true), 0.0);
}

TEST(LatencyModel, PrefillLongPromptIsComputeBound) {
  const LatencyModel lat = Llama70B();
  const SimTime t = lat.PrefillLatency(4096, 0);
  EXPECT_NEAR(t, 4096 * lat.ComputeTimePerToken(), lat.WeightLoadTime());
  EXPECT_GT(t, 10 * lat.WeightLoadTime());
}

TEST(LatencyModel, BaselineLatencyNearWeightFloor) {
  const LatencyModel lat = Llama70B();
  EXPECT_GT(lat.BaselineDecodeLatency(), lat.WeightLoadTime());
  EXPECT_LT(lat.BaselineDecodeLatency(), 1.2 * lat.WeightLoadTime());
}

TEST(LatencyModel, DraftModelIsMuchFasterThanTarget) {
  EXPECT_LT(Draft1B().WeightLoadTime() * 5, Llama70B().WeightLoadTime());
}

TEST(LatencyModel, KvCacheBytesPositiveAndBounded) {
  const LatencyModel lat = Llama70B();
  EXPECT_GT(lat.KvCacheBytes(), 0.0);
  EXPECT_LT(lat.KvCacheBytes(), 4 * A100_80G().mem_bytes);
}

TEST(Budget, DerivedBudgetAboveKnee) {
  const LatencyModel lat = Llama70B();
  const int budget = DeriveTokenBudget(lat);
  EXPECT_GT(budget, static_cast<int>(lat.RooflineKnee()));
}

TEST(Budget, BudgetMonotoneInSlack) {
  const LatencyModel lat = Llama70B();
  BudgetConfig loose;
  loose.latency_slack = 2.5;
  BudgetConfig tight;
  tight.latency_slack = 1.2;
  EXPECT_GT(DeriveTokenBudget(lat, loose), DeriveTokenBudget(lat, tight));
}

TEST(Budget, BudgetLatencyRespectsSlack) {
  const LatencyModel lat = Llama70B();
  BudgetConfig config;
  const int budget = DeriveTokenBudget(lat, config);
  const long ctx = config.typical_context * config.typical_batch;
  EXPECT_LE(lat.ForwardLatency(budget, ctx, true),
            lat.WeightLoadTime() * config.latency_slack * (1 + 1e-9));
  // One more token would exceed the target (unless clamped at max).
  if (budget < config.max_budget) {
    EXPECT_GT(lat.ForwardLatency(budget + 1, ctx, true),
              lat.WeightLoadTime() * config.latency_slack);
  }
}

TEST(Budget, DraftBudgetRespectsFraction) {
  const LatencyModel verifier = Llama70B();
  const LatencyModel draft = Draft1B();
  BudgetConfig config;
  const int b2 = DeriveDraftBudget(verifier, draft, 0.25, config);
  if (b2 < config.max_budget) {
    EXPECT_LE(draft.ForwardLatency(b2, config.typical_context, true),
              verifier.WeightLoadTime() * 0.25 * (1 + 1e-9));
  }
  EXPECT_GE(b2, config.min_budget);
}

TEST(Budget, FasterGpuGetsLargerBudget) {
  const LatencyModel a100 = Llama70B();
  const LatencyModel h100(Llama31_70B(), H100_80G(), 4);
  // H100 has proportionally more FLOPs than bandwidth, pushing the knee out.
  EXPECT_GE(DeriveTokenBudget(h100), DeriveTokenBudget(a100));
}

struct TpCase {
  int tp;
};

class TpSweep : public ::testing::TestWithParam<int> {};

TEST_P(TpSweep, AllQuantitiesPositive) {
  const LatencyModel lat(Qwen25_32B(), A100_80G(), GetParam());
  EXPECT_GT(lat.WeightLoadTime(), 0.0);
  EXPECT_GT(lat.ComputeTimePerToken(), 0.0);
  EXPECT_GT(lat.RooflineKnee(), 0.0);
  EXPECT_GT(lat.KvCacheBytes(), 0.0);
  EXPECT_GT(DeriveTokenBudget(lat), 0);
}

INSTANTIATE_TEST_SUITE_P(Degrees, TpSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace adaserve
