#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "src/cluster/router.h"
#include "tests/test_util.h"

namespace adaserve {
namespace {

std::vector<ReplicaRouterState> MakeStates(const std::vector<double>& backlogs) {
  std::vector<ReplicaRouterState> states(backlogs.size());
  for (size_t i = 0; i < states.size(); ++i) {
    states[i].backlog_until = backlogs[i];
  }
  return states;
}

Request MakeRequest(double arrival = 0.0, double tpot_slo = 0.05) {
  Request req;
  req.arrival = arrival;
  req.tpot_slo = tpot_slo;
  req.prompt_len = 64;
  req.target_output_len = 24;
  return req;
}

TEST(Router, RoundRobinCycles) {
  auto router = MakeRouter(RouterPolicy::kRoundRobin);
  const std::vector<ReplicaRouterState> states = MakeStates({0, 0, 0});
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(router->Route(MakeRequest(), states), static_cast<size_t>(i % 3));
  }
}

TEST(Router, JoinShortestQueuePicksLeastBacklog) {
  auto router = MakeRouter(RouterPolicy::kJoinShortestQueue);
  // Request arrives at t=1: replica backlogs beyond t=1 are 4, 0, and 2s.
  EXPECT_EQ(router->Route(MakeRequest(/*arrival=*/1.0), MakeStates({5.0, 0.5, 3.0})), 1u);
  // All drained by the arrival time: equal (zero) backlog, lowest index.
  EXPECT_EQ(router->Route(MakeRequest(/*arrival=*/10.0), MakeStates({5.0, 0.5, 3.0})), 0u);
}

TEST(Router, JoinShortestQueueTiesBreakToLowestIndex) {
  auto router = MakeRouter(RouterPolicy::kJoinShortestQueue);
  EXPECT_EQ(router->Route(MakeRequest(), MakeStates({2.0, 1.0, 1.0})), 1u);
}

TEST(Router, PowerOfTwoChoicesIsSeedDeterministic) {
  RouterConfig config;
  config.seed = 77;
  auto a = MakeRouter(RouterPolicy::kPowerOfTwoChoices, config);
  auto b = MakeRouter(RouterPolicy::kPowerOfTwoChoices, config);
  const std::vector<ReplicaRouterState> states = MakeStates({3.0, 1.0, 2.0, 4.0});
  for (int i = 0; i < 200; ++i) {
    const Request req = MakeRequest(/*arrival=*/0.01 * i);
    const size_t ia = a->Route(req, states);
    const size_t ib = b->Route(req, states);
    EXPECT_EQ(ia, ib) << "same-seed po2c diverged at call " << i;
    EXPECT_LT(ia, states.size());
  }
}

TEST(Router, PowerOfTwoChoicesPrefersShorterOfItsPair) {
  // With two replicas the sampled pair is always {0, 1}, so po2c must
  // behave exactly like JSQ.
  auto router = MakeRouter(RouterPolicy::kPowerOfTwoChoices);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(router->Route(MakeRequest(), MakeStates({4.0, 1.0})), 1u);
  }
}

TEST(Router, SloAwareSteersByTpotSlo) {
  auto router = MakeRouter(RouterPolicy::kSloAware);
  // Replicas 0/1 are spec-decode-strong, 2/3 weak; 1 and 3 have the
  // shorter backlogs within their halves.
  std::vector<ReplicaRouterState> states = MakeStates({3.0, 1.0, 2.5, 0.5});
  states[0].spec_strength = 4.0;
  states[1].spec_strength = 4.0;
  states[2].spec_strength = 1.0;
  states[3].spec_strength = 1.0;
  // Tight TPOT (below the 0.10 s urgent threshold): least backlog among
  // the strong replicas, even though replica 3 is globally shortest.
  EXPECT_EQ(router->Route(MakeRequest(0.0, /*tpot_slo=*/0.05), states), 1u);
  // Relaxed TPOT: least backlog among the weak replicas.
  EXPECT_EQ(router->Route(MakeRequest(0.0, /*tpot_slo=*/0.15), states), 3u);
}

TEST(Router, SloAwareFallsBackWhenSubsetIsEmpty) {
  auto router = MakeRouter(RouterPolicy::kSloAware);
  // Uniform spec strength: no replica is strictly above the mean, so
  // urgent requests must fall back to fleet-wide least backlog.
  std::vector<ReplicaRouterState> states = MakeStates({2.0, 0.5, 1.0});
  for (ReplicaRouterState& s : states) {
    s.spec_strength = 2.0;
  }
  EXPECT_EQ(router->Route(MakeRequest(0.0, /*tpot_slo=*/0.05), states), 1u);
}

ClusterConfig MakeTestClusterConfig(RouterPolicy policy, int threads, int replicas = 2) {
  ClusterConfig config;
  for (int i = 0; i < replicas; ++i) {
    ReplicaSpec spec;
    spec.setup = TestSetup();
    if (i % 2 == 1) {
      // Heterogeneous fleet: odd replicas run double-width TP (the test
      // setup is TP=2), so their roofline — and with it the router-side
      // service_tps — genuinely differs.
      spec.setup.tensor_parallel = 4;
      spec.setup.label += "-tp4";
    }
    config.replicas.push_back(std::move(spec));
  }
  config.router = policy;
  config.threads = threads;
  return config;
}

std::vector<Request> TestWorkload() {
  const Experiment exp(TestSetup());
  return SmallMixedWorkload(exp, /*duration=*/6.0, /*rps=*/3.0);
}

TEST(Cluster, PartitionPreservesOrderAndRequests) {
  const std::vector<Request> workload = TestWorkload();
  for (RouterPolicy policy : AllRouterPolicies()) {
    const Cluster cluster(MakeTestClusterConfig(policy, /*threads=*/1, /*replicas=*/3));
    MaterializedStream stream(workload);
    const std::vector<std::vector<Request>> parts = cluster.Partition(stream);
    ASSERT_EQ(parts.size(), 3u);
    size_t total = 0;
    std::map<uint64_t, int> seed_counts;
    for (const std::vector<Request>& part : parts) {
      double last_arrival = 0.0;
      for (size_t i = 0; i < part.size(); ++i) {
        // Dense sequential ids, as the request pool requires.
        EXPECT_EQ(part[i].id, static_cast<RequestId>(i));
        // Arrival order inherited from the stream.
        EXPECT_GE(part[i].arrival, last_arrival);
        last_arrival = part[i].arrival;
        ++seed_counts[part[i].stream_seed];
      }
      total += part.size();
    }
    // Nothing lost, nothing duplicated: every stream seed appears exactly
    // as often as in the source workload.
    EXPECT_EQ(total, workload.size());
    std::map<uint64_t, int> want;
    for (const Request& req : workload) {
      ++want[req.stream_seed];
    }
    EXPECT_EQ(seed_counts, want) << RouterPolicyName(policy);
  }
}

TEST(Cluster, PartitionIsDeterministic) {
  const std::vector<Request> workload = TestWorkload();
  for (RouterPolicy policy : AllRouterPolicies()) {
    const Cluster cluster(MakeTestClusterConfig(policy, /*threads=*/1, /*replicas=*/4));
    MaterializedStream s1(workload);
    MaterializedStream s2(workload);
    const auto p1 = cluster.Partition(s1);
    const auto p2 = cluster.Partition(s2);
    ASSERT_EQ(p1.size(), p2.size());
    for (size_t r = 0; r < p1.size(); ++r) {
      ASSERT_EQ(p1[r].size(), p2[r].size()) << RouterPolicyName(policy) << " replica " << r;
      for (size_t i = 0; i < p1[r].size(); ++i) {
        EXPECT_EQ(p1[r][i].stream_seed, p2[r][i].stream_seed);
        EXPECT_EQ(p1[r][i].arrival, p2[r][i].arrival);
      }
    }
  }
}

// The headline determinism guarantee: a same-seed cluster run is
// byte-identical at any thread count, for every routing policy.
TEST(Cluster, ThreadCountDoesNotChangeResultText) {
  const std::vector<Request> workload = TestWorkload();
  for (RouterPolicy policy : AllRouterPolicies()) {
    const Cluster serial(MakeTestClusterConfig(policy, /*threads=*/1));
    const Cluster parallel(MakeTestClusterConfig(policy, /*threads=*/4));
    MaterializedStream s1(workload);
    MaterializedStream s4(workload);
    const std::string text1 = serial.Run(SystemKind::kAdaServe, s1).Text();
    const std::string text4 = parallel.Run(SystemKind::kAdaServe, s4).Text();
    EXPECT_EQ(text1, text4) << RouterPolicyName(policy)
                            << ": threads=1 vs threads=4 diverged";
    EXPECT_FALSE(text1.empty());
  }
}

// A one-replica cluster is just the bare engine with extra bookkeeping:
// its merged metrics must match Experiment::Run on the same workload.
TEST(Cluster, SingleReplicaMatchesBareEngine) {
  const std::vector<Request> workload = TestWorkload();
  const Cluster cluster(MakeTestClusterConfig(RouterPolicy::kRoundRobin, /*threads=*/1,
                                              /*replicas=*/1));
  MaterializedStream stream(workload);
  const ClusterResult via_cluster = cluster.Run(SystemKind::kAdaServe, stream);
  ASSERT_EQ(via_cluster.replicas.size(), 1u);
  EXPECT_EQ(via_cluster.replicas[0].routed, workload.size());

  const Experiment exp(TestSetup());
  auto scheduler = MakeScheduler(SystemKind::kAdaServe);
  const EngineResult bare = exp.Run(*scheduler, workload);

  EXPECT_EQ(GoldenMetricsText(SystemKind::kAdaServe, via_cluster.metrics.merged),
            GoldenMetricsText(SystemKind::kAdaServe, bare.metrics));
  EXPECT_EQ(via_cluster.end_time, bare.end_time);
}

TEST(Cluster, MergedMetricsSumPerReplicaCounters) {
  const std::vector<Request> workload = TestWorkload();
  const Cluster cluster(MakeTestClusterConfig(RouterPolicy::kJoinShortestQueue,
                                              /*threads=*/2, /*replicas=*/2));
  MaterializedStream stream(workload);
  const ClusterResult result = cluster.Run(SystemKind::kAdaServe, stream);
  long finished = 0;
  size_t routed = 0;
  double max_makespan = 0.0;
  for (const ReplicaRunResult& replica : result.replicas) {
    finished += replica.result.metrics.finished;
    routed += replica.routed;
    max_makespan = std::max(max_makespan, replica.result.metrics.makespan);
  }
  EXPECT_EQ(result.metrics.merged.finished, finished);
  EXPECT_EQ(routed, workload.size());
  EXPECT_EQ(result.metrics.merged.makespan, max_makespan);
  EXPECT_GT(result.metrics.merged.finished, 0);
}

TEST(Cluster, SeedRouterStatesExposeHeterogeneity) {
  const Cluster cluster(MakeTestClusterConfig(RouterPolicy::kSloAware, /*threads=*/1,
                                              /*replicas=*/2));
  const std::vector<ReplicaRouterState> states = cluster.SeedRouterStates();
  ASSERT_EQ(states.size(), 2u);
  for (const ReplicaRouterState& s : states) {
    EXPECT_EQ(s.backlog_until, 0.0);
    EXPECT_GT(s.service_tps, 0.0);
    EXPECT_GT(s.spec_strength, 0.0);
  }
  // The TP=2 replica drains faster — its roofline service rate is higher.
  EXPECT_GT(states[1].service_tps, states[0].service_tps);
}

// EDF replicas behind the SLO-aware router: the deadline-theoretic
// baseline composes with the cluster layer like every other system, and
// keeps the thread-count byte-identity guarantee.
TEST(Cluster, EdfReplicasBehindSloAwareRouterAreDeterministic) {
  const std::vector<Request> workload = TestWorkload();
  for (SystemKind system : {SystemKind::kEdf, SystemKind::kEdfAdmission}) {
    const Cluster serial(MakeTestClusterConfig(RouterPolicy::kSloAware, /*threads=*/1));
    const Cluster parallel(MakeTestClusterConfig(RouterPolicy::kSloAware, /*threads=*/4));
    MaterializedStream s1(workload);
    MaterializedStream s4(workload);
    const ClusterResult r1 = serial.Run(system, s1);
    const std::string text4 = parallel.Run(system, s4).Text();
    EXPECT_EQ(r1.Text(), text4) << SystemName(system) << ": threads=1 vs threads=4 diverged";
    size_t routed = 0;
    long served = 0;
    for (const ReplicaRunResult& replica : r1.replicas) {
      routed += replica.routed;
      served += replica.result.metrics.finished + replica.result.metrics.rejections;
    }
    EXPECT_EQ(routed, workload.size());
    // Every routed request is accounted for: finished or (EDF+AC only)
    // rejected by the replica's admission controller.
    EXPECT_EQ(served, static_cast<long>(workload.size())) << SystemName(system);
    // Rejections surface in the merged cluster metrics, not just per
    // replica.
    EXPECT_EQ(r1.metrics.merged.rejections,
              r1.metrics.per_replica[0].rejections + r1.metrics.per_replica[1].rejections);
  }
}

}  // namespace
}  // namespace adaserve
