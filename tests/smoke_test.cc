// End-to-end smoke: every system serves a small workload to completion.
#include <gtest/gtest.h>

#include "src/adaserve.h"

namespace adaserve {
namespace {

TEST(Smoke, AllSystemsServeASmallWorkload) {
  Experiment exp(LlamaSetup());
  std::vector<Request> workload = exp.RealTraceWorkload(/*duration=*/10.0, /*mean_rps=*/2.0);
  ASSERT_GT(workload.size(), 0u);
  for (SystemKind kind : MainComparisonSet()) {
    auto scheduler = MakeScheduler(kind);
    const EngineResult result = exp.Run(*scheduler, workload);
    EXPECT_EQ(result.metrics.finished, static_cast<int>(workload.size()))
        << SystemName(kind) << " did not drain the workload";
    EXPECT_GT(result.metrics.ThroughputTps(), 0.0) << SystemName(kind);
  }
}

}  // namespace
}  // namespace adaserve
