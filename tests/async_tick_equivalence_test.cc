// Async tick pipeline equivalence proof — the planner-stage analogue of
// tick_equivalence_test.
//
// The async pipeline (TickPolicy::Async / AsyncTickConfig) plans each
// tick's mid-tick admission and prefill chunking on a planner thread
// while the decode phase "occupies the GPU", then reconciles the plan
// against the actual pool at phase-A end. The pipeline is an
// implementation overlap, not a schedule change, so every observable —
// the canonical GoldenMetricsText bytes, end time, iteration count —
// must be identical to the serial tick on the full pinned golden corpus
// (every MainComparisonSet system x 3 scenarios x 2 golden modes). The
// suite also pins the planner's effectiveness (plans must actually be
// produced and hit under continuous batching, not silently fall back to
// the serial path every tick) and the parallel-harness composition
// (async cells under SweepRunner threads=4 ≡ threads=1, which is what
// the TSan CI job exercises for cross-thread safety).
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace adaserve {
namespace {

struct GoldenCase {
  GoldenScenario scenario;
  GoldenMode mode;
};

std::vector<GoldenCase> GoldenCorpus() {
  return {
      {GoldenScenario::kRealTrace, GoldenMode::kTickNative},
      {GoldenScenario::kBursty, GoldenMode::kTickNative},
      {GoldenScenario::kDiurnal, GoldenMode::kTickNative},
      {GoldenScenario::kRealTrace, GoldenMode::kBoundary},
      {GoldenScenario::kBursty, GoldenMode::kBoundary},
      {GoldenScenario::kDiurnal, GoldenMode::kBoundary},
  };
}

// RunGoldenSystem with the planner toggled: same scheduler, same
// canonical workload, same mode config, plus tick.async_planner.
EngineResult RunGoldenCase(const Experiment& exp, SystemKind kind, const GoldenCase& c,
                           bool async) {
  auto scheduler = MakeScheduler(kind);
  const GoldenConfig config;
  EngineConfig engine =
      c.mode == GoldenMode::kBoundary ? BoundaryTickConfig() : EngineConfig{};
  engine.tick.async_planner = async;
  engine.sampling_seed = config.sampling_seed;
  if (c.scenario == GoldenScenario::kRealTrace) {
    return exp.Run(*scheduler, GoldenWorkload(exp, config), engine);
  }
  engine.retire_finished = true;
  auto stream = MakeGoldenStream(exp, c.scenario, config);
  return exp.Run(*scheduler, *stream, engine);
}

class AsyncTickEquivalence : public ::testing::TestWithParam<SystemKind> {};

// The core byte-identity proof: the async pipeline reproduces the serial
// tick exactly on every pinned golden corpus point.
TEST_P(AsyncTickEquivalence, PlannerPipelineByteIdenticalToSerialOnGoldenCorpus) {
  const SystemKind kind = GetParam();
  Experiment exp(GoldenSetup());
  for (const GoldenCase& c : GoldenCorpus()) {
    SCOPED_TRACE(GoldenModePrefix(c.mode) + GoldenScenarioPrefix(c.scenario) +
                 std::string(SystemName(kind)));
    const EngineResult serial = RunGoldenCase(exp, kind, c, /*async=*/false);
    const EngineResult async = RunGoldenCase(exp, kind, c, /*async=*/true);
    EXPECT_EQ(GoldenMetricsText(kind, serial.metrics), GoldenMetricsText(kind, async.metrics));
    EXPECT_EQ(serial.end_time, async.end_time);
    EXPECT_EQ(serial.total_iterations, async.total_iterations);
    EXPECT_EQ(serial.metrics.admissions, async.metrics.admissions);
    EXPECT_EQ(serial.metrics.evictions, async.metrics.evictions);
    // Serial runs never instantiate the planner.
    EXPECT_EQ(serial.plan_hits + serial.plan_misses, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(MainComparisonSet, AsyncTickEquivalence,
                         ::testing::ValuesIn(MainComparisonSet()),
                         [](const ::testing::TestParamInfo<SystemKind>& info) {
                           std::string name(SystemName(info.param));
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

// Byte-identity must not come from planning nothing: under continuous
// batching the speculative plan has to be produced every tick and hit on
// the (deterministic) golden trace most of the time — a planner that
// always missed would degenerate to serial-with-extra-threads.
TEST(AsyncTickPlanner, PlansEveryContinuousTickAndMostlyHits) {
  Experiment exp(GoldenSetup());
  const GoldenCase tick_native{GoldenScenario::kRealTrace, GoldenMode::kTickNative};
  const EngineResult result =
      RunGoldenCase(exp, SystemKind::kVllm, tick_native, /*async=*/true);
  EXPECT_EQ(result.planned_ticks, result.plan_hits + result.plan_misses);
  EXPECT_GT(result.planned_ticks, 0);
  EXPECT_GT(result.plan_hits, 0);
  // Misses happen exactly when the forecast diverges (mid-tick arrivals,
  // early finishes); on this corpus the hit path must dominate.
  EXPECT_GT(result.plan_hits, result.plan_misses);
}

// Boundary mode neutralizes the planner (ResolvedFor strips
// async_planner along with the other continuous-only knobs): asking for
// async at the boundary is the exact serial legacy loop, no plans made.
TEST(AsyncTickPlanner, BoundaryModeNeutralizesThePlanner) {
  Experiment exp(GoldenSetup());
  const GoldenCase boundary{GoldenScenario::kRealTrace, GoldenMode::kBoundary};
  const EngineResult result =
      RunGoldenCase(exp, SystemKind::kVllm, boundary, /*async=*/true);
  EXPECT_EQ(result.planned_ticks, 0);
  EXPECT_EQ(result.plan_hits, 0);
  EXPECT_EQ(result.plan_misses, 0);
}

// AsyncTickConfig is the tick-native default plus the planner — nothing
// else may drift, or the equivalence proof above tests the wrong config.
TEST(AsyncTickPlanner, AsyncTickConfigIsContinuousPlusPlanner) {
  EngineConfig async = AsyncTickConfig();
  EXPECT_TRUE(async.tick.async_planner);
  async.tick.async_planner = false;
  const EngineConfig defaults;
  EXPECT_EQ(async.tick.max_active, defaults.tick.max_active);
  EXPECT_EQ(async.tick.continuous, defaults.tick.continuous);
  EXPECT_EQ(async.tick.prefill_burst, defaults.tick.prefill_burst);
  EXPECT_EQ(async.tick.max_evictions, defaults.tick.max_evictions);
  EXPECT_EQ(async.tick.admission_priority, defaults.tick.admission_priority);
  EXPECT_EQ(async.tick.event_driven, defaults.tick.event_driven);
}

// Async cells composed with the parallel harness: each worker thread
// spins up its own planner thread, so threads=4 runs 8 threads total.
// Results must stay byte-identical to the serial sweep — this is the
// case the TSan CI job drives to prove the planner handoff race-free.
TEST(AsyncTickPlanner, ParallelHarnessThreads4ByteIdenticalToThreads1) {
  Experiment exp(GoldenSetup());
  const auto make_stream = [&exp] {
    return MakeGoldenStream(exp, GoldenScenario::kBursty);
  };
  EngineConfig engine = AsyncTickConfig();
  engine.retire_finished = true;
  const std::vector<ComparisonPoint> serial =
      RunComparison(exp, MainComparisonSet(), make_stream, engine, /*threads=*/1);
  const std::vector<ComparisonPoint> parallel =
      RunComparison(exp, MainComparisonSet(), make_stream, engine, /*threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].kind, parallel[i].kind);
    EXPECT_EQ(GoldenMetricsText(serial[i].kind, serial[i].result.metrics),
              GoldenMetricsText(parallel[i].kind, parallel[i].result.metrics))
        << SystemName(serial[i].kind);
    EXPECT_EQ(serial[i].result.end_time, parallel[i].result.end_time);
    EXPECT_EQ(serial[i].result.total_iterations, parallel[i].result.total_iterations);
  }
}

}  // namespace
}  // namespace adaserve
