#include "src/common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace adaserve {
namespace {

TEST(SmallVector, StaysInlineUpToCapacity) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) {
    v.push_back(i);
  }
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)], i);
  }
}

TEST(SmallVector, SpillsPastInlineCapacityPreservingContents) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 100; ++i) {
    v.push_back(i);
  }
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)], i);
  }
  EXPECT_EQ(v.back(), 99);
}

TEST(SmallVector, ElementExactlyAtSpillBoundary) {
  SmallVector<int, 2> v;
  v.push_back(10);
  v.push_back(20);  // Fills the inline region.
  v.push_back(30);  // First spilled element.
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v[2], 30);
}

TEST(SmallVector, ClearResetsAndIsReusableAcrossSpill) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 10; ++i) {
    v.push_back(i);
  }
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(7);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 7);
}

TEST(SmallVector, IterationMatchesIndexing) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 9; ++i) {
    v.push_back(i * i);
  }
  int idx = 0;
  for (int x : v) {
    EXPECT_EQ(x, idx * idx);
    ++idx;
  }
  EXPECT_EQ(idx, 9);
}

TEST(SmallVector, CopyAndMoveBothSidesOfTheBoundary) {
  SmallVector<int, 4> small;
  small.push_back(1);
  small.push_back(2);
  SmallVector<int, 4> small_copy(small);
  EXPECT_EQ(small_copy.size(), 2u);
  EXPECT_EQ(small_copy[1], 2);

  SmallVector<int, 4> big;
  for (int i = 0; i < 8; ++i) {
    big.push_back(i);
  }
  SmallVector<int, 4> big_copy(big);
  EXPECT_EQ(big_copy.size(), 8u);
  EXPECT_EQ(big_copy[7], 7);

  SmallVector<int, 4> moved(std::move(big));
  EXPECT_EQ(moved.size(), 8u);
  EXPECT_EQ(moved[7], 7);
  EXPECT_TRUE(big.empty());  // NOLINT(bugprone-use-after-move): spec'd reset.
}

TEST(VectorPool, AcquireWithoutReleaseAllocatesFresh) {
  VectorPool<int> pool;
  std::vector<int> v = pool.Acquire();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(pool.reuses(), 0u);
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(VectorPool, RecyclesCapacity) {
  VectorPool<int> pool;
  std::vector<int> v;
  v.reserve(128);
  v.push_back(1);
  pool.Release(std::move(v));
  EXPECT_EQ(pool.pooled(), 1u);

  std::vector<int> recycled = pool.Acquire();
  EXPECT_TRUE(recycled.empty());
  EXPECT_GE(recycled.capacity(), 128u);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(VectorPool, IgnoresCapacitylessReleases) {
  VectorPool<int> pool;
  pool.Release(std::vector<int>{});
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(Arena, AllocationsAreDistinctAndAligned) {
  Arena arena(256);
  int* a = arena.Allocate<int>();
  double* b = arena.Allocate<double>();
  int64_t* c = arena.Allocate<int64_t>(10);
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(b));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % alignof(int64_t), 0u);
  *a = 1;
  *b = 2.0;
  c[9] = 3;
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2.0);
  EXPECT_EQ(c[9], 3);
}

TEST(Arena, AllocationLargerThanChunkGetsDedicatedChunk) {
  Arena arena(64);
  int* big = arena.Allocate<int>(100);  // 400 bytes > 64-byte chunks.
  for (int i = 0; i < 100; ++i) {
    big[i] = i;
  }
  EXPECT_EQ(big[99], 99);
  EXPECT_GE(arena.bytes_allocated(), 400u);
}

TEST(Arena, ResetReclaimsAndValueInitializes) {
  Arena arena(128);
  int* p = arena.Allocate<int>(4);
  p[0] = 42;
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  int* q = arena.Allocate<int>(4);
  EXPECT_EQ(q[0], 0);  // Value-initialized despite reusing the chunk.
}

}  // namespace
}  // namespace adaserve
