// Streaming-equivalence property suite: for every system in
// MainComparisonSet() and every generator-backed stream scenario, a run fed
// lazily by the stream must produce bit-identical metrics to a run fed the
// same trace as a materialized vector — including when the streaming run
// retires finished requests and skips the iteration log. This extends the
// PR-1 determinism guarantee to the lazy admission path.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace adaserve {
namespace {

// Stream scenarios exercised per system. Each factory call returns a fresh
// identical (same-seed) stream.
struct Scenario {
  const char* name;
  StreamFactory make;
};

std::vector<Scenario> Scenarios(const Experiment& exp) {
  const std::vector<CategorySpec> cats = exp.Categories();
  return {
      {"real_trace",
       [&exp] { return exp.RealTraceStream(/*duration=*/6.0, /*mean_rps=*/3.0); }},
      {"bursty",
       [cats] {
         MmppStreamConfig config;
         config.mmpp.state_rps = {1.0, 9.0};
         config.mmpp.mean_sojourn_s = {1.5, 1.0};
         config.duration = 6.0;
         config.trace_seed = 17;
         return MakeMmppStream(cats, config);
       }},
      {"diurnal",
       [cats] {
         DiurnalStreamConfig config;
         config.duration = 6.0;
         config.mean_rps = 3.5;
         config.diurnal.period_s = 6.0;
         config.diurnal.amplitude = 0.9;
         config.trace_seed = 23;
         return MakeDiurnalStream(cats, config);
       }},
      {"churn",
       [cats] {
         ChurnStreamConfig config;
         config.duration = 6.0;
         config.mean_rps = 3.5;
         config.trace_seed = 31;
         return MakeChurnStream(cats, config);
       }},
  };
}

void ExpectMetricsBitIdentical(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.attained, b.attained);
  EXPECT_EQ(a.output_tokens(), b.output_tokens());
  EXPECT_EQ(a.attained_tokens(), b.attained_tokens());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.mean_accepted, b.mean_accepted);
  EXPECT_EQ(a.ThroughputTps(), b.ThroughputTps());
  EXPECT_EQ(a.GoodputTps(), b.GoodputTps());
  EXPECT_EQ(a.spec_time, b.spec_time);
  EXPECT_EQ(a.select_time, b.select_time);
  EXPECT_EQ(a.verify_time, b.verify_time);
  EXPECT_EQ(a.prefill_time, b.prefill_time);
  EXPECT_EQ(a.total_time, b.total_time);
  for (size_t c = 0; c < static_cast<size_t>(kNumCategories); ++c) {
    const CategoryMetrics& ca = a.per_category[c];
    const CategoryMetrics& cb = b.per_category[c];
    EXPECT_EQ(ca.finished, cb.finished) << "cat " << c;
    EXPECT_EQ(ca.attained, cb.attained) << "cat " << c;
    EXPECT_EQ(ca.output_tokens, cb.output_tokens) << "cat " << c;
    EXPECT_EQ(ca.attained_tokens, cb.attained_tokens) << "cat " << c;
    // Per-request sample vectors, element-exact: accumulation order on the
    // streaming path (retire in id order) must match the batch path.
    EXPECT_EQ(ca.tpot_ms.values(), cb.tpot_ms.values()) << "cat " << c;
    EXPECT_EQ(ca.ttft_ms.values(), cb.ttft_ms.values()) << "cat " << c;
  }
}

class StreamingEquivalence : public ::testing::TestWithParam<SystemKind> {
 protected:
  static void SetUpTestSuite() { exp_ = new Experiment(TestSetup()); }
  static void TearDownTestSuite() {
    delete exp_;
    exp_ = nullptr;
  }
  static Experiment* exp_;
};

Experiment* StreamingEquivalence::exp_ = nullptr;

// Lazy stream vs the same trace materialized up front: identical metrics,
// iteration log, and per-request records.
TEST_P(StreamingEquivalence, LazyStreamMatchesMaterializedVector) {
  const SystemKind kind = GetParam();
  for (const Scenario& scenario : Scenarios(*exp_)) {
    SCOPED_TRACE(scenario.name);
    auto drain = scenario.make();
    std::vector<Request> trace = Materialize(*drain);
    ASSERT_FALSE(trace.empty());

    auto vec_scheduler = MakeScheduler(kind);
    const EngineResult vec_run = exp_->Run(*vec_scheduler, trace);

    auto stream = scenario.make();
    auto stream_scheduler = MakeScheduler(kind);
    const EngineResult stream_run = exp_->Run(*stream_scheduler, *stream);

    ExpectMetricsBitIdentical(vec_run.metrics, stream_run.metrics);
    EXPECT_EQ(vec_run.end_time, stream_run.end_time);
    EXPECT_EQ(vec_run.total_iterations, stream_run.total_iterations);
    ASSERT_EQ(vec_run.iterations.size(), stream_run.iterations.size());
    ASSERT_EQ(vec_run.requests.size(), stream_run.requests.size());
    EXPECT_EQ(stream_run.requests.size(), trace.size());
    for (size_t i = 0; i < vec_run.requests.size(); ++i) {
      EXPECT_EQ(vec_run.requests[i].output, stream_run.requests[i].output) << "request " << i;
      EXPECT_EQ(vec_run.requests[i].token_times, stream_run.requests[i].token_times)
          << "request " << i;
      EXPECT_EQ(vec_run.requests[i].finish_time, stream_run.requests[i].finish_time)
          << "request " << i;
    }
  }
}

// The O(active)-memory configuration (retire finished requests, no
// iteration log) must not change a single metric bit.
TEST_P(StreamingEquivalence, RetiringRunMetricsBitIdentical) {
  const SystemKind kind = GetParam();
  for (const Scenario& scenario : Scenarios(*exp_)) {
    SCOPED_TRACE(scenario.name);
    auto drain = scenario.make();
    const std::vector<Request> trace = Materialize(*drain);
    ASSERT_FALSE(trace.empty());

    auto vec_scheduler = MakeScheduler(kind);
    const EngineResult vec_run = exp_->Run(*vec_scheduler, trace);

    EngineConfig streaming;
    streaming.retire_finished = true;
    streaming.record_iterations = false;
    auto stream = scenario.make();
    auto stream_scheduler = MakeScheduler(kind);
    const EngineResult stream_run = exp_->Run(*stream_scheduler, *stream, streaming);

    ExpectMetricsBitIdentical(vec_run.metrics, stream_run.metrics);
    EXPECT_EQ(vec_run.end_time, stream_run.end_time);
    EXPECT_EQ(vec_run.total_iterations, stream_run.total_iterations);
    // The streaming run keeps no per-request or per-iteration state around.
    EXPECT_TRUE(stream_run.requests.empty());
    EXPECT_TRUE(stream_run.iterations.empty());
    EXPECT_LE(stream_run.peak_resident_requests, trace.size());
  }
}

// A MaterializedStream over the trace must be indistinguishable from the
// vector overload (which wraps one internally).
TEST_P(StreamingEquivalence, MaterializedStreamMatchesVectorOverload) {
  const SystemKind kind = GetParam();
  auto drain = Scenarios(*exp_)[0].make();
  const std::vector<Request> trace = Materialize(*drain);
  ASSERT_FALSE(trace.empty());

  auto vec_scheduler = MakeScheduler(kind);
  const EngineResult vec_run = exp_->Run(*vec_scheduler, trace);

  MaterializedStream stream(trace);
  auto stream_scheduler = MakeScheduler(kind);
  const EngineResult stream_run = exp_->Run(*stream_scheduler, stream);

  ExpectMetricsBitIdentical(vec_run.metrics, stream_run.metrics);
  EXPECT_EQ(vec_run.end_time, stream_run.end_time);
}

std::string ParamName(const ::testing::TestParamInfo<SystemKind>& info) {
  return GoldenFileSlug(info.param);
}

INSTANTIATE_TEST_SUITE_P(MainComparison, StreamingEquivalence,
                         ::testing::ValuesIn(MainComparisonSet()), ParamName);

}  // namespace
}  // namespace adaserve
