// Unit tests for the harness ThreadPool: result ordering via futures,
// exception propagation, nested submission, and the zero-/one-thread edge
// cases the sweep engine's serial mode depends on.
#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace adaserve {
namespace {

TEST(ThreadPoolTest, FuturesPairWithTheirTasksRegardlessOfCompletionOrder) {
  ThreadPool pool(4);
  constexpr int kTasks = 64;
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([i] {
      // Earlier tasks sleep longer, so completion order inverts
      // submission order within each worker's stride.
      std::this_thread::sleep_for(std::chrono::microseconds((kTasks - i) * 10));
      return i * i;
    }));
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCallerAndPoolSurvives) {
  ThreadPool pool(2);
  std::future<int> boom = pool.Submit([]() -> int {
    throw std::runtime_error("cell exploded");
  });
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The worker that ran the throwing task keeps serving.
  std::future<int> ok = pool.Submit([] { return 7; });
  EXPECT_EQ(ok.get(), 7);
}

TEST(ThreadPoolTest, ExceptionMessageSurvivesTheFuture) {
  ThreadPool pool(1);
  std::future<void> boom = pool.Submit([] {
    throw std::runtime_error("scheduler made no progress");
  });
  try {
    boom.get();
    FAIL() << "expected the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "scheduler made no progress");
  }
}

TEST(ThreadPoolTest, NestedSubmissionCompletes) {
  ThreadPool pool(2);
  std::future<int> outer = pool.Submit([&pool] {
    // Submitting from inside a worker must not deadlock; the second
    // worker (or this one, after finishing) picks the nested task up.
    std::future<int> inner = pool.Submit([] { return 21; });
    return inner.get() * 2;
  });
  EXPECT_EQ(outer.get(), 42);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInlineOnTheCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0);
  const std::thread::id caller = std::this_thread::get_id();
  std::future<std::thread::id> ran_on = pool.Submit([] { return std::this_thread::get_id(); });
  // Inline mode: the future is ready the moment Submit returns.
  ASSERT_EQ(ran_on.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(ran_on.get(), caller);
}

TEST(ThreadPoolTest, ZeroThreadsNestedSubmissionRunsInline) {
  ThreadPool pool(0);
  std::future<int> outer = pool.Submit([&pool] {
    std::future<int> inner = pool.Submit([] { return 5; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 6);
}

TEST(ThreadPoolTest, OneThreadExecutesInFifoOrder) {
  std::vector<int> order;
  std::mutex mu;
  {
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.Submit([i, &order, &mu] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(i);
      }));
    }
    for (auto& future : futures) {
      future.get();
    }
  }
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 8; ++i) {
      futures.push_back(pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      }));
    }
    // Destroy with most tasks still queued behind the single worker.
  }
  EXPECT_EQ(ran.load(), 8);
  for (auto& future : futures) {
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
}

}  // namespace
}  // namespace adaserve
