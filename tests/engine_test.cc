#include "src/serve/engine.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace adaserve {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : exp_(TestSetup()) {}
  Experiment exp_;
};

TEST_F(EngineTest, DrainsAllRequests) {
  VllmScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.finished, static_cast<int>(workload.size()));
}

TEST_F(EngineTest, MakespanCoversTrace) {
  VllmScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_GE(result.end_time, workload.back().arrival);
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  VllmScheduler s1;
  VllmScheduler s2;
  const EngineResult a = exp_.Run(s1, workload);
  const EngineResult b = exp_.Run(s2, workload);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.iterations.size(), b.iterations.size());
  EXPECT_EQ(a.metrics.GoodputTps(), b.metrics.GoodputTps());
}

TEST_F(EngineTest, IterationDurationsPositiveAndSumToMakespanMinusIdle) {
  AdaServeScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload);
  SimTime busy = 0.0;
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_GT(rec.duration, 0.0);
    busy += rec.duration;
  }
  EXPECT_LE(busy, result.end_time + 1e-9);
}

TEST_F(EngineTest, TokenTimesMonotonePerRequest) {
  AdaServeScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  Engine engine(&exp_.target(), &exp_.draft(), &exp_.target_latency(), &exp_.draft_latency());
  // Run via Experiment to reuse metrics, then re-check invariants on a raw
  // engine run (which returns the same metrics struct).
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.finished, static_cast<int>(workload.size()));
}

TEST_F(EngineTest, ExplicitBudgetOverridesDerived) {
  const std::vector<Request> workload =
      UniformWorkload(exp_, /*n=*/4, kCatChat, /*spread_s=*/0.1);
  AdaServeScheduler small_budget;
  AdaServeScheduler big_budget;
  const EngineResult small = exp_.Run(small_budget, workload, {}, /*verify_budget=*/16);
  const EngineResult big = exp_.Run(big_budget, workload, {}, /*verify_budget=*/512);
  // A larger budget admits more speculation per iteration.
  EXPECT_GE(big.metrics.mean_accepted, small.metrics.mean_accepted);
}

TEST_F(EngineTest, GreedyModeIsDeterministicAcrossSamplingSeeds) {
  const std::vector<Request> workload =
      UniformWorkload(exp_, /*n=*/3, kCatChat, /*spread_s=*/0.1);
  EngineConfig config_a;
  config_a.mode = DecodeMode::kGreedy;
  config_a.sampling_seed = 1;
  EngineConfig config_b = config_a;
  config_b.sampling_seed = 999;
  VllmScheduler s1;
  VllmScheduler s2;
  const EngineResult a = exp_.Run(s1, workload, config_a);
  const EngineResult b = exp_.Run(s2, workload, config_b);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST_F(EngineTest, IdleGapsSkippedToNextArrival) {
  // Two requests far apart: the engine must jump the clock, not spin.
  std::vector<Request> workload = UniformWorkload(exp_, 2, kCatChat, 0.0);
  workload[1].arrival = 100.0;
  VllmScheduler scheduler;
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_GE(result.end_time, 100.0);
  EXPECT_LT(result.iterations.size(), 500u);  // no busy-waiting
}

TEST_F(EngineTest, MetricsBreakdownMatchesIterationLog) {
  AdaServeScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload);
  SimTime spec = 0.0;
  SimTime verify = 0.0;
  for (const IterationRecord& rec : result.iterations) {
    spec += rec.spec_time;
    verify += rec.verify_time;
  }
  EXPECT_NEAR(result.metrics.spec_time, spec, 1e-9);
  EXPECT_NEAR(result.metrics.verify_time, verify, 1e-9);
}

}  // namespace
}  // namespace adaserve
