#include "src/serve/engine.h"

#include <gtest/gtest.h>

#include "src/harness/golden.h"
#include "tests/test_util.h"

namespace adaserve {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : exp_(TestSetup()) {}
  Experiment exp_;
};

TEST_F(EngineTest, DrainsAllRequests) {
  VllmScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.finished, static_cast<int>(workload.size()));
}

TEST_F(EngineTest, MakespanCoversTrace) {
  VllmScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_GE(result.end_time, workload.back().arrival);
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  VllmScheduler s1;
  VllmScheduler s2;
  const EngineResult a = exp_.Run(s1, workload);
  const EngineResult b = exp_.Run(s2, workload);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.iterations.size(), b.iterations.size());
  EXPECT_EQ(a.metrics.GoodputTps(), b.metrics.GoodputTps());
}

TEST_F(EngineTest, IterationDurationsPositiveAndSumToMakespanMinusIdle) {
  AdaServeScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload);
  SimTime busy = 0.0;
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_GT(rec.duration, 0.0);
    busy += rec.duration;
  }
  EXPECT_LE(busy, result.end_time + 1e-9);
}

TEST_F(EngineTest, TokenTimesMonotonePerRequest) {
  AdaServeScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  Engine engine(&exp_.target(), &exp_.draft(), &exp_.target_latency(), &exp_.draft_latency());
  // Run via Experiment to reuse metrics, then re-check invariants on a raw
  // engine run (which returns the same metrics struct).
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.finished, static_cast<int>(workload.size()));
}

TEST_F(EngineTest, ExplicitBudgetOverridesDerived) {
  const std::vector<Request> workload =
      UniformWorkload(exp_, /*n=*/4, kCatChat, /*spread_s=*/0.1);
  AdaServeScheduler small_budget;
  AdaServeScheduler big_budget;
  const EngineResult small = exp_.Run(small_budget, workload, {}, /*verify_budget=*/16);
  const EngineResult big = exp_.Run(big_budget, workload, {}, /*verify_budget=*/512);
  // A larger budget admits more speculation per iteration.
  EXPECT_GE(big.metrics.mean_accepted, small.metrics.mean_accepted);
}

TEST_F(EngineTest, GreedyModeIsDeterministicAcrossSamplingSeeds) {
  const std::vector<Request> workload =
      UniformWorkload(exp_, /*n=*/3, kCatChat, /*spread_s=*/0.1);
  EngineConfig config_a;
  config_a.mode = DecodeMode::kGreedy;
  config_a.sampling_seed = 1;
  EngineConfig config_b = config_a;
  config_b.sampling_seed = 999;
  VllmScheduler s1;
  VllmScheduler s2;
  const EngineResult a = exp_.Run(s1, workload, config_a);
  const EngineResult b = exp_.Run(s2, workload, config_b);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST_F(EngineTest, IdleGapsSkippedToNextArrival) {
  // Two requests far apart: the engine must jump the clock, not spin.
  std::vector<Request> workload = UniformWorkload(exp_, 2, kCatChat, 0.0);
  workload[1].arrival = 100.0;
  VllmScheduler scheduler;
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_GE(result.end_time, 100.0);
  EXPECT_LT(result.iterations.size(), 500u);  // no busy-waiting
}

// A category table with fixed tiny lengths: scale tests stress request
// volume, not token volume.
std::vector<CategorySpec> TinyCategories(const Experiment& exp) {
  std::vector<CategorySpec> cats = exp.Categories();
  for (CategorySpec& cat : cats) {
    cat.prompt_len = LengthDist{.log_mean = 0.0, .log_stddev = 0.0, .min_len = 8, .max_len = 8};
    cat.output_len = LengthDist{.log_mean = 0.0, .log_stddev = 0.0, .min_len = 4, .max_len = 4};
  }
  return cats;
}

TEST_F(EngineTest, BurstyBackpressureNeverExceedsAdmissionCapOrDropsRequests) {
  // An ON/OFF burst process whose ON rate dwarfs the admission cap: the
  // engine must keep admission at the cap, hold the rest in the bounded
  // horizon, and still drain every request.
  MmppStreamConfig config;
  config.mmpp.state_rps = {5.0, 400.0};
  config.mmpp.mean_sojourn_s = {1.0, 1.0};
  config.duration = 8.0;
  config.trace_seed = 5;
  auto stream = MakeMmppStream(TinyCategories(exp_), config);

  EngineConfig engine;
  engine.max_active_requests = 8;
  engine.arrival_horizon = 16;
  engine.retire_finished = true;
  VllmScheduler scheduler;
  const EngineResult result = exp_.Run(scheduler, *stream, engine);

  // No request dropped: everything the generator emitted finished.
  EXPECT_EQ(result.metrics.finished, static_cast<int>(stream->emitted()));
  EXPECT_GT(result.metrics.finished, 300) << "burst too small to stress admission";
  // Admission never exceeds the cap.
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_LE(rec.decode_requests, engine.max_active_requests);
  }
  // Residency stays near cap + horizon even though arrivals outpace
  // service by ~50x during bursts: queue <= cap + horizon, active <= cap,
  // plus a short-lived tail of finished requests awaiting retirement.
  EXPECT_LE(result.peak_resident_requests,
            static_cast<size_t>(engine.arrival_horizon + 4 * engine.max_active_requests));
}

TEST_F(EngineTest, SmokeScale100kPeakResidencyStaysNearActiveSet) {
  // 100k requests through a lazy stream: peak residency must track the
  // active set + horizon, not the trace length.
  ChurnStreamConfig config;
  config.duration = 1e9;  // effectively unbounded; the cap ends the stream
  config.mean_rps = 2000.0;
  config.trace_seed = 9;
  config.max_requests = 100'000;
  auto stream = MakeChurnStream(TinyCategories(exp_), config);

  EngineConfig engine;
  engine.max_active_requests = 64;
  engine.arrival_horizon = 64;
  engine.retire_finished = true;
  engine.record_iterations = false;
  VllmScheduler scheduler;
  const EngineResult result = exp_.Run(scheduler, *stream, engine);

  EXPECT_EQ(result.metrics.finished, 100'000);
  EXPECT_GT(result.total_iterations, 0);
  EXPECT_TRUE(result.requests.empty());
  const size_t bound =
      static_cast<size_t>(engine.arrival_horizon + 4 * engine.max_active_requests);
  EXPECT_LE(result.peak_resident_requests, bound)
      << "peak residency is O(trace), not O(active)";
}

TEST_F(EngineTest, MetricsBreakdownMatchesIterationLog) {
  AdaServeScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload);
  SimTime spec = 0.0;
  SimTime verify = 0.0;
  for (const IterationRecord& rec : result.iterations) {
    spec += rec.spec_time;
    verify += rec.verify_time;
  }
  EXPECT_NEAR(result.metrics.spec_time, spec, 1e-9);
  EXPECT_NEAR(result.metrics.verify_time, verify, 1e-9);
}

TEST_F(EngineTest, ContinuousTicksDrainEverythingAndCountAdmissions) {
  VllmScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload, ContinuousTickConfig());
  EXPECT_EQ(result.metrics.finished, static_cast<int>(workload.size()));
  EXPECT_EQ(result.metrics.admissions,
            static_cast<long>(workload.size()) + result.metrics.evictions);
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_GT(rec.duration, 0.0);
  }
}

TEST_F(EngineTest, ContinuousTicksAreDeterministic) {
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  AdaServeScheduler s1;
  AdaServeScheduler s2;
  const EngineResult a = exp_.Run(s1, workload, ContinuousTickConfig());
  const EngineResult b = exp_.Run(s2, workload, ContinuousTickConfig());
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.total_iterations, b.total_iterations);
  EXPECT_EQ(a.metrics.GoodputTps(), b.metrics.GoodputTps());
}

TEST_F(EngineTest, ContinuousTicksAdmitLateArrivalsSoonerThanBoundaryTicks) {
  // One giant prompt occupies the engine while a short request lands
  // mid-flight. Boundary mode cannot see the late arrival until the long
  // tick completes; tick-native mode admits it mid-tick and burst-caps
  // the big prompt's prefill, so the short request's first token lands
  // strictly earlier.
  std::vector<Request> workload = UniformWorkload(exp_, 2, kCatChat, 0.0,
                                                  /*prompt_len=*/6000, /*output_len=*/8);
  workload[1].prompt_len = 32;
  workload[1].arrival = 0.005;

  VllmScheduler boundary_scheduler;
  const EngineResult boundary = exp_.Run(boundary_scheduler, workload, BoundaryTickConfig());
  VllmScheduler continuous_scheduler;
  const EngineResult continuous =
      exp_.Run(continuous_scheduler, workload, ContinuousTickConfig());

  ASSERT_EQ(boundary.metrics.finished, 2);
  ASSERT_EQ(continuous.metrics.finished, 2);
  const auto ttft = [](const EngineResult& r, RequestId id) {
    return r.requests[id].first_token_time - r.requests[id].arrival;
  };
  EXPECT_LT(ttft(continuous, 1), ttft(boundary, 1));
}

TEST_F(EngineTest, ContinuousStreamingRunRetiresAndMatchesVectorPath) {
  // The tick-native mode composes with the lazy streaming path: stream-fed
  // and vector-fed runs of the same trace stay bit-identical.
  EngineConfig engine = ContinuousTickConfig();
  engine.retire_finished = true;
  engine.record_iterations = false;
  VllmSpecScheduler s1(VllmSpecConfig{.spec_len = 4});
  auto stream = exp_.RealTraceStream(8.0, 3.0, WorkloadConfig{.mix = {0.4, 0.3, 0.3}});
  const EngineResult streamed = exp_.Run(s1, *stream, engine);

  VllmSpecScheduler s2(VllmSpecConfig{.spec_len = 4});
  const EngineResult vector_fed =
      exp_.Run(s2, SmallMixedWorkload(exp_), ContinuousTickConfig());
  EXPECT_EQ(streamed.metrics.finished, vector_fed.metrics.finished);
  EXPECT_EQ(streamed.metrics.GoodputTps(), vector_fed.metrics.GoodputTps());
  EXPECT_EQ(streamed.end_time, vector_fed.end_time);
  EXPECT_TRUE(streamed.requests.empty());
}

TEST_F(EngineTest, NextEventSkipMatchesPerTickLoopByteForByte) {
  // Sparse arrivals (one request every ~2.5 s) maximize idle gaps, the
  // next-event skip's whole domain. Everything observable must match the
  // probe-every-gap loop exactly, including the iteration count: an idle
  // gap costs one loop iteration either way.
  const std::vector<Request> workload = UniformWorkload(exp_, 12, 1, 30.0);
  EngineConfig per_tick;
  per_tick.tick.event_driven = false;
  const EngineConfig event_driven;  // Default: event_driven = true.

  AdaServeScheduler s1;
  AdaServeScheduler s2;
  const EngineResult a = exp_.Run(s1, workload, per_tick);
  const EngineResult b = exp_.Run(s2, workload, event_driven);

  EXPECT_EQ(GoldenMetricsText(SystemKind::kAdaServe, a.metrics),
            GoldenMetricsText(SystemKind::kAdaServe, b.metrics));
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.total_iterations, b.total_iterations);
  EXPECT_EQ(a.peak_resident_requests, b.peak_resident_requests);
  EXPECT_EQ(a.iterations.size(), b.iterations.size());
}

TEST_F(EngineTest, SkipTargetArrivalIsServedImmediately) {
  // Two bursts separated by a long gap: the skip lands the clock exactly
  // on the second burst's first arrival, which must be pulled and served
  // on that very iteration (no off-by-one past the skip target).
  std::vector<Request> workload = UniformWorkload(exp_, 2, 1, 0.5);
  Request late;
  late.id = 2;
  late.category = 1;
  late.tpot_slo = workload[0].tpot_slo;
  late.arrival = 60.0;
  late.prompt_len = 32;
  late.target_output_len = 8;
  late.stream_seed = HashCombine(0xfeed, 2);
  workload.push_back(late);

  VllmScheduler scheduler;
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.finished, 3);
  // The late request is served at its arrival, not a tick-quantized later
  // time: its first token lands within one decode iteration of 60 s.
  ASSERT_EQ(result.requests.size(), 3u);
  EXPECT_GE(result.requests[2].first_token_time, 60.0);
  EXPECT_LT(result.requests[2].first_token_time, 61.0);
}

}  // namespace
}  // namespace adaserve
