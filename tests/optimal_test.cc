#include "src/core/optimal.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/rng.h"

namespace adaserve {
namespace {

LmConfig OracleConfig() {
  LmConfig config;
  config.vocab_size = 100;
  config.support = 4;
  config.context_order = 2;
  config.zipf_exponent = 1.5;
  config.seed = 31;
  return config;
}

std::vector<Token> Ctx(Token a, Token b) { return {a, b}; }

TEST(Optimal, TrivialRequirementIsAlwaysValid) {
  const SyntheticLm oracle(OracleConfig());
  const std::vector<Token> ctx = Ctx(1, 2);
  const OracleRequest req{.stream = 1, .committed = ctx, .a_req = 1.0};
  const OptimalOutput out =
      OptimalConstruct(oracle, std::span<const OracleRequest>(&req, 1), 0);
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.tokens_used, 0);
  EXPECT_NEAR(out.expected[0], 1.0, 1e-12);
}

TEST(Optimal, InvalidWhenBudgetCannotMeetRequirement) {
  const SyntheticLm oracle(OracleConfig());
  const std::vector<Token> ctx = Ctx(1, 2);
  // Demanding 3 expected tokens with a budget of 1 is infeasible: one node
  // contributes at most f(v) <= 1, so n_acc <= 2.
  const OracleRequest req{.stream = 1, .committed = ctx, .a_req = 3.0};
  const OptimalOutput out =
      OptimalConstruct(oracle, std::span<const OracleRequest>(&req, 1), 1);
  EXPECT_FALSE(out.valid);
}

TEST(Optimal, ValidWithSufficientBudget) {
  const SyntheticLm oracle(OracleConfig());
  const std::vector<Token> ctx = Ctx(1, 2);
  const OracleRequest req{.stream = 1, .committed = ctx, .a_req = 1.5};
  const OptimalOutput out =
      OptimalConstruct(oracle, std::span<const OracleRequest>(&req, 1), 50);
  ASSERT_TRUE(out.valid);
  EXPECT_GE(out.expected[0], 1.5);
  EXPECT_EQ(out.tokens_used, 50);  // Step 2 spends everything available.
}

TEST(Optimal, ExpectedEqualsOnePlusSumOfTreePathProbs) {
  const SyntheticLm oracle(OracleConfig());
  const std::vector<Token> ctx = Ctx(3, 4);
  const OracleRequest req{.stream = 2, .committed = ctx, .a_req = 1.0};
  const OptimalOutput out =
      OptimalConstruct(oracle, std::span<const OracleRequest>(&req, 1), 10);
  ASSERT_TRUE(out.valid);
  const TokenTree& tree = out.trees[0];
  double sum = 1.0;
  for (NodeId id = 1; id < tree.size(); ++id) {
    sum += tree.node(id).path_prob;
  }
  EXPECT_NEAR(out.expected[0], sum, 1e-9);
  EXPECT_EQ(tree.size() - 1, out.tokens_used);
}

TEST(Optimal, TreePathProbsMatchOracle) {
  const SyntheticLm oracle(OracleConfig());
  const std::vector<Token> ctx = Ctx(3, 4);
  const OracleRequest req{.stream = 2, .committed = ctx, .a_req = 1.0};
  const OptimalOutput out =
      OptimalConstruct(oracle, std::span<const OracleRequest>(&req, 1), 8);
  const TokenTree& tree = out.trees[0];
  for (NodeId id = 1; id < tree.size(); ++id) {
    std::vector<Token> walk = ctx;
    double f = 1.0;
    for (Token tok : tree.PathTokens(id)) {
      f *= oracle.NextDist(2, walk).ProbOf(tok);
      walk.push_back(tok);
    }
    EXPECT_NEAR(tree.node(id).path_prob, f, 1e-9);
  }
}

// Appendix C, Lemma C.2: for a fixed budget the greedy selection maximises
// the sum of f(v). Compare against random connected alternatives.
TEST(Optimal, BeatsRandomConnectedAlternatives) {
  const SyntheticLm oracle(OracleConfig());
  const std::vector<Token> ctx = Ctx(5, 6);
  const OracleRequest req{.stream = 3, .committed = ctx, .a_req = 1.0};
  constexpr int kBudget = 6;
  const OptimalOutput out =
      OptimalConstruct(oracle, std::span<const OracleRequest>(&req, 1), kBudget);
  ASSERT_TRUE(out.valid);
  const double optimal_value = out.TotalExpected();

  // Random alternative: grow a connected tree by repeatedly expanding a
  // random frontier node with a random child from the oracle distribution.
  // Duplicate (parent, token) expansions are skipped — a tree holds each
  // node at most once — and the skipped step still consumes budget, keeping
  // the alternative at most kBudget distinct nodes.
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    struct Alt {
      std::vector<Token> path;
      double f;
    };
    std::vector<Alt> nodes = {{{}, 1.0}};
    std::set<std::vector<Token>> seen = {{}};
    double value = 1.0;
    for (int step = 0; step < kBudget; ++step) {
      const Alt parent = nodes[rng.UniformInt(nodes.size())];
      std::vector<Token> walk = ctx;
      walk.insert(walk.end(), parent.path.begin(), parent.path.end());
      const SparseDist dist = oracle.NextDist(3, walk);
      const auto& entry = dist.entry(rng.UniformInt(dist.size()));
      Alt child;
      child.path = parent.path;
      child.path.push_back(entry.token);
      if (!seen.insert(child.path).second) {
        continue;  // Already in the tree; cannot count its mass twice.
      }
      child.f = parent.f * entry.prob;
      value += child.f;
      nodes.push_back(child);
    }
    EXPECT_LE(value, optimal_value + 1e-9) << "random alternative beat Algorithm 1";
  }
}

TEST(Optimal, MonotoneInBudget) {
  const SyntheticLm oracle(OracleConfig());
  const std::vector<Token> ctx = Ctx(7, 8);
  const OracleRequest req{.stream = 4, .committed = ctx, .a_req = 1.0};
  double prev = 0.0;
  for (int budget : {0, 2, 4, 8, 16, 32}) {
    const OptimalOutput out =
        OptimalConstruct(oracle, std::span<const OracleRequest>(&req, 1), budget);
    ASSERT_TRUE(out.valid);
    EXPECT_GE(out.TotalExpected(), prev);
    prev = out.TotalExpected();
  }
}

TEST(Optimal, MultiRequestSharesBudgetGlobally) {
  const SyntheticLm oracle(OracleConfig());
  const std::vector<Token> ctx_a = Ctx(1, 1);
  const std::vector<Token> ctx_b = Ctx(2, 2);
  const std::vector<OracleRequest> reqs = {
      {.stream = 10, .committed = ctx_a, .a_req = 1.0},
      {.stream = 11, .committed = ctx_b, .a_req = 1.0},
  };
  const OptimalOutput out = OptimalConstruct(oracle, reqs, 10);
  ASSERT_TRUE(out.valid);
  EXPECT_EQ(out.tokens_used, 10);
  EXPECT_EQ((out.trees[0].size() - 1) + (out.trees[1].size() - 1), 10);
  // Global step 2 ensures the selected set dominates any swap: the minimum
  // selected f in one tree must be >= the best unselected f in the other
  // (checked approximately by comparing against each tree's next candidate).
}

TEST(Optimal, InvalidWhenOneOfManyIsInfeasible) {
  const SyntheticLm oracle(OracleConfig());
  const std::vector<Token> ctx_a = Ctx(1, 1);
  const std::vector<Token> ctx_b = Ctx(2, 2);
  const std::vector<OracleRequest> reqs = {
      {.stream = 10, .committed = ctx_a, .a_req = 1.0},
      {.stream = 11, .committed = ctx_b, .a_req = 50.0},  // absurd
  };
  const OptimalOutput out = OptimalConstruct(oracle, reqs, 20);
  EXPECT_FALSE(out.valid);
}

TEST(Optimal, ConstructedTreesAreValidTrees) {
  const SyntheticLm oracle(OracleConfig());
  const std::vector<Token> ctx = Ctx(9, 9);
  const OracleRequest req{.stream = 5, .committed = ctx, .a_req = 2.0};
  const OptimalOutput out =
      OptimalConstruct(oracle, std::span<const OracleRequest>(&req, 1), 12);
  ASSERT_TRUE(out.valid);
  const TokenTree& tree = out.trees[0];
  // Every non-root node's parent must exist and path probs are decreasing
  // along edges (conditionals <= 1).
  for (NodeId id = 1; id < tree.size(); ++id) {
    const NodeId parent = tree.node(id).parent;
    ASSERT_GE(parent, 0);
    ASSERT_LT(parent, id);
    EXPECT_LE(tree.node(id).path_prob, tree.node(parent).path_prob + 1e-12);
  }
}

// Greedy feasibility boundary: if Algorithm 1 says INVALID at budget b but
// valid at b+k, the minimal-token property of Lemma C.1 implies validity is
// monotone in budget.
class FeasibilityMonotonicitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FeasibilityMonotonicitySweep, ValidityMonotoneInBudget) {
  const SyntheticLm oracle(OracleConfig());
  Rng rng(GetParam());
  const std::vector<Token> ctx = {static_cast<Token>(rng.UniformInt(50)),
                                  static_cast<Token>(rng.UniformInt(50))};
  const OracleRequest req{.stream = GetParam(), .committed = ctx,
                          .a_req = 1.2 + 2.0 * rng.Uniform()};
  bool was_valid = false;
  for (int budget = 0; budget <= 24; ++budget) {
    const OptimalOutput out =
        OptimalConstruct(oracle, std::span<const OracleRequest>(&req, 1), budget);
    if (was_valid) {
      EXPECT_TRUE(out.valid) << "validity regressed at budget " << budget;
    }
    was_valid = was_valid || out.valid;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeasibilityMonotonicitySweep, ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace adaserve
