#include "src/serve/kv_cache.h"

#include <gtest/gtest.h>

namespace adaserve {
namespace {

KvCache MakeCache(long capacity_tokens, int block = 16) {
  // 1 byte per token makes capacities easy to reason about.
  return KvCache(static_cast<double>(capacity_tokens), 1.0, block);
}

TEST(KvCache, CapacityFromBytes) {
  const KvCache cache(1000.0, 10.0, 16);
  EXPECT_EQ(cache.capacity_tokens(), 100);
}

TEST(KvCache, RoundsToBlocks) {
  const KvCache cache = MakeCache(1000, 16);
  EXPECT_EQ(cache.RoundToBlocks(1), 16);
  EXPECT_EQ(cache.RoundToBlocks(16), 16);
  EXPECT_EQ(cache.RoundToBlocks(17), 32);
  EXPECT_EQ(cache.RoundToBlocks(0), 0);
}

TEST(KvCache, ReserveAndRelease) {
  KvCache cache = MakeCache(100, 10);
  EXPECT_TRUE(cache.Reserve(1, 25));
  EXPECT_EQ(cache.used_tokens(), 30);  // rounded to 3 blocks
  EXPECT_EQ(cache.HeldBy(1), 30);
  cache.Release(1);
  EXPECT_EQ(cache.used_tokens(), 0);
  EXPECT_EQ(cache.HeldBy(1), 0);
}

TEST(KvCache, RejectsWhenFull) {
  KvCache cache = MakeCache(100, 10);
  EXPECT_TRUE(cache.Reserve(1, 60));
  EXPECT_FALSE(cache.Reserve(2, 50));
  EXPECT_EQ(cache.used_tokens(), 60);
  EXPECT_EQ(cache.HeldBy(2), 0);
  EXPECT_TRUE(cache.Reserve(2, 40));
}

TEST(KvCache, CanReserveMatchesReserve) {
  KvCache cache = MakeCache(100, 10);
  cache.Reserve(1, 70);
  EXPECT_TRUE(cache.CanReserve(30));
  EXPECT_FALSE(cache.CanReserve(31));
}

TEST(KvCache, GrowingReservationChargesDelta) {
  KvCache cache = MakeCache(100, 10);
  EXPECT_TRUE(cache.Reserve(1, 20));
  EXPECT_TRUE(cache.Reserve(1, 50));
  EXPECT_EQ(cache.used_tokens(), 50);
  EXPECT_EQ(cache.HeldBy(1), 50);
}

TEST(KvCache, ShrinkRequestIsNoOp) {
  KvCache cache = MakeCache(100, 10);
  EXPECT_TRUE(cache.Reserve(1, 50));
  EXPECT_TRUE(cache.Reserve(1, 10));
  EXPECT_EQ(cache.HeldBy(1), 50);
}

TEST(KvCache, ReleaseUnknownIsNoOp) {
  KvCache cache = MakeCache(100, 10);
  cache.Release(42);
  EXPECT_EQ(cache.used_tokens(), 0);
}

TEST(KvCache, FreeTokensTracksUsage) {
  KvCache cache = MakeCache(100, 10);
  EXPECT_EQ(cache.free_tokens(), 100);
  cache.Reserve(1, 10);
  EXPECT_EQ(cache.free_tokens(), 90);
}

TEST(KvCache, ManyRequestsIndependentLedgers) {
  KvCache cache = MakeCache(1000, 10);
  for (RequestId id = 0; id < 10; ++id) {
    EXPECT_TRUE(cache.Reserve(id, 50));
  }
  EXPECT_EQ(cache.used_tokens(), 500);
  for (RequestId id = 0; id < 10; id += 2) {
    cache.Release(id);
  }
  EXPECT_EQ(cache.used_tokens(), 250);
}

}  // namespace
}  // namespace adaserve
