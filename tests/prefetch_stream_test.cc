#include "src/workload/prefetch_stream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "src/harness/golden.h"
#include "tests/test_util.h"

namespace adaserve {
namespace {

std::unique_ptr<ArrivalStream> Wrap(std::vector<Request> reqs, size_t depth) {
  return std::make_unique<PrefetchingArrivalStream>(
      std::make_unique<MaterializedStream>(std::move(reqs)), depth);
}

// Inner stream that records how far ahead the producer has generated, so
// the backpressure test can bound prefetch depth from the outside.
class CountingStream final : public ArrivalStream {
 public:
  CountingStream(std::vector<Request> reqs, std::atomic<size_t>* generated)
      : inner_(std::move(reqs)), generated_(generated) {}
  bool Exhausted() override { return inner_.Exhausted(); }
  const Request* Peek() override { return inner_.Peek(); }
  Request Next() override {
    generated_->fetch_add(1, std::memory_order_relaxed);
    return inner_.Next();
  }
  size_t emitted() const override { return inner_.emitted(); }

 private:
  MaterializedStream inner_;
  std::atomic<size_t>* generated_;
};

class PrefetchStreamTest : public ::testing::Test {
 protected:
  PrefetchStreamTest() : exp_(TestSetup()) {}
  Experiment exp_;
};

TEST_F(PrefetchStreamTest, DrainMatchesInnerStream) {
  const std::vector<Request> reqs = SmallMixedWorkload(exp_);
  auto stream = Wrap(reqs, 4);
  std::vector<Request> drained = Materialize(*stream);
  ASSERT_EQ(drained.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(drained[i].id, reqs[i].id);
    EXPECT_EQ(drained[i].arrival, reqs[i].arrival);
    EXPECT_EQ(drained[i].prompt_len, reqs[i].prompt_len);
    EXPECT_EQ(drained[i].target_output_len, reqs[i].target_output_len);
    EXPECT_EQ(drained[i].stream_seed, reqs[i].stream_seed);
  }
  EXPECT_EQ(stream->emitted(), reqs.size());
  EXPECT_TRUE(stream->Exhausted());
}

TEST_F(PrefetchStreamTest, PeekIsStableUntilNext) {
  const std::vector<Request> reqs = SmallMixedWorkload(exp_);
  auto stream = Wrap(reqs, 4);
  const Request* first = stream->Peek();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(stream->Peek(), first);  // Same slot, not a new pop.
  EXPECT_EQ(first->id, reqs[0].id);
  const Request consumed = stream->Next();
  EXPECT_EQ(consumed.id, reqs[0].id);
  const Request* second = stream->Peek();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->id, reqs[1].id);
}

TEST_F(PrefetchStreamTest, EmptyInnerStreamIsImmediatelyExhausted) {
  auto stream = Wrap({}, 4);
  EXPECT_TRUE(stream->Exhausted());
  EXPECT_EQ(stream->Peek(), nullptr);
  EXPECT_EQ(stream->emitted(), 0u);
}

TEST_F(PrefetchStreamTest, StreamExhaustingMidPrefetchDrainsFully) {
  // Fewer requests than the prefetch depth: the producer exhausts and
  // closes the queue before the consumer pops anything.
  std::vector<Request> reqs = UniformWorkload(exp_, 3, 0, 1.0);
  auto stream = Wrap(reqs, 64);
  std::vector<Request> drained = Materialize(*stream);
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_TRUE(stream->Exhausted());
}

TEST_F(PrefetchStreamTest, BoundedQueueBackpressuresTheProducer) {
  constexpr size_t kDepth = 2;
  std::atomic<size_t> generated{0};
  std::vector<Request> reqs = UniformWorkload(exp_, 64, 0, 1.0);
  PrefetchingArrivalStream stream(std::make_unique<CountingStream>(reqs, &generated), kDepth);
  for (size_t consumed = 0; consumed < reqs.size(); ++consumed) {
    ASSERT_FALSE(stream.Exhausted());
    stream.Next();
    // The producer can be at most: consumed + queue depth + one request in
    // the consumer slot + one in the producer's hand ahead of us.
    EXPECT_LE(generated.load(std::memory_order_relaxed), consumed + 1 + kDepth + 2);
  }
  EXPECT_TRUE(stream.Exhausted());
  EXPECT_EQ(generated.load(), reqs.size());
}

TEST_F(PrefetchStreamTest, EarlyDestructionUnblocksTheProducer) {
  std::vector<Request> reqs = UniformWorkload(exp_, 256, 0, 1.0);
  auto stream = Wrap(reqs, 1);  // Depth 1: the producer blocks immediately.
  ASSERT_NE(stream->Peek(), nullptr);
  stream->Next();
  stream.reset();  // Must close the queue and join without hanging.
}

TEST_F(PrefetchStreamTest, EngineRunIsByteIdenticalToBareStream) {
  const std::vector<Request> reqs = SmallMixedWorkload(exp_);

  AdaServeScheduler bare_sched;
  MaterializedStream bare(reqs);
  const EngineResult bare_result = exp_.Run(bare_sched, bare);

  AdaServeScheduler wrapped_sched;
  auto wrapped = Wrap(reqs, 3);  // Small depth to force mid-run handoffs.
  const EngineResult wrapped_result = exp_.Run(wrapped_sched, *wrapped);

  EXPECT_EQ(GoldenMetricsText(SystemKind::kAdaServe, bare_result.metrics),
            GoldenMetricsText(SystemKind::kAdaServe, wrapped_result.metrics));
  EXPECT_EQ(bare_result.end_time, wrapped_result.end_time);
  EXPECT_EQ(bare_result.total_iterations, wrapped_result.total_iterations);
}

}  // namespace
}  // namespace adaserve
