#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace adaserve {
namespace {

TEST(Trace, PoissonMeanRateClose) {
  TraceConfig config;
  config.duration = 2000.0;
  config.mean_rps = 3.0;
  const std::vector<SimTime> arrivals = PoissonArrivals(config);
  EXPECT_NEAR(arrivals.size() / config.duration, 3.0, 0.15);
}

TEST(Trace, RealShapedMeanRateClose) {
  TraceConfig config;
  config.duration = 2000.0;
  config.mean_rps = 4.0;
  const std::vector<SimTime> arrivals = RealShapedArrivals(config);
  EXPECT_NEAR(arrivals.size() / config.duration, 4.0, 0.2);
}

TEST(Trace, ArrivalsSortedAndInRange) {
  TraceConfig config;
  config.duration = 100.0;
  config.mean_rps = 5.0;
  const std::vector<SimTime> arrivals = RealShapedArrivals(config);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  for (SimTime t : arrivals) {
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, config.duration);
  }
}

TEST(Trace, DeterministicForSeed) {
  TraceConfig config;
  config.seed = 99;
  const std::vector<SimTime> a = RealShapedArrivals(config);
  const std::vector<SimTime> b = RealShapedArrivals(config);
  EXPECT_EQ(a, b);
  config.seed = 100;
  EXPECT_NE(a, RealShapedArrivals(config));
}

TEST(Trace, EnvelopeHasBursts) {
  // The Fig. 7 envelope must be non-uniform: its late burst (phase ~0.78)
  // towers over the baseline.
  EXPECT_GT(RealTraceEnvelope(0.78), 2.0 * RealTraceEnvelope(0.62));
  EXPECT_GT(RealTraceEnvelope(0.15), 1.5 * RealTraceEnvelope(0.30));
}

TEST(Trace, EnvelopeMeanIsOrderOne) {
  // The thinning sampler normalises by the numerically integrated mean, so
  // the envelope only needs to be order-1 (it is ~1.3 with the Fig. 7
  // burst heights).
  double mean = 0.0;
  constexpr int kSteps = 10000;
  for (int i = 0; i < kSteps; ++i) {
    mean += RealTraceEnvelope((i + 0.5) / kSteps);
  }
  mean /= kSteps;
  EXPECT_GT(mean, 0.5);
  EXPECT_LT(mean, 2.0);
}

TEST(Trace, BurstyArrivalsClusterAroundPeak) {
  BurstSpec burst;
  burst.base_rps = 0.2;
  burst.peak_rps = 10.0;
  burst.peak_phase = 0.5;
  burst.peak_width = 0.05;
  const double duration = 1000.0;
  const std::vector<SimTime> arrivals = BurstyArrivals(burst, duration, 7);
  int near_peak = 0;
  for (SimTime t : arrivals) {
    if (std::abs(t / duration - 0.5) < 0.15) {
      ++near_peak;
    }
  }
  // The burst region (30% of the window) should hold most arrivals.
  EXPECT_GT(near_peak, static_cast<int>(arrivals.size() * 0.5));
}

TEST(Trace, BurstyBaseOnlyWhenPeakEqualsBase) {
  BurstSpec burst;
  burst.base_rps = 2.0;
  burst.peak_rps = 2.0;
  const std::vector<SimTime> arrivals = BurstyArrivals(burst, 1000.0, 3);
  EXPECT_NEAR(arrivals.size() / 1000.0, 2.0, 0.2);
}

class RpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(RpsSweep, RescalingTracksTarget) {
  TraceConfig config;
  config.duration = 1500.0;
  config.mean_rps = GetParam();
  const std::vector<SimTime> arrivals = RealShapedArrivals(config);
  EXPECT_NEAR(arrivals.size() / config.duration, GetParam(), GetParam() * 0.08);
}

INSTANTIATE_TEST_SUITE_P(Rates, RpsSweep, ::testing::Values(0.5, 1.0, 2.6, 4.8, 10.0));

}  // namespace
}  // namespace adaserve
