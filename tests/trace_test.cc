#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace adaserve {
namespace {

TEST(Trace, PoissonMeanRateClose) {
  TraceConfig config;
  config.duration = 2000.0;
  config.mean_rps = 3.0;
  const std::vector<SimTime> arrivals = PoissonArrivals(config);
  EXPECT_NEAR(arrivals.size() / config.duration, 3.0, 0.15);
}

TEST(Trace, RealShapedMeanRateClose) {
  TraceConfig config;
  config.duration = 2000.0;
  config.mean_rps = 4.0;
  const std::vector<SimTime> arrivals = RealShapedArrivals(config);
  EXPECT_NEAR(arrivals.size() / config.duration, 4.0, 0.2);
}

TEST(Trace, ArrivalsSortedAndInRange) {
  TraceConfig config;
  config.duration = 100.0;
  config.mean_rps = 5.0;
  const std::vector<SimTime> arrivals = RealShapedArrivals(config);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  for (SimTime t : arrivals) {
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, config.duration);
  }
}

TEST(Trace, DeterministicForSeed) {
  TraceConfig config;
  config.seed = 99;
  const std::vector<SimTime> a = RealShapedArrivals(config);
  const std::vector<SimTime> b = RealShapedArrivals(config);
  EXPECT_EQ(a, b);
  config.seed = 100;
  EXPECT_NE(a, RealShapedArrivals(config));
}

TEST(Trace, EnvelopeHasBursts) {
  // The Fig. 7 envelope must be non-uniform: its late burst (phase ~0.78)
  // towers over the baseline.
  EXPECT_GT(RealTraceEnvelope(0.78), 2.0 * RealTraceEnvelope(0.62));
  EXPECT_GT(RealTraceEnvelope(0.15), 1.5 * RealTraceEnvelope(0.30));
}

TEST(Trace, EnvelopeMeanIsOrderOne) {
  // The thinning sampler normalises by the numerically integrated mean, so
  // the envelope only needs to be order-1 (it is ~1.3 with the Fig. 7
  // burst heights).
  double mean = 0.0;
  constexpr int kSteps = 10000;
  for (int i = 0; i < kSteps; ++i) {
    mean += RealTraceEnvelope((i + 0.5) / kSteps);
  }
  mean /= kSteps;
  EXPECT_GT(mean, 0.5);
  EXPECT_LT(mean, 2.0);
}

TEST(Trace, BurstyArrivalsClusterAroundPeak) {
  BurstSpec burst;
  burst.base_rps = 0.2;
  burst.peak_rps = 10.0;
  burst.peak_phase = 0.5;
  burst.peak_width = 0.05;
  const double duration = 1000.0;
  const std::vector<SimTime> arrivals = BurstyArrivals(burst, duration, 7);
  int near_peak = 0;
  for (SimTime t : arrivals) {
    if (std::abs(t / duration - 0.5) < 0.15) {
      ++near_peak;
    }
  }
  // The burst region (30% of the window) should hold most arrivals.
  EXPECT_GT(near_peak, static_cast<int>(arrivals.size() * 0.5));
}

TEST(Trace, BurstyBaseOnlyWhenPeakEqualsBase) {
  BurstSpec burst;
  burst.base_rps = 2.0;
  burst.peak_rps = 2.0;
  const std::vector<SimTime> arrivals = BurstyArrivals(burst, 1000.0, 3);
  EXPECT_NEAR(arrivals.size() / 1000.0, 2.0, 0.2);
}

// --- lazy arrival processes -------------------------------------------------

// Index of dispersion (variance/mean) of per-second arrival counts; 1 for
// Poisson, >1 for bursty processes.
double DispersionIndex(const std::vector<SimTime>& arrivals, double duration) {
  std::vector<int> bins(static_cast<size_t>(duration), 0);
  for (SimTime t : arrivals) {
    ++bins[static_cast<size_t>(t)];
  }
  const double mean = static_cast<double>(arrivals.size()) / duration;
  double var = 0.0;
  for (int c : bins) {
    var += (c - mean) * (c - mean);
  }
  var /= duration;
  return var / mean;
}

MmppSpec TwoStateMmpp() {
  MmppSpec spec;
  spec.state_rps = {1.0, 10.0};
  spec.mean_sojourn_s = {10.0, 10.0};
  return spec;
}

TEST(Mmpp, MeanRateTracksSojournWeightedAverage) {
  MmppProcess process(TwoStateMmpp(), /*duration=*/2000.0, /*seed=*/77);
  const std::vector<SimTime> arrivals = DrainArrivals(process);
  // Equal sojourns in a 1/10 rps two-state chain: mean rate 5.5.
  EXPECT_NEAR(arrivals.size() / 2000.0, TwoStateMmpp().MeanRate(), 0.5);
  EXPECT_NEAR(TwoStateMmpp().MeanRate(), 5.5, 1e-12);
}

TEST(Mmpp, BurstierThanPoissonAtSameRate) {
  MmppProcess process(TwoStateMmpp(), /*duration=*/2000.0, /*seed=*/77);
  const std::vector<SimTime> mmpp = DrainArrivals(process);
  TraceConfig poisson_config;
  poisson_config.duration = 2000.0;
  poisson_config.mean_rps = 5.5;
  poisson_config.seed = 77;
  const std::vector<SimTime> poisson = PoissonArrivals(poisson_config);
  // Modulated ON/OFF arrivals overdisperse heavily; Poisson sits at ~1.
  EXPECT_GT(DispersionIndex(mmpp, 2000.0), 2.5);
  EXPECT_LT(DispersionIndex(poisson, 2000.0), 1.5);
}

TEST(Mmpp, ExactCountUnderFixedSeed) {
  MmppProcess process(TwoStateMmpp(), /*duration=*/2000.0, /*seed=*/77);
  EXPECT_EQ(DrainArrivals(process).size(), 11707u);
}

TEST(Mmpp, SortedInRangeDeterministicAndExhaustsForever) {
  MmppProcess a(TwoStateMmpp(), 300.0, 3);
  MmppProcess b(TwoStateMmpp(), 300.0, 3);
  const std::vector<SimTime> first = DrainArrivals(a);
  const std::vector<SimTime> second = DrainArrivals(b);
  EXPECT_EQ(first, second);
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
  for (SimTime t : first) {
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 300.0);
  }
  // Exhaustion is terminal.
  EXPECT_EQ(a.Next(), kNoMoreArrivals);
  EXPECT_EQ(a.Next(), kNoMoreArrivals);
}

TEST(Mmpp, SilentOffStateProducesGaps) {
  MmppSpec spec;
  spec.state_rps = {0.0, 20.0};
  spec.mean_sojourn_s = {5.0, 5.0};
  MmppProcess process(spec, /*duration=*/1000.0, /*seed=*/11);
  const std::vector<SimTime> arrivals = DrainArrivals(process);
  ASSERT_GT(arrivals.size(), 100u);
  // ~half the window is OFF, so the realised rate is ~10 rps and at least
  // one inter-arrival gap spans a whole OFF sojourn.
  EXPECT_NEAR(arrivals.size() / 1000.0, 10.0, 1.5);
  double max_gap = 0.0;
  for (size_t i = 1; i < arrivals.size(); ++i) {
    max_gap = std::max(max_gap, arrivals[i] - arrivals[i - 1]);
  }
  EXPECT_GT(max_gap, 2.0);
}

DiurnalSpec TestDiurnal() {
  DiurnalSpec spec;
  spec.period_s = 200.0;
  spec.peak_phase = 0.5;
  spec.amplitude = 0.9;
  return spec;
}

TEST(Diurnal, EnvelopePeaksAndTroughsWhereConfigured) {
  const DiurnalSpec spec = TestDiurnal();
  // Peak at phase 0.5 of the 200 s day; trough half a day away.
  EXPECT_NEAR(DiurnalEnvelope(spec, 100.0), 1.9, 1e-9);
  EXPECT_NEAR(DiurnalEnvelope(spec, 0.0), 0.1, 1e-9);
  EXPECT_NEAR(DiurnalEnvelope(spec, 200.0), 0.1, 1e-9);
}

TEST(Diurnal, ArrivalsFollowTheRateEnvelope) {
  auto process = MakeDiurnalProcess(TestDiurnal(), /*duration=*/200.0, /*mean_rps=*/4.0,
                                    /*seed=*/13);
  const std::vector<SimTime> arrivals = DrainArrivals(*process);
  size_t peak_half = 0;
  for (SimTime t : arrivals) {
    if (t >= 50.0 && t < 150.0) {
      ++peak_half;
    }
  }
  // The day-time half of the window carries most of the traffic.
  EXPECT_GT(peak_half, arrivals.size() * 6 / 10);
  EXPECT_NEAR(arrivals.size() / 200.0, 4.0, 0.5);
}

TEST(Diurnal, ExactCountUnderFixedSeed) {
  auto process = MakeDiurnalProcess(TestDiurnal(), 200.0, 4.0, 13);
  const std::vector<SimTime> arrivals = DrainArrivals(*process);
  EXPECT_EQ(arrivals.size(), 831u);
  size_t peak_half = 0;
  for (SimTime t : arrivals) {
    if (t >= 50.0 && t < 150.0) {
      ++peak_half;
    }
  }
  EXPECT_EQ(peak_half, 634u);
}

TEST(LazyProcess, DrainMatchesVectorBuilders) {
  // The vector builders are drains over the lazy processes, so same seed
  // must mean the same arrivals element-for-element.
  TraceConfig config;
  config.duration = 500.0;
  config.mean_rps = 3.0;
  config.seed = 21;
  auto poisson = MakePoissonProcess(config.duration, config.mean_rps, config.seed);
  EXPECT_EQ(DrainArrivals(*poisson), PoissonArrivals(config));
  auto real = MakeRealShapedProcess(config);
  EXPECT_EQ(DrainArrivals(*real), RealShapedArrivals(config));
}

class RpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(RpsSweep, RescalingTracksTarget) {
  TraceConfig config;
  config.duration = 1500.0;
  config.mean_rps = GetParam();
  const std::vector<SimTime> arrivals = RealShapedArrivals(config);
  EXPECT_NEAR(arrivals.size() / config.duration, GetParam(), GetParam() * 0.08);
}

INSTANTIATE_TEST_SUITE_P(Rates, RpsSweep, ::testing::Values(0.5, 1.0, 2.6, 4.8, 10.0));

}  // namespace
}  // namespace adaserve
