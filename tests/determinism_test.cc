// Determinism guard for the golden harness: the same seed must reproduce
// bit-identical EngineResult metrics, or golden baselines would be flaky.
#include <gtest/gtest.h>

#include "src/harness/golden.h"
#include "tests/test_util.h"

namespace adaserve {
namespace {

void ExpectBitIdentical(const EngineResult& a, const EngineResult& b) {
  // Aggregate metrics, compared exactly — no tolerance.
  EXPECT_EQ(a.metrics.finished, b.metrics.finished);
  EXPECT_EQ(a.metrics.attained, b.metrics.attained);
  EXPECT_EQ(a.metrics.output_tokens(), b.metrics.output_tokens());
  EXPECT_EQ(a.metrics.attained_tokens(), b.metrics.attained_tokens());
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.metrics.mean_accepted, b.metrics.mean_accepted);
  EXPECT_EQ(a.metrics.ThroughputTps(), b.metrics.ThroughputTps());
  EXPECT_EQ(a.metrics.GoodputTps(), b.metrics.GoodputTps());
  EXPECT_EQ(a.metrics.spec_time, b.metrics.spec_time);
  EXPECT_EQ(a.metrics.verify_time, b.metrics.verify_time);
  EXPECT_EQ(a.metrics.prefill_time, b.metrics.prefill_time);
  EXPECT_EQ(a.metrics.total_time, b.metrics.total_time);
  for (size_t c = 0; c < static_cast<size_t>(kNumCategories); ++c) {
    const CategoryMetrics& ca = a.metrics.per_category[c];
    const CategoryMetrics& cb = b.metrics.per_category[c];
    EXPECT_EQ(ca.finished, cb.finished) << "cat " << c;
    EXPECT_EQ(ca.attained, cb.attained) << "cat " << c;
    EXPECT_EQ(ca.output_tokens, cb.output_tokens) << "cat " << c;
    EXPECT_EQ(ca.tpot_ms.values(), cb.tpot_ms.values()) << "cat " << c;
    EXPECT_EQ(ca.ttft_ms.values(), cb.ttft_ms.values()) << "cat " << c;
  }

  // The whole iteration log and every per-request record must replay
  // identically, not just the end-of-run summary.
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  EXPECT_EQ(a.end_time, b.end_time);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (size_t i = 0; i < a.requests.size(); ++i) {
    const Request& ra = a.requests[i];
    const Request& rb = b.requests[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.output, rb.output) << "request " << ra.id;
    EXPECT_EQ(ra.token_times, rb.token_times) << "request " << ra.id;
    EXPECT_EQ(ra.finish_time, rb.finish_time) << "request " << ra.id;
    EXPECT_EQ(ra.verifications, rb.verifications) << "request " << ra.id;
    EXPECT_EQ(ra.accepted_tokens, rb.accepted_tokens) << "request " << ra.id;
  }
}

TEST(Determinism, AdaServeSameSeedBitIdentical) {
  Experiment exp(TestSetup());
  const EngineResult first = RunGoldenSystem(exp, SystemKind::kAdaServe);
  const EngineResult second = RunGoldenSystem(exp, SystemKind::kAdaServe);
  ASSERT_GT(first.metrics.finished, 0);
  ExpectBitIdentical(first, second);
}

TEST(Determinism, AdaServeSameSeedAcrossExperimentInstances) {
  // A fresh Experiment (fresh synthetic LMs, latency models) must not leak
  // hidden state into the run.
  Experiment exp_a(TestSetup());
  Experiment exp_b(TestSetup());
  const EngineResult first = RunGoldenSystem(exp_a, SystemKind::kAdaServe);
  const EngineResult second = RunGoldenSystem(exp_b, SystemKind::kAdaServe);
  ExpectBitIdentical(first, second);
}

TEST(Determinism, DifferentSamplingSeedDiverges) {
  // Sanity check that the seed actually reaches the sampling path: a
  // different seed should change at least some sampled token stream.
  Experiment exp(TestSetup());
  GoldenConfig other;
  other.sampling_seed = 99991;
  const EngineResult first = RunGoldenSystem(exp, SystemKind::kAdaServe);
  const EngineResult second = RunGoldenSystem(exp, SystemKind::kAdaServe, other);
  ASSERT_EQ(first.requests.size(), second.requests.size());
  bool any_diff = false;
  for (size_t i = 0; i < first.requests.size() && !any_diff; ++i) {
    any_diff = first.requests[i].output != second.requests[i].output ||
               first.requests[i].token_times != second.requests[i].token_times;
  }
  EXPECT_TRUE(any_diff) << "sampling_seed had no effect on the run";
}

}  // namespace
}  // namespace adaserve
