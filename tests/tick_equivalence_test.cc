// Tick-protocol equivalence proof.
//
// Pins the tick-based engine against the reference drain loop (the
// pre-tick engine, preserved as Experiment::RunLegacyDrainLoop): under
// BoundaryTickConfig(), boundary-mode ticks must reproduce the legacy
// admit-then-step sequence exactly, so end-of-run metrics are
// byte-identical for every system in MainComparisonSet(). Tick-native is
// the serving default now, so boundary mode is opt-in — this suite is
// what keeps the opt-out path honest. A second suite sanity-checks the
// tick-native default, which is allowed to (and does) schedule
// differently.
#include <gtest/gtest.h>

#include <cctype>

#include "tests/test_util.h"

namespace adaserve {
namespace {

class TickEquivalence : public ::testing::TestWithParam<SystemKind> {};

// Boundary mode (BoundaryTickConfig): tick-mode metrics are
// byte-identical to the legacy drain loop on the canonical golden
// workload.
TEST_P(TickEquivalence, BoundaryTicksMatchLegacyDrainLoopExactly) {
  const SystemKind kind = GetParam();
  Experiment exp(GoldenSetup());
  const GoldenConfig config;
  const std::vector<Request> workload = GoldenWorkload(exp, config);
  ASSERT_FALSE(workload.empty());

  EngineConfig engine = BoundaryTickConfig();
  engine.sampling_seed = config.sampling_seed;

  auto legacy_scheduler = MakeScheduler(kind);
  const EngineResult legacy = exp.RunLegacyDrainLoop(*legacy_scheduler, workload, engine);

  auto tick_scheduler = MakeScheduler(kind);
  const EngineResult tick = exp.Run(*tick_scheduler, workload, engine);

  // Byte-stable canonical text — the same representation the golden
  // baselines pin — must match exactly, not approximately.
  EXPECT_EQ(GoldenMetricsText(kind, legacy.metrics), GoldenMetricsText(kind, tick.metrics));
  EXPECT_EQ(legacy.total_iterations, tick.total_iterations);
  EXPECT_EQ(legacy.end_time, tick.end_time);
  EXPECT_EQ(legacy.requests.size(), tick.requests.size());
  // Boundary mode never evicts.
  EXPECT_EQ(tick.metrics.evictions, 0);
  // Every finished request was admitted through the tick protocol.
  EXPECT_EQ(tick.metrics.admissions, static_cast<long>(workload.size()));
}

// Tick-native mode — the default EngineConfig{} — runs a different
// (better-TTFT) schedule, but the same work must complete with sane
// accounting.
TEST_P(TickEquivalence, ContinuousModeServesEverything) {
  const SystemKind kind = GetParam();
  Experiment exp(GoldenSetup());
  const GoldenConfig config;
  const std::vector<Request> workload = GoldenWorkload(exp, config);
  ASSERT_FALSE(workload.empty());

  // The default config IS the tick-native mode: continuous ticks with a
  // bounded evict-for-admission budget (literals, so a silent default
  // regression cannot hide behind ContinuousTickConfig ≡ EngineConfig{}).
  const EngineConfig defaults;
  EXPECT_TRUE(defaults.tick.continuous);
  EXPECT_EQ(defaults.tick.max_evictions, 4);
  EXPECT_FALSE(defaults.tick.admission_priority.has_value());
  EngineConfig engine;
  engine.sampling_seed = config.sampling_seed;

  auto scheduler = MakeScheduler(kind);
  const EngineResult result = exp.Run(*scheduler, workload, engine);

  EXPECT_EQ(result.metrics.finished, static_cast<int>(workload.size()));
  EXPECT_EQ(result.metrics.admissions,
            static_cast<long>(workload.size()) + result.metrics.evictions);
  EXPECT_GE(result.metrics.AttainmentPct(), 0.0);
  EXPECT_LE(result.metrics.AttainmentPct(), 100.0);
  for (const Request& req : result.requests) {
    EXPECT_EQ(req.state, RequestState::kFinished);
    EXPECT_EQ(req.output_len(), req.target_output_len);
    EXPECT_EQ(req.prefill_progress, req.prompt_len);
  }
}

INSTANTIATE_TEST_SUITE_P(MainComparisonSet, TickEquivalence,
                         ::testing::ValuesIn(MainComparisonSet()),
                         [](const ::testing::TestParamInfo<SystemKind>& info) {
                           std::string name(SystemName(info.param));
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace adaserve
