// Locale-independence regression tests for the numeric text formats.
//
// trace_file.cc and replay.cc used std::stod/std::stol, which honor the
// global C locale: on a host set to a comma-decimal locale (de_DE et
// al.), "0.5" parsed as 0 with a trailing-garbage error, so every trace
// file and replay artifact written on a period-decimal machine failed to
// load — and snprintf("%.17g") on the write side emitted commas that no
// machine could re-read. The parsers now use std::from_chars and the
// writers std::to_chars, both locale-independent by specification. These
// tests flip the process into a comma-decimal locale and exercise the
// full parse/serialize round trips; they fail on the std::stod code.
//
// The comma-decimal locale must be installed on the host; when none of
// the candidates is (minimal containers often ship only C/POSIX), the
// tests skip rather than pass vacuously.
#include <gtest/gtest.h>

#include <clocale>
#include <string>
#include <vector>

#include "src/harness/replay.h"
#include "src/workload/trace_file.h"
#include "tests/test_util.h"

namespace adaserve {
namespace {

// Swaps the global C locale for a comma-decimal one for the test's
// lifetime; restores the previous locale on destruction so later tests
// in the binary see the environment they started with.
class CommaDecimalLocale {
 public:
  CommaDecimalLocale() {
    const char* current = std::setlocale(LC_ALL, nullptr);
    saved_ = current != nullptr ? current : "C";
    for (const char* candidate :
         {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR.utf8", "fr_FR",
          "it_IT.UTF-8", "es_ES.UTF-8", "pt_BR.UTF-8", "ru_RU.UTF-8"}) {
      if (std::setlocale(LC_ALL, candidate) != nullptr) {
        // Paranoia: only trust locales that actually print a comma.
        char buf[8] = {};
        std::snprintf(buf, sizeof(buf), "%.1f", 0.5);
        if (buf[1] == ',') {
          active_ = true;
          return;
        }
      }
    }
    std::setlocale(LC_ALL, saved_.c_str());
  }
  ~CommaDecimalLocale() { std::setlocale(LC_ALL, saved_.c_str()); }

  // True when a comma-decimal locale is installed and active.
  bool active() const { return active_; }

 private:
  std::string saved_;
  bool active_ = false;
};

#define REQUIRE_COMMA_LOCALE(loc)                                                  \
  if (!(loc).active()) {                                                           \
    GTEST_SKIP() << "no comma-decimal locale installed; cannot exercise the bug"; \
  }

TEST(LocaleParsing, TraceCsvParsesFractionalFieldsUnderCommaDecimalLocale) {
  CommaDecimalLocale locale;
  REQUIRE_COMMA_LOCALE(locale);
  const Experiment exp(TestSetup());
  std::string error;
  // Fractional timestamp and tpot_slo: std::stod under de_DE stops at the
  // '.' and the strict full-consumption check turned that into a parse
  // error for the whole file.
  auto stream = TraceFileArrivalStream::FromString(
      exp.Categories(), "0.5,16,4,0,0.05\n1.25,32,8,1,\n", &error);
  ASSERT_NE(stream, nullptr) << error;
  const Request* first = stream->Peek();
  ASSERT_NE(first, nullptr);
  EXPECT_DOUBLE_EQ(first->arrival, 0.5);
  EXPECT_DOUBLE_EQ(first->tpot_slo, 0.05);
  const Request a = stream->Next();
  const Request b = stream->Next();
  EXPECT_DOUBLE_EQ(a.arrival, 0.5);
  EXPECT_DOUBLE_EQ(b.arrival, 1.25);
}

TEST(LocaleParsing, TraceCsvRoundTripsUnderCommaDecimalLocale) {
  CommaDecimalLocale locale;
  REQUIRE_COMMA_LOCALE(locale);
  const Experiment exp(TestSetup());
  std::vector<Request> requests = UniformWorkload(exp, 4, kCatChat, /*spread_s=*/1.5);
  requests[2].tpot_slo = 0.0375;  // Not exactly representable in few digits.
  // The writer must emit period decimals even under a comma locale (a
  // comma decimal would also corrupt the column structure), and the
  // parser must read the writer's output back exactly.
  const std::string csv = TraceCsvFromRequests(requests);
  std::string error;
  auto stream = TraceFileArrivalStream::FromString(exp.Categories(), csv, &error);
  ASSERT_NE(stream, nullptr) << error;
  for (const Request& want : requests) {
    ASSERT_FALSE(stream->Exhausted());
    const Request got = stream->Next();
    EXPECT_DOUBLE_EQ(got.arrival, want.arrival);
    EXPECT_EQ(got.prompt_len, want.prompt_len);
    EXPECT_EQ(got.target_output_len, want.target_output_len);
    EXPECT_EQ(got.category, want.category);
    EXPECT_DOUBLE_EQ(got.tpot_slo, want.tpot_slo);
  }
}

TEST(LocaleParsing, ReplayArtifactRoundTripsUnderCommaDecimalLocale) {
  CommaDecimalLocale locale;
  REQUIRE_COMMA_LOCALE(locale);
  // A hand-built artifact with fractional doubles in every numeric slot
  // the schema carries them: the serialize -> parse -> serialize loop
  // must be byte-exact regardless of the global locale.
  ReplayArtifact artifact;
  artifact.system = "EDF";
  artifact.setup_id = "golden";
  artifact.label = "locale-test";
  Request req;
  req.id = 0;
  req.category = kCatChat;
  req.tpot_slo = 0.0625;
  req.arrival = 0.5;
  req.prompt_len = 16;
  req.target_output_len = 4;
  req.stream_seed = 7;
  artifact.arrivals.push_back(req);
  TickTraceEvent tick;
  tick.index = 0;
  tick.start = 0.5;
  tick.record.duration = 0.125;
  tick.record.verify_time = 0.0875;
  tick.record.committed_tokens = 3;
  artifact.ticks.push_back(tick);
  artifact.metrics_text = "system: EDF\nfinished: 1\n";

  const std::string text = SerializeReplayArtifact(artifact);
  EXPECT_EQ(text.find("0,5"), std::string::npos)
      << "comma decimal leaked into the artifact:\n" << text;
  ReplayArtifact parsed;
  std::string error;
  ASSERT_TRUE(ParseReplayArtifact(text, &parsed, &error)) << error;
  EXPECT_DOUBLE_EQ(parsed.arrivals.at(0).arrival, 0.5);
  EXPECT_DOUBLE_EQ(parsed.arrivals.at(0).tpot_slo, 0.0625);
  EXPECT_DOUBLE_EQ(parsed.ticks.at(0).record.duration, 0.125);
  EXPECT_EQ(SerializeReplayArtifact(parsed), text);
}

}  // namespace
}  // namespace adaserve
