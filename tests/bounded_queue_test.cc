#include "src/common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace adaserve {
namespace {

TEST(BoundedQueue, PushPopRoundTrip) {
  BoundedQueue<int> q(4);
  EXPECT_FALSE(q.Push(1).has_value());
  EXPECT_FALSE(q.Push(2).has_value());
  EXPECT_EQ(q.Pop(), std::optional<int>(1));
  EXPECT_EQ(q.Pop(), std::optional<int>(2));
}

TEST(BoundedQueue, PopReportsEndOfStreamAfterCloseAndDrain) {
  BoundedQueue<int> q(4);
  EXPECT_FALSE(q.Push(7).has_value());
  q.Close();
  EXPECT_EQ(q.Pop(), std::optional<int>(7));  // Backlog drains first.
  EXPECT_EQ(q.Pop(), std::nullopt);           // Then end-of-stream.
}

// The satellite-bugfix regression: a rejected push must hand the item
// back instead of destroying it, so a cluster-side producer can re-route
// the request.
TEST(BoundedQueue, ClosedPushReturnsResidue) {
  BoundedQueue<std::vector<int>> q(2);
  q.Close();
  std::vector<int> item = {1, 2, 3};
  std::optional<std::vector<int>> residue = q.Push(std::move(item));
  ASSERT_TRUE(residue.has_value());
  EXPECT_EQ(*residue, (std::vector<int>{1, 2, 3}));
}

TEST(BoundedQueue, CloseMidBlockedPushReturnsResidue) {
  BoundedQueue<int> q(1);
  EXPECT_FALSE(q.Push(1).has_value());  // Queue now full.
  std::optional<int> residue;
  std::thread producer([&] { residue = q.Push(42); });  // Blocks on full.
  // Close while the producer is (likely) blocked; regardless of timing
  // the push must either succeed before the close or hand 42 back.
  q.Close();
  producer.join();
  if (residue.has_value()) {
    EXPECT_EQ(*residue, 42);
  }
  // The pre-close item always survives.
  EXPECT_EQ(q.Pop(), std::optional<int>(1));
}

// Multi-producer fan-in (the router-side shape): the queue is not
// SPSC-only. Every pushed item must come out exactly once; TSan (CI job)
// additionally proves the notify discipline race-free.
TEST(BoundedQueue, MultipleProducersDeliverEveryItemOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> q(8);
  std::vector<std::thread> producers;
  std::atomic<int> rejected{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &rejected, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.Push(p * kPerProducer + i).has_value()) {
          rejected.fetch_add(1);
        }
      }
    });
  }
  std::set<int> seen;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    std::optional<int> v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(seen.insert(*v).second) << "duplicate delivery of " << *v;
  }
  for (std::thread& t : producers) {
    t.join();
  }
  EXPECT_EQ(rejected.load(), 0);
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
}

// Multi-producer shutdown: after Close, every producer gets its residue
// back, and the consumer still drains everything pushed before the close.
TEST(BoundedQueue, MultiProducerCloseHandsBackResidues) {
  constexpr int kProducers = 4;
  BoundedQueue<int> q(2);
  std::vector<std::thread> producers;
  std::atomic<int> delivered{0};
  std::atomic<int> residues{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (q.Push(i).has_value()) {
          residues.fetch_add(1);
          return;  // Closed: stop producing.
        }
        delivered.fetch_add(1);
      }
    });
  }
  // Pop a few, then close mid-stream.
  int popped = 0;
  for (; popped < 5; ++popped) {
    ASSERT_TRUE(q.Pop().has_value());
  }
  q.Close();
  while (q.Pop().has_value()) {
    ++popped;
  }
  for (std::thread& t : producers) {
    t.join();
  }
  // Everything successfully pushed was popped; nothing vanished.
  EXPECT_EQ(popped, delivered.load());
  EXPECT_GT(residues.load(), 0);  // The close interrupted some producer.
}

}  // namespace
}  // namespace adaserve
