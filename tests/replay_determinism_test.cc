// Record/replay determinism suite: for every MainComparisonSet system the
// recorded artifact of a run must re-execute byte-identically
// (GoldenMetricsText) in tick-native mode, under the async tick pipeline,
// and for every replica of a 2-replica cluster run; artifact
// serialization round-trips exactly; and an injected single-bit
// corruption is detected with the correct first-divergent-tick.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/cluster_metrics.h"
#include "src/harness/replay.h"
#include "tests/test_util.h"

namespace adaserve {
namespace {

class ReplayDeterminismTest : public testing::TestWithParam<SystemKind> {
 protected:
  static void SetUpTestSuite() { exp_ = new Experiment(GoldenSetup()); }
  static void TearDownTestSuite() {
    delete exp_;
    exp_ = nullptr;
  }
  static Experiment* exp_;
};

Experiment* ReplayDeterminismTest::exp_ = nullptr;

// Recording is purely observational and replay re-executes byte-
// identically: the artifact's fingerprint equals the sink-free run's
// metrics, and ReplayRun reproduces it tick for tick.
TEST_P(ReplayDeterminismTest, TickNativeRecordReplayByteIdentical) {
  const SystemKind kind = GetParam();
  const RecordedRun run = RecordGoldenRun(*exp_, kind);
  ASSERT_GT(run.result.metrics.finished, 0);
  ASSERT_FALSE(run.artifact.ticks.empty());

  // Observer purity: a run with a recorder attached matches one without.
  const EngineResult bare = RunGoldenSystem(*exp_, kind);
  EXPECT_EQ(run.artifact.metrics_text, GoldenMetricsText(kind, bare.metrics));

  const ReplayOutcome outcome = ReplayRun(run.artifact);
  ASSERT_TRUE(outcome.ok) << outcome.divergence->Summary();
  EXPECT_EQ(outcome.metrics_text, run.artifact.metrics_text);
}

// The streaming path (lazy stream, bounded horizon, finished-request
// retirement) records and replays identically too.
TEST_P(ReplayDeterminismTest, StreamingRecordReplayByteIdentical) {
  const SystemKind kind = GetParam();
  const RecordedRun run =
      RecordGoldenRun(*exp_, kind, {}, GoldenScenario::kFlashCrowd, GoldenMode::kTickNative);
  ASSERT_GT(run.result.metrics.finished, 0);
  const ReplayOutcome outcome = ReplayRun(run.artifact);
  ASSERT_TRUE(outcome.ok) << outcome.divergence->Summary();
  EXPECT_EQ(outcome.metrics_text, run.artifact.metrics_text);
}

TEST_P(ReplayDeterminismTest, AsyncPipelineRecordReplayByteIdentical) {
  const SystemKind kind = GetParam();
  EngineConfig engine = AsyncTickConfig();
  engine.sampling_seed = GoldenConfig{}.sampling_seed;
  const RecordedRun run =
      RecordRun(*exp_, kind, GoldenWorkload(*exp_), engine, "golden", "async");
  ASSERT_GT(run.result.metrics.finished, 0);
  // The async planner actually planned (and its verdicts were traced).
  ASSERT_GT(run.result.planned_ticks, 0);
  bool traced_verdict = false;
  for (const TickTraceEvent& tick : run.artifact.ticks) {
    if (tick.plan_hit >= 0) {
      traced_verdict = true;
      break;
    }
  }
  EXPECT_TRUE(traced_verdict);

  const ReplayOutcome outcome = ReplayRun(run.artifact);
  ASSERT_TRUE(outcome.ok) << outcome.divergence->Summary();
  EXPECT_EQ(outcome.metrics_text, run.artifact.metrics_text);
}

TEST_P(ReplayDeterminismTest, ClusterReplicaRecordReplayByteIdentical) {
  const SystemKind kind = GetParam();
  ClusterConfig config;
  config.replicas.push_back({GoldenSetup(), EngineConfig{}});
  config.replicas.push_back({GoldenSetup(), EngineConfig{}});
  config.router = RouterPolicy::kJoinShortestQueue;
  MaterializedStream stream(GoldenWorkload(*exp_));
  const RecordedClusterRun run =
      RecordClusterRun(config, kind, stream, {"golden", "golden"}, "cluster2");
  ASSERT_EQ(run.replicas.size(), 2u);

  // Every replica artifact replays standalone, byte-identically.
  std::vector<Metrics> replayed_parts;
  for (size_t i = 0; i < run.replicas.size(); ++i) {
    ASSERT_FALSE(run.replicas[i].arrivals.empty()) << "replica " << i << " got no traffic";
    const ReplayOutcome outcome = ReplayRun(run.replicas[i]);
    ASSERT_TRUE(outcome.ok) << "replica " << i << ": " << outcome.divergence->Summary();
    EXPECT_EQ(outcome.metrics_text, run.replicas[i].metrics_text) << "replica " << i;
    replayed_parts.push_back(outcome.result.metrics);
  }

  // And the merged fleet metrics rebuilt from the replays match the
  // original cluster run's merge.
  std::vector<Metrics> original_parts;
  for (const ReplicaRunResult& replica : run.result.replicas) {
    original_parts.push_back(replica.result.metrics);
  }
  EXPECT_EQ(GoldenMetricsText(kind, MergeMetrics(replayed_parts)),
            GoldenMetricsText(kind, MergeMetrics(original_parts)));
}

INSTANTIATE_TEST_SUITE_P(MainComparison, ReplayDeterminismTest,
                         testing::ValuesIn(MainComparisonSet()),
                         [](const testing::TestParamInfo<SystemKind>& info) {
                           return GoldenFileSlug(info.param);
                         });

TEST(ReplayArtifactTest, SerializationRoundTripsExactly) {
  const Experiment exp(GoldenSetup());
  const RecordedRun run = RecordGoldenRun(exp, SystemKind::kAdaServe);
  const std::string text = SerializeReplayArtifact(run.artifact);

  ReplayArtifact parsed;
  std::string error;
  ASSERT_TRUE(ParseReplayArtifact(text, &parsed, &error)) << error;
  EXPECT_EQ(SerializeReplayArtifact(parsed), text);
  EXPECT_EQ(parsed.arrivals.size(), run.artifact.arrivals.size());
  EXPECT_EQ(parsed.ticks.size(), run.artifact.ticks.size());
  EXPECT_EQ(parsed.metrics_text, run.artifact.metrics_text);

  // A parsed artifact replays just like the in-memory one.
  const ReplayOutcome outcome = ReplayRun(parsed);
  ASSERT_TRUE(outcome.ok) << outcome.divergence->Summary();
}

TEST(ReplayArtifactTest, TruncationAndVersionMismatchAreParseErrors) {
  const Experiment exp(GoldenSetup());
  const RecordedRun run = RecordGoldenRun(exp, SystemKind::kVllm);
  const std::string text = SerializeReplayArtifact(run.artifact);

  ReplayArtifact parsed;
  std::string error;
  EXPECT_FALSE(ParseReplayArtifact(text.substr(0, text.size() / 2), &parsed, &error));
  EXPECT_FALSE(error.empty());

  std::string future = text;
  const std::string header =
      "adaserve_replay_schema: " + std::to_string(kReplaySchemaVersion);
  ASSERT_EQ(future.find(header), 0u);
  future.replace(0, header.size(), "adaserve_replay_schema: 999");
  EXPECT_FALSE(ParseReplayArtifact(future, &parsed, &error));
  EXPECT_NE(error.find("unsupported replay schema"), std::string::npos) << error;
}

// A single flipped bit in a recorded tick is caught, and the divergence
// report names exactly that tick and field — the debugging contract: the
// first divergent tick is where to look.
TEST(ReplayCorruptionTest, SingleBitFlipDetectedAtExactTick) {
  const Experiment exp(GoldenSetup());
  const RecordedRun run = RecordGoldenRun(exp, SystemKind::kAdaServe);
  ASSERT_GT(run.artifact.ticks.size(), 4u);
  const size_t victim = run.artifact.ticks.size() / 2;

  ReplayArtifact corrupted = run.artifact;
  corrupted.ticks[victim].record.committed_tokens ^= 1;

  // Serialize + reparse so the corruption flows the full artifact path.
  ReplayArtifact reloaded;
  std::string error;
  ASSERT_TRUE(ParseReplayArtifact(SerializeReplayArtifact(corrupted), &reloaded, &error)) << error;

  const ReplayOutcome outcome = ReplayRun(reloaded);
  ASSERT_FALSE(outcome.ok);
  ASSERT_TRUE(outcome.divergence.has_value());
  EXPECT_EQ(outcome.divergence->tick, static_cast<long>(victim));
  EXPECT_EQ(outcome.divergence->field, "record.committed_tokens");
  EXPECT_FALSE(outcome.divergence->Summary().empty());
}

// Corrupting an arrival cannot silently pass either: the replay serves
// the corrupted workload and the metrics fingerprint catches it.
TEST(ReplayCorruptionTest, CorruptedArrivalDiverges) {
  const Experiment exp(GoldenSetup());
  const RecordedRun run = RecordGoldenRun(exp, SystemKind::kVllm);
  ASSERT_FALSE(run.artifact.arrivals.empty());

  ReplayArtifact corrupted = run.artifact;
  corrupted.arrivals[corrupted.arrivals.size() / 2].target_output_len += 1;

  const ReplayOutcome outcome = ReplayRun(corrupted);
  ASSERT_FALSE(outcome.ok);
  ASSERT_TRUE(outcome.divergence.has_value());
}

}  // namespace
}  // namespace adaserve
