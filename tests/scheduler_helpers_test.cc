#include "src/serve/scheduler.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace adaserve {
namespace {

class SchedulerHelpersTest : public ::testing::Test {
 protected:
  SchedulerHelpersTest()
      : exp_(TestSetup()),
        kv_(exp_.target_latency().KvCacheBytes(),
            exp_.target_latency().model().KvBytesPerToken()),
        pool_(&kv_),
        rng_(7) {
    ctx_.target = &exp_.target();
    ctx_.draft = &exp_.draft();
    ctx_.target_latency = &exp_.target_latency();
    ctx_.draft_latency = &exp_.draft_latency();
    ctx_.mode = DecodeMode::kStochastic;
    ctx_.rng = &rng_;
  }

  void AddAndAdmit(int n, int prompt_len = 64, int output_len = 8) {
    const std::vector<Request> reqs =
        UniformWorkload(exp_, n, kCatChat, 0.0, prompt_len, output_len);
    for (const Request& r : reqs) {
      pool_.AddArrival(r);
    }
    pool_.AdmitUpTo(100);
  }

  Experiment exp_;
  KvCache kv_;
  RequestPool pool_;
  Rng rng_;
  ServingContext ctx_;
};

TEST_F(SchedulerHelpersTest, RunningAndPrefillingPartitions) {
  AddAndAdmit(3);
  EXPECT_EQ(PrefillingRequests(pool_).size(), 3u);
  EXPECT_TRUE(RunningRequests(pool_).empty());
  pool_.AdvancePrefill(0, 64);
  EXPECT_EQ(PrefillingRequests(pool_).size(), 2u);
  EXPECT_EQ(RunningRequests(pool_).size(), 1u);
}

TEST_F(SchedulerHelpersTest, FullPrefillIterationCompletesPromptsAndEmitsFirstToken) {
  AddAndAdmit(2);
  IterationRecord record;
  ASSERT_TRUE(RunFullPrefillIteration(0.0, pool_, ctx_, 4096, record));
  EXPECT_EQ(record.prefill_tokens, 128);
  EXPECT_GT(record.duration, 0.0);
  EXPECT_EQ(record.committed_tokens, 2);
  for (RequestId id : {RequestId{0}, RequestId{1}}) {
    EXPECT_TRUE(pool_.Get(id).PrefillDone());
    EXPECT_EQ(pool_.Get(id).output_len(), 1);
    EXPECT_NEAR(pool_.Get(id).first_token_time, record.duration, 1e-12);
  }
}

TEST_F(SchedulerHelpersTest, FullPrefillRespectsTokenCap) {
  AddAndAdmit(3, /*prompt_len=*/100);
  IterationRecord record;
  ASSERT_TRUE(RunFullPrefillIteration(0.0, pool_, ctx_, /*max_prefill_tokens=*/250, record));
  EXPECT_EQ(record.prefill_tokens, 200);  // two whole prompts fit, not three
  EXPECT_EQ(PrefillingRequests(pool_).size(), 1u);
}

TEST_F(SchedulerHelpersTest, OversizedPromptStillProgresses) {
  AddAndAdmit(1, /*prompt_len=*/5000);
  IterationRecord record;
  ASSERT_TRUE(RunFullPrefillIteration(0.0, pool_, ctx_, /*max_prefill_tokens=*/1000, record));
  EXPECT_EQ(record.prefill_tokens, 5000);  // at least one prompt always runs
}

TEST_F(SchedulerHelpersTest, NoPrefillWorkReturnsFalse) {
  AddAndAdmit(1);
  pool_.AdvancePrefill(0, 64);
  IterationRecord record;
  EXPECT_FALSE(RunFullPrefillIteration(0.0, pool_, ctx_, 4096, record));
}

TEST_F(SchedulerHelpersTest, DecodeIterationCommitsOneTokenEach) {
  AddAndAdmit(3);
  for (RequestId id : {RequestId{0}, RequestId{1}, RequestId{2}}) {
    pool_.AdvancePrefill(id, 64);
    pool_.CommitToken(id, 1, 0.0);
  }
  const std::vector<RequestId> running = RunningRequests(pool_);
  const IterationRecord record = RunDecodeIteration(0.5, pool_, ctx_, running);
  EXPECT_EQ(record.committed_tokens, 3);
  EXPECT_EQ(record.decode_requests, 3);
  EXPECT_GT(record.duration, 0.0);
  for (RequestId id : running) {
    EXPECT_EQ(pool_.Get(id).output_len(), 2);
    EXPECT_NEAR(pool_.Get(id).token_times.back(), 0.5 + record.duration, 1e-12);
    EXPECT_EQ(pool_.Get(id).decode_start_time, 0.5);
  }
}

TEST_F(SchedulerHelpersTest, DecodeIterationEmptyBatchIsNoOp) {
  const IterationRecord record = RunDecodeIteration(0.0, pool_, ctx_, {});
  EXPECT_EQ(record.duration, 0.0);
  EXPECT_EQ(record.committed_tokens, 0);
}

TEST_F(SchedulerHelpersTest, DecodeLatencyGrowsWithBatch) {
  AddAndAdmit(20, /*prompt_len=*/64, /*output_len=*/100);
  std::vector<RequestId> all;
  for (RequestId id = 0; id < 20; ++id) {
    pool_.AdvancePrefill(id, 64);
    pool_.CommitToken(id, 1, 0.0);
    all.push_back(id);
  }
  const std::vector<RequestId> two(all.begin(), all.begin() + 2);
  const IterationRecord small = RunDecodeIteration(0.0, pool_, ctx_, two);
  const IterationRecord big = RunDecodeIteration(1.0, pool_, ctx_, all);
  EXPECT_GT(big.duration, small.duration);
}

}  // namespace
}  // namespace adaserve
