#include "src/serve/scheduler.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace adaserve {
namespace {

class SchedulerHelpersTest : public ::testing::Test {
 protected:
  SchedulerHelpersTest()
      : exp_(TestSetup()),
        kv_(exp_.target_latency().KvCacheBytes(),
            exp_.target_latency().model().KvBytesPerToken()),
        pool_(&kv_),
        rng_(7) {
    ctx_.target = &exp_.target();
    ctx_.draft = &exp_.draft();
    ctx_.target_latency = &exp_.target_latency();
    ctx_.draft_latency = &exp_.draft_latency();
    ctx_.mode = DecodeMode::kStochastic;
    ctx_.rng = &rng_;
  }

  void AddAndAdmit(int n, int prompt_len = 64, int output_len = 8) {
    const std::vector<Request> reqs =
        UniformWorkload(exp_, n, kCatChat, 0.0, prompt_len, output_len);
    for (const Request& r : reqs) {
      pool_.AddArrival(r);
    }
    pool_.AdmitUpTo(100);
  }

  Experiment exp_;
  KvCache kv_;
  RequestPool pool_;
  Rng rng_;
  ServingContext ctx_;
};

TEST_F(SchedulerHelpersTest, RunningAndPrefillingPartitions) {
  AddAndAdmit(3);
  EXPECT_EQ(PrefillingRequests(pool_).size(), 3u);
  EXPECT_TRUE(RunningRequests(pool_).empty());
  pool_.AdvancePrefill(0, 64);
  EXPECT_EQ(PrefillingRequests(pool_).size(), 2u);
  EXPECT_EQ(RunningRequests(pool_).size(), 1u);
}

TEST_F(SchedulerHelpersTest, FullPrefillIterationCompletesPromptsAndEmitsFirstToken) {
  AddAndAdmit(2);
  IterationRecord record;
  ASSERT_TRUE(RunFullPrefillIteration(0.0, pool_, ctx_, 4096, record));
  EXPECT_EQ(record.prefill_tokens, 128);
  EXPECT_GT(record.duration, 0.0);
  EXPECT_EQ(record.committed_tokens, 2);
  for (RequestId id : {RequestId{0}, RequestId{1}}) {
    EXPECT_TRUE(pool_.Get(id).PrefillDone());
    EXPECT_EQ(pool_.Get(id).output_len(), 1);
    EXPECT_NEAR(pool_.Get(id).first_token_time, record.duration, 1e-12);
  }
}

TEST_F(SchedulerHelpersTest, FullPrefillRespectsTokenCap) {
  AddAndAdmit(3, /*prompt_len=*/100);
  IterationRecord record;
  ASSERT_TRUE(RunFullPrefillIteration(0.0, pool_, ctx_, /*max_prefill_tokens=*/250, record));
  EXPECT_EQ(record.prefill_tokens, 200);  // two whole prompts fit, not three
  EXPECT_EQ(PrefillingRequests(pool_).size(), 1u);
}

TEST_F(SchedulerHelpersTest, OversizedPromptStillProgresses) {
  AddAndAdmit(1, /*prompt_len=*/5000);
  IterationRecord record;
  ASSERT_TRUE(RunFullPrefillIteration(0.0, pool_, ctx_, /*max_prefill_tokens=*/1000, record));
  EXPECT_EQ(record.prefill_tokens, 5000);  // at least one prompt always runs
}

TEST_F(SchedulerHelpersTest, NoPrefillWorkReturnsFalse) {
  AddAndAdmit(1);
  pool_.AdvancePrefill(0, 64);
  IterationRecord record;
  EXPECT_FALSE(RunFullPrefillIteration(0.0, pool_, ctx_, 4096, record));
}

TEST_F(SchedulerHelpersTest, DecodeIterationCommitsOneTokenEach) {
  AddAndAdmit(3);
  for (RequestId id : {RequestId{0}, RequestId{1}, RequestId{2}}) {
    pool_.AdvancePrefill(id, 64);
    pool_.CommitToken(id, 1, 0.0);
  }
  const std::vector<RequestId> running = RunningRequests(pool_);
  const IterationRecord record = RunDecodeIteration(0.5, pool_, ctx_, running);
  EXPECT_EQ(record.committed_tokens, 3);
  EXPECT_EQ(record.decode_requests, 3);
  EXPECT_GT(record.duration, 0.0);
  for (RequestId id : running) {
    EXPECT_EQ(pool_.Get(id).output_len(), 2);
    EXPECT_NEAR(pool_.Get(id).token_times.back(), 0.5 + record.duration, 1e-12);
    EXPECT_EQ(pool_.Get(id).decode_start_time, 0.5);
  }
}

TEST_F(SchedulerHelpersTest, DecodeIterationEmptyBatchIsNoOp) {
  const IterationRecord record = RunDecodeIteration(0.0, pool_, ctx_, {});
  EXPECT_EQ(record.duration, 0.0);
  EXPECT_EQ(record.committed_tokens, 0);
}

TEST_F(SchedulerHelpersTest, DecodeLatencyGrowsWithBatch) {
  AddAndAdmit(20, /*prompt_len=*/64, /*output_len=*/100);
  std::vector<RequestId> all;
  for (RequestId id = 0; id < 20; ++id) {
    pool_.AdvancePrefill(id, 64);
    pool_.CommitToken(id, 1, 0.0);
    all.push_back(id);
  }
  const std::vector<RequestId> two(all.begin(), all.begin() + 2);
  const IterationRecord small = RunDecodeIteration(0.0, pool_, ctx_, two);
  const IterationRecord big = RunDecodeIteration(1.0, pool_, ctx_, all);
  EXPECT_GT(big.duration, small.duration);
}

// --- tick-phase building blocks ---

TEST_F(SchedulerHelpersTest, BudgetedPrefillCapsEachRequestAtBurst) {
  AddAndAdmit(2, /*prompt_len=*/64);
  const IterationRecord record =
      RunBudgetedPrefillPhase(0.0, pool_, ctx_, /*budget=*/100, /*burst=*/16);
  // Both prompts advance, but the kBurst cap stops either from taking more
  // than 16 tokens even though the budget (100) had room.
  EXPECT_EQ(record.prefill_tokens, 32);
  EXPECT_EQ(pool_.Get(0).prefill_progress, 16);
  EXPECT_EQ(pool_.Get(1).prefill_progress, 16);
  EXPECT_EQ(record.committed_tokens, 0);  // nothing completed
  EXPECT_GT(record.duration, 0.0);
}

TEST_F(SchedulerHelpersTest, BudgetedPrefillRespectsTokenBudget) {
  AddAndAdmit(2, /*prompt_len=*/64);
  const IterationRecord record =
      RunBudgetedPrefillPhase(0.0, pool_, ctx_, /*budget=*/24, /*burst=*/16);
  // FIFO: r0 takes a full burst, r1 gets the 8 leftover budget tokens.
  EXPECT_EQ(record.prefill_tokens, 24);
  EXPECT_EQ(pool_.Get(0).prefill_progress, 16);
  EXPECT_EQ(pool_.Get(1).prefill_progress, 8);
}

TEST_F(SchedulerHelpersTest, BudgetedPrefillCompletionCommitsFirstToken) {
  AddAndAdmit(2, /*prompt_len=*/8);
  const IterationRecord record =
      RunBudgetedPrefillPhase(0.0, pool_, ctx_, /*budget=*/64, /*burst=*/16);
  EXPECT_EQ(record.prefill_tokens, 16);
  EXPECT_EQ(record.committed_tokens, 2);
  for (RequestId id : {RequestId{0}, RequestId{1}}) {
    EXPECT_TRUE(pool_.Get(id).PrefillDone());
    EXPECT_EQ(pool_.Get(id).output_len(), 1);
    EXPECT_NEAR(pool_.Get(id).first_token_time, record.duration, 1e-12);
  }
}

TEST_F(SchedulerHelpersTest, BudgetedPrefillUncappedWhenBurstNonPositive) {
  AddAndAdmit(1, /*prompt_len=*/200);
  const IterationRecord record =
      RunBudgetedPrefillPhase(0.0, pool_, ctx_, /*budget=*/500, /*burst=*/0);
  EXPECT_EQ(record.prefill_tokens, 200);
  EXPECT_TRUE(pool_.Get(0).PrefillDone());
}

TEST_F(SchedulerHelpersTest, BudgetedPrefillNoWorkIsNoOp) {
  const IterationRecord idle = RunBudgetedPrefillPhase(0.0, pool_, ctx_, 100, 16);
  EXPECT_EQ(idle.duration, 0.0);
  AddAndAdmit(1);
  const IterationRecord no_budget = RunBudgetedPrefillPhase(0.0, pool_, ctx_, 0, 16);
  EXPECT_EQ(no_budget.duration, 0.0);
  EXPECT_EQ(pool_.Get(0).prefill_progress, 0);
}

TEST_F(SchedulerHelpersTest, MidTickAdmitPullsDueArrivalsAndAdmits) {
  const std::vector<Request> reqs = UniformWorkload(exp_, 3, kCatChat, /*spread_s=*/3.0);
  size_t next = 0;
  ctx_.pull_arrivals = [&](SimTime t) {
    int pulled = 0;
    while (next < reqs.size() && reqs[next].arrival <= t) {
      pool_.AddArrival(reqs[next++]);
      ++pulled;
    }
    return pulled;
  };
  ctx_.tick.max_active = 100;
  // Arrivals at 0, 1, 2: a phase ending at t=1.5 admits the first two.
  EXPECT_EQ(MidTickAdmitPhase(1.5, pool_, ctx_), 2);
  EXPECT_EQ(pool_.active().size(), 2u);
  EXPECT_EQ(MidTickAdmitPhase(2.5, pool_, ctx_), 1);
  EXPECT_EQ(pool_.active().size(), 3u);
}

TEST_F(SchedulerHelpersTest, ContinuousTickAdmitsMidTickAndPrefillsSameTick) {
  // r0 is running; r1 arrives strictly after the tick starts but before
  // the decode phase ends, so the tick admits it mid-flight and its
  // prompt gets a burst-capped prefill pass in the same tick — the
  // admission latency the drain loop could not avoid.
  std::vector<Request> reqs = UniformWorkload(exp_, 2, kCatChat, 0.0, /*prompt_len=*/64);
  reqs[1].arrival = 1e-6;
  pool_.AddArrival(reqs[0]);
  pool_.AdmitUpTo(100);
  pool_.AdvancePrefill(0, 64);
  pool_.CommitToken(0, 1, 0.0);
  size_t next = 1;
  ctx_.pull_arrivals = [&](SimTime t) {
    int pulled = 0;
    while (next < reqs.size() && reqs[next].arrival <= t) {
      pool_.AddArrival(reqs[next++]);
      ++pulled;
    }
    return pulled;
  };
  ctx_.tick.max_active = 100;
  ctx_.tick.continuous = true;
  ctx_.tick.prefill_burst = 16;
  ctx_.verify_budget = 64;
  const TickResult tick = RunContinuousTick(
      0.0, pool_, ctx_, [](SimTime now, RequestPool& pool, ServingContext& ctx) {
        return RunDecodeIteration(now, pool, ctx, RunningRequests(pool));
      });
  EXPECT_TRUE(tick.MadeProgress());
  EXPECT_EQ(tick.record.admitted, 1);
  EXPECT_EQ(tick.record.decode_requests, 1);
  // The mid-tick admission got prefill service immediately, kBurst-capped.
  EXPECT_EQ(tick.record.prefill_tokens, 16);
  EXPECT_EQ(pool_.Get(1).prefill_progress, 16);
  EXPECT_GT(tick.record.prefill_time, 0.0);
}

}  // namespace
}  // namespace adaserve
