// TraceFileArrivalStream round-trip and error-path suite: CSV -> stream
// -> drain must reproduce a hand-built request vector exactly; malformed
// input fails with line-numbered errors; and the stream composes with
// PrefetchingArrivalStream and the cluster router pre-pass unchanged.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/workload/prefetch_stream.h"
#include "src/workload/trace_file.h"
#include "tests/test_util.h"

namespace adaserve {
namespace {

std::vector<CategorySpec> TestCategories() { return Experiment(TestSetup()).Categories(); }

// The CSV twin of UniformWorkload-style hand-built requests.
std::vector<Request> HandBuiltRequests(const std::vector<CategorySpec>& cats) {
  std::vector<Request> reqs;
  const int categories[] = {0, 1, 2, 1};
  const double arrivals[] = {0.0, 0.25, 0.25, 1.5};
  const int prompts[] = {64, 12, 700, 33};
  const int outputs[] = {24, 8, 120, 2};
  for (size_t i = 0; i < 4; ++i) {
    Request req;
    req.id = static_cast<RequestId>(i);
    req.category = categories[i];
    req.tpot_slo = cats[static_cast<size_t>(categories[i])].tpot_slo;
    req.arrival = arrivals[i];
    req.prompt_len = prompts[i];
    req.target_output_len = outputs[i];
    req.stream_seed = HashCombine(Mix64(0xadaceedeULL), static_cast<uint64_t>(i));
    reqs.push_back(req);
  }
  return reqs;
}

void ExpectSameRequests(const std::vector<Request>& want, const std::vector<Request>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id) << i;
    EXPECT_EQ(want[i].category, got[i].category) << i;
    EXPECT_EQ(want[i].tpot_slo, got[i].tpot_slo) << i;
    EXPECT_EQ(want[i].arrival, got[i].arrival) << i;
    EXPECT_EQ(want[i].prompt_len, got[i].prompt_len) << i;
    EXPECT_EQ(want[i].target_output_len, got[i].target_output_len) << i;
    EXPECT_EQ(want[i].stream_seed, got[i].stream_seed) << i;
  }
}

TEST(TraceFileTest, CsvRoundTripEqualsHandBuiltVector) {
  const std::vector<CategorySpec> cats = TestCategories();
  const std::vector<Request> want = HandBuiltRequests(cats);

  // Writer -> parser round trip.
  const std::string csv = TraceCsvFromRequests(want);
  std::string error;
  auto stream = TraceFileArrivalStream::FromString(cats, csv, &error);
  ASSERT_NE(stream, nullptr) << error;
  EXPECT_EQ(stream->size(), want.size());
  ExpectSameRequests(want, Materialize(*stream));
}

TEST(TraceFileTest, ParsesHeaderCommentsBlanksAndCategoryDefaultSlo) {
  const std::vector<CategorySpec> cats = TestCategories();
  const std::string csv =
      "timestamp,prompt_tokens,output_tokens,category\n"
      "# recorded 2026-08-01\n"
      "\n"
      "0.5,100,10,0\n"
      "1.25,30,4,2,0.5\n";
  std::string error;
  auto stream = TraceFileArrivalStream::FromString(cats, csv, &error);
  ASSERT_NE(stream, nullptr) << error;
  const std::vector<Request> got = Materialize(*stream);
  ASSERT_EQ(got.size(), 2u);
  // Row without tpot_slo falls back to the category default.
  EXPECT_EQ(got[0].tpot_slo, cats[0].tpot_slo);
  EXPECT_EQ(got[0].category, 0);
  // Explicit override wins.
  EXPECT_EQ(got[1].tpot_slo, 0.5);
  // Output clamp: the engine needs >= 2 output tokens.
  const std::string clamp_csv = "0.0,10,1,0\n";
  auto clamped = TraceFileArrivalStream::FromString(cats, clamp_csv, &error);
  ASSERT_NE(clamped, nullptr) << error;
  EXPECT_EQ(clamped->Peek()->target_output_len, 2);
}

TEST(TraceFileTest, MalformedLinesFailWithLineNumbers) {
  const std::vector<CategorySpec> cats = TestCategories();
  struct Case {
    std::string name;
    std::string csv;
    std::string want_error_substr;
  };
  const Case cases[] = {
      {"empty file", "", "no data rows"},
      {"header only", "timestamp,prompt_tokens,output_tokens,category\n", "no data rows"},
      {"too few columns", "0.0,10,5\n", "line 1"},
      {"too many columns", "0.0,10,5,0,0.1,9\n", "line 1"},
      {"bad timestamp", "zero,10,5,0\n", "bad timestamp"},
      {"negative timestamp", "-1.0,10,5,0\n", "negative timestamp"},
      {"bad prompt", "0.0,ten,5,0\n", "bad prompt_tokens"},
      {"zero prompt", "0.0,0,5,0\n", "bad prompt_tokens"},
      {"bad output", "0.0,10,-3,0\n", "bad output_tokens"},
      {"bad category", "0.0,10,5,7\n", "bad category"},
      {"bad slo", "0.0,10,5,0,-0.5\n", "bad tpot_slo"},
      {"out of order", "1.0,10,5,0\n0.5,10,5,0\n", "out-of-order timestamp"},
      {"error on line 2", "0.5,10,5,0\nnope,10,5,0\n", "line 2"},
  };
  for (const Case& c : cases) {
    std::string error;
    auto stream = TraceFileArrivalStream::FromString(cats, c.csv, &error);
    EXPECT_EQ(stream, nullptr) << c.name;
    EXPECT_NE(error.find(c.want_error_substr), std::string::npos)
        << c.name << ": error was '" << error << "'";
  }
}

TEST(TraceFileTest, OpenMissingFileFails) {
  std::string error;
  auto stream =
      TraceFileArrivalStream::Open(TestCategories(), "/nonexistent/trace.csv", &error);
  EXPECT_EQ(stream, nullptr);
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(TraceFileTest, FileRoundTripThroughDisk) {
  const std::vector<CategorySpec> cats = TestCategories();
  const std::vector<Request> want = HandBuiltRequests(cats);
  const std::string path = testing::TempDir() + "/adaserve_trace_roundtrip.csv";
  std::string error;
  ASSERT_TRUE(WriteTraceCsv(path, want, &error)) << error;
  auto stream = TraceFileArrivalStream::Open(cats, path, &error);
  ASSERT_NE(stream, nullptr) << error;
  ExpectSameRequests(want, Materialize(*stream));
  std::remove(path.c_str());
}

// The trace stream honors the full ArrivalStream contract, so wrapping it
// in the prefetch producer thread must not change the emitted sequence.
TEST(TraceFileTest, PrefetchedStreamEqualsPlainStream) {
  const std::vector<CategorySpec> cats = TestCategories();
  // A bigger trace so the prefetch queue actually cycles.
  std::vector<Request> want;
  for (int i = 0; i < 500; ++i) {
    Request req;
    req.id = i;
    req.category = i % kNumCategories;
    req.tpot_slo = cats[static_cast<size_t>(i % kNumCategories)].tpot_slo;
    req.arrival = 0.01 * i;
    req.prompt_len = 16 + (i % 50);
    req.target_output_len = 2 + (i % 20);
    req.stream_seed = HashCombine(Mix64(0xadaceedeULL), static_cast<uint64_t>(i));
    want.push_back(req);
  }
  const std::string csv = TraceCsvFromRequests(want);

  std::string error;
  auto plain = TraceFileArrivalStream::FromString(cats, csv, &error);
  ASSERT_NE(plain, nullptr) << error;
  auto inner = TraceFileArrivalStream::FromString(cats, csv, &error);
  ASSERT_NE(inner, nullptr) << error;
  PrefetchingArrivalStream prefetched(std::move(inner), /*depth=*/8);

  ExpectSameRequests(Materialize(*plain), Materialize(prefetched));
}

// The cluster router pre-pass consumes the stream like any generator:
// partitions preserve arrival order and conserve every request.
TEST(TraceFileTest, ClusterPartitionConservesTraceRequests) {
  const Experiment probe(TestSetup());
  const std::vector<CategorySpec> cats = probe.Categories();
  std::vector<Request> want;
  for (int i = 0; i < 200; ++i) {
    Request req;
    req.id = i;
    req.category = i % kNumCategories;
    req.tpot_slo = cats[static_cast<size_t>(i % kNumCategories)].tpot_slo;
    req.arrival = 0.05 * i;
    req.prompt_len = 32;
    req.target_output_len = 8;
    req.stream_seed = HashCombine(Mix64(0xadaceedeULL), static_cast<uint64_t>(i));
    want.push_back(req);
  }
  const std::string csv = TraceCsvFromRequests(want);
  std::string error;
  auto stream = TraceFileArrivalStream::FromString(cats, csv, &error);
  ASSERT_NE(stream, nullptr) << error;

  ClusterConfig config;
  config.replicas.push_back({TestSetup(), EngineConfig{}});
  config.replicas.push_back({TestSetup(), EngineConfig{}});
  config.router = RouterPolicy::kRoundRobin;
  const Cluster cluster(config);
  const std::vector<std::vector<Request>> parts = cluster.Partition(*stream);

  size_t total = 0;
  for (const std::vector<Request>& part : parts) {
    for (size_t i = 0; i < part.size(); ++i) {
      // Dense per-replica re-iding, nondecreasing arrivals.
      EXPECT_EQ(part[i].id, static_cast<RequestId>(i));
      if (i > 0) {
        EXPECT_GE(part[i].arrival, part[i - 1].arrival);
      }
    }
    total += part.size();
  }
  EXPECT_EQ(total, want.size());
}

}  // namespace
}  // namespace adaserve
