#include "src/core/selection.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"

namespace adaserve {
namespace {

// Builds a fixed tree:
//   root -> a(0.8) -> c(0.8*0.7=0.56)
//        -> b(0.3) -> d(0.3*0.5=0.15)
TokenTree MakeTree() {
  TokenTree tree(0);
  const NodeId a = tree.AddNode(kRootNode, 10, 0.8);
  const NodeId b = tree.AddNode(kRootNode, 11, 0.3);
  tree.AddNode(a, 12, 0.7);
  tree.AddNode(b, 13, 0.5);
  return tree;
}

TEST(Selection, SloPhaseStopsAtACap) {
  const TokenTree tree = MakeTree();
  const SelectionRequest req{.tree = &tree, .a_cap = 1.7};
  TokenSelector selector(std::span<const SelectionRequest>(&req, 1), {});
  const int used = selector.SloPhase(100);
  // n_acc starts at 1.0; adding a (0.8) reaches 1.8 >= 1.7 => one token.
  EXPECT_EQ(used, 1);
  EXPECT_NEAR(selector.result().expected[0], 1.8, 1e-12);
  EXPECT_TRUE(selector.result().all_slo_met);
}

TEST(Selection, SloPhaseTakesNodesInDescendingPathProb) {
  const TokenTree tree = MakeTree();
  const SelectionRequest req{.tree = &tree, .a_cap = 2.5};
  TokenSelector selector(std::span<const SelectionRequest>(&req, 1), {});
  selector.SloPhase(100);
  // Order: a(0.8), c(0.56), b(0.3) => 1 + 0.8 + 0.56 = 2.36 < 2.5, add b
  // => 2.66 >= 2.5. Selected: a, c, b but not d.
  const SelectionResult& result = selector.result();
  EXPECT_EQ(result.taken[0], 3);
  EXPECT_TRUE(result.selected[0][1]);  // a
  EXPECT_TRUE(result.selected[0][3]);  // c
  EXPECT_TRUE(result.selected[0][2]);  // b
  EXPECT_FALSE(result.selected[0][4]);  // d
}

TEST(Selection, NMaxCapsSloPhase) {
  const TokenTree tree = MakeTree();
  const SelectionRequest req{.tree = &tree, .a_cap = 10.0};
  SelectionConfig config;
  config.n_max = 2;
  TokenSelector selector(std::span<const SelectionRequest>(&req, 1), config);
  const int used = selector.SloPhase(100);
  EXPECT_EQ(used, 2);
  EXPECT_FALSE(selector.result().all_slo_met);
}

TEST(Selection, BudgetCapsSloPhase) {
  const TokenTree tree = MakeTree();
  const SelectionRequest req{.tree = &tree, .a_cap = 10.0};
  TokenSelector selector(std::span<const SelectionRequest>(&req, 1), {});
  const int used = selector.SloPhase(1);
  EXPECT_EQ(used, 1);
  EXPECT_EQ(selector.result().taken[0], 1);
}

TEST(Selection, ScarcityPrioritisesLargerACap) {
  const TokenTree t1 = MakeTree();
  const TokenTree t2 = MakeTree();
  std::vector<SelectionRequest> reqs = {{.tree = &t1, .a_cap = 1.5},
                                        {.tree = &t2, .a_cap = 3.0}};
  TokenSelector selector(reqs, {});
  selector.SloPhase(1);  // only one token available
  // Request 1 (a_cap 3.0) is served first.
  EXPECT_EQ(selector.result().taken[1], 1);
  EXPECT_EQ(selector.result().taken[0], 0);
}

TEST(Selection, ACapAtOrBelowOneNeedsNothing) {
  const TokenTree tree = MakeTree();
  const SelectionRequest req{.tree = &tree, .a_cap = 1.0};
  TokenSelector selector(std::span<const SelectionRequest>(&req, 1), {});
  EXPECT_EQ(selector.SloPhase(100), 0);
  EXPECT_TRUE(selector.result().all_slo_met);
}

TEST(Selection, ThroughputPhasePicksGlobalBest) {
  // Tree 2's best candidate (0.9) beats tree 1's (0.8).
  TokenTree t1(0);
  t1.AddNode(kRootNode, 1, 0.8);
  TokenTree t2(0);
  t2.AddNode(kRootNode, 2, 0.9);
  std::vector<SelectionRequest> reqs = {{.tree = &t1, .a_cap = 0.0},
                                        {.tree = &t2, .a_cap = 0.0}};
  TokenSelector selector(reqs, {});
  selector.ThroughputPhase(1);
  EXPECT_EQ(selector.result().taken[0], 0);
  EXPECT_EQ(selector.result().taken[1], 1);
}

TEST(Selection, ThroughputPhaseIgnoresNMax) {
  // n_max binds only the SLO-customized phase (Algorithm 2).
  const TokenTree tree = MakeTree();
  const SelectionRequest req{.tree = &tree, .a_cap = 0.0};
  SelectionConfig config;
  config.n_max = 1;
  TokenSelector selector(std::span<const SelectionRequest>(&req, 1), config);
  EXPECT_EQ(selector.ThroughputPhase(4), 4);
}

TEST(Selection, ExhaustsTreesGracefully) {
  const TokenTree tree = MakeTree();  // 4 candidates
  const SelectionRequest req{.tree = &tree, .a_cap = 0.0};
  TokenSelector selector(std::span<const SelectionRequest>(&req, 1), {});
  EXPECT_EQ(selector.ThroughputPhase(100), 4);
}

TEST(Selection, SelectTokensComposesBothPhases) {
  const TokenTree t1 = MakeTree();
  const TokenTree t2 = MakeTree();
  std::vector<SelectionRequest> reqs = {{.tree = &t1, .a_cap = 1.7},
                                        {.tree = &t2, .a_cap = 1.0}};
  const SelectionResult result = SelectTokens(reqs, 3);
  EXPECT_EQ(result.total_taken, 3);
  // Request 0: SLO phase takes a (0.8). Throughput phase then picks the two
  // globally best remaining: t2's a (0.8), then c from either (0.56; tie
  // broken by request order).
  EXPECT_GE(result.taken[0], 1);
  EXPECT_GE(result.taken[1], 1);
}

TEST(Selection, ResultMasksAreConnected) {
  Rng rng(3);
  // Random trees + random requirements: masks must always be connected.
  for (int trial = 0; trial < 20; ++trial) {
    TokenTree tree(0);
    for (int i = 0; i < 30; ++i) {
      const NodeId parent =
          static_cast<NodeId>(rng.UniformInt(static_cast<uint64_t>(tree.size())));
      tree.AddNode(parent, static_cast<Token>(i), 0.05 + 0.9 * rng.Uniform());
    }
    const SelectionRequest req{.tree = &tree, .a_cap = 1.0 + 3.0 * rng.Uniform()};
    const SelectionResult result = SelectTokens(std::span<const SelectionRequest>(&req, 1),
                                                static_cast<int>(rng.UniformInt(20)));
    EXPECT_TRUE(tree.IsConnectedSelection(result.selected[0])) << "trial " << trial;
  }
}

TEST(Selection, ExpectedEqualsOnePlusSumOfSelectedPathProbs) {
  const TokenTree tree = MakeTree();
  const SelectionRequest req{.tree = &tree, .a_cap = 5.0};
  const SelectionResult result = SelectTokens(std::span<const SelectionRequest>(&req, 1), 4);
  double sum = 1.0;
  for (NodeId id = 1; id < tree.size(); ++id) {
    if (result.selected[0][static_cast<size_t>(id)]) {
      sum += tree.node(id).path_prob;
    }
  }
  EXPECT_NEAR(result.expected[0], sum, 1e-12);
}

TEST(Selection, ZeroBudgetSelectsNothing) {
  const TokenTree tree = MakeTree();
  const SelectionRequest req{.tree = &tree, .a_cap = 3.0};
  const SelectionResult result = SelectTokens(std::span<const SelectionRequest>(&req, 1), 0);
  EXPECT_EQ(result.total_taken, 0);
  EXPECT_FALSE(result.all_slo_met);
}

TEST(Selection, EmptyRequestListIsFine) {
  const SelectionResult result = SelectTokens({}, 10);
  EXPECT_EQ(result.total_taken, 0);
  EXPECT_TRUE(result.all_slo_met);
}

// Budget-compliance property over random scenarios.
class SelectionBudgetSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectionBudgetSweep, NeverExceedsBudget) {
  Rng rng(GetParam());
  std::vector<TokenTree> trees;
  std::vector<SelectionRequest> reqs;
  const int n = 1 + static_cast<int>(rng.UniformInt(6));
  trees.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    TokenTree tree(0);
    const int nodes = 1 + static_cast<int>(rng.UniformInt(25));
    for (int j = 0; j < nodes; ++j) {
      const NodeId parent =
          static_cast<NodeId>(rng.UniformInt(static_cast<uint64_t>(tree.size())));
      tree.AddNode(parent, static_cast<Token>(j), 0.05 + 0.9 * rng.Uniform());
    }
    trees.push_back(std::move(tree));
  }
  for (int i = 0; i < n; ++i) {
    reqs.push_back({.tree = &trees[static_cast<size_t>(i)],
                    .a_cap = 1.0 + 2.0 * rng.Uniform()});
  }
  const int budget = static_cast<int>(rng.UniformInt(40));
  const SelectionResult result = SelectTokens(reqs, budget);
  EXPECT_LE(result.total_taken, budget);
  int taken_sum = 0;
  for (int t : result.taken) {
    taken_sum += t;
  }
  EXPECT_EQ(taken_sum, result.total_taken);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionBudgetSweep, ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace adaserve
