#include "src/spec/verifier.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/model/draft_lm.h"
#include "src/spec/beam_search.h"

namespace adaserve {
namespace {

LmConfig TestLmConfig(uint64_t seed = 21) {
  LmConfig config;
  config.vocab_size = 200;
  config.support = 5;
  config.context_order = 2;
  config.zipf_exponent = 1.5;
  config.seed = seed;
  return config;
}

struct Models {
  SyntheticLm target;
  DraftLm draft;
  explicit Models(double fidelity = 0.9)
      : target(TestLmConfig()), draft(&target, DraftConfig{.fidelity = fidelity}) {}
};

TEST(Verifier, GreedyAcceptsExactlyTheArgmaxChain) {
  Models m;
  std::vector<Token> ctx = {1, 2};
  // Build the target's own greedy chain as the draft tree: greedy
  // verification must accept all of it.
  TokenTree tree(ctx.back());
  std::vector<Token> walk = ctx;
  NodeId cur = kRootNode;
  for (int i = 0; i < 4; ++i) {
    const Token t = m.target.NextDist(3, walk).ArgMax();
    cur = tree.AddNode(cur, t, 0.9);
    walk.push_back(t);
  }
  Rng rng(1);
  const VerifyResult result = VerifyTree(m.target, 3, ctx, tree, {}, DecodeMode::kGreedy, rng);
  EXPECT_EQ(result.accepted.size(), 4u);
  EXPECT_EQ(result.TokensCommitted(), 5);
  // The bonus continues the argmax chain.
  EXPECT_EQ(result.bonus, m.target.NextDist(3, walk).ArgMax());
}

TEST(Verifier, GreedyRejectsWrongToken) {
  Models m;
  const std::vector<Token> ctx = {1, 2};
  const Token correct = m.target.NextDist(3, ctx).ArgMax();
  TokenTree tree(ctx.back());
  tree.AddNode(kRootNode, correct + 1, 0.9);  // deliberately wrong
  Rng rng(1);
  const VerifyResult result = VerifyTree(m.target, 3, ctx, tree, {}, DecodeMode::kGreedy, rng);
  EXPECT_TRUE(result.accepted.empty());
  EXPECT_EQ(result.bonus, correct);
  EXPECT_EQ(result.TokensCommitted(), 1);
}

TEST(Verifier, SelectionMaskRestrictsMatching) {
  Models m;
  const std::vector<Token> ctx = {1, 2};
  const Token correct = m.target.NextDist(3, ctx).ArgMax();
  TokenTree tree(ctx.back());
  const NodeId child = tree.AddNode(kRootNode, correct, 0.9);
  std::vector<char> selected(static_cast<size_t>(tree.size()), 0);
  selected[kRootNode] = 1;
  // Child not selected: even a correct token cannot be accepted.
  Rng rng(1);
  VerifyResult result = VerifyTree(m.target, 3, ctx, tree, selected, DecodeMode::kGreedy, rng);
  EXPECT_TRUE(result.accepted.empty());
  EXPECT_EQ(result.tokens_verified, 0);
  selected[static_cast<size_t>(child)] = 1;
  result = VerifyTree(m.target, 3, ctx, tree, selected, DecodeMode::kGreedy, rng);
  EXPECT_EQ(result.accepted.size(), 1u);
  EXPECT_EQ(result.tokens_verified, 1);
}

TEST(Verifier, BonusAlwaysPresent) {
  Models m;
  const std::vector<Token> ctx = {9};
  const TokenTree tree(ctx.back());  // no speculated tokens at all
  Rng rng(1);
  const VerifyResult result =
      VerifyTree(m.target, 3, ctx, tree, {}, DecodeMode::kStochastic, rng);
  EXPECT_NE(result.bonus, kInvalidToken);
  EXPECT_EQ(result.TokensCommitted(), 1);
}

TEST(Verifier, DecodeOneTokenMatchesTargetArgmaxInGreedy) {
  Models m;
  const std::vector<Token> ctx = {4, 4};
  Rng rng(1);
  EXPECT_EQ(DecodeOneToken(m.target, 2, ctx, DecodeMode::kGreedy, rng),
            m.target.NextDist(2, ctx).ArgMax());
}

// Losslessness (§2, DESIGN.md §4.2): the distribution of the next committed
// token under tree speculation equals the target distribution, because the
// verifier draws from the target at every node. Chi-square over many trials.
TEST(Verifier, LosslessnessFirstCommittedTokenDistribution) {
  Models m(/*fidelity=*/0.6);  // a mediocre draft must not bias outputs
  const std::vector<Token> ctx = {3, 7};
  const SparseDist target_dist = m.target.NextDist(5, ctx);
  const TokenTree tree = BuildCandidateTree(m.draft, 5, ctx, BeamConfig{.depth = 3, .width = 3});
  Rng rng(1234);
  std::map<Token, int> counts;
  constexpr int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) {
    const VerifyResult result =
        VerifyTree(m.target, 5, ctx, tree, {}, DecodeMode::kStochastic, rng);
    const Token first = result.accepted.empty() ? result.bonus : result.accepted.front();
    ++counts[first];
  }
  double chi2 = 0.0;
  for (const auto& e : target_dist.entries()) {
    const double expected = e.prob * kTrials;
    const double observed = counts[e.token];
    chi2 += (observed - expected) * (observed - expected) / expected;
  }
  // Support is 5 tokens => 4 dof; 99.9th percentile ~ 18.5. Use 30 to be
  // flake-proof while still catching bias.
  EXPECT_LT(chi2, 30.0);
}

// Theorem 3.1: E[acc(T)] = sum of true path probabilities f(v) over the
// tree, where f(v) is the product of target conditionals. Monte Carlo.
TEST(Verifier, ExpectedAcceptedMatchesSumOfPathProbs) {
  Models m;
  const std::vector<Token> ctx = {2, 8};
  const TokenTree tree = BuildCandidateTree(m.draft, 6, ctx, BeamConfig{.depth = 3, .width = 3});
  // True f(v) from the target model.
  double expected_sum = 0.0;
  for (NodeId id = 1; id < tree.size(); ++id) {
    std::vector<Token> walk = ctx;
    double f = 1.0;
    for (Token tok : tree.PathTokens(id)) {
      f *= m.target.NextDist(6, walk).ProbOf(tok);
      walk.push_back(tok);
    }
    expected_sum += f;
  }
  Rng rng(555);
  double acc_sum = 0.0;
  constexpr int kTrials = 30000;
  for (int i = 0; i < kTrials; ++i) {
    acc_sum += static_cast<double>(
        VerifyTree(m.target, 6, ctx, tree, {}, DecodeMode::kStochastic, rng).accepted.size());
  }
  EXPECT_NEAR(acc_sum / kTrials, expected_sum, 0.05);
}

// Acceptance monotonicity: better drafts yield (weakly) more acceptance.
class FidelityAcceptanceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FidelityAcceptanceSweep, HigherFidelityAcceptsMore) {
  Models good(0.95);
  Models poor(0.2);
  const std::vector<Token> ctx = {static_cast<Token>(GetParam()), 1};
  const TokenTree good_tree =
      BuildCandidateTree(good.draft, GetParam(), ctx, BeamConfig{.depth = 4, .width = 2});
  const TokenTree poor_tree =
      BuildCandidateTree(poor.draft, GetParam(), ctx, BeamConfig{.depth = 4, .width = 2});
  Rng rng(GetParam() + 1);
  double good_acc = 0.0;
  double poor_acc = 0.0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    good_acc += static_cast<double>(
        VerifyTree(good.target, GetParam(), ctx, good_tree, {}, DecodeMode::kStochastic, rng)
            .accepted.size());
    poor_acc += static_cast<double>(
        VerifyTree(poor.target, GetParam(), ctx, poor_tree, {}, DecodeMode::kStochastic, rng)
            .accepted.size());
  }
  EXPECT_GE(good_acc, poor_acc) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FidelityAcceptanceSweep, ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace adaserve
