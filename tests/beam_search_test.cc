#include "src/spec/beam_search.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/spec/sequence_spec.h"

namespace adaserve {
namespace {

LmConfig TestLmConfig() {
  LmConfig config;
  config.vocab_size = 500;
  config.support = 6;
  config.context_order = 2;
  config.zipf_exponent = 2.0;
  config.seed = 11;
  return config;
}

struct Models {
  SyntheticLm target;
  DraftLm draft;
  Models() : target(TestLmConfig()), draft(&target, DraftConfig{.fidelity = 0.9}) {}
};

TEST(BeamSearch, TreeShapeMatchesTheorem) {
  // After d steps with width w, the candidate tree has 1 + w*d nodes and
  // depth <= d (§4.3 Step 1).
  Models m;
  const std::vector<Token> ctx = {1, 2, 3};
  for (int d : {1, 2, 4}) {
    for (int w : {1, 2, 4}) {
      const TokenTree tree =
          BuildCandidateTree(m.draft, 7, ctx, BeamConfig{.depth = d, .width = w});
      EXPECT_EQ(tree.size(), 1 + w * d) << "d=" << d << " w=" << w;
      EXPECT_LE(tree.MaxDepth(), d);
    }
  }
}

TEST(BeamSearch, EachLayerHasWidthNodes) {
  Models m;
  const std::vector<Token> ctx = {5};
  const TokenTree tree = BuildCandidateTree(m.draft, 3, ctx, BeamConfig{.depth = 3, .width = 2});
  std::map<int, int> per_depth;
  for (NodeId id = 1; id < tree.size(); ++id) {
    ++per_depth[tree.node(id).depth];
  }
  int total = 0;
  for (const auto& [depth, count] : per_depth) {
    EXPECT_LE(count, 2);
    total += count;
  }
  EXPECT_EQ(total, 6);
}

TEST(BeamSearch, RootAnchorsOnLastCommittedToken) {
  Models m;
  const std::vector<Token> ctx = {1, 2, 99};
  const TokenTree tree = BuildCandidateTree(m.draft, 7, ctx, BeamConfig{.depth = 1, .width = 1});
  EXPECT_EQ(tree.node(kRootNode).token, 99);
}

TEST(BeamSearch, EmptyContextUsesSentinelRoot) {
  Models m;
  const TokenTree tree = BuildCandidateTree(m.draft, 7, {}, BeamConfig{.depth = 1, .width = 1});
  EXPECT_EQ(tree.node(kRootNode).token, kInvalidToken);
}

TEST(BeamSearch, Deterministic) {
  Models m;
  const std::vector<Token> ctx = {4, 5};
  const BeamConfig beam{.depth = 3, .width = 3};
  const TokenTree a = BuildCandidateTree(m.draft, 9, ctx, beam);
  const TokenTree b = BuildCandidateTree(m.draft, 9, ctx, beam);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.node(id).token, b.node(id).token);
    EXPECT_EQ(a.node(id).path_prob, b.node(id).path_prob);
  }
}

TEST(BeamSearch, WidthOneIsGreedyChain) {
  Models m;
  const std::vector<Token> ctx = {8};
  const TokenTree beam = BuildCandidateTree(m.draft, 2, ctx, BeamConfig{.depth = 4, .width = 1});
  const TokenTree chain = BuildChainTree(m.draft, 2, ctx, 4);
  ASSERT_EQ(beam.size(), chain.size());
  for (NodeId id = 1; id < beam.size(); ++id) {
    EXPECT_EQ(beam.node(id).token, chain.node(id).token);
  }
}

TEST(BeamSearch, KeptNodesDominateDiscardedSiblings) {
  // Every node kept at a step has path probability >= any extension of the
  // same step that was discarded. We verify a weaker but checkable form:
  // within a layer, kept nodes are the top-w extensions of the previous
  // frontier, so the minimum kept path prob at depth k is >= the prob of
  // any *other* child of the frontier. Checked by re-expanding manually.
  Models m;
  const std::vector<Token> ctx = {3, 1};
  const int w = 2;
  const TokenTree tree = BuildCandidateTree(m.draft, 5, ctx, BeamConfig{.depth = 2, .width = w});
  // Depth-1 kept nodes:
  std::vector<double> kept_probs;
  for (NodeId id = 1; id < tree.size(); ++id) {
    if (tree.node(id).depth == 1) {
      kept_probs.push_back(tree.node(id).path_prob);
    }
  }
  ASSERT_EQ(kept_probs.size(), static_cast<size_t>(w));
  const double min_kept = std::min(kept_probs[0], kept_probs[1]);
  // All root children in the draft distribution not kept must be <= min_kept.
  const SparseDist dist = m.draft.NextDist(5, ctx);
  int above = 0;
  for (const auto& e : dist.entries()) {
    if (e.prob > min_kept + 1e-12) {
      ++above;
    }
  }
  EXPECT_LE(above, w);
}

TEST(ChainTree, GreedyChainFollowsDraftArgmax) {
  Models m;
  std::vector<Token> ctx = {6, 7};
  const TokenTree chain = BuildChainTree(m.draft, 4, ctx, 3);
  ASSERT_EQ(chain.size(), 4);
  NodeId cur = kRootNode;
  for (int i = 0; i < 3; ++i) {
    const SparseDist dist = m.draft.NextDist(4, ctx);
    ASSERT_EQ(chain.node(cur).children.size(), 1u);
    cur = chain.node(cur).children[0];
    EXPECT_EQ(chain.node(cur).token, dist.ArgMax());
    ctx.push_back(dist.ArgMax());
  }
}

TEST(ChainTree, CondProbsMatchDraft) {
  Models m;
  const std::vector<Token> ctx = {6, 7};
  const TokenTree chain = BuildChainTree(m.draft, 4, ctx, 1);
  const SparseDist dist = m.draft.NextDist(4, ctx);
  EXPECT_NEAR(chain.node(1).cond_prob, dist.ProbOf(dist.ArgMax()), 1e-12);
}

// Theorem 4.1 (spot check): the depth-D optimal tree is contained in a
// depth-D beam with sufficiently large width. We check that the w best
// depth-1 nodes of a wide beam all appear in any wider beam.
class BeamNestingSweep : public ::testing::TestWithParam<int> {};

TEST_P(BeamNestingSweep, NarrowBeamNodesAppearInWiderBeam) {
  Models m;
  const std::vector<Token> ctx = {static_cast<Token>(GetParam())};
  const TokenTree narrow =
      BuildCandidateTree(m.draft, 1, ctx, BeamConfig{.depth = 2, .width = 2});
  const TokenTree wide = BuildCandidateTree(m.draft, 1, ctx, BeamConfig{.depth = 2, .width = 5});
  // Every (depth, token-path) in narrow must exist in wide.
  for (NodeId id = 1; id < narrow.size(); ++id) {
    const std::vector<Token> path = narrow.PathTokens(id);
    bool found = false;
    for (NodeId wid = 1; wid < wide.size(); ++wid) {
      if (wide.PathTokens(wid) == path) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "narrow-beam path missing from wide beam";
  }
}

INSTANTIATE_TEST_SUITE_P(Contexts, BeamNestingSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace adaserve
