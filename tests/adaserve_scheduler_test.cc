#include "src/core/adaserve_scheduler.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace adaserve {
namespace {

class AdaServeSchedulerTest : public ::testing::Test {
 protected:
  AdaServeSchedulerTest() : exp_(TestSetup()) {}
  Experiment exp_;
};

TEST_F(AdaServeSchedulerTest, DrainsMixedWorkload) {
  AdaServeScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.finished, static_cast<int>(workload.size()));
  EXPECT_GT(result.metrics.mean_accepted, 0.0);
}

TEST_F(AdaServeSchedulerTest, VerifiedTokensNeverExceedBudget) {
  AdaServeScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_, /*duration=*/10.0, /*rps=*/4.0);
  const int budget = 64;
  // Boundary mode: the drain step co-batches prefill chunks inside the
  // same budget, so the bound covers roots + speculation + prefill.
  const EngineResult result = exp_.Run(scheduler, workload, BoundaryTickConfig(), budget);
  for (const IterationRecord& rec : result.iterations) {
    // Budget covers roots + speculated tokens + co-batched prefill chunks;
    // dedicated prefill passes (verified_tokens == 0) may exceed it.
    if (rec.verified_tokens > 0) {
      EXPECT_LE(rec.decode_requests + rec.verified_tokens + rec.prefill_tokens,
                std::max(budget, rec.decode_requests + rec.prefill_tokens))
          << "speculation overflowed the budget";
    }
  }
}

TEST_F(AdaServeSchedulerTest, TickNativeDecodePhaseRespectsBudget) {
  // In the tick-native default the prefill phase is budgeted separately
  // (leftover budget with a kBurst floor), but the decode phase's
  // speculation — roots plus verified tokens — must still fit B.
  AdaServeScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_, /*duration=*/10.0, /*rps=*/4.0);
  const int budget = 64;
  const EngineResult result = exp_.Run(scheduler, workload, {}, budget);
  for (const IterationRecord& rec : result.iterations) {
    if (rec.verified_tokens > 0) {
      EXPECT_LE(rec.decode_requests + rec.verified_tokens, budget)
          << "tick-native speculation overflowed the budget";
    }
  }
}

TEST_F(AdaServeSchedulerTest, BreakdownFieldsPopulated) {
  AdaServeScheduler scheduler;
  const std::vector<Request> workload = UniformWorkload(exp_, 4, kCatChat, 0.0);
  const EngineResult result = exp_.Run(scheduler, workload);
  bool saw_decode_iteration = false;
  for (const IterationRecord& rec : result.iterations) {
    if (rec.verified_tokens > 0) {
      saw_decode_iteration = true;
      EXPECT_GT(rec.spec_time, 0.0);
      EXPECT_GT(rec.select_time, 0.0);
      EXPECT_GT(rec.verify_time, 0.0);
      EXPECT_NEAR(rec.duration, rec.spec_time + rec.select_time + rec.verify_time, 1e-9);
    }
  }
  EXPECT_TRUE(saw_decode_iteration);
}

TEST_F(AdaServeSchedulerTest, SelectionOverheadIsTinyFraction) {
  // Fig. 15: CPU scheduling is a fraction of a percent of iteration time.
  AdaServeScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_LT(result.metrics.select_time, 0.02 * result.metrics.total_time);
}

TEST_F(AdaServeSchedulerTest, AdaptiveBeamShrinksWithBatchSize) {
  // Few requests => deep/wide speculation; many => shallow/narrow.
  AdaServeScheduler few;
  AdaServeScheduler many;
  const std::vector<Request> small = UniformWorkload(exp_, 2, kCatChat, 0.0);
  const EngineResult r_small = exp_.Run(few, small);
  const std::vector<Request> large = UniformWorkload(exp_, 48, kCatChat, 0.0);
  const EngineResult r_large = exp_.Run(many, large);
  EXPECT_GE(few.last_beam().depth, many.last_beam().depth);
  // More speculation per request when unloaded => more accepted tokens.
  EXPECT_GT(r_small.metrics.mean_accepted, r_large.metrics.mean_accepted);
}

TEST_F(AdaServeSchedulerTest, FixedBeamHonoursConfig) {
  AdaServeConfig config;
  config.adaptive_control = false;
  config.fixed_beam = {.depth = 2, .width = 3};
  AdaServeScheduler scheduler(config);
  const std::vector<Request> workload = UniformWorkload(exp_, 4, kCatChat, 0.0);
  exp_.Run(scheduler, workload);
  EXPECT_EQ(scheduler.last_beam().depth, 2);
  EXPECT_EQ(scheduler.last_beam().width, 3);
}

TEST_F(AdaServeSchedulerTest, AcceptedBoundedByDepth) {
  AdaServeConfig config;
  config.adaptive_control = false;
  config.fixed_beam = {.depth = 3, .width = 2};
  AdaServeScheduler scheduler(config);
  const std::vector<Request> workload = UniformWorkload(exp_, 4, kCatChat, 0.0);
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_LE(result.metrics.mean_accepted, 3.0);
}

TEST_F(AdaServeSchedulerTest, SloPhaseImprovesTightSloCategory) {
  // Under pressure, the full pipeline should hold Cat-1 attainment at or
  // above the throughput-only variant's.
  const std::vector<Request> workload =
      exp_.RealTraceWorkload(/*duration=*/15.0, /*rps=*/4.5, WorkloadConfig{.mix = {0.7, 0.15, 0.15}});
  AdaServeConfig with_slo;
  with_slo.slo_phase_enabled = true;
  AdaServeConfig without_slo;
  without_slo.slo_phase_enabled = false;
  AdaServeScheduler a(with_slo);
  AdaServeScheduler b(without_slo);
  const EngineResult ra = exp_.Run(a, workload);
  const EngineResult rb = exp_.Run(b, workload);
  EXPECT_GE(ra.metrics.per_category[kCatCoding].AttainmentPct() + 1e-9,
            rb.metrics.per_category[kCatCoding].AttainmentPct());
}

TEST_F(AdaServeSchedulerTest, PrefillOnlyWorkloadCompletes) {
  // Requests whose decode is trivially short: exercises the prefill path.
  const std::vector<Request> workload =
      UniformWorkload(exp_, 6, kCatSummarization, 0.1, /*prompt_len=*/700, /*output_len=*/2);
  AdaServeScheduler scheduler;
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.finished, 6);
  EXPECT_GT(result.metrics.prefill_time, 0.0);
}

TEST_F(AdaServeSchedulerTest, SpeculationBookkeepingConsistent) {
  AdaServeScheduler scheduler;
  const std::vector<Request> workload = UniformWorkload(exp_, 4, kCatChat, 0.0);
  Engine engine(&exp_.target(), &exp_.draft(), &exp_.target_latency(), &exp_.draft_latency());
  const EngineResult result = exp_.Run(scheduler, workload);
  long committed = 0;
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_GE(rec.verified_tokens, 0);
    EXPECT_GE(rec.committed_tokens, 0);
    committed += rec.committed_tokens;
  }
  EXPECT_EQ(committed, result.metrics.output_tokens());
}

TEST_F(AdaServeSchedulerTest, NmaxOneStillDrains) {
  AdaServeConfig config;
  config.selection.n_max = 1;
  AdaServeScheduler scheduler(config);
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.finished, static_cast<int>(workload.size()));
}

TEST_F(AdaServeSchedulerTest, ZeroFidelityDraftStillLossless) {
  // A useless draft degrades speed, never correctness or completion.
  auto setup = TestSetup();
  setup.draft_config.fidelity = 0.0;
  Experiment exp(setup);
  AdaServeScheduler scheduler;
  const std::vector<Request> workload = UniformWorkload(exp, 4, kCatChat, 0.0);
  const EngineResult result = exp.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.finished, 4);
  EXPECT_LT(result.metrics.mean_accepted, 0.5);
}

}  // namespace
}  // namespace adaserve
