// Parallel ≡ serial equivalence proof for the sweep execution engine —
// the parallel analogue of tick_equivalence_test.
//
// Runs a smoke-sized Fig. 8-style sweep (systems × RPS grid) serially
// (threads=1, the exact historical path) and in parallel (threads=4) and
// asserts byte-identical GoldenMetricsText per cell: fanning cells out
// over the ThreadPool must not change a single metric byte, because each
// cell rebuilds its full simulator state from deterministic seeds. Also
// pins the per-cell Experiment reconstruction against the old
// shared-Experiment serial helper, and RunComparison's parallel path
// against its serial path.
#include <gtest/gtest.h>

#include <stdexcept>

#include "bench/sweep_common.h"
#include "tests/test_util.h"

namespace adaserve {
namespace {

// Smoke-sized Fig. 8 shape: short real-shaped trace, peak mix, both ends
// of the load range.
constexpr double kDuration = 6.0;

std::vector<double> SmokeRpsGrid() { return {2.5, 3.5}; }

std::vector<SweepCellResult> RunSmokeSweep(int threads) {
  SweepRunner runner(threads);
  return RunSetupSweep(runner, GoldenSetup(), MainComparisonSet(), SmokeRpsGrid(),
                       [](const Experiment& exp, double rps) {
                         return exp.RealTraceWorkload(kDuration, rps, PeakMix());
                       });
}

TEST(SweepParallelEquivalence, Threads4ByteIdenticalToThreads1PerCell) {
  const std::vector<SweepCellResult> serial = RunSmokeSweep(1);
  const std::vector<SweepCellResult> parallel = RunSmokeSweep(4);

  ASSERT_EQ(serial.size(), MainComparisonSet().size() * SmokeRpsGrid().size());
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    // Grid order is deterministic: same cell at the same index.
    ASSERT_EQ(serial[i].system, parallel[i].system);
    ASSERT_EQ(serial[i].x, parallel[i].x);
    // The byte-identity proof, in the same canonical representation the
    // golden baselines pin.
    EXPECT_EQ(GoldenMetricsText(serial[i].system, serial[i].result.metrics),
              GoldenMetricsText(parallel[i].system, parallel[i].result.metrics))
        << "cell " << SystemName(serial[i].system) << " @ x=" << serial[i].x;
    EXPECT_EQ(serial[i].result.total_iterations, parallel[i].result.total_iterations);
    EXPECT_EQ(serial[i].result.end_time, parallel[i].result.end_time);
  }
}

TEST(SweepParallelEquivalence, WallClockIsRecordedPerCellAndInTotal) {
  SweepRunner runner(4);
  const std::vector<SweepCellResult> cells =
      RunSetupSweep(runner, GoldenSetup(), MainComparisonSet(), {3.0},
                    [](const Experiment& exp, double rps) {
                      return exp.RealTraceWorkload(kDuration, rps, PeakMix());
                    });
  EXPECT_EQ(runner.threads(), 4);
  double cell_sum = 0.0;
  for (const SweepCellResult& cell : cells) {
    EXPECT_GT(cell.wall_clock_s, 0.0);
    cell_sum += cell.wall_clock_s;
  }
  // The total covers the whole fan-out; with any contention it can exceed
  // the longest cell but never a per-cell sum of zero.
  EXPECT_GT(runner.total_wall_clock_s(), 0.0);
  EXPECT_GT(cell_sum, 0.0);
}

// The per-cell Experiment/workload reconstruction must reproduce the old
// shared-Experiment serial helper byte for byte (same setup, same seeds
// => same workload => same run).
TEST(SweepParallelEquivalence, PerCellReconstructionMatchesSharedExperimentReference) {
  const double rps = 3.0;
  const Experiment shared(GoldenSetup());
  const std::vector<Request> workload = shared.RealTraceWorkload(kDuration, rps, PeakMix());
  const std::vector<SweepPoint> reference =
      RunAllSystems(shared, workload, rps, MainComparisonSet());

  SweepRunner runner(4);
  const std::vector<SweepCellResult> cells =
      RunSetupSweep(runner, GoldenSetup(), MainComparisonSet(), {rps},
                    [](const Experiment& exp, double x) {
                      return exp.RealTraceWorkload(kDuration, x, PeakMix());
                    });

  ASSERT_EQ(reference.size(), cells.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(reference[i].system, cells[i].system);
    EXPECT_EQ(GoldenMetricsText(reference[i].system, reference[i].metrics),
              GoldenMetricsText(cells[i].system, cells[i].result.metrics));
  }
}

TEST(SweepParallelEquivalence, RunComparisonParallelMatchesSerial) {
  const Experiment exp(GoldenSetup());
  const GoldenConfig config;
  const StreamFactory make_stream = [&exp, &config] {
    return MakeGoldenStream(exp, GoldenScenario::kBursty, config);
  };
  EngineConfig engine;
  engine.sampling_seed = config.sampling_seed;
  engine.retire_finished = true;

  const std::vector<ComparisonPoint> serial =
      RunComparison(exp, MainComparisonSet(), make_stream, engine, /*threads=*/1);
  const std::vector<ComparisonPoint> parallel =
      RunComparison(exp, MainComparisonSet(), make_stream, engine, /*threads=*/4);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].kind, parallel[i].kind);
    EXPECT_EQ(GoldenMetricsText(serial[i].kind, serial[i].result.metrics),
              GoldenMetricsText(parallel[i].kind, parallel[i].result.metrics));
    EXPECT_GT(parallel[i].wall_clock_s, 0.0);
  }
}

// --- per-seed sharding ---

// Shared shapes for the seed-shard tests: a couple of systems (keeping
// the grid small — sharding multiplies cells), two x points, and the
// workload keyed on the shard's trace seed.
std::vector<SystemKind> ShardSystems() {
  return {SystemKind::kVllm, SystemKind::kAdaServe};
}

std::vector<Request> ShardWorkload(const Experiment& exp, double rps, uint64_t seed) {
  return exp.RealTraceWorkload(kDuration, rps, PeakMix(), seed);
}

// shards=1 ≡ serial: a single-seed sharded sweep must reproduce the
// unsharded RunSetupSweep cells byte for byte.
TEST(SeedShardEquivalence, SingleSeedMatchesUnshardedSweep) {
  const uint64_t seed = 42;
  const std::vector<double> xs = {2.5, 3.5};

  SweepRunner unsharded_runner(1);
  const std::vector<SweepCellResult> unsharded =
      RunSetupSweep(unsharded_runner, GoldenSetup(), ShardSystems(), xs,
                    [seed](const Experiment& exp, double rps) {
                      return ShardWorkload(exp, rps, seed);
                    });

  SweepRunner sharded_runner(1);
  const std::vector<SeedShardCell> sharded = RunSeedShardedSweep(
      sharded_runner, GoldenSetup(), ShardSystems(), xs, {seed}, ShardWorkload);

  ASSERT_EQ(sharded.size(), unsharded.size());
  for (size_t i = 0; i < sharded.size(); ++i) {
    ASSERT_EQ(sharded[i].system, unsharded[i].system);
    ASSERT_EQ(sharded[i].x, unsharded[i].x);
    ASSERT_EQ(sharded[i].per_seed.size(), 1u);
    EXPECT_EQ(GoldenMetricsText(sharded[i].system, sharded[i].per_seed[0]),
              GoldenMetricsText(unsharded[i].system, unsharded[i].result.metrics));
    // A lone shard's aggregate is that shard, exactly.
    EXPECT_EQ(sharded[i].goodput_tps.mean(), unsharded[i].result.metrics.GoodputTps());
    EXPECT_EQ(sharded[i].goodput_tps.Stddev(), 0.0);
  }
}

// Seed shards are deterministic and aggregation order is pinned to seed
// order, so any thread count yields identical shards AND identical
// aggregate floats (mean and the order-sensitive stddev alike).
TEST(SeedShardEquivalence, Threads4IdenticalToThreads1PerShardAndAggregate) {
  const std::vector<uint64_t> seeds = {7, 11, 13};
  const std::vector<double> xs = {3.0};

  SweepRunner serial_runner(1);
  const std::vector<SeedShardCell> serial = RunSeedShardedSweep(
      serial_runner, GoldenSetup(), ShardSystems(), xs, seeds, ShardWorkload);
  SweepRunner parallel_runner(4);
  const std::vector<SeedShardCell> parallel = RunSeedShardedSweep(
      parallel_runner, GoldenSetup(), ShardSystems(), xs, seeds, ShardWorkload);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].per_seed.size(), seeds.size());
    ASSERT_EQ(parallel[i].per_seed.size(), seeds.size());
    for (size_t s = 0; s < seeds.size(); ++s) {
      EXPECT_EQ(GoldenMetricsText(serial[i].system, serial[i].per_seed[s]),
                GoldenMetricsText(parallel[i].system, parallel[i].per_seed[s]))
          << "shard seed " << seeds[s];
    }
    EXPECT_EQ(serial[i].goodput_tps.mean(), parallel[i].goodput_tps.mean());
    EXPECT_EQ(serial[i].goodput_tps.Stddev(), parallel[i].goodput_tps.Stddev());
    EXPECT_EQ(serial[i].attainment_pct.mean(), parallel[i].attainment_pct.mean());
    EXPECT_EQ(serial[i].attainment_pct.Stddev(), parallel[i].attainment_pct.Stddev());
    EXPECT_EQ(serial[i].throughput_tps.mean(), parallel[i].throughput_tps.mean());
    EXPECT_EQ(serial[i].throughput_tps.Stddev(), parallel[i].throughput_tps.Stddev());
    // The Bessel-corrected error bars the benches report are equally
    // order-pinned.
    EXPECT_EQ(serial[i].GoodputErrTps(), parallel[i].GoodputErrTps());
    EXPECT_EQ(serial[i].AttainmentErrPct(), parallel[i].AttainmentErrPct());
    EXPECT_EQ(serial[i].ThroughputErrTps(), parallel[i].ThroughputErrTps());
  }
}

// Different trace seeds produce genuinely different realisations — the
// variance the sharding exists to measure is not silently zero.
TEST(SeedShardEquivalence, DistinctSeedsProduceVariance) {
  SweepRunner runner(4);
  const std::vector<SeedShardCell> cells = RunSeedShardedSweep(
      runner, GoldenSetup(), {SystemKind::kVllm}, {3.0}, {1, 2, 3, 4}, ShardWorkload);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].per_seed.size(), 4u);
  EXPECT_EQ(cells[0].goodput_tps.count(), 4u);
  EXPECT_GT(cells[0].goodput_tps.Stddev(), 0.0);
  // Error bars use the sample stddev, which is strictly wider than the
  // population stddev for a finite seed sample.
  EXPECT_GT(cells[0].GoodputErrTps(), cells[0].goodput_tps.Stddev());
  EXPECT_GT(cells[0].wall_clock_s, 0.0);
}

// A cell that throws fails the sweep in the caller, not a worker thread.
TEST(SweepParallelEquivalence, CellExceptionReachesTheCaller) {
  SweepRunner runner(4);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i]() -> int {
      if (i == 3) {
        throw std::runtime_error("cell 3 failed");
      }
      return i;
    });
  }
  EXPECT_THROW(runner.Map(tasks), std::runtime_error);
}

}  // namespace
}  // namespace adaserve
