#include "src/spec/token_tree.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace adaserve {
namespace {

TEST(TokenTree, RootOnlyConstruction) {
  const TokenTree tree(42);
  EXPECT_EQ(tree.size(), 1);
  EXPECT_EQ(tree.node(kRootNode).token, 42);
  EXPECT_EQ(tree.node(kRootNode).path_prob, 1.0);
  EXPECT_EQ(tree.MaxDepth(), 0);
}

TEST(TokenTree, PathProbIsProductOfConditionals) {
  TokenTree tree(0);
  const NodeId a = tree.AddNode(kRootNode, 1, 0.5);
  const NodeId b = tree.AddNode(a, 2, 0.4);
  EXPECT_DOUBLE_EQ(tree.node(a).path_prob, 0.5);
  EXPECT_DOUBLE_EQ(tree.node(b).path_prob, 0.2);
  EXPECT_EQ(tree.node(b).depth, 2);
}

TEST(TokenTree, ChildrenRecorded) {
  TokenTree tree(0);
  const NodeId a = tree.AddNode(kRootNode, 1, 0.5);
  const NodeId b = tree.AddNode(kRootNode, 2, 0.3);
  ASSERT_EQ(tree.node(kRootNode).children.size(), 2u);
  EXPECT_EQ(tree.node(kRootNode).children[0], a);
  EXPECT_EQ(tree.node(kRootNode).children[1], b);
}

TEST(TokenTree, PathTokensExcludesRoot) {
  TokenTree tree(9);
  const NodeId a = tree.AddNode(kRootNode, 1, 0.5);
  const NodeId b = tree.AddNode(a, 2, 0.5);
  const std::vector<Token> path = tree.PathTokens(b);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 1);
  EXPECT_EQ(path[1], 2);
  EXPECT_TRUE(tree.PathTokens(kRootNode).empty());
}

TEST(TokenTree, SumPathProbSkipsRoot) {
  TokenTree tree(0);
  const NodeId a = tree.AddNode(kRootNode, 1, 0.5);
  const NodeId b = tree.AddNode(a, 2, 0.4);
  EXPECT_DOUBLE_EQ(tree.SumPathProb({kRootNode, a, b}), 0.7);
}

TEST(TokenTree, NodesByPathProbDescending) {
  TokenTree tree(0);
  tree.AddNode(kRootNode, 1, 0.3);
  const NodeId b = tree.AddNode(kRootNode, 2, 0.6);
  tree.AddNode(b, 3, 0.5);  // path prob 0.3
  const std::vector<NodeId> order = tree.NodesByPathProb();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], b);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(tree.node(order[i - 1]).path_prob, tree.node(order[i]).path_prob);
  }
}

TEST(TokenTree, ConnectedSelectionDetection) {
  TokenTree tree(0);
  const NodeId a = tree.AddNode(kRootNode, 1, 0.5);
  const NodeId b = tree.AddNode(a, 2, 0.5);
  std::vector<char> selected(3, 0);
  selected[kRootNode] = 1;
  selected[static_cast<size_t>(b)] = 1;  // child without its parent
  EXPECT_FALSE(tree.IsConnectedSelection(selected));
  selected[static_cast<size_t>(a)] = 1;
  EXPECT_TRUE(tree.IsConnectedSelection(selected));
}

TEST(TokenTree, EmptySelectionOfRootIsConnected) {
  TokenTree tree(0);
  tree.AddNode(kRootNode, 1, 0.5);
  std::vector<char> selected(2, 0);
  selected[kRootNode] = 1;
  EXPECT_TRUE(tree.IsConnectedSelection(selected));
}

// Appendix B property: any prefix of the descending-path-probability order
// is a connected subtree, for random trees.
class ConnectivityPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConnectivityPropertySweep, GreedyPrefixAlwaysConnected) {
  Rng rng(GetParam());
  TokenTree tree(0);
  // Grow a random tree of 60 nodes with random conditionals.
  for (int i = 0; i < 60; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.UniformInt(static_cast<uint64_t>(tree.size())));
    tree.AddNode(parent, static_cast<Token>(i), 0.05 + 0.9 * rng.Uniform());
  }
  const std::vector<NodeId> order = tree.NodesByPathProb();
  std::vector<char> selected(static_cast<size_t>(tree.size()), 0);
  selected[kRootNode] = 1;
  for (NodeId id : order) {
    selected[static_cast<size_t>(id)] = 1;
    EXPECT_TRUE(tree.IsConnectedSelection(selected))
        << "prefix ending at node " << id << " disconnected (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConnectivityPropertySweep, ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace adaserve
