#include "src/serve/metrics.h"

#include <gtest/gtest.h>

namespace adaserve {
namespace {

Request FinishedRequest(RequestId id, int category, double tpot_slo, double avg_tpot,
                        int output_len = 10) {
  Request req;
  req.id = id;
  req.category = category;
  req.tpot_slo = tpot_slo;
  req.state = RequestState::kFinished;
  req.output.assign(static_cast<size_t>(output_len), 1);
  req.committed_len = output_len;
  req.first_token_time = 1.0;
  req.finish_time = 1.0 + avg_tpot * (output_len - 1);
  return req;
}

TEST(Metrics, AttainmentSplitsByCategory) {
  std::vector<Request> requests = {
      FinishedRequest(0, 0, 0.030, 0.020),  // attained
      FinishedRequest(1, 0, 0.030, 0.040),  // violated
      FinishedRequest(2, 1, 0.050, 0.045),  // attained
  };
  const Metrics m = ComputeMetrics(requests, {}, /*makespan=*/10.0);
  EXPECT_EQ(m.finished, 3);
  EXPECT_EQ(m.attained, 2);
  EXPECT_NEAR(m.AttainmentPct(), 200.0 / 3.0, 1e-9);
  EXPECT_EQ(m.per_category[0].finished, 2);
  EXPECT_EQ(m.per_category[0].attained, 1);
  EXPECT_EQ(m.per_category[1].attained, 1);
  EXPECT_EQ(m.per_category[2].finished, 0);
}

TEST(Metrics, GoodputCountsOnlyAttainedTokens) {
  std::vector<Request> requests = {
      FinishedRequest(0, 0, 0.030, 0.020, /*output_len=*/20),  // attained
      FinishedRequest(1, 0, 0.030, 0.040, /*output_len=*/50),  // violated
  };
  const Metrics m = ComputeMetrics(requests, {}, /*makespan=*/10.0);
  EXPECT_NEAR(m.GoodputTps(), 20 / 10.0, 1e-9);
  EXPECT_NEAR(m.ThroughputTps(), 70 / 10.0, 1e-9);
  EXPECT_LE(m.GoodputTps(), m.ThroughputTps());
}

TEST(Metrics, ViolationIsComplementOfAttainment) {
  std::vector<Request> requests = {FinishedRequest(0, 0, 0.030, 0.020)};
  const Metrics m = ComputeMetrics(requests, {}, 1.0);
  EXPECT_NEAR(m.AttainmentPct() + m.ViolationPct(), 100.0, 1e-9);
}

TEST(Metrics, TpotSamplesInMilliseconds) {
  std::vector<Request> requests = {FinishedRequest(0, 1, 0.050, 0.040)};
  const Metrics m = ComputeMetrics(requests, {}, 1.0);
  EXPECT_NEAR(m.per_category[1].tpot_ms.Mean(), 40.0, 1e-6);
}

TEST(Metrics, MeanAcceptedAveragesOverSpecRequests) {
  Request a = FinishedRequest(0, 0, 0.030, 0.020);
  a.verifications = 2;
  a.accepted_tokens = 6;  // mean 3
  Request b = FinishedRequest(1, 0, 0.030, 0.020);
  b.verifications = 4;
  b.accepted_tokens = 4;  // mean 1
  Request c = FinishedRequest(2, 0, 0.030, 0.020);  // no speculation
  const std::vector<Request> requests = {a, b, c};
  const Metrics m = ComputeMetrics(requests, {}, 1.0);
  EXPECT_NEAR(m.mean_accepted, 2.0, 1e-9);
}

TEST(Metrics, BreakdownSumsIterations) {
  IterationRecord r1;
  r1.duration = 0.05;
  r1.spec_time = 0.01;
  r1.verify_time = 0.03;
  r1.select_time = 0.001;
  IterationRecord r2;
  r2.duration = 0.02;
  r2.prefill_time = 0.02;
  const std::vector<IterationRecord> iterations = {r1, r2};
  const std::vector<Request> requests = {FinishedRequest(0, 0, 0.030, 0.020)};
  const Metrics m = ComputeMetrics(requests, iterations, 1.0);
  EXPECT_NEAR(m.spec_time, 0.01, 1e-12);
  EXPECT_NEAR(m.verify_time, 0.03, 1e-12);
  EXPECT_NEAR(m.select_time, 0.001, 1e-12);
  EXPECT_NEAR(m.prefill_time, 0.02, 1e-12);
  EXPECT_NEAR(m.total_time, 0.07, 1e-12);
}

TEST(Metrics, EmptyRunIsAllZeroes) {
  const Metrics m = ComputeMetrics(std::span<const Request>{}, {}, 0.0);
  EXPECT_EQ(m.finished, 0);
  EXPECT_EQ(m.GoodputTps(), 0.0);
  EXPECT_EQ(m.AttainmentPct(), 100.0);
}

TEST(Metrics, BoundaryTpotCountsAsAttained) {
  // Exactly at the SLO: attained (within the epsilon tolerance).
  std::vector<Request> requests = {FinishedRequest(0, 1, 0.050, 0.050)};
  const Metrics m = ComputeMetrics(requests, {}, 1.0);
  EXPECT_EQ(m.attained, 1);
}

}  // namespace
}  // namespace adaserve
