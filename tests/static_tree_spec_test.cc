#include "src/baselines/static_tree_spec.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace adaserve {
namespace {

class StaticTreeTest : public ::testing::Test {
 protected:
  StaticTreeTest() : exp_(TestSetup()) {}
  Experiment exp_;
};

TEST_F(StaticTreeTest, TreeShapeFollowsBranching) {
  const std::vector<Token> ctx = {1, 2, 3};
  // (3, 2): 3 depth-1 nodes + 6 depth-2 nodes + root = 10.
  const TokenTree tree = BuildStaticTree(exp_.draft(), 5, ctx, {3, 2});
  EXPECT_EQ(tree.size(), 10);
  EXPECT_EQ(tree.MaxDepth(), 2);
  EXPECT_EQ(tree.node(kRootNode).children.size(), 3u);
  for (NodeId child : tree.node(kRootNode).children) {
    EXPECT_EQ(tree.node(child).children.size(), 2u);
  }
}

TEST_F(StaticTreeTest, LevelOneTakesTopDraftTokens) {
  const std::vector<Token> ctx = {4, 5};
  const TokenTree tree = BuildStaticTree(exp_.draft(), 2, ctx, {2});
  const SparseDist dist = exp_.draft().NextDist(2, ctx);
  ASSERT_EQ(tree.node(kRootNode).children.size(), 2u);
  EXPECT_EQ(tree.node(tree.node(kRootNode).children[0]).token, dist.entry(0).token);
  EXPECT_EQ(tree.node(tree.node(kRootNode).children[1]).token, dist.entry(1).token);
}

TEST_F(StaticTreeTest, SchedulerNameEncodesShape) {
  StaticTreeSpecScheduler scheduler(StaticTreeConfig{.branching = {4, 2, 1}});
  EXPECT_EQ(scheduler.name(), "StaticTree(4x2x1)");
}

TEST_F(StaticTreeTest, DrainsWorkloadAndAcceptsTokens) {
  StaticTreeSpecScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.finished, static_cast<int>(workload.size()));
  EXPECT_GT(result.metrics.mean_accepted, 0.0);
}

TEST_F(StaticTreeTest, GreedyOutputsMatchPlainDecoding) {
  // Losslessness extends to the static-tree scheduler.
  const std::vector<Request> workload = UniformWorkload(exp_, 3, kCatChat, 0.0);
  EngineConfig config;
  config.mode = DecodeMode::kGreedy;
  StaticTreeSpecScheduler tree_scheduler;
  VllmScheduler cb_scheduler;
  const EngineResult a = exp_.Run(tree_scheduler, workload, config);
  const EngineResult b = exp_.Run(cb_scheduler, workload, config);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].output, b.requests[i].output);
  }
}

TEST_F(StaticTreeTest, WiderTreeAcceptsMoreThanChainOfSameDepth) {
  // A (3,2) tree explores siblings a 1x1 chain misses: acceptance per
  // verification must be at least as high on the same workload.
  const std::vector<Request> workload = UniformWorkload(exp_, 4, kCatChat, 0.0);
  StaticTreeSpecScheduler wide(StaticTreeConfig{.branching = {3, 2}});
  StaticTreeSpecScheduler chain(StaticTreeConfig{.branching = {1, 1}});
  const EngineResult w = exp_.Run(wide, workload);
  const EngineResult c = exp_.Run(chain, workload);
  EXPECT_GE(w.metrics.mean_accepted + 1e-9, c.metrics.mean_accepted);
}

}  // namespace
}  // namespace adaserve
