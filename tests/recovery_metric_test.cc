// Pins RecoveryTimeToSlo's handling of requests that never finish.
//
// The metric used to inspect only kFinished requests, so a flash crowd
// severe enough that its violating backlog *never finishes* (evicted, or
// still queued/paused at run end) reported full recovery — the worst
// possible outcome scored as the best. Unfinished SLO-relevant requests
// now count as unrecovered through the whole run (clamped to the
// makespan).
#include <gtest/gtest.h>

#include <vector>

#include "src/workload/scenarios.h"
#include "tests/test_util.h"

namespace adaserve {
namespace {

Request FinishedRequest(RequestId id, bool attained, SimTime finish_time) {
  Request req;
  req.id = id;
  req.category = kCatChat;
  req.tpot_slo = 0.05;
  req.prompt_len = 16;
  req.target_output_len = 2;
  req.state = RequestState::kFinished;
  req.first_token_time = finish_time - (attained ? 0.01 : 1.0);
  req.committed_len = 2;
  req.finish_time = finish_time;
  return req;
}

Request UnfinishedRequest(RequestId id, RequestState state) {
  Request req;
  req.id = id;
  req.category = kCatChat;
  req.tpot_slo = 0.05;
  req.prompt_len = 16;
  req.target_output_len = 2;
  req.state = state;
  return req;
}

TEST(RecoveryTimeToSlo, CleanRunScoresZero) {
  const FlashCrowdSpec spec = DefaultFlashCrowd(/*duration=*/60.0, /*trace_seed=*/1);
  const std::vector<Request> requests = {FinishedRequest(0, /*attained=*/true, 10.0),
                                         FinishedRequest(1, /*attained=*/true, 50.0)};
  EXPECT_DOUBLE_EQ(RecoveryTimeToSlo(requests, spec, /*makespan=*/60.0), 0.0);
}

TEST(RecoveryTimeToSlo, LatestFinishedViolationPastOverloadEndScores) {
  const FlashCrowdSpec spec = DefaultFlashCrowd(60.0, 1);
  const std::vector<Request> requests = {
      FinishedRequest(0, true, 10.0),
      FinishedRequest(1, /*attained=*/false, spec.OverloadEnd() + 7.5)};
  EXPECT_DOUBLE_EQ(RecoveryTimeToSlo(requests, spec, 60.0), 7.5);
}

TEST(RecoveryTimeToSlo, ViolationInsideOverloadWindowScoresZero) {
  const FlashCrowdSpec spec = DefaultFlashCrowd(60.0, 1);
  const std::vector<Request> requests = {
      FinishedRequest(0, /*attained=*/false, spec.OverloadEnd() - 2.0)};
  EXPECT_DOUBLE_EQ(RecoveryTimeToSlo(requests, spec, 60.0), 0.0);
}

TEST(RecoveryTimeToSlo, UnfinishedBacklogCountsAsUnrecoveredAtMakespan) {
  // The bug this pins: every finished request recovered early, but one
  // request never finished at all — the old metric said "recovered at
  // +0.0"; the run in fact never brought its backlog back within SLO.
  const FlashCrowdSpec spec = DefaultFlashCrowd(60.0, 1);
  const double makespan = 58.0;
  const std::vector<Request> requests = {FinishedRequest(0, true, 10.0),
                                         UnfinishedRequest(1, RequestState::kQueued)};
  EXPECT_DOUBLE_EQ(RecoveryTimeToSlo(requests, spec, makespan),
                   makespan - spec.OverloadEnd());
}

TEST(RecoveryTimeToSlo, UnfinishedBacklogDominatesEarlierFinishedViolations) {
  const FlashCrowdSpec spec = DefaultFlashCrowd(60.0, 1);
  const std::vector<Request> requests = {
      FinishedRequest(0, /*attained=*/false, spec.OverloadEnd() + 1.0),
      UnfinishedRequest(1, RequestState::kPaused)};
  EXPECT_DOUBLE_EQ(RecoveryTimeToSlo(requests, spec, /*makespan=*/40.0),
                   40.0 - spec.OverloadEnd());
}

}  // namespace
}  // namespace adaserve
