// Cross-cutting property suite: invariants that must hold for every
// scheduler, workload mix, and seed.
#include <gtest/gtest.h>

#include <tuple>

#include "tests/test_util.h"

namespace adaserve {
namespace {

// (system, trace seed, tick-native continuous mode?)
using PropertyParams = std::tuple<SystemKind, uint64_t, bool>;

class ServingProperties : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(ServingProperties, InvariantsHoldEndToEnd) {
  const auto [kind, seed, continuous] = GetParam();
  Experiment exp(TestSetup());
  TraceConfig trace;
  trace.duration = 6.0;
  trace.mean_rps = 3.0;
  trace.seed = seed;
  WorkloadConfig mix;
  mix.mix = {0.5, 0.3, 0.2};
  mix.seed = seed + 1;
  std::vector<Request> workload =
      BuildWorkload(exp.Categories(), RealShapedArrivals(trace), mix);
  if (workload.empty()) {
    GTEST_SKIP() << "empty trace realisation";
  }

  auto scheduler = MakeScheduler(kind);
  KvCache kv(exp.target_latency().KvCacheBytes(), exp.target_latency().model().KvBytesPerToken());
  RequestPool pool(&kv);
  Rng rng(seed + 2);
  ServingContext ctx;
  ctx.target = &exp.target();
  ctx.draft = &exp.draft();
  ctx.target_latency = &exp.target_latency();
  ctx.draft_latency = &exp.draft_latency();
  ctx.mode = DecodeMode::kStochastic;
  ctx.verify_budget = DeriveTokenBudget(exp.target_latency());
  ctx.draft_budget = DeriveDraftBudget(exp.target_latency(), exp.draft_latency());
  ctx.rng = &rng;
  ctx.tick.max_active = 256;
  ctx.tick.continuous = continuous;
  ctx.tick.max_evictions = continuous ? 4 : 0;
  // Mirror the engine's policy resolution: the scheduler's own admission
  // priority in tick-native mode (SLO-aware for AdaServe), FIFO at the
  // boundary — so the invariants also cover ranked admission and the
  // SLO-aware eviction path.
  ctx.tick.admission_priority =
      continuous ? scheduler->AdmissionPriority() : PriorityPolicy::kFifo;

  SimTime now = 0.0;
  size_t next = 0;
  // Arrival injection shared between the driver loop and the scheduler's
  // mid-tick admission phase (continuous mode).
  auto pull_arrivals = [&](SimTime t) {
    int pulled = 0;
    while (next < workload.size() && workload[next].arrival <= t) {
      pool.AddArrival(workload[next]);
      ++next;
      ++pulled;
    }
    return pulled;
  };
  ctx.pull_arrivals = pull_arrivals;
  std::vector<IterationRecord> iterations;
  while (pool.finished_count() < workload.size()) {
    pull_arrivals(now);
    const TickResult tick = scheduler->Tick(now, pool, ctx);
    // KV accounting never exceeds capacity, mid-tick admissions included.
    ASSERT_LE(kv.used_tokens(), kv.capacity_tokens());
    if (!tick.MadeProgress()) {
      ASSERT_TRUE(pool.active().empty());
      ASSERT_TRUE(pool.queued().empty());
      ASSERT_LT(next, workload.size());
      now = workload[next].arrival;
      continue;
    }
    now += tick.record.duration;
    iterations.push_back(tick.record);
    ASSERT_LT(iterations.size(), 200000u) << "runaway simulation";
  }

  // Per-request invariants.
  for (const Request& req : pool.requests()) {
    ASSERT_EQ(req.state, RequestState::kFinished);
    // Exact output length.
    EXPECT_EQ(req.output_len(), req.target_output_len);
    // Timestamps: arrival <= first_token <= finish; token times monotone.
    EXPECT_GE(req.first_token_time, req.arrival);
    EXPECT_GE(req.finish_time, req.first_token_time);
    for (size_t i = 1; i < req.token_times.size(); ++i) {
      EXPECT_GE(req.token_times[i], req.token_times[i - 1]);
    }
    EXPECT_EQ(req.token_times.size(), req.output.size());
    // Prefill fully accounted.
    EXPECT_EQ(req.prefill_progress, req.prompt_len);
    // Speculation bookkeeping sane.
    EXPECT_GE(req.verified_tokens, req.accepted_tokens);
    EXPECT_GE(req.accepted_tokens, 0);
    // TPOT well-defined and positive.
    EXPECT_GT(req.AvgTpot(), 0.0);
    // All KV released.
    EXPECT_EQ(kv.HeldBy(req.id), 0);
  }
  EXPECT_EQ(kv.used_tokens(), 0);

  // Aggregate invariants.
  const Metrics m = ComputeMetrics(pool.requests(), iterations, now);
  EXPECT_LE(m.GoodputTps(), m.ThroughputTps() + 1e-9);
  EXPECT_LE(m.attained, m.finished);
  EXPECT_GE(m.mean_accepted, 0.0);
  long committed = 0;
  for (const IterationRecord& rec : iterations) {
    committed += rec.committed_tokens;
  }
  EXPECT_EQ(committed, m.output_tokens());
}

INSTANTIATE_TEST_SUITE_P(
    SystemsAndSeeds, ServingProperties,
    ::testing::Combine(::testing::Values(SystemKind::kAdaServe, SystemKind::kVllm,
                                         SystemKind::kSarathi, SystemKind::kVllmSpec6,
                                         SystemKind::kVllmPriority, SystemKind::kFastServe,
                                         SystemKind::kVtc),
                       ::testing::Values(1u, 2u, 3u), ::testing::Bool()),
    [](const ::testing::TestParamInfo<PropertyParams>& info) {
      std::string name(SystemName(std::get<0>(info.param)));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_continuous" : "_boundary");
    });

// --- stress-scenario properties ----------------------------------------------

class StressScenarioProperties : public ::testing::TestWithParam<StressScenario> {};

// Every scenario stream is a well-formed workload: nonempty, densely
// id'd in emission order, arrival-sorted, and re-keyed with the
// generator's stream_seed convention, with per-request fields the engine
// can serve directly.
TEST_P(StressScenarioProperties, StreamEmitsOrderedDenseWellFormedRequests) {
  const Experiment exp(TestSetup());
  auto stream = MakeStressStream(exp.Categories(), GetParam(), /*duration=*/20.0,
                                 /*trace_seed=*/42);
  ASSERT_NE(stream, nullptr);
  const std::vector<Request> reqs = Materialize(*stream);
  ASSERT_FALSE(reqs.empty());
  for (size_t i = 0; i < reqs.size(); ++i) {
    const Request& req = reqs[i];
    EXPECT_EQ(req.id, static_cast<RequestId>(i));
    if (i > 0) {
      EXPECT_GE(req.arrival, reqs[i - 1].arrival);
    }
    EXPECT_GE(req.arrival, 0.0);
    EXPECT_GE(req.category, 0);
    EXPECT_LT(req.category, kNumCategories);
    EXPECT_GE(req.prompt_len, 1);
    EXPECT_GE(req.target_output_len, 2);
    EXPECT_GT(req.tpot_slo, 0.0);
    EXPECT_EQ(req.stream_seed,
              HashCombine(Mix64(0xadaceedeULL), static_cast<uint64_t>(req.id)));
  }
}

// Conservation under overload: every request the engine pulls from a
// stress stream is eventually served — evictions and pauses requeue, they
// never drop — so finished == arrivals when the run drains.
TEST_P(StressScenarioProperties, EngineConservesEveryArrival) {
  const Experiment exp(TestSetup());
  // Count arrivals with a twin stream; the engine consumes its own.
  const size_t total =
      Materialize(*MakeStressStream(exp.Categories(), GetParam(), 20.0, 42)).size();
  auto stream = MakeStressStream(exp.Categories(), GetParam(), 20.0, 42);
  auto scheduler = MakeScheduler(SystemKind::kAdaServe);
  const EngineResult result = exp.Run(*scheduler, *stream);
  EXPECT_EQ(static_cast<size_t>(result.metrics.finished), total);
  EXPECT_EQ(result.requests.size(), total);
  for (const Request& req : result.requests) {
    EXPECT_EQ(req.state, RequestState::kFinished);
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, StressScenarioProperties,
                         ::testing::ValuesIn(AllStressScenarios()),
                         [](const ::testing::TestParamInfo<StressScenario>& info) {
                           return StressScenarioSlug(info.param);
                         });

// A bigger flash crowd can only prolong the post-overload SLO backlog:
// recovery time to SLO is nondecreasing in the overload magnitude for a
// fixed seed and window.
TEST(FlashCrowdProperties, RecoveryTimeMonotoneInOverloadMagnitude) {
  const Experiment exp(TestSetup());
  const double kMagnitudes[] = {4.0, 12.0, 30.0};
  double prev_recovery = -1.0;
  for (const double magnitude : kMagnitudes) {
    FlashCrowdSpec spec = DefaultFlashCrowd(/*duration=*/20.0, /*trace_seed=*/42);
    spec.magnitude = magnitude;
    auto stream = MakeFlashCrowdStream(exp.Categories(), spec);
    auto scheduler = MakeScheduler(SystemKind::kAdaServe);
    const EngineResult result = exp.Run(*scheduler, *stream);
    const double recovery = RecoveryTimeToSlo(result.requests, spec, result.end_time);
    EXPECT_GE(recovery, 0.0);
    EXPECT_GE(recovery, prev_recovery)
        << "magnitude " << magnitude << " recovered faster than a smaller crowd";
    prev_recovery = recovery;
  }
  // The largest crowd actually overwhelms the system: a zero recovery
  // across the board would make the monotonicity check vacuous.
  EXPECT_GT(prev_recovery, 0.0);
}

}  // namespace
}  // namespace adaserve
