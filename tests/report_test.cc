#include "src/harness/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace adaserve {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  ReportTest() : exp_(TestSetup()) {}

  EngineResult RunSmall() {
    AdaServeScheduler scheduler;
    return exp_.Run(scheduler, UniformWorkload(exp_, 3, kCatChat, 0.1));
  }

  static size_t CountLines(const std::string& s) {
    size_t lines = 0;
    for (char c : s) {
      if (c == '\n') {
        ++lines;
      }
    }
    return lines;
  }

  Experiment exp_;
};

TEST_F(ReportTest, MetricsCsvHasHeaderAndRows) {
  const EngineResult result = RunSmall();
  std::ostringstream os;
  MetricsCsvWriter writer(os, "rps");
  writer.AddRow("AdaServe", 4.0, result.metrics);
  writer.AddRow("vLLM", 4.0, result.metrics);
  const std::string csv = os.str();
  EXPECT_EQ(CountLines(csv), 3u);
  EXPECT_NE(csv.find("system,rps,attainment_pct"), std::string::npos);
  EXPECT_NE(csv.find("AdaServe,4,"), std::string::npos);
}

TEST_F(ReportTest, RequestCsvOneRowPerRequest) {
  const EngineResult result = RunSmall();
  std::ostringstream os;
  WriteRequestCsv(os, result.requests);
  EXPECT_EQ(CountLines(os.str()), 1u + result.requests.size());
  EXPECT_NE(os.str().find("id,category,arrival_s"), std::string::npos);
}

TEST_F(ReportTest, IterationCsvOneRowPerIteration) {
  const EngineResult result = RunSmall();
  std::ostringstream os;
  WriteIterationCsv(os, result.iterations);
  EXPECT_EQ(CountLines(os.str()), 1u + result.iterations.size());
}

TEST_F(ReportTest, EngineResultCarriesFinishedRequests) {
  const EngineResult result = RunSmall();
  ASSERT_EQ(result.requests.size(), 3u);
  for (const Request& req : result.requests) {
    EXPECT_EQ(req.state, RequestState::kFinished);
    EXPECT_EQ(req.output_len(), req.target_output_len);
  }
}

TEST_F(ReportTest, TtftRecordedPerCategory) {
  const EngineResult result = RunSmall();
  const CategoryMetrics& chat = result.metrics.per_category[kCatChat];
  EXPECT_EQ(chat.ttft_ms.count(), 3u);
  EXPECT_GT(chat.ttft_ms.Min(), 0.0);
}

}  // namespace
}  // namespace adaserve
