// Laws of the deadline-theoretic baselines (EDF and EDF+AC).
//
// EDF laws: the decode batch is always a (deadline, id)-sorted prefix of
// the running set — tighter deadlines schedule first, ties keep arrival
// order — overdue deadlines never constrain the batch (no starvation),
// and NextTokenDeadline is a pure function of current progress, so
// pause/resume cycles recompute rather than cache it.
//
// Admission-control laws: a request whose demand provably cannot fit the
// utilization bound is rejected at any load (and counted in
// Metrics::rejections), degradation loosens the SLO to exactly the
// remaining headroom within the configured cap, and the live accepted
// utilization never exceeds the bound in any tick.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/baselines/admission_control.h"
#include "src/baselines/edf.h"
#include "src/hw/budget.h"
#include "tests/test_util.h"

namespace adaserve {
namespace {

Request SloRequest(RequestId id, double tpot_slo, SimTime arrival = 0.0, int prompt_len = 20,
                   int output_len = 8) {
  Request req;
  req.id = id;
  req.category = kCatChat;
  req.tpot_slo = tpot_slo;
  req.arrival = arrival;
  req.prompt_len = prompt_len;
  req.target_output_len = output_len;
  req.stream_seed = static_cast<uint64_t>(id) ^ 0x5eed;
  return req;
}

class DeadlineBaselinesTest : public ::testing::Test {
 protected:
  DeadlineBaselinesTest() : exp_(TestSetup()), kv_(100000.0, 1.0, 16), pool_(&kv_) {
    ctx_.target_latency = &exp_.target_latency();
  }

  // Admits `req` and drives it to kRunning with its first token committed
  // at `first_token_time`, so NextTokenDeadline = first_token_time +
  // committed_len * tpot_slo.
  void AddRunning(const Request& req, SimTime first_token_time) {
    pool_.AddArrival(req);
    ASSERT_EQ(pool_.TryAdmit(/*max_active=*/256), req.id);
    pool_.AdvancePrefill(req.id, req.prompt_len);
    ASSERT_EQ(pool_.Get(req.id).state, RequestState::kRunning);
    pool_.CommitToken(req.id, /*token=*/1, first_token_time);
  }

  Experiment exp_;
  KvCache kv_;
  RequestPool pool_;
  ServingContext ctx_;
};

// --- EDF laws ----------------------------------------------------------------

TEST_F(DeadlineBaselinesTest, DecodeBatchIsTightestDeadlineFirstPrefix) {
  // Deadlines at now=1.0: id0 -> 3.0, id1 -> 1.5, id2 -> 2.0.
  AddRunning(SloRequest(0, 2.0), /*first_token_time=*/1.0);
  AddRunning(SloRequest(1, 0.5), 1.0);
  AddRunning(SloRequest(2, 1.0), 1.0);

  const std::vector<RequestId> batch = EdfDecodeBatch(1.0, pool_, ctx_);
  const std::vector<RequestId> expected_order = {1, 2, 0};
  ASSERT_GE(batch.size(), 1u);
  EXPECT_EQ(batch, std::vector<RequestId>(expected_order.begin(),
                                          expected_order.begin() +
                                              static_cast<long>(batch.size())))
      << "the batch must be a deadline-sorted prefix";
  EXPECT_EQ(batch.front(), 1) << "the tightest deadline schedules first";
  // With the whole batch feasible against the binding (earliest live)
  // deadline, nothing may be shed.
  const long context = pool_.SumContextTokens({0, 1, 2});
  if (1.0 + ctx_.target_latency->ForwardLatency(3, context, true) <= 1.5) {
    EXPECT_EQ(batch.size(), 3u);
  }
}

TEST_F(DeadlineBaselinesTest, EqualDeadlinesKeepArrivalOrder) {
  for (RequestId id = 0; id < 3; ++id) {
    AddRunning(SloRequest(id, /*tpot_slo=*/5.0), 1.0);
  }
  const std::vector<RequestId> batch = EdfDecodeBatch(1.0, pool_, ctx_);
  const std::vector<RequestId> expected = {0, 1, 2};
  EXPECT_EQ(batch, std::vector<RequestId>(expected.begin(),
                                          expected.begin() + static_cast<long>(batch.size())));
}

TEST_F(DeadlineBaselinesTest, ShedsLatestDeadlinesWhenBindingDeadlineIsUnmeetable) {
  // Three relaxed requests plus one whose deadline sits between the
  // 1-request and the 4-request iteration latency: serving everyone would
  // miss it, so EDF must shed from the tail — never below one request.
  AddRunning(SloRequest(0, 1e6), 1.0);
  AddRunning(SloRequest(1, 1e6), 1.0);
  AddRunning(SloRequest(2, 1e6), 1.0);
  // Admitted last but carries the earliest deadline once computed below.
  Request tight = SloRequest(3, 1.0);
  pool_.AddArrival(tight);
  ASSERT_EQ(pool_.TryAdmit(256), 3);
  pool_.AdvancePrefill(3, tight.prompt_len);
  const long ctx_tight = pool_.Get(3).KvTokens() + 1;
  const long ctx_all = pool_.SumContextTokens({0, 1, 2, 3}) + 1;
  const double lat1 = ctx_.target_latency->ForwardLatency(1, ctx_tight, true);
  const double lat4 = ctx_.target_latency->ForwardLatency(4, ctx_all, true);
  ASSERT_LT(lat1, lat4);
  // Deadline = first_token_time + tpot_slo; place it halfway between.
  pool_.Get(3).tpot_slo = (lat1 + lat4) / 2.0;
  pool_.CommitToken(3, 1, /*now=*/1.0);

  const std::vector<RequestId> batch = EdfDecodeBatch(1.0, pool_, ctx_);
  ASSERT_GE(batch.size(), 1u);
  EXPECT_LT(batch.size(), 4u) << "the full batch misses the binding deadline";
  EXPECT_EQ(batch.front(), 3) << "shedding drops the latest deadlines, not the binding one";
}

TEST_F(DeadlineBaselinesTest, OverdueDeadlinesNeverConstrainTheBatch) {
  // Every deadline is long past: tardiness is sunk, so EDF keeps serving
  // the whole batch instead of starving it behind an unmeetable bound.
  for (RequestId id = 0; id < 4; ++id) {
    AddRunning(SloRequest(id, /*tpot_slo=*/1e-6), 1.0);
  }
  const std::vector<RequestId> batch = EdfDecodeBatch(/*now=*/10.0, pool_, ctx_);
  EXPECT_EQ(batch.size(), 4u);
}

TEST_F(DeadlineBaselinesTest, EdfAdmissionPrefersEarliestDeadlineNotArrival) {
  // Queued deadlines are arrival + tpot_slo: the later arrival with the
  // tighter SLO outranks the earlier relaxed one under kEdf.
  pool_.AddArrival(SloRequest(0, /*tpot_slo=*/0.15, /*arrival=*/0.0));   // deadline 0.15
  pool_.AddArrival(SloRequest(1, /*tpot_slo=*/0.02, /*arrival=*/0.02));  // deadline 0.04
  ServingContext ctx;
  ctx.tick.max_active = 1;
  ctx.tick.admission_priority = PriorityPolicy::kEdf;
  EXPECT_EQ(TickAdmitPhase(0.05, pool_, ctx), 1);
  EXPECT_EQ(pool_.active().front(), 1);
  EXPECT_EQ(pool_.Get(0).state, RequestState::kQueued);
}

TEST_F(DeadlineBaselinesTest, DeadlineIsRecomputedAcrossPauseResumeAndProgress) {
  Request req = SloRequest(0, /*tpot_slo=*/0.1, /*arrival=*/2.0);
  pool_.AddArrival(req);
  EXPECT_DOUBLE_EQ(NextTokenDeadline(pool_.Get(0)), 2.1) << "queued: arrival + slo";

  ASSERT_EQ(pool_.TryAdmit(256), 0);
  pool_.AdvancePrefill(0, req.prompt_len / 2);
  pool_.Pause(0);
  EXPECT_EQ(pool_.Get(0).state, RequestState::kPaused);
  EXPECT_DOUBLE_EQ(NextTokenDeadline(pool_.Get(0)), 2.1)
      << "pausing preserves progress but not a stale deadline";

  ASSERT_EQ(pool_.TryAdmit(256), 0);
  pool_.AdvancePrefill(0, req.prompt_len - req.prompt_len / 2);
  pool_.CommitToken(0, 1, /*now=*/5.0);
  EXPECT_DOUBLE_EQ(NextTokenDeadline(pool_.Get(0)), 5.0 + 0.1)
      << "after the first token the deadline tracks actual progress";
  pool_.CommitToken(0, 1, 5.05);
  EXPECT_DOUBLE_EQ(NextTokenDeadline(pool_.Get(0)), 5.0 + 2 * 0.1);
}

// --- admission-control laws --------------------------------------------------

// Records the peak live utilization across every tick of a run.
class ProbeAcScheduler : public AdmissionControlScheduler {
 public:
  using AdmissionControlScheduler::AdmissionControlScheduler;
  TickResult Tick(SimTime now, RequestPool& pool, ServingContext& ctx) override {
    TickResult result = AdmissionControlScheduler::Tick(now, pool, ctx);
    max_utilization = std::max(max_utilization, utilization());
    ++ticks;
    return result;
  }
  double max_utilization = 0.0;
  long ticks = 0;
};

TEST_F(DeadlineBaselinesTest, InfeasibleRequestIsRejectedAtAnyLoad) {
  const double service_tps = DeriveServiceTps(exp_.target_latency());
  ASSERT_GT(service_tps, 0.0);
  // Demand 1/(slo * service_tps) = 1.0 against a bound of 0.5: infeasible
  // even on an idle replica.
  const double infeasible_slo = 1.0 / service_tps;
  std::vector<Request> workload = {SloRequest(0, infeasible_slo, 0.0)};
  AdmissionControlConfig config;
  config.utilization_bound = 0.5;
  config.allow_degrade = false;
  AdmissionControlScheduler scheduler(config);
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.rejections, 1);
  EXPECT_EQ(result.metrics.finished, 0);
  EXPECT_EQ(result.requests.at(0).state, RequestState::kRejected);
  EXPECT_EQ(result.requests.at(0).committed_len, 0) << "rejected requests get no service";
}

TEST_F(DeadlineBaselinesTest, InfeasibleRequestIsRejectedAlongsideFeasibleTraffic) {
  const double service_tps = DeriveServiceTps(exp_.target_latency());
  // Two easily served requests plus the infeasible one; only it may be
  // refused, and its refusal must not disturb the others.
  std::vector<Request> workload = {SloRequest(0, 100.0 / service_tps, 0.0),
                                   SloRequest(1, 1.0 / service_tps, 0.1),
                                   SloRequest(2, 100.0 / service_tps, 0.2)};
  AdmissionControlConfig config;
  config.utilization_bound = 0.5;
  config.allow_degrade = false;
  AdmissionControlScheduler scheduler(config);
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.rejections, 1);
  EXPECT_EQ(result.metrics.finished, 2);
  EXPECT_EQ(result.requests.at(1).state, RequestState::kRejected);
}

TEST_F(DeadlineBaselinesTest, RejectsWhenDegradationWouldExceedTheCap) {
  const double service_tps = DeriveServiceTps(exp_.target_latency());
  // Headroom 0.05 would need a 20x looser SLO; the 4x cap forbids it.
  std::vector<Request> workload = {SloRequest(0, 1.0 / service_tps, 0.0)};
  AdmissionControlConfig config;
  config.utilization_bound = 0.05;
  AdmissionControlScheduler scheduler(config);
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.rejections, 1);
  EXPECT_EQ(result.metrics.degraded, 0);
}

TEST_F(DeadlineBaselinesTest, DegradationLoosensTheSloToExactlyTheHeadroom) {
  const double service_tps = DeriveServiceTps(exp_.target_latency());
  const double original_slo = 1.0 / service_tps;  // demand 1.0 > bound 0.5
  std::vector<Request> workload = {SloRequest(0, original_slo, 0.0)};
  AdmissionControlConfig config;
  config.utilization_bound = 0.5;
  AdmissionControlScheduler scheduler(config);
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.degraded, 1);
  EXPECT_EQ(result.metrics.rejections, 0);
  EXPECT_EQ(result.metrics.finished, 1);
  // The degraded SLO consumes exactly the headroom: 1/(0.5 * service_tps)
  // = 2x the original.
  EXPECT_NEAR(result.requests.at(0).tpot_slo, 2.0 * original_slo, 1e-12);
}

TEST_F(DeadlineBaselinesTest, UtilizationNeverExceedsTheBoundInAnyTick) {
  const double service_tps = DeriveServiceTps(exp_.target_latency());
  // 30 simultaneous requests at demand 0.25 each: 7.5 total against a
  // bound of 1.0 — most must be refused, and the accepted set must never
  // overshoot in any tick, including the degradation that lands exactly
  // on the bound.
  const double slo = 4.0 / service_tps;
  std::vector<Request> workload;
  for (RequestId id = 0; id < 30; ++id) {
    workload.push_back(SloRequest(id, slo, 0.0));
  }
  AdmissionControlConfig config;
  config.utilization_bound = 1.0;
  ProbeAcScheduler scheduler(config);
  const EngineResult result = exp_.Run(scheduler, workload);
  ASSERT_GT(scheduler.ticks, 0);
  EXPECT_LE(scheduler.max_utilization, config.utilization_bound + 1e-9);
  EXPECT_GT(result.metrics.rejections, 0) << "a 7.5x overload must refuse work";
  EXPECT_EQ(result.metrics.finished + result.metrics.rejections, 30);
}

TEST_F(DeadlineBaselinesTest, BoundaryModeIsPlainEdf) {
  // Boundary mode is defined as the legacy drain loop: the controller
  // stands down, so EDF+AC and EDF are byte-identical there.
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  EdfScheduler edf;
  AdmissionControlScheduler ac;
  const EngineResult edf_result = exp_.Run(edf, workload, BoundaryTickConfig());
  const EngineResult ac_result = exp_.Run(ac, workload, BoundaryTickConfig());
  EXPECT_EQ(ac_result.metrics.rejections, 0);
  EXPECT_EQ(ac_result.metrics.degraded, 0);
  EXPECT_EQ(ac_result.metrics.finished, edf_result.metrics.finished);
  EXPECT_EQ(ac_result.metrics.attained, edf_result.metrics.attained);
  EXPECT_EQ(ac_result.metrics.output_tokens(), edf_result.metrics.output_tokens());
  EXPECT_DOUBLE_EQ(ac_result.metrics.makespan, edf_result.metrics.makespan);
}

TEST_F(DeadlineBaselinesTest, SystemRegistryRoundTripsTheNewBaselines) {
  EXPECT_EQ(SystemName(SystemKind::kEdf), "EDF");
  EXPECT_EQ(SystemName(SystemKind::kEdfAdmission), "EDF+AC");
  EXPECT_EQ(SystemKindFromName("EDF"), SystemKind::kEdf);
  EXPECT_EQ(SystemKindFromName("EDF+AC"), SystemKind::kEdfAdmission);
  const std::vector<SystemKind> systems = MainComparisonSet();
  EXPECT_NE(std::find(systems.begin(), systems.end(), SystemKind::kEdf), systems.end());
  EXPECT_NE(std::find(systems.begin(), systems.end(), SystemKind::kEdfAdmission), systems.end());
}

}  // namespace
}  // namespace adaserve
