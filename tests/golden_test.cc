// Golden-metrics regression test: every cell of AllGoldenCells() — the
// MainComparisonSet systems across the real-trace/bursty/diurnal corpus
// (both serving modes) and the stress-scenario corpus (flash crowd,
// tenant flood, long-prompt poisoning, correlated bursts; tick-native),
// plus VTC under the tenant flood — runs its canonical fixed-seed
// workload, and its key metrics must byte-match the checked-in baseline
// under tests/golden/.
//
// Regenerate baselines after an intentional behavior change with:
//   ./golden_test --update_golden
// Regeneration fans every cell out over a SweepRunner; the test pass that
// follows recomputes each cell serially and byte-compares it against the
// parallel-written file, so every --update_golden run doubles as a
// parallel ≡ serial regeneration proof. After regenerating, any
// tests/golden/*.txt file that no longer corresponds to a cell is an
// orphan: --update_golden lists them and exits nonzero instead of leaving
// them behind, and the always-on NoOrphanBaselines test enforces the same
// invariant on every run.
//
// On a baseline mismatch the failing cell is re-run under a RunRecorder
// and its replay artifact is dumped to $ADASERVE_REPLAY_DUMP_DIR (default
// ./replay_artifacts), so one bad cell can be re-executed byte-identically
// offline (src/harness/replay.h) without re-running the sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/harness/golden.h"
#include "src/harness/replay.h"
#include "src/harness/sweep_runner.h"

#ifndef ADASERVE_GOLDEN_DIR
#define ADASERVE_GOLDEN_DIR "tests/golden"
#endif

namespace adaserve {
namespace {

std::string GoldenPath(const GoldenCell& cell) {
  return std::string(ADASERVE_GOLDEN_DIR) + "/" + cell.Filename();
}

// tests/golden/*.txt files that correspond to no generated cell —
// leftovers of a renamed or removed cell. Sorted for stable output.
std::vector<std::string> OrphanBaselines() {
  std::set<std::string> expected;
  for (const GoldenCell& cell : AllGoldenCells()) {
    expected.insert(cell.Filename());
  }
  std::vector<std::string> orphans;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(ADASERVE_GOLDEN_DIR, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".txt") {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (expected.find(name) == expected.end()) {
      orphans.push_back(name);
    }
  }
  std::sort(orphans.begin(), orphans.end());
  return orphans;
}

// Regenerates the full corpus — every AllGoldenCells() cell — fanned out
// over a SweepRunner. Cells share the (immutable) Experiment but build
// their own scheduler, engine, and stream, the same contract
// RunComparison relies on. Returns false if any file write fails.
bool RegenerateAllGoldens(const Experiment& exp, int threads) {
  struct Written {
    std::string path;
    std::string text;
  };
  std::vector<std::function<Written()>> tasks;
  for (const GoldenCell& cell : AllGoldenCells()) {
    tasks.push_back([&exp, cell] {
      const EngineResult result = RunGoldenSystem(exp, cell.kind, {}, cell.scenario, cell.mode);
      return Written{GoldenPath(cell), GoldenMetricsText(cell.kind, result.metrics)};
    });
  }
  SweepRunner runner(threads);
  bool ok = true;
  for (const Timed<Written>& cell : runner.Map(tasks)) {
    if (!WriteGoldenFile(cell.value.path, cell.value.text)) {
      ADASERVE_LOG(Error) << "cannot write " << cell.value.path;
      ok = false;
    }
  }
  return ok;
}

// Re-runs a failing cell under a RunRecorder and dumps its replay
// artifact for offline debugging (CI uploads the directory on failure).
void DumpReplayArtifact(const Experiment& exp, const GoldenCell& cell) {
  const char* env = std::getenv("ADASERVE_REPLAY_DUMP_DIR");
  const std::string dir = env != nullptr && *env != '\0' ? env : "replay_artifacts";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const RecordedRun run = RecordGoldenRun(exp, cell.kind, {}, cell.scenario, cell.mode);
  const std::string path = dir + "/" + cell.Filename() + ".replay";
  std::string error;
  if (WriteReplayArtifact(path, run.artifact, &error)) {
    ADASERVE_LOG(Error) << "replay artifact of failing cell dumped to " << path
                        << " (re-execute with ReplayRun)";
  } else {
    ADASERVE_LOG(Error) << "could not dump replay artifact: " << error;
  }
}

void CheckAgainstBaseline(const Experiment& exp, const GoldenCell& cell) {
  const EngineResult result = RunGoldenSystem(exp, cell.kind, {}, cell.scenario, cell.mode);
  ASSERT_GT(result.metrics.finished, 0) << SystemName(cell.kind) << " finished nothing";
  const std::string actual = GoldenMetricsText(cell.kind, result.metrics);
  const std::string path = GoldenPath(cell);

  std::string expected;
  ASSERT_TRUE(ReadGoldenFile(path, &expected))
      << "missing baseline " << path << "; run `golden_test --update_golden` to create it";
  EXPECT_EQ(expected, actual)
      << "golden metrics changed for " << SystemName(cell.kind)
      << "; if intentional, regenerate with `golden_test --update_golden`";
  if (expected != actual) {
    DumpReplayArtifact(exp, cell);
  }
}

class GoldenTest : public testing::TestWithParam<GoldenCell> {
 protected:
  // One experiment shared across all parameterized cases: building the
  // synthetic LM pair dominates setup cost.
  static void SetUpTestSuite() { exp_ = new Experiment(GoldenSetup()); }
  static void TearDownTestSuite() {
    delete exp_;
    exp_ = nullptr;
  }
  static Experiment* exp_;
};

Experiment* GoldenTest::exp_ = nullptr;

TEST_P(GoldenTest, MetricsMatchBaseline) { CheckAgainstBaseline(*exp_, GetParam()); }

std::string ParamName(const testing::TestParamInfo<GoldenCell>& info) {
  std::string name = info.param.Filename();
  name.resize(name.size() - 4);  // strip ".txt"
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenTest, testing::ValuesIn(AllGoldenCells()), ParamName);

// Every checked-in baseline must correspond to a generated cell; a stale
// file (from a renamed scenario or dropped system) would otherwise sit in
// the corpus forever pretending to pin something.
TEST(GoldenCorpusTest, NoOrphanBaselines) {
  const std::vector<std::string> orphans = OrphanBaselines();
  EXPECT_TRUE(orphans.empty()) << [&orphans] {
    std::string msg = "stale baselines no cell generates (delete them):";
    for (const std::string& orphan : orphans) {
      msg += "\n  tests/golden/" + orphan;
    }
    return msg;
  }();
}

// Always-on half of the parallel-regeneration guarantee: recomputing the
// kRealTrace corpus (both modes) through a 4-thread SweepRunner must
// byte-match the checked-in baselines, which the parameterized cases above
// prove equal to serial recomputation. Streaming scenarios are covered by
// the --update_golden flow, which writes in parallel and verifies serially.
TEST(GoldenRegenerationTest, ParallelRecomputationMatchesBaselines) {
  const Experiment exp(GoldenSetup());
  struct Cell {
    GoldenCell cell;
    std::string text;
  };
  std::vector<GoldenCell> cells;
  for (SystemKind kind : MainComparisonSet()) {
    cells.push_back({kind, GoldenScenario::kRealTrace, GoldenMode::kTickNative});
  }
  // The boundary corpus is the frozen legacy reference (AllGoldenCells):
  // the deadline-theoretic baselines are tick-native-only there.
  for (SystemKind kind :
       {SystemKind::kAdaServe, SystemKind::kSarathi, SystemKind::kVllm, SystemKind::kVllmSpec4,
        SystemKind::kVllmSpec6, SystemKind::kVllmSpec8}) {
    cells.push_back({kind, GoldenScenario::kRealTrace, GoldenMode::kBoundary});
  }
  std::vector<std::function<Cell()>> tasks;
  for (const GoldenCell& cell : cells) {
    tasks.push_back([&exp, cell] {
      const EngineResult result = RunGoldenSystem(exp, cell.kind, {}, cell.scenario, cell.mode);
      return Cell{cell, GoldenMetricsText(cell.kind, result.metrics)};
    });
  }
  SweepRunner runner(4);
  for (const Timed<Cell>& cell : runner.Map(tasks)) {
    std::string expected;
    ASSERT_TRUE(ReadGoldenFile(GoldenPath(cell.value.cell), &expected))
        << "missing baseline " << GoldenPath(cell.value.cell);
    EXPECT_EQ(expected, cell.value.text)
        << "parallel recomputation diverged for " << SystemName(cell.value.cell.kind);
  }
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  bool update_golden = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update_golden") == 0) {
      update_golden = true;
    }
  }
  if (update_golden) {
    // Parallel rewrite of the whole corpus, then fall through to the
    // normal (serial) test pass: every case recomputes its metrics and
    // byte-compares them against the file just written in parallel.
    const adaserve::Experiment exp(adaserve::GoldenSetup());
    if (!adaserve::RegenerateAllGoldens(exp, /*threads=*/0)) {
      return 1;
    }
    // Fail loudly on stale baselines instead of leaving orphans behind.
    const std::vector<std::string> orphans = adaserve::OrphanBaselines();
    if (!orphans.empty()) {
      ADASERVE_LOG(Error) << "--update_golden regenerated every cell, but these baselines "
                             "correspond to no cell (delete them):";
      for (const std::string& orphan : orphans) {
        ADASERVE_LOG(Error) << "  tests/golden/" << orphan;
      }
      return 1;
    }
  }
  return RUN_ALL_TESTS();
}
