// Golden-metrics regression test: every system in MainComparisonSet() runs
// the canonical fixed-seed workload of every scenario in BOTH serving
// modes, and its key metrics must byte-match the checked-in baseline under
// tests/golden/:
//   - tick-native mode (the serving default: continuous ticks, scheduler
//     admission-priority defaults, evict-for-admission) pins the
//     tick_-prefixed corpus;
//   - boundary mode (BoundaryTickConfig — the legacy drain loop) pins the
//     unprefixed corpus, which must never drift.
//
// Regenerate baselines after an intentional behavior change with:
//   ./golden_test --update_golden
// Regeneration fans every (system × scenario × mode) cell out over a
// SweepRunner; the test pass that follows recomputes each cell serially
// and byte-compares it against the parallel-written file, so every
// --update_golden run doubles as a parallel ≡ serial regeneration proof.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/harness/golden.h"
#include "src/harness/sweep_runner.h"

#ifndef ADASERVE_GOLDEN_DIR
#define ADASERVE_GOLDEN_DIR "tests/golden"
#endif

namespace adaserve {
namespace {

const std::vector<GoldenScenario> kAllScenarios = {
    GoldenScenario::kRealTrace, GoldenScenario::kBursty, GoldenScenario::kDiurnal};
const std::vector<GoldenMode> kAllModes = {GoldenMode::kTickNative, GoldenMode::kBoundary};

std::string GoldenPath(SystemKind kind, GoldenScenario scenario, GoldenMode mode) {
  return std::string(ADASERVE_GOLDEN_DIR) + "/" + GoldenModePrefix(mode) +
         GoldenScenarioPrefix(scenario) + GoldenFileSlug(kind) + ".txt";
}

// Regenerates the full corpus — every (system, scenario, mode) cell — with
// the cells fanned out over a SweepRunner. Cells share the (immutable)
// Experiment but build their own scheduler, engine, and stream, the same
// contract RunComparison relies on. Returns false if any file write fails.
bool RegenerateAllGoldens(const Experiment& exp, int threads) {
  struct Cell {
    std::string path;
    std::string text;
  };
  std::vector<std::function<Cell()>> tasks;
  for (SystemKind kind : MainComparisonSet()) {
    for (GoldenScenario scenario : kAllScenarios) {
      for (GoldenMode mode : kAllModes) {
        tasks.push_back([&exp, kind, scenario, mode] {
          const EngineResult result = RunGoldenSystem(exp, kind, {}, scenario, mode);
          return Cell{GoldenPath(kind, scenario, mode),
                      GoldenMetricsText(kind, result.metrics)};
        });
      }
    }
  }
  SweepRunner runner(threads);
  bool ok = true;
  for (const Timed<Cell>& cell : runner.Map(tasks)) {
    if (!WriteGoldenFile(cell.value.path, cell.value.text)) {
      ADASERVE_LOG(Error) << "cannot write " << cell.value.path;
      ok = false;
    }
  }
  return ok;
}

void CheckAgainstBaseline(const Experiment& exp, SystemKind kind, GoldenScenario scenario,
                          GoldenMode mode) {
  const EngineResult result = RunGoldenSystem(exp, kind, {}, scenario, mode);
  ASSERT_GT(result.metrics.finished, 0) << SystemName(kind) << " finished nothing";
  const std::string actual = GoldenMetricsText(kind, result.metrics);
  const std::string path = GoldenPath(kind, scenario, mode);

  std::string expected;
  ASSERT_TRUE(ReadGoldenFile(path, &expected))
      << "missing baseline " << path << "; run `golden_test --update_golden` to create it";
  EXPECT_EQ(expected, actual)
      << "golden metrics changed for " << SystemName(kind)
      << "; if intentional, regenerate with `golden_test --update_golden`";
}

using GoldenParams = std::tuple<SystemKind, GoldenMode>;

class GoldenTest : public testing::TestWithParam<GoldenParams> {
 protected:
  // One experiment shared across all parameterized cases: building the
  // synthetic LM pair dominates setup cost.
  static void SetUpTestSuite() { exp_ = new Experiment(GoldenSetup()); }
  static void TearDownTestSuite() {
    delete exp_;
    exp_ = nullptr;
  }
  static Experiment* exp_;
};

Experiment* GoldenTest::exp_ = nullptr;

TEST_P(GoldenTest, MetricsMatchBaseline) {
  const auto [kind, mode] = GetParam();
  CheckAgainstBaseline(*exp_, kind, GoldenScenario::kRealTrace, mode);
}

// The streaming scenarios run through the lazy engine path (generator-backed
// stream, bounded horizon, finished-request retirement), so these baselines
// regression-pin the streaming admission and incremental-metrics machinery —
// including, in tick-native mode, priority admission at the mid-tick pull.
TEST_P(GoldenTest, BurstyStreamMetricsMatchBaseline) {
  const auto [kind, mode] = GetParam();
  CheckAgainstBaseline(*exp_, kind, GoldenScenario::kBursty, mode);
}

TEST_P(GoldenTest, DiurnalStreamMetricsMatchBaseline) {
  const auto [kind, mode] = GetParam();
  CheckAgainstBaseline(*exp_, kind, GoldenScenario::kDiurnal, mode);
}

std::string ParamName(const testing::TestParamInfo<GoldenParams>& info) {
  const auto [kind, mode] = info.param;
  return GoldenFileSlug(kind) +
         (mode == GoldenMode::kTickNative ? "_tick_native" : "_boundary");
}

INSTANTIATE_TEST_SUITE_P(MainComparison, GoldenTest,
                         testing::Combine(testing::ValuesIn(MainComparisonSet()),
                                          testing::ValuesIn(kAllModes)),
                         ParamName);

// Always-on half of the parallel-regeneration guarantee: recomputing the
// kRealTrace corpus (both modes) through a 4-thread SweepRunner must
// byte-match the checked-in baselines, which the parameterized cases above
// prove equal to serial recomputation. Streaming scenarios are covered by
// the --update_golden flow, which writes in parallel and verifies serially.
TEST(GoldenRegenerationTest, ParallelRecomputationMatchesBaselines) {
  const Experiment exp(GoldenSetup());
  struct Cell {
    SystemKind kind;
    GoldenMode mode;
    std::string text;
  };
  std::vector<std::function<Cell()>> tasks;
  for (SystemKind kind : MainComparisonSet()) {
    for (GoldenMode mode : kAllModes) {
      tasks.push_back([&exp, kind, mode] {
        const EngineResult result =
            RunGoldenSystem(exp, kind, {}, GoldenScenario::kRealTrace, mode);
        return Cell{kind, mode, GoldenMetricsText(kind, result.metrics)};
      });
    }
  }
  SweepRunner runner(4);
  for (const Timed<Cell>& cell : runner.Map(tasks)) {
    const std::string path =
        GoldenPath(cell.value.kind, GoldenScenario::kRealTrace, cell.value.mode);
    std::string expected;
    ASSERT_TRUE(ReadGoldenFile(path, &expected)) << "missing baseline " << path;
    EXPECT_EQ(expected, cell.value.text)
        << "parallel recomputation diverged for " << SystemName(cell.value.kind);
  }
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  bool update_golden = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update_golden") == 0) {
      update_golden = true;
    }
  }
  if (update_golden) {
    // Parallel rewrite of the whole corpus, then fall through to the
    // normal (serial) test pass: every case recomputes its metrics and
    // byte-compares them against the file just written in parallel.
    const adaserve::Experiment exp(adaserve::GoldenSetup());
    if (!adaserve::RegenerateAllGoldens(exp, /*threads=*/0)) {
      return 1;
    }
  }
  return RUN_ALL_TESTS();
}
