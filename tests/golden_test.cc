// Golden-metrics regression test: every system in MainComparisonSet() runs
// the canonical fixed-seed workload and its key metrics must byte-match the
// checked-in baseline under tests/golden/.
//
// Regenerate baselines after an intentional behavior change with:
//   ./golden_test --update_golden
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/harness/golden.h"

#ifndef ADASERVE_GOLDEN_DIR
#define ADASERVE_GOLDEN_DIR "tests/golden"
#endif

namespace adaserve {
namespace {

bool g_update_golden = false;

std::string GoldenPath(SystemKind kind, GoldenScenario scenario = GoldenScenario::kRealTrace) {
  return std::string(ADASERVE_GOLDEN_DIR) + "/" + GoldenScenarioPrefix(scenario) +
         GoldenFileSlug(kind) + ".txt";
}

void CheckAgainstBaseline(const Experiment& exp, SystemKind kind, GoldenScenario scenario) {
  const EngineResult result = RunGoldenSystem(exp, kind, {}, scenario);
  ASSERT_GT(result.metrics.finished, 0) << SystemName(kind) << " finished nothing";
  const std::string actual = GoldenMetricsText(kind, result.metrics);
  const std::string path = GoldenPath(kind, scenario);

  if (g_update_golden) {
    ASSERT_TRUE(WriteGoldenFile(path, actual)) << "cannot write " << path;
    GTEST_SKIP() << "updated " << path;
  }

  std::string expected;
  ASSERT_TRUE(ReadGoldenFile(path, &expected))
      << "missing baseline " << path << "; run `golden_test --update_golden` to create it";
  EXPECT_EQ(expected, actual)
      << "golden metrics changed for " << SystemName(kind)
      << "; if intentional, regenerate with `golden_test --update_golden`";
}

class GoldenTest : public testing::TestWithParam<SystemKind> {
 protected:
  // One experiment shared across all parameterized cases: building the
  // synthetic LM pair dominates setup cost.
  static void SetUpTestSuite() { exp_ = new Experiment(GoldenSetup()); }
  static void TearDownTestSuite() {
    delete exp_;
    exp_ = nullptr;
  }
  static Experiment* exp_;
};

Experiment* GoldenTest::exp_ = nullptr;

TEST_P(GoldenTest, MetricsMatchBaseline) {
  CheckAgainstBaseline(*exp_, GetParam(), GoldenScenario::kRealTrace);
}

// The streaming scenarios run through the lazy engine path (generator-backed
// stream, bounded horizon, finished-request retirement), so these baselines
// regression-pin the streaming admission and incremental-metrics machinery.
TEST_P(GoldenTest, BurstyStreamMetricsMatchBaseline) {
  CheckAgainstBaseline(*exp_, GetParam(), GoldenScenario::kBursty);
}

TEST_P(GoldenTest, DiurnalStreamMetricsMatchBaseline) {
  CheckAgainstBaseline(*exp_, GetParam(), GoldenScenario::kDiurnal);
}

std::string ParamName(const testing::TestParamInfo<SystemKind>& info) {
  return GoldenFileSlug(info.param);
}

INSTANTIATE_TEST_SUITE_P(MainComparison, GoldenTest,
                         testing::ValuesIn(MainComparisonSet()), ParamName);

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update_golden") == 0) {
      adaserve::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
