#include "src/core/slo_accounting.h"

#include <gtest/gtest.h>

#include "src/core/adaptive.h"

namespace adaserve {
namespace {

Request MakeRequest(double tpot_slo, SimTime first_token, int output_len) {
  Request req;
  req.id = 1;
  req.tpot_slo = tpot_slo;
  req.first_token_time = first_token;
  req.output.assign(static_cast<size_t>(output_len), 7);
  req.committed_len = output_len;
  return req;
}

TEST(SloAccounting, MatchesFormula) {
  // A(r) = (l + t_spec) / tpot - o with l = now - first_token, o = len - 1.
  const Request req = MakeRequest(/*tpot_slo=*/0.05, /*first_token=*/1.0, /*output_len=*/5);
  const double a = MinAcceptedForSlo(req, /*now=*/1.2, /*t_spec=*/0.05);
  EXPECT_NEAR(a, (0.2 + 0.05) / 0.05 - 4, 1e-12);  // = 1.0
}

TEST(SloAccounting, AheadOfScheduleNeedsLittle) {
  // Many tokens already emitted quickly: A(r) can be negative.
  const Request req = MakeRequest(0.05, 1.0, 50);
  const double a = MinAcceptedForSlo(req, 1.1, 0.03);
  EXPECT_LT(a, 0.0);
}

TEST(SloAccounting, BehindScheduleNeedsMany) {
  // 1 second behind with a 20ms SLO.
  const Request req = MakeRequest(0.02, 0.0, 2);
  const double a = MinAcceptedForSlo(req, 1.0, 0.04);
  EXPECT_GT(a, 40.0);
}

TEST(SloAccounting, TighterSloNeedsMore) {
  const Request tight = MakeRequest(0.02, 0.0, 3);
  const Request loose = MakeRequest(0.15, 0.0, 3);
  const double now = 0.2;
  const double t_spec = 0.04;
  EXPECT_GT(MinAcceptedForSlo(tight, now, t_spec), MinAcceptedForSlo(loose, now, t_spec));
}

TEST(SloAccounting, LongerIterationNeedsMore) {
  const Request req = MakeRequest(0.05, 0.0, 3);
  EXPECT_GT(MinAcceptedForSlo(req, 0.1, 0.08), MinAcceptedForSlo(req, 0.1, 0.02));
}

TEST(SloAccounting, CapRequirementClampsAtDepthPlusOne) {
  EXPECT_EQ(CapRequirement(10.0, 3), 4.0);
  EXPECT_EQ(CapRequirement(2.5, 3), 2.5);
  EXPECT_EQ(CapRequirement(-1.0, 3), -1.0);
}

TEST(Adaptive, MatchesEquations) {
  // d = clip(Dmax, Dmin, floor(B1/(n+c1)) - 1), w = clip(Wmax, 1, floor(B2/n)+c2)
  AdaptiveConfig config;
  config.d_min = 1;
  config.d_max = 8;
  config.w_max = 4;
  config.c1 = 1.0;
  config.c2 = 0.0;
  const BeamConfig beam = AdaptSpecParams(/*n=*/9, /*B1=*/100, /*B2=*/36, config);
  EXPECT_EQ(beam.depth, 8);  // floor(100/10) - 1 = 9 -> clipped to 8
  EXPECT_EQ(beam.width, 4);  // floor(36/9) = 4
}

TEST(Adaptive, DepthShrinksWithLoad) {
  AdaptiveConfig config;
  int prev_depth = 100;
  for (int n : {1, 4, 16, 64, 128}) {
    const BeamConfig beam = AdaptSpecParams(n, 128, 256, config);
    EXPECT_LE(beam.depth, prev_depth);
    prev_depth = beam.depth;
  }
}

TEST(Adaptive, WidthShrinksWithLoad) {
  AdaptiveConfig config;
  int prev_width = 100;
  for (int n : {1, 8, 64, 512}) {
    const BeamConfig beam = AdaptSpecParams(n, 128, 256, config);
    EXPECT_LE(beam.width, prev_width);
    prev_width = beam.width;
  }
}

TEST(Adaptive, RespectsBounds) {
  AdaptiveConfig config;
  config.d_min = 2;
  config.d_max = 5;
  config.w_max = 3;
  // Extreme load: clipped to lower bounds.
  BeamConfig beam = AdaptSpecParams(10000, 16, 16, config);
  EXPECT_EQ(beam.depth, 2);
  EXPECT_EQ(beam.width, 1);
  // No load: clipped to upper bounds.
  beam = AdaptSpecParams(1, 10000, 10000, config);
  EXPECT_EQ(beam.depth, 5);
  EXPECT_EQ(beam.width, 3);
}

TEST(Adaptive, C2ShiftsWidth) {
  AdaptiveConfig base;
  AdaptiveConfig shifted = base;
  shifted.c2 = 1.0;
  shifted.w_max = 100;
  base.w_max = 100;
  const BeamConfig a = AdaptSpecParams(8, 128, 64, base);
  const BeamConfig b = AdaptSpecParams(8, 128, 64, shifted);
  EXPECT_EQ(b.width, a.width + 1);
}

}  // namespace
}  // namespace adaserve
