// Cross-system integration tests: losslessness across schedulers, ordering
// of systems under load, and end-to-end reproducibility.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace adaserve {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : exp_(TestSetup()) {}
  Experiment exp_;
};

// The strongest correctness property in the repo: under greedy decoding,
// speculative systems must produce token-for-token identical outputs to
// plain continuous batching — scheduling and speculation change latency,
// never content.
TEST_F(IntegrationTest, GreedyOutputsIdenticalAcrossAllSystems) {
  const std::vector<Request> workload = SmallMixedWorkload(exp_, /*duration=*/6.0, /*rps=*/2.5);
  EngineConfig config;
  config.mode = DecodeMode::kGreedy;

  // Reference outputs: plain greedy ancestral decoding per request.
  std::vector<std::vector<Token>> expected;
  for (const Request& req : workload) {
    std::vector<Token> output;
    Rng rng(1);
    for (int i = 0; i < req.target_output_len; ++i) {
      output.push_back(
          DecodeOneToken(exp_.target(), req.stream_seed, output, DecodeMode::kGreedy, rng));
    }
    expected.push_back(std::move(output));
  }

  for (SystemKind kind : MainComparisonSet()) {
    auto scheduler = MakeScheduler(kind);
    const EngineResult result = exp_.Run(*scheduler, workload, config);
    ASSERT_EQ(result.requests.size(), workload.size());
    for (size_t i = 0; i < workload.size(); ++i) {
      EXPECT_EQ(result.requests[i].output, expected[i])
          << SystemName(kind) << " altered outputs of request " << i;
    }
  }
}

TEST_F(IntegrationTest, AdaServeBeatsVllmOnStressedMultiSloWorkload) {
  const std::vector<Request> workload =
      exp_.RealTraceWorkload(/*duration=*/15.0, /*rps=*/4.0, WorkloadConfig{.mix = {0.6, 0.2, 0.2}});
  AdaServeScheduler adaserve;
  VllmScheduler vllm;
  const EngineResult a = exp_.Run(adaserve, workload);
  const EngineResult v = exp_.Run(vllm, workload);
  EXPECT_GT(a.metrics.AttainmentPct(), v.metrics.AttainmentPct());
  EXPECT_GE(a.metrics.GoodputTps(), v.metrics.GoodputTps());
}

TEST_F(IntegrationTest, AdaServeBeatsStaticSpeculationOnUrgentHeavyMix) {
  const std::vector<Request> workload =
      exp_.RealTraceWorkload(/*duration=*/15.0, /*rps=*/4.0, WorkloadConfig{.mix = {0.9, 0.05, 0.05}});
  AdaServeScheduler adaserve;
  VllmSpecScheduler spec(VllmSpecConfig{.spec_len = 8});
  const EngineResult a = exp_.Run(adaserve, workload);
  const EngineResult s = exp_.Run(spec, workload);
  EXPECT_GE(a.metrics.AttainmentPct() + 1e-9, s.metrics.AttainmentPct());
}

TEST_F(IntegrationTest, RelaxedSloCategoryAlwaysAttainable) {
  // Cat 3's 150 ms SLO is far above any sane iteration time: every system
  // should attain ~all of it at moderate load.
  const std::vector<Request> workload =
      exp_.RealTraceWorkload(/*duration=*/10.0, /*rps=*/2.0, WorkloadConfig{.mix = {0.2, 0.2, 0.6}});
  for (SystemKind kind : MainComparisonSet()) {
    auto scheduler = MakeScheduler(kind);
    const EngineResult result = exp_.Run(*scheduler, workload);
    EXPECT_GT(result.metrics.per_category[kCatSummarization].AttainmentPct(), 90.0)
        << SystemName(kind);
  }
}

TEST_F(IntegrationTest, StochasticRunsAreSeedReproducible) {
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  AdaServeScheduler s1;
  AdaServeScheduler s2;
  const EngineResult a = exp_.Run(s1, workload);
  const EngineResult b = exp_.Run(s2, workload);
  EXPECT_EQ(a.metrics.AttainmentPct(), b.metrics.AttainmentPct());
  EXPECT_EQ(a.metrics.mean_accepted, b.metrics.mean_accepted);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST_F(IntegrationTest, BothTable1SetupsServeEndToEnd) {
  for (const ::adaserve::Setup& setup : {LlamaSetup(), QwenSetup()}) {
    Experiment exp(setup);
    AdaServeScheduler scheduler;
    const std::vector<Request> workload = exp.RealTraceWorkload(5.0, 2.0);
    const EngineResult result = exp.Run(scheduler, workload);
    EXPECT_EQ(result.metrics.finished, static_cast<int>(workload.size())) << setup.label;
  }
}

}  // namespace
}  // namespace adaserve
