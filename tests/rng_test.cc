#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace adaserve {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.Uniform();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound) {
  Rng rng(13);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000000007ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.UniformInt(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  const double rate = 4.0;
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Exponential(rate);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 1.0 / rate, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.Normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, LogNormalIsPositiveWithExpectedMedian) {
  Rng rng(31);
  std::vector<double> samples;
  constexpr int kN = 20001;
  samples.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    const double x = rng.LogNormal(std::log(100.0), 0.5);
    EXPECT_GT(x, 0.0);
    samples.push_back(x);
  }
  std::sort(samples.begin(), samples.end());
  // Median of a lognormal is exp(mu).
  EXPECT_NEAR(samples[kN / 2], 100.0, 5.0);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng parent(101);
  Rng child1 = parent.Split(1);
  Rng child1_again = Rng(101).Split(1);
  Rng child2 = parent.Split(2);
  EXPECT_EQ(child1.NextU64(), child1_again.NextU64());
  EXPECT_NE(child1.NextU64(), child2.NextU64());
}

TEST(Hash, Mix64IsStable) {
  // Stable hashing is load-bearing: the synthetic LM's distributions are
  // keyed on these values, so they must never change across builds.
  EXPECT_EQ(Mix64(0), Mix64(0));
  EXPECT_NE(Mix64(1), Mix64(2));
}

TEST(Hash, HashTokensOrderSensitive) {
  const std::vector<Token> ab = {1, 2};
  const std::vector<Token> ba = {2, 1};
  EXPECT_NE(HashTokens(0, ab), HashTokens(0, ba));
}

TEST(Hash, HashTokensSeedSensitive) {
  const std::vector<Token> t = {1, 2, 3};
  EXPECT_NE(HashTokens(1, t), HashTokens(2, t));
}

TEST(Hash, HashTokensEmptyIsDefined) {
  EXPECT_EQ(HashTokens(5, {}), HashTokens(5, {}));
  EXPECT_NE(HashTokens(5, {}), HashTokens(6, {}));
}

TEST(Hash, HashCombineNotCommutative) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2), HashCombine(HashCombine(0, 2), 1));
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, ChiSquareUniformityOver16Bins) {
  Rng rng(GetParam());
  constexpr int kBins = 16;
  constexpr int kN = 16000;
  std::vector<int> counts(kBins, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<size_t>(rng.Uniform() * kBins)];
  }
  const double expected = static_cast<double>(kN) / kBins;
  double chi2 = 0.0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 15 dof: 99.9th percentile ~ 37.7. Far looser than that to avoid flakes,
  // but tight enough to catch a broken generator.
  EXPECT_LT(chi2, 60.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999, 0xdeadbeef));

}  // namespace
}  // namespace adaserve
