#include "src/workload/generator.h"

#include <gtest/gtest.h>

#include <array>

namespace adaserve {
namespace {

std::vector<CategorySpec> Cats() { return DefaultCategories(/*baseline=*/0.025); }

TEST(Categories, Table2SlosResolved) {
  const std::vector<CategorySpec> cats = Cats();
  ASSERT_EQ(cats.size(), static_cast<size_t>(kNumCategories));
  EXPECT_NEAR(cats[kCatCoding].tpot_slo, 1.2 * 0.025, 1e-12);
  EXPECT_NEAR(cats[kCatChat].tpot_slo, 0.050, 1e-12);
  EXPECT_NEAR(cats[kCatSummarization].tpot_slo, 0.150, 1e-12);
}

TEST(Categories, SloScaleAppliesToCat1Only) {
  CategoryConfig config;
  config.cat1_slo_scale = 0.6;
  const std::vector<CategorySpec> cats = DefaultCategories(0.025, config);
  EXPECT_NEAR(cats[kCatCoding].tpot_slo, 0.6 * 0.025, 1e-12);
  EXPECT_NEAR(cats[kCatChat].tpot_slo, 0.050, 1e-12);
}

TEST(Categories, SummarizationHasLongestPrompts) {
  const std::vector<CategorySpec> cats = Cats();
  EXPECT_GT(cats[kCatSummarization].prompt_len.log_mean, cats[kCatCoding].prompt_len.log_mean);
  EXPECT_GT(cats[kCatSummarization].prompt_len.log_mean, cats[kCatChat].prompt_len.log_mean);
}

TEST(LengthDist, SamplesWithinBounds) {
  LengthDist dist{.log_mean = 4.0, .log_stddev = 1.0, .min_len = 10, .max_len = 100};
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int len = dist.Sample(rng);
    EXPECT_GE(len, 10);
    EXPECT_LE(len, 100);
  }
}

TEST(Generator, RequestsSortedWithDenseIds) {
  TraceConfig trace;
  trace.duration = 50.0;
  trace.mean_rps = 4.0;
  const std::vector<Request> reqs =
      BuildWorkload(Cats(), RealShapedArrivals(trace), WorkloadConfig{});
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].id, static_cast<RequestId>(i));
    if (i > 0) {
      EXPECT_GE(reqs[i].arrival, reqs[i - 1].arrival);
    }
  }
}

TEST(Generator, MixProportionsApproximatelyRespected) {
  TraceConfig trace;
  trace.duration = 3000.0;
  trace.mean_rps = 4.0;
  WorkloadConfig config;
  config.mix = {0.6, 0.2, 0.2};
  const std::vector<Request> reqs = BuildWorkload(Cats(), PoissonArrivals(trace), config);
  std::array<int, kNumCategories> counts = {0, 0, 0};
  for (const Request& r : reqs) {
    ++counts[static_cast<size_t>(r.category)];
  }
  const double n = static_cast<double>(reqs.size());
  EXPECT_NEAR(counts[0] / n, 0.6, 0.03);
  EXPECT_NEAR(counts[1] / n, 0.2, 0.03);
  EXPECT_NEAR(counts[2] / n, 0.2, 0.03);
}

TEST(Generator, DegenerateMixProducesSingleCategory) {
  TraceConfig trace;
  trace.duration = 50.0;
  trace.mean_rps = 4.0;
  WorkloadConfig config;
  config.mix = {0.0, 1.0, 0.0};
  const std::vector<Request> reqs = BuildWorkload(Cats(), PoissonArrivals(trace), config);
  for (const Request& r : reqs) {
    EXPECT_EQ(r.category, kCatChat);
  }
}

TEST(Generator, OutputLengthAtLeastTwo) {
  // The TPOT denominator (output_len - 1) must never be zero.
  TraceConfig trace;
  trace.duration = 500.0;
  trace.mean_rps = 4.0;
  const std::vector<Request> reqs =
      BuildWorkload(Cats(), PoissonArrivals(trace), WorkloadConfig{});
  for (const Request& r : reqs) {
    EXPECT_GE(r.target_output_len, 2);
    EXPECT_GE(r.prompt_len, 1);
  }
}

TEST(Generator, SlosMatchCategory) {
  TraceConfig trace;
  trace.duration = 100.0;
  trace.mean_rps = 4.0;
  const std::vector<CategorySpec> cats = Cats();
  const std::vector<Request> reqs =
      BuildWorkload(cats, PoissonArrivals(trace), WorkloadConfig{});
  for (const Request& r : reqs) {
    EXPECT_EQ(r.tpot_slo, cats[static_cast<size_t>(r.category)].tpot_slo);
  }
}

TEST(Generator, StreamSeedsUnique) {
  TraceConfig trace;
  trace.duration = 100.0;
  trace.mean_rps = 4.0;
  const std::vector<Request> reqs =
      BuildWorkload(Cats(), PoissonArrivals(trace), WorkloadConfig{});
  for (size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_NE(reqs[i].stream_seed, reqs[i - 1].stream_seed);
  }
}

TEST(Generator, BurstyWorkloadCoversAllCategories) {
  std::array<BurstSpec, kNumCategories> bursts;
  bursts.fill(BurstSpec{.base_rps = 1.0, .peak_rps = 3.0, .peak_phase = 0.5, .peak_width = 0.1});
  const std::vector<Request> reqs = BuildBurstyWorkload(Cats(), bursts, 200.0, 5);
  std::array<int, kNumCategories> counts = {0, 0, 0};
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].id, static_cast<RequestId>(i));
    ++counts[static_cast<size_t>(reqs[i].category)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 0);
  }
}

// --- streaming generation ---------------------------------------------------

TEST(Stream, LazyRealTraceMatchesBatchBuilderExactly) {
  // The stream interleaves trace-RNG and workload-RNG draws instead of
  // consuming them phase-by-phase, but each generator's own sequence is
  // unchanged — so the lazy stream reproduces BuildWorkload bit-for-bit.
  RealTraceStreamConfig config;
  config.trace.duration = 100.0;
  config.trace.mean_rps = 4.0;
  config.trace.seed = 42;
  config.workload.mix = {0.5, 0.3, 0.2};
  config.workload.seed = 11;
  auto stream = MakeRealTraceStream(Cats(), config);
  const std::vector<Request> lazy = Materialize(*stream);

  WorkloadConfig mix;
  mix.mix = config.workload.mix;
  mix.seed = config.workload.seed;
  const std::vector<Request> batch = BuildWorkload(Cats(), RealShapedArrivals(config.trace), mix);

  ASSERT_EQ(lazy.size(), batch.size());
  ASSERT_FALSE(lazy.empty());
  for (size_t i = 0; i < lazy.size(); ++i) {
    EXPECT_EQ(lazy[i].id, batch[i].id);
    EXPECT_EQ(lazy[i].arrival, batch[i].arrival);
    EXPECT_EQ(lazy[i].category, batch[i].category);
    EXPECT_EQ(lazy[i].prompt_len, batch[i].prompt_len);
    EXPECT_EQ(lazy[i].target_output_len, batch[i].target_output_len);
    EXPECT_EQ(lazy[i].stream_seed, batch[i].stream_seed);
    EXPECT_EQ(lazy[i].tpot_slo, batch[i].tpot_slo);
  }
}

TEST(Stream, MmppStreamSortedDenseAndDeterministic) {
  MmppStreamConfig config;
  config.mmpp.state_rps = {0.5, 8.0};
  config.mmpp.mean_sojourn_s = {20.0, 5.0};
  config.duration = 500.0;
  config.trace_seed = 41;
  auto a = MakeMmppStream(Cats(), config);
  auto b = MakeMmppStream(Cats(), config);
  const std::vector<Request> first = Materialize(*a);
  const std::vector<Request> second = Materialize(*b);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, static_cast<RequestId>(i));
    EXPECT_EQ(first[i].arrival, second[i].arrival);
    EXPECT_EQ(first[i].category, second[i].category);
    EXPECT_EQ(first[i].prompt_len, second[i].prompt_len);
    if (i > 0) {
      EXPECT_GE(first[i].arrival, first[i - 1].arrival);
    }
  }
}

TEST(Stream, MmppStreamExactCountsUnderFixedSeed) {
  MmppStreamConfig config;
  config.mmpp.state_rps = {0.5, 8.0};
  config.mmpp.mean_sojourn_s = {20.0, 5.0};
  config.duration = 500.0;
  config.trace_seed = 41;
  auto stream = MakeMmppStream(Cats(), config);
  const std::vector<Request> reqs = Materialize(*stream);
  ASSERT_EQ(reqs.size(), 840u);
  std::array<int, kNumCategories> counts = {0, 0, 0};
  for (const Request& r : reqs) {
    ++counts[static_cast<size_t>(r.category)];
  }
  // The {0.6, 0.2, 0.2} default mix under seed 7 sampling.
  EXPECT_EQ(counts[0], 496);
  EXPECT_EQ(counts[1], 170);
  EXPECT_EQ(counts[2], 174);
}

TEST(Stream, ChurnMixDriftsFromStartToEnd) {
  ChurnStreamConfig config;
  config.duration = 3000.0;
  config.mean_rps = 2.0;
  config.trace_seed = 19;
  auto stream = MakeChurnStream(Cats(), config);
  const std::vector<Request> reqs = Materialize(*stream);
  ASSERT_GT(reqs.size(), 1000u);
  std::array<int, kNumCategories> early = {0, 0, 0};
  std::array<int, kNumCategories> late = {0, 0, 0};
  int early_n = 0;
  int late_n = 0;
  for (const Request& r : reqs) {
    if (r.arrival < 1000.0) {
      ++early[static_cast<size_t>(r.category)];
      ++early_n;
    } else if (r.arrival >= 2000.0) {
      ++late[static_cast<size_t>(r.category)];
      ++late_n;
    }
  }
  // Start mix {0.8, 0.1, 0.1} drifting to {0.1, 0.1, 0.8}: the first third
  // averages ~2/3 coding, the last third ~2/3 summarization.
  EXPECT_NEAR(static_cast<double>(early[0]) / early_n, 0.68, 0.05);
  EXPECT_NEAR(static_cast<double>(early[2]) / early_n, 0.22, 0.05);
  EXPECT_NEAR(static_cast<double>(late[0]) / late_n, 0.22, 0.05);
  EXPECT_NEAR(static_cast<double>(late[2]) / late_n, 0.68, 0.05);
}

TEST(Stream, ChurnExactCountsUnderFixedSeed) {
  ChurnStreamConfig config;
  config.duration = 3000.0;
  config.mean_rps = 2.0;
  config.trace_seed = 19;
  auto stream = MakeChurnStream(Cats(), config);
  const std::vector<Request> reqs = Materialize(*stream);
  ASSERT_EQ(reqs.size(), 5910u);
  std::array<int, kNumCategories> counts = {0, 0, 0};
  for (const Request& r : reqs) {
    ++counts[static_cast<size_t>(r.category)];
  }
  EXPECT_EQ(counts[0], 2658);
  EXPECT_EQ(counts[1], 601);
  EXPECT_EQ(counts[2], 2651);
}

TEST(Stream, MaxRequestsCapsEmission) {
  ChurnStreamConfig config;
  config.duration = 1e9;
  config.mean_rps = 50.0;
  config.max_requests = 10;
  auto stream = MakeChurnStream(Cats(), config);
  EXPECT_FALSE(stream->Exhausted());
  const std::vector<Request> reqs = Materialize(*stream);
  EXPECT_EQ(reqs.size(), 10u);
  EXPECT_TRUE(stream->Exhausted());
  EXPECT_EQ(stream->Peek(), nullptr);
  EXPECT_EQ(stream->emitted(), 10u);
}

TEST(Stream, PeekIsStableAndMatchesNext) {
  DiurnalStreamConfig config;
  config.duration = 50.0;
  config.mean_rps = 2.0;
  auto stream = MakeDiurnalStream(Cats(), config);
  while (!stream->Exhausted()) {
    const Request* peeked = stream->Peek();
    ASSERT_NE(peeked, nullptr);
    const RequestId id = peeked->id;
    const SimTime arrival = peeked->arrival;
    // Peeking again must not advance generation.
    EXPECT_EQ(stream->Peek()->id, id);
    const Request next = stream->Next();
    EXPECT_EQ(next.id, id);
    EXPECT_EQ(next.arrival, arrival);
  }
}

TEST(Generator, DeterministicForSeed) {
  TraceConfig trace;
  trace.duration = 60.0;
  trace.mean_rps = 3.0;
  WorkloadConfig config;
  config.seed = 11;
  const std::vector<Request> a = BuildWorkload(Cats(), PoissonArrivals(trace), config);
  const std::vector<Request> b = BuildWorkload(Cats(), PoissonArrivals(trace), config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].category, b[i].category);
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
    EXPECT_EQ(a[i].target_output_len, b[i].target_output_len);
  }
}

}  // namespace
}  // namespace adaserve
