#include "src/workload/generator.h"

#include <gtest/gtest.h>

#include <array>

namespace adaserve {
namespace {

std::vector<CategorySpec> Cats() { return DefaultCategories(/*baseline=*/0.025); }

TEST(Categories, Table2SlosResolved) {
  const std::vector<CategorySpec> cats = Cats();
  ASSERT_EQ(cats.size(), static_cast<size_t>(kNumCategories));
  EXPECT_NEAR(cats[kCatCoding].tpot_slo, 1.2 * 0.025, 1e-12);
  EXPECT_NEAR(cats[kCatChat].tpot_slo, 0.050, 1e-12);
  EXPECT_NEAR(cats[kCatSummarization].tpot_slo, 0.150, 1e-12);
}

TEST(Categories, SloScaleAppliesToCat1Only) {
  CategoryConfig config;
  config.cat1_slo_scale = 0.6;
  const std::vector<CategorySpec> cats = DefaultCategories(0.025, config);
  EXPECT_NEAR(cats[kCatCoding].tpot_slo, 0.6 * 0.025, 1e-12);
  EXPECT_NEAR(cats[kCatChat].tpot_slo, 0.050, 1e-12);
}

TEST(Categories, SummarizationHasLongestPrompts) {
  const std::vector<CategorySpec> cats = Cats();
  EXPECT_GT(cats[kCatSummarization].prompt_len.log_mean, cats[kCatCoding].prompt_len.log_mean);
  EXPECT_GT(cats[kCatSummarization].prompt_len.log_mean, cats[kCatChat].prompt_len.log_mean);
}

TEST(LengthDist, SamplesWithinBounds) {
  LengthDist dist{.log_mean = 4.0, .log_stddev = 1.0, .min_len = 10, .max_len = 100};
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int len = dist.Sample(rng);
    EXPECT_GE(len, 10);
    EXPECT_LE(len, 100);
  }
}

TEST(Generator, RequestsSortedWithDenseIds) {
  TraceConfig trace;
  trace.duration = 50.0;
  trace.mean_rps = 4.0;
  const std::vector<Request> reqs =
      BuildWorkload(Cats(), RealShapedArrivals(trace), WorkloadConfig{});
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].id, static_cast<RequestId>(i));
    if (i > 0) {
      EXPECT_GE(reqs[i].arrival, reqs[i - 1].arrival);
    }
  }
}

TEST(Generator, MixProportionsApproximatelyRespected) {
  TraceConfig trace;
  trace.duration = 3000.0;
  trace.mean_rps = 4.0;
  WorkloadConfig config;
  config.mix = {0.6, 0.2, 0.2};
  const std::vector<Request> reqs = BuildWorkload(Cats(), PoissonArrivals(trace), config);
  std::array<int, kNumCategories> counts = {0, 0, 0};
  for (const Request& r : reqs) {
    ++counts[static_cast<size_t>(r.category)];
  }
  const double n = static_cast<double>(reqs.size());
  EXPECT_NEAR(counts[0] / n, 0.6, 0.03);
  EXPECT_NEAR(counts[1] / n, 0.2, 0.03);
  EXPECT_NEAR(counts[2] / n, 0.2, 0.03);
}

TEST(Generator, DegenerateMixProducesSingleCategory) {
  TraceConfig trace;
  trace.duration = 50.0;
  trace.mean_rps = 4.0;
  WorkloadConfig config;
  config.mix = {0.0, 1.0, 0.0};
  const std::vector<Request> reqs = BuildWorkload(Cats(), PoissonArrivals(trace), config);
  for (const Request& r : reqs) {
    EXPECT_EQ(r.category, kCatChat);
  }
}

TEST(Generator, OutputLengthAtLeastTwo) {
  // The TPOT denominator (output_len - 1) must never be zero.
  TraceConfig trace;
  trace.duration = 500.0;
  trace.mean_rps = 4.0;
  const std::vector<Request> reqs =
      BuildWorkload(Cats(), PoissonArrivals(trace), WorkloadConfig{});
  for (const Request& r : reqs) {
    EXPECT_GE(r.target_output_len, 2);
    EXPECT_GE(r.prompt_len, 1);
  }
}

TEST(Generator, SlosMatchCategory) {
  TraceConfig trace;
  trace.duration = 100.0;
  trace.mean_rps = 4.0;
  const std::vector<CategorySpec> cats = Cats();
  const std::vector<Request> reqs =
      BuildWorkload(cats, PoissonArrivals(trace), WorkloadConfig{});
  for (const Request& r : reqs) {
    EXPECT_EQ(r.tpot_slo, cats[static_cast<size_t>(r.category)].tpot_slo);
  }
}

TEST(Generator, StreamSeedsUnique) {
  TraceConfig trace;
  trace.duration = 100.0;
  trace.mean_rps = 4.0;
  const std::vector<Request> reqs =
      BuildWorkload(Cats(), PoissonArrivals(trace), WorkloadConfig{});
  for (size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_NE(reqs[i].stream_seed, reqs[i - 1].stream_seed);
  }
}

TEST(Generator, BurstyWorkloadCoversAllCategories) {
  std::array<BurstSpec, kNumCategories> bursts;
  bursts.fill(BurstSpec{.base_rps = 1.0, .peak_rps = 3.0, .peak_phase = 0.5, .peak_width = 0.1});
  const std::vector<Request> reqs = BuildBurstyWorkload(Cats(), bursts, 200.0, 5);
  std::array<int, kNumCategories> counts = {0, 0, 0};
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].id, static_cast<RequestId>(i));
    ++counts[static_cast<size_t>(reqs[i].category)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 0);
  }
}

TEST(Generator, DeterministicForSeed) {
  TraceConfig trace;
  trace.duration = 60.0;
  trace.mean_rps = 3.0;
  WorkloadConfig config;
  config.seed = 11;
  const std::vector<Request> a = BuildWorkload(Cats(), PoissonArrivals(trace), config);
  const std::vector<Request> b = BuildWorkload(Cats(), PoissonArrivals(trace), config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].category, b[i].category);
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
    EXPECT_EQ(a[i].target_output_len, b[i].target_output_len);
  }
}

}  // namespace
}  // namespace adaserve
