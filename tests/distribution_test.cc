#include "src/model/distribution.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace adaserve {
namespace {

SparseDist MakeDist(std::vector<Token> tokens, std::vector<double> weights) {
  return SparseDist::FromWeights(tokens, weights);
}

TEST(SparseDist, NormalisesWeights) {
  const SparseDist d = MakeDist({1, 2, 3}, {1.0, 2.0, 1.0});
  EXPECT_NEAR(d.TotalMass(), 1.0, 1e-12);
  EXPECT_NEAR(d.ProbOf(2), 0.5, 1e-12);
  EXPECT_NEAR(d.ProbOf(1), 0.25, 1e-12);
}

TEST(SparseDist, EntriesSortedDescending) {
  const SparseDist d = MakeDist({5, 6, 7}, {0.1, 0.7, 0.2});
  EXPECT_EQ(d.entry(0).token, 6);
  EXPECT_EQ(d.entry(1).token, 7);
  EXPECT_EQ(d.entry(2).token, 5);
}

TEST(SparseDist, CoalescesDuplicateTokens) {
  const SparseDist d = MakeDist({1, 1, 2}, {0.25, 0.25, 0.5});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_NEAR(d.ProbOf(1), 0.5, 1e-12);
}

TEST(SparseDist, DropsZeroWeights) {
  const SparseDist d = MakeDist({1, 2, 3}, {1.0, 0.0, 1.0});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.ProbOf(2), 0.0);
}

TEST(SparseDist, ProbOfMissingTokenIsZero) {
  const SparseDist d = MakeDist({1}, {1.0});
  EXPECT_EQ(d.ProbOf(99), 0.0);
}

TEST(SparseDist, ArgMaxBreaksTiesTowardSmallerToken) {
  const SparseDist d = MakeDist({9, 3}, {0.5, 0.5});
  EXPECT_EQ(d.ArgMax(), 3);
}

TEST(SparseDist, PointMass) {
  const SparseDist d = SparseDist::PointMass(17);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.ArgMax(), 17);
  EXPECT_EQ(d.ProbOf(17), 1.0);
  Rng rng(1);
  EXPECT_EQ(d.Sample(rng), 17);
}

TEST(SparseDist, SampleFrequenciesMatchProbs) {
  const SparseDist d = MakeDist({1, 2, 3}, {0.6, 0.3, 0.1});
  Rng rng(77);
  std::map<Token, int> counts;
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) {
    ++counts[d.Sample(rng)];
  }
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.6, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(kN), 0.1, 0.01);
}

TEST(SparseDist, EntropyOfUniform) {
  const SparseDist d = MakeDist({1, 2, 3, 4}, {1, 1, 1, 1});
  EXPECT_NEAR(d.Entropy(), std::log(4.0), 1e-12);
}

TEST(SparseDist, EntropyOfPointMassIsZero) {
  EXPECT_NEAR(SparseDist::PointMass(1).Entropy(), 0.0, 1e-12);
}

TEST(SparseDist, ResidualSubtractsAndRenormalises) {
  // p = {a: .5, b: .5}, q = {a: .5, b: .25, c: .25}
  // max(p-q, 0) = {a: 0, b: .25} -> normalised {b: 1.0}.
  const SparseDist p = MakeDist({1, 2}, {0.5, 0.5});
  const SparseDist q = MakeDist({1, 2, 3}, {0.5, 0.25, 0.25});
  const SparseDist r = p.Residual(q);
  EXPECT_NEAR(r.ProbOf(2), 1.0, 1e-12);
  EXPECT_EQ(r.ProbOf(1), 0.0);
}

TEST(SparseDist, ResidualOfIdenticalDistributionsFallsBack) {
  const SparseDist p = MakeDist({1, 2}, {0.5, 0.5});
  const SparseDist r = p.Residual(p);
  // Degenerate case (acceptance prob 1): returns p unchanged.
  EXPECT_NEAR(r.ProbOf(1), 0.5, 1e-12);
}

TEST(SparseDist, ResidualSupportIsSubsetOfP) {
  const SparseDist p = MakeDist({1, 2}, {0.7, 0.3});
  const SparseDist q = MakeDist({3, 4}, {0.5, 0.5});
  const SparseDist r = p.Residual(q);
  EXPECT_NEAR(r.ProbOf(1), 0.7, 1e-12);
  EXPECT_EQ(r.ProbOf(3), 0.0);
}

TEST(SparseDist, TemperatureOneIsIdentity) {
  const SparseDist p = MakeDist({1, 2}, {0.7, 0.3});
  const SparseDist t = p.WithTemperature(1.0);
  EXPECT_NEAR(t.ProbOf(1), 0.7, 1e-12);
}

TEST(SparseDist, LowTemperatureSharpens) {
  const SparseDist p = MakeDist({1, 2}, {0.7, 0.3});
  const SparseDist t = p.WithTemperature(0.25);
  EXPECT_GT(t.ProbOf(1), 0.9);
  EXPECT_EQ(t.ArgMax(), p.ArgMax());
}

TEST(SparseDist, HighTemperatureFlattens) {
  const SparseDist p = MakeDist({1, 2}, {0.7, 0.3});
  const SparseDist t = p.WithTemperature(10.0);
  EXPECT_LT(t.ProbOf(1), 0.6);
  EXPECT_GT(t.ProbOf(2), 0.4);
}

TEST(Mix, WeightedAverageOverUnionSupport) {
  const SparseDist a = MakeDist({1, 2}, {0.5, 0.5});
  const SparseDist b = MakeDist({2, 3}, {0.5, 0.5});
  const SparseDist m = Mix(a, b, 0.5);
  EXPECT_NEAR(m.ProbOf(1), 0.25, 1e-12);
  EXPECT_NEAR(m.ProbOf(2), 0.5, 1e-12);
  EXPECT_NEAR(m.ProbOf(3), 0.25, 1e-12);
}

TEST(Mix, ExtremeWeightsRecoverInputs) {
  const SparseDist a = MakeDist({1}, {1.0});
  const SparseDist b = MakeDist({2}, {1.0});
  EXPECT_NEAR(Mix(a, b, 1.0).ProbOf(1), 1.0, 1e-12);
  EXPECT_NEAR(Mix(a, b, 0.0).ProbOf(2), 1.0, 1e-12);
}

// Property sweep: residual mass of p w.r.t. q equals
// sum(max(p - q, 0)) / that sum, and total mass stays 1.
class ResidualPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ResidualPropertySweep, ResidualIsNormalisedAndCorrect) {
  Rng rng(GetParam());
  std::vector<Token> tokens;
  std::vector<double> wp;
  std::vector<double> wq;
  for (Token t = 0; t < 12; ++t) {
    tokens.push_back(t);
    wp.push_back(rng.Uniform() + 0.01);
    wq.push_back(rng.Uniform() + 0.01);
  }
  const SparseDist p = SparseDist::FromWeights(tokens, wp);
  const SparseDist q = SparseDist::FromWeights(tokens, wq);
  const SparseDist r = p.Residual(q);
  EXPECT_NEAR(r.TotalMass(), 1.0, 1e-9);
  // Verify proportionality on one token with positive residual.
  double total = 0.0;
  for (Token t = 0; t < 12; ++t) {
    total += std::max(p.ProbOf(t) - q.ProbOf(t), 0.0);
  }
  for (Token t = 0; t < 12; ++t) {
    const double expected = std::max(p.ProbOf(t) - q.ProbOf(t), 0.0) / total;
    EXPECT_NEAR(r.ProbOf(t), expected, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResidualPropertySweep, ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace adaserve
