// Coverage for the shared test fixtures themselves (tests/test_util.h):
// every other suite builds on these, so their invariants are load-bearing.
#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace adaserve {
namespace {

TEST(TestUtil, UniformWorkloadArrivalsAreMonotoneAndSpread) {
  Experiment exp(TestSetup());
  const int n = 20;
  const double spread_s = 5.0;
  const std::vector<Request> reqs = UniformWorkload(exp, n, kCatChat, spread_s);
  ASSERT_EQ(reqs.size(), static_cast<size_t>(n));
  EXPECT_EQ(reqs.front().arrival, 0.0);
  for (size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_GT(reqs[i].arrival, reqs[i - 1].arrival) << "arrival not strictly increasing at " << i;
  }
  EXPECT_LT(reqs.back().arrival, spread_s);
  // Sequential ids, uniform spacing.
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].id, static_cast<RequestId>(i));
    EXPECT_DOUBLE_EQ(reqs[i].arrival, spread_s * static_cast<double>(i) / n);
  }
}

TEST(TestUtil, UniformWorkloadSlosMatchCategoryTable) {
  Experiment exp(TestSetup());
  const std::vector<CategorySpec> cats = exp.Categories();
  for (int category = 0; category < kNumCategories; ++category) {
    const std::vector<Request> reqs = UniformWorkload(exp, 5, category, 1.0);
    for (const Request& req : reqs) {
      EXPECT_EQ(req.category, category);
      EXPECT_EQ(req.tpot_slo, cats[static_cast<size_t>(category)].tpot_slo)
          << "category " << category;
      EXPECT_GT(req.tpot_slo, 0.0);
    }
  }
}

TEST(TestUtil, UniformWorkloadLengthsAndSeeds) {
  Experiment exp(TestSetup());
  const std::vector<Request> reqs = UniformWorkload(exp, 8, kCatCoding, 2.0,
                                                    /*prompt_len=*/48, /*output_len=*/12);
  std::vector<uint64_t> seeds;
  for (const Request& req : reqs) {
    EXPECT_EQ(req.prompt_len, 48);
    EXPECT_EQ(req.target_output_len, 12);
    seeds.push_back(req.stream_seed);
  }
  // Stream seeds must be distinct or synthetic token streams collide.
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(TestUtil, SmallMixedWorkloadCoversCategoriesSorted) {
  Experiment exp(TestSetup());
  const std::vector<Request> reqs = SmallMixedWorkload(exp);
  ASSERT_GT(reqs.size(), 0u);
  EXPECT_TRUE(std::is_sorted(reqs.begin(), reqs.end(),
                             [](const Request& a, const Request& b) {
                               return a.arrival < b.arrival;
                             }));
  for (const Request& req : reqs) {
    EXPECT_GE(req.category, 0);
    EXPECT_LT(req.category, kNumCategories);
    EXPECT_GT(req.prompt_len, 0);
    EXPECT_GT(req.target_output_len, 0);
  }
}

TEST(TestUtil, TestSetupRunsAnEndToEndEngineTick) {
  // TestSetup must be able to drive the real engine loop, not just
  // construct: serve a tiny workload to completion through AdaServe.
  Experiment exp(TestSetup());
  std::vector<Request> workload = UniformWorkload(exp, 4, kCatChat, 0.5);
  auto scheduler = MakeScheduler(SystemKind::kAdaServe);
  const EngineResult result = exp.Run(*scheduler, std::move(workload));
  EXPECT_EQ(result.metrics.finished, 4);
  EXPECT_GT(result.iterations.size(), 0u);
  EXPECT_GT(result.end_time, 0.0);
  for (const Request& req : result.requests) {
    EXPECT_EQ(req.state, RequestState::kFinished);
    EXPECT_EQ(static_cast<int>(req.output.size()), req.target_output_len);
  }
}

}  // namespace
}  // namespace adaserve
