// SLO-aware admission priority and tick-native edge cases.
//
// Covers the tick-native default's new policy surface: per-category
// admission priorities (PriorityPolicy::kSloUrgentFirst) at the boundary
// and mid-tick admission phases, the SLO-aware evict-for-admission victim
// policy, and the tick edge cases around prefill_burst = 0, eviction
// budgets smaller than the victim set, and arrivals landing exactly on a
// phase boundary. The headline test is the paper's claim: under a bursty
// mixed-category workload, SLO-aware admission gives urgent requests
// strictly lower mean TTFT than FIFO admission.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "tests/test_util.h"

namespace adaserve {
namespace {

// Index of the tightest-TPOT-SLO category of this experiment — what the
// kSloUrgentFirst policy treats as most urgent.
int UrgentCategory(const Experiment& exp) {
  const std::vector<CategorySpec> cats = exp.Categories();
  int urgent = 0;
  for (int c = 1; c < kNumCategories; ++c) {
    if (cats[static_cast<size_t>(c)].tpot_slo < cats[static_cast<size_t>(urgent)].tpot_slo) {
      urgent = c;
    }
  }
  return urgent;
}

// --- pool/phase-level fixtures ---

Request CategorizedRequest(RequestId id, int category, double tpot_slo, int prompt_len = 20,
                           int output_len = 4, SimTime arrival = 0.0) {
  Request req;
  req.id = id;
  req.category = category;
  req.tpot_slo = tpot_slo;
  req.arrival = arrival;
  req.prompt_len = prompt_len;
  req.target_output_len = output_len;
  req.stream_seed = static_cast<uint64_t>(id) ^ 0xabcd;
  return req;
}

constexpr double kUrgentSlo = 0.02;
constexpr double kRelaxedSlo = 0.15;

// Minimal ServingContext for exercising the admission phases directly:
// only the tick policy matters to them (no models, no arrival stream).
// max_evictions defaults to 0 so admission-only tests cannot evict.
ServingContext AdmitContext(int max_active, PriorityPolicy policy, int max_evictions = 0) {
  ServingContext ctx;
  ctx.tick.max_active = max_active;
  ctx.tick.admission_priority = policy;
  ctx.tick.max_evictions = max_evictions;
  return ctx;
}

TEST(PriorityAdmission, SloRankerAdmitsUrgentBeforeEarlierRelaxedArrivals) {
  KvCache kv(10000.0, 1.0, 16);
  RequestPool pool(&kv);
  // Two relaxed requests arrived first, one urgent last.
  pool.AddArrival(CategorizedRequest(0, kCatSummarization, kRelaxedSlo));
  pool.AddArrival(CategorizedRequest(1, kCatSummarization, kRelaxedSlo));
  pool.AddArrival(CategorizedRequest(2, kCatCoding, kUrgentSlo));

  ServingContext ctx = AdmitContext(/*max_active=*/1,  // One slot: order is observable.
                                    PriorityPolicy::kSloUrgentFirst);
  EXPECT_EQ(TickAdmitPhase(0.0, pool, ctx), 1);
  EXPECT_EQ(pool.active().front(), 2) << "urgent arrival must jump the queue";
  // FIFO would have admitted the oldest relaxed request instead.
  EXPECT_EQ(pool.Get(0).state, RequestState::kQueued);
}

TEST(PriorityAdmission, FifoPolicyKeepsArrivalOrder) {
  KvCache kv(10000.0, 1.0, 16);
  RequestPool pool(&kv);
  pool.AddArrival(CategorizedRequest(0, kCatSummarization, kRelaxedSlo));
  pool.AddArrival(CategorizedRequest(1, kCatCoding, kUrgentSlo));

  ServingContext ctx = AdmitContext(/*max_active=*/1, PriorityPolicy::kFifo);
  EXPECT_EQ(TickAdmitPhase(0.0, pool, ctx), 1);
  EXPECT_EQ(pool.active().front(), 0);
}

TEST(PriorityAdmission, EqualSlosBreakTiesByArrivalOrder) {
  KvCache kv(10000.0, 1.0, 16);
  RequestPool pool(&kv);
  pool.AddArrival(CategorizedRequest(0, kCatChat, kUrgentSlo));
  pool.AddArrival(CategorizedRequest(1, kCatChat, kUrgentSlo));

  ServingContext ctx = AdmitContext(/*max_active=*/1, PriorityPolicy::kSloUrgentFirst);
  EXPECT_EQ(TickAdmitPhase(0.0, pool, ctx), 1);
  EXPECT_EQ(pool.active().front(), 0) << "ranked admission must be stable";
}

TEST(SloAwareEviction, UrgentHeadEvictsLeastUrgentPrefillingVictim) {
  // 64-token cache: two relaxed 20+4 requests (32 rounded blocks each)
  // fill it; the urgent head needs one of them recomputed.
  KvCache kv(64.0, 1.0, 16);
  RequestPool pool(&kv);
  pool.AddArrival(CategorizedRequest(0, kCatChat, 0.05));
  pool.AddArrival(CategorizedRequest(1, kCatSummarization, kRelaxedSlo));
  pool.AddArrival(CategorizedRequest(2, kCatCoding, kUrgentSlo));
  ASSERT_EQ(pool.AdmitUpTo(10), 2);

  int evicted = 0;
  const RequestId id = pool.AdmitWithEviction(
      10, /*max_evictions=*/2, &evicted, PriorityRanker(PriorityPolicy::kSloUrgentFirst),
      PriorityVictimSelector(PriorityPolicy::kSloUrgentFirst));
  EXPECT_EQ(id, 2);
  EXPECT_EQ(evicted, 1);
  // The loosest-SLO prefilling request lost, not the tighter chat one.
  EXPECT_EQ(pool.Get(1).state, RequestState::kQueued);
  EXPECT_EQ(pool.Get(1).prefill_progress, 0) << "recompute semantics";
  EXPECT_EQ(pool.Get(0).state, RequestState::kPrefilling);
}

TEST(SloAwareEviction, NonUrgentHeadCannotEvict) {
  KvCache kv(64.0, 1.0, 16);
  RequestPool pool(&kv);
  pool.AddArrival(CategorizedRequest(0, kCatChat, 0.05));
  pool.AddArrival(CategorizedRequest(1, kCatChat, 0.05));
  pool.AddArrival(CategorizedRequest(2, kCatSummarization, kRelaxedSlo));
  ASSERT_EQ(pool.AdmitUpTo(10), 2);

  int evicted = 0;
  const RequestId id = pool.AdmitWithEviction(
      10, /*max_evictions=*/4, &evicted, PriorityRanker(PriorityPolicy::kSloUrgentFirst),
      PriorityVictimSelector(PriorityPolicy::kSloUrgentFirst));
  EXPECT_EQ(id, kInvalidRequestId);
  EXPECT_EQ(evicted, 0) << "a relaxed head must not recompute tighter-SLO prefills";
  EXPECT_EQ(pool.Get(0).state, RequestState::kPrefilling);
  EXPECT_EQ(pool.Get(1).state, RequestState::kPrefilling);
}

TEST(SloAwareEviction, RunningRequestsAreNeverVictims) {
  KvCache kv(64.0, 1.0, 16);
  RequestPool pool(&kv);
  // A relaxed request that already produced output (running) and a
  // relaxed prefilling one; only the latter is evictable.
  pool.AddArrival(CategorizedRequest(0, kCatSummarization, kRelaxedSlo));
  pool.AddArrival(CategorizedRequest(1, kCatSummarization, kRelaxedSlo));
  pool.AddArrival(CategorizedRequest(2, kCatCoding, kUrgentSlo, /*prompt_len=*/40,
                                     /*output_len=*/8));
  ASSERT_EQ(pool.AdmitUpTo(10), 2);
  pool.AdvancePrefill(0, 20);
  pool.CommitToken(0, 1, 0.1);  // r0 is running with committed output.

  int evicted = 0;
  const RequestId id = pool.AdmitWithEviction(
      10, /*max_evictions=*/4, &evicted, PriorityRanker(PriorityPolicy::kSloUrgentFirst),
      PriorityVictimSelector(PriorityPolicy::kSloUrgentFirst));
  // Evicting r1 frees 32 of the 48 the head needs — not enough, and r0 is
  // untouchable, so the head stays queued but the one legal eviction ran.
  EXPECT_EQ(id, kInvalidRequestId);
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(pool.Get(0).state, RequestState::kRunning);
  EXPECT_EQ(pool.Get(1).state, RequestState::kQueued);
}

TEST(SloAwareEviction, EvictionBudgetSmallerThanVictimSetStopsEarly) {
  // The urgent head needs both relaxed prefills gone (48 tokens into a
  // 64-token cache), but the per-tick eviction budget only allows one.
  KvCache kv(64.0, 1.0, 16);
  RequestPool pool(&kv);
  // The relaxed requests are already admitted (prefilling) when the
  // urgent one arrives — the fresh urgent head can only get in by
  // evicting BOTH of them, but the tick's budget allows one eviction.
  pool.AddArrival(CategorizedRequest(0, kCatSummarization, kRelaxedSlo));
  pool.AddArrival(CategorizedRequest(1, kCatSummarization, kRelaxedSlo));
  ASSERT_EQ(pool.AdmitUpTo(10), 2);
  pool.AddArrival(CategorizedRequest(2, kCatCoding, kUrgentSlo, /*prompt_len=*/40,
                                     /*output_len=*/8));

  ServingContext ctx = AdmitContext(/*max_active=*/10, PriorityPolicy::kSloUrgentFirst,
                                    /*max_evictions=*/1);
  int evicted = 0;
  const int admitted = TickAdmitPhase(0.0, pool, ctx, &evicted);
  EXPECT_EQ(admitted, 0) << "one eviction frees too little KV for the head";
  EXPECT_EQ(evicted, 1) << "budget caps evictions below the victim set";
  // Head still queued, in front of the one evicted victim.
  ASSERT_EQ(pool.queued().size(), 2u);
  EXPECT_EQ(pool.queued()[0], 2);
  EXPECT_EQ(pool.queued()[1], 1);
  // Next tick, with a fresh eviction budget, the head gets in.
  evicted = 0;
  EXPECT_EQ(TickAdmitPhase(0.0, pool, ctx, &evicted), 1);
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(pool.Get(2).state, RequestState::kPrefilling);
}

TEST(SloAwareEviction, VictimsReadmitInArrivalOrderBehindUrgentHead) {
  // Two relaxed victims evicted for one urgent head: they requeue in
  // arrival order behind the head, and — once capacity returns — ranked
  // admission re-admits them in that same order (equal SLOs tie-break by
  // queue position).
  KvCache kv(96.0, 1.0, 16);
  RequestPool pool(&kv);
  pool.AddArrival(CategorizedRequest(0, kCatSummarization, kRelaxedSlo));
  pool.AddArrival(CategorizedRequest(1, kCatSummarization, kRelaxedSlo));
  pool.AddArrival(CategorizedRequest(2, kCatCoding, kUrgentSlo, /*prompt_len=*/60,
                                     /*output_len=*/20));  // 80 tokens: needs both slots
  ASSERT_EQ(pool.AdmitUpTo(10), 2);

  ServingContext ctx = AdmitContext(/*max_active=*/10, PriorityPolicy::kSloUrgentFirst,
                                    /*max_evictions=*/4);
  int evicted = 0;
  EXPECT_EQ(TickAdmitPhase(0.0, pool, ctx, &evicted), 1);
  EXPECT_EQ(evicted, 2);
  EXPECT_EQ(pool.Get(2).state, RequestState::kPrefilling);
  // Victims wait in arrival order.
  ASSERT_EQ(pool.queued().size(), 2u);
  EXPECT_EQ(pool.queued()[0], 0);
  EXPECT_EQ(pool.queued()[1], 1);
  // Finish the urgent request to free its KV, then re-admit.
  pool.Get(2).prefill_progress = 60;
  pool.Get(2).state = RequestState::kRunning;
  for (int i = 0; i < 20; ++i) {
    pool.CommitToken(2, 1, 0.5 + 0.01 * i);
  }
  ASSERT_EQ(pool.Get(2).state, RequestState::kFinished);
  EXPECT_EQ(pool.AdmitUpTo(10, PriorityRanker(PriorityPolicy::kSloUrgentFirst)), 2);
  ASSERT_EQ(pool.active().size(), 2u);
  EXPECT_EQ(pool.active()[0], 0) << "victims re-admit in arrival order";
  EXPECT_EQ(pool.active()[1], 1);
}

// --- preemptive (pause-style) eviction ---

TEST(PreemptivePause, PauseKeepsPrefillProgressAndResumesWhereItLeftOff) {
  KvCache kv(64.0, 1.0, 16);
  RequestPool pool(&kv);
  pool.AddArrival(CategorizedRequest(0, kCatSummarization, kRelaxedSlo));
  ASSERT_EQ(pool.AdmitUpTo(10), 1);
  pool.AdvancePrefill(0, 12);  // Mid-prefill: 12 of 20 prompt tokens done.
  ASSERT_GT(kv.used_tokens(), 0);

  pool.Pause(0);
  EXPECT_EQ(pool.Get(0).state, RequestState::kPaused);
  EXPECT_EQ(pool.Get(0).prefill_progress, 12) << "pause must keep prompt work";
  EXPECT_EQ(kv.used_tokens(), 0) << "pause swaps the KV out";
  EXPECT_EQ(pool.queued().front(), 0) << "paused request waits at the queue front";

  // Re-admission resumes prefilling from token 12 — recompute would have
  // restarted from 0.
  EXPECT_EQ(pool.TryAdmit(10), 0);
  EXPECT_EQ(pool.Get(0).state, RequestState::kPrefilling);
  EXPECT_EQ(pool.Get(0).prefill_progress, 12) << "resume where it left off";
  pool.AdvancePrefill(0, 8);
  EXPECT_TRUE(pool.Get(0).PrefillDone()) << "only the remaining 8 tokens were owed";
}

TEST(PreemptivePause, UrgentHeadPausesLeastUrgentVictimUnderPausePolicy) {
  // Same KV-pressure shape as the recompute-eviction test, but under
  // kSloUrgentPause: the victim is paused, not recomputed, and the tick
  // counts it as paused rather than evicted.
  KvCache kv(64.0, 1.0, 16);
  RequestPool pool(&kv);
  pool.AddArrival(CategorizedRequest(0, kCatChat, 0.05));
  pool.AddArrival(CategorizedRequest(1, kCatSummarization, kRelaxedSlo));
  ASSERT_EQ(pool.AdmitUpTo(10), 2);
  pool.AdvancePrefill(1, 8);  // The future victim has partial prompt work.
  pool.AddArrival(CategorizedRequest(2, kCatCoding, kUrgentSlo));

  ServingContext ctx = AdmitContext(/*max_active=*/10, PriorityPolicy::kSloUrgentPause,
                                    /*max_evictions=*/2);
  int evicted = 0;
  int paused = 0;
  EXPECT_EQ(TickAdmitPhase(0.0, pool, ctx, &evicted, &paused), 1);
  EXPECT_EQ(evicted, 0) << "pause policy never recompute-evicts";
  EXPECT_EQ(paused, 1);
  EXPECT_EQ(pool.Get(2).state, RequestState::kPrefilling) << "urgent head got in";
  // The loosest-SLO prefilling victim was paused with its progress intact.
  EXPECT_EQ(pool.Get(1).state, RequestState::kPaused);
  EXPECT_EQ(pool.Get(1).prefill_progress, 8) << "no prompt work was lost";
  EXPECT_EQ(pool.Get(0).state, RequestState::kPrefilling) << "tighter-SLO peer untouched";
}

TEST(PreemptivePause, PauseBudgetCapsLikeEvictionsAndVictimsResume) {
  // The urgent head needs both relaxed prefills' KV (48 of 64 tokens) but
  // the per-tick budget allows one pause; the next tick finishes the job
  // and both victims later resume with their progress intact.
  KvCache kv(64.0, 1.0, 16);
  RequestPool pool(&kv);
  pool.AddArrival(CategorizedRequest(0, kCatSummarization, kRelaxedSlo));
  pool.AddArrival(CategorizedRequest(1, kCatSummarization, kRelaxedSlo));
  ASSERT_EQ(pool.AdmitUpTo(10), 2);
  pool.AdvancePrefill(0, 6);
  pool.AdvancePrefill(1, 10);
  pool.AddArrival(CategorizedRequest(2, kCatCoding, kUrgentSlo, /*prompt_len=*/40,
                                     /*output_len=*/8));

  ServingContext ctx = AdmitContext(/*max_active=*/10, PriorityPolicy::kSloUrgentPause,
                                    /*max_evictions=*/1);
  int evicted = 0;
  int paused = 0;
  EXPECT_EQ(TickAdmitPhase(0.0, pool, ctx, &evicted, &paused), 0)
      << "one pause frees too little KV for the head";
  EXPECT_EQ(paused, 1) << "the eviction budget caps pauses identically";
  EXPECT_EQ(evicted, 0);
  paused = 0;
  EXPECT_EQ(TickAdmitPhase(0.0, pool, ctx, &evicted, &paused), 1);
  EXPECT_EQ(paused, 1);
  EXPECT_EQ(pool.Get(2).state, RequestState::kPrefilling);
  // Both victims paused, each with its own partial progress preserved.
  EXPECT_EQ(pool.Get(0).state, RequestState::kPaused);
  EXPECT_EQ(pool.Get(0).prefill_progress, 6);
  EXPECT_EQ(pool.Get(1).state, RequestState::kPaused);
  EXPECT_EQ(pool.Get(1).prefill_progress, 10);
  // Drain the urgent request; the victims resume behind it and finish
  // their prompts having prefilled exactly prompt_len tokens in total.
  pool.Get(2).prefill_progress = 40;
  pool.Get(2).state = RequestState::kRunning;
  for (int i = 0; i < 8; ++i) {
    pool.CommitToken(2, 1, 0.5 + 0.01 * i);
  }
  ASSERT_EQ(pool.Get(2).state, RequestState::kFinished);
  EXPECT_EQ(pool.AdmitUpTo(10, PriorityRanker(PriorityPolicy::kSloUrgentPause)), 2);
  EXPECT_EQ(pool.Get(0).state, RequestState::kPrefilling);
  EXPECT_EQ(pool.Get(0).prefill_progress, 6);
  pool.AdvancePrefill(0, 14);  // 6 + 14 == 20: only the remainder is owed.
  EXPECT_TRUE(pool.Get(0).PrefillDone());
}

// --- tick edge cases ---

class TickEdgeCaseTest : public ::testing::Test {
 protected:
  TickEdgeCaseTest()
      : exp_(TestSetup()),
        kv_(exp_.target_latency().KvCacheBytes(),
            exp_.target_latency().model().KvBytesPerToken()),
        pool_(&kv_),
        rng_(7) {
    ctx_.target = &exp_.target();
    ctx_.draft = &exp_.draft();
    ctx_.target_latency = &exp_.target_latency();
    ctx_.draft_latency = &exp_.draft_latency();
    ctx_.mode = DecodeMode::kStochastic;
    ctx_.rng = &rng_;
    ctx_.tick.max_active = 100;
    ctx_.tick.continuous = true;
  }

  Experiment exp_;
  KvCache kv_;
  RequestPool pool_;
  Rng rng_;
  ServingContext ctx_;
};

TEST_F(TickEdgeCaseTest, UrgentArrivalExactlyOnPhaseBoundaryJoinsSameTick) {
  // A decode phase of exactly 1.0 s: an urgent request whose arrival is
  // exactly the phase's end time must be admitted by the mid-tick phase
  // (arrival <= t is inclusive) and prefilled in the same tick.
  std::vector<Request> arrivals = {
      CategorizedRequest(0, kCatCoding, kUrgentSlo, /*prompt_len=*/16, /*output_len=*/4,
                         /*arrival=*/1.0)};
  size_t next = 0;
  ctx_.pull_arrivals = [&](SimTime t) {
    int pulled = 0;
    while (next < arrivals.size() && arrivals[next].arrival <= t) {
      pool_.AddArrival(arrivals[next++]);
      ++pulled;
    }
    return pulled;
  };
  ctx_.tick.admission_priority = PriorityPolicy::kSloUrgentFirst;
  ctx_.tick.prefill_burst = 16;
  ctx_.verify_budget = 64;
  const TickResult tick = RunContinuousTick(
      0.0, pool_, ctx_, [](SimTime, RequestPool&, ServingContext&) {
        IterationRecord rec;
        rec.duration = 1.0;  // Synthetic phase A ending exactly at the arrival.
        return rec;
      });
  EXPECT_TRUE(tick.MadeProgress());
  EXPECT_EQ(tick.record.admitted, 1) << "boundary-exact arrival must not wait a tick";
  EXPECT_EQ(pool_.Get(0).prefill_progress, 16);
  // One tick later and the arrival would have been a boundary admission;
  // landing exactly on the edge must behave like any mid-tick arrival.
  EXPECT_EQ(tick.record.prefill_tokens, 16);
}

TEST_F(TickEdgeCaseTest, PrefillBurstZeroMeansUncappedPerRequest) {
  // prefill_burst = 0 disables the per-request cap; the phase budget
  // still bounds the pass, and the floor falls back to kBurst.
  std::vector<Request> reqs = {CategorizedRequest(0, kCatChat, 0.05, /*prompt_len=*/300)};
  pool_.AddArrival(reqs[0]);
  pool_.AdmitUpTo(100);
  ctx_.tick.prefill_burst = 0;
  ctx_.verify_budget = 64;
  const TickResult tick = RunContinuousTick(
      0.0, pool_, ctx_, [](SimTime, RequestPool&, ServingContext&) {
        return IterationRecord{};  // Nothing running: decode phase is empty.
      });
  // Budget floor is kBurst (512), burst uncapped: the whole 300-token
  // prompt lands in one pass.
  EXPECT_EQ(tick.record.prefill_tokens, 300);
  EXPECT_TRUE(pool_.Get(0).PrefillDone());
}

TEST_F(TickEdgeCaseTest, PrefillBurstZeroDrainsEndToEnd) {
  EngineConfig engine;
  engine.tick.prefill_burst = 0;
  VllmScheduler scheduler;
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  const EngineResult result = exp_.Run(scheduler, workload, engine);
  EXPECT_EQ(result.metrics.finished, static_cast<int>(workload.size()));
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_GT(rec.duration, 0.0);
  }
}

// --- engine-level policy tests ---

class PriorityPolicyEngineTest : public ::testing::Test {
 protected:
  PriorityPolicyEngineTest() : exp_(TestSetup()) {}

  // Bursty mixed-category stream: ON/OFF arrivals whose ON rate swamps
  // the slot cap, so the admission queue actually backs up and admission
  // ORDER becomes visible in TTFT.
  std::unique_ptr<ArrivalStream> BurstyMixedStream() const {
    MmppStreamConfig config;
    config.mmpp.state_rps = {2.0, 30.0};
    config.mmpp.mean_sojourn_s = {1.5, 1.0};
    config.duration = 8.0;
    config.trace_seed = 11;
    config.mix = {0.4, 0.3, 0.3};
    return MakeMmppStream(exp_.Categories(), config);
  }

  EngineResult RunWithPolicy(Scheduler& scheduler, PriorityPolicy policy) const {
    EngineConfig engine;
    engine.tick.max_active = 8;  // Small slot cap: queueing dominates.
    engine.tick.admission_priority = policy;
    auto stream = BurstyMixedStream();
    return exp_.Run(scheduler, *stream, engine);
  }

  Experiment exp_;
};

// The acceptance claim of the SLO-aware policy: under a bursty
// mixed-category workload, urgent requests see strictly lower mean TTFT
// than under FIFO admission — the separation the drain-style loop could
// not produce.
TEST_F(PriorityPolicyEngineTest, SloAwareAdmissionLowersUrgentMeanTtftVsFifo) {
  const int urgent = UrgentCategory(exp_);

  VllmScheduler fifo_scheduler;
  const EngineResult fifo = RunWithPolicy(fifo_scheduler, PriorityPolicy::kFifo);
  VllmScheduler slo_scheduler;
  const EngineResult slo = RunWithPolicy(slo_scheduler, PriorityPolicy::kSloUrgentFirst);

  ASSERT_EQ(fifo.metrics.finished, slo.metrics.finished) << "both policies must drain the trace";
  const Samples& fifo_ttft = fifo.metrics.per_category[static_cast<size_t>(urgent)].ttft_ms;
  const Samples& slo_ttft = slo.metrics.per_category[static_cast<size_t>(urgent)].ttft_ms;
  ASSERT_GT(fifo_ttft.count(), 0u);
  ASSERT_EQ(fifo_ttft.count(), slo_ttft.count());
  EXPECT_LT(slo_ttft.Mean(), fifo_ttft.Mean())
      << "SLO-aware admission must strictly improve urgent mean TTFT";
}

// EngineConfig{} defers to the scheduler's own AdmissionPriority():
// AdaServe's default run is byte-identical to forcing kSloUrgentFirst,
// vLLM's to forcing kFifo.
TEST_F(PriorityPolicyEngineTest, SchedulerDefaultsResolveWhenConfigUnset) {
  const std::vector<Request> workload = SmallMixedWorkload(exp_);

  AdaServeScheduler ada_default;
  const EngineResult ada_a = exp_.Run(ada_default, workload);
  AdaServeScheduler ada_forced;
  EngineConfig force_slo;
  force_slo.tick.admission_priority = PriorityPolicy::kSloUrgentFirst;
  const EngineResult ada_b = exp_.Run(ada_forced, workload, force_slo);
  EXPECT_EQ(GoldenMetricsText(SystemKind::kAdaServe, ada_a.metrics),
            GoldenMetricsText(SystemKind::kAdaServe, ada_b.metrics));

  VllmScheduler vllm_default;
  const EngineResult vllm_a = exp_.Run(vllm_default, workload);
  VllmScheduler vllm_forced;
  EngineConfig force_fifo;
  force_fifo.tick.admission_priority = PriorityPolicy::kFifo;
  const EngineResult vllm_b = exp_.Run(vllm_forced, workload, force_fifo);
  EXPECT_EQ(GoldenMetricsText(SystemKind::kVllm, vllm_a.metrics),
            GoldenMetricsText(SystemKind::kVllm, vllm_b.metrics));
}

// Boundary mode ignores priority entirely — even a forced kSloUrgentFirst
// stays byte-identical to the FIFO drain loop, because the legacy-golden
// guarantee would otherwise silently break.
TEST_F(PriorityPolicyEngineTest, BoundaryModeIgnoresPriorityPolicy) {
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  VllmScheduler s1;
  const EngineResult plain = exp_.Run(s1, workload, BoundaryTickConfig());
  VllmScheduler s2;
  EngineConfig forced = BoundaryTickConfig();
  forced.tick.admission_priority = PriorityPolicy::kSloUrgentFirst;
  const EngineResult with_priority = exp_.Run(s2, workload, forced);
  EXPECT_EQ(GoldenMetricsText(SystemKind::kVllm, plain.metrics),
            GoldenMetricsText(SystemKind::kVllm, with_priority.metrics));
  EXPECT_EQ(plain.end_time, with_priority.end_time);

  // Flipping only tick.continuous off — leaving the now-default
  // eviction budget and any priority default in place — must be the
  // same legacy path as the full BoundaryTickConfig(): the engine
  // neutralizes every tick-native knob at the boundary.
  VllmScheduler s3;
  EngineConfig hand_rolled;
  hand_rolled.tick.continuous = false;
  const EngineResult minimal = exp_.Run(s3, workload, hand_rolled);
  EXPECT_EQ(GoldenMetricsText(SystemKind::kVllm, plain.metrics),
            GoldenMetricsText(SystemKind::kVllm, minimal.metrics));
  EXPECT_EQ(plain.end_time, minimal.end_time);
  EXPECT_EQ(minimal.metrics.evictions, 0);
}

}  // namespace
}  // namespace adaserve
