#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace adaserve {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : exp_(TestSetup()) {}
  Experiment exp_;
};

TEST_F(BaselinesTest, EveryBaselineDrainsAMixedWorkload) {
  const std::vector<Request> workload = SmallMixedWorkload(exp_);
  for (SystemKind kind :
       {SystemKind::kVllm, SystemKind::kSarathi, SystemKind::kVllmSpec4,
        SystemKind::kVllmPriority, SystemKind::kFastServe, SystemKind::kVtc}) {
    auto scheduler = MakeScheduler(kind);
    const EngineResult result = exp_.Run(*scheduler, workload);
    EXPECT_EQ(result.metrics.finished, static_cast<int>(workload.size())) << SystemName(kind);
  }
}

TEST_F(BaselinesTest, VllmUniformPerTokenLatencyWithinBatch) {
  // Continuous batching gives every batched request the same iteration
  // cadence: simultaneous same-length requests finish together.
  VllmScheduler scheduler;
  const std::vector<Request> workload = UniformWorkload(exp_, 4, kCatChat, /*spread_s=*/0.0);
  Engine engine(&exp_.target(), &exp_.draft(), &exp_.target_latency(), &exp_.draft_latency());
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_EQ(result.metrics.finished, 4);
  const Samples& tpot = result.metrics.per_category[kCatChat].tpot_ms;
  EXPECT_NEAR(tpot.Min(), tpot.Max(), 1e-6);
}

TEST_F(BaselinesTest, VllmSpecCommitsMoreTokensPerIteration) {
  const std::vector<Request> workload = UniformWorkload(exp_, 4, kCatChat, 0.0);
  VllmScheduler cb;
  VllmSpecScheduler spec(VllmSpecConfig{.spec_len = 6});
  const EngineResult cb_result = exp_.Run(cb, workload);
  const EngineResult spec_result = exp_.Run(spec, workload);
  // Same tokens served, fewer iterations for the speculative system.
  EXPECT_LT(spec_result.iterations.size(), cb_result.iterations.size());
  EXPECT_GT(spec_result.metrics.mean_accepted, 0.0);
  EXPECT_EQ(cb_result.metrics.mean_accepted, 0.0);
}

TEST_F(BaselinesTest, VllmSpecAcceptanceBoundedBySpecLen) {
  VllmSpecScheduler spec(VllmSpecConfig{.spec_len = 4});
  const std::vector<Request> workload = UniformWorkload(exp_, 4, kCatChat, 0.0);
  const EngineResult result = exp_.Run(spec, workload);
  EXPECT_LE(result.metrics.mean_accepted, 4.0);
}

TEST_F(BaselinesTest, PrioritySchedulerFavoursUrgentCategory) {
  // Simultaneous urgent (Cat1) and relaxed (Cat3) requests: under priority
  // scheduling the urgent class must see strictly lower mean TPOT.
  PriorityScheduler scheduler;
  std::vector<Request> workload = UniformWorkload(exp_, 4, kCatCoding, 0.0);
  std::vector<Request> relaxed = UniformWorkload(exp_, 4, kCatSummarization, 0.0);
  for (Request& r : relaxed) {
    r.id += 4;
    r.stream_seed += 1000;
    workload.push_back(r);
  }
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_LT(result.metrics.per_category[kCatCoding].tpot_ms.Mean(),
            result.metrics.per_category[kCatSummarization].tpot_ms.Mean());
}

TEST_F(BaselinesTest, VtcCountsServiceFairly) {
  // With a binding batch cap and two categories, VTC must alternate service
  // so neither category's mean TPOT is wildly worse than the other's.
  VtcConfig config;
  config.max_batch = 2;
  VtcScheduler scheduler(config);
  std::vector<Request> workload = UniformWorkload(exp_, 3, kCatChat, 0.0);
  std::vector<Request> other = UniformWorkload(exp_, 3, kCatSummarization, 0.0);
  for (size_t i = 0; i < other.size(); ++i) {
    other[i].id += 3;
    other[i].stream_seed += 500;
    workload.push_back(other[i]);
  }
  const EngineResult result = exp_.Run(scheduler, workload);
  const double chat = result.metrics.per_category[kCatChat].tpot_ms.Mean();
  const double summ = result.metrics.per_category[kCatSummarization].tpot_ms.Mean();
  EXPECT_LT(std::max(chat, summ) / std::min(chat, summ), 2.0);
}

TEST_F(BaselinesTest, FastServePrefersShortJobs) {
  // A request shorter than the top-level quantum never demotes, so it
  // completes entirely at top priority while long-runners sink; its mean
  // TPOT must beat theirs.
  FastServeConfig config;
  config.base_quantum = 8;
  config.max_batch = 2;
  FastServeScheduler scheduler(config);
  std::vector<Request> workload = UniformWorkload(exp_, 1, kCatChat, 0.0,
                                                  /*prompt_len=*/32, /*output_len=*/6);
  std::vector<Request> long_reqs = UniformWorkload(exp_, 3, kCatSummarization, 0.0,
                                                   /*prompt_len=*/32, /*output_len=*/64);
  for (size_t i = 0; i < long_reqs.size(); ++i) {
    long_reqs[i].id += 1;
    long_reqs[i].stream_seed += 99;
    workload.push_back(long_reqs[i]);
  }
  const EngineResult result = exp_.Run(scheduler, workload);
  EXPECT_LT(result.metrics.per_category[kCatChat].tpot_ms.Mean(),
            result.metrics.per_category[kCatSummarization].tpot_ms.Mean());
}

TEST_F(BaselinesTest, SarathiBoundsIterationTokens) {
  SarathiConfig config;
  config.chunk_budget = 64;
  SarathiScheduler scheduler(config);
  const std::vector<Request> workload =
      UniformWorkload(exp_, 3, kCatSummarization, 0.05, /*prompt_len=*/500);
  // Per-iteration chunk budgeting is a drain-step property: tick-native
  // records merge the decode phase with the shared (kBurst-floored)
  // prefill phase, so the bound only holds in boundary mode.
  const EngineResult result = exp_.Run(scheduler, workload, BoundaryTickConfig());
  for (const IterationRecord& rec : result.iterations) {
    EXPECT_LE(rec.prefill_tokens + rec.decode_requests, 64 + 1);
  }
  EXPECT_EQ(result.metrics.finished, 3);
}

TEST_F(BaselinesTest, SarathiChunksLongPromptsAcrossIterations) {
  SarathiConfig config;
  config.chunk_budget = 64;
  SarathiScheduler scheduler(config);
  const std::vector<Request> workload =
      UniformWorkload(exp_, 1, kCatSummarization, 0.0, /*prompt_len=*/300, /*output_len=*/4);
  // Boundary mode: the tick-native prefill phase would swallow the whole
  // prompt in one kBurst-capped pass instead of chunk_budget slices.
  const EngineResult result = exp_.Run(scheduler, workload, BoundaryTickConfig());
  int prefill_iterations = 0;
  for (const IterationRecord& rec : result.iterations) {
    if (rec.prefill_tokens > 0) {
      ++prefill_iterations;
    }
  }
  EXPECT_GE(prefill_iterations, 300 / 64);
}

TEST_F(BaselinesTest, VllmPrefillPriorityStallsDecodes) {
  // With a long prompt arriving mid-decode, vLLM runs a prefill-only
  // iteration; decode iterations never mix prefill tokens.
  VllmScheduler scheduler;
  std::vector<Request> workload = UniformWorkload(exp_, 2, kCatChat, 0.0);
  Request late = UniformWorkload(exp_, 1, kCatSummarization, 0.0, /*prompt_len=*/2000)[0];
  late.id = 2;
  late.arrival = 0.2;
  late.stream_seed += 77;
  workload.push_back(late);
  // Prefill/decode exclusivity is the drain-style iteration shape; a
  // tick-native tick co-schedules both phases in one record by design.
  const EngineResult result = exp_.Run(scheduler, workload, BoundaryTickConfig());
  for (const IterationRecord& rec : result.iterations) {
    // An iteration is either prefill or decode, never both (vLLM v0.8 default).
    EXPECT_TRUE(rec.prefill_tokens == 0 || rec.decode_requests == 0);
  }
}

TEST_F(BaselinesTest, SpecLenNamesDistinct) {
  EXPECT_EQ(VllmSpecScheduler(VllmSpecConfig{.spec_len = 4}).name(), "vLLM-Spec(4)");
  EXPECT_EQ(VllmSpecScheduler(VllmSpecConfig{.spec_len = 8}).name(), "vLLM-Spec(8)");
}

TEST_F(BaselinesTest, ComparisonSetsWellFormed) {
  EXPECT_EQ(MainComparisonSet().size(), 8u);
  EXPECT_EQ(MotivationSet().size(), 5u);
  for (SystemKind kind : MainComparisonSet()) {
    EXPECT_NE(MakeScheduler(kind), nullptr);
    EXPECT_FALSE(SystemName(kind).empty());
  }
}

}  // namespace
}  // namespace adaserve
