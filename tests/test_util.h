// Shared fixtures for serving-layer tests: a small, fast experiment setup.
#ifndef ADASERVE_TESTS_TEST_UTIL_H_
#define ADASERVE_TESTS_TEST_UTIL_H_

#include <vector>

#include "src/adaserve.h"

namespace adaserve {

// A compact setup (Qwen-32B profile, low-entropy LM) that runs fast in unit
// tests while exercising the same code paths as the benches. Shared with the
// golden harness so the baselines track the unit-test path by construction.
inline Setup TestSetup() { return GoldenSetup(); }

// A small deterministic workload: `n` requests with the given category,
// arriving uniformly over [0, spread_s].
inline std::vector<Request> UniformWorkload(const Experiment& exp, int n, int category,
                                            double spread_s, int prompt_len = 64,
                                            int output_len = 24) {
  const std::vector<CategorySpec> cats = exp.Categories();
  std::vector<Request> reqs;
  reqs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Request req;
    req.id = i;
    req.category = category;
    req.tpot_slo = cats[static_cast<size_t>(category)].tpot_slo;
    req.arrival = spread_s * i / std::max(1, n);
    req.prompt_len = prompt_len;
    req.target_output_len = output_len;
    req.stream_seed = HashCombine(0xfeed, static_cast<uint64_t>(i));
    reqs.push_back(req);
  }
  return reqs;
}

// A mixed-category workload from the real-shaped trace, small enough for
// unit tests.
inline std::vector<Request> SmallMixedWorkload(const Experiment& exp, double duration = 8.0,
                                               double rps = 3.0) {
  return exp.RealTraceWorkload(duration, rps, WorkloadConfig{.mix = {0.4, 0.3, 0.3}});
}

}  // namespace adaserve

#endif  // ADASERVE_TESTS_TEST_UTIL_H_
