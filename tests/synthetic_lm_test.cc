#include "src/model/synthetic_lm.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/model/draft_lm.h"
#include "src/model/sampler.h"

namespace adaserve {
namespace {

LmConfig SmallConfig() {
  LmConfig config;
  config.vocab_size = 1000;
  config.support = 8;
  config.context_order = 2;
  config.zipf_exponent = 2.0;
  config.seed = 5;
  return config;
}

TEST(SyntheticLm, DeterministicForSameContext) {
  const SyntheticLm lm(SmallConfig());
  const std::vector<Token> ctx = {1, 2, 3};
  const SparseDist a = lm.NextDist(7, ctx);
  const SparseDist b = lm.NextDist(7, ctx);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entry(i).token, b.entry(i).token);
    EXPECT_EQ(a.entry(i).prob, b.entry(i).prob);
  }
}

TEST(SyntheticLm, StreamsAreIndependent) {
  const SyntheticLm lm(SmallConfig());
  const std::vector<Token> ctx = {1, 2, 3};
  const SparseDist a = lm.NextDist(7, ctx);
  const SparseDist b = lm.NextDist(8, ctx);
  EXPECT_NE(a.ArgMax(), b.ArgMax());
}

TEST(SyntheticLm, ContextChangesDistribution) {
  const SyntheticLm lm(SmallConfig());
  const SparseDist a = lm.NextDist(7, std::vector<Token>{1, 2});
  const SparseDist b = lm.NextDist(7, std::vector<Token>{1, 3});
  EXPECT_NE(a.ArgMax(), b.ArgMax());
}

TEST(SyntheticLm, OnlyTrailingWindowMatters) {
  LmConfig config = SmallConfig();
  config.context_order = 2;
  const SyntheticLm lm(config);
  const SparseDist a = lm.NextDist(7, std::vector<Token>{9, 9, 1, 2});
  const SparseDist b = lm.NextDist(7, std::vector<Token>{5, 5, 1, 2});
  EXPECT_EQ(a.ArgMax(), b.ArgMax());
  EXPECT_EQ(a.entry(0).prob, b.entry(0).prob);
}

TEST(SyntheticLm, TokensWithinVocab) {
  const SyntheticLm lm(SmallConfig());
  for (uint64_t s = 0; s < 20; ++s) {
    const SparseDist d = lm.NextDist(s, std::vector<Token>{static_cast<Token>(s)});
    for (const auto& e : d.entries()) {
      EXPECT_GE(e.token, 0);
      EXPECT_LT(e.token, 1000);
    }
  }
}

TEST(SyntheticLm, SupportSizeBounded) {
  const SyntheticLm lm(SmallConfig());
  const SparseDist d = lm.NextDist(1, std::vector<Token>{4});
  EXPECT_LE(d.size(), 8u);
  EXPECT_GE(d.size(), 1u);
}

TEST(SyntheticLm, HigherZipfLowersEntropy) {
  LmConfig flat = SmallConfig();
  flat.zipf_exponent = 0.5;
  LmConfig peaked = SmallConfig();
  peaked.zipf_exponent = 4.0;
  const SyntheticLm lm_flat(flat);
  const SyntheticLm lm_peaked(peaked);
  double h_flat = 0.0;
  double h_peaked = 0.0;
  for (uint64_t s = 0; s < 50; ++s) {
    const std::vector<Token> ctx = {static_cast<Token>(s)};
    h_flat += lm_flat.NextDist(s, ctx).Entropy();
    h_peaked += lm_peaked.NextDist(s, ctx).Entropy();
  }
  EXPECT_GT(h_flat, h_peaked);
}

TEST(SyntheticLm, DifferentModelSeedsAreUnrelated) {
  LmConfig a_config = SmallConfig();
  LmConfig b_config = SmallConfig();
  b_config.seed = 999;
  const SyntheticLm a(a_config);
  const SyntheticLm b(b_config);
  const std::vector<Token> ctx = {1, 2};
  EXPECT_NE(a.NextDist(7, ctx).ArgMax(), b.NextDist(7, ctx).ArgMax());
}

TEST(DraftLm, FullFidelityEqualsTarget) {
  const SyntheticLm target(SmallConfig());
  const DraftLm draft(&target, DraftConfig{.fidelity = 1.0});
  const std::vector<Token> ctx = {3, 4};
  const SparseDist t = target.NextDist(7, ctx);
  const SparseDist d = draft.NextDist(7, ctx);
  ASSERT_EQ(t.size(), d.size());
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.entry(i).token, d.entry(i).token);
    EXPECT_NEAR(t.entry(i).prob, d.entry(i).prob, 1e-12);
  }
}

TEST(DraftLm, ZeroFidelityIgnoresTarget) {
  const SyntheticLm target(SmallConfig());
  const DraftLm draft(&target, DraftConfig{.fidelity = 0.0, .noise_seed = 123});
  const std::vector<Token> ctx = {3, 4};
  // The noise component has a different seed, so argmaxes should disagree
  // (with overwhelming probability over a 1000-token vocab).
  EXPECT_NE(target.NextDist(7, ctx).ArgMax(), draft.NextDist(7, ctx).ArgMax());
}

// The core assumption of §4.2 Challenge 1: draft probabilities approximate
// target acceptance probabilities, better with higher fidelity.
class FidelitySweep : public ::testing::TestWithParam<double> {};

TEST_P(FidelitySweep, AgreementGrowsWithFidelity) {
  const double alpha = GetParam();
  const SyntheticLm target(SmallConfig());
  const DraftLm draft(&target, DraftConfig{.fidelity = alpha});
  int agree = 0;
  constexpr int kContexts = 200;
  for (int i = 0; i < kContexts; ++i) {
    const std::vector<Token> ctx = {static_cast<Token>(i), static_cast<Token>(i * 7)};
    if (target.NextDist(3, ctx).ArgMax() == draft.NextDist(3, ctx).ArgMax()) {
      ++agree;
    }
  }
  const double rate = agree / static_cast<double>(kContexts);
  if (alpha >= 0.9) {
    EXPECT_GT(rate, 0.9);
  } else if (alpha >= 0.6) {
    EXPECT_GT(rate, 0.6);
  } else if (alpha <= 0.2) {
    EXPECT_LT(rate, 0.6);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, FidelitySweep, ::testing::Values(0.1, 0.2, 0.6, 0.9, 1.0));

TEST(Sampler, GreedyPicksArgmax) {
  const SparseDist d = SparseDist::FromWeights(std::vector<Token>{1, 2},
                                               std::vector<double>{0.3, 0.7});
  Rng rng(1);
  EXPECT_EQ(SampleToken(d, DecodeMode::kGreedy, rng), 2);
}

TEST(Sampler, StochasticStaysInSupport) {
  const SparseDist d = SparseDist::FromWeights(std::vector<Token>{1, 2},
                                               std::vector<double>{0.3, 0.7});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Token t = SampleToken(d, DecodeMode::kStochastic, rng);
    EXPECT_TRUE(t == 1 || t == 2);
  }
}

}  // namespace
}  // namespace adaserve
