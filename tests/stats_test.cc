#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace adaserve {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(RunningStat, MatchesClosedForm) {
  RunningStat s;
  // 1..100: mean 50.5, population variance (n^2-1)/12 = 833.25.
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_NEAR(s.Variance(), 833.25, 1e-9);
  EXPECT_NEAR(s.Stddev(), std::sqrt(833.25), 1e-9);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 100.0);
}

TEST(RunningStat, NegativeValues) {
  RunningStat s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(Samples, EmptyQueriesAreZero) {
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Percentile(50), 0.0);
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Max(), 0.0);
}

TEST(Samples, PercentileEndpoints) {
  Samples s;
  for (double x : {3.0, 1.0, 2.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.Percentile(0), 1.0);
  EXPECT_EQ(s.Percentile(100), 3.0);
  EXPECT_EQ(s.Percentile(50), 2.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  s.Add(0.0);
  s.Add(10.0);
  EXPECT_NEAR(s.Percentile(25), 2.5, 1e-12);
  EXPECT_NEAR(s.Percentile(75), 7.5, 1e-12);
}

TEST(Samples, PercentileClampsOutOfRange) {
  Samples s;
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_EQ(s.Percentile(-5), 1.0);
  EXPECT_EQ(s.Percentile(200), 2.0);
}

TEST(Samples, SumMeanMinMax) {
  Samples s;
  for (int i = 1; i <= 4; ++i) {
    s.Add(i);
  }
  EXPECT_EQ(s.Sum(), 10.0);
  EXPECT_EQ(s.Mean(), 2.5);
  EXPECT_EQ(s.Min(), 1.0);
  EXPECT_EQ(s.Max(), 4.0);
  EXPECT_EQ(s.count(), 4u);
}

TEST(Histogram, BinsCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);   // bin 0
  h.Add(9.5);   // bin 9
  h.Add(5.0);   // bin 5
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_NEAR(h.BinCenter(0), 0.5, 1e-12);
  EXPECT_NEAR(h.BinCenter(9), 9.5, 1e-12);
}

class PercentileSweep : public ::testing::TestWithParam<int> {};

TEST_P(PercentileSweep, MedianOfUniformGridIsCentre) {
  const int n = GetParam();
  Samples s;
  for (int i = 0; i < n; ++i) {
    s.Add(i);
  }
  EXPECT_NEAR(s.Percentile(50), (n - 1) / 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PercentileSweep, ::testing::Values(1, 2, 3, 10, 101, 1000));

}  // namespace
}  // namespace adaserve
