#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace adaserve {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(RunningStat, MatchesClosedForm) {
  RunningStat s;
  // 1..100: mean 50.5, population variance (n^2-1)/12 = 833.25.
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_NEAR(s.Variance(), 833.25, 1e-9);
  EXPECT_NEAR(s.Stddev(), std::sqrt(833.25), 1e-9);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 100.0);
}

TEST(RunningStat, NegativeValues) {
  RunningStat s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(Samples, EmptyQueriesAreZero) {
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Percentile(50), 0.0);
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Max(), 0.0);
}

TEST(Samples, PercentileEndpoints) {
  Samples s;
  for (double x : {3.0, 1.0, 2.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.Percentile(0), 1.0);
  EXPECT_EQ(s.Percentile(100), 3.0);
  EXPECT_EQ(s.Percentile(50), 2.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  s.Add(0.0);
  s.Add(10.0);
  EXPECT_NEAR(s.Percentile(25), 2.5, 1e-12);
  EXPECT_NEAR(s.Percentile(75), 7.5, 1e-12);
}

TEST(Samples, PercentileClampsOutOfRange) {
  Samples s;
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_EQ(s.Percentile(-5), 1.0);
  EXPECT_EQ(s.Percentile(200), 2.0);
}

TEST(Samples, SumMeanMinMax) {
  Samples s;
  for (int i = 1; i <= 4; ++i) {
    s.Add(i);
  }
  EXPECT_EQ(s.Sum(), 10.0);
  EXPECT_EQ(s.Mean(), 2.5);
  EXPECT_EQ(s.Min(), 1.0);
  EXPECT_EQ(s.Max(), 4.0);
  EXPECT_EQ(s.count(), 4u);
}

TEST(Histogram, BinsCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);   // bin 0
  h.Add(9.5);   // bin 9
  h.Add(5.0);   // bin 5
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_NEAR(h.BinCenter(0), 0.5, 1e-12);
  EXPECT_NEAR(h.BinCenter(9), 9.5, 1e-12);
}

TEST(RunningStat, SampleVarianceIsBesselCorrected) {
  RunningStat s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(3.0);
  s.Add(4.0);
  // Population: sum of squared deviations 5.0 over N=4; sample over N-1=3.
  EXPECT_NEAR(s.Variance(), 5.0 / 4.0, 1e-12);
  EXPECT_NEAR(s.SampleVariance(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.SampleStddev(), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_GT(s.SampleStddev(), s.Stddev());  // Bessel widens the error bar.
}

TEST(RunningStat, SampleVarianceDegenerateCounts) {
  RunningStat s;
  EXPECT_EQ(s.SampleVariance(), 0.0);
  s.Add(7.0);
  EXPECT_EQ(s.SampleVariance(), 0.0);  // N-1 == 0 must not divide by zero.
  EXPECT_EQ(s.SampleStddev(), 0.0);
}

TEST(Samples, PercentileCacheInvalidatedByAdd) {
  Samples s;
  s.Add(10.0);
  s.Add(20.0);
  EXPECT_NEAR(s.Percentile(100), 20.0, 1e-12);  // Populates the cache.
  s.Add(5.0);                                   // Must invalidate it.
  EXPECT_NEAR(s.Percentile(0), 5.0, 1e-12);
  EXPECT_NEAR(s.Percentile(50), 10.0, 1e-12);
  s.Add(40.0);
  EXPECT_NEAR(s.Percentile(100), 40.0, 1e-12);
}

TEST(Samples, RepeatedPercentileQueriesAgreeWithFreshObject) {
  Samples cached;
  Samples fresh;
  for (int i = 100; i > 0; --i) {
    cached.Add(i);
  }
  for (double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    cached.Percentile(p);  // Warm the cache in arbitrary query order.
  }
  for (int i = 100; i > 0; --i) {
    fresh.Add(i);
  }
  for (double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    EXPECT_EQ(cached.Percentile(p), fresh.Percentile(p));
  }
}

TEST(Histogram, ZeroWidthRangeDoesNotDivideByZero) {
  Histogram h(5.0, 5.0, 10);  // lo == hi: span is zero.
  h.Add(5.0);
  h.Add(4.0);
  h.Add(6.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0), 3u);  // Everything lands in the first bin.
}

TEST(Histogram, ZeroBinsClampedToOne) {
  Histogram h(0.0, 1.0, 0);
  EXPECT_EQ(h.bins(), 1u);
  h.Add(0.5);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, NanSamplesDroppedNotCounted) {
  Histogram h(0.0, 10.0, 10);
  h.Add(std::numeric_limits<double>::quiet_NaN());
  h.Add(5.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.dropped(), 1u);
  EXPECT_EQ(h.count(5), 1u);
}

TEST(Histogram, InfinityClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 10);
  h.Add(std::numeric_limits<double>::infinity());
  h.Add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.dropped(), 0u);
}

// Regression (PR 7 bugfix): an empty RunningStat used to report min/max
// of 0.0 — indistinguishable from a real zero-valued sample. Empty
// extrema are now NaN, which no comparison silently swallows.
TEST(RunningStat, EmptyMinMaxAreNaN) {
  RunningStat s;
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  s.Add(-1.0);
  EXPECT_EQ(s.min(), -1.0);
  EXPECT_EQ(s.max(), -1.0);
}

TEST(Samples, AppendConcatenatesAndInvalidatesCache) {
  Samples a;
  a.Add(3.0);
  a.Add(1.0);
  EXPECT_EQ(a.Percentile(100), 3.0);  // Warm the cache.
  Samples b;
  b.Add(9.0);
  b.Add(2.0);
  a.Append(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.Percentile(100), 9.0);  // Cache must have been invalidated.
  EXPECT_EQ(a.Percentile(0), 1.0);
  EXPECT_EQ(b.count(), 2u);  // Source is untouched.
}

TEST(Samples, MaterializeSortedAgreesWithFreshObject) {
  Samples mat;
  Samples fresh;
  for (int i = 50; i > 0; --i) {
    mat.Add(i);
    fresh.Add(i);
  }
  mat.MaterializeSorted();
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(mat.Percentile(p), fresh.Percentile(p));
  }
}

// Regression (PR 7 bugfix): Percentile() on a shared const Samples used
// to lazily sort a mutable cache — a data race when replica metrics are
// read from multiple report threads. Percentile is now genuinely const
// (it sorts a local copy unless MaterializeSorted pre-computed the
// view), so concurrent queries are safe. TSan CI proves the absence of
// races; this test also checks the values.
TEST(Samples, ConcurrentPercentileQueriesAreSafe) {
  Samples shared;
  for (int i = 1000; i > 0; --i) {
    shared.Add(i);
  }
  shared.MaterializeSorted();  // What MetricsAccumulator::Finalize does.
  const Samples& view = shared;
  std::vector<std::thread> readers;
  std::vector<double> medians(8, 0.0);
  for (size_t t = 0; t < medians.size(); ++t) {
    readers.emplace_back([&view, &medians, t] {
      double median = 0.0;
      for (int rep = 0; rep < 100; ++rep) {
        median = view.Percentile(50);
      }
      medians[t] = median;
    });
  }
  for (std::thread& t : readers) {
    t.join();
  }
  for (double median : medians) {
    EXPECT_NEAR(median, 500.5, 1e-9);
  }
}

// Same race shape without the finalize step: lazily-queried const
// Samples must not mutate shared state either.
TEST(Samples, ConcurrentPercentileWithoutMaterializeIsSafe) {
  Samples shared;
  for (int i = 100; i > 0; --i) {
    shared.Add(i);
  }
  const Samples& view = shared;
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&view] {
      for (int rep = 0; rep < 50; ++rep) {
        EXPECT_NEAR(view.Percentile(99), 0.99 * 99 + 1, 1e-9);
      }
    });
  }
  for (std::thread& t : readers) {
    t.join();
  }
}

class PercentileSweep : public ::testing::TestWithParam<int> {};

TEST_P(PercentileSweep, MedianOfUniformGridIsCentre) {
  const int n = GetParam();
  Samples s;
  for (int i = 0; i < n; ++i) {
    s.Add(i);
  }
  EXPECT_NEAR(s.Percentile(50), (n - 1) / 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PercentileSweep, ::testing::Values(1, 2, 3, 10, 101, 1000));

}  // namespace
}  // namespace adaserve
