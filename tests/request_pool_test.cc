#include "src/serve/request_pool.h"

#include <gtest/gtest.h>

namespace adaserve {
namespace {

Request MakeRequest(RequestId id, int prompt_len = 20, int output_len = 4) {
  Request req;
  req.id = id;
  req.category = 0;
  req.tpot_slo = 0.05;
  req.arrival = 0.0;
  req.prompt_len = prompt_len;
  req.target_output_len = output_len;
  req.stream_seed = static_cast<uint64_t>(id);
  return req;
}

class RequestPoolTest : public ::testing::Test {
 protected:
  RequestPoolTest() : kv_(10000.0, 1.0, 16), pool_(&kv_) {}
  KvCache kv_;
  RequestPool pool_;
};

TEST_F(RequestPoolTest, ArrivalGoesToQueue) {
  pool_.AddArrival(MakeRequest(0));
  EXPECT_EQ(pool_.queued().size(), 1u);
  EXPECT_TRUE(pool_.active().empty());
  EXPECT_EQ(pool_.Get(0).state, RequestState::kQueued);
}

TEST_F(RequestPoolTest, AdmissionReservesKv) {
  pool_.AddArrival(MakeRequest(0, /*prompt_len=*/20, /*output_len=*/4));
  EXPECT_EQ(pool_.TryAdmit(10), 0);
  EXPECT_EQ(pool_.Get(0).state, RequestState::kPrefilling);
  EXPECT_EQ(kv_.HeldBy(0), kv_.RoundToBlocks(24));
}

TEST_F(RequestPoolTest, AdmissionRespectsMaxActive) {
  pool_.AddArrival(MakeRequest(0));
  pool_.AddArrival(MakeRequest(1));
  EXPECT_EQ(pool_.AdmitUpTo(1), 1);
  EXPECT_EQ(pool_.queued().size(), 1u);
}

TEST_F(RequestPoolTest, AdmissionBlockedByKv) {
  KvCache tiny(32.0, 1.0, 16);
  RequestPool pool(&tiny);
  pool.AddArrival(MakeRequest(0, 20, 4));   // 24 -> 32 tokens, fits exactly
  pool.AddArrival(MakeRequest(1, 20, 4));
  EXPECT_EQ(pool.AdmitUpTo(10), 1);
  EXPECT_EQ(pool.queued().size(), 1u);
}

TEST_F(RequestPoolTest, PrefillProgressAndTransition) {
  pool_.AddArrival(MakeRequest(0, 20, 4));
  pool_.AdmitUpTo(10);
  pool_.AdvancePrefill(0, 12);
  EXPECT_EQ(pool_.Get(0).state, RequestState::kPrefilling);
  EXPECT_EQ(pool_.Get(0).prefill_progress, 12);
  pool_.AdvancePrefill(0, 8);
  EXPECT_EQ(pool_.Get(0).state, RequestState::kRunning);
  EXPECT_TRUE(pool_.Get(0).PrefillDone());
}

TEST_F(RequestPoolTest, PrefillOverflowClamps) {
  pool_.AddArrival(MakeRequest(0, 20, 4));
  pool_.AdmitUpTo(10);
  pool_.AdvancePrefill(0, 100);
  EXPECT_EQ(pool_.Get(0).prefill_progress, 20);
}

TEST_F(RequestPoolTest, CommitTokensAndFinish) {
  pool_.AddArrival(MakeRequest(0, 20, 3));
  pool_.AdmitUpTo(10);
  pool_.AdvancePrefill(0, 20);
  pool_.CommitToken(0, 5, 1.0);
  EXPECT_EQ(pool_.Get(0).first_token_time, 1.0);
  pool_.CommitToken(0, 6, 1.1);
  EXPECT_EQ(pool_.Get(0).state, RequestState::kRunning);
  pool_.CommitToken(0, 7, 1.2);
  EXPECT_EQ(pool_.Get(0).state, RequestState::kFinished);
  EXPECT_EQ(pool_.Get(0).finish_time, 1.2);
  EXPECT_EQ(pool_.finished_count(), 1u);
  EXPECT_TRUE(pool_.active().empty());
  EXPECT_EQ(kv_.HeldBy(0), 0);  // KV released on finish
}

TEST_F(RequestPoolTest, AvgTpotFromTimestamps) {
  pool_.AddArrival(MakeRequest(0, 20, 3));
  pool_.AdmitUpTo(10);
  pool_.AdvancePrefill(0, 20);
  pool_.CommitToken(0, 5, 1.0);
  pool_.CommitToken(0, 6, 1.1);
  pool_.CommitToken(0, 7, 1.2);
  EXPECT_NEAR(pool_.Get(0).AvgTpot(), 0.1, 1e-9);
  EXPECT_FALSE(pool_.Get(0).Attained());  // 100ms > 50ms SLO
}

TEST_F(RequestPoolTest, PreemptKeepsStateAndRequeuesFront) {
  pool_.AddArrival(MakeRequest(0, 20, 4));
  pool_.AddArrival(MakeRequest(1, 20, 4));
  pool_.AdmitUpTo(10);
  pool_.AdvancePrefill(0, 20);
  pool_.CommitToken(0, 5, 1.0);
  pool_.Preempt(0);
  EXPECT_EQ(pool_.Get(0).state, RequestState::kQueued);
  EXPECT_EQ(pool_.queued().front(), 0);
  EXPECT_GT(kv_.HeldBy(0), 0);  // KV kept resident
  // Re-admission restores kRunning without re-prefill.
  EXPECT_EQ(pool_.TryAdmit(10), 0);
  EXPECT_EQ(pool_.Get(0).state, RequestState::kRunning);
  EXPECT_EQ(pool_.Get(0).output_len(), 1);
}

TEST_F(RequestPoolTest, SumContextTokens) {
  pool_.AddArrival(MakeRequest(0, 10, 4));
  pool_.AddArrival(MakeRequest(1, 30, 4));
  pool_.AdmitUpTo(10);
  pool_.AdvancePrefill(0, 10);
  pool_.AdvancePrefill(1, 30);
  pool_.CommitToken(0, 5, 1.0);
  EXPECT_EQ(pool_.SumContextTokens({0, 1}), 10 + 1 + 30);
}

TEST_F(RequestPoolTest, HasWorkReflectsState) {
  EXPECT_FALSE(pool_.HasWork());
  pool_.AddArrival(MakeRequest(0, 4, 2));
  EXPECT_TRUE(pool_.HasWork());
  pool_.AdmitUpTo(10);
  EXPECT_TRUE(pool_.HasWork());
  pool_.AdvancePrefill(0, 4);
  pool_.CommitToken(0, 1, 0.1);
  pool_.CommitToken(0, 2, 0.2);
  EXPECT_FALSE(pool_.HasWork());
}

TEST_F(RequestPoolTest, EvictReleasesKvResetsPrefillAndRequeuesFront) {
  pool_.AddArrival(MakeRequest(0, 20, 4));
  pool_.AddArrival(MakeRequest(1, 20, 4));
  pool_.AdmitUpTo(1);  // r0 active, r1 still queued
  pool_.AdvancePrefill(0, 12);
  pool_.Evict(0);
  EXPECT_EQ(pool_.Get(0).state, RequestState::kQueued);
  EXPECT_EQ(pool_.Get(0).prefill_progress, 0);  // recompute-style
  EXPECT_EQ(kv_.HeldBy(0), 0);
  EXPECT_TRUE(pool_.active().empty());
  // Evicted requests are retried before older queued work.
  ASSERT_EQ(pool_.queued().size(), 2u);
  EXPECT_EQ(pool_.queued()[0], 0);
  EXPECT_EQ(pool_.queued()[1], 1);
}

TEST_F(RequestPoolTest, AdmitWithEvictionMakesRoomForBlockedHead) {
  // Capacity 64 tokens: two 20+4 requests (32 blocks each) fill it.
  KvCache tiny(64.0, 1.0, 16);
  RequestPool pool(&tiny);
  pool.AddArrival(MakeRequest(0, 20, 4));
  pool.AddArrival(MakeRequest(1, 20, 4));
  pool.AddArrival(MakeRequest(2, 20, 4));
  EXPECT_EQ(pool.AdmitUpTo(10), 2);
  int evicted = 0;
  EXPECT_EQ(pool.AdmitWithEviction(10, /*max_evictions=*/2, &evicted), 2);
  EXPECT_EQ(evicted, 1);
  // The newest-admitted zero-output request (r1) was evicted; the head
  // (r2) is now active alongside r0.
  EXPECT_EQ(pool.Get(1).state, RequestState::kQueued);
  EXPECT_EQ(pool.Get(2).state, RequestState::kPrefilling);
  ASSERT_EQ(pool.queued().size(), 1u);
  EXPECT_EQ(pool.queued().front(), 1);
}

TEST_F(RequestPoolTest, AdmitWithEvictionPreservesArrivalOrderOfVictims) {
  // Head r2 needs 48 tokens; evicting both r0 and r1 (32 each) is the
  // only way to fit it in a 64-token cache.
  KvCache tiny(64.0, 1.0, 16);
  RequestPool pool(&tiny);
  pool.AddArrival(MakeRequest(0, 20, 4));
  pool.AddArrival(MakeRequest(1, 20, 4));
  pool.AddArrival(MakeRequest(2, 40, 8));
  EXPECT_EQ(pool.AdmitUpTo(10), 2);
  int evicted = 0;
  EXPECT_EQ(pool.AdmitWithEviction(10, /*max_evictions=*/4, &evicted), 2);
  EXPECT_EQ(evicted, 2);
  // Victims are picked newest-first (r1 then r0) but re-enter the queue
  // in their original arrival order, preserving FIFO on re-admission.
  ASSERT_EQ(pool.queued().size(), 2u);
  EXPECT_EQ(pool.queued()[0], 0);
  EXPECT_EQ(pool.queued()[1], 1);
}

TEST_F(RequestPoolTest, AdmitWithEvictionSparesRequestsWithCommittedOutput) {
  KvCache tiny(64.0, 1.0, 16);
  RequestPool pool(&tiny);
  pool.AddArrival(MakeRequest(0, 20, 4));
  pool.AddArrival(MakeRequest(1, 20, 4));
  pool.AddArrival(MakeRequest(2, 20, 4));
  EXPECT_EQ(pool.AdmitUpTo(10), 2);
  // r1 has committed output: evicting it would discard generated tokens,
  // so the only candidate is r0.
  pool.AdvancePrefill(1, 20);
  pool.CommitToken(1, 5, 0.5);
  int evicted = 0;
  EXPECT_EQ(pool.AdmitWithEviction(10, /*max_evictions=*/4, &evicted), 2);
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(pool.Get(0).state, RequestState::kQueued);
  EXPECT_EQ(pool.Get(1).state, RequestState::kRunning);
}

Request SloRequest(RequestId id, double tpot_slo, int prompt_len = 20, int output_len = 4) {
  Request req = MakeRequest(id, prompt_len, output_len);
  req.tpot_slo = tpot_slo;
  return req;
}

// Lower-tpot_slo-first ranker used by the ranked-admission tests (the
// same shape PriorityRanker(kSloUrgentFirst) produces).
bool UrgentFirst(const Request& a, const Request& b) { return a.tpot_slo < b.tpot_slo; }

TEST_F(RequestPoolTest, RankedAdmissionPicksBestRankedNotFront) {
  pool_.AddArrival(SloRequest(0, 0.15));
  pool_.AddArrival(SloRequest(1, 0.02));
  pool_.AddArrival(SloRequest(2, 0.05));
  EXPECT_EQ(pool_.TryAdmit(10, UrgentFirst), 1);
  EXPECT_EQ(pool_.TryAdmit(10, UrgentFirst), 2);
  EXPECT_EQ(pool_.TryAdmit(10, UrgentFirst), 0);
  EXPECT_TRUE(pool_.queued().empty());
}

TEST_F(RequestPoolTest, RankedAdmissionKeepsHeadOfLineBlockingOnKv) {
  // The ranked head is blocked on KV: admission must stop, not skip to a
  // worse-ranked request that would fit — otherwise a stream of small
  // relaxed requests could starve a large urgent one forever.
  KvCache tiny(64.0, 1.0, 16);
  RequestPool pool(&tiny);
  pool.AddArrival(SloRequest(0, 0.15));  // 32 blocks, admitted below
  pool.AddArrival(SloRequest(1, 0.02, /*prompt_len=*/40, /*output_len=*/8));  // 48: blocked
  pool.AddArrival(SloRequest(2, 0.15));  // 32: would fit, must not skip ahead
  ASSERT_EQ(pool.TryAdmit(10), 0);
  EXPECT_EQ(pool.AdmitUpTo(10, UrgentFirst), 0);
  EXPECT_EQ(pool.queued().size(), 2u);
}

TEST_F(RequestPoolTest, NullRankerIsExactFifo) {
  pool_.AddArrival(SloRequest(0, 0.15));
  pool_.AddArrival(SloRequest(1, 0.02));
  EXPECT_EQ(pool_.TryAdmit(10, nullptr), 0);
  EXPECT_EQ(pool_.TryAdmit(10, nullptr), 1);
}

TEST_F(RequestPoolTest, AdmitWithEvictionCustomVictimSelector) {
  // A selector that refuses everything: the head stays blocked and no
  // eviction happens even though the default policy would have evicted.
  KvCache tiny(64.0, 1.0, 16);
  RequestPool pool(&tiny);
  pool.AddArrival(MakeRequest(0, 20, 4));
  pool.AddArrival(MakeRequest(1, 20, 4));
  pool.AddArrival(MakeRequest(2, 20, 4));
  EXPECT_EQ(pool.AdmitUpTo(10), 2);
  int evicted = 0;
  const auto refuse_all = [](const Request&, const RequestPool&) { return kInvalidRequestId; };
  EXPECT_EQ(pool.AdmitWithEviction(10, /*max_evictions=*/4, &evicted, nullptr, refuse_all),
            kInvalidRequestId);
  EXPECT_EQ(evicted, 0);
  EXPECT_EQ(pool.queued().front(), 2);  // Head back where it was.
}

TEST_F(RequestPoolTest, AdmitWithEvictionGivesUpWhenNothingEvictable) {
  KvCache tiny(64.0, 1.0, 16);
  RequestPool pool(&tiny);
  pool.AddArrival(MakeRequest(0, 20, 4));
  pool.AddArrival(MakeRequest(1, 20, 4));
  pool.AddArrival(MakeRequest(2, 20, 4));
  EXPECT_EQ(pool.AdmitUpTo(10), 2);
  for (RequestId id : {RequestId{0}, RequestId{1}}) {
    pool.AdvancePrefill(id, 20);
    pool.CommitToken(id, 5, 0.5);
  }
  int evicted = 0;
  EXPECT_EQ(pool.AdmitWithEviction(10, /*max_evictions=*/4, &evicted), kInvalidRequestId);
  EXPECT_EQ(evicted, 0);
  EXPECT_EQ(pool.queued().front(), 2);  // head back where it was
}

TEST_F(RequestPoolTest, RetiringPoolRecyclesPayloadBuffers) {
  pool_.set_release_payload_on_finish(true);
  // First request: finish it so its payload capacity is parked.
  pool_.AddArrival(MakeRequest(0, 20, 2));
  pool_.AdmitUpTo(10);
  pool_.AdvancePrefill(0, 20);
  pool_.CommitToken(0, 5, 0.1);
  pool_.CommitToken(0, 6, 0.2);  // Finishes (output_len 2) and releases.
  EXPECT_EQ(pool_.Get(0).state, RequestState::kFinished);
  EXPECT_EQ(pool_.Get(0).output.capacity(), 0u);  // Payload moved out.
  EXPECT_EQ(pool_.payload_reuses(), 0u);

  // Second request: its commits must reuse the recycled capacity.
  pool_.AddArrival(MakeRequest(1, 20, 2));
  EXPECT_EQ(pool_.payload_reuses(), 1u);
  EXPECT_GT(pool_.Get(1).output.capacity(), 0u);
  pool_.AdmitUpTo(10);
  pool_.AdvancePrefill(1, 20);
  pool_.CommitToken(1, 7, 0.3);
  pool_.CommitToken(1, 8, 0.4);
  EXPECT_EQ(pool_.Get(1).state, RequestState::kFinished);
}

TEST_F(RequestPoolTest, NonRetiringPoolKeepsPayloads) {
  pool_.AddArrival(MakeRequest(0, 20, 1));
  pool_.AdmitUpTo(10);
  pool_.AdvancePrefill(0, 20);
  pool_.CommitToken(0, 5, 0.1);
  EXPECT_EQ(pool_.Get(0).state, RequestState::kFinished);
  ASSERT_EQ(pool_.Get(0).output.size(), 1u);  // Payload retained.
  EXPECT_EQ(pool_.Get(0).output[0], 5);
  EXPECT_EQ(pool_.payload_reuses(), 0u);
}

TEST_F(RequestPoolTest, MeanAcceptedBookkeeping) {
  Request req = MakeRequest(0);
  pool_.AddArrival(req);
  pool_.AdmitUpTo(10);
  Request& r = pool_.Get(0);
  r.verifications = 4;
  r.accepted_tokens = 10;
  EXPECT_DOUBLE_EQ(r.MeanAccepted(), 2.5);
}

}  // namespace
}  // namespace adaserve
