// Table 1: evaluation setups (models, parallelism, GPUs) plus the derived
// hardware quantities (roofline floor, knee, token budgets) this
// reproduction computes from them.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

int Run(const BenchArgs& args) {
  std::cout << "Table 1: evaluation setups for different models\n\n";
  BenchJson json("table1_setups");
  TablePrinter table({"Model", "Parallelism", "GPUs", "Draft model", "Weights(GB)",
                      "Floor(ms)", "Knee(tok)", "Budget B", "Draft B2", "Baseline(ms)"});
  for (const Setup& setup : {LlamaSetup(), QwenSetup()}) {
    Experiment exp(setup);
    const LatencyModel& lat = exp.target_latency();
    table.AddRow({setup.target_profile.name,
                  std::to_string(setup.tensor_parallel) + "-way TP",
                  std::to_string(setup.tensor_parallel) + " x " + setup.gpu.name,
                  setup.draft_profile.name, Fmt(setup.target_profile.WeightBytes() / 1e9, 1),
                  Fmt(ToMs(lat.WeightLoadTime()), 2), Fmt(lat.RooflineKnee(), 0),
                  std::to_string(DeriveTokenBudget(lat)),
                  std::to_string(DeriveDraftBudget(lat, exp.draft_latency())),
                  Fmt(ToMs(exp.BaselineLatency()), 2)});
    json.Add(setup.label, "hw", "verify_budget", 0.0, DeriveTokenBudget(lat));
    json.Add(setup.label, "hw", "draft_budget", 0.0,
             DeriveDraftBudget(lat, exp.draft_latency()));
    json.Add(setup.label, "hw", "baseline_ms", 0.0, ToMs(exp.BaselineLatency()));
  }
  table.Print(std::cout);
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
