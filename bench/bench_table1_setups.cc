// Table 1: evaluation setups (models, parallelism, GPUs) plus the derived
// hardware quantities (roofline floor, knee, token budgets) this
// reproduction computes from them.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

struct SetupRow {
  std::string label;
  std::vector<std::string> cells;
  int verify_budget = 0;
  int draft_budget = 0;
  double baseline_ms = 0.0;
};

SetupRow DeriveRow(const Setup& setup) {
  const Experiment exp(setup);
  const LatencyModel& lat = exp.target_latency();
  SetupRow row;
  row.label = setup.label;
  row.verify_budget = DeriveTokenBudget(lat);
  row.draft_budget = DeriveDraftBudget(lat, exp.draft_latency());
  row.baseline_ms = ToMs(exp.BaselineLatency());
  row.cells = {setup.target_profile.name,
               std::to_string(setup.tensor_parallel) + "-way TP",
               std::to_string(setup.tensor_parallel) + " x " + setup.gpu.name,
               setup.draft_profile.name,
               Fmt(setup.target_profile.WeightBytes() / 1e9, 1),
               Fmt(ToMs(lat.WeightLoadTime()), 2),
               Fmt(lat.RooflineKnee(), 0),
               std::to_string(row.verify_budget),
               std::to_string(row.draft_budget),
               Fmt(row.baseline_ms, 2)};
  return row;
}

int Run(const BenchArgs& args) {
  std::cout << "Table 1: evaluation setups for different models\n\n";
  BenchJson json("table1_setups");
  SweepRunner runner(args.threads);
  TablePrinter table({"Model", "Parallelism", "GPUs", "Draft model", "Weights(GB)",
                      "Floor(ms)", "Knee(tok)", "Budget B", "Draft B2", "Baseline(ms)"});
  std::vector<std::function<SetupRow()>> tasks;
  for (const Setup& setup : {LlamaSetup(), QwenSetup()}) {
    tasks.push_back([setup] { return DeriveRow(setup); });
  }
  for (const Timed<SetupRow>& timed : runner.Map(tasks)) {
    const SetupRow& row = timed.value;
    table.AddRow(row.cells);
    json.Add(row.label, "hw", "verify_budget", 0.0, row.verify_budget);
    json.Add(row.label, "hw", "draft_budget", 0.0, row.draft_budget);
    json.Add(row.label, "hw", "baseline_ms", 0.0, row.baseline_ms);
  }
  table.Print(std::cout);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
