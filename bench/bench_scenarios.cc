// Stress-scenario sweep: every main-comparison system served from the
// four adversarial workload shapes in src/workload/scenarios.h — flash
// crowd, adversarial tenant flood (VTC joins for this one), long-prompt
// head-of-line poisoning, and correlated category bursts.
//
// The flash-crowd rows additionally report recovery time to SLO: how long
// past the end of the overload window the system keeps missing SLOs on
// its backlog (0 = fully absorbed). perf_diff treats recovery_s as
// lower-is-better, so CI catches schedulers that get slower at draining
// a crowd even when steady-state goodput holds.
#include <iostream>
#include <string>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

constexpr uint64_t kScenarioSeed = 42;

std::vector<SystemKind> SystemsFor(StressScenario scenario) {
  std::vector<SystemKind> systems = MainComparisonSet();
  if (scenario == StressScenario::kTenantFlood) {
    // The fair-queuing baseline is the system this scenario exists to stress.
    systems.push_back(SystemKind::kVtc);
  }
  return systems;
}

int Run(const BenchArgs& args) {
  BenchJson json("scenarios");
  SweepRunner runner(args.threads);
  const double duration = SweepDurationFor(args);
  std::cout << "Stress scenarios (" << QwenSetup().label << ", " << duration << " s, "
            << runner.threads() << " threads)\n";

  // Keep per-request records: RecoveryTimeToSlo reads finish times.
  EngineConfig engine;
  engine.record_iterations = false;

  for (const StressScenario scenario : AllStressScenarios()) {
    const std::string slug = StressScenarioSlug(scenario);
    const bool flash = scenario == StressScenario::kFlashCrowd;
    std::cout << "\n== " << StressScenarioName(scenario) << " ==\n";
    TablePrinter table(flash ? std::vector<std::string>{"system", "finished", "attain(%)",
                                                        "goodput(tok/s)", "recovery(s)"}
                             : std::vector<std::string>{"system", "finished", "attain(%)",
                                                        "goodput(tok/s)"});
    const std::vector<SweepCellResult> cells = RunSetupStreamSweep(
        runner, QwenSetup(), SystemsFor(scenario), {0.0},
        [scenario, duration](const Experiment& exp, double /*x*/) {
          return MakeStressStream(exp.Categories(), scenario, duration, kScenarioSeed);
        },
        engine);
    for (const SweepCellResult& cell : cells) {
      const Metrics& m = cell.result.metrics;
      const std::string system(SystemName(cell.system));
      json.Add(slug, system, "finished", 0.0, static_cast<double>(m.finished));
      json.Add(slug, system, "attainment_pct", 0.0, m.AttainmentPct());
      json.Add(slug, system, "goodput_tps", 0.0, m.GoodputTps());
      AddCellWallClock(json, slug, cell);
      std::vector<std::string> row = {system, std::to_string(m.finished),
                                      FmtPct(m.AttainmentPct()), Fmt(m.GoodputTps(), 1)};
      if (flash) {
        const double recovery = RecoveryTimeToSlo(
            cell.result.requests, DefaultFlashCrowd(duration, kScenarioSeed),
            cell.result.end_time);
        json.Add(slug, system, "recovery_s", 0.0, recovery);
        row.push_back(Fmt(recovery, 2));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }

  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
