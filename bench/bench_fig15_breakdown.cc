// Figure 15: latency breakdown of SLO-customized speculative decoding.
//
// Speculation and verification are GPU work; selection (scheduling) runs on
// the CPU. The paper reports CPU scheduling overhead of 0.41% / 0.31% on
// the two models; this bench reports the same split from the iteration log.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void RunModel(const Setup& setup, const BenchArgs& args, BenchJson& json) {
  Experiment exp(setup);
  const std::vector<Request> workload =
      exp.RealTraceWorkload(SweepDurationFor(args), 4.0, PeakMix());
  AdaServeScheduler scheduler;
  const EngineResult result = exp.Run(scheduler, workload);
  const Metrics& m = result.metrics;
  const double total = m.spec_time + m.select_time + m.verify_time + m.prefill_time;
  std::cout << "\n" << setup.label << "\n";
  TablePrinter table({"Component", "Time(s)", "Share(%)"});
  table.AddRow({"Scheduling (CPU selection)", Fmt(m.select_time, 3),
                Fmt(100.0 * m.select_time / total, 2)});
  table.AddRow({"Speculation (draft GPU)", Fmt(m.spec_time, 3),
                Fmt(100.0 * m.spec_time / total, 2)});
  table.AddRow({"Verification (target GPU)", Fmt(m.verify_time, 3),
                Fmt(100.0 * m.verify_time / total, 2)});
  table.AddRow({"Prefill (target GPU)", Fmt(m.prefill_time, 3),
                Fmt(100.0 * m.prefill_time / total, 2)});
  table.Print(std::cout);
  json.Add(setup.label, "AdaServe", "select_share_pct", 0.0, 100.0 * m.select_time / total);
  json.Add(setup.label, "AdaServe", "spec_share_pct", 0.0, 100.0 * m.spec_time / total);
  json.Add(setup.label, "AdaServe", "verify_share_pct", 0.0, 100.0 * m.verify_time / total);
  json.Add(setup.label, "AdaServe", "prefill_share_pct", 0.0, 100.0 * m.prefill_time / total);
}

int Run(const BenchArgs& args) {
  BenchJson json("fig15_breakdown");
  std::cout << "Figure 15: latency breakdown of AdaServe (4.0 req/s, mix 60/20/20)\n";
  RunModel(LlamaSetup(), args, json);
  RunModel(QwenSetup(), args, json);
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
