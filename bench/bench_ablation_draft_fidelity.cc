// Ablation: draft-model fidelity (quality of the logit approximation).
//
// The paper's Challenge 1 rests on draft logits approximating target
// acceptance probabilities. Sweeping the mixture fidelity alpha shows how
// acceptance, attainment and goodput degrade as the draft gets worse — and
// that AdaServe fails gracefully (it falls back toward one token per
// iteration, like continuous batching, rather than collapsing).
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

int Run(const BenchArgs& args) {
  SweepRunner runner(args.threads);
  std::cout << "Ablation: draft model fidelity alpha (4.0 req/s, mix 60/20/20, "
            << runner.threads() << " threads)\n";
  const Setup base_setup = LlamaSetup();
  std::cout << base_setup.label << "\n\n";

  const std::vector<double> alphas = {1.0, 0.9, 0.8, 0.6, 0.4, 0.2};
  std::vector<std::function<EngineResult()>> tasks;
  for (double alpha : alphas) {
    tasks.push_back([&base_setup, &args, alpha] {
      Setup setup = base_setup;
      setup.draft_config.fidelity = alpha;
      const Experiment exp(setup);
      const std::vector<Request> workload =
          exp.RealTraceWorkload(SweepDurationFor(args), 4.0, PeakMix());
      AdaServeScheduler scheduler;
      return exp.Run(scheduler, workload);
    });
  }
  const std::vector<Timed<EngineResult>> results = runner.Map(tasks);

  BenchJson json("ablation_draft_fidelity");
  TablePrinter table({"alpha", "Mean acc", "SLO Attainment(%)", "Cat1(%)", "Goodput(tok/s)"});
  for (size_t i = 0; i < alphas.size(); ++i) {
    const Metrics& m = results[i].value.metrics;
    table.AddRow({Fmt(alphas[i], 1), Fmt(m.mean_accepted, 2), FmtPct(m.AttainmentPct()),
                  FmtPct(m.per_category[0].AttainmentPct()), Fmt(m.GoodputTps(), 1)});
    json.Add(base_setup.label, "AdaServe", "attainment_pct", alphas[i], m.AttainmentPct());
    json.Add(base_setup.label, "AdaServe", "mean_accepted", alphas[i], m.mean_accepted);
  }
  table.Print(std::cout);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
