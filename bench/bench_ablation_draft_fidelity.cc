// Ablation: draft-model fidelity (quality of the logit approximation).
//
// The paper's Challenge 1 rests on draft logits approximating target
// acceptance probabilities. Sweeping the mixture fidelity alpha shows how
// acceptance, attainment and goodput degrade as the draft gets worse — and
// that AdaServe fails gracefully (it falls back toward one token per
// iteration, like continuous batching, rather than collapsing).
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void Run() {
  std::cout << "Ablation: draft model fidelity alpha (4.0 req/s, mix 60/20/20)\n";
  Setup setup = LlamaSetup();
  std::cout << setup.label << "\n\n";
  TablePrinter table({"alpha", "Mean acc", "SLO Attainment(%)", "Cat1(%)", "Goodput(tok/s)"});
  for (double alpha : {1.0, 0.9, 0.8, 0.6, 0.4, 0.2}) {
    setup.draft_config.fidelity = alpha;
    Experiment exp(setup);
    const std::vector<Request> workload = exp.RealTraceWorkload(kSweepDuration, 4.0, PeakMix());
    AdaServeScheduler scheduler;
    const EngineResult result = exp.Run(scheduler, workload);
    table.AddRow({Fmt(alpha, 1), Fmt(result.metrics.mean_accepted, 2),
                  FmtPct(result.metrics.AttainmentPct()),
                  FmtPct(result.metrics.per_category[0].AttainmentPct()),
                  Fmt(result.metrics.GoodputTps(), 1)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace adaserve

int main() {
  adaserve::Run();
  return 0;
}
