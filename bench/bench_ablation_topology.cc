// Ablation: speculation tree topology (§7 related work).
//
// Chains (vLLM-Spec), fixed-shape trees (SpecInfer/Medusa-style), and
// AdaServe's SLO-customized trees on the same multi-SLO workload. Static
// trees were designed for small-batch inference: at serving batch sizes
// their per-request token cost (every level fully expanded) blows past the
// roofline knee and iteration latency explodes — the hardware-unawareness
// the paper (and Sequoia) call out. SLO-customized trees win because shape
// *and size* follow each request's A(r) and the load.
#include <functional>
#include <iostream>
#include <memory>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

int Run(const BenchArgs& args) {
  SweepRunner runner(args.threads);
  std::cout << "Ablation: speculation tree topology (4.0 req/s, mix 60/20/20, "
            << runner.threads() << " threads)\n";
  const Setup setup = LlamaSetup();
  std::cout << setup.label << "\n\n";

  // Scheduler factories, not schedulers: each cell builds its own.
  struct Variant {
    std::string label;
    std::function<std::unique_ptr<Scheduler>()> make_scheduler;
  };
  std::vector<Variant> variants;
  variants.push_back({"chain k=4 (vLLM-Spec)", [] {
                        return std::make_unique<VllmSpecScheduler>(
                            VllmSpecConfig{.spec_len = 4});
                      }});
  variants.push_back({"static tree 4x1x1", [] {
                        return std::make_unique<StaticTreeSpecScheduler>(
                            StaticTreeConfig{.branching = {4, 1, 1}});
                      }});
  variants.push_back({"static tree 3x2", [] {
                        return std::make_unique<StaticTreeSpecScheduler>(
                            StaticTreeConfig{.branching = {3, 2}});
                      }});
  variants.push_back({"static tree 2x2x1", [] {
                        return std::make_unique<StaticTreeSpecScheduler>(
                            StaticTreeConfig{.branching = {2, 2, 1}});
                      }});
  variants.push_back(
      {"SLO-customized (AdaServe)", [] { return std::make_unique<AdaServeScheduler>(); }});

  std::vector<std::function<EngineResult()>> tasks;
  for (const Variant& v : variants) {
    tasks.push_back([&setup, &args, &v] {
      const Experiment exp(setup);
      const std::vector<Request> workload =
          exp.RealTraceWorkload(SweepDurationFor(args), 4.0, PeakMix());
      auto scheduler = v.make_scheduler();
      return exp.Run(*scheduler, workload);
    });
  }
  const std::vector<Timed<EngineResult>> results = runner.Map(tasks);

  BenchJson json("ablation_topology");
  TablePrinter table({"Topology", "SLO Attainment(%)", "Cat1(%)", "Goodput(tok/s)", "Mean acc"});
  for (size_t i = 0; i < variants.size(); ++i) {
    const Metrics& m = results[i].value.metrics;
    table.AddRow({variants[i].label, FmtPct(m.AttainmentPct()),
                  FmtPct(m.per_category[0].AttainmentPct()), Fmt(m.GoodputTps(), 1),
                  Fmt(m.mean_accepted, 2)});
    json.Add(setup.label, variants[i].label, "attainment_pct", 0.0, m.AttainmentPct());
    json.Add(setup.label, variants[i].label, "goodput_tps", 0.0, m.GoodputTps());
  }
  table.Print(std::cout);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
