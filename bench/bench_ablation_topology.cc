// Ablation: speculation tree topology (§7 related work).
//
// Chains (vLLM-Spec), fixed-shape trees (SpecInfer/Medusa-style), and
// AdaServe's SLO-customized trees on the same multi-SLO workload. Static
// trees were designed for small-batch inference: at serving batch sizes
// their per-request token cost (every level fully expanded) blows past the
// roofline knee and iteration latency explodes — the hardware-unawareness
// the paper (and Sequoia) call out. SLO-customized trees win because shape
// *and size* follow each request's A(r) and the load.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void Run() {
  std::cout << "Ablation: speculation tree topology (4.0 req/s, mix 60/20/20)\n";
  const Setup setup = LlamaSetup();
  Experiment exp(setup);
  std::cout << setup.label << "\n\n";
  const std::vector<Request> workload = exp.RealTraceWorkload(kSweepDuration, 4.0, PeakMix());

  struct Variant {
    std::string label;
    std::unique_ptr<Scheduler> scheduler;
  };
  std::vector<Variant> variants;
  variants.push_back({"chain k=4 (vLLM-Spec)",
                      std::make_unique<VllmSpecScheduler>(VllmSpecConfig{.spec_len = 4})});
  variants.push_back({"static tree 4x1x1",
                      std::make_unique<StaticTreeSpecScheduler>(
                          StaticTreeConfig{.branching = {4, 1, 1}})});
  variants.push_back({"static tree 3x2",
                      std::make_unique<StaticTreeSpecScheduler>(
                          StaticTreeConfig{.branching = {3, 2}})});
  variants.push_back({"static tree 2x2x1",
                      std::make_unique<StaticTreeSpecScheduler>(
                          StaticTreeConfig{.branching = {2, 2, 1}})});
  variants.push_back({"SLO-customized (AdaServe)", std::make_unique<AdaServeScheduler>()});

  TablePrinter table({"Topology", "SLO Attainment(%)", "Cat1(%)", "Goodput(tok/s)", "Mean acc"});
  for (Variant& v : variants) {
    const EngineResult result = exp.Run(*v.scheduler, workload);
    table.AddRow({v.label, FmtPct(result.metrics.AttainmentPct()),
                  FmtPct(result.metrics.per_category[0].AttainmentPct()),
                  Fmt(result.metrics.GoodputTps(), 1), Fmt(result.metrics.mean_accepted, 2)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace adaserve

int main() {
  adaserve::Run();
  return 0;
}
