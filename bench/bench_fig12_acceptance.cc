// Figure 12: mean accepted tokens per request per verification w.r.t. RPS.
//
// Expected shape: AdaServe accepts many tokens at low RPS (aggressive
// speculation) and tapers as load grows (adaptive control shrinks trees);
// vLLM-Spec(k)'s acceptance is flat in RPS because its strategy is static.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void RunModel(const Setup& setup, const std::vector<double>& rps_grid, const BenchArgs& args,
              BenchJson& json, SweepRunner& runner) {
  std::cout << "\n" << setup.label << "\n";
  const std::vector<SystemKind> systems = {SystemKind::kAdaServe, SystemKind::kVllmSpec4,
                                           SystemKind::kVllmSpec6, SystemKind::kVllmSpec8};
  TablePrinter table({"System", "RPS", "Mean accepted tokens"});
  const std::vector<SweepCellResult> cells = RunSetupSweep(
      runner, setup, systems, GridFor(args, rps_grid),
      [&args](const Experiment& exp, double rps) {
        return exp.RealTraceWorkload(SweepDurationFor(args), rps, PeakMix());
      });
  for (const SweepCellResult& p : cells) {
    table.AddRow({std::string(SystemName(p.system)), Fmt(p.x, 1),
                  Fmt(p.result.metrics.mean_accepted, 2)});
    json.Add(setup.label, std::string(SystemName(p.system)), "mean_accepted", p.x,
             p.result.metrics.mean_accepted);
    AddCellWallClock(json, setup.label, p);
  }
  table.Print(std::cout);
}

int Run(const BenchArgs& args) {
  BenchJson json("fig12_acceptance");
  SweepRunner runner(args.threads);
  std::cout << "Figure 12: mean accepted tokens per request per verification "
            << "(speculation accuracy, " << runner.threads() << " threads)\n";
  RunModel(LlamaSetup(), LlamaRpsGrid(), args, json, runner);
  RunModel(QwenSetup(), QwenRpsGrid(), args, json, runner);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
