// Figure 12: mean accepted tokens per request per verification w.r.t. RPS.
//
// Expected shape: AdaServe accepts many tokens at low RPS (aggressive
// speculation) and tapers as load grows (adaptive control shrinks trees);
// vLLM-Spec(k)'s acceptance is flat in RPS because its strategy is static.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void RunModel(const Setup& setup, const std::vector<double>& rps_grid, const BenchArgs& args,
              BenchJson& json) {
  Experiment exp(setup);
  std::cout << "\n" << setup.label << "\n";
  const std::vector<SystemKind> systems = {SystemKind::kAdaServe, SystemKind::kVllmSpec4,
                                           SystemKind::kVllmSpec6, SystemKind::kVllmSpec8};
  TablePrinter table({"System", "RPS", "Mean accepted tokens"});
  for (double rps : GridFor(args, rps_grid)) {
    const std::vector<Request> workload =
        exp.RealTraceWorkload(SweepDurationFor(args), rps, PeakMix());
    for (const SweepPoint& p : RunAllSystems(exp, workload, rps, systems)) {
      table.AddRow(
          {std::string(SystemName(p.system)), Fmt(rps, 1), Fmt(p.metrics.mean_accepted, 2)});
      json.Add(setup.label, std::string(SystemName(p.system)), "mean_accepted", rps,
               p.metrics.mean_accepted);
    }
  }
  table.Print(std::cout);
}

int Run(const BenchArgs& args) {
  BenchJson json("fig12_acceptance");
  std::cout
      << "Figure 12: mean accepted tokens per request per verification (speculation accuracy)\n";
  RunModel(LlamaSetup(), LlamaRpsGrid(), args, json);
  RunModel(QwenSetup(), QwenRpsGrid(), args, json);
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
