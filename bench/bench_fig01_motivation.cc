// Figure 1: existing systems cannot efficiently support multi-SLO serving.
//
// A two-category workload (Cat 1 coding copilot with a tight SLO, Cat 2
// chatbot at 50 ms) is served by five existing systems. For each system and
// category we report the per-token latency distribution and the violation
// rate. The paper's shape: every system except vLLM+Priority misses Cat-1
// SLOs badly; vLLM+Priority saves Cat 1 but congests Cat 2.
#include <cmath>
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

// --admission: ablation of the tick-native admission-priority knob under
// KV pressure. One continuous-batching scheduler (vLLM), one bursty
// urgent-heavy arrival process, three policies:
//   fifo          — arrival-order admission, recompute eviction
//   urgent_first  — SLO-urgent-first admission, recompute eviction
//   urgent_pause  — SLO-urgent-first admission, preemptive pause/resume
//                   (victims keep their prefill progress and resume)
// The device KV cap is pinned far below the natural 80 GB headroom so
// bursts actually force evict-for-admission decisions; the interesting
// output is the urgent category's TTFT — pause/resume stops the engine
// from re-prefilling recompute victims, so the freed budget reaches
// urgent prompts sooner.
struct AblationPolicy {
  PriorityPolicy policy;
  const char* name;
};

std::vector<AblationPolicy> AblationPolicies() {
  return {{PriorityPolicy::kFifo, "fifo"},
          {PriorityPolicy::kSloUrgentFirst, "urgent_first"},
          {PriorityPolicy::kSloUrgentPause, "urgent_pause"}};
}

// Burst-state RPS grid: the sweep's x-axis. Endpoints only under --smoke
// (the grid has two entries, so smoke == full here by construction).
std::vector<double> AblationRpsGrid() { return {24.0, 36.0}; }

int RunAdmissionAblation(const BenchArgs& args) {
  Setup setup = LlamaSetup();
  // Invert the KvCacheBytes formula (0.85 headroom, per-TP weight split)
  // to pin device KV capacity to exactly kKvCapTokens: small enough that
  // a burst of mixed prompts cannot all hold KV at once, large enough
  // that the active set still batches.
  // Must exceed the worst-case single-request footprint (a max-length
  // Cat3 prompt plus its output, ~4.6k tokens) or that request can never
  // admit and the run livelocks.
  constexpr double kKvCapTokens = 6144.0;
  setup.gpu.mem_bytes = (setup.target_profile.WeightBytes() / setup.tensor_parallel +
                         kKvCapTokens * setup.target_profile.KvBytesPerToken() /
                             setup.tensor_parallel) /
                        0.85;
  Experiment exp(setup);
  // Length-shaped variant of the default categories, keeping the SLOs:
  // urgent requests are short (they finish in a few ticks, so KV turns
  // over and every burst re-fights the admission battle) while the
  // loose-SLO category carries long prompts (many ticks mid-prefill —
  // exactly the victims recompute eviction re-prefills from scratch and
  // pause/resume does not).
  std::vector<CategorySpec> cats = exp.Categories();
  cats[kCatCoding].prompt_len = {.log_mean = std::log(96.0), .log_stddev = 0.3, .min_len = 32,
                                 .max_len = 256};
  cats[kCatCoding].output_len = {.log_mean = std::log(12.0), .log_stddev = 0.3, .min_len = 4,
                                 .max_len = 32};
  // Two worst-case long prompts must fit in the cap at once: if only one
  // can hold KV, two blocked jumbos recompute-evict each other forever
  // (the sole active request is always the newest zero-output victim) and
  // the fifo cell livelocks.
  cats[kCatSummarization].prompt_len = {.log_mean = std::log(1500.0), .log_stddev = 0.25,
                                        .min_len = 512, .max_len = 2048};
  cats[kCatSummarization].output_len = {.log_mean = std::log(16.0), .log_stddev = 0.3,
                                        .min_len = 4, .max_len = 32};
  std::cout << "Figure 1 ablation: admission priority under KV pressure\n";
  std::cout << "Model: " << setup.label << " (KV capped at " << kKvCapTokens
            << " tokens), trace: MMPP bursts, mix 60/40 urgent/long-prefill\n";
  std::cout << "SLO1 (Cat1 urgent) = " << Fmt(ToMs(cats[0].tpot_slo), 1)
            << " ms, SLO2 (Cat2 chat) = " << Fmt(ToMs(cats[1].tpot_slo), 1) << " ms\n\n";

  BenchJson json("fig01_admission");
  TablePrinter table({"Policy", "BurstRPS", "Cat1 TTFT(ms)", "Cat1 attain(%)", "Goodput(tok/s)",
                      "Evictions", "Pauses"});
  for (double rps : GridFor(args, AblationRpsGrid())) {
    for (const AblationPolicy& ablation : AblationPolicies()) {
      MmppStreamConfig config;
      config.mmpp.state_rps = {6.0, rps};
      config.mmpp.mean_sojourn_s = {1.0, 1.0};
      config.duration = SweepDurationFor(args);
      config.mix = {0.6, 0.0, 0.4};
      auto stream = MakeMmppStream(cats, config);

      EngineConfig engine;
      engine.retire_finished = true;
      // Slots must never bind: with the KV cap the only admission blocker,
      // every displacement decision is a real evict-vs-pause call.
      engine.tick.max_active = 64;
      // Slow prefill down (vs the kBurst default) so big Cat3 prompts stay
      // mid-prefill across many ticks — the victim population the
      // displacement policies differ on — and let a burst displace more
      // than the default 4 victims per boundary.
      engine.tick.prefill_burst = 128;
      engine.tick.max_evictions = 8;
      engine.tick.admission_priority = ablation.policy;
      auto scheduler = MakeScheduler(SystemKind::kVllm);
      const EngineResult result = exp.Run(*scheduler, *stream, engine);

      const CategoryMetrics& urgent = result.metrics.per_category[0];
      table.AddRow({ablation.name, Fmt(rps, 0), Fmt(urgent.ttft_ms.Mean(), 2),
                    FmtPct(urgent.AttainmentPct()), Fmt(result.metrics.GoodputTps(), 1),
                    std::to_string(result.metrics.evictions),
                    std::to_string(result.metrics.pauses)});
      json.Add(setup.label, ablation.name, "cat1_mean_ttft_ms", rps, urgent.ttft_ms.Mean());
      json.Add(setup.label, ablation.name, "cat1_attainment_pct", rps, urgent.AttainmentPct());
      json.Add(setup.label, ablation.name, "goodput_tps", rps, result.metrics.GoodputTps());
      json.Add(setup.label, ablation.name, "evictions", rps,
               static_cast<double>(result.metrics.evictions));
      json.Add(setup.label, ablation.name, "pauses", rps,
               static_cast<double>(result.metrics.pauses));
    }
  }
  table.Print(std::cout);
  return FinishBench(args, json);
}

int Run(const BenchArgs& args) {
  if (args.admission) {
    return RunAdmissionAblation(args);
  }
  const Setup setup = LlamaSetup();
  Experiment exp(setup);
  const std::vector<CategorySpec> cats = exp.Categories();
  std::cout << "Figure 1: per-token latency of existing systems on a 2-SLO workload\n";
  std::cout << "Model: " << setup.label << ", trace: real-shaped, 3.5 req/s, mix 50/50\n";
  std::cout << "SLO1 (Cat1 coding) = " << Fmt(ToMs(cats[0].tpot_slo), 1)
            << " ms, SLO2 (Cat2 chat) = " << Fmt(ToMs(cats[1].tpot_slo), 1) << " ms\n\n";

  const std::vector<Request> workload = exp.RealTraceWorkload(
      SweepDurationFor(args), /*mean_rps=*/3.5, WorkloadConfig{.mix = {0.5, 0.5, 0.0}});

  BenchJson json("fig01_motivation");
  TablePrinter table({"System", "Cat", "mean TPOT(ms)", "p50(ms)", "p99(ms)", "Violation(%)"});
  for (SystemKind kind : MotivationSet()) {
    auto scheduler = MakeScheduler(kind);
    const EngineResult result = exp.Run(*scheduler, workload);
    for (int c = 0; c < 2; ++c) {
      const CategoryMetrics& m = result.metrics.per_category[static_cast<size_t>(c)];
      table.AddRow({std::string(SystemName(kind)), c == 0 ? "Cat1" : "Cat2",
                    Fmt(m.tpot_ms.Mean(), 2), Fmt(m.tpot_ms.Percentile(50), 2),
                    Fmt(m.tpot_ms.Percentile(99), 2), FmtPct(100.0 - m.AttainmentPct())});
      const std::string system(SystemName(kind));
      json.Add(setup.label, system, "attainment_pct", c + 1, m.AttainmentPct());
      json.Add(setup.label, system, "mean_tpot_ms", c + 1, m.tpot_ms.Mean());
    }
  }
  table.Print(std::cout);
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
