// Figure 1: existing systems cannot efficiently support multi-SLO serving.
//
// A two-category workload (Cat 1 coding copilot with a tight SLO, Cat 2
// chatbot at 50 ms) is served by five existing systems. For each system and
// category we report the per-token latency distribution and the violation
// rate. The paper's shape: every system except vLLM+Priority misses Cat-1
// SLOs badly; vLLM+Priority saves Cat 1 but congests Cat 2.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

int Run(const BenchArgs& args) {
  const Setup setup = LlamaSetup();
  Experiment exp(setup);
  const std::vector<CategorySpec> cats = exp.Categories();
  std::cout << "Figure 1: per-token latency of existing systems on a 2-SLO workload\n";
  std::cout << "Model: " << setup.label << ", trace: real-shaped, 3.5 req/s, mix 50/50\n";
  std::cout << "SLO1 (Cat1 coding) = " << Fmt(ToMs(cats[0].tpot_slo), 1)
            << " ms, SLO2 (Cat2 chat) = " << Fmt(ToMs(cats[1].tpot_slo), 1) << " ms\n\n";

  const std::vector<Request> workload = exp.RealTraceWorkload(
      SweepDurationFor(args), /*mean_rps=*/3.5, WorkloadConfig{.mix = {0.5, 0.5, 0.0}});

  BenchJson json("fig01_motivation");
  TablePrinter table({"System", "Cat", "mean TPOT(ms)", "p50(ms)", "p99(ms)", "Violation(%)"});
  for (SystemKind kind : MotivationSet()) {
    auto scheduler = MakeScheduler(kind);
    const EngineResult result = exp.Run(*scheduler, workload);
    for (int c = 0; c < 2; ++c) {
      const CategoryMetrics& m = result.metrics.per_category[static_cast<size_t>(c)];
      table.AddRow({std::string(SystemName(kind)), c == 0 ? "Cat1" : "Cat2",
                    Fmt(m.tpot_ms.Mean(), 2), Fmt(m.tpot_ms.Percentile(50), 2),
                    Fmt(m.tpot_ms.Percentile(99), 2), FmtPct(100.0 - m.AttainmentPct())});
      const std::string system(SystemName(kind));
      json.Add(setup.label, system, "attainment_pct", c + 1, m.AttainmentPct());
      json.Add(setup.label, system, "mean_tpot_ms", c + 1, m.tpot_ms.Mean());
    }
  }
  table.Print(std::cout);
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
