// Figure 13: request arrival pattern of the synthetic bursty trace.
//
// Each category's arrival rate peaks at a different time (chat early,
// coding mid, summarization late), stressing a system's ability to follow
// shifting SLO composition.
#include <iostream>
#include <string>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

// The Fig. 13 burst schedule, shared with bench_fig14.
std::array<BurstSpec, kNumCategories> Fig13Bursts() {
  return {{
      // Cat 1 (coding) peaks mid-trace.
      {.base_rps = 0.4, .peak_rps = 4.0, .peak_phase = 0.50, .peak_width = 0.10},
      // Cat 2 (chat) peaks early.
      {.base_rps = 0.4, .peak_rps = 3.5, .peak_phase = 0.18, .peak_width = 0.10},
      // Cat 3 (summarization) peaks late.
      {.base_rps = 0.4, .peak_rps = 3.0, .peak_phase = 0.82, .peak_width = 0.10},
  }};
}

int Run(const BenchArgs& args) {
  constexpr double kDuration = 360.0;  // 6 minutes, matching Fig. 13.
  const auto bursts = Fig13Bursts();
  std::cout << "Figure 13: request arrival pattern of the synthetic trace (6 min)\n\n";
  const char* names[] = {"Coding", "Chat", "Summarization"};
  constexpr size_t kBins = 24;
  TablePrinter table({"t(min)", "Coding(r/s)", "Chat(r/s)", "Summ(r/s)"});
  std::array<Histogram, kNumCategories> hists = {Histogram(0, kDuration, kBins),
                                                 Histogram(0, kDuration, kBins),
                                                 Histogram(0, kDuration, kBins)};
  for (int c = 0; c < kNumCategories; ++c) {
    for (SimTime t :
         BurstyArrivals(bursts[static_cast<size_t>(c)], kDuration, 100 + static_cast<uint64_t>(c))) {
      hists[static_cast<size_t>(c)].Add(t);
    }
  }
  BenchJson json("fig13_bursty_trace");
  const double bin_seconds = kDuration / kBins;
  for (size_t b = 0; b < kBins; ++b) {
    table.AddRow({Fmt(hists[0].BinCenter(b) / 60.0, 2), Fmt(hists[0].count(b) / bin_seconds, 2),
                  Fmt(hists[1].count(b) / bin_seconds, 2),
                  Fmt(hists[2].count(b) / bin_seconds, 2)});
    for (int c = 0; c < kNumCategories; ++c) {
      json.Add("", names[c], "req_per_s", hists[0].BinCenter(b) / 60.0,
               hists[static_cast<size_t>(c)].count(b) / bin_seconds);
    }
  }
  table.Print(std::cout);
  for (int c = 0; c < kNumCategories; ++c) {
    std::cout << names[c] << " peak at minute "
              << Fmt(bursts[static_cast<size_t>(c)].peak_phase * kDuration / 60.0, 1) << "\n";
  }
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
