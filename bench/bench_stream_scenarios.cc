// Streaming-scenario sweep: every main-comparison system served from the
// three generator-backed streams (MMPP bursty, diurnal, category churn),
// fed lazily through the streaming engine path.
//
// Complements Figs. 13-14 (whose bursts are materialized per category) with
// workload shapes the vector path cannot express at scale: modulated
// bursts, compressed day cycles, and a category mix that inverts over the
// run.
#include <iostream>
#include <string>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

constexpr double kDuration = 60.0;

struct Scenario {
  std::string label;
  StreamFactory make;
};

std::vector<Scenario> Scenarios(const Experiment& exp) {
  const std::vector<CategorySpec> cats = exp.Categories();
  return {
      {"bursty (MMPP 1.5/9 rps)",
       [cats] {
         MmppStreamConfig config;
         config.mmpp.state_rps = {1.5, 9.0};
         config.mmpp.mean_sojourn_s = {8.0, 4.0};
         config.duration = kDuration;
         config.trace_seed = 1301;
         return MakeMmppStream(cats, config);
       }},
      {"diurnal (4 rps, amp 0.8)",
       [cats] {
         DiurnalStreamConfig config;
         config.duration = kDuration;
         config.mean_rps = 4.0;
         config.diurnal.period_s = kDuration;
         config.diurnal.amplitude = 0.8;
         config.trace_seed = 1302;
         return MakeDiurnalStream(cats, config);
       }},
      {"churn (coding -> summ)",
       [cats] {
         ChurnStreamConfig config;
         config.duration = kDuration;
         config.mean_rps = 4.0;
         config.trace_seed = 1303;
         return MakeChurnStream(cats, config);
       }},
  };
}

void Run() {
  const Experiment exp(QwenSetup());
  std::cout << "Streaming workload scenarios (" << exp.setup().label << ", " << kDuration
            << " s, lazy stream-fed engine)\n\n";

  EngineConfig engine;
  engine.retire_finished = true;
  engine.record_iterations = false;

  for (const Scenario& scenario : Scenarios(exp)) {
    std::cout << "== " << scenario.label << " ==\n";
    TablePrinter table({"system", "finished", "attain(%)", "goodput(tok/s)", "peak resident"});
    for (const ComparisonPoint& point :
         RunComparison(exp, MainComparisonSet(), scenario.make, engine)) {
      table.AddRow({std::string(SystemName(point.kind)),
                    std::to_string(point.result.metrics.finished),
                    Fmt(point.result.metrics.AttainmentPct(), 1),
                    Fmt(point.result.metrics.GoodputTps(), 1),
                    std::to_string(point.result.peak_resident_requests)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace adaserve

int main() {
  adaserve::Run();
  return 0;
}
