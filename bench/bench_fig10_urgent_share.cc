// Figure 10: SLO attainment and goodput w.r.t. the proportion of urgent
// (Cat 1) requests, at a fixed 4.0 req/s.
//
// Expected shape: continuous-batching systems collapse as the urgent share
// grows; SD-based systems hold steady or improve (fewer long Cat-3 prompts
// means less prefill pressure).
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void RunModel(const Setup& setup, const BenchArgs& args, BenchJson& json, SweepRunner& runner) {
  std::cout << "\n" << setup.label << " (4.0 req/s)\n";
  TablePrinter table(
      {"System", "Urgent(%)", "SLO Attainment(%)", "Goodput(tok/s)", "Cat1(%)"});
  const std::vector<SweepCellResult> cells = RunSetupSweep(
      runner, setup, MainComparisonSet(), GridFor(args, {0.3, 0.5, 0.7, 0.9}),
      [&args](const Experiment& exp, double urgent) {
        const double rest = (1.0 - urgent) / 2.0;
        return exp.RealTraceWorkload(SweepDurationFor(args), 4.0,
                                     WorkloadConfig{.mix = {urgent, rest, rest}});
      });
  for (const SweepCellResult& p : cells) {
    const Metrics& m = p.result.metrics;
    table.AddRow({std::string(SystemName(p.system)), Fmt(p.x * 100.0, 0),
                  FmtPct(m.AttainmentPct()), Fmt(m.GoodputTps(), 1),
                  FmtPct(m.per_category[0].AttainmentPct())});
    const std::string system(SystemName(p.system));
    json.Add(setup.label, system, "attainment_pct", p.x, m.AttainmentPct());
    json.Add(setup.label, system, "goodput_tps", p.x, m.GoodputTps());
    AddCellWallClock(json, setup.label, p);
  }
  table.Print(std::cout);
}

int Run(const BenchArgs& args) {
  BenchJson json("fig10_urgent_share");
  SweepRunner runner(args.threads);
  std::cout << "Figure 10: SLO attainment and goodput w.r.t. urgent request proportion ("
            << runner.threads() << " threads)\n";
  RunModel(LlamaSetup(), args, json, runner);
  RunModel(QwenSetup(), args, json, runner);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
