// Figure 10: SLO attainment and goodput w.r.t. the proportion of urgent
// (Cat 1) requests, at a fixed 4.0 req/s.
//
// Expected shape: continuous-batching systems collapse as the urgent share
// grows; SD-based systems hold steady or improve (fewer long Cat-3 prompts
// means less prefill pressure).
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void RunModel(const Setup& setup, const BenchArgs& args, BenchJson& json) {
  Experiment exp(setup);
  std::cout << "\n" << setup.label << " (4.0 req/s)\n";
  TablePrinter table(
      {"System", "Urgent(%)", "SLO Attainment(%)", "Goodput(tok/s)", "Cat1(%)"});
  for (double urgent : GridFor(args, {0.3, 0.5, 0.7, 0.9})) {
    const double rest = (1.0 - urgent) / 2.0;
    const std::vector<Request> workload = exp.RealTraceWorkload(
        SweepDurationFor(args), 4.0, WorkloadConfig{.mix = {urgent, rest, rest}});
    for (const SweepPoint& p :
         RunAllSystems(exp, workload, urgent, MainComparisonSet())) {
      table.AddRow({std::string(SystemName(p.system)), Fmt(urgent * 100.0, 0),
                    FmtPct(p.metrics.AttainmentPct()), Fmt(p.metrics.GoodputTps(), 1),
                    FmtPct(p.metrics.per_category[0].AttainmentPct())});
      const std::string system(SystemName(p.system));
      json.Add(setup.label, system, "attainment_pct", urgent, p.metrics.AttainmentPct());
      json.Add(setup.label, system, "goodput_tps", urgent, p.metrics.GoodputTps());
    }
  }
  table.Print(std::cout);
}

int Run(const BenchArgs& args) {
  BenchJson json("fig10_urgent_share");
  std::cout << "Figure 10: SLO attainment and goodput w.r.t. urgent request proportion\n";
  RunModel(LlamaSetup(), args, json);
  RunModel(QwenSetup(), args, json);
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
