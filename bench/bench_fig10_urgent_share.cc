// Figure 10: SLO attainment and goodput w.r.t. the proportion of urgent
// (Cat 1) requests, at a fixed 4.0 req/s.
//
// Expected shape: continuous-batching systems collapse as the urgent share
// grows; SD-based systems hold steady or improve (fewer long Cat-3 prompts
// means less prefill pressure).
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void RunModel(const Setup& setup) {
  Experiment exp(setup);
  std::cout << "\n" << setup.label << " (4.0 req/s)\n";
  TablePrinter table(
      {"System", "Urgent(%)", "SLO Attainment(%)", "Goodput(tok/s)", "Cat1(%)"});
  for (double urgent : {0.3, 0.5, 0.7, 0.9}) {
    const double rest = (1.0 - urgent) / 2.0;
    const std::vector<Request> workload = exp.RealTraceWorkload(
        kSweepDuration, 4.0, WorkloadConfig{.mix = {urgent, rest, rest}});
    for (const SweepPoint& p :
         RunAllSystems(exp, workload, urgent, MainComparisonSet())) {
      table.AddRow({std::string(SystemName(p.system)), Fmt(urgent * 100.0, 0),
                    FmtPct(p.metrics.AttainmentPct()), Fmt(p.metrics.GoodputTps(), 1),
                    FmtPct(p.metrics.per_category[0].AttainmentPct())});
    }
  }
  table.Print(std::cout);
}

void Run() {
  std::cout << "Figure 10: SLO attainment and goodput w.r.t. urgent request proportion\n";
  RunModel(LlamaSetup());
  RunModel(QwenSetup());
}

}  // namespace
}  // namespace adaserve

int main() {
  adaserve::Run();
  return 0;
}
