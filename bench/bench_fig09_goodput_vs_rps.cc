// Figure 9: goodput (tokens/s of SLO-attaining requests) w.r.t. RPS.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

// Variance study (--seeds N): reruns the sweep over N trace seeds and
// emits mean / Bessel-corrected error-bar rows per cell. Extra rows only —
// the headline series above stays byte-identical, so perf_diff baselines
// recorded without --seeds still gate.
void RunSeedErrorBars(const Setup& setup, const std::vector<double>& rps_grid,
                      const BenchArgs& args, BenchJson& json, SweepRunner& runner) {
  std::vector<uint64_t> seeds;
  for (int s = 0; s < args.seeds; ++s) {
    seeds.push_back(42 + static_cast<uint64_t>(s));
  }
  std::cout << "\n" << setup.label << " (" << args.seeds << "-seed error bars)\n";
  TablePrinter table({"System", "RPS", "Goodput(tok/s)", "+/-", "Attainment(%)", "+/-"});
  const std::vector<SeedShardCell> cells = RunSeedShardedSweep(
      runner, setup, MainComparisonSet(), GridFor(args, rps_grid), seeds,
      [&args](const Experiment& exp, double rps, uint64_t seed) {
        return exp.RealTraceWorkload(SweepDurationFor(args), rps, PeakMix(), seed);
      });
  for (const SeedShardCell& c : cells) {
    const std::string system(SystemName(c.system));
    table.AddRow({system, Fmt(c.x, 1), Fmt(c.goodput_tps.mean(), 1), Fmt(c.GoodputErrTps(), 1),
                  FmtPct(c.attainment_pct.mean()), Fmt(c.AttainmentErrPct(), 1)});
    json.Add(setup.label, system, "goodput_mean_tps", c.x, c.goodput_tps.mean());
    json.Add(setup.label, system, "goodput_err_tps", c.x, c.GoodputErrTps());
    json.Add(setup.label, system, "attainment_err_pct", c.x, c.AttainmentErrPct());
  }
  table.Print(std::cout);
}

void RunModel(const Setup& setup, const std::vector<double>& rps_grid, const BenchArgs& args,
              BenchJson& json, SweepRunner& runner) {
  std::cout << "\n" << setup.label << "\n";
  TablePrinter table({"System", "RPS", "Goodput(tok/s)", "Throughput(tok/s)"});
  // Lazy trace + per-cell prefetch thread: generation overlaps serving and
  // the cell never materializes its trace. Metrics match the vector path
  // byte-for-byte (streaming_equivalence_test).
  const std::vector<SweepCellResult> cells = RunSetupStreamSweep(
      runner, setup, MainComparisonSet(), GridFor(args, rps_grid),
      [&args](const Experiment& exp, double rps) {
        return exp.RealTraceStream(SweepDurationFor(args), rps, PeakMix());
      });
  for (const SweepCellResult& p : cells) {
    const Metrics& m = p.result.metrics;
    table.AddRow({std::string(SystemName(p.system)), Fmt(p.x, 1), Fmt(m.GoodputTps(), 1),
                  Fmt(m.ThroughputTps(), 1)});
    const std::string system(SystemName(p.system));
    json.Add(setup.label, system, "goodput_tps", p.x, m.GoodputTps());
    json.Add(setup.label, system, "throughput_tps", p.x, m.ThroughputTps());
    AddCellWallClock(json, setup.label, p);
  }
  table.Print(std::cout);
  if (args.seeds > 1) {
    RunSeedErrorBars(setup, rps_grid, args, json, runner);
  }
}

int Run(const BenchArgs& args) {
  BenchJson json("fig09_goodput_vs_rps");
  SweepRunner runner(args.threads);
  std::cout << "Figure 9: goodput w.r.t. RPS (mix 60/20/20, real-shaped trace, "
            << runner.threads() << " threads)\n";
  RunModel(LlamaSetup(), LlamaRpsGrid(), args, json, runner);
  RunModel(QwenSetup(), QwenRpsGrid(), args, json, runner);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
