// Figure 9: goodput (tokens/s of SLO-attaining requests) w.r.t. RPS.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void RunModel(const Setup& setup, const std::vector<double>& rps_grid, const BenchArgs& args,
              BenchJson& json, SweepRunner& runner) {
  std::cout << "\n" << setup.label << "\n";
  TablePrinter table({"System", "RPS", "Goodput(tok/s)", "Throughput(tok/s)"});
  const std::vector<SweepCellResult> cells = RunSetupSweep(
      runner, setup, MainComparisonSet(), GridFor(args, rps_grid),
      [&args](const Experiment& exp, double rps) {
        return exp.RealTraceWorkload(SweepDurationFor(args), rps, PeakMix());
      });
  for (const SweepCellResult& p : cells) {
    const Metrics& m = p.result.metrics;
    table.AddRow({std::string(SystemName(p.system)), Fmt(p.x, 1), Fmt(m.GoodputTps(), 1),
                  Fmt(m.ThroughputTps(), 1)});
    const std::string system(SystemName(p.system));
    json.Add(setup.label, system, "goodput_tps", p.x, m.GoodputTps());
    json.Add(setup.label, system, "throughput_tps", p.x, m.ThroughputTps());
    AddCellWallClock(json, setup.label, p);
  }
  table.Print(std::cout);
}

int Run(const BenchArgs& args) {
  BenchJson json("fig09_goodput_vs_rps");
  SweepRunner runner(args.threads);
  std::cout << "Figure 9: goodput w.r.t. RPS (mix 60/20/20, real-shaped trace, "
            << runner.threads() << " threads)\n";
  RunModel(LlamaSetup(), LlamaRpsGrid(), args, json, runner);
  RunModel(QwenSetup(), QwenRpsGrid(), args, json, runner);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
