// Figure 9: goodput (tokens/s of SLO-attaining requests) w.r.t. RPS.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void RunModel(const Setup& setup, const std::vector<double>& rps_grid, const BenchArgs& args,
              BenchJson& json) {
  Experiment exp(setup);
  std::cout << "\n" << setup.label << "\n";
  TablePrinter table({"System", "RPS", "Goodput(tok/s)", "Throughput(tok/s)"});
  for (double rps : GridFor(args, rps_grid)) {
    const std::vector<Request> workload =
        exp.RealTraceWorkload(SweepDurationFor(args), rps, PeakMix());
    for (const SweepPoint& p : RunAllSystems(exp, workload, rps, MainComparisonSet())) {
      table.AddRow({std::string(SystemName(p.system)), Fmt(rps, 1),
                    Fmt(p.metrics.GoodputTps(), 1), Fmt(p.metrics.ThroughputTps(), 1)});
      const std::string system(SystemName(p.system));
      json.Add(setup.label, system, "goodput_tps", rps, p.metrics.GoodputTps());
      json.Add(setup.label, system, "throughput_tps", rps, p.metrics.ThroughputTps());
    }
  }
  table.Print(std::cout);
}

int Run(const BenchArgs& args) {
  BenchJson json("fig09_goodput_vs_rps");
  std::cout << "Figure 9: goodput w.r.t. RPS (mix 60/20/20, real-shaped trace)\n";
  RunModel(LlamaSetup(), LlamaRpsGrid(), args, json);
  RunModel(QwenSetup(), QwenRpsGrid(), args, json);
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
