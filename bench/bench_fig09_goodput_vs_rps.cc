// Figure 9: goodput (tokens/s of SLO-attaining requests) w.r.t. RPS.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void RunModel(const Setup& setup, const std::vector<double>& rps_grid) {
  Experiment exp(setup);
  std::cout << "\n" << setup.label << "\n";
  TablePrinter table({"System", "RPS", "Goodput(tok/s)", "Throughput(tok/s)"});
  for (double rps : rps_grid) {
    const std::vector<Request> workload =
        exp.RealTraceWorkload(kSweepDuration, rps, PeakMix());
    for (const SweepPoint& p : RunAllSystems(exp, workload, rps, MainComparisonSet())) {
      table.AddRow({std::string(SystemName(p.system)), Fmt(rps, 1),
                    Fmt(p.metrics.GoodputTps(), 1), Fmt(p.metrics.ThroughputTps(), 1)});
    }
  }
  table.Print(std::cout);
}

void Run() {
  std::cout << "Figure 9: goodput w.r.t. RPS (mix 60/20/20, real-shaped trace)\n";
  RunModel(LlamaSetup(), LlamaRpsGrid());
  RunModel(QwenSetup(), QwenRpsGrid());
}

}  // namespace
}  // namespace adaserve

int main() {
  adaserve::Run();
  return 0;
}
