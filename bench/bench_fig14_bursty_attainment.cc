// Figure 14: SLO attainment under the synthetic bursty trace (Fig. 13).
//
// Expected shape: AdaServe leads; Sarathi beats plain vLLM; larger static
// speculation lengths do progressively worse under bursts.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

std::array<BurstSpec, kNumCategories> Fig13Bursts() {
  return {{
      {.base_rps = 0.4, .peak_rps = 4.0, .peak_phase = 0.50, .peak_width = 0.10},
      {.base_rps = 0.4, .peak_rps = 3.5, .peak_phase = 0.18, .peak_width = 0.10},
      {.base_rps = 0.4, .peak_rps = 3.0, .peak_phase = 0.82, .peak_width = 0.10},
  }};
}

void RunModel(const Setup& setup, const BenchArgs& args, BenchJson& json, SweepRunner& runner) {
  // Compressed bursty window (shorter still under --smoke).
  const double duration = args.smoke ? 40.0 : 120.0;
  std::cout << "\n" << setup.label << "\n";
  TablePrinter table({"System", "SLO Attainment(%)", "Cat1(%)", "Cat2(%)", "Cat3(%)"});
  const std::vector<SweepCellResult> cells = RunSetupSweep(
      runner, setup, MainComparisonSet(), {0.0},
      [duration](const Experiment& exp, double /*x*/) {
        return BuildBurstyWorkload(exp.Categories(), Fig13Bursts(), duration, /*seed=*/100);
      });
  for (const SweepCellResult& p : cells) {
    const Metrics& m = p.result.metrics;
    table.AddRow({std::string(SystemName(p.system)), FmtPct(m.AttainmentPct()),
                  FmtPct(m.per_category[0].AttainmentPct()),
                  FmtPct(m.per_category[1].AttainmentPct()),
                  FmtPct(m.per_category[2].AttainmentPct())});
    json.Add(setup.label, std::string(SystemName(p.system)), "attainment_pct", 0.0,
             m.AttainmentPct());
    AddCellWallClock(json, setup.label, p);
  }
  table.Print(std::cout);
}

int Run(const BenchArgs& args) {
  BenchJson json("fig14_bursty_attainment");
  SweepRunner runner(args.threads);
  std::cout << "Figure 14: SLO attainment under the synthetic bursty trace ("
            << runner.threads() << " threads)\n";
  RunModel(LlamaSetup(), args, json, runner);
  RunModel(QwenSetup(), args, json, runner);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
