// Figure 14: SLO attainment under the synthetic bursty trace (Fig. 13).
//
// Expected shape: AdaServe leads; Sarathi beats plain vLLM; larger static
// speculation lengths do progressively worse under bursts.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

std::array<BurstSpec, kNumCategories> Fig13Bursts() {
  return {{
      {.base_rps = 0.4, .peak_rps = 4.0, .peak_phase = 0.50, .peak_width = 0.10},
      {.base_rps = 0.4, .peak_rps = 3.5, .peak_phase = 0.18, .peak_width = 0.10},
      {.base_rps = 0.4, .peak_rps = 3.0, .peak_phase = 0.82, .peak_width = 0.10},
  }};
}

void RunModel(const Setup& setup) {
  Experiment exp(setup);
  constexpr double kDuration = 120.0;  // Compressed bursty window.
  const std::vector<Request> workload =
      BuildBurstyWorkload(exp.Categories(), Fig13Bursts(), kDuration, /*seed=*/100);
  std::cout << "\n" << setup.label << "  (" << workload.size() << " requests)\n";
  TablePrinter table({"System", "SLO Attainment(%)", "Cat1(%)", "Cat2(%)", "Cat3(%)"});
  for (const SweepPoint& p : RunAllSystems(exp, workload, 0.0, MainComparisonSet())) {
    table.AddRow({std::string(SystemName(p.system)), FmtPct(p.metrics.AttainmentPct()),
                  FmtPct(p.metrics.per_category[0].AttainmentPct()),
                  FmtPct(p.metrics.per_category[1].AttainmentPct()),
                  FmtPct(p.metrics.per_category[2].AttainmentPct())});
  }
  table.Print(std::cout);
}

void Run() {
  std::cout << "Figure 14: SLO attainment under the synthetic bursty trace\n";
  RunModel(LlamaSetup());
  RunModel(QwenSetup());
}

}  // namespace
}  // namespace adaserve

int main() {
  adaserve::Run();
  return 0;
}
