// Figure 14: SLO attainment under the synthetic bursty trace (Fig. 13).
//
// Expected shape: AdaServe leads; Sarathi beats plain vLLM; larger static
// speculation lengths do progressively worse under bursts.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

std::array<BurstSpec, kNumCategories> Fig13Bursts() {
  return {{
      {.base_rps = 0.4, .peak_rps = 4.0, .peak_phase = 0.50, .peak_width = 0.10},
      {.base_rps = 0.4, .peak_rps = 3.5, .peak_phase = 0.18, .peak_width = 0.10},
      {.base_rps = 0.4, .peak_rps = 3.0, .peak_phase = 0.82, .peak_width = 0.10},
  }};
}

void RunModel(const Setup& setup, const BenchArgs& args, BenchJson& json) {
  Experiment exp(setup);
  // Compressed bursty window (shorter still under --smoke).
  const double duration = args.smoke ? 40.0 : 120.0;
  const std::vector<Request> workload =
      BuildBurstyWorkload(exp.Categories(), Fig13Bursts(), duration, /*seed=*/100);
  std::cout << "\n" << setup.label << "  (" << workload.size() << " requests)\n";
  TablePrinter table({"System", "SLO Attainment(%)", "Cat1(%)", "Cat2(%)", "Cat3(%)"});
  for (const SweepPoint& p : RunAllSystems(exp, workload, 0.0, MainComparisonSet())) {
    table.AddRow({std::string(SystemName(p.system)), FmtPct(p.metrics.AttainmentPct()),
                  FmtPct(p.metrics.per_category[0].AttainmentPct()),
                  FmtPct(p.metrics.per_category[1].AttainmentPct()),
                  FmtPct(p.metrics.per_category[2].AttainmentPct())});
    json.Add(setup.label, std::string(SystemName(p.system)), "attainment_pct", 0.0,
             p.metrics.AttainmentPct());
  }
  table.Print(std::cout);
}

int Run(const BenchArgs& args) {
  BenchJson json("fig14_bursty_attainment");
  std::cout << "Figure 14: SLO attainment under the synthetic bursty trace\n";
  RunModel(LlamaSetup(), args, json);
  RunModel(QwenSetup(), args, json);
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
