// Table 2: request categories and their SLOs, resolved per model setup.
#include <cmath>
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

int Run(const BenchArgs& args) {
  BenchJson json("table2_categories");
  std::cout << "Table 2: request categories and their SLOs\n\n";
  for (const Setup& setup : {LlamaSetup(), QwenSetup()}) {
    Experiment exp(setup);
    std::cout << setup.label << "  (baseline latency " << Fmt(ToMs(exp.BaselineLatency()), 2)
              << " ms)\n";
    TablePrinter table({"Category", "App", "Dataset", "SLO", "SLO(ms)",
                        "Prompt(mean tok)", "Output(mean tok)"});
    const std::vector<CategorySpec> cats = exp.Categories();
    const char* slo_desc[] = {"1.2 x Baseline latency", "50ms", "150ms"};
    for (int c = 0; c < kNumCategories; ++c) {
      const CategorySpec& cat = cats[static_cast<size_t>(c)];
      // Lognormal mean = exp(mu + sigma^2/2).
      const double prompt_mean =
          std::exp(cat.prompt_len.log_mean + cat.prompt_len.log_stddev * cat.prompt_len.log_stddev / 2);
      const double output_mean =
          std::exp(cat.output_len.log_mean + cat.output_len.log_stddev * cat.output_len.log_stddev / 2);
      table.AddRow({cat.name, cat.application, cat.dataset, slo_desc[c],
                    Fmt(ToMs(cat.tpot_slo), 1), Fmt(prompt_mean, 0), Fmt(output_mean, 0)});
      json.Add(setup.label, cat.name, "slo_ms", c + 1, ToMs(cat.tpot_slo));
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
