// Table 2: request categories and their SLOs, resolved per model setup.
#include <cmath>
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

struct CategoryTable {
  std::string label;
  double baseline_ms = 0.0;
  std::vector<std::vector<std::string>> rows;
  std::vector<double> slo_ms;  // per category
};

CategoryTable DeriveCategories(const Setup& setup) {
  const Experiment exp(setup);
  CategoryTable out;
  out.label = setup.label;
  out.baseline_ms = ToMs(exp.BaselineLatency());
  const std::vector<CategorySpec> cats = exp.Categories();
  const char* slo_desc[] = {"1.2 x Baseline latency", "50ms", "150ms"};
  for (int c = 0; c < kNumCategories; ++c) {
    const CategorySpec& cat = cats[static_cast<size_t>(c)];
    // Lognormal mean = exp(mu + sigma^2/2).
    const double prompt_mean =
        std::exp(cat.prompt_len.log_mean + cat.prompt_len.log_stddev * cat.prompt_len.log_stddev / 2);
    const double output_mean =
        std::exp(cat.output_len.log_mean + cat.output_len.log_stddev * cat.output_len.log_stddev / 2);
    out.rows.push_back({cat.name, cat.application, cat.dataset, slo_desc[c],
                        Fmt(ToMs(cat.tpot_slo), 1), Fmt(prompt_mean, 0), Fmt(output_mean, 0)});
    out.slo_ms.push_back(ToMs(cat.tpot_slo));
  }
  return out;
}

int Run(const BenchArgs& args) {
  BenchJson json("table2_categories");
  SweepRunner runner(args.threads);
  std::cout << "Table 2: request categories and their SLOs\n\n";
  std::vector<std::function<CategoryTable()>> tasks;
  for (const Setup& setup : {LlamaSetup(), QwenSetup()}) {
    tasks.push_back([setup] { return DeriveCategories(setup); });
  }
  for (const Timed<CategoryTable>& timed : runner.Map(tasks)) {
    const CategoryTable& cat_table = timed.value;
    std::cout << cat_table.label << "  (baseline latency " << Fmt(cat_table.baseline_ms, 2)
              << " ms)\n";
    TablePrinter table({"Category", "App", "Dataset", "SLO", "SLO(ms)",
                        "Prompt(mean tok)", "Output(mean tok)"});
    for (size_t c = 0; c < cat_table.rows.size(); ++c) {
      table.AddRow(cat_table.rows[c]);
      json.Add(cat_table.label, cat_table.rows[c][0], "slo_ms", static_cast<double>(c + 1),
               cat_table.slo_ms[c]);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
