// Figure 7: request frequency of the real-world trace over time.
//
// Prints the per-bin arrival counts of the rescaled real-shaped trace (an
// ASCII rendition of the paper's frequency plot).
#include <iostream>
#include <string>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

int Run(const BenchArgs& args) {
  TraceConfig config;
  config.duration = 1200.0;  // 20 minutes, matching the paper's window.
  config.mean_rps = 4.0;
  const std::vector<SimTime> arrivals = RealShapedArrivals(config);
  std::cout << "Figure 7: request frequency over time (real-shaped trace, "
            << arrivals.size() << " requests, mean " << Fmt(arrivals.size() / config.duration, 2)
            << " req/s over 20 min)\n\n";

  constexpr size_t kBins = 40;
  Histogram hist(0.0, config.duration, kBins);
  for (SimTime t : arrivals) {
    hist.Add(t);
  }
  size_t max_count = 0;
  for (size_t b = 0; b < kBins; ++b) {
    max_count = std::max(max_count, hist.count(b));
  }
  BenchJson json("fig07_trace");
  TablePrinter table({"t(min)", "req/s", "frequency"});
  for (size_t b = 0; b < kBins; ++b) {
    const double bin_seconds = config.duration / kBins;
    const double rate = hist.count(b) / bin_seconds;
    const auto bar_len = static_cast<size_t>(50.0 * hist.count(b) / max_count);
    table.AddRow({Fmt(hist.BinCenter(b) / 60.0, 1), Fmt(rate, 2), std::string(bar_len, '#')});
    json.Add("", "trace", "req_per_s", hist.BinCenter(b) / 60.0, rate);
  }
  table.Print(std::cout);
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
