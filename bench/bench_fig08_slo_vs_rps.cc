// Figure 8: SLO attainment w.r.t. request arrival rate (both models).
//
// Workload: 60% Cat 1 (tight SLO), 20% Cat 2, 20% Cat 3 on the real-shaped
// trace. Expected shape: AdaServe dominates at every RPS; all systems
// degrade as RPS grows; vLLM-Spec beats the continuous-batching baselines.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void RunModel(const Setup& setup, const std::vector<double>& rps_grid, const BenchArgs& args,
              BenchJson& json, SweepRunner& runner) {
  std::cout << "\n" << setup.label << "\n";
  TablePrinter table({"System", "RPS", "SLO Attainment(%)", "Cat1(%)", "Cat2(%)", "Cat3(%)"});
  // Lazy trace + per-cell prefetch thread: generation overlaps serving and
  // the cell never materializes its trace. Metrics match the vector path
  // byte-for-byte (streaming_equivalence_test).
  const std::vector<SweepCellResult> cells = RunSetupStreamSweep(
      runner, setup, MainComparisonSet(), GridFor(args, rps_grid),
      [&args](const Experiment& exp, double rps) {
        return exp.RealTraceStream(SweepDurationFor(args), rps, PeakMix());
      });
  for (const SweepCellResult& p : cells) {
    const Metrics& m = p.result.metrics;
    table.AddRow({std::string(SystemName(p.system)), Fmt(p.x, 1), FmtPct(m.AttainmentPct()),
                  FmtPct(m.per_category[0].AttainmentPct()),
                  FmtPct(m.per_category[1].AttainmentPct()),
                  FmtPct(m.per_category[2].AttainmentPct())});
    json.Add(setup.label, std::string(SystemName(p.system)), "attainment_pct", p.x,
             m.AttainmentPct());
    AddCellWallClock(json, setup.label, p);
  }
  table.Print(std::cout);
}

int Run(const BenchArgs& args) {
  BenchJson json("fig08_slo_vs_rps");
  SweepRunner runner(args.threads);
  std::cout << "Figure 8: SLO attainment w.r.t. RPS (mix 60/20/20, real-shaped trace, "
            << runner.threads() << " threads)\n";
  RunModel(LlamaSetup(), LlamaRpsGrid(), args, json, runner);
  RunModel(QwenSetup(), QwenRpsGrid(), args, json, runner);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
