// Figure 8: SLO attainment w.r.t. request arrival rate (both models).
//
// Workload: 60% Cat 1 (tight SLO), 20% Cat 2, 20% Cat 3 on the real-shaped
// trace. Expected shape: AdaServe dominates at every RPS; all systems
// degrade as RPS grows; vLLM-Spec beats the continuous-batching baselines.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void RunModel(const Setup& setup, const std::vector<double>& rps_grid, const BenchArgs& args,
              BenchJson& json) {
  Experiment exp(setup);
  std::cout << "\n" << setup.label << "\n";
  TablePrinter table({"System", "RPS", "SLO Attainment(%)", "Cat1(%)", "Cat2(%)", "Cat3(%)"});
  for (double rps : GridFor(args, rps_grid)) {
    const std::vector<Request> workload =
        exp.RealTraceWorkload(SweepDurationFor(args), rps, PeakMix());
    for (const SweepPoint& p : RunAllSystems(exp, workload, rps, MainComparisonSet())) {
      table.AddRow({std::string(SystemName(p.system)), Fmt(rps, 1),
                    FmtPct(p.metrics.AttainmentPct()),
                    FmtPct(p.metrics.per_category[0].AttainmentPct()),
                    FmtPct(p.metrics.per_category[1].AttainmentPct()),
                    FmtPct(p.metrics.per_category[2].AttainmentPct())});
      json.Add(setup.label, std::string(SystemName(p.system)), "attainment_pct", rps,
               p.metrics.AttainmentPct());
    }
  }
  table.Print(std::cout);
}

int Run(const BenchArgs& args) {
  BenchJson json("fig08_slo_vs_rps");
  std::cout << "Figure 8: SLO attainment w.r.t. RPS (mix 60/20/20, real-shaped trace)\n";
  RunModel(LlamaSetup(), LlamaRpsGrid(), args, json);
  RunModel(QwenSetup(), QwenRpsGrid(), args, json);
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
