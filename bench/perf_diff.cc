// CI perf gate: diffs a bench's BENCH_*.json output against a committed
// rolling baseline and fails on regressions.
//
//   perf_diff <baseline.json> <candidate.json> [--rel_tol 0.05] [--abs_tol 2.0]
//             [--time_rel_tol 1.0] [--time_abs_tol 5.0]
//
// Every baseline row (model, system, metric, x) must exist in the
// candidate, and its value must not be below
//   baseline - max(abs_tol, rel_tol * |baseline|).
// The simulation metrics (goodput_tps, throughput_tps, attainment_pct)
// are higher-is-better by construction. "wall_clock_s" rows — the harness
// wall-clock the parallel sweep engine reports — are lower-is-better and
// gated with their own deliberately loose tolerances (--time_rel_tol /
// --time_abs_tol), because wall clock varies across machines where the
// deterministic metrics do not. Improvements beyond tolerance are
// reported as a hint to refresh the baseline but do not fail the gate.
// Exit codes: 0 ok, 1 regression / missing rows, 2 usage or parse error.
//
// The parser handles exactly the flat document BenchJson emits — an
// object with a "rows" array of one-line objects — so no JSON library is
// needed.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Row {
  std::string model;
  std::string system;
  std::string metric;
  double x = 0.0;
  double value = 0.0;
};

// Extracts the string value of `"key": "..."` within `object`, or "".
std::string StringField(const std::string& object, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const size_t at = object.find(needle);
  if (at == std::string::npos) {
    return "";
  }
  const size_t start = at + needle.size();
  const size_t end = object.find('"', start);
  return end == std::string::npos ? "" : object.substr(start, end - start);
}

// Extracts the numeric value of `"key": N` within `object`.
bool NumberField(const std::string& object, const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = object.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  return std::sscanf(object.c_str() + at + needle.size(), "%lf", out) == 1;
}

bool ParseRows(const std::string& path, std::vector<Row>* rows) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "perf_diff: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream os;
  os << in.rdbuf();
  const std::string text = os.str();
  const size_t rows_at = text.find("\"rows\"");
  if (rows_at == std::string::npos) {
    std::cerr << "perf_diff: no \"rows\" array in " << path << "\n";
    return false;
  }
  // Each row object is brace-delimited and contains no nested braces.
  size_t pos = text.find('{', rows_at);
  while (pos != std::string::npos) {
    const size_t end = text.find('}', pos);
    if (end == std::string::npos) {
      break;
    }
    const std::string object = text.substr(pos, end - pos + 1);
    Row row;
    row.model = StringField(object, "model");
    row.system = StringField(object, "system");
    row.metric = StringField(object, "metric");
    if (!row.metric.empty() && NumberField(object, "x", &row.x) &&
        NumberField(object, "value", &row.value)) {
      rows->push_back(row);
    }
    pos = text.find('{', end);
  }
  return true;
}

std::string RowKey(const Row& row) {
  char x[32];
  std::snprintf(x, sizeof(x), "%.6f", row.x);
  return row.model + " / " + row.system + " / " + row.metric + " @ x=" + x;
}

const Row* FindMatch(const std::vector<Row>& rows, const Row& want) {
  for (const Row& row : rows) {
    if (row.model == want.model && row.system == want.system && row.metric == want.metric &&
        std::fabs(row.x - want.x) < 1e-9) {
      return &row;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double rel_tol = 0.05;
  double abs_tol = 2.0;
  double time_rel_tol = 1.0;
  double time_abs_tol = 5.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rel_tol" && i + 1 < argc) {
      rel_tol = std::atof(argv[++i]);
    } else if (arg == "--abs_tol" && i + 1 < argc) {
      abs_tol = std::atof(argv[++i]);
    } else if (arg == "--time_rel_tol" && i + 1 < argc) {
      time_rel_tol = std::atof(argv[++i]);
    } else if (arg == "--time_abs_tol" && i + 1 < argc) {
      time_abs_tol = std::atof(argv[++i]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::cerr << "usage: perf_diff <baseline.json> <candidate.json>"
              << " [--rel_tol 0.05] [--abs_tol 2.0]"
              << " [--time_rel_tol 1.0] [--time_abs_tol 5.0]\n";
    return 2;
  }
  std::vector<Row> baseline;
  std::vector<Row> candidate;
  if (!ParseRows(paths[0], &baseline) || !ParseRows(paths[1], &candidate)) {
    return 2;
  }
  if (baseline.empty()) {
    std::cerr << "perf_diff: baseline " << paths[0] << " has no rows\n";
    return 2;
  }

  int regressions = 0;
  int improvements = 0;
  for (const Row& base : baseline) {
    const Row* cand = FindMatch(candidate, base);
    if (cand == nullptr) {
      std::cout << "MISSING    " << RowKey(base) << " (present in baseline only)\n";
      ++regressions;
      continue;
    }
    // Wall-clock rows are lower-is-better and noisy, so they flip the
    // sign AND use the loose time tolerances. recovery_s (flash-crowd
    // recovery time to SLO) is lower-is-better too, but deterministic —
    // flipped sign, strict tolerances.
    const bool is_time = base.metric == "wall_clock_s";
    const bool lower_is_better = is_time || base.metric == "recovery_s";
    const double slack = is_time
                             ? std::max(time_abs_tol, time_rel_tol * std::fabs(base.value))
                             : std::max(abs_tol, rel_tol * std::fabs(base.value));
    const double delta = (cand->value - base.value) * (lower_is_better ? -1.0 : 1.0);
    if (delta < -slack) {
      std::printf("REGRESSION %s: %.3f -> %.3f (%.3f %s tolerance %.3f)\n",
                  RowKey(base).c_str(), base.value, cand->value, -delta,
                  is_time ? "slower than" : (lower_is_better ? "worse than" : "below"), slack);
      ++regressions;
    } else if (delta > slack) {
      ++improvements;
    }
  }
  std::printf("perf_diff: %zu rows, %d regressions, %d improvements beyond tolerance"
              " (rel_tol %.3f, abs_tol %.3f, time_rel_tol %.3f, time_abs_tol %.3f)\n",
              baseline.size(), regressions, improvements, rel_tol, abs_tol, time_rel_tol,
              time_abs_tol);
  if (improvements > 0 && regressions == 0) {
    std::cout << "note: consistent improvements — consider refreshing bench/baselines/ "
                 "(run the bench with --smoke --threads 4 --json and commit the output)\n";
  }
  return regressions > 0 ? 1 : 0;
}
