// Ablation: the SLO-customized selection phase.
//
// Compares the full pipeline against throughput-only selection (SLO phase
// disabled, i.e. greedy-by-probability like Eagle-2/Sequoia): the SLO phase
// should lift Cat-1 attainment under load at little goodput cost. Also
// reports the oracle gap: expected accepted tokens of Algorithm 1 (target
// probabilities known) vs the practical draft-approximated selection, on
// identical snapshots.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void EndToEnd(const Setup& setup, const BenchArgs& args, SweepRunner& runner, BenchJson& json) {
  TablePrinter table(
      {"Variant", "RPS", "SLO Attainment(%)", "Cat1(%)", "Goodput(tok/s)"});
  const std::vector<double> rps_grid = {3.6, 4.6};
  const std::vector<bool> phases = {true, false};
  std::vector<std::function<EngineResult()>> tasks;
  for (double rps : rps_grid) {
    for (bool slo_phase : phases) {
      tasks.push_back([&setup, &args, rps, slo_phase] {
        const Experiment exp(setup);
        const std::vector<Request> workload =
            exp.RealTraceWorkload(SweepDurationFor(args), rps, PeakMix());
        AdaServeConfig config;
        config.slo_phase_enabled = slo_phase;
        AdaServeScheduler scheduler(config);
        return exp.Run(scheduler, workload);
      });
    }
  }
  const std::vector<Timed<EngineResult>> results = runner.Map(tasks);
  size_t i = 0;
  for (double rps : rps_grid) {
    for (bool slo_phase : phases) {
      const std::string variant = slo_phase ? "full pipeline" : "throughput-only";
      const Metrics& m = results[i++].value.metrics;
      table.AddRow({variant, Fmt(rps, 1), FmtPct(m.AttainmentPct()),
                    FmtPct(m.per_category[0].AttainmentPct()), Fmt(m.GoodputTps(), 1)});
      json.Add(setup.label, variant, "attainment_pct", rps, m.AttainmentPct());
      json.Add(setup.label, variant, "goodput_tps", rps, m.GoodputTps());
    }
  }
  table.Print(std::cout);
}

void OracleGap(const Experiment& exp) {
  std::cout << "\nOracle gap: Algorithm 1 (known f) vs practical selection, batch of 8, "
               "budget sweep\n";
  // Build 8 request contexts.
  constexpr int kBatch = 8;
  std::vector<std::vector<Token>> contexts;
  Rng rng(99);
  for (int i = 0; i < kBatch; ++i) {
    std::vector<Token> ctx;
    for (int t = 0; t < 8; ++t) {
      ctx.push_back(static_cast<Token>(rng.UniformInt(32000)));
    }
    contexts.push_back(ctx);
  }
  TablePrinter table({"Budget", "Oracle E[acc]", "Practical E[acc]", "Ratio(%)"});
  for (int budget : {16, 32, 64, 128}) {
    std::vector<OracleRequest> oracle_reqs(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      oracle_reqs[static_cast<size_t>(i)] = {
          .stream = static_cast<uint64_t>(i), .committed = contexts[static_cast<size_t>(i)],
          .a_req = 1.0};
    }
    const OptimalOutput oracle = OptimalConstruct(exp.target(), oracle_reqs, budget);

    // Practical: beam candidates from the draft, then two-phase selection,
    // then score the selected nodes with *target* probabilities.
    std::vector<TokenTree> candidates;
    for (int i = 0; i < kBatch; ++i) {
      candidates.push_back(BuildCandidateTree(exp.draft(), static_cast<uint64_t>(i),
                                              contexts[static_cast<size_t>(i)],
                                              BeamConfig{.depth = 8, .width = 4}));
    }
    std::vector<SelectionRequest> sel_reqs(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      sel_reqs[static_cast<size_t>(i)] = {.tree = &candidates[static_cast<size_t>(i)],
                                          .a_cap = 1.0};
    }
    const SelectionResult sel = SelectTokens(sel_reqs, budget);
    // Score with target-model path probabilities (true acceptance rates).
    double practical = kBatch;  // the n bonus tokens
    for (int i = 0; i < kBatch; ++i) {
      const TokenTree& tree = candidates[static_cast<size_t>(i)];
      for (NodeId id = 1; id < tree.size(); ++id) {
        if (!sel.selected[static_cast<size_t>(i)][static_cast<size_t>(id)]) {
          continue;
        }
        // True f(v): product of target conditionals along the path.
        std::vector<Token> ctx = contexts[static_cast<size_t>(i)];
        double f = 1.0;
        for (Token tok : tree.PathTokens(id)) {
          f *= exp.target().NextDist(static_cast<uint64_t>(i), ctx).ProbOf(tok);
          ctx.push_back(tok);
        }
        practical += f;
      }
    }
    table.AddRow({std::to_string(budget), Fmt(oracle.TotalExpected(), 2), Fmt(practical, 2),
                  Fmt(100.0 * practical / oracle.TotalExpected(), 1)});
  }
  table.Print(std::cout);
}

int Run(const BenchArgs& args) {
  BenchJson json("ablation_selection");
  SweepRunner runner(args.threads);
  std::cout << "Ablation: SLO-customized selection phase (" << runner.threads()
            << " threads)\n";
  const Setup setup = LlamaSetup();
  std::cout << setup.label << "\n\n";
  EndToEnd(setup, args, runner, json);
  // The oracle-gap analysis is a handful of snapshot constructions, not a
  // sweep — it stays serial.
  const Experiment exp(setup);
  OracleGap(exp);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
