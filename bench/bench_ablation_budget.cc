// Ablation: the roofline-derived verification token budget B.
//
// Sweeps multiples of the derived budget. Under-provisioned budgets starve
// the SLO phase; over-provisioned budgets push iterations past the roofline
// knee so every token costs compute time. The derived B should sit near the
// attainment/goodput sweet spot — the paper's "hardware-aware" claim.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void Run() {
  std::cout << "Ablation: verification token budget B vs the roofline-derived value\n";
  const Setup setup = LlamaSetup();
  Experiment exp(setup);
  const int derived = DeriveTokenBudget(exp.target_latency());
  std::cout << setup.label << ", derived B = " << derived << " (4.0 req/s)\n\n";
  const std::vector<Request> workload = exp.RealTraceWorkload(kSweepDuration, 4.0, PeakMix());
  TablePrinter table({"B", "x derived", "SLO Attainment(%)", "Goodput(tok/s)", "Mean acc"});
  for (double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const int budget = std::max(8, static_cast<int>(derived * mult));
    AdaServeScheduler scheduler;
    const EngineResult result = exp.Run(scheduler, workload, {}, budget);
    table.AddRow({std::to_string(budget), Fmt(mult, 2), FmtPct(result.metrics.AttainmentPct()),
                  Fmt(result.metrics.GoodputTps(), 1), Fmt(result.metrics.mean_accepted, 2)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace adaserve

int main() {
  adaserve::Run();
  return 0;
}
