// Ablation: the roofline-derived verification token budget B.
//
// Sweeps multiples of the derived budget. Under-provisioned budgets starve
// the SLO phase; over-provisioned budgets push iterations past the roofline
// knee so every token costs compute time. The derived B should sit near the
// attainment/goodput sweet spot — the paper's "hardware-aware" claim.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

int Run(const BenchArgs& args) {
  SweepRunner runner(args.threads);
  std::cout << "Ablation: verification token budget B vs the roofline-derived value ("
            << runner.threads() << " threads)\n";
  const Setup setup = LlamaSetup();
  const int derived = DeriveTokenBudget(Experiment(setup).target_latency());
  std::cout << setup.label << ", derived B = " << derived << " (4.0 req/s)\n\n";

  const std::vector<double> mults = {0.25, 0.5, 1.0, 2.0, 4.0};
  std::vector<std::function<EngineResult()>> tasks;
  for (double mult : mults) {
    const int budget = std::max(8, static_cast<int>(derived * mult));
    tasks.push_back([&setup, &args, budget] {
      const Experiment exp(setup);
      const std::vector<Request> workload =
          exp.RealTraceWorkload(SweepDurationFor(args), 4.0, PeakMix());
      AdaServeScheduler scheduler;
      return exp.Run(scheduler, workload, {}, budget);
    });
  }
  const std::vector<Timed<EngineResult>> results = runner.Map(tasks);

  BenchJson json("ablation_budget");
  TablePrinter table({"B", "x derived", "SLO Attainment(%)", "Goodput(tok/s)", "Mean acc"});
  for (size_t i = 0; i < mults.size(); ++i) {
    const double mult = mults[i];
    const int budget = std::max(8, static_cast<int>(derived * mult));
    const Metrics& m = results[i].value.metrics;
    table.AddRow({std::to_string(budget), Fmt(mult, 2), FmtPct(m.AttainmentPct()),
                  Fmt(m.GoodputTps(), 1), Fmt(m.mean_accepted, 2)});
    json.Add(setup.label, "AdaServe", "attainment_pct", mult, m.AttainmentPct());
    json.Add(setup.label, "AdaServe", "goodput_tps", mult, m.GoodputTps());
  }
  table.Print(std::cout);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
