// Microbenchmarks (google-benchmark): CPU cost of the hot scheduling
// operations — candidate-tree construction, two-phase selection, and tree
// verification. These ground the Fig. 15 claim that scheduling overhead is
// a fraction of a percent of iteration time (iterations are tens of ms).
#include <benchmark/benchmark.h>

#include "src/adaserve.h"

namespace adaserve {
namespace {

const Experiment& GetExperiment() {
  static const Experiment* exp = new Experiment(LlamaSetup());
  return *exp;
}

std::vector<Token> MakeContext(uint64_t seed, int len) {
  Rng rng(seed);
  std::vector<Token> ctx;
  ctx.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    ctx.push_back(static_cast<Token>(rng.UniformInt(32000)));
  }
  return ctx;
}

void BM_DraftNextDist(benchmark::State& state) {
  const Experiment& exp = GetExperiment();
  const std::vector<Token> ctx = MakeContext(1, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp.draft().NextDist(7, ctx));
  }
}
BENCHMARK(BM_DraftNextDist);

void BM_BuildCandidateTree(benchmark::State& state) {
  const Experiment& exp = GetExperiment();
  const std::vector<Token> ctx = MakeContext(2, 32);
  const BeamConfig beam{.depth = static_cast<int>(state.range(0)), .width = 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildCandidateTree(exp.draft(), 7, ctx, beam));
  }
}
BENCHMARK(BM_BuildCandidateTree)->Arg(2)->Arg(4)->Arg(8);

void BM_SelectTokens(benchmark::State& state) {
  const Experiment& exp = GetExperiment();
  const int batch = static_cast<int>(state.range(0));
  std::vector<std::vector<Token>> contexts;
  std::vector<TokenTree> trees;
  for (int i = 0; i < batch; ++i) {
    contexts.push_back(MakeContext(static_cast<uint64_t>(i), 32));
    trees.push_back(BuildCandidateTree(exp.draft(), static_cast<uint64_t>(i), contexts.back(),
                                       BeamConfig{.depth = 6, .width = 4}));
  }
  std::vector<SelectionRequest> reqs(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    reqs[static_cast<size_t>(i)] = {.tree = &trees[static_cast<size_t>(i)], .a_cap = 2.0};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectTokens(reqs, /*budget=*/128));
  }
}
BENCHMARK(BM_SelectTokens)->Arg(8)->Arg(32)->Arg(64);

void BM_VerifyTree(benchmark::State& state) {
  const Experiment& exp = GetExperiment();
  const std::vector<Token> ctx = MakeContext(3, 32);
  const TokenTree tree =
      BuildCandidateTree(exp.draft(), 7, ctx, BeamConfig{.depth = 6, .width = 4});
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        VerifyTree(exp.target(), 7, ctx, tree, {}, DecodeMode::kStochastic, rng));
  }
}
BENCHMARK(BM_VerifyTree);

void BM_OptimalConstruct(benchmark::State& state) {
  const Experiment& exp = GetExperiment();
  const std::vector<Token> ctx = MakeContext(4, 32);
  const OracleRequest req{.stream = 7, .committed = ctx, .a_req = 2.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        OptimalConstruct(exp.target(), std::span<const OracleRequest>(&req, 1),
                         static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_OptimalConstruct)->Arg(16)->Arg(64);

// The serving loop's single hottest function (~80% of a sweep's CPU before
// the duplicate-coalescing rewrite): building a SparseDist from weighted
// token draws. Exercises the duplicate-heavy shape NextDist produces.
void BM_SparseDistFromWeights(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  std::vector<Token> tokens;
  std::vector<double> weights;
  for (int i = 0; i < n; ++i) {
    tokens.push_back(static_cast<Token>(rng.UniformInt(n / 2)));  // ~2x duplicates.
    weights.push_back(rng.Uniform() + 0.01);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SparseDist::FromWeights(std::span<const Token>(tokens), std::span<const double>(weights)));
  }
}
BENCHMARK(BM_SparseDistFromWeights)->Arg(16)->Arg(64);

// Target-model next-token distribution: FromWeights plus the synthetic
// LM's stick-breaking walk, all on SmallVector scratch (zero heap
// allocations at steady state).
void BM_TargetNextDist(benchmark::State& state) {
  const Experiment& exp = GetExperiment();
  const std::vector<Token> ctx = MakeContext(8, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp.target().NextDist(7, ctx));
  }
}
BENCHMARK(BM_TargetNextDist);

// Percentile queries at metrics finalization: the cached sorted view makes
// the k-th query O(1) after the first.
void BM_SamplesPercentiles(benchmark::State& state) {
  Rng rng(9);
  Samples s;
  for (int i = 0; i < 4096; ++i) {
    s.Add(rng.Uniform());
  }
  for (auto _ : state) {
    double acc = 0.0;
    for (double p : {50.0, 90.0, 95.0, 99.0}) {
      acc += s.Percentile(p);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SamplesPercentiles);

}  // namespace
}  // namespace adaserve

BENCHMARK_MAIN();
