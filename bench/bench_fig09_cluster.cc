// Figure 9, cluster scale: fleet goodput w.r.t. RPS across routing
// policies.
//
// Four heterogeneous Llama-3.1-70B replicas — the baseline A100 TP4
// shape, an A100 TP8 wide shape, the H100 TP8 spec-decode-strong shape,
// and a TP4 shape with its 8B draft offloaded to a dedicated H100 —
// serve one real-shaped arrival stream under each of the four routing
// policies (round-robin, join-shortest-queue, power-of-two-choices,
// SLO-aware). The sweep shows where queue-aware routing pulls ahead of
// round-robin and where SLO-aware routing (steering tight-TPOT
// categories to spec-strong replicas) beats both.
//
// Deterministic: the routing pre-pass is serial and seeded, replicas run
// as independent tasks, so same-seed reruns are byte-identical at any
// --threads value.
#include <algorithm>
#include <iostream>
#include <thread>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

// Fleet-level RPS grid: four replicas absorb roughly 4x the
// single-replica Llama saturation range (Fig. 9 swept 2.6-5.0).
std::vector<double> ClusterRpsGrid() { return {8.0, 10.0, 12.0, 14.0, 16.0}; }

constexpr const char* kFleetLabel = "Llama-3.1-70B-cluster4";

ClusterConfig MakeFleet(RouterPolicy policy, int threads) {
  ClusterConfig config;
  for (Setup setup :
       {LlamaSetup(), LlamaTp8Setup(), LlamaH100Tp8Setup(), LlamaDraftOffloadSetup()}) {
    ReplicaSpec spec;
    spec.setup = std::move(setup);
    config.replicas.push_back(std::move(spec));
  }
  config.router = policy;
  config.threads = threads;
  return config;
}

int Run(const BenchArgs& args) {
  BenchJson json("fig09_cluster");
  const int threads = args.threads > 0
                          ? args.threads
                          : std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::cout << "Figure 9 (cluster): fleet goodput w.r.t. RPS (4 heterogeneous replicas, "
            << "mix 60/20/20, real-shaped trace, " << threads << " threads)\n";

  // One reference Experiment generates the fleet-wide arrival stream; the
  // per-replica Experiments are rebuilt inside each cluster run.
  const Experiment reference(LlamaSetup());
  const std::vector<double> grid = GridFor(args, ClusterRpsGrid());

  std::cout << "\n" << kFleetLabel << "\n";
  TablePrinter table({"Router", "RPS", "Goodput(tok/s)", "Attainment(%)", "Throughput(tok/s)"});
  double total_wall_clock_s = 0.0;
  for (RouterPolicy policy : AllRouterPolicies()) {
    const Cluster cluster(MakeFleet(policy, args.threads));
    const std::string system(RouterPolicyName(policy));
    for (double rps : grid) {
      auto stream = reference.RealTraceStream(SweepDurationFor(args), rps, PeakMix());
      const ClusterResult result = cluster.Run(SystemKind::kAdaServe, *stream);
      const Metrics& m = result.metrics.merged;
      table.AddRow({system, Fmt(rps, 1), Fmt(m.GoodputTps(), 1), FmtPct(m.AttainmentPct()),
                    Fmt(m.ThroughputTps(), 1)});
      json.Add(kFleetLabel, system, "goodput_tps", rps, m.GoodputTps());
      json.Add(kFleetLabel, system, "attainment_pct", rps, m.AttainmentPct());
      json.Add(kFleetLabel, system, "throughput_tps", rps, m.ThroughputTps());
      json.Add(kFleetLabel, system, "wall_clock_s", rps, result.wall_clock_s);
      total_wall_clock_s += result.wall_clock_s;
    }
  }
  table.Print(std::cout);
  json.SetRunInfo(threads, total_wall_clock_s);
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
