// Shared sweep machinery for the end-to-end comparison benches
// (Figs. 8, 9, 12 share the RPS sweep; Figs. 10, 11 fix RPS and vary one
// workload knob). The sweep benches fan their (system × point) grids out
// over SweepRunner (src/harness/sweep_runner.h); --threads controls the
// worker count and --threads 1 reproduces the historical serial path
// exactly (metrics are byte-identical at any thread count — pinned by
// tests/sweep_parallel_equivalence_test.cc).
#ifndef ADASERVE_BENCH_SWEEP_COMMON_H_
#define ADASERVE_BENCH_SWEEP_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/adaserve.h"

namespace adaserve {

// Trace length used by the sweep benches. Long enough for queueing dynamics
// to dominate; short enough that the full bench suite runs in minutes.
inline constexpr double kSweepDuration = 40.0;

// RPS grids per model (paper Figs. 8-9 x-axes, coarsened to 0.4 steps).
inline std::vector<double> LlamaRpsGrid() { return {2.6, 3.0, 3.4, 3.8, 4.2, 4.6, 5.0}; }
inline std::vector<double> QwenRpsGrid() { return {2.4, 2.8, 3.2, 3.6, 4.0}; }

// The peak-load category mix of the end-to-end comparison (60% Cat 1).
inline WorkloadConfig PeakMix() { return WorkloadConfig{.mix = {0.6, 0.2, 0.2}}; }

struct SweepPoint {
  SystemKind system;
  double x = 0.0;  // the swept knob (RPS, urgent share, SLO scale)
  Metrics metrics;
};

// Serial reference: runs every system in `systems` over `workload` under
// `exp`, sharing one Experiment and one workload. The benches now sweep
// through SweepRunner instead; this stays as the one-Experiment oracle the
// parallel-equivalence test compares against.
inline std::vector<SweepPoint> RunAllSystems(const Experiment& exp,
                                             const std::vector<Request>& workload, double x,
                                             const std::vector<SystemKind>& systems) {
  std::vector<SweepPoint> points;
  points.reserve(systems.size());
  for (SystemKind kind : systems) {
    auto scheduler = MakeScheduler(kind);
    const EngineResult result = exp.Run(*scheduler, workload);
    points.push_back({kind, x, result.metrics});
  }
  return points;
}

// --- CI perf tracking: machine-readable bench output ---

// Shared flags of every bench_fig*/bench_table* binary.
struct BenchArgs {
  // --json <path> (or --json=<path>): additionally emit the bench's key
  // series as a flat JSON document for the CI perf job.
  std::string json_path;
  // --smoke: CI-sized sweep — short trace, endpoint-only grids — so the
  // perf job finishes in unit-test time. Baselines under bench/baselines/
  // are recorded in this mode.
  bool smoke = false;
  // --threads N (or --threads=N): sweep worker count. 0 (default) resolves
  // to hardware_concurrency; 1 is the exact serial path.
  int threads = 0;
  // --seeds N (or --seeds=N): benches that support variance studies rerun
  // their sweep over N trace seeds and emit mean / sample-stddev error-bar
  // rows (RunSeedShardedSweep). 1 (default) skips the error-bar pass.
  int seeds = 1;
  // --admission: benches that support it (bench_fig01_motivation) run the
  // admission-priority ablation — FIFO vs SLO-urgent recompute eviction vs
  // preemptive pause/resume under a tight KV cap — instead of their
  // default study.
  bool admission = false;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--admission") {
      args.admission = true;
    } else if (arg == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json_path = arg.substr(7);
    } else if (arg == "--threads" && i + 1 < argc) {
      args.threads = std::atoi(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      args.threads = std::atoi(arg.c_str() + 10);
    } else if (arg == "--seeds" && i + 1 < argc) {
      args.seeds = std::atoi(argv[++i]);
    } else if (arg.rfind("--seeds=", 0) == 0) {
      args.seeds = std::atoi(arg.c_str() + 8);
    }
  }
  if (args.threads < 0) {
    args.threads = 0;
  }
  if (args.seeds < 1) {
    args.seeds = 1;
  }
  return args;
}

// Trace length honoring --smoke.
inline double SweepDurationFor(const BenchArgs& args) { return args.smoke ? 10.0 : kSweepDuration; }

// Sweep grid honoring --smoke: endpoints only, so the perf job still sees
// both the easy and the saturated end of the curve.
inline std::vector<double> GridFor(const BenchArgs& args, std::vector<double> grid) {
  if (!args.smoke || grid.size() <= 2) {
    return grid;
  }
  return {grid.front(), grid.back()};
}

// Collects (model, system, metric, x) -> value rows and writes them as one
// flat JSON document. The format is deliberately minimal — an object with
// a "bench" name and a "rows" array of flat objects — so bench/perf_diff.cc
// can parse it without a JSON library.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  void Add(const std::string& model, const std::string& system, const std::string& metric,
           double x, double value) {
    rows_.push_back(Row{model, system, metric, x, value});
  }

  // Records the sweep's execution shape: worker count as a top-level
  // field, total harness wall clock both as a top-level field and as a
  // "harness / total / wall_clock_s" row so perf_diff can gate it (the
  // per-point rows added by the benches track individual cells).
  void SetRunInfo(int threads, double total_wall_clock_s) {
    threads_ = threads;
    total_wall_clock_s_ = total_wall_clock_s;
    Add("harness", "total", "wall_clock_s", 0.0, total_wall_clock_s);
  }

  std::string ToString() const {
    std::ostringstream os;
    os << "{\n  \"bench\": \"" << bench_ << "\",\n";
    if (threads_ > 0) {
      os << "  \"threads\": " << threads_ << ",\n";
      os << "  \"wall_clock_s\": " << FmtJsonNumber(total_wall_clock_s_) << ",\n";
    }
    os << "  \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      os << "    {\"model\": \"" << r.model << "\", \"system\": \"" << r.system
         << "\", \"metric\": \"" << r.metric << "\", \"x\": " << FmtJsonNumber(r.x)
         << ", \"value\": " << FmtJsonNumber(r.value) << "}" << (i + 1 < rows_.size() ? "," : "")
         << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
  }

  bool WriteTo(const std::string& path) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out << ToString();
    return out.good();
  }

 private:
  struct Row {
    std::string model;
    std::string system;
    std::string metric;
    double x;
    double value;
  };

  static std::string FmtJsonNumber(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
  }

  std::string bench_;
  int threads_ = 0;
  double total_wall_clock_s_ = 0.0;
  std::vector<Row> rows_;
};

// Adds the per-point wall-clock row of one finished sweep cell.
inline void AddCellWallClock(BenchJson& json, const std::string& model,
                             const SweepCellResult& cell) {
  json.Add(model, std::string(SystemName(cell.system)), "wall_clock_s", cell.x,
           cell.wall_clock_s);
}

// Writes the JSON document when --json was given; exits non-zero on I/O
// failure so CI never silently gates on a stale file.
inline int FinishBench(const BenchArgs& args, const BenchJson& json) {
  if (args.json_path.empty()) {
    return 0;
  }
  if (!json.WriteTo(args.json_path)) {
    std::cerr << "error: could not write " << args.json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << args.json_path << "\n";
  return 0;
}

}  // namespace adaserve

#endif  // ADASERVE_BENCH_SWEEP_COMMON_H_
