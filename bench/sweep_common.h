// Shared sweep machinery for the end-to-end comparison benches
// (Figs. 8, 9, 12 share the RPS sweep; Figs. 10, 11 fix RPS and vary one
// workload knob).
#ifndef ADASERVE_BENCH_SWEEP_COMMON_H_
#define ADASERVE_BENCH_SWEEP_COMMON_H_

#include <string>
#include <vector>

#include "src/adaserve.h"

namespace adaserve {

// Trace length used by the sweep benches. Long enough for queueing dynamics
// to dominate; short enough that the full bench suite runs in minutes.
inline constexpr double kSweepDuration = 40.0;

// RPS grids per model (paper Figs. 8-9 x-axes, coarsened to 0.4 steps).
inline std::vector<double> LlamaRpsGrid() { return {2.6, 3.0, 3.4, 3.8, 4.2, 4.6, 5.0}; }
inline std::vector<double> QwenRpsGrid() { return {2.4, 2.8, 3.2, 3.6, 4.0}; }

// The peak-load category mix of the end-to-end comparison (60% Cat 1).
inline WorkloadConfig PeakMix() { return WorkloadConfig{.mix = {0.6, 0.2, 0.2}}; }

struct SweepPoint {
  SystemKind system;
  double x = 0.0;  // the swept knob (RPS, urgent share, SLO scale)
  Metrics metrics;
};

// Runs every system in `systems` over `workload` under `exp`.
inline std::vector<SweepPoint> RunAllSystems(const Experiment& exp,
                                             const std::vector<Request>& workload, double x,
                                             const std::vector<SystemKind>& systems) {
  std::vector<SweepPoint> points;
  points.reserve(systems.size());
  for (SystemKind kind : systems) {
    auto scheduler = MakeScheduler(kind);
    const EngineResult result = exp.Run(*scheduler, workload);
    points.push_back({kind, x, result.metrics});
  }
  return points;
}

}  // namespace adaserve

#endif  // ADASERVE_BENCH_SWEEP_COMMON_H_
