// Streaming-scale demonstration: serves a million-request bursty (MMPP)
// workload through the lazy arrival path and reports peak residency.
//
// The engine pulls requests from the generator on demand, retires finished
// requests incrementally, and skips the per-iteration log, so the resident
// request count stays bounded by max_active_requests + arrival_horizon
// (plus a short retirement tail) no matter how long the trace is — the run
// never materializes the trace. (Metrics retain two scalar samples per
// finished request for percentiles; that is the only per-request state.)
//
// Usage: bench_streaming_scale [num_requests]   (default 1,000,000)
#include <cstdlib>
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

// Tiny fixed lengths: this bench stresses request volume and residency, not
// token throughput.
std::vector<CategorySpec> ScaleCategories(const Experiment& exp) {
  std::vector<CategorySpec> cats = exp.Categories();
  for (CategorySpec& cat : cats) {
    cat.prompt_len = LengthDist{.log_mean = 0.0, .log_stddev = 0.0, .min_len = 16, .max_len = 16};
    cat.output_len = LengthDist{.log_mean = 0.0, .log_stddev = 0.0, .min_len = 8, .max_len = 8};
  }
  return cats;
}

void Run(size_t num_requests) {
  const Experiment exp(GoldenSetup());

  MmppStreamConfig config;
  // Heavy ON/OFF bursts: quiet 50 rps baseline, 2000 rps bursts.
  config.mmpp.state_rps = {50.0, 2000.0};
  config.mmpp.mean_sojourn_s = {5.0, 2.0};
  config.duration = 1e12;  // effectively unbounded; the cap ends the stream
  config.trace_seed = 2024;
  config.max_requests = num_requests;
  auto stream = MakeMmppStream(ScaleCategories(exp), config);

  EngineConfig engine;
  engine.max_active_requests = 256;
  engine.arrival_horizon = 256;
  engine.retire_finished = true;
  engine.record_iterations = false;

  std::cout << "Streaming scale: " << num_requests
            << "-request MMPP bursty stream, lazy arrivals, retired finishes\n\n";
  VllmScheduler scheduler;
  const EngineResult result = exp.Run(scheduler, *stream, engine);

  // Queue <= active + horizon, active <= cap, plus a short-lived tail of
  // finished requests awaiting in-order retirement.
  const size_t residency_bound =
      static_cast<size_t>(engine.arrival_horizon + 4 * engine.max_active_requests);
  TablePrinter table({"metric", "value"});
  table.AddRow({"requests emitted", std::to_string(stream->emitted())});
  table.AddRow({"requests finished", std::to_string(result.metrics.finished)});
  table.AddRow({"iterations", std::to_string(result.total_iterations)});
  table.AddRow({"peak resident requests", std::to_string(result.peak_resident_requests)});
  table.AddRow({"residency bound checked", std::to_string(residency_bound)});
  table.AddRow({"makespan (s)", Fmt(result.metrics.makespan, 1)});
  table.AddRow({"throughput (tok/s)", Fmt(result.metrics.ThroughputTps(), 1)});
  table.AddRow({"slo attainment (%)", Fmt(result.metrics.AttainmentPct(), 2)});
  table.Print(std::cout);

  const bool bounded = result.peak_resident_requests <= residency_bound;
  std::cout << "\npeak residency " << (bounded ? "is" : "is NOT")
            << " O(active): " << result.peak_resident_requests << " resident vs "
            << num_requests << " total\n";
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  size_t num_requests = 1'000'000;
  if (argc > 1) {
    num_requests = static_cast<size_t>(std::atoll(argv[1]));
  }
  adaserve::Run(num_requests);
  return 0;
}
