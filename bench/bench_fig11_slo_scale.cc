// Figure 11: SLO attainment and goodput w.r.t. the Cat-1 SLO scale
// (multiples of the baseline decode latency), at 4.0 req/s with 60% urgent.
//
// Expected shape: continuous-batching systems fall off a cliff below scale
// 1.0 (they cannot beat one-token-per-iteration latency); SD systems keep
// serving sub-baseline SLOs, with AdaServe on top because it prioritises
// the urgent class.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void RunModel(const Setup& setup, const BenchArgs& args, BenchJson& json, SweepRunner& runner) {
  std::cout << "\n" << setup.label << " (4.0 req/s, 60% urgent)\n";
  TablePrinter table({"System", "SLO scale", "SLO Attainment(%)", "Goodput(tok/s)", "Cat1(%)"});
  const std::vector<SweepCellResult> cells = RunSetupSweep(
      runner, setup, MainComparisonSet(), GridFor(args, {1.6, 1.4, 1.2, 1.0, 0.8, 0.6}),
      [&args](const Experiment& exp, double scale) {
        const CategoryConfig cat_config{.cat1_slo_scale = scale};
        TraceConfig trace;
        trace.duration = SweepDurationFor(args);
        trace.mean_rps = 4.0;
        return BuildWorkload(exp.Categories(cat_config), RealShapedArrivals(trace), PeakMix());
      });
  for (const SweepCellResult& p : cells) {
    const Metrics& m = p.result.metrics;
    table.AddRow({std::string(SystemName(p.system)), Fmt(p.x, 1), FmtPct(m.AttainmentPct()),
                  Fmt(m.GoodputTps(), 1), FmtPct(m.per_category[0].AttainmentPct())});
    const std::string system(SystemName(p.system));
    json.Add(setup.label, system, "attainment_pct", p.x, m.AttainmentPct());
    json.Add(setup.label, system, "goodput_tps", p.x, m.GoodputTps());
    AddCellWallClock(json, setup.label, p);
  }
  table.Print(std::cout);
}

int Run(const BenchArgs& args) {
  BenchJson json("fig11_slo_scale");
  SweepRunner runner(args.threads);
  std::cout << "Figure 11: SLO attainment and goodput w.r.t. SLO scale (" << runner.threads()
            << " threads)\n";
  RunModel(LlamaSetup(), args, json, runner);
  RunModel(QwenSetup(), args, json, runner);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
