// Ablation: adaptive (d, w) control (Eqs. 8-9) vs fixed configurations.
//
// The adaptive policy should match or beat every fixed (d, w) point across
// load levels, because no single fixed configuration is right at both ends.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void Run() {
  std::cout << "Ablation: adaptive speculation control vs fixed (d, w)\n";
  const Setup setup = LlamaSetup();
  Experiment exp(setup);
  std::cout << setup.label << ", mix 60/20/20\n\n";

  struct Variant {
    std::string label;
    AdaServeConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"adaptive (Eqs. 8-9)", AdaServeConfig{}});
  for (int d : {2, 4, 8}) {
    for (int w : {1, 2, 4}) {
      AdaServeConfig config;
      config.adaptive_control = false;
      config.fixed_beam = {.depth = d, .width = w};
      variants.push_back({"fixed d=" + std::to_string(d) + " w=" + std::to_string(w), config});
    }
  }

  TablePrinter table({"Variant", "RPS", "SLO Attainment(%)", "Goodput(tok/s)", "Mean acc"});
  for (double rps : {2.6, 3.6, 4.6}) {
    const std::vector<Request> workload = exp.RealTraceWorkload(kSweepDuration, rps, PeakMix());
    for (const Variant& v : variants) {
      AdaServeScheduler scheduler(v.config);
      const EngineResult result = exp.Run(scheduler, workload);
      table.AddRow({v.label, Fmt(rps, 1), FmtPct(result.metrics.AttainmentPct()),
                    Fmt(result.metrics.GoodputTps(), 1), Fmt(result.metrics.mean_accepted, 2)});
    }
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace adaserve

int main() {
  adaserve::Run();
  return 0;
}
