// Ablation: adaptive (d, w) control (Eqs. 8-9) vs fixed configurations.
//
// The adaptive policy should match or beat every fixed (d, w) point across
// load levels, because no single fixed configuration is right at both ends.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

int Run(const BenchArgs& args) {
  SweepRunner runner(args.threads);
  std::cout << "Ablation: adaptive speculation control vs fixed (d, w) (" << runner.threads()
            << " threads)\n";
  const Setup setup = LlamaSetup();
  std::cout << setup.label << ", mix 60/20/20\n\n";

  struct Variant {
    std::string label;
    AdaServeConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"adaptive (Eqs. 8-9)", AdaServeConfig{}});
  for (int d : {2, 4, 8}) {
    for (int w : {1, 2, 4}) {
      AdaServeConfig config;
      config.adaptive_control = false;
      config.fixed_beam = {.depth = d, .width = w};
      variants.push_back({"fixed d=" + std::to_string(d) + " w=" + std::to_string(w), config});
    }
  }
  const std::vector<double> rps_grid = GridFor(args, {2.6, 3.6, 4.6});

  // One cell per (rps, variant), each building its own simulator state.
  std::vector<std::function<EngineResult()>> tasks;
  for (double rps : rps_grid) {
    for (const Variant& v : variants) {
      const AdaServeConfig config = v.config;
      tasks.push_back([&setup, &args, config, rps] {
        const Experiment exp(setup);
        const std::vector<Request> workload =
            exp.RealTraceWorkload(SweepDurationFor(args), rps, PeakMix());
        AdaServeScheduler scheduler(config);
        return exp.Run(scheduler, workload);
      });
    }
  }
  const std::vector<Timed<EngineResult>> results = runner.Map(tasks);

  BenchJson json("ablation_adaptive");
  TablePrinter table({"Variant", "RPS", "SLO Attainment(%)", "Goodput(tok/s)", "Mean acc"});
  size_t i = 0;
  for (double rps : rps_grid) {
    for (const Variant& v : variants) {
      const Metrics& m = results[i].value.metrics;
      table.AddRow({v.label, Fmt(rps, 1), FmtPct(m.AttainmentPct()), Fmt(m.GoodputTps(), 1),
                    Fmt(m.mean_accepted, 2)});
      json.Add(setup.label, v.label, "attainment_pct", rps, m.AttainmentPct());
      json.Add(setup.label, v.label, "goodput_tps", rps, m.GoodputTps());
      json.Add(setup.label, v.label, "wall_clock_s", rps, results[i].wall_clock_s);
      ++i;
    }
  }
  table.Print(std::cout);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
