// Ablation: the per-request token limit n_max in the SLO-customized phase.
//
// Without the cap, a request far behind its SLO can monopolise the budget on
// low-probability candidates (§4.3 Step 2); tiny caps starve requests that
// genuinely need several tokens.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

void Run() {
  std::cout << "Ablation: per-request SLO-phase token limit n_max (4.0 req/s, 60% urgent)\n";
  const Setup setup = LlamaSetup();
  Experiment exp(setup);
  std::cout << setup.label << "\n\n";
  const std::vector<Request> workload = exp.RealTraceWorkload(kSweepDuration, 4.0, PeakMix());
  TablePrinter table({"n_max", "SLO Attainment(%)", "Cat1(%)", "Goodput(tok/s)"});
  for (int n_max : {1, 2, 4, 8, 16, 64, 1024}) {
    AdaServeConfig config;
    config.selection.n_max = n_max;
    AdaServeScheduler scheduler(config);
    const EngineResult result = exp.Run(scheduler, workload);
    table.AddRow({n_max == 1024 ? "unbounded" : std::to_string(n_max),
                  FmtPct(result.metrics.AttainmentPct()),
                  FmtPct(result.metrics.per_category[0].AttainmentPct()),
                  Fmt(result.metrics.GoodputTps(), 1)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace adaserve

int main() {
  adaserve::Run();
  return 0;
}
