// Ablation: the per-request token limit n_max in the SLO-customized phase.
//
// Without the cap, a request far behind its SLO can monopolise the budget on
// low-probability candidates (§4.3 Step 2); tiny caps starve requests that
// genuinely need several tokens.
#include <iostream>

#include "bench/sweep_common.h"

namespace adaserve {
namespace {

int Run(const BenchArgs& args) {
  SweepRunner runner(args.threads);
  std::cout << "Ablation: per-request SLO-phase token limit n_max (4.0 req/s, 60% urgent, "
            << runner.threads() << " threads)\n";
  const Setup setup = LlamaSetup();
  std::cout << setup.label << "\n\n";

  const std::vector<int> n_maxes = {1, 2, 4, 8, 16, 64, 1024};
  std::vector<std::function<EngineResult()>> tasks;
  for (int n_max : n_maxes) {
    tasks.push_back([&setup, &args, n_max] {
      const Experiment exp(setup);
      const std::vector<Request> workload =
          exp.RealTraceWorkload(SweepDurationFor(args), 4.0, PeakMix());
      AdaServeConfig config;
      config.selection.n_max = n_max;
      AdaServeScheduler scheduler(config);
      return exp.Run(scheduler, workload);
    });
  }
  const std::vector<Timed<EngineResult>> results = runner.Map(tasks);

  BenchJson json("ablation_nmax");
  TablePrinter table({"n_max", "SLO Attainment(%)", "Cat1(%)", "Goodput(tok/s)"});
  for (size_t i = 0; i < n_maxes.size(); ++i) {
    const int n_max = n_maxes[i];
    const Metrics& m = results[i].value.metrics;
    table.AddRow({n_max == 1024 ? "unbounded" : std::to_string(n_max),
                  FmtPct(m.AttainmentPct()), FmtPct(m.per_category[0].AttainmentPct()),
                  Fmt(m.GoodputTps(), 1)});
    json.Add(setup.label, "AdaServe", "attainment_pct", n_max, m.AttainmentPct());
    json.Add(setup.label, "AdaServe", "goodput_tps", n_max, m.GoodputTps());
  }
  table.Print(std::cout);
  json.SetRunInfo(runner.threads(), runner.total_wall_clock_s());
  return FinishBench(args, json);
}

}  // namespace
}  // namespace adaserve

int main(int argc, char** argv) {
  return adaserve::Run(adaserve::ParseBenchArgs(argc, argv));
}
