// Multi-SLO serving comparison: the paper's headline scenario.
//
// Serves the same 60/20/20 coding/chat/summarization workload with every
// system in the end-to-end comparison and prints per-category SLO
// attainment, goodput and speculation statistics side by side — a miniature
// Figure 8/9 you can run in seconds.
//
//   ./build/multi_slo_serving [rps]
#include <cstdlib>
#include <iostream>

#include "src/adaserve.h"

int main(int argc, char** argv) {
  using namespace adaserve;
  const double rps = argc > 1 ? std::atof(argv[1]) : 4.0;

  Experiment exp(LlamaSetup());
  std::cout << "Multi-SLO serving on " << exp.setup().label << " at " << Fmt(rps, 1)
            << " req/s (60% coding / 20% chat / 20% summarization)\n";
  const std::vector<CategorySpec> cats = exp.Categories();
  for (const CategorySpec& cat : cats) {
    std::cout << "  " << cat.name << " " << cat.application << ": TPOT SLO "
              << Fmt(ToMs(cat.tpot_slo), 1) << " ms\n";
  }
  std::cout << "\n";

  const std::vector<Request> workload =
      exp.RealTraceWorkload(/*duration=*/30.0, rps, WorkloadConfig{.mix = {0.6, 0.2, 0.2}});

  TablePrinter table({"System", "Attainment(%)", "Cat1(%)", "Cat2(%)", "Cat3(%)",
                      "Goodput(tok/s)", "Mean acc"});
  for (SystemKind kind : MainComparisonSet()) {
    auto scheduler = MakeScheduler(kind);
    const EngineResult result = exp.Run(*scheduler, workload);
    table.AddRow({std::string(SystemName(kind)), FmtPct(result.metrics.AttainmentPct()),
                  FmtPct(result.metrics.per_category[0].AttainmentPct()),
                  FmtPct(result.metrics.per_category[1].AttainmentPct()),
                  FmtPct(result.metrics.per_category[2].AttainmentPct()),
                  Fmt(result.metrics.GoodputTps(), 1), Fmt(result.metrics.mean_accepted, 2)});
  }
  table.Print(std::cout);
  return 0;
}
