// Coding-copilot burst: adaptive control in action.
//
// A steady chat workload is hit by a burst of latency-critical copilot
// requests mid-trace. The example prints a timeline of AdaServe's adaptive
// speculation parameters (d, w) and per-interval acceptance, showing the
// controller throttling speculation while the burst inflates the batch and
// re-expanding afterwards (§5.2).
#include <iostream>

#include "src/adaserve.h"

int main() {
  using namespace adaserve;
  Experiment exp(LlamaSetup());

  // Background chat at 1.5 req/s for 60 s + a copilot burst peaking at 30 s.
  std::array<BurstSpec, kNumCategories> bursts = {{
      {.base_rps = 0.0, .peak_rps = 9.0, .peak_phase = 0.5, .peak_width = 0.06},  // coding burst
      {.base_rps = 1.5, .peak_rps = 1.5, .peak_phase = 0.5, .peak_width = 0.2},    // steady chat
      {.base_rps = 0.0, .peak_rps = 0.0, .peak_phase = 0.5, .peak_width = 0.2},    // no summarization
  }};
  const double duration = 60.0;
  const std::vector<Request> workload =
      BuildBurstyWorkload(exp.Categories(), bursts, duration, /*seed=*/17);
  std::cout << "Copilot burst scenario: " << workload.size()
            << " requests; copilot burst peaks at t=30 s\n\n";

  AdaServeScheduler scheduler;
  const EngineResult result = exp.Run(scheduler, workload);

  // Timeline: bucket iteration records into 5-second intervals.
  constexpr double kBucket = 5.0;
  struct Interval {
    double time_sum = 0.0;
    int iterations = 0;
    long committed = 0;
    long verified = 0;
    int batch_sum = 0;
  };
  std::vector<Interval> timeline(static_cast<size_t>(result.end_time / kBucket) + 1);
  SimTime t = 0.0;
  for (const IterationRecord& rec : result.iterations) {
    Interval& iv = timeline[static_cast<size_t>(t / kBucket)];
    iv.time_sum += rec.duration;
    ++iv.iterations;
    iv.committed += rec.committed_tokens;
    iv.verified += rec.verified_tokens;
    iv.batch_sum += rec.decode_requests;
    t += rec.duration;
  }
  TablePrinter table({"t(s)", "iters", "avg batch", "avg iter(ms)", "tok/s committed",
                      "spec tokens/iter"});
  for (size_t i = 0; i < timeline.size(); ++i) {
    const Interval& iv = timeline[i];
    if (iv.iterations == 0) {
      continue;
    }
    table.AddRow({Fmt(i * kBucket, 0), std::to_string(iv.iterations),
                  Fmt(static_cast<double>(iv.batch_sum) / iv.iterations, 1),
                  Fmt(1e3 * iv.time_sum / iv.iterations, 1),
                  Fmt(iv.committed / std::max(iv.time_sum, 1e-9), 0),
                  Fmt(static_cast<double>(iv.verified) / iv.iterations, 1)});
  }
  table.Print(std::cout);

  std::cout << "\nCopilot (Cat1) attainment: "
            << FmtPct(result.metrics.per_category[kCatCoding].AttainmentPct())
            << " %   chat (Cat2): "
            << FmtPct(result.metrics.per_category[kCatChat].AttainmentPct())
            << " %   last (d, w) = (" << scheduler.last_beam().depth << ", "
            << scheduler.last_beam().width << ")\n";
  return 0;
}
