// Quickstart: serve a small multi-SLO workload with AdaServe and print
// per-category SLO attainment.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/quickstart
#include <iostream>

#include "src/adaserve.h"

int main() {
  using namespace adaserve;

  // 1. Pick a Table-1 setup: Llama-3.1-70B on 4x A100 with a 1B draft.
  Experiment exp(LlamaSetup());
  std::cout << "Setup: " << exp.setup().label
            << "  (baseline decode latency " << Fmt(ToMs(exp.BaselineLatency()), 2) << " ms)\n";

  // 2. Build a 30-second multi-SLO workload: 60% coding copilot (tight SLO),
  //    20% chatbot, 20% summarization, arriving on the real-shaped trace.
  std::vector<Request> workload =
      exp.RealTraceWorkload(/*duration=*/30.0, /*mean_rps=*/3.5,
                            WorkloadConfig{.mix = {0.6, 0.2, 0.2}});
  std::cout << "Workload: " << workload.size() << " requests over 30 s\n\n";

  // 3. Serve it with AdaServe (SLO-customized speculative decoding).
  AdaServeScheduler adaserve;
  const EngineResult result = exp.Run(adaserve, workload);

  // 4. Report.
  const std::vector<CategorySpec> cats = exp.Categories();
  TablePrinter table({"Category", "Application", "SLO(ms)", "Requests", "Attainment(%)",
                      "Mean TPOT(ms)"});
  for (int c = 0; c < kNumCategories; ++c) {
    const CategoryMetrics& m = result.metrics.per_category[static_cast<size_t>(c)];
    table.AddRow({cats[static_cast<size_t>(c)].name, cats[static_cast<size_t>(c)].application,
                  Fmt(ToMs(cats[static_cast<size_t>(c)].tpot_slo), 1),
                  std::to_string(m.finished), FmtPct(m.AttainmentPct()),
                  Fmt(m.tpot_ms.Mean(), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nOverall attainment: " << FmtPct(result.metrics.AttainmentPct())
            << " %   goodput: " << Fmt(result.metrics.GoodputTps(), 1)
            << " tok/s   mean accepted/verification: "
            << Fmt(result.metrics.mean_accepted, 2) << "\n";
  return 0;
}
