// Extending the framework: plugging in a custom scheduler.
//
// Implements a deliberately simple "round-robin decode" policy against the
// public Scheduler interface and races it against AdaServe on the same
// workload. This is the template for experimenting with new multi-SLO
// policies on the simulator substrate.
#include <algorithm>
#include <iostream>

#include "src/adaserve.h"

namespace {

using namespace adaserve;

// Round-robin: each iteration decodes a rotating window of at most
// `window` running requests — fair, SLO-blind, and batch-capped. A custom
// scheduler implements the two tick-phase hooks; the base class supplies
// the tick protocol (admission, and in tick-native mode the mid-tick
// admission + burst-capped prefill phases) around them.
class RoundRobinScheduler : public Scheduler {
 public:
  explicit RoundRobinScheduler(int window) : window_(window) {}

  std::string_view name() const override { return "RoundRobin"; }

  // Optional third hook: the admission-priority default for tick-native
  // runs. Declaring kSloUrgentFirst makes urgent-category arrivals jump
  // the admission queue (TickPolicy::admission_priority overrides it).
  PriorityPolicy AdmissionPriority() const override {
    return PriorityPolicy::kSloUrgentFirst;
  }

 protected:
  IterationRecord DrainStep(SimTime now, RequestPool& pool, ServingContext& ctx) override {
    IterationRecord record;
    if (RunFullPrefillIteration(now, pool, ctx, /*max_prefill_tokens=*/4096, record)) {
      return record;
    }
    return DecodePhase(now, pool, ctx);
  }

  IterationRecord DecodePhase(SimTime now, RequestPool& pool, ServingContext& ctx) override {
    std::vector<RequestId> running = RunningRequests(pool);
    if (running.empty()) {
      return IterationRecord{};
    }
    std::sort(running.begin(), running.end());
    std::vector<RequestId> batch;
    for (size_t i = 0; i < running.size() && batch.size() < static_cast<size_t>(window_); ++i) {
      batch.push_back(running[(cursor_ + i) % running.size()]);
    }
    cursor_ = (cursor_ + batch.size()) % std::max<size_t>(running.size(), 1);
    return RunDecodeIteration(now, pool, ctx, batch);
  }

 private:
  int window_;
  size_t cursor_ = 0;
};

}  // namespace

int main() {
  Experiment exp(QwenSetup());
  const std::vector<Request> workload =
      exp.RealTraceWorkload(/*duration=*/20.0, /*mean_rps=*/3.5,
                            WorkloadConfig{.mix = {0.5, 0.3, 0.2}});
  std::cout << "Custom scheduler demo on " << exp.setup().label << " ("
            << workload.size() << " requests)\n\n";

  RoundRobinScheduler round_robin(/*window=*/8);
  AdaServeScheduler adaserve;

  TablePrinter table({"Scheduler", "Attainment(%)", "Goodput(tok/s)", "Throughput(tok/s)"});
  for (Scheduler* scheduler : {static_cast<Scheduler*>(&round_robin),
                               static_cast<Scheduler*>(&adaserve)}) {
    const EngineResult result = exp.Run(*scheduler, workload);
    table.AddRow({std::string(scheduler->name()), FmtPct(result.metrics.AttainmentPct()),
                  Fmt(result.metrics.GoodputTps(), 1), Fmt(result.metrics.ThroughputTps(), 1)});
  }
  table.Print(std::cout);
  std::cout << "\nSee examples/custom_scheduler.cpp for the ~30-line policy implementation.\n";
  return 0;
}
