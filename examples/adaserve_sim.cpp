// adaserve_sim: command-line experiment driver.
//
// Runs one serving experiment with configurable system, model setup, load,
// mix and duration, and optionally dumps machine-readable CSVs for
// post-processing (per-run metrics, per-request records, per-iteration
// breakdown).
//
//   ./build/adaserve_sim --system=adaserve --model=llama --rps=4.0 --duration=40 --mix=0.6,0.2,0.2 --requests-csv=requests.csv --iterations-csv=iterations.csv
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "src/adaserve.h"

namespace {

using namespace adaserve;

struct Options {
  std::string system = "adaserve";
  std::string model = "llama";
  double rps = 4.0;
  double duration = 30.0;
  std::array<double, kNumCategories> mix = {0.6, 0.2, 0.2};
  uint64_t seed = 42;
  std::string requests_csv;
  std::string iterations_csv;
  bool greedy = false;
};

void PrintUsage() {
  std::cout <<
      "Usage: adaserve_sim [options]\n"
      "  --system=NAME       adaserve|vllm|sarathi|spec4|spec6|spec8|priority|fastserve|vtc|"
      "edf|edf_ac\n"
      "  --model=NAME        llama (70B, 4xA100) | qwen (32B, 2xA100)\n"
      "  --rps=R             mean request rate (default 4.0)\n"
      "  --duration=S        trace duration in seconds (default 30)\n"
      "  --mix=A,B,C         category mix, must sum to 1 (default 0.6,0.2,0.2)\n"
      "  --seed=N            trace seed (default 42)\n"
      "  --greedy            greedy decoding instead of sampling\n"
      "  --requests-csv=F    write per-request records to F\n"
      "  --iterations-csv=F  write per-iteration breakdown to F\n";
}

bool ParseArgs(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg == "--help" || arg == "-h") {
      return false;
    } else if (arg.starts_with("--system=")) {
      opts.system = value();
    } else if (arg.starts_with("--model=")) {
      opts.model = value();
    } else if (arg.starts_with("--rps=")) {
      opts.rps = std::atof(value().c_str());
    } else if (arg.starts_with("--duration=")) {
      opts.duration = std::atof(value().c_str());
    } else if (arg.starts_with("--seed=")) {
      opts.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--greedy") {
      opts.greedy = true;
    } else if (arg.starts_with("--mix=")) {
      const std::string v = value();
      if (std::sscanf(v.c_str(), "%lf,%lf,%lf", &opts.mix[0], &opts.mix[1], &opts.mix[2]) != 3) {
        std::cerr << "bad --mix: " << v << "\n";
        return false;
      }
    } else if (arg.starts_with("--requests-csv=")) {
      opts.requests_csv = value();
    } else if (arg.starts_with("--iterations-csv=")) {
      opts.iterations_csv = value();
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    }
  }
  return true;
}

const std::map<std::string, SystemKind>& SystemsByName() {
  static const auto* kMap = new std::map<std::string, SystemKind>{
      {"adaserve", SystemKind::kAdaServe},   {"vllm", SystemKind::kVllm},
      {"sarathi", SystemKind::kSarathi},     {"spec4", SystemKind::kVllmSpec4},
      {"spec6", SystemKind::kVllmSpec6},     {"spec8", SystemKind::kVllmSpec8},
      {"priority", SystemKind::kVllmPriority}, {"fastserve", SystemKind::kFastServe},
      {"vtc", SystemKind::kVtc},               {"edf", SystemKind::kEdf},
      {"edf_ac", SystemKind::kEdfAdmission},
  };
  return *kMap;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, opts)) {
    PrintUsage();
    return 1;
  }
  const auto it = SystemsByName().find(opts.system);
  if (it == SystemsByName().end()) {
    std::cerr << "unknown system: " << opts.system << "\n";
    PrintUsage();
    return 1;
  }
  if (opts.model != "llama" && opts.model != "qwen") {
    std::cerr << "unknown model: " << opts.model << "\n";
    return 1;
  }

  Experiment exp(opts.model == "llama" ? LlamaSetup() : QwenSetup());
  WorkloadConfig mix;
  mix.mix = opts.mix;
  const std::vector<Request> workload =
      exp.RealTraceWorkload(opts.duration, opts.rps, mix, opts.seed);

  auto scheduler = MakeScheduler(it->second);
  EngineConfig engine;
  engine.mode = opts.greedy ? DecodeMode::kGreedy : DecodeMode::kStochastic;
  // Keep the finished request records for the CSV dump: rerun through a raw
  // engine is unnecessary — Experiment::Run already computes everything we
  // print; per-request CSVs need the pool, so re-simulate through Engine.
  Engine raw(&exp.target(), &exp.draft(), &exp.target_latency(), &exp.draft_latency(), engine);
  const EngineResult result = raw.Run(*scheduler, workload);

  std::cout << "system=" << SystemName(it->second) << " model=" << exp.setup().label
            << " requests=" << workload.size() << "\n";
  TablePrinter table({"Metric", "Value"});
  table.AddRow({"SLO attainment (%)", FmtPct(result.metrics.AttainmentPct())});
  table.AddRow({"Goodput (tok/s)", Fmt(result.metrics.GoodputTps(), 1)});
  table.AddRow({"Throughput (tok/s)", Fmt(result.metrics.ThroughputTps(), 1)});
  table.AddRow({"Mean accepted/verification", Fmt(result.metrics.mean_accepted, 2)});
  table.AddRow({"Makespan (s)", Fmt(result.metrics.makespan, 1)});
  for (int c = 0; c < kNumCategories; ++c) {
    const CategoryMetrics& m = result.metrics.per_category[static_cast<size_t>(c)];
    table.AddRow({"Cat" + std::to_string(c + 1) + " attainment (%)", FmtPct(m.AttainmentPct())});
    table.AddRow({"Cat" + std::to_string(c + 1) + " mean TPOT (ms)", Fmt(m.tpot_ms.Mean(), 2)});
    table.AddRow({"Cat" + std::to_string(c + 1) + " p99 TTFT (ms)",
                  Fmt(m.ttft_ms.Percentile(99), 1)});
  }
  table.Print(std::cout);

  if (!opts.iterations_csv.empty()) {
    std::ofstream os(opts.iterations_csv);
    WriteIterationCsv(os, result.iterations);
    std::cout << "wrote " << result.iterations.size() << " iterations to "
              << opts.iterations_csv << "\n";
  }
  if (!opts.requests_csv.empty()) {
    std::ofstream os(opts.requests_csv);
    WriteRequestCsv(os, result.requests);
    std::cout << "wrote " << result.requests.size() << " requests to " << opts.requests_csv
              << "\n";
  }
  return 0;
}
